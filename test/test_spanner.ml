(* Tests for the core contribution: spanner checkers, coverage
   bookkeeping, star choice, and the distributed 2-spanner algorithm
   of Section 4 (Theorem 1.3). *)

open Grapho
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Spanner_check *)

let test_whole_graph_is_spanner () =
  let g = Generators.gnp_connected (Rng.create 1) 20 0.2 in
  check "identity" true (C.Spanner_check.is_spanner g (Ugraph.edge_set g) ~k:1)

let test_two_path_covers () =
  let g = Generators.complete 3 in
  let s = Edge.Set.of_list [ Edge.make 0 1; Edge.make 1 2 ] in
  check "2-path" true (C.Spanner_check.is_spanner g s ~k:2);
  check "not a 1-spanner" false (C.Spanner_check.is_spanner g s ~k:1)

let test_uncovered_listed () =
  let g = Generators.cycle 5 in
  let s = Edge.Set.of_list [ Edge.make 0 1 ] in
  check_int "four uncovered" 4
    (List.length (C.Spanner_check.uncovered_edges g s ~k:2))

let test_stretch () =
  let g = Generators.cycle 6 in
  let s = Edge.Set.remove (Edge.make 0 5) (Ugraph.edge_set g) in
  check_int "cycle minus edge" 5 (C.Spanner_check.stretch g s);
  check_int "full graph" 1 (C.Spanner_check.stretch g (Ugraph.edge_set g))

let test_spanner_edge_must_exist () =
  let g = Generators.path 3 in
  check "foreign edge rejected" true
    (try
       ignore
         (C.Spanner_check.is_spanner g
            (Edge.Set.singleton (Edge.make 0 2)) ~k:2);
       false
     with Invalid_argument _ -> true)

let test_directed_check () =
  let dg = Dgraph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let s = Edge.Directed.Set.of_list [ (0, 1); (1, 2) ] in
  check "directed 2-path" true (C.Spanner_check.is_directed_spanner dg s ~k:2);
  let dg2 = Dgraph.of_edges ~n:3 [ (0, 1); (2, 1); (0, 2) ] in
  let s2 = Edge.Directed.Set.of_list [ (0, 1); (2, 1) ] in
  check "orientation matters" false
    (C.Spanner_check.is_directed_spanner dg2 s2 ~k:2)

(* ------------------------------------------------------------------ *)
(* Cover2 *)

let test_cover2_initial_hv () =
  let g = Generators.complete 4 in
  let all = Ugraph.edge_set g in
  let t = C.Cover2.create ~n:4 ~targets:all ~usable:all in
  check_int "all uncovered" 6 (C.Cover2.uncovered_count t);
  (* H_v of any vertex of K4: the 3 edges among its 3 neighbors. *)
  check_int "hv size" 3 (Edge.Set.cardinal (C.Cover2.hv t 0))

let test_cover2_star_add_covers () =
  let g = Generators.complete 4 in
  let all = Ugraph.edge_set g in
  let t = C.Cover2.create ~n:4 ~targets:all ~usable:all in
  let dirtied = ref [] in
  (* Add the full star of 0: everything becomes covered. *)
  C.Cover2.add t
    (Edge.Set.of_list [ Edge.make 0 1; Edge.make 0 2; Edge.make 0 3 ])
    ~dirty:(fun v -> dirtied := v :: !dirtied);
  check "all covered" true (C.Cover2.all_covered t);
  check "dirty notified" true (!dirtied <> [])

let test_cover2_incremental_hv () =
  let g = Generators.complete 4 in
  let all = Ugraph.edge_set g in
  let t = C.Cover2.create ~n:4 ~targets:all ~usable:all in
  C.Cover2.add t (Edge.Set.of_list [ Edge.make 1 2 ]) ~dirty:(fun _ -> ());
  (* The target {1,2} is covered (it is in the spanner) and must have
     left H_0, H_3. *)
  check "left hv0" false (Edge.Set.mem (Edge.make 1 2) (C.Cover2.hv t 0));
  check "left hv3" false (Edge.Set.mem (Edge.make 1 2) (C.Cover2.hv t 3));
  check_int "five uncovered" 5 (C.Cover2.uncovered_count t)

let test_cover2_two_path_coverage () =
  let g = Generators.path 3 in
  (* no targets between neighbors; add the two path edges: the target
     set {0,1},{1,2} gets covered by membership *)
  let all = Ugraph.edge_set g in
  let t = C.Cover2.create ~n:3 ~targets:all ~usable:all in
  C.Cover2.add t all ~dirty:(fun _ -> ());
  check "all covered" true (C.Cover2.all_covered t)

let test_cover2_client_server_uncoverable () =
  (* target {0,1}; servers only {1,2}: uncoverable. *)
  let targets = Edge.Set.singleton (Edge.make 0 1) in
  let usable = Edge.Set.singleton (Edge.make 1 2) in
  let t = C.Cover2.create ~n:3 ~targets ~usable in
  check_int "uncoverable" 1
    (Edge.Set.cardinal (C.Cover2.uncoverable_targets t))

let test_cover2_rejects_non_usable () =
  let targets = Edge.Set.singleton (Edge.make 0 1) in
  let t = C.Cover2.create ~n:2 ~targets ~usable:Edge.Set.empty in
  check "raises" true
    (try
       C.Cover2.add t targets ~dirty:(fun _ -> ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Star_pick *)

let star_problem () =
  (* Center 0 of K5: neighbors 1..4, H_v = all 6 edges among them. *)
  let hv_edges =
    Edge.Set.of_list
      [ Edge.make 1 2; Edge.make 1 3; Edge.make 1 4; Edge.make 2 3;
        Edge.make 2 4; Edge.make 3 4 ]
  in
  C.Star_pick.make ~center:0 ~nodes:[| 1; 2; 3; 4 |] ~hv_edges ()

let test_star_density () =
  let p = star_problem () in
  check_float "full star" 1.5 (C.Star_pick.density p [ 1; 2; 3; 4 ]);
  check_float "pair" 0.5 (C.Star_pick.density p [ 1; 2 ]);
  check_float "empty" 0.0 (C.Star_pick.density p [])

let test_star_densest () =
  let p = star_problem () in
  match C.Star_pick.densest p with
  | Some (sel, d) ->
      check_int "picks all" 4 (List.length sel);
      check_float "density" 1.5 d
  | None -> Alcotest.fail "expected star"

let test_star_spanned () =
  let p = star_problem () in
  check_int "spanned by pair" 1
    (Edge.Set.cardinal (C.Star_pick.spanned p [ 1; 2 ]));
  check_int "spanned by triple" 3
    (Edge.Set.cardinal (C.Star_pick.spanned p [ 1; 2; 3 ]))

let test_star_extend_grows () =
  let p = star_problem () in
  let sel = C.Star_pick.extend p ~start:[ 1; 2 ] ~allowed:[ 1; 2; 3; 4 ]
      ~threshold:0.5
  in
  check "extends to all" true (List.length sel = 4)

let test_star_extend_respects_allowed () =
  let p = star_problem () in
  let sel =
    C.Star_pick.extend p ~start:[ 1 ] ~allowed:[ 1; 2 ] ~threshold:0.1
  in
  check "stays within allowed" true (List.for_all (fun v -> v <= 2) sel)

let test_star_free_nodes () =
  (* Neighbor 2 is free (weight 0 edge); H_v edge {1,2} comes at the
     price of selecting only node 1. *)
  let hv_edges = Edge.Set.singleton (Edge.make 1 2) in
  let p =
    C.Star_pick.make ~center:0 ~nodes:[| 1 |] ~free:[| 2 |] ~hv_edges ()
  in
  check_float "bonus density" 1.0 (C.Star_pick.density p [ 1 ]);
  check_int "spanned includes free edge" 1
    (Edge.Set.cardinal (C.Star_pick.spanned p [ 1 ]))

let test_rounded_exponent () =
  check "zero" true (C.Star_pick.rounded_exponent 0.0 = None);
  check "one" true (C.Star_pick.rounded_exponent 1.0 = Some 1);
  check "1.5" true (C.Star_pick.rounded_exponent 1.5 = Some 1);
  check "2" true (C.Star_pick.rounded_exponent 2.0 = Some 2);
  check "0.5" true (C.Star_pick.rounded_exponent 0.5 = Some 0);
  check "0.3" true (C.Star_pick.rounded_exponent 0.3 = Some (-1));
  check_float "pow2" 0.25 (C.Star_pick.pow2 (-2))

(* ------------------------------------------------------------------ *)
(* Two_spanner: validity, quality, structure *)

let families =
  [
    ("complete_20", Generators.complete 20);
    ("bipartite_8_8", Generators.complete_bipartite 8 8);
    ("caveman", Generators.caveman (Rng.create 2) 6 6 0.05);
    ("gnp_60", Generators.gnp_connected (Rng.create 3) 60 0.15);
    ("grid_6x6", Generators.grid 6 6);
    ("pa_80", Generators.preferential_attachment (Rng.create 4) 80 5);
    ("tree_40", Generators.random_tree (Rng.create 5) 40);
    ("path_10", Generators.path 10);
    ("star_30", Generators.star 30);
  ]

let test_two_spanner_valid_on_families () =
  List.iter
    (fun (name, g) ->
      let r = C.Two_spanner.run ~rng:(Rng.create 7) g in
      check (name ^ " valid") true (C.Spanner_check.is_spanner g r.spanner ~k:2))
    families

let test_two_spanner_complete_graph_quality () =
  (* K_n has a 2-spanner of n-1 edges (one full star); the algorithm
     should find something close. *)
  let g = Generators.complete 25 in
  let r = C.Two_spanner.run ~rng:(Rng.create 11) g in
  check "near star" true (Edge.Set.cardinal r.spanner <= 3 * 24)

let test_two_spanner_triangle_free_takes_all () =
  (* In a triangle-free graph no edge can be 2-spanned: the minimum
     2-spanner is the whole edge set (the paper's K_{n,n} worst case). *)
  let g = Generators.complete_bipartite 6 7 in
  let r = C.Two_spanner.run ~rng:(Rng.create 12) g in
  check_int "all edges" (Ugraph.m g) (Edge.Set.cardinal r.spanner);
  let h = Generators.hypercube 4 in
  let rh = C.Two_spanner.run ~rng:(Rng.create 13) h in
  check_int "hypercube all edges" (Ugraph.m h) (Edge.Set.cardinal rh.spanner)

let test_two_spanner_ratio_bound_on_small () =
  (* Guaranteed O(log m/n) ratio against the exact optimum. *)
  for seed = 0 to 7 do
    let g = Generators.gnp_connected (Rng.create (50 + seed)) 10 0.4 in
    let r = C.Two_spanner.run ~rng:(Rng.create seed) g in
    let opt = C.Exact.min_2_spanner_size g in
    let ratio = float_of_int (Edge.Set.cardinal r.spanner) /. float_of_int opt in
    check "within guarantee" true (ratio <= C.Two_spanner.ratio_bound g)
  done

let test_two_spanner_deterministic_given_seed () =
  let g = Generators.gnp_connected (Rng.create 21) 40 0.2 in
  let a = C.Two_spanner.run ~rng:(Rng.create 5) g in
  let b = C.Two_spanner.run ~rng:(Rng.create 5) g in
  check "same spanner" true (Edge.Set.equal a.spanner b.spanner);
  check_int "same iterations" a.iterations b.iterations

let test_two_spanner_rounds_accounting () =
  let g = Generators.complete 12 in
  let r = C.Two_spanner.run ~rng:(Rng.create 3) g in
  check_int "rounds = c * iterations"
    (C.Two_spanner_engine.rounds_per_iteration * r.iterations)
    r.rounds

let test_two_spanner_empty_and_single () =
  let r = C.Two_spanner.run (Ugraph.empty 5) in
  check_int "no edges" 0 (Edge.Set.cardinal r.spanner);
  let g1 = Generators.path 2 in
  let r1 = C.Two_spanner.run g1 in
  check_int "single edge kept" 1 (Edge.Set.cardinal r1.spanner)

let test_two_spanner_disconnected () =
  let g =
    Ugraph.of_edges ~n:8
      [ (0, 1); (1, 2); (0, 2); (4, 5); (5, 6); (4, 6); (6, 7) ]
  in
  let r = C.Two_spanner.run ~rng:(Rng.create 9) g in
  check "valid on disconnected" true
    (C.Spanner_check.is_spanner g r.spanner ~k:2)

let test_selection_rules_all_valid () =
  let g = Generators.gnp_connected (Rng.create 31) 40 0.25 in
  List.iter
    (fun selection ->
      let r = C.Two_spanner.run ~rng:(Rng.create 1) ~selection g in
      check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2))
    [ C.Two_spanner_engine.Votes 0.125; C.Two_spanner_engine.Votes 0.5;
      C.Two_spanner_engine.Coin 0.5; C.Two_spanner_engine.All ]

let test_iteration_guard_raises () =
  let g = Generators.complete 10 in
  check "guard" true
    (try
       ignore (C.Two_spanner.run ~max_iterations:0 g);
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_always_valid =
  QCheck.Test.make ~name:"2-spanner always valid" ~count:25
    QCheck.(pair (int_range 2 30) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Generators.gnp_connected rng n 0.3 in
      let r = C.Two_spanner.run ~rng:(Rng.create (seed + 1)) g in
      C.Spanner_check.is_spanner g r.spanner ~k:2)

let prop_spanner_at_most_all_edges =
  QCheck.Test.make ~name:"2-spanner never exceeds the graph" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Generators.gnp_connected (Rng.create seed) 25 0.3 in
      let r = C.Two_spanner.run ~rng:(Rng.create (seed * 3 + 1)) g in
      Edge.Set.cardinal r.spanner <= Ugraph.m g
      && Edge.Set.subset r.spanner (Ugraph.edge_set g))

let prop_tree_keeps_all_edges =
  QCheck.Test.make ~name:"trees have no redundant edges" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Generators.random_tree (Rng.create seed) 20 in
      let r = C.Two_spanner.run ~rng:(Rng.create (seed + 7)) g in
      Edge.Set.cardinal r.spanner = Ugraph.m g)

let prop_ratio_within_bound_vs_exact =
  QCheck.Test.make ~name:"ratio within the proven bound (vs exact)" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Generators.gnp_connected (Rng.create seed) 9 0.45 in
      let r = C.Two_spanner.run ~rng:(Rng.create (seed + 1)) g in
      let opt = C.Exact.min_2_spanner_size g in
      float_of_int (Edge.Set.cardinal r.spanner)
      <= C.Two_spanner.ratio_bound g *. float_of_int opt)

(* ------------------------------------------------------------------ *)
(* Differential invariants: the incremental Cover2 bookkeeping must
   agree with a from-scratch recomputation after arbitrary random
   addition sequences. *)

let naive_uncovered ~n ~targets spanner =
  Edge.Set.filter
    (fun e -> not (C.Spanner_check.covers_edge ~n spanner ~k:2 e))
    targets

let naive_hv ~n ~targets ~usable spanner v =
  let nbrs =
    Edge.Set.fold
      (fun e acc ->
        if Edge.mem_endpoint e v then Edge.other e v :: acc else acc)
      usable []
  in
  Edge.Set.filter
    (fun e ->
      let u, w = Edge.endpoints e in
      List.mem u nbrs && List.mem w nbrs
      && not (C.Spanner_check.covers_edge ~n spanner ~k:2 e))
    targets

let prop_cover2_matches_naive =
  QCheck.Test.make ~name:"Cover2 incremental = naive recomputation" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Generators.gnp_connected rng 14 0.4 in
      let n = Ugraph.n g in
      let all = Ugraph.edge_set g in
      let t = C.Cover2.create ~n ~targets:all ~usable:all in
      let added = ref Edge.Set.empty in
      let edges = Array.of_list (Edge.Set.elements all) in
      let ok = ref true in
      for _ = 1 to 6 do
        (* add a random batch *)
        let batch = ref Edge.Set.empty in
        for _ = 1 to 1 + Rng.int rng 4 do
          batch := Edge.Set.add edges.(Rng.int rng (Array.length edges)) !batch
        done;
        C.Cover2.add t !batch ~dirty:(fun _ -> ());
        added := Edge.Set.union !added !batch;
        let expected = naive_uncovered ~n ~targets:all !added in
        if not (Edge.Set.equal expected (C.Cover2.uncovered t)) then ok := false;
        let v = Rng.int rng n in
        let expected_hv = naive_hv ~n ~targets:all ~usable:all !added v in
        if not (Edge.Set.equal expected_hv (C.Cover2.hv t v)) then ok := false
      done;
      !ok)

let prop_cover2_client_server_matches_naive =
  QCheck.Test.make
    ~name:"Cover2 client-server bookkeeping = naive" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Generators.gnp_connected rng 12 0.45 in
      let n = Ugraph.n g in
      let clients, servers =
        Generators.random_client_server rng g ~client_fraction:0.6
          ~server_fraction:0.7
      in
      let t = C.Cover2.create ~n ~targets:clients ~usable:servers in
      let server_edges = Array.of_list (Edge.Set.elements servers) in
      let added = ref Edge.Set.empty in
      let ok = ref (Array.length server_edges > 0) in
      if !ok then
        for _ = 1 to 5 do
          let e = server_edges.(Rng.int rng (Array.length server_edges)) in
          C.Cover2.add t (Edge.Set.singleton e) ~dirty:(fun _ -> ());
          added := Edge.Set.add e !added;
          let expected = naive_uncovered ~n ~targets:clients !added in
          if not (Edge.Set.equal expected (C.Cover2.uncovered t)) then
            ok := false
        done;
      !ok)

(* ------------------------------------------------------------------ *)
(* query_path: the daemon's QUERY kernel. One scratch is reused across
   every query of a run; the contracts are (a) each returned sequence
   is a real path of the spanner CSR, (b) its hop count is at most
   2 · dist_G(u, v) — a 2-spanner's edge-stretch bound extends to all
   pairs by concatenating the per-edge detours — and (c) reusing the
   scratch never changes an answer (the epoch reset is exact). *)

let bfs_dist g src =
  let n = Ugraph.n g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    Ugraph.iter_neighbors
      (fun y ->
        if dist.(y) = -1 then begin
          dist.(y) <- dist.(x) + 1;
          Queue.add y q
        end)
      g x
  done;
  dist

let check_is_path sg name p ~u ~v =
  (match p with
  | [] -> Alcotest.fail (name ^ ": empty path")
  | x :: _ -> check_int (name ^ ": starts at u") u x);
  check_int (name ^ ": ends at v") v (List.nth p (List.length p - 1));
  let rec edges = function
    | x :: (y :: _ as rest) ->
        check (name ^ ": consecutive vertices adjacent") true
          (Ugraph.mem_edge sg x y);
        edges rest
    | _ -> ()
  in
  edges p

let test_query_path_stretch_on_anchors () =
  List.iter
    (fun (name, g) ->
      let r = C.Two_spanner_local.run ~seed:9 g in
      let n = Ugraph.n g in
      let sg = C.Spanner_check.spanner_csr ~n r.spanner in
      let q = C.Spanner_check.query_create ~n () in
      (* Every graph edge: covered in <= 2 hops. *)
      Ugraph.iter_edges_uv
        (fun u v ->
          match C.Spanner_check.query_path q sg ~u ~v with
          | None -> Alcotest.fail (Printf.sprintf "%s: edge %d-%d unspanned" name u v)
          | Some p ->
              check_is_path sg name p ~u ~v;
              check (name ^ ": edge stretch <= 2") true (List.length p <= 3))
        g;
      (* Random pairs: stretch <= 2 * dist_G. *)
      let rng = Rng.create 31 in
      for _ = 1 to 50 do
        let u = Rng.int rng n and v = Rng.int rng n in
        let dg = (bfs_dist g u).(v) in
        match C.Spanner_check.query_path q sg ~u ~v with
        | None ->
            check (name ^ ": None only when G disconnects them") true (dg = -1)
        | Some p ->
            check_is_path sg name p ~u ~v;
            check (name ^ ": pair stretch <= 2*distG") true
              (dg >= 0 && List.length p - 1 <= 2 * dg)
      done)
    families

let test_query_path_edge_cases () =
  let g = Generators.path 4 in
  (* spanner = the graph itself *)
  let sg = C.Spanner_check.spanner_csr ~n:6 (Ugraph.edge_set g) in
  let q = C.Spanner_check.query_create () in
  (match C.Spanner_check.query_path q sg ~u:2 ~v:2 with
  | Some [ 2 ] -> ()
  | _ -> Alcotest.fail "u = v must be Some [u]");
  (* vertices 4 and 5 exist but are isolated in the CSR *)
  check "disconnected" true (C.Spanner_check.query_path q sg ~u:0 ~v:5 = None);
  check "out of range raises" true
    (try
       ignore (C.Spanner_check.query_path q sg ~u:0 ~v:6);
       false
     with Invalid_argument _ -> true);
  (* Scratch reuse across graphs of different sizes (the daemon
     reloads): answers match a fresh scratch, query by query. *)
  let g2 = Generators.cycle 40 in
  let sg2 = C.Spanner_check.spanner_csr ~n:40 (Ugraph.edge_set g2) in
  let rng = Rng.create 77 in
  for _ = 1 to 200 do
    let u = Rng.int rng 40 and v = Rng.int rng 40 in
    let fresh = C.Spanner_check.query_create () in
    check "reused scratch = fresh scratch" true
      (C.Spanner_check.query_path q sg2 ~u ~v
      = C.Spanner_check.query_path fresh sg2 ~u ~v)
  done

let prop_stretch_consistent_with_is_spanner =
  QCheck.Test.make ~name:"stretch <= k iff is_spanner" ~count:25
    QCheck.(pair (int_range 1 4) (int_range 0 10_000))
    (fun (k, seed) ->
      let rng = Rng.create seed in
      let g = Generators.gnp_connected rng 12 0.3 in
      (* random subset *)
      let s = Edge.Set.filter (fun _ -> Rng.bool rng) (Ugraph.edge_set g) in
      C.Spanner_check.is_spanner g s ~k = (C.Spanner_check.stretch g s <= k))

let () =
  Alcotest.run "spanner"
    [
      ( "check",
        [
          Alcotest.test_case "whole graph" `Quick test_whole_graph_is_spanner;
          Alcotest.test_case "2-path" `Quick test_two_path_covers;
          Alcotest.test_case "uncovered" `Quick test_uncovered_listed;
          Alcotest.test_case "stretch" `Quick test_stretch;
          Alcotest.test_case "foreign edge" `Quick test_spanner_edge_must_exist;
          Alcotest.test_case "directed" `Quick test_directed_check;
          Alcotest.test_case "query_path stretch" `Quick
            test_query_path_stretch_on_anchors;
          Alcotest.test_case "query_path edge cases" `Quick
            test_query_path_edge_cases;
        ] );
      ( "cover2",
        [
          Alcotest.test_case "initial hv" `Quick test_cover2_initial_hv;
          Alcotest.test_case "star add" `Quick test_cover2_star_add_covers;
          Alcotest.test_case "incremental hv" `Quick test_cover2_incremental_hv;
          Alcotest.test_case "membership coverage" `Quick
            test_cover2_two_path_coverage;
          Alcotest.test_case "uncoverable" `Quick
            test_cover2_client_server_uncoverable;
          Alcotest.test_case "non-usable rejected" `Quick
            test_cover2_rejects_non_usable;
        ] );
      ( "star_pick",
        [
          Alcotest.test_case "density" `Quick test_star_density;
          Alcotest.test_case "densest" `Quick test_star_densest;
          Alcotest.test_case "spanned" `Quick test_star_spanned;
          Alcotest.test_case "extend grows" `Quick test_star_extend_grows;
          Alcotest.test_case "extend allowed" `Quick
            test_star_extend_respects_allowed;
          Alcotest.test_case "free nodes" `Quick test_star_free_nodes;
          Alcotest.test_case "rounded exponent" `Quick test_rounded_exponent;
        ] );
      ( "two_spanner",
        [
          Alcotest.test_case "valid on families" `Quick
            test_two_spanner_valid_on_families;
          Alcotest.test_case "complete graph quality" `Quick
            test_two_spanner_complete_graph_quality;
          Alcotest.test_case "triangle-free takes all" `Quick
            test_two_spanner_triangle_free_takes_all;
          Alcotest.test_case "ratio vs exact" `Quick
            test_two_spanner_ratio_bound_on_small;
          Alcotest.test_case "deterministic" `Quick
            test_two_spanner_deterministic_given_seed;
          Alcotest.test_case "round accounting" `Quick
            test_two_spanner_rounds_accounting;
          Alcotest.test_case "degenerate graphs" `Quick
            test_two_spanner_empty_and_single;
          Alcotest.test_case "disconnected" `Quick test_two_spanner_disconnected;
          Alcotest.test_case "selection rules" `Quick
            test_selection_rules_all_valid;
          Alcotest.test_case "iteration guard" `Quick
            test_iteration_guard_raises;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_always_valid; prop_spanner_at_most_all_edges;
            prop_tree_keeps_all_edges; prop_ratio_within_bound_vs_exact;
            prop_cover2_matches_naive;
            prop_cover2_client_server_matches_naive;
            prop_stretch_consistent_with_is_spanner;
          ] );
    ]
