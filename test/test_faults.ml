(* The adversarial-network subsystem: the fault DSL round-trips, a
   compiled schedule is deterministic across schedulers and shard
   counts, the empty schedule is byte-identical to no adversary at
   all, the retransmit wrapper multiplies traffic but not delivery,
   and the survivor-quality harness grades crash schedules the way
   [Fault_tolerant]'s offline guarantee promises. *)

open Grapho
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let rng seed = Rng.create seed

let compile ~n s =
  match Distsim.Faults.parse s with
  | Ok schedule -> Distsim.Faults.compile ~n schedule
  | Error e -> Alcotest.failf "parse %S: %s" s e

let schedule_of s =
  match Distsim.Faults.parse s with
  | Ok schedule -> schedule
  | Error e -> Alcotest.failf "parse %S: %s" s e

(* ------------------------------------------------------------------ *)
(* DSL *)

let test_dsl_roundtrip () =
  (* Canonical strings survive parse-then-print unchanged. *)
  List.iter
    (fun s ->
      check_string ("roundtrip " ^ s) s
        (Distsim.Faults.to_string (schedule_of s)))
    [
      "drop=0.05";
      "drop=0.05,dup=0.01";
      "crash=v7@r5";
      "crash=0.1@r3,crash=v7@r5";
      "cut=2-9";
      "cut=2-9@r4";
      "cut=2-9@r4..8";
      "drop=0.05,dup=0.01,crash=0.1@r3,crash=v7@r5,cut=2-9@r4..8,seed=42";
      "";
    ];
  (* Parsing is forgiving about clause order; printing is canonical. *)
  check_string "canonical order" "drop=0.1,crash=v2@r3,seed=9"
    (Distsim.Faults.to_string (schedule_of "seed=9,crash=v2@r3,drop=0.1"));
  (* A crash clause without a round defaults to round 1. *)
  check_string "crash round defaults to 1" "crash=0.5@r1"
    (Distsim.Faults.to_string (schedule_of "crash=0.5"));
  check "empty is empty" true
    (Distsim.Faults.is_empty (schedule_of ""));
  check "nonempty" false
    (Distsim.Faults.is_empty (schedule_of "drop=0.01"))

let test_dsl_errors () =
  List.iter
    (fun s ->
      match Distsim.Faults.parse s with
      | Ok _ -> Alcotest.failf "parse %S should have failed" s
      | Error msg ->
          check ("error names clause " ^ s) true (String.length msg > 0))
    [
      "drop=1.5";
      "drop=-0.1";
      "drop=x";
      "dup=2";
      "wat=3";
      "crash=1.5@r2";
      "crash=vx@r2";
      "crash=v3@r0";
      (* rounds are 1-based *)
      "cut=5";
      "cut=1-2@r3..1";
      (* descending window *)
      "seed=abc";
      "=";
    ]

(* ------------------------------------------------------------------ *)
(* Determinism: same schedule, same run — across schedulers and
   shard counts, with fault metrics included in the equality. *)

let test_determinism_matrix () =
  let graphs =
    [
      ("caveman", Generators.caveman (rng 3) 4 6 0.05);
      ("gnp_40", Generators.gnp_connected (rng 5) 40 0.15);
    ]
  in
  let schedules =
    [
      "drop=0.1,seed=7";
      "drop=0.05,dup=0.05,seed=3";
      "crash=0.1@r3,seed=5";
      "cut=0-1@r2..6,drop=0.02,seed=9";
    ]
  in
  List.iter
    (fun (gname, g) ->
      let n = Ugraph.n g in
      List.iter
        (fun sstr ->
          let run ?sched ?par () =
            C.Two_spanner_local.run ~seed:11 ~retry:3 ?sched ?par
              ~adversary:(compile ~n sstr) g
          in
          let base = run () in
          let label = gname ^ "/" ^ sstr in
          (* Same seed and schedule twice: identical. *)
          let again = run () in
          check (label ^ " rerun spanner") true
            (Edge.Set.equal base.spanner again.spanner);
          check (label ^ " rerun metrics") true
            (Distsim.Engine.metrics_deterministic_eq base.metrics
               again.metrics);
          (* Across shard counts and schedulers. *)
          List.iter
            (fun (vlabel, r) ->
              check (label ^ " " ^ vlabel ^ " spanner") true
                (Edge.Set.equal base.spanner r.C.Two_spanner_local.spanner);
              check (label ^ " " ^ vlabel ^ " metrics") true
                (Distsim.Engine.metrics_deterministic_eq base.metrics
                   r.C.Two_spanner_local.metrics);
              check_int
                (label ^ " " ^ vlabel ^ " dropped")
                base.metrics.dropped r.C.Two_spanner_local.metrics.dropped;
              check_int
                (label ^ " " ^ vlabel ^ " crashed")
                base.metrics.crashed r.C.Two_spanner_local.metrics.crashed)
            [
              ("par2", run ~par:2 ());
              ("par4", run ~par:4 ());
              ("naive", run ~sched:`Naive ());
            ])
        schedules)
    graphs

(* The per-round dropped counters reconcile with the run totals, and
   the fault-free prefix of the series carries zeros. *)
let test_series_reconciles () =
  let g = Generators.gnp_connected (rng 6) 50 0.12 in
  let n = Ugraph.n g in
  let st = Distsim.Trace.stats () in
  let r =
    C.Two_spanner_local.run ~seed:2 ~retry:2
      ~adversary:(compile ~n "drop=0.08,crash=0.05@r4,seed=13")
      ~trace:(Distsim.Trace.stats_sink st) g
  in
  let series = Distsim.Trace.series st in
  let dropped_sum =
    Array.fold_left
      (fun acc row -> acc + row.Distsim.Trace.dropped)
      0 series.Distsim.Trace.rounds
  in
  check_int "series dropped reconciles" r.metrics.dropped dropped_sum;
  check "dropped some" true (r.metrics.dropped > 0);
  check "crashed some" true (r.metrics.crashed > 0);
  let final =
    series.Distsim.Trace.rounds.(Array.length series.Distsim.Trace.rounds - 1)
  in
  check_int "final row cumulative crashed" r.metrics.crashed
    final.Distsim.Trace.crashed

(* ------------------------------------------------------------------ *)
(* The empty schedule is not merely equivalent to no adversary — it is
   normalized away, so the runs are identical in every metric. *)

let test_drop_zero_identity () =
  let g = Generators.caveman (rng 8) 5 6 0.05 in
  let n = Ugraph.n g in
  let adv = compile ~n "drop=0,seed=3" in
  check "empty schedule has no faults" false (Distsim.Adversary.has_faults adv);
  let plain = C.Two_spanner_local.run ~seed:4 g in
  let under = C.Two_spanner_local.run ~seed:4 ~adversary:adv g in
  check "spanner identical" true (Edge.Set.equal plain.spanner under.spanner);
  check "metrics identical" true
    (Distsim.Engine.metrics_deterministic_eq plain.metrics under.metrics);
  check_int "nothing dropped" 0 under.metrics.dropped;
  check_int "nothing crashed" 0 under.metrics.crashed

(* ------------------------------------------------------------------ *)
(* Retransmission: [with_retry ~attempts:k] sends everything k times;
   receivers keep the first copy per source, so on a fault-free
   network the output is untouched and traffic is exactly k-fold. *)

let test_retry_multiplies_traffic_only () =
  let g = Generators.gnp_connected (rng 9) 40 0.15 in
  let base = C.Two_spanner_local.run ~seed:6 g in
  let r3 = C.Two_spanner_local.run ~seed:6 ~retry:3 g in
  check "same spanner" true (Edge.Set.equal base.spanner r3.spanner);
  check_int "3x messages" (3 * base.metrics.messages) r3.metrics.messages;
  check_int "3x bits" (3 * base.metrics.total_bits) r3.metrics.total_bits;
  check_int "same rounds" base.metrics.rounds r3.metrics.rounds

(* The receiver-side dedup, observed from inside a protocol: each
   vertex broadcasts once; under attempts = 3 every receiver still
   sees exactly one copy per neighbor. *)
let test_retry_dedup_inbox () =
  let g = Generators.complete 7 in
  let seen = Array.make (Ugraph.n g) (-1) in
  let spec =
    {
      Distsim.Engine.init =
        (fun ~n:_ ~vertex ~neighbors ~out ->
          Array.iter (fun dst -> Distsim.Engine.emit out ~dst vertex) neighbors;
          vertex);
      step =
        (fun ~round:_ ~vertex st inbox ~out:_ ->
          let count =
            Distsim.Engine.inbox_fold
              (fun acc ~src:_ _msg -> acc + 1)
              0 inbox
          in
          seen.(vertex) <- count;
          (st, `Done));
      measure = (fun _ -> 8);
    }
  in
  let _, metrics =
    Distsim.Engine.run ~model:Distsim.Model.local ~graph:g
      (Distsim.Faults.with_retry ~attempts:3 spec)
  in
  Array.iteri
    (fun v count ->
      check_int (Printf.sprintf "vertex %d sees each neighbor once" v) 6 count)
    seen;
  (* n * (n-1) wire messages per attempt. *)
  check_int "wire traffic tripled" (3 * 7 * 6) metrics.messages;
  check "attempts must be positive" true
    (try
       ignore (Distsim.Faults.with_retry ~attempts:0 spec);
       false
     with Invalid_argument _ -> true)

(* Under a drop-p adversary the retransmit wrapper keeps the LOCAL
   protocol terminating (p^retry residual loss), where a bare run may
   lose protocol-critical traffic. *)
let test_retry_survives_drops () =
  let g = Generators.caveman (rng 12) 5 6 0.05 in
  let n = Ugraph.n g in
  let r =
    C.Two_spanner_local.run ~seed:3 ~retry:4 ~max_rounds:2000
      ~adversary:(compile ~n "drop=0.15,seed=21") g
  in
  check "terminated" true (r.metrics.rounds < 2000);
  check "dropped plenty" true (r.metrics.dropped > 0)

(* ------------------------------------------------------------------ *)
(* Adversary mechanics *)

let test_crash_schedule_exact () =
  let g = Generators.complete 8 in
  let n = Ugraph.n g in
  let adv = compile ~n "crash=v2@r3,crash=v5@r3,crash=v0@r6" in
  let r = C.Two_spanner_local.run ~seed:1 ~adversary:adv g in
  check "listed crashes" true
    (Distsim.Adversary.crashed_list adv = [ 0; 2; 5 ]);
  check_int "metrics crashed" 3 r.metrics.crashed;
  check "crashed vertices flagged" true
    (Distsim.Adversary.is_crashed adv 2
    && Distsim.Adversary.is_crashed adv 5
    && not (Distsim.Adversary.is_crashed adv 1))

let test_surviving_subgraph () =
  let g = Generators.path 4 in
  (* edges 0-1, 1-2, 2-3 *)
  (* A permanent cut removes its edge; a transient one heals. *)
  let permanent =
    { Distsim.Faults.empty with cuts = [ ((0, 1), (1, max_int)) ] }
  in
  let transient =
    { Distsim.Faults.empty with cuts = [ ((0, 1), (1, 5)) ] }
  in
  let g1 = C.Resilience.surviving_subgraph g ~crashed:[] ~schedule:permanent in
  check "permanent cut removed" false (Ugraph.mem_edge g1 0 1);
  check "others stay" true (Ugraph.mem_edge g1 1 2 && Ugraph.mem_edge g1 2 3);
  let g2 = C.Resilience.surviving_subgraph g ~crashed:[] ~schedule:transient in
  check "transient cut heals" true (Ugraph.mem_edge g2 0 1);
  (* A crashed vertex takes its incident edges with it. *)
  let g3 =
    C.Resilience.surviving_subgraph g ~crashed:[ 1 ]
      ~schedule:Distsim.Faults.empty
  in
  check "crash removes incident edges" false
    (Ugraph.mem_edge g3 0 1 || Ugraph.mem_edge g3 1 2);
  check "far edge stays" true (Ugraph.mem_edge g3 2 3);
  check_int "ids preserved" (Ugraph.n g) (Ugraph.n g3)

(* ------------------------------------------------------------------ *)
(* Fault_tolerant.greedy's offline guarantee meets the fault harness:
   an f-fault-tolerant 2-spanner must 2-span the surviving subgraph
   under every crash schedule with at most f crashes. *)

let test_ft_greedy_survives_crashes () =
  let g = Generators.gnp_connected (rng 14) 24 0.35 in
  let f = 2 in
  let s = (C.Fault_tolerant.greedy g ~f).C.Fault_tolerant.spanner in
  check "offline promise" true (C.Fault_tolerant.is_ft_2_spanner g ~f s);
  let n = Ugraph.n g in
  let crash_sets =
    [ [ 0 ]; [ 3; 7 ]; [ n - 1; n - 2 ]; [ 5 ]; [ 1; 11 ] ]
  in
  List.iter
    (fun crashed ->
      let g' =
        C.Resilience.surviving_subgraph g ~crashed
          ~schedule:Distsim.Faults.empty
      in
      let s' = C.Resilience.surviving_edges s ~graph:g' in
      check
        (Printf.sprintf "survives crashes [%s]"
           (String.concat ";" (List.map string_of_int crashed)))
        true
        (C.Spanner_check.is_spanner g' s' ~k:2))
    crash_sets

(* ------------------------------------------------------------------ *)
(* The resilience report end to end, including MDS and the CONGEST
   compilation, and the bandwidth audit satellite. *)

let test_resilience_report () =
  let g = Generators.caveman (rng 15) 5 6 0.05 in
  let schedule = schedule_of "drop=0.05,crash=0.1@r3,seed=5" in
  let r =
    C.Resilience.run ~seed:7 ~retry:3 ~protocol:C.Resilience.Spanner_local
      ~schedule g
  in
  check "terminated" true r.C.Resilience.terminated;
  check "valid on survivors" true r.C.Resilience.valid;
  check "crashes recorded" true (r.C.Resilience.crashed <> []);
  check_int "survivors" (Ugraph.n g - List.length r.C.Resilience.crashed)
    r.C.Resilience.survivors;
  check "output restricted" true
    (r.C.Resilience.surviving_output <= r.C.Resilience.output_size);
  check_string "schedule echoed" (Distsim.Faults.to_string schedule)
    r.C.Resilience.schedule;
  (* MDS under duplication only: the retransmit wrapper's
     keep-first-per-source dedup also swallows adversarial duplicates,
     so nothing is lost and the run grades clean. *)
  let rm =
    C.Resilience.run ~seed:7 ~retry:2 ~protocol:C.Resilience.Mds
      ~schedule:(schedule_of "dup=0.3,seed=5") g
  in
  check "mds terminated" true rm.C.Resilience.terminated;
  check "mds valid" true rm.C.Resilience.valid;
  check_int "mds stretch" 0 rm.C.Resilience.stretch;
  (* MDS under residual loss can jam: a vertex whose one-shot Covered
     announcement is destroyed leaves a neighbor's density stale
     forever. The harness must grade that as a recorded failure, not
     an exception. *)
  let rj =
    C.Resilience.run ~seed:7 ~retry:1 ~max_rounds:600
      ~protocol:C.Resilience.Mds ~schedule:(schedule_of "drop=0.2,seed=3") g
  in
  if not rj.C.Resilience.terminated then begin
    check "jammed run records failure" true
      (rj.C.Resilience.failure <> None);
    check "jammed run is invalid" false rj.C.Resilience.valid
  end

let test_congest_chunk_corruption_reported () =
  (* Heavy loss with no retransmission corrupts a CONGEST chunk
     stream or starves termination; either way the report records a
     failure instead of raising. *)
  let g = Generators.caveman (rng 16) 4 6 0.05 in
  let schedule = schedule_of "drop=0.3,seed=2" in
  let r =
    C.Resilience.run ~seed:7 ~retry:1 ~max_rounds:300
      ~protocol:C.Resilience.Spanner_congest ~schedule g
  in
  check "did not terminate cleanly" true
    ((not r.C.Resilience.terminated) || not r.C.Resilience.valid);
  (match r.C.Resilience.failure with
  | Some msg -> check "failure nonempty" true (String.length msg > 0)
  | None -> check "no failure only if terminated" true r.C.Resilience.terminated);
  check "counts recovered" true (r.C.Resilience.messages > 0)

(* ------------------------------------------------------------------ *)
(* Chunked bandwidth audit: a chunk that exceeds the model budget
   raises with the offender's identity in audit mode, and is merely
   counted otherwise. *)

let test_chunked_bandwidth_audit () =
  let g = Generators.path 2 in
  let spec =
    {
      Distsim.Engine.init = (fun ~n:_ ~vertex ~neighbors:_ ~out:_ -> vertex);
      step =
        (fun ~round ~vertex st _inbox ~out ->
          if round = 1 && vertex = 0 then
            Distsim.Engine.emit out ~dst:1 0;
          if round < 2 then (st, `Continue) else (st, `Done));
      measure = (fun _ -> 8);
    }
  in
  (* Encode the message into one chunk far above the O(log n) budget
     of a 3-vertex CONGEST model. *)
  let huge = 1 lsl 40 in
  let encode _ = [ huge ] in
  let decode body = (0, List.tl body) in
  let model = Distsim.Model.congest ~n:2 ~c:1 () in
  let raised =
    try
      ignore
        (Distsim.Chunked.run ~audit:true ~model ~graph:g ~chunks_per_round:4
           ~encode ~decode spec);
      None
    with Distsim.Chunked.Bandwidth_exceeded { vertex; round; bits; budget } ->
      Some (vertex, round, bits, budget)
  in
  (match raised with
  | None -> Alcotest.fail "audit did not trip"
  | Some (vertex, _round, bits, budget) ->
      check_int "offender vertex" 0 vertex;
      check "bits over budget" true (bits > budget));
  (* Without audit the run completes; the engine counts violations. *)
  let _, m =
    Distsim.Chunked.run ~model ~graph:g ~chunks_per_round:4 ~encode ~decode
      spec
  in
  check "violations counted" true (m.congest_violations > 0)

let () =
  Alcotest.run "faults"
    [
      ( "dsl",
        [
          Alcotest.test_case "roundtrip" `Quick test_dsl_roundtrip;
          Alcotest.test_case "errors" `Quick test_dsl_errors;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "matrix" `Quick test_determinism_matrix;
          Alcotest.test_case "series reconciles" `Quick test_series_reconciles;
          Alcotest.test_case "drop zero identity" `Quick
            test_drop_zero_identity;
        ] );
      ( "retry",
        [
          Alcotest.test_case "traffic only" `Quick
            test_retry_multiplies_traffic_only;
          Alcotest.test_case "inbox dedup" `Quick test_retry_dedup_inbox;
          Alcotest.test_case "survives drops" `Quick test_retry_survives_drops;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "crash schedule" `Quick test_crash_schedule_exact;
          Alcotest.test_case "surviving subgraph" `Quick
            test_surviving_subgraph;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "ft greedy survives" `Quick
            test_ft_greedy_survives_crashes;
          Alcotest.test_case "report" `Quick test_resilience_report;
          Alcotest.test_case "congest corruption" `Quick
            test_congest_chunk_corruption_reported;
        ] );
      ( "chunked",
        [
          Alcotest.test_case "bandwidth audit" `Quick
            test_chunked_bandwidth_audit;
        ] );
    ]
