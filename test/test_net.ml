(* The spannerd wire subsystem, without sockets: the codec
   round-trips every frame shape exactly, the per-connection actor
   reassembles frames fed one byte at a time, seeded garbage never
   crashes it (and every line it answers is itself a well-formed
   reply), and two fresh service+connection pairs fed the same bytes
   — including a SUBSCRIBE'd session streaming engine events —
   produce byte-identical output, which is the determinism contract
   the daemon's transcript guarantee rests on. *)

open Grapho
module Net = Spannernet
module Wire = Net.Wire
module Conn = Net.Daemon.Conn
module Trace = Distsim.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Codec round-trips *)

let sample_requests : Wire.request list =
  [
    Load { family = "gnp"; n = 10_000; p = 0.0015; seed = 51 };
    Load { family = "cycle"; n = 8; p = 0.0; seed = 1 };
    Load { family = "caveman"; n = 60; p = 0.1; seed = 7 };
    Loadfile "/tmp/some graph.txt";
    Query (0, 9_999);
    Churn [ Ins (0, 4) ];
    Churn [ Del (0, 1); Ins (0, 4); Del (12, 345) ];
    Stats;
    Subscribe;
    Unsubscribe;
    Quit;
    Shutdown;
  ]

let round_stat : Trace.round_stat =
  {
    round = 3;
    messages = 17;
    bits = 544;
    max_bits = 64;
    vertices_stepped = 24;
    vertices_done = 5;
    congest_violations = 0;
    dropped = 2;
    crashed = 1;
    elapsed_ns = 0;
    minor_words = 0;
    physical = 17;
  }

let sample_replies : Wire.reply list =
  [
    Loaded { n = 24; m = 85; spanner = 41; rounds = 24 };
    Path [ 3 ];
    Path [ 0; 1; 5 ];
    Nopath (2, 17);
    Churned
      {
        tick = 1;
        deleted = 1;
        inserted = 1;
        broken = 1;
        dirty = 3;
        spanner = 43;
        valid = true;
      };
    Churned
      {
        tick = 9;
        deleted = 0;
        inserted = 2;
        broken = 0;
        dirty = 0;
        spanner = 100;
        valid = false;
      };
    Stats_reply [ ("loaded", 1.0); ("n", 24.0); ("valid", 0.0) ];
    Stats_reply [];
    Subscribed;
    Unsubscribed;
    Bye;
    Shutting_down;
    Event (Trace.Round_begin 7);
    Event (Trace.Round_end round_stat);
    Event (Trace.Phase { vertex = -1; name = "repair"; round = 2 });
    Event (Trace.Counter { name = "dirty"; value = 3.0; round = 0 });
    Event (Trace.Fault_injected { round = 3; kind = Trace.Crash 7 });
    Event (Trace.Fault_injected { round = 1; kind = Trace.Cut (2, 9) });
    Err "unknown request \"GARBAGE\"";
    Err "vertex out of range (n=24)";
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      let line = Wire.print_request r in
      check ("one line: " ^ line) true (not (String.contains line '\n'));
      match Wire.parse_request line with
      | Ok r' -> check ("roundtrip " ^ line) true (r = r')
      | Error e -> Alcotest.failf "parse_request %S: %s" line e)
    sample_requests

let test_reply_roundtrip () =
  List.iter
    (fun r ->
      let line = Wire.print_reply r in
      check ("one line: " ^ line) true (not (String.contains line '\n'));
      match Wire.parse_reply line with
      | Ok r' -> check ("roundtrip " ^ line) true (r = r')
      | Error e -> Alcotest.failf "parse_reply %S: %s" line e)
    sample_replies

let test_parse_rejects () =
  (* Malformed frames answer Error, never raise — and the reasons are
     single-line so they can be echoed inside an ERR frame. *)
  List.iter
    (fun s ->
      match Wire.parse_request s with
      | Ok _ -> Alcotest.failf "parse_request %S unexpectedly succeeded" s
      | Error e ->
          check ("reason is one line for " ^ s) true
            (not (String.contains e '\n')))
    [
      "";
      "GARBAGE";
      "load cycle 8 0 1" (* verbs are case-sensitive *);
      "LOAD cycle 8 0" (* missing seed *);
      "LOAD cycle eight 0 1";
      "QUERY 1" (* arity *);
      "QUERY 1 2 3";
      "QUERY a b";
      "CHURN" (* empty delta *);
      "CHURN 0-1" (* missing sign *);
      "CHURN +0" (* missing dash *);
      "STATS now" (* trailing junk after a bare verb *);
      "QUIT please";
    ];
  List.iter
    (fun s ->
      match Wire.parse_reply s with
      | Ok _ -> Alcotest.failf "parse_reply %S unexpectedly succeeded" s
      | Error _ -> ())
    [
      "";
      "PATH";
      "PATH 2 0 1" (* hop count disagrees with vertex count *);
      "NOPATH 1";
      "OK";
      "OK LOADED n=1 m=2" (* missing keys *);
      "STATS not-json";
      "EVENT {\"type\":\"nonsense\"}";
    ]

(* ------------------------------------------------------------------ *)
(* Conn actor: reassembly, fuzz, determinism *)

(* A scripted session exercising every service verb plus an error and
   connection-scoped toggles. cycle 8 keeps it fast and makes CHURN
   easy to aim at a real edge. *)
let script =
  String.concat "\r\n"
    [
      "LOAD cycle 8 0.0 1";
      "QUERY 0 3";
      "QUERY 5 5";
      "CHURN -0-1 +0-4";
      "QUERY 0 1";
      "STATS";
      "GARBAGE in, ERR out";
      "SUBSCRIBE";
      "UNSUBSCRIBE";
      "STATS";
      "QUIT";
      "";
    ]

(* Run [script] through a fresh service+conn, feeding [chunk] bytes
   at a time; returns the out-buffer bytes and the final verdict. *)
let run_session ~chunk ?(subscribe_hook = false) text =
  let service = Net.Service.create () in
  let conn = Conn.create () in
  if subscribe_hook then
    (* What the daemon's event loop does for subscribed connections. *)
    Net.Service.set_on_event service (Some (Conn.push_event conn));
  let verdict = ref Conn.Continue in
  let i = ref 0 in
  let len = String.length text in
  while !i < len do
    let k = min chunk (len - !i) in
    verdict := Conn.feed conn service (String.sub text !i k);
    i := !i + k
  done;
  (Net.Netbuf.contents (Conn.output conn), !verdict)

let test_partial_frame_reassembly () =
  let whole, v1 = run_session ~chunk:max_int script in
  let bytes, v2 = run_session ~chunk:1 script in
  let sevens, v3 = run_session ~chunk:7 script in
  check_string "byte-at-a-time = whole-feed" whole bytes;
  check_string "7-byte chunks = whole-feed" whole sevens;
  check "QUIT closes (whole)" true (v1 = Conn.Close);
  check "QUIT closes (bytes)" true (v2 = Conn.Close);
  check "QUIT closes (chunks)" true (v3 = Conn.Close);
  (* The transcript is sane: every line is a parseable reply, the ERR
     for the garbage line is present, and the session survived it
     (replies keep coming after). *)
  let lines = String.split_on_char '\n' whole in
  let lines = List.filter (fun l -> l <> "") lines in
  List.iter
    (fun l ->
      match Wire.parse_reply l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unparseable reply %S: %s" l e)
    lines;
  let is_err l = String.length l >= 4 && String.sub l 0 4 = "ERR " in
  let rec after_err = function
    | [] -> Alcotest.fail "no ERR line in transcript"
    | l :: rest -> if is_err l then rest else after_err rest
  in
  check "connection survives a malformed line" true
    (List.length (after_err lines) >= 3);
  check "transcript ends with OK BYE" true
    (List.nth lines (List.length lines - 1) = "OK BYE")

let test_session_determinism () =
  (* Two fresh service+conn pairs fed the same bytes produce
     byte-identical output — the in-process version of the daemon
     transcript acceptance check. *)
  let a, _ = run_session ~chunk:13 script in
  let b, _ = run_session ~chunk:13 script in
  check_string "fresh sessions agree byte-for-byte" a b;
  check "transcript is non-trivial" true (String.length a > 100)

let test_subscribe_streams_events () =
  let sub_script =
    "SUBSCRIBE\nLOAD cycle 8 0.0 1\nCHURN -0-1 +0-4\nUNSUBSCRIBE\n"
  in
  let a, _ = run_session ~chunk:max_int ~subscribe_hook:true sub_script in
  let b, _ = run_session ~chunk:3 ~subscribe_hook:true sub_script in
  check_string "event stream is deterministic" a b;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' a)
  in
  let events, rest =
    List.partition
      (fun l -> String.length l >= 6 && String.sub l 0 6 = "EVENT ")
      lines
  in
  check "bootstrap + repair emitted events" true (List.length events > 0);
  check "plus the four direct replies" true (List.length rest = 4);
  List.iter
    (fun l ->
      match Wire.parse_reply l with
      | Ok (Wire.Event ev) -> (
          (* The daemon scrubs the nondeterministic Round_end fields
             before they reach the wire. *)
          match ev with
          | Trace.Round_end st ->
              check_int "elapsed_ns scrubbed" 0 st.elapsed_ns;
              check_int "minor_words scrubbed" 0 st.minor_words
          | _ -> ())
      | Ok _ -> Alcotest.failf "EVENT line parsed as non-event: %s" l
      | Error e -> Alcotest.failf "unparseable EVENT %S: %s" l e)
    events

let test_garbage_fuzz () =
  (* Random bytes (newlines included, so frames do form) never raise,
     and whatever the actor answers is itself well-formed protocol. *)
  let rng = Rng.create 0xFEED in
  for _trial = 1 to 60 do
    let service = Net.Service.create () in
    let conn = Conn.create ~max_line:512 () in
    let len = 1 + Rng.int rng 400 in
    let garbage =
      String.init len (fun _ ->
          match Rng.int rng 8 with
          | 0 -> '\n'
          | 1 -> ' '
          | _ -> Char.chr (Rng.int rng 256))
    in
    let stopped = ref false in
    String.iter
      (fun ch ->
        if not !stopped then
          match Conn.feed conn service (String.make 1 ch) with
          | Conn.Continue -> ()
          | Conn.Close | Conn.Shutdown -> stopped := true)
      garbage;
    String.split_on_char '\n' (Net.Netbuf.contents (Conn.output conn))
    |> List.iter (fun l ->
           if l <> "" then
             match Wire.parse_reply l with
             | Ok _ -> ()
             | Error e -> Alcotest.failf "fuzz reply %S unparseable: %s" l e)
  done

let test_overlong_line_closes () =
  let service = Net.Service.create () in
  let conn = Conn.create ~max_line:64 () in
  (* 200 bytes, no newline: the frame boundary is lost for good, so
     the actor must answer ERR and close rather than buffer forever. *)
  let v = Conn.feed conn service (String.make 200 'x') in
  check "overlong unterminated line closes" true (v = Conn.Close);
  let out = Net.Netbuf.contents (Conn.output conn) in
  check "answers an ERR frame" true
    (String.length out >= 4 && String.sub out 0 4 = "ERR ")

(* ------------------------------------------------------------------ *)
(* Service semantics through the actor *)

let feed_all conn service text = ignore (Conn.feed conn service text)

let replies_of conn =
  let out = Net.Netbuf.contents (Conn.output conn) in
  Net.Netbuf.clear (Conn.output conn);
  String.split_on_char '\n' out
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match Wire.parse_reply l with
         | Ok r -> r
         | Error e -> Alcotest.failf "reply %S unparseable: %s" l e)

let test_service_semantics () =
  let service = Net.Service.create () in
  let conn = Conn.create () in
  (* Before a LOAD, graph-facing requests answer ERR and count as
     service errors in STATS. *)
  feed_all conn service "QUERY 0 1\nCHURN +1-2\n";
  (match replies_of conn with
  | [ Wire.Err _; Wire.Err _ ] -> ()
  | _ -> Alcotest.fail "pre-load QUERY/CHURN should both ERR");
  feed_all conn service "LOAD cycle 8 0.0 1\n";
  (match replies_of conn with
  | [ Wire.Loaded { n = 8; m = 8; spanner; rounds = _ } ] ->
      (* A cycle is its own (only) 2-spanner. *)
      check_int "cycle spanner keeps every edge" 8 spanner
  | _ -> Alcotest.fail "LOAD cycle 8 reply shape");
  (* Query path: endpoints right, hops bounded by the spanner BFS. *)
  feed_all conn service "QUERY 0 3\n";
  (match replies_of conn with
  | [ Wire.Path (v0 :: _ :: _ as p) ] ->
      check_int "path starts at u" 0 v0;
      check_int "path ends at v" 3 (List.nth p (List.length p - 1))
  | _ -> Alcotest.fail "QUERY 0 3 should find a path");
  (* Out-of-range vertex: ERR, connection survives. *)
  feed_all conn service "QUERY 0 99\nSTATS\n";
  (match replies_of conn with
  | [ Wire.Err _; Wire.Stats_reply fields ] ->
      check "stats reports loaded" true
        (List.assoc "loaded" fields = 1.0);
      check "stats counted the errors" true
        (List.assoc "errors" fields >= 3.0);
      check "stats counted the path" true (List.assoc "paths" fields = 1.0)
  | _ -> Alcotest.fail "out-of-range QUERY then STATS");
  (* A churn tick through the incremental engine: certificate breaks,
     repair runs, and the daemon's answer matches a direct
     Incremental run on the same graph. *)
  feed_all conn service "CHURN -0-1 +0-4\n";
  (match replies_of conn with
  | [ Wire.Churned { tick = 1; deleted = 1; inserted = 1; valid; _ } ] ->
      check "repair left a valid spanner" true valid
  | _ -> Alcotest.fail "CHURN reply shape");
  (* The deleted edge is gone: 0-1 now resolves through the repaired
     spanner (or not at all), and the service still answers. *)
  feed_all conn service "QUERY 0 1\n";
  (match replies_of conn with
  | [ Wire.Path _ ] | [ Wire.Nopath (0, 1) ] -> ()
  | _ -> Alcotest.fail "post-churn QUERY should answer PATH or NOPATH");
  (* Connection-scoped verbs routed to the service are a gentle
     programming-error ERR, not a crash. *)
  (match Net.Service.handle service Wire.Subscribe with
  | Wire.Err _ -> ()
  | _ -> Alcotest.fail "Subscribe at the service should ERR")

let test_stats_roundtrip_through_wire () =
  (* The full 15-field STATS payload survives print/parse with order
     and values intact. *)
  let service = Net.Service.create () in
  ignore
    (Net.Service.handle service
       (Wire.Load { family = "caveman"; n = 24; p = 0.1; seed = 7 }));
  let fields = Net.Service.stats service in
  check_int "fixed field count" 15 (List.length fields);
  let line = Wire.print_reply (Wire.Stats_reply fields) in
  match Wire.parse_reply line with
  | Ok (Wire.Stats_reply fields') ->
      check "stats fields round-trip in order" true (fields = fields')
  | Ok _ | Error _ -> Alcotest.failf "STATS line did not round-trip: %s" line

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply roundtrip" `Quick test_reply_roundtrip;
          Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
        ] );
      ( "conn",
        [
          Alcotest.test_case "partial-frame reassembly" `Quick
            test_partial_frame_reassembly;
          Alcotest.test_case "session determinism" `Quick
            test_session_determinism;
          Alcotest.test_case "subscribe streams events" `Quick
            test_subscribe_streams_events;
          Alcotest.test_case "garbage fuzz" `Quick test_garbage_fuzz;
          Alcotest.test_case "overlong line closes" `Quick
            test_overlong_line_closes;
        ] );
      ( "service",
        [
          Alcotest.test_case "semantics" `Quick test_service_semantics;
          Alcotest.test_case "stats wire roundtrip" `Quick
            test_stats_roundtrip_through_wire;
        ] );
    ]
