(* The structured tracing layer: the per-round series a Stats sink
   accumulates must reconcile exactly with the engine's aggregate
   metrics, the JSONL export must round-trip through the codec, and
   the sink plumbing (null detection, tee, send gating) must behave as
   documented — these invariants are what make a trace trustworthy as
   evidence for the paper's per-round claims. *)

open Grapho
module C = Spanner_core
module T = Distsim.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let rng seed = Rng.create seed

(* ---- Stats series vs Engine.metrics ------------------------------ *)

let series_of_run f =
  let st = T.stats () in
  let metrics = f (T.stats_sink st) in
  (T.series st, metrics)

let check_series_reconciles label (s : T.series)
    (m : Distsim.Engine.metrics) =
  let rows = s.T.rounds in
  check_int (label ^ " rows = rounds + 1") (m.rounds + 1) (Array.length rows);
  Array.iteri
    (fun i (r : T.round_stat) ->
      check_int (Printf.sprintf "%s row %d is round %d" label i i) i r.round)
    rows;
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 rows in
  check_int (label ^ " sum messages")
    m.messages
    (sum (fun (r : T.round_stat) -> r.messages));
  check_int (label ^ " sum bits")
    m.total_bits
    (sum (fun (r : T.round_stat) -> r.bits));
  check_int (label ^ " sum stepped")
    m.steps
    (sum (fun (r : T.round_stat) -> r.vertices_stepped));
  check_int (label ^ " sum violations")
    m.congest_violations
    (sum (fun (r : T.round_stat) -> r.congest_violations));
  let max_bits =
    Array.fold_left (fun acc (r : T.round_stat) -> max acc r.max_bits) 0 rows
  in
  check_int (label ^ " max max_bits") m.max_message_bits max_bits

let test_stats_reconcile () =
  List.iter
    (fun (name, g) ->
      (* LOCAL protocol, both schedulers. *)
      List.iter
        (fun (sched, sname) ->
          let s, m =
            series_of_run (fun sink ->
                (C.Two_spanner_local.run ~seed:7 ~sched ~trace:sink g).metrics)
          in
          check_series_reconciles
            (Printf.sprintf "%s/%s" name sname)
            s m)
        [ (`Active, "active"); (`Naive, "naive") ];
      (* CONGEST compilation: the series covers the compiled rounds. *)
      let s, m =
        series_of_run (fun sink ->
            (C.Two_spanner_local.run_congest ~seed:7 ~trace:sink g).metrics)
      in
      check_series_reconciles (name ^ "/congest") s m;
      (* MDS. *)
      let s, m =
        series_of_run (fun sink ->
            (C.Mds.run ~rng:(rng 7) ~trace:sink g).metrics)
      in
      check_series_reconciles (name ^ "/mds") s m)
    [
      ("K10", Generators.complete 10);
      ("caveman", Generators.caveman (rng 1) 4 6 0.05);
      ("gnp_40", Generators.gnp_connected (rng 2) 40 0.2);
    ]

let test_stats_round0_is_init () =
  let g = Generators.gnp_connected (rng 3) 30 0.2 in
  let s, _ =
    series_of_run (fun sink ->
        (C.Two_spanner_local.run ~seed:1 ~trace:sink g).metrics)
  in
  (* Round 0 is initialization: every vertex runs [init]. *)
  check_int "round 0 stepped = n" (Ugraph.n g)
    s.T.rounds.(0).T.vertices_stepped

let test_phase_markers () =
  let g = Generators.caveman (rng 4) 4 6 0.05 in
  let s, m =
    series_of_run (fun sink ->
        (C.Two_spanner_local.run ~seed:2 ~trace:sink g).metrics)
  in
  (* One marker per stepped round: warmup + the 12 cyclic names. *)
  let marked = List.fold_left (fun acc (_, k) -> acc + k) 0 s.T.phases in
  check_int "one phase marker per round" m.rounds marked;
  List.iter
    (fun (name, _) ->
      check ("known phase name: " ^ name) true
        (name = "warmup"
        || Array.exists (( = ) name) C.Two_spanner_local.phase_names))
    s.T.phases;
  (* The engine-level run emits its own counters and phases. *)
  let st = T.stats () in
  let r = C.Two_spanner.run ~seed:2 ~sink:(T.stats_sink st) g in
  let s = T.series st in
  check "uncovered counter present" true
    (List.mem_assoc "uncovered" s.T.counters);
  check_int "one commit marker per star" r.stars_added
    (try List.assoc "commit" s.T.phases with Not_found -> 0);
  check_int "one candidate marker per candidacy" r.candidate_count
    (try List.assoc "candidate" s.T.phases with Not_found -> 0)

(* ---- JSONL round-trip -------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "trace_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_jsonl_roundtrip () =
  with_temp_file (fun path ->
      let g = Generators.caveman (rng 5) 3 5 0.05 in
      let captured = ref [] in
      let oc = open_out path in
      let sink =
        T.tee
          (T.jsonl oc)
          (T.custom (fun ev -> captured := ev :: !captured))
      in
      ignore (C.Two_spanner_local.run ~seed:9 ~trace:sink g);
      close_out oc;
      let captured = List.rev !captured in
      let lines = ref [] in
      let ic = open_in path in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check_int "one line per event" (List.length captured)
        (List.length lines);
      List.iter2
        (fun line ev ->
          match T.event_of_json line with
          | Ok parsed ->
              check ("round-trips: " ^ line) true (parsed = ev)
          | Error msg -> Alcotest.failf "unparsable %s: %s" line msg)
        lines captured;
      (* And the parsed Send/Round_end lines reconcile with metrics. *)
      let r = C.Two_spanner_local.run ~seed:9 g in
      let send_bits =
        List.fold_left
          (fun acc line ->
            match T.event_of_json line with
            | Ok (T.Send { bits; _ }) -> acc + bits
            | _ -> acc)
          0 lines
      in
      check_int "sum of Send bits = total_bits" r.metrics.total_bits
        send_bits)

let test_codec_cases () =
  let roundtrip ev =
    match T.event_of_json (T.event_to_json ev) with
    | Ok ev' -> check ("codec: " ^ T.event_to_json ev) true (ev = ev')
    | Error msg -> Alcotest.failf "codec failed: %s" msg
  in
  roundtrip (T.Round_begin 0);
  roundtrip (T.Round_begin 123456);
  roundtrip
    (T.Round_end
       {
         T.round = 3;
         messages = 12;
         bits = 480;
         max_bits = 40;
         vertices_stepped = 7;
         vertices_done = 2;
         congest_violations = 0;
         dropped = 0;
         crashed = 0;
         elapsed_ns = 8125;
         minor_words = 2048;
         physical = 12;
       });
  roundtrip
    (T.Round_end
       {
         T.round = 5;
         messages = 9;
         bits = 90;
         max_bits = 10;
         vertices_stepped = 4;
         vertices_done = 4;
         congest_violations = 1;
         dropped = 3;
         crashed = 2;
         elapsed_ns = 17;
         minor_words = 0;
         physical = 4;
       });
  (* Pre-PR8 round_end lines carry no "physical" field; they must
     still parse, with the physical stream defaulting to the logical
     one (the two coincide on plain runs). *)
  (match
     T.event_of_json
       "{\"ev\":\"round_end\",\"round\":2,\"messages\":7,\"bits\":70,\
        \"max_bits\":10,\"stepped\":3,\"done\":1,\"violations\":0,\"ns\":42}"
   with
  | Ok (T.Round_end s) ->
      check_int "absent physical defaults to messages" 7 s.T.physical
  | Ok _ -> Alcotest.fail "parsed to the wrong event"
  | Error msg -> Alcotest.failf "pre-PR8 round_end: %s" msg);
  roundtrip (T.Send { src = 0; dst = 41; bits = 17; round = 2 });
  roundtrip (T.Fault_injected { round = 3; kind = T.Crash 7 });
  roundtrip (T.Fault_injected { round = 1; kind = T.Cut (2, 9) });
  roundtrip (T.Fault_injected { round = 8; kind = T.Restore (2, 9) });
  roundtrip
    (T.Message_dropped { src = 4; dst = 5; round = 6; reason = T.Dropped_random });
  roundtrip
    (T.Message_dropped { src = 0; dst = 1; round = 2; reason = T.Dropped_crashed });
  roundtrip
    (T.Message_dropped { src = 9; dst = 3; round = 4; reason = T.Dropped_cut });
  roundtrip (T.Phase { vertex = -1; name = "global"; round = 0 });
  roundtrip (T.Phase { vertex = 3; name = "with \"quotes\" \\ and\nnewline"; round = 9 });
  roundtrip (T.Counter { name = "uncovered"; value = 347.0; round = 1 });
  roundtrip (T.Counter { name = "ratio"; value = 0.125; round = 4 });
  List.iter
    (fun bad ->
      match T.event_of_json bad with
      | Ok _ -> Alcotest.failf "should not parse: %s" bad
      | Error _ -> ())
    [
      "";
      "{";
      "not json";
      "{\"ev\":\"nope\",\"round\":1}";
      "{\"ev\":\"send\",\"round\":1}";
      "{\"ev\":\"phase\",\"round\":1,\"vertex\":2,\"name\":3}";
      "{\"ev\":\"round_begin\",\"round\":1} trailing";
    ]

(* \uXXXX escapes must decode to UTF-8 bytes — including surrogate
   pairs for astral characters — and lone surrogates must be rejected,
   per RFC 8259. *)
let test_unicode_escapes () =
  let line name_json =
    Printf.sprintf "{\"ev\":\"phase\",\"round\":1,\"vertex\":0,\"name\":\"%s\"}"
      name_json
  in
  let parse_name escaped =
    match T.event_of_json (line escaped) with
    | Ok (T.Phase { name; _ }) -> name
    | Ok _ -> Alcotest.fail "parsed to the wrong event"
    | Error msg -> Alcotest.failf "unparsable %s: %s" escaped msg
  in
  Alcotest.(check string) "ascii escape" "A" (parse_name "\\u0041");
  Alcotest.(check string) "latin-1 escape" "caf\xc3\xa9"
    (parse_name "caf\\u00e9");
  Alcotest.(check string) "bmp escape (euro sign)" "\xe2\x82\xac"
    (parse_name "\\u20ac");
  Alcotest.(check string) "surrogate pair (emoji)" "\xf0\x9f\x98\x80"
    (parse_name "\\ud83d\\ude00");
  Alcotest.(check string) "mixed" "a\xc3\xa9b" (parse_name "a\\u00E9b");
  List.iter
    (fun bad ->
      match T.event_of_json (line bad) with
      | Ok _ -> Alcotest.failf "should not parse: %s" bad
      | Error _ -> ())
    [
      "\\ud83d" (* lone high surrogate *);
      "\\ud83dxx" (* high surrogate, no low escape *);
      "\\ude00" (* lone low surrogate *);
      "\\ud83d\\u0041" (* high surrogate followed by non-low *);
      "\\u12" (* truncated *);
      "\\uzzzz" (* non-hex *);
    ];
  (* Raw UTF-8 bytes pass through the encoder unescaped and survive a
     round trip. *)
  let ev =
    T.Phase { vertex = 2; name = "caf\xc3\xa9 \xf0\x9f\x98\x80"; round = 3 }
  in
  (match T.event_of_json (T.event_to_json ev) with
  | Ok ev' -> check "utf8 round-trip" true (ev = ev')
  | Error msg -> Alcotest.failf "utf8 round-trip: %s" msg);
  (* The exposed flat-object parser decodes the same way. *)
  match T.parse_flat_json "{\"a\":\"\\u00e9\",\"b\":2}" with
  | Ok fields ->
      check "flat string field" true
        (List.assoc "a" fields = T.Jstr "\xc3\xa9");
      check "flat number field" true (List.assoc "b" fields = T.Jnum 2.0)
  | Error msg -> Alcotest.failf "parse_flat_json: %s" msg

(* ---- sink plumbing ----------------------------------------------- *)

let test_sink_plumbing () =
  check "null is null" true (T.is_null T.null);
  check "null wants no sends" false (T.wants_sends T.null);
  let s = T.custom (fun _ -> ()) in
  check "custom not null" false (T.is_null s);
  check "custom wants sends by default" true (T.wants_sends s);
  check "sends:false respected" false
    (T.wants_sends (T.custom ~sends:false (fun _ -> ())));
  let st = T.stats () in
  check "stats sink skips sends" false (T.wants_sends (T.stats_sink st));
  (* tee null s == s (same sink, not a wrapper). *)
  check "tee null left" false (T.is_null (T.tee T.null s));
  check "tee null right" false (T.is_null (T.tee s T.null));
  check "tee of nulls is null" true (T.is_null (T.tee T.null T.null));
  (* tee wants sends iff either side does. *)
  let quiet = T.custom ~sends:false (fun _ -> ()) in
  check "tee sends or" true (T.wants_sends (T.tee quiet s));
  check "tee sends neither" false (T.wants_sends (T.tee quiet quiet));
  (* of_observer delivers Send events only. *)
  let seen = ref 0 in
  let obs = T.of_observer (fun ~src:_ ~dst:_ ~bits -> seen := !seen + bits) in
  T.emit obs (T.Send { src = 0; dst = 1; bits = 5; round = 1 });
  T.emit obs (T.Round_begin 2);
  T.emit obs (T.Phase { vertex = 0; name = "x"; round = 2 });
  check_int "observer saw only the send" 5 !seen;
  (* jsonl ~sends:false suppresses Send lines but keeps the rest. *)
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = T.jsonl ~sends:false oc in
      T.emit sink (T.Send { src = 0; dst = 1; bits = 5; round = 1 });
      T.emit sink (T.Round_begin 2);
      close_out oc;
      let ic = open_in path in
      let first = input_line ic in
      let rest = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      check "send suppressed" true
        (T.event_of_json first = Ok (T.Round_begin 2));
      check "single line" true (rest = None));
  (* send_filter keeps only matching pairs. *)
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = T.jsonl ~send_filter:(fun ~src ~dst:_ -> src = 0) oc in
      T.emit sink (T.Send { src = 1; dst = 0; bits = 3; round = 1 });
      T.emit sink (T.Send { src = 0; dst = 1; bits = 4; round = 1 });
      close_out oc;
      let ic = open_in path in
      let first = input_line ic in
      let rest = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      check "filtered send kept" true
        (T.event_of_json first
        = Ok (T.Send { src = 0; dst = 1; bits = 4; round = 1 }));
      check "other send dropped" true (rest = None))

let () =
  Alcotest.run "trace"
    [
      ( "stats",
        [
          Alcotest.test_case "series reconciles with metrics" `Quick
            test_stats_reconcile;
          Alcotest.test_case "round 0 is init" `Quick
            test_stats_round0_is_init;
          Alcotest.test_case "phase markers" `Quick test_phase_markers;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "codec cases" `Quick test_codec_cases;
          Alcotest.test_case "unicode escapes" `Quick test_unicode_escapes;
        ] );
      ( "sinks",
        [ Alcotest.test_case "plumbing" `Quick test_sink_plumbing ] );
    ]
