(* The wall-clock profiler: installing it must not change the
   simulated execution, its deterministic contents (histograms, phase
   schedule, span counts) must be identical across schedulers and
   shard counts, its histograms must reconcile with the engine
   metrics, and the Chrome trace_event export must stay inside the
   repo's own flat-JSON dialect. *)

open Grapho
module C = Spanner_core
module T = Distsim.Trace
module P = Distsim.Profile
module H = Distsim.Histogram

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let rng seed = Rng.create seed

(* One profiled LOCAL run: returns (result, profile, per-round series). *)
let profiled_run ?(par = 1) ?sched g =
  let prof = P.create () in
  let st = T.stats () in
  let sink = T.tee (T.stats_sink st) (P.sink prof) in
  let r = C.Two_spanner_local.run ~seed:7 ?sched ~par ~trace:sink ~profile:prof g in
  (r, prof, T.series st)

let graphs () =
  [
    ("K12", Generators.complete 12);
    ("caveman", Generators.caveman (rng 1) 4 6 0.05);
    ("gnp_60", Generators.gnp_connected (rng 2) 60 0.15);
  ]

(* ---- profiling is observational ---------------------------------- *)

let test_profile_does_not_perturb () =
  List.iter
    (fun (name, g) ->
      let plain = C.Two_spanner_local.run ~seed:7 g in
      let r, _, _ = profiled_run g in
      check (name ^ ": same spanner") true
        (Edge.Set.equal plain.spanner r.spanner);
      check (name ^ ": same deterministic metrics") true
        (Distsim.Engine.metrics_deterministic_eq plain.metrics r.metrics))
    (graphs ())

(* ---- determinism across schedulers and shard counts -------------- *)

let phase_shape p =
  List.map (fun (row : P.phase_row) -> (row.phase, row.occurrences))
    (P.phase_breakdown p)

(* Series equality modulo the clock/GC-valued per-round fields, which
   sit outside the determinism contract exactly like the profiler's
   own span durations. *)
let scrub (r : T.round_stat) = { r with T.elapsed_ns = 0; minor_words = 0 }

let series_eq (a : T.series) (b : T.series) =
  a.T.phases = b.T.phases
  && a.T.counters = b.T.counters
  && Array.length a.T.rounds = Array.length b.T.rounds
  &&
  let ok = ref true in
  Array.iteri
    (fun i r -> if scrub r <> scrub b.T.rounds.(i) then ok := false)
    a.T.rounds;
  !ok

let test_par_matrix () =
  List.iter
    (fun (name, g) ->
      let r0, p0, s0 = profiled_run g in
      List.iter
        (fun (label, par, sched) ->
          let r, p, s = profiled_run ~par ?sched g in
          let l = Printf.sprintf "%s/%s" name label in
          check (l ^ ": spanner identical") true
            (Edge.Set.equal r0.spanner r.spanner);
          check (l ^ ": metrics identical") true
            (Distsim.Engine.metrics_deterministic_eq r0.metrics r.metrics);
          check (l ^ ": round series identical") true (series_eq s0 s);
          (* Profile contents: everything but the clocks agrees. *)
          check (l ^ ": message-bits histogram") true
            (H.equal (P.message_bits p0) (P.message_bits p));
          check (l ^ ": inbox histogram") true
            (H.equal (P.inbox_sizes p0) (P.inbox_sizes p));
          check_int (l ^ ": rounds profiled") (P.rounds_profiled p0)
            (P.rounds_profiled p);
          check_int (l ^ ": round-time samples") (H.count (P.round_times p0))
            (H.count (P.round_times p));
          check (l ^ ": phase schedule") true
            (phase_shape p0 = phase_shape p);
          check_int (l ^ ": fault instants") (P.fault_count p0)
            (P.fault_count p))
        [
          ("par2", 2, None);
          ("par4", 4, None);
          ("naive", 1, Some `Naive);
        ])
    (graphs ())

(* ---- reconciliation with engine metrics -------------------------- *)

let test_reconciles_with_metrics () =
  List.iter
    (fun (name, g) ->
      let r, p, _ = profiled_run ~par:2 g in
      let m = r.C.Two_spanner_local.metrics in
      check_int (name ^ ": one bits sample per message") m.messages
        (H.count (P.message_bits p));
      check_int (name ^ ": bits sum = total_bits") m.total_bits
        (H.sum (P.message_bits p));
      check_int (name ^ ": bits max = max_message_bits") m.max_message_bits
        (H.max_value (P.message_bits p));
      (* Inbox sizes: one sample per step call; init calls have no
         inbox, so steps = n inits + inbox samples. *)
      check_int (name ^ ": one inbox sample per step")
        (m.steps - Ugraph.n g)
        (H.count (P.inbox_sizes p));
      (* Round spans: one per engine round including round 0. *)
      check_int (name ^ ": round spans = rounds + 1") (m.rounds + 1)
        (P.rounds_profiled p);
      check_int (name ^ ": round-time histogram matches") (m.rounds + 1)
        (H.count (P.round_times p));
      (* Parallel run: shard totals exist and phases were captured. *)
      check_int (name ^ ": two shard tracks") 2
        (Array.length (P.shard_ns p));
      check (name ^ ": phases captured") true (P.phase_breakdown p <> []))
    (graphs ())

let test_fault_instants () =
  let g = Generators.caveman (rng 3) 4 6 0.05 in
  let schedule =
    match Distsim.Faults.parse "crash=0.2@r3,cut=0-1@r2..4,seed=5" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let adversary = Distsim.Faults.compile ~n:(Ugraph.n g) schedule in
  let prof = P.create () in
  ignore
    (C.Two_spanner_local.run ~seed:7 ~adversary ~profile:prof
       ~trace:(P.sink prof) g);
  check "fault instants recorded" true (P.fault_count prof > 0)

(* ---- Chrome export ----------------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let test_chrome_parses_with_own_codec () =
  let g = Generators.caveman (rng 1) 4 6 0.05 in
  let _, prof, _ = profiled_run ~par:2 g in
  let path = Filename.temp_file "profile_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      P.write_chrome prof oc;
      close_out oc;
      match read_lines path with
      | [] | [ _ ] -> Alcotest.fail "chrome export is empty"
      | first :: rest ->
          Alcotest.(check string) "opens an array" "[" first;
          let last = List.nth rest (List.length rest - 1) in
          Alcotest.(check string) "closes the array" "]" last;
          let events = List.filteri (fun i _ -> i < List.length rest - 1) rest in
          check_int "one line per event" (P.chrome_event_count prof)
            (List.length events);
          let cats = Hashtbl.create 8 in
          List.iteri
            (fun i line ->
              (* Strip the separating comma: every event but the last
                 ends with one. *)
              let line =
                if i < List.length events - 1 then
                  String.sub line 0 (String.length line - 1)
                else line
              in
              match T.parse_flat_json line with
              | Error msg -> Alcotest.failf "event %d unparsable: %s" i msg
              | Ok fields ->
                  List.iter
                    (fun key ->
                      check
                        (Printf.sprintf "event %d has %S" i key)
                        true
                        (List.mem_assoc key fields))
                    [ "name"; "cat"; "ph"; "ts"; "pid"; "tid" ];
                  (match List.assoc "ph" fields with
                  | T.Jstr "X" ->
                      check (Printf.sprintf "event %d has dur" i) true
                        (List.mem_assoc "dur" fields)
                  | T.Jstr "i" -> ()
                  | _ -> Alcotest.failf "event %d: unexpected ph" i);
                  (match List.assoc "cat" fields with
                  | T.Jstr c -> Hashtbl.replace cats c ()
                  | _ -> Alcotest.failf "event %d: cat not a string" i))
            events;
          (* A par-2 profile has all four track families. *)
          List.iter
            (fun c -> check ("category present: " ^ c) true
                (Hashtbl.mem cats c))
            [ "round"; "phase"; "shard"; "merge" ])

let () =
  Alcotest.run "profile"
    [
      ( "determinism",
        [
          Alcotest.test_case "profiling is observational" `Quick
            test_profile_does_not_perturb;
          Alcotest.test_case "seq vs par vs naive" `Quick test_par_matrix;
        ] );
      ( "reconcile",
        [
          Alcotest.test_case "histograms vs metrics" `Quick
            test_reconciles_with_metrics;
          Alcotest.test_case "fault instants" `Quick test_fault_instants;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "parses with the flat-JSON codec" `Quick
            test_chrome_parses_with_own_codec;
        ] );
    ]
