(* The message-frugality layer (Engine.run ?frugal): correctness
   contract and exact physical accounting.

   The contract under test: the layer is INVISIBLE to the logical
   execution. Spanner, round series and all logical metrics are
   bit-identical with and without ?frugal, under every scheduler,
   shard count and fault schedule; only metrics.sent_physical /
   sent_bits (and the physical column of the round series) change. *)

open Grapho
module C = Spanner_core
module E = Distsim.Engine
module T = Distsim.Trace

let rng seed = Rng.create seed
let protocol_graph () = Generators.caveman (rng 19) 4 6 0.05

(* The logical projection of a round row: everything deterministic
   except the physical column (and the simulator-side noise fields). *)
let logical_row (r : T.round_stat) =
  ( r.round,
    r.messages,
    r.bits,
    r.max_bits,
    r.vertices_stepped,
    r.vertices_done,
    r.congest_violations,
    r.dropped,
    r.crashed )

let run_protocol ?sched ?par ?frugal ?adversary ?(retry = 1) g =
  let st = T.stats () in
  let r =
    C.Two_spanner_local.run ~seed:3 ?sched ?par ?frugal ?adversary ~retry
      ~trace:(T.stats_sink st) g
  in
  (r, (T.series st).T.rounds)

let check_logical_identical name (a, sa) (b, sb) =
  Alcotest.(check bool)
    (name ^ ": same spanner")
    true
    (Edge.Set.equal a.C.Two_spanner_local.spanner
       b.C.Two_spanner_local.spanner);
  Alcotest.(check int)
    (name ^ ": same iterations")
    a.C.Two_spanner_local.iterations b.C.Two_spanner_local.iterations;
  Alcotest.(check bool)
    (name ^ ": metrics_logical_eq")
    true
    (E.metrics_logical_eq a.metrics b.metrics);
  Alcotest.(check int)
    (name ^ ": same series length")
    (Array.length sa) (Array.length sb);
  Array.iteri
    (fun i ra ->
      if logical_row ra <> logical_row sb.(i) then
        Alcotest.failf "%s: logical round row %d differs" name i)
    sa

(* Plain vs frugal across the scheduler/shard matrix: every
   combination produces the same logical execution, and the frugal
   physical stream is itself scheduler-invariant. *)
let test_matrix () =
  let g = protocol_graph () in
  let fr = Distsim.Frugal.create g in
  let plain = run_protocol g in
  let configs =
    [
      ("active", Some `Active, None);
      ("naive", Some `Naive, None);
      ("par2", Some `Active, Some 2);
      ("par4", Some `Active, Some 4);
    ]
  in
  let frugal_runs =
    List.map
      (fun (name, sched, par) ->
        (name, run_protocol ?sched ?par ~frugal:fr g))
      configs
  in
  List.iter
    (fun (name, fruns) -> check_logical_identical ("frugal " ^ name) plain fruns)
    frugal_runs;
  (* The physical stream is deterministic too: same sent_physical /
     sent_bits and the same per-round physical column for every
     scheduler and shard count. *)
  let (r0, s0) = snd (List.hd frugal_runs) in
  List.iter
    (fun (name, (r, s)) ->
      Alcotest.(check int)
        (name ^ ": sent_physical scheduler-invariant")
        r0.C.Two_spanner_local.metrics.sent_physical
        r.C.Two_spanner_local.metrics.sent_physical;
      Alcotest.(check int)
        (name ^ ": sent_bits scheduler-invariant")
        r0.C.Two_spanner_local.metrics.sent_bits
        r.C.Two_spanner_local.metrics.sent_bits;
      Array.iteri
        (fun i (row : T.round_stat) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: physical col round %d" name i)
            s0.(i).T.physical row.T.physical)
        s)
    (List.tl frugal_runs);
  (* And the reduction is real on this broadcast-shaped protocol. *)
  let m = (fst plain).C.Two_spanner_local.metrics in
  let fm = r0.C.Two_spanner_local.metrics in
  if fm.sent_physical * 2 > m.messages then
    Alcotest.failf "expected >= 2x physical reduction, got %d of %d"
      fm.sent_physical m.messages

(* The same contract under a deterministic fault schedule: drops must
   invalidate the suppression memo (an undelivered payload cannot
   license later silence) without ever touching the adversary's coin
   stream. Duplication exercises the faulted-copy path. *)
let test_faulted () =
  let g = protocol_graph () in
  let fr = Distsim.Frugal.create g in
  List.iter
    (fun spec ->
      let schedule =
        match Distsim.Faults.parse spec with
        | Ok s -> s
        | Error e -> failwith e
      in
      let adv () = Distsim.Faults.compile ~n:(Ugraph.n g) schedule in
      let plain = run_protocol ~adversary:(adv ()) ~retry:3 g in
      let frug = run_protocol ~adversary:(adv ()) ~retry:3 ~frugal:fr g in
      check_logical_identical ("faulted " ^ spec) plain frug)
    [
      "drop=0.1,crash=0.1@r3,seed=13";
      "dup=0.2,seed=5";
      "drop=0.05,dup=0.1,seed=7";
    ]

(* Exact silence arithmetic on a synthetic one-edge protocol: vertex 0
   sends the SAME 10-bit payload to vertex 1 for [k] consecutive
   rounds. The edge machine must spell it as
     Data(10) + Again(2) + (k-2) silences + Eps(2)
   = 3 physical messages, 14 physical bits — against k logical
   messages, 10k logical bits. *)
let test_silence_arithmetic () =
  let g = Ugraph.of_edges ~n:2 [ (0, 1) ] in
  let k = 7 in
  let spec =
    {
      E.init =
        (fun ~n:_ ~vertex ~neighbors:_ ~out ->
          if vertex = 0 then E.emit out ~dst:1 42;
          0);
      step =
        (fun ~round ~vertex st _inbox ~out ->
          if vertex = 0 && round < k then begin
            E.emit out ~dst:1 42;
            (st, if round = k - 1 then `Done else `Continue)
          end
          else (st, `Done));
      measure = (fun _ -> 10);
    }
  in
  List.iter
    (fun (name, sched) ->
      let fr = Distsim.Frugal.create g in
      let _, m =
        E.run ~sched ~frugal:fr ~model:Distsim.Model.local ~graph:g spec
      in
      Alcotest.(check int) (name ^ ": logical messages") k m.E.messages;
      Alcotest.(check int) (name ^ ": logical bits") (10 * k) m.E.total_bits;
      Alcotest.(check int) (name ^ ": physical messages") 3 m.E.sent_physical;
      Alcotest.(check int) (name ^ ": physical bits") 14 m.E.sent_bits;
      Alcotest.(check int)
        (name ^ ": suppressed run length")
        (k - 2)
        (Distsim.Frugal.suppressed fr);
      Alcotest.(check int)
        (name ^ ": two markers (Again + Eps)")
        2
        (Distsim.Frugal.markers fr);
      Alcotest.(check int) (name ^ ": no publishes") 0
        (Distsim.Frugal.publishes fr))
    [ ("active", `Active); ("naive", `Naive) ]

(* Broadcast-shaped traffic rides the collection trees: flood-min-id
   re-broadcasts whole rows, so the frugal run must publish into
   hubs, flush collects, and land strictly below the logical message
   count. Logical results stay bit-identical. *)
let test_flood_trees () =
  let g = Generators.gnp_connected (rng 31) 240 0.08 in
  let fr = Distsim.Frugal.create g in
  let plain_vals, pm = Distsim.Algorithms.flood_min_id g in
  let frugal_vals, fm = Distsim.Algorithms.flood_min_id ~frugal:fr g in
  Alcotest.(check bool) "flood values identical" true (plain_vals = frugal_vals);
  Alcotest.(check bool)
    "flood metrics_logical_eq" true
    (E.metrics_logical_eq pm fm);
  if fm.E.sent_physical >= pm.E.messages then
    Alcotest.failf "flood physical %d >= logical %d" fm.E.sent_physical
      pm.E.messages;
  Alcotest.(check bool)
    "publishes happened" true
    (Distsim.Frugal.publishes fr > 0);
  Alcotest.(check bool)
    "collects happened" true
    (Distsim.Frugal.collects fr > 0)

(* Tree construction: deterministic for a fixed seed, hubs inside the
   closed neighborhood, heap-shaped trees of degree <= 3. *)
let test_tree_wellformed () =
  let g = Generators.caveman (rng 23) 8 8 0.03 in
  let a = Distsim.Frugal.create g in
  let b = Distsim.Frugal.create g in
  let n = Ugraph.n g in
  for v = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "hub(%d) deterministic" v)
      (Distsim.Frugal.hub a v) (Distsim.Frugal.hub b v);
    let h = Distsim.Frugal.hub a v in
    let closed = h = v || Ugraph.mem_edge g v h in
    if not closed then
      Alcotest.failf "hub(%d) = %d outside the closed neighborhood" v h;
    if Distsim.Frugal.tree_degree a v > 3 then
      Alcotest.failf "tree degree %d > 3 at %d"
        (Distsim.Frugal.tree_degree a v)
        v;
    let p = Distsim.Frugal.tree_parent a v in
    if p >= 0 then begin
      (* Parent edges stay inside the hub's cluster: same hub. *)
      Alcotest.(check int)
        (Printf.sprintf "parent(%d) shares the hub" v)
        h
        (Distsim.Frugal.hub a p)
    end
  done;
  Alcotest.(check int)
    "tree count deterministic"
    (Distsim.Frugal.tree_count a) (Distsim.Frugal.tree_count b);
  Alcotest.(check bool)
    "max tree degree <= 3" true
    (Distsim.Frugal.max_tree_degree a <= 3);
  (* A different seed may pick different hubs (same graph, different
     mixing) — but stays well-formed. *)
  let c = Distsim.Frugal.create ~seed:0xFEED g in
  for v = 0 to n - 1 do
    let h = Distsim.Frugal.hub c v in
    if not (h = v || Ugraph.mem_edge g v h) then
      Alcotest.failf "seeded hub(%d) = %d outside closed neighborhood" v h
  done

(* Plain runs must keep the degenerate invariant: the physical stream
   IS the logical stream. *)
let test_frugal_off_invariant () =
  let g = protocol_graph () in
  let r, _ = run_protocol g in
  Alcotest.(check int)
    "sent_physical = messages"
    r.C.Two_spanner_local.metrics.messages
    r.C.Two_spanner_local.metrics.sent_physical;
  Alcotest.(check int)
    "sent_bits = total_bits" r.C.Two_spanner_local.metrics.total_bits
    r.C.Two_spanner_local.metrics.sent_bits

(* A Frugal.t is bound to its graph: running it against a different
   graph is a programming error the engine rejects up front. *)
let test_wrong_graph_rejected () =
  let g1 = Generators.caveman (rng 19) 4 6 0.05 in
  let g2 = Generators.gnp_connected (rng 2) 50 0.2 in
  let fr = Distsim.Frugal.create g1 in
  match C.Two_spanner_local.run ~seed:3 ~frugal:fr g2 with
  | _ -> Alcotest.fail "expected Invalid_argument for a foreign graph"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Auto mode: observe first, then arm or stay at parity. *)

(* Repeat-heavy single edge, window 3: rounds 0..3 observed at full
   charge (4 x 10 bits), the window sees repeats=3 > 2*runs=2 and
   arms, round 4 pays the 2-bit Again, 5..6 are silenced, and the Eps
   closes the run — 6 physical messages, 44 bits, against 7 logical
   messages, 70 bits. *)
let test_auto_arms () =
  let g = Ugraph.of_edges ~n:2 [ (0, 1) ] in
  let k = 7 in
  let spec =
    {
      E.init =
        (fun ~n:_ ~vertex ~neighbors:_ ~out ->
          if vertex = 0 then E.emit out ~dst:1 42;
          0);
      step =
        (fun ~round ~vertex st _inbox ~out ->
          if vertex = 0 && round < k then begin
            E.emit out ~dst:1 42;
            (st, if round = k - 1 then `Done else `Continue)
          end
          else (st, `Done));
      measure = (fun _ -> 10);
    }
  in
  List.iter
    (fun (name, sched) ->
      let fr = Distsim.Frugal.create ~mode:(Distsim.Frugal.Auto 3) g in
      let _, m =
        E.run ~sched ~frugal:fr ~model:Distsim.Model.local ~graph:g spec
      in
      Alcotest.(check int) (name ^ ": logical messages") k m.E.messages;
      Alcotest.(check int) (name ^ ": physical messages") 6 m.E.sent_physical;
      Alcotest.(check int) (name ^ ": physical bits") 44 m.E.sent_bits;
      Alcotest.(check int) (name ^ ": armed once") 1
        (Distsim.Frugal.auto_armed fr);
      Alcotest.(check int) (name ^ ": never disarmed") 0
        (Distsim.Frugal.auto_disarmed fr))
    [ ("active", `Active); ("naive", `Naive) ]

(* Non-repeating single edge: the window sees zero repeats, stays at
   parity, and the physical stream is EXACTLY the logical one — the
   1.00x floor that Always mode loses to markers. *)
let test_auto_stays_at_parity () =
  let g = Ugraph.of_edges ~n:2 [ (0, 1) ] in
  let k = 9 in
  let spec =
    {
      E.init =
        (fun ~n:_ ~vertex ~neighbors:_ ~out ->
          if vertex = 0 then E.emit out ~dst:1 0;
          0);
      step =
        (fun ~round ~vertex st _inbox ~out ->
          if vertex = 0 && round < k then begin
            E.emit out ~dst:1 round;
            (st, if round = k - 1 then `Done else `Continue)
          end
          else (st, `Done));
      measure = (fun _ -> 10);
    }
  in
  let fr = Distsim.Frugal.create ~mode:(Distsim.Frugal.Auto 3) g in
  let _, m = E.run ~frugal:fr ~model:Distsim.Model.local ~graph:g spec in
  Alcotest.(check int) "physical = logical messages" m.E.messages
    m.E.sent_physical;
  Alcotest.(check int) "physical = logical bits" m.E.total_bits m.E.sent_bits;
  Alcotest.(check int) "disarmed once" 1 (Distsim.Frugal.auto_disarmed fr);
  Alcotest.(check int) "no markers" 0 (Distsim.Frugal.markers fr);
  Alcotest.(check int) "no suppressions" 0 (Distsim.Frugal.suppressed fr)

(* Auto on the real protocol: logical execution identical to plain,
   physical stream deterministic across schedulers and shard
   counts, never above the logical stream (the >= 1.0x guarantee the
   bench gates). Exercised on LOCAL and on the chunked CONGEST
   compilation, where Always mode used to land at 0.97x. *)
let test_auto_protocol () =
  let g = protocol_graph () in
  let auto () =
    Distsim.Frugal.create ~mode:(Distsim.Frugal.Auto 6) g
  in
  let plain = run_protocol g in
  let base = run_protocol ~frugal:(auto ()) g in
  check_logical_identical "auto local" plain base;
  List.iter
    (fun (name, sched, par) ->
      let r = run_protocol ?sched ?par ~frugal:(auto ()) g in
      check_logical_identical ("auto local " ^ name) plain r;
      Alcotest.(check int)
        (name ^ ": physical scheduler-invariant")
        (fst base).C.Two_spanner_local.metrics.sent_physical
        (fst r).C.Two_spanner_local.metrics.sent_physical)
    [
      ("naive", Some `Naive, None);
      ("par2", None, Some 2);
      ("par4", None, Some 4);
    ];
  (* Chunked CONGEST: auto must not lose to markers. *)
  let cp = C.Two_spanner_local.run_congest ~seed:3 g in
  let ca =
    C.Two_spanner_local.run_congest ~seed:3 ~frugal:(auto ()) g
  in
  Alcotest.(check bool)
    "congest spanner identical" true
    (Edge.Set.equal cp.C.Two_spanner_local.spanner
       ca.C.Two_spanner_local.spanner);
  let pm = cp.C.Two_spanner_local.metrics
  and am = ca.C.Two_spanner_local.metrics in
  Alcotest.(check bool) "congest logical_eq" true (E.metrics_logical_eq pm am);
  if am.E.sent_physical > pm.E.messages then
    Alcotest.failf "congest auto physical %d > logical %d (under 1.0x)"
      am.E.sent_physical pm.E.messages;
  if am.E.sent_bits > pm.E.total_bits then
    Alcotest.failf "congest auto bits %d > logical %d (under 1.0x)"
      am.E.sent_bits pm.E.total_bits

let test_auto_rejects_bad_window () =
  let g = protocol_graph () in
  match Distsim.Frugal.create ~mode:(Distsim.Frugal.Auto 0) g with
  | _ -> Alcotest.fail "Auto 0 accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "frugal"
    [
      ( "contract",
        [
          Alcotest.test_case "plain = frugal across sched x par" `Quick
            test_matrix;
          Alcotest.test_case "plain = frugal under faults" `Quick test_faulted;
          Alcotest.test_case "frugal-off: physical = logical" `Quick
            test_frugal_off_invariant;
          Alcotest.test_case "foreign graph rejected" `Quick
            test_wrong_graph_rejected;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "silence arithmetic: 3 msgs, b+4 bits" `Quick
            test_silence_arithmetic;
          Alcotest.test_case "flood rides the collection trees" `Quick
            test_flood_trees;
        ] );
      ( "trees",
        [
          Alcotest.test_case "deterministic, well-formed, degree <= 3" `Quick
            test_tree_wellformed;
        ] );
      ( "auto",
        [
          Alcotest.test_case "repeat-heavy edge arms after the window" `Quick
            test_auto_arms;
          Alcotest.test_case "non-repeating edge stays at exact parity" `Quick
            test_auto_stays_at_parity;
          Alcotest.test_case "protocol: logical identical, >= 1.0x on congest"
            `Quick test_auto_protocol;
          Alcotest.test_case "Auto 0 rejected" `Quick
            test_auto_rejects_bad_window;
        ] );
    ]
