(* The log₂-binned histograms under the profiler: bin boundaries must
   be exact (the determinism of profile contents across shard counts
   rests on every value landing in the same bin everywhere), merging
   per-shard histograms must equal recording the concatenated stream,
   percentile estimates must be monotone and clamped to the observed
   range, and recording must not allocate — the histograms sit on the
   engine's zero-allocation hot path. *)

module H = Distsim.Histogram

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- bin boundaries ---------------------------------------------- *)

let test_bin_boundaries () =
  check_int "v<=0 lands in bin 0" 0 (H.bin_index 0);
  check_int "negative clamps to bin 0" 0 (H.bin_index (-17));
  (* Every power of two opens a new bin; its predecessor closes the
     previous one. *)
  for b = 1 to 61 do
    let lo = 1 lsl (b - 1) in
    check_int (Printf.sprintf "2^%d opens bin %d" (b - 1) b) b (H.bin_index lo);
    check_int
      (Printf.sprintf "2^%d - 1 closes bin %d" b b)
      b
      (H.bin_index ((2 * lo) - 1));
    check_int (Printf.sprintf "bin_lo %d" b) lo (H.bin_lo b);
    check_int (Printf.sprintf "bin_hi %d" b) ((2 * lo) - 1) (H.bin_hi b)
  done;
  check_int "bin_lo 0" 0 (H.bin_lo 0);
  check_int "bin_hi 0" 0 (H.bin_hi 0);
  check_int "max_int fits" (H.num_bins - 1) (H.bin_index max_int);
  (* Exhaustive small range: bin_index v = bit length of v. *)
  for v = 1 to 4096 do
    let rec bits n = if n = 0 then 0 else 1 + bits (n lsr 1) in
    check_int (Printf.sprintf "bit length of %d" v) (bits v) (H.bin_index v)
  done

let test_aggregates () =
  let h = H.create () in
  check_int "empty count" 0 (H.count h);
  check_int "empty max" 0 (H.max_value h);
  check_int "empty percentile" 0 (H.percentile h 0.5);
  List.iter (H.record h) [ 5; 1; 9; 0; 1024; -3 ];
  check_int "count" 6 (H.count h);
  check_int "sum (negatives clamp to 0)" (5 + 1 + 9 + 0 + 1024) (H.sum h);
  check_int "min" 0 (H.min_value h);
  check_int "max" 1024 (H.max_value h);
  check_int "bin 0 holds 0 and the clamped -3" 2 (H.bin_count h 0);
  check_int "bin of 1024" 1 (H.bin_count h (H.bin_index 1024));
  H.clear h;
  check_int "cleared" 0 (H.count h);
  check "clear restores equality with fresh" true (H.equal h (H.create ()))

(* ---- merge = concat-then-build ----------------------------------- *)

let test_merge_is_concat () =
  let rng = Grapho.Rng.create 42 in
  (* Three shard-like streams with very different scales. *)
  let streams =
    List.init 3 (fun i ->
        List.init (200 + (37 * i)) (fun _ ->
            let scale = 1 lsl (4 * Grapho.Rng.int rng 8) in
            Grapho.Rng.int rng (max 2 scale)))
  in
  let shards = List.map (fun vs -> let h = H.create () in
                          List.iter (H.record h) vs; h) streams in
  let merged = H.create () in
  List.iter (fun h -> H.merge_into ~into:merged h) shards;
  let sequential = H.create () in
  List.iter (List.iter (H.record sequential)) streams;
  check "merge equals sequential recording" true (H.equal merged sequential);
  (* Order independence: merging in reverse gives the same contents. *)
  let reversed = H.create () in
  List.iter (fun h -> H.merge_into ~into:reversed h) (List.rev shards);
  check "merge order irrelevant" true (H.equal reversed sequential);
  (* The non-destructive merge agrees. *)
  match shards with
  | [ a; b; c ] ->
      let ab_c = H.merge (H.merge a b) c in
      check "merge (pure) equals sequential" true (H.equal ab_c sequential)
  | _ -> assert false

(* ---- percentiles -------------------------------------------------- *)

let test_percentile_monotone () =
  let rng = Grapho.Rng.create 7 in
  let h = H.create () in
  for _ = 1 to 5000 do
    H.record h (Grapho.Rng.int rng 1_000_000)
  done;
  let prev = ref (H.percentile h 0.0) in
  for i = 0 to 100 do
    let p = float_of_int i /. 100.0 in
    let v = H.percentile h p in
    check (Printf.sprintf "monotone at p=%.2f" p) true (v >= !prev);
    prev := v
  done;
  check "p0 clamps to min" true (H.percentile h 0.0 >= H.min_value h);
  check_int "p100 is max" (H.max_value h) (H.percentile h 1.0);
  check_int "out-of-range p clamps" (H.max_value h) (H.percentile h 2.0)

let test_percentile_exact_single_value () =
  (* A bin holding one distinct value reports it exactly. *)
  let h = H.create () in
  for _ = 1 to 100 do H.record h 64 done;
  List.iter
    (fun p -> check_int (Printf.sprintf "constant at p=%.2f" p) 64
        (H.percentile h p))
    [ 0.01; 0.5; 0.9; 0.99; 1.0 ];
  (* Two well-separated values: the median must be one of them, and
     p99 the larger. *)
  let h2 = H.create () in
  for _ = 1 to 50 do H.record h2 2 done;
  for _ = 1 to 50 do H.record h2 4096 done;
  check_int "p25 is the low value" 2 (H.percentile h2 0.25);
  check_int "p99 is the high value" 4096 (H.percentile h2 0.99)

(* ---- zero allocation in the steady state ------------------------- *)

let test_record_does_not_allocate () =
  let h = H.create () in
  (* Warm up (first records touch nothing allocatable, but keep the
     pattern of the engine's GC guards). *)
  for v = 0 to 999 do H.record h v done;
  let before = Gc.minor_words () in
  for v = 0 to 99_999 do
    H.record h (v * 17)
  done;
  H.merge_into ~into:h h;
  let allocated = Gc.minor_words () -. before in
  (* 100k records + a merge against a tiny constant budget: the probe
     itself boxes a couple of floats, anything proportional to the
     record count is a regression. *)
  if allocated > 100.0 then
    Alcotest.failf "recording allocated %.0f minor words" allocated

let () =
  Alcotest.run "histogram"
    [
      ( "bins",
        [
          Alcotest.test_case "boundaries exact" `Quick test_bin_boundaries;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
        ] );
      ( "merge",
        [ Alcotest.test_case "equals concat-then-build" `Quick
            test_merge_is_concat ] );
      ( "percentiles",
        [
          Alcotest.test_case "monotone in p" `Quick test_percentile_monotone;
          Alcotest.test_case "exact on single-value bins" `Quick
            test_percentile_exact_single_value;
        ] );
      ( "alloc",
        [ Alcotest.test_case "steady state allocation-free" `Quick
            test_record_does_not_allocate ] );
    ]
