(* Tests for the synchronous message-passing engine and its models. *)

open Grapho

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A spec where each vertex sends its id once and records its inbox. *)
type echo_state = { mutable seen : (int * int) list }

let echo_spec graph =
  {
    Distsim.Engine.init =
      (fun ~n:_ ~vertex ~neighbors ~out ->
        Array.iter
          (fun u -> Distsim.Engine.emit out ~dst:u vertex)
          neighbors;
        { seen = [] });
    step =
      (fun ~round:_ ~vertex:_ st inbox ~out:_ ->
        let heard =
          List.rev
            (Distsim.Engine.inbox_fold
               (fun acc ~src msg -> (src, msg) :: acc)
               [] inbox)
        in
        st.seen <- st.seen @ heard;
        (st, `Done));
    measure =
      (fun _ -> Distsim.Message.bits_for_id ~n:(max 2 (Ugraph.n graph)));
  }

let test_delivery_next_round () =
  let g = Generators.cycle 5 in
  let states, metrics =
    Distsim.Engine.run ~model:Distsim.Model.local ~graph:g (echo_spec g)
  in
  Array.iteri
    (fun v st ->
      let senders = List.map fst st.seen |> List.sort compare in
      Alcotest.(check (list int))
        "each vertex hears both neighbors"
        (Array.to_list (Ugraph.neighbors g v))
        senders;
      List.iter
        (fun (src, payload) -> check_int "payload is sender id" src payload)
        st.seen)
    states;
  check_int "messages" 10 metrics.messages

let test_inbox_sorted_by_source () =
  let g = Generators.star 6 in
  let states, _ =
    Distsim.Engine.run ~model:Distsim.Model.local ~graph:g (echo_spec g)
  in
  let center = states.(0) in
  let sources = List.map fst center.seen in
  check "sorted" true (List.sort compare sources = sources)

let test_send_to_non_neighbor_rejected () =
  let g = Generators.path 3 in
  let bad =
    {
      Distsim.Engine.init =
        (fun ~n:_ ~vertex ~neighbors:_ ~out ->
          if vertex = 0 then Distsim.Engine.emit out ~dst:2 0);
      step = (fun ~round:_ ~vertex:_ () _ ~out:_ -> ((), `Done));
      measure = (fun _ -> 1);
    }
  in
  check "raises" true
    (try
       ignore (Distsim.Engine.run ~model:Distsim.Model.local ~graph:g bad);
       false
     with Invalid_argument _ -> true)

let test_max_rounds_guard () =
  let g = Generators.path 2 in
  (* A spec that never terminates must hit the round guard. *)
  let forever =
    {
      Distsim.Engine.init =
        (fun ~n:_ ~vertex:_ ~neighbors ~out ->
          Array.iter (fun u -> Distsim.Engine.emit out ~dst:u 0) neighbors);
      step =
        (fun ~round:_ ~vertex st _ ~out ->
          Array.iter
            (fun u -> Distsim.Engine.emit out ~dst:u 0)
            (Ugraph.neighbors g vertex);
          (st, `Continue));
      measure = (fun _ -> 1);
    }
  in
  check "fails" true
    (try
       ignore
         (Distsim.Engine.run ~max_rounds:10 ~model:Distsim.Model.local
            ~graph:g forever);
       false
     with Failure _ -> true)

let test_congest_violation_counted () =
  let g = Generators.path 2 in
  let fat =
    {
      Distsim.Engine.init =
        (fun ~n:_ ~vertex:_ ~neighbors ~out ->
          Array.iter (fun u -> Distsim.Engine.emit out ~dst:u 0) neighbors);
      step = (fun ~round:_ ~vertex:_ st _ ~out:_ -> (st, `Done));
      measure = (fun _ -> 10_000);
    }
  in
  let _, metrics =
    Distsim.Engine.run
      ~model:(Distsim.Model.congest ~n:2 ())
      ~graph:g fat
  in
  check_int "violations" 2 metrics.congest_violations;
  check "strict raises" true
    (try
       ignore
         (Distsim.Engine.run ~strict:true
            ~model:(Distsim.Model.congest ~n:2 ())
            ~graph:g fat);
       false
     with Distsim.Engine.Congest_violation _ -> true)

let test_metrics_bits () =
  let g = Generators.path 2 in
  let _, metrics =
    Distsim.Engine.run ~model:Distsim.Model.local ~graph:g (echo_spec g)
  in
  check_int "total bits" (2 * Distsim.Message.bits_for_id ~n:2)
    metrics.total_bits;
  check_int "max bits" (Distsim.Message.bits_for_id ~n:2)
    metrics.max_message_bits

let test_empty_graph () =
  let g = Ugraph.empty 0 in
  let _, metrics =
    Distsim.Engine.run ~model:Distsim.Model.local ~graph:g (echo_spec g)
  in
  check_int "no rounds needed" 0 metrics.rounds

(* ------------------------------------------------------------------ *)
(* Models and messages *)

let test_model_bandwidth () =
  check "local unlimited" true
    (Distsim.Model.bandwidth Distsim.Model.local = None);
  (match Distsim.Model.bandwidth (Distsim.Model.congest ~n:1000 ()) with
  | Some b -> check "O(log n)" true (b >= 10 && b <= 80)
  | None -> Alcotest.fail "congest must bound messages")

let test_message_bits () =
  check_int "id bits 8" 4 (Distsim.Message.bits_for_id ~n:8);
  check_int "id bits 1" 1 (Distsim.Message.bits_for_id ~n:1);
  check_int "list" 6
    (Distsim.Message.bits_list (fun _ -> 2) [ 1; 2; 3 ]);
  check_int "option none" 1 (Distsim.Message.bits_option (fun _ -> 5) None);
  check_int "option some" 6
    (Distsim.Message.bits_option (fun _ -> 5) (Some 1))

(* ------------------------------------------------------------------ *)
(* Reference algorithms *)

let test_flood_min_id () =
  let g = Generators.gnp_connected (Rng.create 3) 40 0.1 in
  let values, metrics = Distsim.Algorithms.flood_min_id g in
  Array.iter (fun v -> check_int "everyone learns 0" 0 v) values;
  check "rounds at most diameter+2" true
    (metrics.rounds <= Traversal.diameter g + 2);
  check_int "congest ok" 0 metrics.congest_violations

let test_flood_two_components () =
  let g = Ugraph.of_edges ~n:5 [ (0, 1); (2, 3); (3, 4) ] in
  let values, _ = Distsim.Algorithms.flood_min_id g in
  check_int "first comp" 0 values.(1);
  check_int "second comp" 2 values.(4)

let test_bfs_matches_centralized () =
  let g = Generators.gnp_connected (Rng.create 9) 30 0.15 in
  let values, _ = Distsim.Algorithms.bfs_distances ~root:0 g in
  let reference = Traversal.bfs_distances g 0 in
  Alcotest.(check (array int)) "distances agree" reference values

let prop_flood_always_min =
  QCheck.Test.make ~name:"flooding computes component minima" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Generators.gnp (Rng.create seed) 20 0.1 in
      let values, _ = Distsim.Algorithms.flood_min_id g in
      let comp = Traversal.components g in
      let minimum = Hashtbl.create 8 in
      Array.iteri
        (fun v c ->
          let cur = Option.value ~default:max_int (Hashtbl.find_opt minimum c) in
          if v < cur then Hashtbl.replace minimum c v)
        comp;
      Array.for_all
        (fun v -> values.(v) = Hashtbl.find minimum comp.(v))
        (Array.init 20 (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* MIS and maximal matching *)

let mis_families =
  [
    ("path_30", Generators.path 30);
    ("gnp_80", Generators.gnp_connected (Rng.create 4) 80 0.1);
    ("star_25", Generators.star 25);
    ("complete_20", Generators.complete 20);
    ("grid_6x6", Generators.grid 6 6);
  ]

let check_mis g mis =
  let independent =
    Ugraph.fold_edges
      (fun e acc ->
        let u, v = Edge.endpoints e in
        acc && not (mis.(u) && mis.(v)))
      g true
  in
  let maximal = ref true in
  for v = 0 to Ugraph.n g - 1 do
    if
      (not mis.(v))
      && not (Array.exists (fun u -> mis.(u)) (Ugraph.neighbors g v))
    then maximal := false
  done;
  independent && !maximal

let test_luby_mis_valid () =
  List.iter
    (fun (name, g) ->
      let mis, metrics = Distsim.Algorithms.luby_mis ~seed:7 g in
      check (name ^ " independent+maximal") true (check_mis g mis);
      check_int (name ^ " congest ok") 0 metrics.congest_violations)
    mis_families

let test_luby_mis_complete_singleton () =
  let g = Generators.complete 15 in
  let mis, _ = Distsim.Algorithms.luby_mis ~seed:1 g in
  check_int "one vertex" 1
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mis)

let check_matching g mate =
  let ok = ref true in
  Array.iteri
    (fun v m ->
      if m >= 0 then begin
        if mate.(m) <> v then ok := false;
        if not (Ugraph.mem_edge g v m) then ok := false
      end)
    mate;
  let maximal =
    Ugraph.fold_edges
      (fun e acc ->
        let u, v = Edge.endpoints e in
        acc && not (mate.(u) < 0 && mate.(v) < 0))
      g true
  in
  !ok && maximal

let test_matching_valid () =
  List.iter
    (fun (name, g) ->
      let mate, metrics = Distsim.Algorithms.maximal_matching ~seed:3 g in
      check (name ^ " matching") true (check_matching g mate);
      check_int (name ^ " congest ok") 0 metrics.congest_violations)
    mis_families

let test_matching_gives_vertex_cover () =
  let g = Generators.gnp_connected (Rng.create 9) 50 0.15 in
  let mate, _ = Distsim.Algorithms.maximal_matching ~seed:4 g in
  let cover = ref [] in
  Array.iteri (fun v m -> if m >= 0 then cover := v :: !cover) mate;
  check "endpoints cover" true
    (Ugraph.fold_edges
       (fun e acc ->
         let u, v = Edge.endpoints e in
         acc && (mate.(u) >= 0 || mate.(v) >= 0))
       g true);
  ignore !cover

let prop_mis_valid =
  QCheck.Test.make ~name:"Luby MIS always independent and maximal" ~count:20
    QCheck.(pair (int_range 1 30) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Generators.gnp (Rng.create seed) n 0.2 in
      let mis, _ = Distsim.Algorithms.luby_mis ~seed:(seed + 1) g in
      check_mis g mis)

let prop_matching_valid =
  QCheck.Test.make ~name:"matching always symmetric and maximal" ~count:20
    QCheck.(pair (int_range 1 30) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Generators.gnp (Rng.create seed) n 0.2 in
      let mate, _ = Distsim.Algorithms.maximal_matching ~seed:(seed + 1) g in
      check_matching g mate)

(* ------------------------------------------------------------------ *)
(* Chunked LOCAL -> CONGEST compiler *)

type chk_state = { mutable heard : (int * int list) list }

let inbox_to_list inbox =
  List.rev
    (Distsim.Engine.inbox_fold
       (fun acc ~src msg -> (src, msg) :: acc)
       [] inbox)

let chunk_echo_spec payload_of =
  {
    Distsim.Engine.init =
      (fun ~n:_ ~vertex ~neighbors ~out ->
        Array.iter
          (fun u -> Distsim.Engine.emit out ~dst:u (payload_of vertex))
          neighbors;
        { heard = [] });
    step =
      (fun ~round:_ ~vertex:_ st inbox ~out:_ ->
        st.heard <- inbox_to_list inbox;
        (st, `Done));
    measure = (fun l -> 8 * (1 + List.length l));
  }

let test_chunked_reassembles () =
  let g = Generators.complete 5 in
  let payload_of v = [ v; v * 10; v * 100 ] in
  let states, metrics =
    Distsim.Chunked.run ~model:(Distsim.Model.congest ~n:5 ~c:16 ())
      ~graph:g ~chunks_per_round:6
      ~encode:(fun l -> l)
      ~decode:(fun l -> (l, []))
      (chunk_echo_spec payload_of)
  in
  Array.iteri
    (fun v st ->
      check_int "hears all neighbors" 4 (List.length st.heard);
      List.iter
        (fun (src, l) -> check "payload intact" true (l = payload_of src))
        st.heard;
      ignore v)
    states;
  check_int "no oversize chunks" 0 metrics.congest_violations

let test_chunked_rejects_oversize () =
  let g = Generators.path 2 in
  check "raises" true
    (try
       ignore
         (Distsim.Chunked.run ~model:Distsim.Model.local ~graph:g
            ~chunks_per_round:3
            ~encode:(fun l -> l)
            ~decode:(fun l -> (l, []))
            (chunk_echo_spec (fun v -> [ v; v; v; v; v ])));
       false
     with Invalid_argument _ -> true)

let test_chunked_rejects_double_send () =
  let g = Generators.path 2 in
  let double =
    {
      Distsim.Engine.init =
        (fun ~n:_ ~vertex:_ ~neighbors ~out ->
          let u = neighbors.(0) in
          Distsim.Engine.emit out ~dst:u [ 1 ];
          Distsim.Engine.emit out ~dst:u [ 2 ]);
      step = (fun ~round:_ ~vertex:_ () _ ~out:_ -> ((), `Done));
      measure = (fun _ -> 4);
    }
  in
  check "raises" true
    (try
       ignore
         (Distsim.Chunked.run ~model:Distsim.Model.local ~graph:g
            ~chunks_per_round:4
            ~encode:(fun l -> l)
            ~decode:(fun l -> (l, []))
            double);
       false
     with Invalid_argument _ -> true)

let test_chunked_multi_round () =
  (* A two-virtual-round spec: vertices broadcast their id, then echo
     the sorted ids they heard; compiled fixpoint matches. *)
  let g = Generators.cycle 6 in
  let spec =
    {
      Distsim.Engine.init =
        (fun ~n:_ ~vertex ~neighbors ~out ->
          Array.iter
            (fun u -> Distsim.Engine.emit out ~dst:u [ vertex ])
            neighbors;
          { heard = [] });
      step =
        (fun ~round ~vertex:_ st inbox ~out ->
          if round = 1 then begin
            let ids =
              List.sort compare
                (List.concat_map (fun (_, l) -> l) (inbox_to_list inbox))
            in
            Distsim.Engine.inbox_iter
              (fun ~src _ -> Distsim.Engine.emit out ~dst:src ids)
              inbox;
            (st, `Continue)
          end
          else begin
            st.heard <- inbox_to_list inbox;
            (st, `Done)
          end);
      measure = (fun l -> 8 * (1 + List.length l));
    }
  in
  let states, _ =
    Distsim.Chunked.run ~model:Distsim.Model.local ~graph:g
      ~chunks_per_round:4
      ~encode:(fun l -> l)
      ~decode:(fun l -> (l, []))
      spec
  in
  Array.iteri
    (fun v st ->
      List.iter
        (fun (src, l) ->
          check "echo contains me" true (List.mem v l);
          ignore src)
        st.heard)
    states

let () =
  Alcotest.run "distsim"
    [
      ( "engine",
        [
          Alcotest.test_case "delivery" `Quick test_delivery_next_round;
          Alcotest.test_case "inbox sorted" `Quick test_inbox_sorted_by_source;
          Alcotest.test_case "non-neighbor rejected" `Quick
            test_send_to_non_neighbor_rejected;
          Alcotest.test_case "round guard" `Quick test_max_rounds_guard;
          Alcotest.test_case "congest accounting" `Quick
            test_congest_violation_counted;
          Alcotest.test_case "bit metrics" `Quick test_metrics_bits;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
        ] );
      ( "model",
        [
          Alcotest.test_case "bandwidth" `Quick test_model_bandwidth;
          Alcotest.test_case "message bits" `Quick test_message_bits;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "flood min id" `Quick test_flood_min_id;
          Alcotest.test_case "flood components" `Quick
            test_flood_two_components;
          Alcotest.test_case "bfs" `Quick test_bfs_matches_centralized;
          QCheck_alcotest.to_alcotest prop_flood_always_min;
        ] );
      ( "chunked",
        [
          Alcotest.test_case "reassembles" `Quick test_chunked_reassembles;
          Alcotest.test_case "oversize rejected" `Quick
            test_chunked_rejects_oversize;
          Alcotest.test_case "double send rejected" `Quick
            test_chunked_rejects_double_send;
          Alcotest.test_case "multi round" `Quick test_chunked_multi_round;
        ] );
      ( "symmetry_breaking",
        [
          Alcotest.test_case "luby mis" `Quick test_luby_mis_valid;
          Alcotest.test_case "mis on clique" `Quick
            test_luby_mis_complete_singleton;
          Alcotest.test_case "maximal matching" `Quick test_matching_valid;
          Alcotest.test_case "matching covers" `Quick
            test_matching_gives_vertex_cover;
          QCheck_alcotest.to_alcotest prop_mis_valid;
          QCheck_alcotest.to_alcotest prop_matching_valid;
        ] );
    ]
