(* Tests for the lower-bound constructions of Sections 2 and 3:
   disjointness instances, G(l,b), Gw, the MVC reduction, the
   two-party meter and the bound curves. *)

open Grapho
module L = Lowerbound
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Disjointness *)

let test_disjointness_predicates () =
  let t = { L.Disjointness.a = [| true; false |]; b = [| false; true |] } in
  check "disjoint" true (L.Disjointness.is_disjoint t);
  let t2 = { L.Disjointness.a = [| true |]; b = [| true |] } in
  check "intersecting" false (L.Disjointness.is_disjoint t2);
  check_int "size" 1 (L.Disjointness.intersection_size t2);
  check "far" true (L.Disjointness.is_far_from_disjoint t2)

let test_disjointness_generators () =
  let rng = Rng.create 1 in
  for _ = 1 to 20 do
    check "disjoint gen" true
      (L.Disjointness.is_disjoint
         (L.Disjointness.random_disjoint rng ~n:30 ~density:0.6));
    check "intersecting gen" false
      (L.Disjointness.is_disjoint (L.Disjointness.random_intersecting rng ~n:30));
    check "far gen" true
      (L.Disjointness.is_far_from_disjoint (L.Disjointness.random_far rng ~n:30))
  done

(* ------------------------------------------------------------------ *)
(* Construction G (Figure 1, Theorems 1.1 / 2.8) *)

let build_g seed ~ell ~beta kind =
  let rng = Rng.create seed in
  let inputs =
    match kind with
    | `Disjoint -> L.Disjointness.random_disjoint rng ~n:(ell * ell) ~density:0.5
    | `Intersecting -> L.Disjointness.random_intersecting rng ~n:(ell * ell)
    | `Far -> L.Disjointness.random_far rng ~n:(ell * ell)
  in
  L.Construction_g.build ~ell ~beta inputs

let test_g_vertex_count () =
  let t = build_g 1 ~ell:3 ~beta:5 `Disjoint in
  check_int "n = 2lb + 5l" ((2 * 3 * 5) + (5 * 3)) (L.Construction_g.n t);
  check_int "graph agrees" (L.Construction_g.n t) (Dgraph.n t.graph)

let test_g_cut_is_theta_ell () =
  List.iter
    (fun ell ->
      let t = build_g 2 ~ell ~beta:(ell + 1) `Disjoint in
      check_int "cut = 3l" (3 * ell)
        (List.length (L.Construction_g.cut_edges t)))
    [ 2; 3; 4; 5 ]

let test_g_claim_2_2_all_blocks () =
  List.iter
    (fun kind ->
      let t = build_g 3 ~ell:3 ~beta:4 kind in
      for i = 0 to 2 do
        for r = 0 to 2 do
          check "claim 2.2" true (L.Construction_g.check_claim_2_2 t ~i ~r)
        done
      done)
    [ `Disjoint; `Intersecting; `Far ]

let test_g_disjoint_sparse_spanner () =
  (* Lemma 2.3, disjoint side: the non-D edges form a 5-spanner of at
     most 7lb edges (beta >= ell). *)
  let t = build_g 4 ~ell:3 ~beta:4 `Disjoint in
  let nonD = L.Construction_g.non_d_edges t in
  check "valid 5-spanner" true
    (C.Spanner_check.is_directed_spanner t.graph nonD ~k:5);
  check "size bound" true
    (Edge.Directed.Set.cardinal nonD <= 7 * 3 * 4);
  check_int "no forced D-edges" 0
    (Edge.Directed.Set.cardinal (L.Construction_g.forced_d_edges t))

let test_g_intersecting_forces_beta_squared () =
  (* Lemma 2.3, intersecting side: at least beta^2 forced D-edges. *)
  let t = build_g 5 ~ell:3 ~beta:4 `Intersecting in
  check "forced >= beta^2" true
    (Edge.Directed.Set.cardinal (L.Construction_g.forced_d_edges t) >= 16);
  (* and dropping any forced edge breaks the spanner *)
  let oracle = L.Construction_g.oracle_spanner t in
  check "oracle valid" true
    (C.Spanner_check.is_directed_spanner t.graph oracle ~k:5);
  let forced = L.Construction_g.forced_d_edges t in
  let e = Edge.Directed.Set.choose forced in
  check "forced edge irreplaceable" false
    (C.Spanner_check.is_directed_spanner t.graph
       (Edge.Directed.Set.remove e oracle) ~k:5)

let test_g_far_forces_many_blocks () =
  (* Lemma 2.6: far inputs force beta^2/12 * l^2 D-edges. *)
  let ell = 4 and beta = 3 in
  let t = build_g 6 ~ell ~beta `Far in
  let forced = Edge.Directed.Set.cardinal (L.Construction_g.forced_d_edges t) in
  check "many forced" true (forced * 12 >= beta * beta * ell * ell)

let test_g_decision_rule_in_regime () =
  (* With parameters from the theorem (alpha*7lb < beta^2), the
     Lemma 2.4 decision on the oracle spanner is always correct. *)
  let alpha = 1.0 in
  let ell, beta = L.Construction_g.params_randomized ~n':260 ~alpha in
  check "regime" true (alpha *. float_of_int (7 * ell * beta)
                       < float_of_int (beta * beta));
  List.iter
    (fun kind ->
      let t = build_g 7 ~ell ~beta kind in
      let spanner = L.Construction_g.oracle_spanner t in
      let verdict = L.Construction_g.decide_disjointness t ~spanner ~alpha in
      check "decision matches" true
        (verdict = L.Disjointness.is_disjoint t.inputs))
    [ `Disjoint; `Intersecting ]

let test_g_gap_decision_rule () =
  (* Deterministic regime (Thm 2.8): beta fixed ~ sqrt(alpha), ell
     large; gap decision separates disjoint from far inputs. *)
  let alpha = 1.0 in
  let ell, beta = L.Construction_g.params_deterministic ~n':400 ~alpha in
  check "regime" true
    (alpha *. float_of_int (7 * ell * ell)
    < float_of_int (beta * beta * ell * ell) /. 12.0);
  List.iter
    (fun kind ->
      let t = build_g 17 ~ell ~beta kind in
      let spanner = L.Construction_g.oracle_spanner t in
      let verdict =
        L.Construction_g.decide_gap_disjointness t ~spanner ~alpha
      in
      match kind with
      | `Disjoint -> check "says disjoint" true verdict
      | `Far -> check "says far" false verdict
      | `Intersecting -> ())
    [ `Disjoint; `Far ]

let test_g_params () =
  let ell, beta = L.Construction_g.params_randomized ~n':1000 ~alpha:2.0 in
  check "beta = q ell" true (beta mod ell = 0 && beta / ell >= 15);
  let ell2, beta2 = L.Construction_g.params_deterministic ~n':1000 ~alpha:2.0 in
  check "beta fixed" true (beta2 >= 13);
  check "ell linear" true (ell2 >= 8)

(* ------------------------------------------------------------------ *)
(* Construction Gw (Figure 2, Theorems 2.9 / 2.10) *)

let gw_inputs seed ell kind =
  let rng = Rng.create seed in
  match kind with
  | `Disjoint -> L.Disjointness.random_disjoint rng ~n:(ell * ell) ~density:0.5
  | `Intersecting -> L.Disjointness.random_intersecting rng ~n:(ell * ell)

let test_gw_n_exact () =
  let t = L.Construction_gw.build ~ell:4 (gw_inputs 1 4 `Disjoint) in
  check_int "n = 6l" 24 (L.Construction_gw.n t);
  check_int "cut = 3l" 12 (List.length (L.Construction_gw.cut_edges t))

let test_gw_zero_cost_iff_disjoint () =
  for seed = 0 to 9 do
    let kind = if seed mod 2 = 0 then `Disjoint else `Intersecting in
    let inputs = gw_inputs seed 4 kind in
    let t = L.Construction_gw.build ~ell:4 inputs in
    List.iter
      (fun k ->
        check "zero-cost iff disjoint" true
          (L.Construction_gw.has_zero_cost_spanner t ~k
          = L.Disjointness.is_disjoint inputs))
      [ 4; 5; 6 ]
  done

let test_gw_forced_edges_counted () =
  let t = L.Construction_gw.build ~ell:4 (gw_inputs 3 4 `Intersecting) in
  check "at least one forced" true (L.Construction_gw.min_d_edges_needed t >= 1);
  let t2 = L.Construction_gw.build ~ell:4 (gw_inputs 2 4 `Disjoint) in
  check_int "none forced" 0 (L.Construction_gw.min_d_edges_needed t2)

let test_gw_undirected_variants () =
  for k = 4 to 7 do
    for seed = 0 to 3 do
      let kind = if seed mod 2 = 0 then `Disjoint else `Intersecting in
      let inputs = gw_inputs (100 + seed) 3 kind in
      let u = L.Construction_gw.build_undirected ~ell:3 ~k inputs in
      check_int "n = 6l + (k-4)l" ((6 * 3) + ((k - 4) * 3)) (Ugraph.n u.u_graph);
      check "zero-cost iff disjoint" true
        (L.Construction_gw.undirected_has_zero_cost_spanner u
        = L.Disjointness.is_disjoint inputs)
    done
  done

let test_gw_undirected_k3_rejected () =
  check "k<4 rejected" true
    (try
       ignore
         (L.Construction_gw.build_undirected ~ell:2 ~k:3 (gw_inputs 1 2 `Disjoint));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* MVC reduction (Figure 3, Claim 3.1, Theorems 3.3-3.5) *)

let test_reduction_shape () =
  let g = Generators.cycle 5 in
  let t = L.Mvc_reduction.build g in
  check_int "3n vertices" 15 (Ugraph.n t.graph);
  (* 3 triangle edges per vertex + 3 edges per base edge *)
  check_int "edge count" ((3 * 5) + (3 * 5)) (Ugraph.m t.graph)

let test_claim_3_1_small_graphs () =
  List.iter
    (fun (name, g) ->
      check name true (L.Mvc_reduction.check_claim_3_1 g))
    [
      ("edge", Generators.path 2);
      ("path4", Generators.path 4);
      ("C5", Generators.cycle 5);
      ("K4", Generators.complete 4);
      ("star6", Generators.star 6);
      (* seed re-pinned when gnp switched to geometric skip-sampling:
         the exact branch-and-bound needs a sparse instance *)
      ("gnp7", Generators.gnp_connected (Rng.create 26) 7 0.4);
    ]

let test_vc_to_spanner_direction () =
  let g = Generators.gnp_connected (Rng.create 4) 10 0.3 in
  let t = L.Mvc_reduction.build g in
  let cover = L.Mvc.two_approx g in
  let h = L.Mvc_reduction.vc_to_spanner t cover in
  check "is 2-spanner" true (C.Spanner_check.is_spanner t.graph h ~k:2);
  Alcotest.(check (float 1e-9)) "cost = |C|"
    (float_of_int (List.length cover))
    (L.Mvc_reduction.spanner_cost t h)

let test_spanner_to_vc_direction () =
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (Rng.create (40 + seed)) 15 0.25 in
    let t = L.Mvc_reduction.build g in
    let r = C.Weighted_two_spanner.run ~rng:(Rng.create seed) t.graph t.weights in
    let vc = L.Mvc_reduction.spanner_to_vc t r.spanner in
    check "valid cover" true (L.Mvc.is_vertex_cover g vc);
    check "cost dominates cover" true
      (float_of_int (List.length vc) <= r.cost +. 1e-9)
  done

let test_reduction_augmentation_weights () =
  let g = Generators.cycle 4 in
  let t = L.Mvc_reduction.build ~augmentation:true g in
  Ugraph.iter_edges
    (fun e -> check "weights in {0,1}" true (Weights.get t.weights e <= 1.0))
    t.graph

let test_claim_3_1_directed () =
  List.iter
    (fun (name, g) ->
      check name true (L.Mvc_reduction.check_claim_3_1_directed g))
    [
      ("edge", Generators.path 2);
      ("path4", Generators.path 4);
      ("C5", Generators.cycle 5);
      ("K4", Generators.complete 4);
    ]

let test_mvc_helpers () =
  let g = Generators.cycle 6 in
  check "2approx covers" true (L.Mvc.is_vertex_cover g (L.Mvc.two_approx g));
  check "greedy covers" true (L.Mvc.is_vertex_cover g (L.Mvc.greedy g));
  check "empty not cover" false (L.Mvc.is_vertex_cover g [])

(* ------------------------------------------------------------------ *)
(* Two-party meter and bounds *)

let test_meter_counts_cut_bits () =
  let inputs = L.Disjointness.random_disjoint (Rng.create 5) ~n:9 ~density:0.5 in
  let t = L.Construction_g.build ~ell:3 ~beta:4 inputs in
  let g = Dgraph.underlying t.graph in
  let rep = L.Two_party.meter_flood ~graph:g ~bob:t.bob_vertices () in
  check "bits bounded per round" true
    (rep.bits_across_cut <= rep.rounds * rep.bound_per_round);
  check "some bits crossed" true (rep.bits_across_cut > 0);
  check "cut matches construction" true (rep.cut_edge_count >= 3 * 3)

let test_meter_cut_free_when_bob_empty () =
  let g = Generators.gnp_connected (Rng.create 6) 20 0.2 in
  let rep = L.Two_party.meter_flood ~graph:g ~bob:[] () in
  check_int "no cut" 0 rep.cut_edge_count;
  check_int "no cut bits" 0 rep.bits_across_cut

let test_bound_curves_shape () =
  (* Monotonicity sanity of the theorem curves. *)
  check "1.1 grows with n" true
    (L.Bounds.thm_1_1_randomized ~n:40_000 ~alpha:1.0
    > L.Bounds.thm_1_1_randomized ~n:10_000 ~alpha:1.0);
  check "1.1 shrinks with alpha" true
    (L.Bounds.thm_1_1_randomized ~n:10_000 ~alpha:16.0
    < L.Bounds.thm_1_1_randomized ~n:10_000 ~alpha:1.0);
  check "2.8 above 1.1" true
    (L.Bounds.thm_2_8_deterministic ~n:10_000 ~alpha:4.0
    > L.Bounds.thm_1_1_randomized ~n:10_000 ~alpha:4.0);
  check "2.10 below 2.9" true
    (L.Bounds.thm_2_10_weighted_undirected ~n:10_000 ~k:5
    < L.Bounds.thm_2_9_weighted_directed ~n:10_000);
  check "3.5 near quadratic" true
    (L.Bounds.thm_3_5_exact_congest ~n:1000 > 5000.0);
  check "simulation rounds" true
    (L.Bounds.simulation_rounds ~bits:1000 ~cut:10 ~bandwidth:10 = 5.0)

let prop_gw_iff =
  QCheck.Test.make ~name:"Gw zero-cost spanner iff disjoint" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let inputs = L.Disjointness.random rng ~n:9 ~density:0.4 in
      let t = L.Construction_gw.build ~ell:3 inputs in
      L.Construction_gw.has_zero_cost_spanner t ~k:4
      = L.Disjointness.is_disjoint inputs)

let prop_claim_2_2 =
  QCheck.Test.make ~name:"Claim 2.2 holds for random inputs" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let inputs = L.Disjointness.random rng ~n:4 ~density:0.5 in
      let t = L.Construction_g.build ~ell:2 ~beta:3 inputs in
      let ok = ref true in
      for i = 0 to 1 do
        for r = 0 to 1 do
          if not (L.Construction_g.check_claim_2_2 t ~i ~r) then ok := false
        done
      done;
      !ok)

let prop_reduction_roundtrip =
  QCheck.Test.make ~name:"VC -> spanner -> VC does not grow" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Generators.gnp_connected (Rng.create seed) 10 0.3 in
      let t = L.Mvc_reduction.build g in
      let cover = L.Mvc.two_approx g in
      let h = L.Mvc_reduction.vc_to_spanner t cover in
      let back = L.Mvc_reduction.spanner_to_vc t h in
      L.Mvc.is_vertex_cover g back
      && List.length back <= List.length cover)

let () =
  Alcotest.run "lowerbound"
    [
      ( "disjointness",
        [
          Alcotest.test_case "predicates" `Quick test_disjointness_predicates;
          Alcotest.test_case "generators" `Quick test_disjointness_generators;
        ] );
      ( "construction_g",
        [
          Alcotest.test_case "vertex count" `Quick test_g_vertex_count;
          Alcotest.test_case "cut size" `Quick test_g_cut_is_theta_ell;
          Alcotest.test_case "claim 2.2" `Quick test_g_claim_2_2_all_blocks;
          Alcotest.test_case "disjoint sparse" `Quick
            test_g_disjoint_sparse_spanner;
          Alcotest.test_case "intersecting forces" `Quick
            test_g_intersecting_forces_beta_squared;
          Alcotest.test_case "far forces many" `Quick test_g_far_forces_many_blocks;
          Alcotest.test_case "decision rule" `Quick test_g_decision_rule_in_regime;
          Alcotest.test_case "gap decision rule" `Quick
            test_g_gap_decision_rule;
          Alcotest.test_case "parameter choices" `Quick test_g_params;
          QCheck_alcotest.to_alcotest prop_claim_2_2;
        ] );
      ( "construction_gw",
        [
          Alcotest.test_case "shape" `Quick test_gw_n_exact;
          Alcotest.test_case "zero-cost iff disjoint" `Quick
            test_gw_zero_cost_iff_disjoint;
          Alcotest.test_case "forced edges" `Quick test_gw_forced_edges_counted;
          Alcotest.test_case "undirected variants" `Quick
            test_gw_undirected_variants;
          Alcotest.test_case "k<4 rejected" `Quick test_gw_undirected_k3_rejected;
          QCheck_alcotest.to_alcotest prop_gw_iff;
        ] );
      ( "mvc_reduction",
        [
          Alcotest.test_case "shape" `Quick test_reduction_shape;
          Alcotest.test_case "claim 3.1" `Quick test_claim_3_1_small_graphs;
          Alcotest.test_case "claim 3.1 directed" `Quick
            test_claim_3_1_directed;
          Alcotest.test_case "vc to spanner" `Quick test_vc_to_spanner_direction;
          Alcotest.test_case "spanner to vc" `Quick test_spanner_to_vc_direction;
          Alcotest.test_case "augmentation weights" `Quick
            test_reduction_augmentation_weights;
          Alcotest.test_case "mvc helpers" `Quick test_mvc_helpers;
          QCheck_alcotest.to_alcotest prop_reduction_roundtrip;
        ] );
      ( "two_party",
        [
          Alcotest.test_case "meter" `Quick test_meter_counts_cut_bits;
          Alcotest.test_case "empty bob" `Quick test_meter_cut_free_when_bob_empty;
          Alcotest.test_case "bound curves" `Quick test_bound_curves_shape;
        ] );
    ]
