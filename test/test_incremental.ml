(* Incremental churn repair: per-tick validity against the fast
   checker (itself pinned to the BFS checker here), determinism of
   the repaired spanner across schedulers and shard counts, and the
   engine's sparse-activation contract. *)

open Grapho
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let families =
  [
    ("gnp", fun s -> Generators.gnp_connected (Rng.create s) 70 0.08);
    ("pa", fun s -> Generators.preferential_attachment (Rng.create s) 80 5);
    ("caveman", fun s -> Generators.caveman (Rng.create s) 6 8 0.08);
  ]

(* ------------------------------------------------------------------ *)
(* Fast validity checker == BFS checker, on spanners and non-spanners. *)

let test_fast_checker () =
  List.iter
    (fun (name, mk) ->
      let g = mk 3 in
      let r = C.Two_spanner_local.run ~seed:9 g in
      check (name ^ ": protocol spanner fast-valid") true
        (C.Spanner_check.is_2_spanner_fast g r.spanner);
      check (name ^ ": agrees on spanner") true
        (C.Spanner_check.is_spanner g r.spanner ~k:2
        = C.Spanner_check.is_2_spanner_fast g r.spanner);
      (* Thin the spanner edge by edge until the checkers must say no;
         they must agree at every step. *)
      let s = ref r.spanner in
      let i = ref 0 in
      Edge.Set.iter
        (fun e ->
          incr i;
          if !i mod 3 = 0 then begin
            s := Edge.Set.remove e !s;
            check
              (Printf.sprintf "%s: agree after %d removals" name !i)
              true
              (C.Spanner_check.is_spanner g !s ~k:2
              = C.Spanner_check.is_2_spanner_fast g !s)
          end)
        r.spanner)
    families;
  (* Subset violation raises in both. *)
  let g = Generators.path 4 in
  let bogus = Edge.Set.singleton (Edge.make 0 3) in
  (match C.Spanner_check.is_2_spanner_fast g bogus with
  | _ -> Alcotest.fail "foreign edge accepted"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Sparse activation. *)

let test_active_full_set () =
  (* active = all vertices is the plain run, state for state. *)
  let g = Generators.gnp_connected (Rng.create 5) 50 0.12 in
  let act = Array.init (Ugraph.n g) Fun.id in
  let full = C.Two_spanner_local.run ~seed:11 g in
  let sparse = C.Two_spanner_local.run ~seed:11 ~active:act g in
  check "full-set spanner equal" true
    (Edge.Set.equal full.spanner sparse.spanner);
  check_int "full-set iterations" full.iterations sparse.iterations;
  check "full-set metrics" true
    (Distsim.Engine.metrics_deterministic_eq full.metrics sparse.metrics)

let test_active_subset () =
  let g = Generators.gnp_connected (Rng.create 6) 60 0.15 in
  (* An arbitrary subset; the protocol runs on the induced subgraph. *)
  let act = Array.of_list (List.init 25 (fun i -> 2 * i)) in
  let r = C.Two_spanner_local.run ~seed:7 ~active:act g in
  let member = Array.make (Ugraph.n g) false in
  Array.iter (fun v -> member.(v) <- true) act;
  let induced =
    Ugraph.of_edge_iter ~n:(Ugraph.n g) (fun emit ->
        Ugraph.iter_edges_uv
          (fun u v -> if member.(u) && member.(v) then emit u v)
          g)
  in
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      check "spanner edge inside ball" true (member.(u) && member.(v)))
    r.spanner;
  check "valid on induced subgraph" true
    (C.Spanner_check.is_spanner induced r.spanner ~k:2);
  (* And identical to running the protocol on the induced subgraph
     directly (global ids coincide, so the vote streams do too). *)
  let direct = C.Two_spanner_local.run ~seed:7 induced in
  let direct_restricted =
    (* The direct run also covers the frozen vertices (isolated in
       [induced]), which add no edges; the spanners must coincide. *)
    direct.spanner
  in
  check "matches induced-subgraph run" true
    (Edge.Set.equal direct_restricted r.spanner)

let test_active_guards () =
  let g = Generators.path 6 in
  let expect_invalid name f =
    match f () with
    | (_ : C.Two_spanner_local.result) -> Alcotest.fail name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "descending active" (fun () ->
      C.Two_spanner_local.run ~active:[| 2; 1 |] g);
  expect_invalid "duplicate active" (fun () ->
      C.Two_spanner_local.run ~active:[| 1; 1 |] g);
  expect_invalid "out-of-range active" (fun () ->
      C.Two_spanner_local.run ~active:[| 4; 6 |] g);
  expect_invalid "frugal + active" (fun () ->
      C.Two_spanner_local.run
        ~frugal:(Distsim.Frugal.create g)
        ~active:[| 0; 1 |] g)

(* ------------------------------------------------------------------ *)
(* Churn traces: validity every tick, determinism across engines. *)

let run_trace ?sched ?par ~seed ~gseed ~ticks mk =
  let g = mk gseed in
  let inc, (_ : C.Two_spanner_local.result) =
    C.Incremental.bootstrap ~seed ?sched ?par g
  in
  let rng = Rng.create (seed lxor (31 * gseed)) in
  let d = Ugraph.Delta.create () in
  let replace = max 1 (Ugraph.m g / 50) in
  let stats = ref [] in
  for _ = 1 to ticks do
    C.Incremental.churn ~rng ~replace (C.Incremental.graph inc) d;
    let st = C.Incremental.apply ?sched ?par inc d in
    stats := st :: !stats
  done;
  (inc, List.rev !stats)

let test_churn_validity () =
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun gseed ->
          let inc, stats = run_trace ~seed:13 ~gseed ~ticks:6 mk in
          List.iter
            (fun (st : C.Incremental.tick_stats) ->
              check
                (Printf.sprintf "%s/%d tick %d sane" name gseed st.tick)
                true
                (st.deleted > 0 && st.inserted > 0
                && st.seeds > 0
                && st.candidates >= st.broken
                && (st.broken = 0 || st.dirty >= 2)))
            stats;
          (* The final fast verdict, and the final BFS verdict. *)
          check
            (Printf.sprintf "%s/%d final fast-valid" name gseed)
            true
            (C.Incremental.valid inc);
          check
            (Printf.sprintf "%s/%d final bfs-valid" name gseed)
            true
            (C.Spanner_check.is_spanner
               (C.Incremental.graph inc)
               (C.Incremental.spanner inc)
               ~k:2);
          check_int
            (Printf.sprintf "%s/%d ticks applied" name gseed)
            6 (C.Incremental.tick inc))
        [ 1; 2; 3 ])
    families

(* Every-tick validity (not just final): re-run one trace checking
   after each tick. *)
let test_churn_validity_per_tick () =
  let _, mk = List.hd families in
  let g = mk 4 in
  let inc, _ = C.Incremental.bootstrap ~seed:17 g in
  let rng = Rng.create 99 in
  let d = Ugraph.Delta.create () in
  for tick = 1 to 8 do
    C.Incremental.churn ~rng ~replace:5 (C.Incremental.graph inc) d;
    let st = C.Incremental.apply inc d in
    check_int (Printf.sprintf "tick %d number" tick) tick st.tick;
    check (Printf.sprintf "tick %d fast-valid" tick) true
      (C.Incremental.valid inc);
    check (Printf.sprintf "tick %d bfs-valid" tick) true
      (C.Spanner_check.is_spanner
         (C.Incremental.graph inc)
         (C.Incremental.spanner inc)
         ~k:2);
    check (Printf.sprintf "tick %d dirty covers broken" tick) true
      (st.broken = 0 || st.dirty > 0)
  done

let test_churn_determinism () =
  let _, mk = List.nth families 1 in
  let configs =
    [
      ("seq", None, None);
      ("par2", None, Some 2);
      ("par4", None, Some 4);
      ("naive", Some `Naive, None);
    ]
  in
  let runs =
    List.map
      (fun (name, sched, par) ->
        let inc, stats = run_trace ?sched ?par ~seed:23 ~gseed:2 ~ticks:5 mk in
        (name, C.Incremental.spanner inc, C.Incremental.graph inc, stats))
      configs
  in
  match runs with
  | [] -> assert false
  | (_, s0, g0, st0) :: rest ->
      List.iter
        (fun (name, s, g, st) ->
          check (name ^ ": same graph") true (Ugraph.equal g0 g);
          check (name ^ ": same spanner") true (Edge.Set.equal s0 s);
          check (name ^ ": same tick stats") true (st = st0))
        rest

(* Churn composed with a PR 5 fault schedule: the ball-local repair
   runs under drops + a fraction crash. Under crashes a tick may leave
   the spanner invalid (the repair can terminate without covering
   every dirty edge), so the contract here is determinism, not
   validity: the whole faulted trace — graph, spanner, tick stats and
   the per-tick verdict — is bit-identical across engine schedulers
   and shard counts. *)
let test_churn_faulted_determinism () =
  let _, mk = List.nth families 1 in
  let schedule = "drop=0.05,crash=0.1@r3,seed=42" in
  let run_faulted ?sched ?par () =
    let g = mk 2 in
    let adversary =
      Distsim.Faults.compile ~n:(Ugraph.n g)
        (Result.get_ok (Distsim.Faults.parse schedule))
    in
    let inc, (_ : C.Two_spanner_local.result) =
      C.Incremental.bootstrap ~seed:23 ?sched ?par g
    in
    let rng = Rng.create 71 in
    let d = Ugraph.Delta.create () in
    let replace = max 1 (Ugraph.m g / 50) in
    let trace = ref [] in
    for _ = 1 to 5 do
      C.Incremental.churn ~rng ~replace (C.Incremental.graph inc) d;
      let st = C.Incremental.apply ?sched ?par ~adversary ~retry:2 inc d in
      trace := (st, C.Incremental.valid inc) :: !trace
    done;
    (C.Incremental.graph inc, C.Incremental.spanner inc, List.rev !trace)
  in
  let g0, s0, t0 = run_faulted () in
  List.iter
    (fun (name, sched, par) ->
      let g, s, t = run_faulted ?sched ?par () in
      check (name ^ ": same graph") true (Ugraph.equal g0 g);
      check (name ^ ": same spanner") true (Edge.Set.equal s0 s);
      check (name ^ ": same stats+verdicts") true (t = t0))
    [ ("par2", None, Some 2); ("naive", Some `Naive, None) ];
  (* The faulted trace exercised the fault machinery at all: at least
     one tick actually repaired something (else the adversary was
     never consulted and the test is vacuous). *)
  check "some tick repaired" true
    (List.exists (fun ((st : C.Incremental.tick_stats), _) -> st.broken > 0) t0)

let test_churn_generator () =
  let g = Generators.gnp_connected (Rng.create 8) 50 0.1 in
  let d = Ugraph.Delta.create () in
  C.Incremental.churn ~rng:(Rng.create 42) ~replace:7 g d;
  check_int "deletes" 7 (Ugraph.Delta.deletes d);
  check_int "inserts" 7 (Ugraph.Delta.inserts d);
  Ugraph.Delta.iter_deletes
    (fun u v -> check "delete exists" true (Ugraph.mem_edge g u v))
    d;
  Ugraph.Delta.iter_inserts
    (fun u v -> check "insert absent" true (not (Ugraph.mem_edge g u v)))
    d;
  (* Deterministic in the rng seed. *)
  let d2 = Ugraph.Delta.create () in
  C.Incremental.churn ~rng:(Rng.create 42) ~replace:7 g d2;
  check "seeded reproducibility" true
    (Ugraph.equal (Ugraph.apply_delta g d) (Ugraph.apply_delta g d2));
  (* Applies cleanly. *)
  let g' = Ugraph.apply_delta g d in
  check_int "m preserved" (Ugraph.m g) (Ugraph.m g')

let () =
  Alcotest.run "incremental"
    [
      ( "checker",
        [ Alcotest.test_case "fast == bfs" `Quick test_fast_checker ] );
      ( "active",
        [
          Alcotest.test_case "full set" `Quick test_active_full_set;
          Alcotest.test_case "subset" `Quick test_active_subset;
          Alcotest.test_case "guards" `Quick test_active_guards;
        ] );
      ( "churn",
        [
          Alcotest.test_case "traces valid" `Quick test_churn_validity;
          Alcotest.test_case "per-tick valid" `Quick
            test_churn_validity_per_tick;
          Alcotest.test_case "determinism" `Quick test_churn_determinism;
          Alcotest.test_case "faulted determinism" `Quick
            test_churn_faulted_determinism;
          Alcotest.test_case "generator" `Quick test_churn_generator;
        ] );
    ]
