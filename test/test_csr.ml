(* CSR equivalence suite: the Bigarray CSR adjacency must behave
   exactly like the reference adjacency-list model across every
   constructor — same neighbors, degrees, membership, iteration
   order — plus the degenerate shapes, the seeded gnp/pa pins for the
   skip-sampling generators, and the builder's GC guard (streaming a
   10^5-vertex graph must not allocate per edge). *)

open Grapho

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Reference model: plain sorted, deduplicated adjacency lists built
   the naive way. *)
module Ref_model = struct
  type t = { rn : int; adj : int list array }

  let of_edges ~n edges =
    let adj = Array.make (max n 1) [] in
    List.iter
      (fun (u, v) ->
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v))
      edges;
    {
      rn = n;
      adj = Array.map (fun l -> List.sort_uniq compare l) adj;
    }

  let degree t u = List.length t.adj.(u)
  let neighbors t u = Array.of_list t.adj.(u)
  let mem_edge t u v = u <> v && List.mem v t.adj.(u)
  let m t =
    Array.fold_left (fun acc l -> acc + List.length l) 0
      (Array.sub t.adj 0 t.rn)
    / 2
end

(* Every constructor must produce the same graph. *)
let constructors ~n edges =
  let via_builder () =
    let b = Ugraph.Builder.create ~n () in
    List.iter (fun (u, v) -> Ugraph.Builder.add_edge b u v) edges;
    Ugraph.Builder.finish b
  in
  [
    ("of_edges", fun () -> Ugraph.of_edges ~n edges);
    ( "of_edge_set",
      fun () ->
        Ugraph.of_edge_set ~n
          (List.fold_left
             (fun s (u, v) -> Edge.Set.add (Edge.make u v) s)
             Edge.Set.empty edges) );
    ( "of_edge_iter",
      fun () ->
        Ugraph.of_edge_iter ~n (fun emit ->
            List.iter (fun (u, v) -> emit u v) edges) );
    ("builder", via_builder);
  ]

let assert_matches_reference name g r =
  let n = Ref_model.(r.rn) in
  check_int (name ^ ": n") n (Ugraph.n g);
  check_int (name ^ ": m") (Ref_model.m r) (Ugraph.m g);
  for u = 0 to n - 1 do
    check_int
      (Printf.sprintf "%s: degree %d" name u)
      (Ref_model.degree r u) (Ugraph.degree g u);
    Alcotest.(check (array int))
      (Printf.sprintf "%s: neighbors %d" name u)
      (Ref_model.neighbors r u) (Ugraph.neighbors g u);
    (* iter/fold must visit in the same ascending order as neighbors *)
    let via_iter = ref [] in
    Ugraph.iter_neighbors (fun v -> via_iter := v :: !via_iter) g u;
    Alcotest.(check (list int))
      (Printf.sprintf "%s: iter order %d" name u)
      (Array.to_list (Ref_model.neighbors r u))
      (List.rev !via_iter);
    let via_fold =
      Ugraph.fold_neighbors (fun acc v -> v :: acc) g u []
    in
    Alcotest.(check (list int))
      (Printf.sprintf "%s: fold order %d" name u)
      (Array.to_list (Ref_model.neighbors r u))
      (List.rev via_fold);
    for v = 0 to n - 1 do
      check
        (Printf.sprintf "%s: mem %d %d" name u v)
        (Ref_model.mem_edge r u v) (Ugraph.mem_edge g u v)
    done
  done;
  (* edges stream ascending-lexicographic with u < v *)
  let last = ref (-1, -1) in
  Ugraph.iter_edges_uv
    (fun u v ->
      check (name ^ ": u < v") true (u < v);
      check (name ^ ": ascending") true ((u, v) > !last);
      check (name ^ ": present") true (Ref_model.mem_edge r u v);
      last := (u, v))
    g;
  let count = Ugraph.fold_edges_uv (fun acc _ _ -> acc + 1) g 0 in
  check_int (name ^ ": edge stream length") (Ugraph.m g) count

let exercise ~name ~n edges =
  let r = Ref_model.of_edges ~n edges in
  let graphs =
    List.map (fun (c, f) -> (name ^ "/" ^ c, f ())) (constructors ~n edges)
  in
  List.iter (fun (cname, g) -> assert_matches_reference cname g r) graphs;
  (* all construction paths agree structurally *)
  (match graphs with
  | (_, first) :: rest ->
      List.iter
        (fun (cname, g) -> check (cname ^ ": equal") true (Ugraph.equal first g))
        rest
  | [] -> ());
  (* round-trip through induced_by_edges is the identity *)
  let _, g0 = List.hd graphs in
  check (name ^ ": induced id") true
    (Ugraph.equal g0 (Ugraph.induced_by_edges g0 (Ugraph.edge_set g0)))

let test_random_graphs () =
  let rng = Rng.create 0xC5A in
  for case = 0 to 19 do
    let n = 1 + Rng.int rng 24 in
    let target = Rng.int rng (1 + (n * (n - 1) / 2)) in
    let edges = ref [] in
    let k = ref 0 in
    while !k < target do
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v then begin
        edges := (u, v) :: !edges;
        (* duplicates in both orientations stress the dedup *)
        if Rng.bool rng then edges := (v, u) :: !edges;
        incr k
      end
    done;
    exercise ~name:(Printf.sprintf "random%d" case) ~n !edges
  done

let test_edge_cases () =
  exercise ~name:"empty0" ~n:0 [];
  exercise ~name:"empty5" ~n:5 [];
  (* isolated vertices around a small component *)
  exercise ~name:"isolated" ~n:9 [ (2, 5); (5, 7); (2, 7) ];
  exercise ~name:"star" ~n:8 (List.init 7 (fun i -> (0, i + 1)));
  let complete_edges n =
    List.concat
      (List.init n (fun u -> List.init (n - u - 1) (fun i -> (u, u + i + 1))))
  in
  exercise ~name:"complete6" ~n:6 (complete_edges 6);
  check_int "empty n" 4 (Ugraph.n (Ugraph.empty 4));
  check_int "empty m" 0 (Ugraph.m (Ugraph.empty 4));
  check_int "resident empty0" 8 (Ugraph.resident_bytes (Ugraph.empty 0))

let test_validation () =
  let b = Ugraph.Builder.create ~n:3 () in
  check "range rejected" true
    (try
       Ugraph.Builder.add_edge b 0 3;
       false
     with Invalid_argument msg -> msg = "Ugraph: vertex 3 out of range [0,3)");
  check "self-loop rejected" true
    (try
       Ugraph.Builder.add_edge b 1 1;
       false
     with Invalid_argument msg -> msg = "Ugraph: self-loop at vertex 1");
  Ugraph.Builder.add_edge b 0 1;
  let g = Ugraph.Builder.finish b in
  check_int "one edge" 1 (Ugraph.m g);
  check "finished builder rejects" true
    (try
       Ugraph.Builder.add_edge b 1 2;
       false
     with Invalid_argument _ -> true)

let test_resident_bytes () =
  let g = Generators.complete 10 in
  (* 8 * (n + 1 + 2m) = 8 * (11 + 90) *)
  check_int "resident K10" (8 * 101) (Ugraph.resident_bytes g);
  check "dgraph resident positive" true
    (Dgraph.resident_bytes (Generators.bidirect g) > 0)

(* Seeded-equality pins for the skip-sampling generators: these
   fingerprints re-pin the bench gnp anchors after the switch from
   trial-per-pair sampling (satellite of PR 6), and pin that
   preferential attachment still samples the exact historical graphs
   (its Rng consumption was preserved through the pool rewrite). *)
let fingerprint g =
  Ugraph.fold_edges_uv (fun h u v -> (h * 1_000_003) + (u * 131) + v) g 0x9E37

let test_generator_pins () =
  let cases =
    [
      ("gnp_dense_100", Generators.gnp (Rng.create 2) 100 0.35,
       1743, 2235697293490807875);
      ("gnp_sparse_200", Generators.gnp (Rng.create 3) 200 0.05,
       970, -4291607970901585376);
      ("gnp_conn_50", Generators.gnp_connected (Rng.create 7) 50 0.1,
       156, 1492862353871756890);
      ("pa_200_10", Generators.preferential_attachment (Rng.create 4) 200 10,
       1900, 1272690548618341309);
    ]
  in
  List.iter
    (fun (name, g, m, fp) ->
      check_int (name ^ ": m") m (Ugraph.m g);
      check_int (name ^ ": fingerprint") fp (fingerprint g))
    cases;
  (* gnp degenerate probabilities consume no randomness *)
  check_int "p=0 empty" 0 (Ugraph.m (Generators.gnp (Rng.create 1) 30 0.0));
  check_int "p=1 complete" 435 (Ugraph.m (Generators.gnp (Rng.create 1) 30 1.0))

(* GC guard: streaming a 10^5-vertex graph through the builder must
   not allocate per edge on the OCaml heap — the endpoint buffers and
   the CSR itself live in Bigarrays. The ceiling is far below the
   ~6e5 words that even one boxed word per edge would cost, and far
   above the O(log m) buffer-doubling overhead. *)
let gc_guard_minor_words_ceiling = 50_000.0

let test_gc_guard () =
  let n = 100_000 in
  let before = Gc.minor_words () in
  let g =
    Ugraph.of_edge_iter ~expected_edges:(2 * n) ~n (fun emit ->
        for i = 0 to n - 2 do
          emit i (i + 1)
        done;
        for i = 0 to n - 1 do
          let j = (i + 97) mod n in
          if abs (i - j) > 1 then emit i j
        done)
  in
  let spent = Gc.minor_words () -. before in
  check_int "csr n" n (Ugraph.n g);
  check "csr built" true (Ugraph.m g > n);
  check
    (Printf.sprintf "minor words %.0f under ceiling %.0f" spent
       gc_guard_minor_words_ceiling)
    true
    (spent < gc_guard_minor_words_ceiling)

let () =
  Alcotest.run "csr"
    [
      ( "equivalence",
        [
          Alcotest.test_case "random graphs x constructors" `Quick
            test_random_graphs;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "resident bytes" `Quick test_resident_bytes;
        ] );
      ( "generators",
        [ Alcotest.test_case "seeded pins" `Quick test_generator_pins ] );
      ( "gc",
        [ Alcotest.test_case "builder minor words" `Quick test_gc_guard ] );
    ]
