(* CSR equivalence suite: the Bigarray CSR adjacency must behave
   exactly like the reference adjacency-list model across every
   constructor — same neighbors, degrees, membership, iteration
   order — plus the degenerate shapes, the seeded gnp/pa pins for the
   skip-sampling generators, and the builder's GC guard (streaming a
   10^5-vertex graph must not allocate per edge). *)

open Grapho

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Reference model: plain sorted, deduplicated adjacency lists built
   the naive way. *)
module Ref_model = struct
  type t = { rn : int; adj : int list array }

  let of_edges ~n edges =
    let adj = Array.make (max n 1) [] in
    List.iter
      (fun (u, v) ->
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v))
      edges;
    {
      rn = n;
      adj = Array.map (fun l -> List.sort_uniq compare l) adj;
    }

  let degree t u = List.length t.adj.(u)
  let neighbors t u = Array.of_list t.adj.(u)
  let mem_edge t u v = u <> v && List.mem v t.adj.(u)
  let m t =
    Array.fold_left (fun acc l -> acc + List.length l) 0
      (Array.sub t.adj 0 t.rn)
    / 2
end

(* Every constructor must produce the same graph. *)
let constructors ~n edges =
  let via_builder () =
    let b = Ugraph.Builder.create ~n () in
    List.iter (fun (u, v) -> Ugraph.Builder.add_edge b u v) edges;
    Ugraph.Builder.finish b
  in
  [
    ("of_edges", fun () -> Ugraph.of_edges ~n edges);
    ( "of_edge_set",
      fun () ->
        Ugraph.of_edge_set ~n
          (List.fold_left
             (fun s (u, v) -> Edge.Set.add (Edge.make u v) s)
             Edge.Set.empty edges) );
    ( "of_edge_iter",
      fun () ->
        Ugraph.of_edge_iter ~n (fun emit ->
            List.iter (fun (u, v) -> emit u v) edges) );
    ("builder", via_builder);
  ]

let assert_matches_reference name g r =
  let n = Ref_model.(r.rn) in
  check_int (name ^ ": n") n (Ugraph.n g);
  check_int (name ^ ": m") (Ref_model.m r) (Ugraph.m g);
  for u = 0 to n - 1 do
    check_int
      (Printf.sprintf "%s: degree %d" name u)
      (Ref_model.degree r u) (Ugraph.degree g u);
    Alcotest.(check (array int))
      (Printf.sprintf "%s: neighbors %d" name u)
      (Ref_model.neighbors r u) (Ugraph.neighbors g u);
    (* iter/fold must visit in the same ascending order as neighbors *)
    let via_iter = ref [] in
    Ugraph.iter_neighbors (fun v -> via_iter := v :: !via_iter) g u;
    Alcotest.(check (list int))
      (Printf.sprintf "%s: iter order %d" name u)
      (Array.to_list (Ref_model.neighbors r u))
      (List.rev !via_iter);
    let via_fold =
      Ugraph.fold_neighbors (fun acc v -> v :: acc) g u []
    in
    Alcotest.(check (list int))
      (Printf.sprintf "%s: fold order %d" name u)
      (Array.to_list (Ref_model.neighbors r u))
      (List.rev via_fold);
    for v = 0 to n - 1 do
      check
        (Printf.sprintf "%s: mem %d %d" name u v)
        (Ref_model.mem_edge r u v) (Ugraph.mem_edge g u v)
    done
  done;
  (* edges stream ascending-lexicographic with u < v *)
  let last = ref (-1, -1) in
  Ugraph.iter_edges_uv
    (fun u v ->
      check (name ^ ": u < v") true (u < v);
      check (name ^ ": ascending") true ((u, v) > !last);
      check (name ^ ": present") true (Ref_model.mem_edge r u v);
      last := (u, v))
    g;
  let count = Ugraph.fold_edges_uv (fun acc _ _ -> acc + 1) g 0 in
  check_int (name ^ ": edge stream length") (Ugraph.m g) count

let exercise ~name ~n edges =
  let r = Ref_model.of_edges ~n edges in
  let graphs =
    List.map (fun (c, f) -> (name ^ "/" ^ c, f ())) (constructors ~n edges)
  in
  List.iter (fun (cname, g) -> assert_matches_reference cname g r) graphs;
  (* all construction paths agree structurally *)
  (match graphs with
  | (_, first) :: rest ->
      List.iter
        (fun (cname, g) -> check (cname ^ ": equal") true (Ugraph.equal first g))
        rest
  | [] -> ());
  (* round-trip through induced_by_edges is the identity *)
  let _, g0 = List.hd graphs in
  check (name ^ ": induced id") true
    (Ugraph.equal g0 (Ugraph.induced_by_edges g0 (Ugraph.edge_set g0)))

let test_random_graphs () =
  let rng = Rng.create 0xC5A in
  for case = 0 to 19 do
    let n = 1 + Rng.int rng 24 in
    let target = Rng.int rng (1 + (n * (n - 1) / 2)) in
    let edges = ref [] in
    let k = ref 0 in
    while !k < target do
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v then begin
        edges := (u, v) :: !edges;
        (* duplicates in both orientations stress the dedup *)
        if Rng.bool rng then edges := (v, u) :: !edges;
        incr k
      end
    done;
    exercise ~name:(Printf.sprintf "random%d" case) ~n !edges
  done

let test_edge_cases () =
  exercise ~name:"empty0" ~n:0 [];
  exercise ~name:"empty5" ~n:5 [];
  (* isolated vertices around a small component *)
  exercise ~name:"isolated" ~n:9 [ (2, 5); (5, 7); (2, 7) ];
  exercise ~name:"star" ~n:8 (List.init 7 (fun i -> (0, i + 1)));
  let complete_edges n =
    List.concat
      (List.init n (fun u -> List.init (n - u - 1) (fun i -> (u, u + i + 1))))
  in
  exercise ~name:"complete6" ~n:6 (complete_edges 6);
  check_int "empty n" 4 (Ugraph.n (Ugraph.empty 4));
  check_int "empty m" 0 (Ugraph.m (Ugraph.empty 4));
  check_int "resident empty0" 8 (Ugraph.resident_bytes (Ugraph.empty 0))

let test_validation () =
  let b = Ugraph.Builder.create ~n:3 () in
  check "range rejected" true
    (try
       Ugraph.Builder.add_edge b 0 3;
       false
     with Invalid_argument msg -> msg = "Ugraph: vertex 3 out of range [0,3)");
  check "self-loop rejected" true
    (try
       Ugraph.Builder.add_edge b 1 1;
       false
     with Invalid_argument msg -> msg = "Ugraph: self-loop at vertex 1");
  Ugraph.Builder.add_edge b 0 1;
  let g = Ugraph.Builder.finish b in
  check_int "one edge" 1 (Ugraph.m g);
  check "finished builder rejects" true
    (try
       Ugraph.Builder.add_edge b 1 2;
       false
     with Invalid_argument _ -> true)

let test_resident_bytes () =
  let g = Generators.complete 10 in
  (* 8 * (n + 1 + 2m) = 8 * (11 + 90) *)
  check_int "resident K10" (8 * 101) (Ugraph.resident_bytes g);
  check "dgraph resident positive" true
    (Dgraph.resident_bytes (Generators.bidirect g) > 0)

(* Seeded-equality pins for the skip-sampling generators: these
   fingerprints re-pin the bench gnp anchors after the switch from
   trial-per-pair sampling (satellite of PR 6), and pin that
   preferential attachment still samples the exact historical graphs
   (its Rng consumption was preserved through the pool rewrite). *)
let fingerprint g =
  Ugraph.fold_edges_uv (fun h u v -> (h * 1_000_003) + (u * 131) + v) g 0x9E37

let test_generator_pins () =
  let cases =
    [
      ("gnp_dense_100", Generators.gnp (Rng.create 2) 100 0.35,
       1743, 2235697293490807875);
      ("gnp_sparse_200", Generators.gnp (Rng.create 3) 200 0.05,
       970, -4291607970901585376);
      ("gnp_conn_50", Generators.gnp_connected (Rng.create 7) 50 0.1,
       156, 1492862353871756890);
      ("pa_200_10", Generators.preferential_attachment (Rng.create 4) 200 10,
       1900, 1272690548618341309);
    ]
  in
  List.iter
    (fun (name, g, m, fp) ->
      check_int (name ^ ": m") m (Ugraph.m g);
      check_int (name ^ ": fingerprint") fp (fingerprint g))
    cases;
  (* gnp degenerate probabilities consume no randomness *)
  check_int "p=0 empty" 0 (Ugraph.m (Generators.gnp (Rng.create 1) 30 0.0));
  check_int "p=1 complete" 435 (Ugraph.m (Generators.gnp (Rng.create 1) 30 1.0))

(* GC guard: streaming a 10^5-vertex graph through the builder must
   not allocate per edge on the OCaml heap — the endpoint buffers and
   the CSR itself live in Bigarrays. The ceiling is far below the
   ~6e5 words that even one boxed word per edge would cost, and far
   above the O(log m) buffer-doubling overhead. *)
let gc_guard_minor_words_ceiling = 50_000.0

let test_gc_guard () =
  let n = 100_000 in
  let before = Gc.minor_words () in
  let g =
    Ugraph.of_edge_iter ~expected_edges:(2 * n) ~n (fun emit ->
        for i = 0 to n - 2 do
          emit i (i + 1)
        done;
        for i = 0 to n - 1 do
          let j = (i + 97) mod n in
          if abs (i - j) > 1 then emit i j
        done)
  in
  let spent = Gc.minor_words () -. before in
  check_int "csr n" n (Ugraph.n g);
  check "csr built" true (Ugraph.m g > n);
  check
    (Printf.sprintf "minor words %.0f under ceiling %.0f" spent
       gc_guard_minor_words_ceiling)
    true
    (spent < gc_guard_minor_words_ceiling)

(* ------------------------------------------------------------------ *)
(* Batched deltas: [apply_delta] must agree with a from-scratch build
   of the edited edge list, under every buffer-reuse discipline. *)

let edges_of g = List.map Edge.endpoints (Ugraph.edges g)

(* Deterministic delta for a seeded graph: delete every [stride]-th
   edge, insert absent chords (u, u+gap). *)
let mk_delta ?(stride = 7) ?(ins = 15) g =
  let d = Ugraph.Delta.create () in
  let deleted = ref [] in
  let i = ref 0 in
  Ugraph.iter_edges_uv
    (fun u v ->
      if !i mod stride = 0 then begin
        Ugraph.Delta.add_delete d u v;
        deleted := (u, v) :: !deleted
      end;
      incr i)
    g;
  let n = Ugraph.n g in
  let inserted = ref [] in
  let gap = ref 2 in
  while List.length !inserted < ins && !gap < n do
    let u = 3 * List.length !inserted mod (n - !gap) in
    let v = u + !gap in
    if not (Ugraph.mem_edge g u v)
       && not (List.mem (u, v) !inserted)
    then begin
      Ugraph.Delta.add_insert d u v;
      inserted := (u, v) :: !inserted
    end
    else incr gap
  done;
  (d, !deleted, !inserted)

let scratch_apply g deleted inserted =
  let keep =
    List.filter (fun (u, v) -> not (List.mem (u, v) deleted)) (edges_of g)
  in
  Ugraph.of_edges ~n:(Ugraph.n g) (keep @ inserted)

let test_delta_equivalence () =
  let cases =
    [
      ("gnp80", Generators.gnp_connected (Rng.create 21) 80 0.08);
      ("pa100", Generators.preferential_attachment (Rng.create 22) 100 6);
      ("grid", Generators.grid 9 11);
      ("caveman", Generators.caveman (Rng.create 23) 6 7 0.1);
    ]
  in
  List.iter
    (fun (name, g) ->
      let d, deleted, inserted = mk_delta g in
      let expected = scratch_apply g deleted inserted in
      let fresh = Ugraph.apply_delta g d in
      check (name ^ ": fresh-builder") true (Ugraph.equal expected fresh);
      let b = Ugraph.Builder.create ~n:(Ugraph.n g) () in
      let reused = Ugraph.apply_delta ~builder:b g d in
      check (name ^ ": reused-builder") true (Ugraph.equal expected reused);
      (* The same builder again, as a churn tick would: apply the
         reverse delta to come back to g. *)
      let back = Ugraph.Delta.create () in
      List.iter (fun (u, v) -> Ugraph.Delta.add_insert back u v) deleted;
      List.iter (fun (u, v) -> Ugraph.Delta.add_delete back u v) inserted;
      let g2 = Ugraph.apply_delta ~builder:b fresh back in
      check (name ^ ": roundtrip") true (Ugraph.equal g g2))
    cases;
  (* Fingerprint pin: the edited graph, not just self-consistency. *)
  let g = Generators.gnp (Rng.create 2) 100 0.35 in
  let d, deleted, inserted = mk_delta ~stride:5 ~ins:20 g in
  let g' = Ugraph.apply_delta g d in
  check_int "pin: m" (Ugraph.m g - List.length deleted + List.length inserted)
    (Ugraph.m g');
  check_int "pin: fingerprint" 902360631607473347 (fingerprint g')

let test_delta_edge_cases () =
  let g = Generators.grid 5 5 in
  (* Empty delta is the identity (and [equal] is structural). *)
  let empty = Ugraph.Delta.create () in
  check "empty delta" true (Ugraph.equal g (Ugraph.apply_delta g empty));
  (* Delete every edge. *)
  let all = Ugraph.Delta.create () in
  Ugraph.iter_edges_uv (fun u v -> Ugraph.Delta.add_delete all u v) g;
  let bare = Ugraph.apply_delta g all in
  check_int "delete-all m" 0 (Ugraph.m bare);
  check_int "delete-all n" (Ugraph.n g) (Ugraph.n bare);
  (* Rejections: inserting a present edge, deleting an absent one,
     the same edge on both sides, the same edge twice on one side,
     out-of-range endpoints. Each must raise and leave no partial
     state ([g] is immutable anyway; assert it is untouched). *)
  let raises f =
    match f () with
    | (_ : Ugraph.t) -> false
    | exception Invalid_argument _ -> true
  in
  let with_delta adds = fun () ->
    let d = Ugraph.Delta.create () in
    adds d;
    Ugraph.apply_delta g d
  in
  check "insert present" true
    (raises (with_delta (fun d -> Ugraph.Delta.add_insert d 0 1)));
  check "delete absent" true
    (raises (with_delta (fun d -> Ugraph.Delta.add_delete d 0 24)));
  check "both sides" true
    (raises
       (with_delta (fun d ->
            Ugraph.Delta.add_delete d 0 1;
            Ugraph.Delta.add_insert d 1 0)));
  check "duplicate insert" true
    (raises
       (with_delta (fun d ->
            Ugraph.Delta.add_insert d 0 7;
            Ugraph.Delta.add_insert d 7 0)));
  check "duplicate delete" true
    (raises
       (with_delta (fun d ->
            Ugraph.Delta.add_delete d 0 1;
            Ugraph.Delta.add_delete d 1 0)));
  check "out of range" true
    (raises (with_delta (fun d -> Ugraph.Delta.add_insert d 0 99)));
  (match Ugraph.Delta.add_insert (Ugraph.Delta.create ()) 3 3 with
  | () -> Alcotest.fail "self-loop accepted"
  | exception Invalid_argument _ -> ());
  check "graph untouched" true (Ugraph.equal g (Generators.grid 5 5));
  (* Delta reset empties both sides but keeps accepting edges. *)
  let d = Ugraph.Delta.create () in
  Ugraph.Delta.add_delete d 0 1;
  Ugraph.Delta.add_insert d 0 24;
  Ugraph.Delta.reset d;
  check_int "reset deletes" 0 (Ugraph.Delta.deletes d);
  check_int "reset inserts" 0 (Ugraph.Delta.inserts d);
  check "reset then identity" true (Ugraph.equal g (Ugraph.apply_delta g d))

let test_slot_endpoints () =
  let g = Generators.gnp (Rng.create 31) 70 0.12 in
  let m2 = 2 * Ugraph.m g in
  for i = 0 to m2 - 1 do
    let u, v = Ugraph.slot_endpoints g i in
    check_int (Printf.sprintf "slot %d roundtrip" i) i (Ugraph.edge_slot g u v)
  done;
  (match Ugraph.slot_endpoints g m2 with
  | _ -> Alcotest.fail "slot out of range accepted"
  | exception Invalid_argument _ -> ())

let test_common_neighbors () =
  let g = Generators.gnp (Rng.create 32) 60 0.2 in
  let naive u v =
    List.filter (fun w -> Ugraph.mem_edge g v w)
      (Array.to_list (Ugraph.neighbors g u))
  in
  for u = 0 to 19 do
    for v = u + 1 to 20 do
      let expect = naive u v in
      let got = ref [] in
      Ugraph.iter_common_neighbors (fun w -> got := w :: !got) g u v;
      check (Printf.sprintf "common %d %d" u v) true
        (List.rev !got = expect);
      check_int
        (Printf.sprintf "first common %d %d" u v)
        (match expect with [] -> -1 | w :: _ -> w)
        (Ugraph.common_neighbor g u v)
    done
  done

(* GC guard for the churn path: 100 delta ticks over a 10^5-edge
   graph through one reused builder and one reused delta must stay
   allocation-flat — off-heap buffers reach steady-state capacity and
   the per-tick minor-heap cost is O(1) bookkeeping, not O(m) or even
   O(|delta|) boxing. Per-edge boxing would cost ~10^7 words over the
   loop; the ceiling is three orders of magnitude below that. *)
let test_churn_gc_guard () =
  let rows = 200 and cols = 250 in
  let g0 = Generators.grid rows cols in
  check "grid ~1e5 edges" true (Ugraph.m g0 > 99_000);
  let b = Ugraph.Builder.create ~expected_edges:(Ugraph.m g0)
      ~n:(Ugraph.n g0) () in
  let d = Ugraph.Delta.create ~expected:64 () in
  let g = ref g0 in
  (* Warm-up tick so every buffer reaches capacity before measuring. *)
  let batch tick add =
    (* 50 chords (i, i + 2*cols): never grid edges, distinct per
       batch index. *)
    let base = tick / 2 * 50 in
    for j = base to base + 49 do
      add d j (j + (2 * cols))
    done
  in
  Ugraph.Delta.reset d;
  batch 0 Ugraph.Delta.add_insert;
  g := Ugraph.apply_delta ~builder:b !g d;
  Ugraph.Delta.reset d;
  batch 1 Ugraph.Delta.add_delete;
  g := Ugraph.apply_delta ~builder:b !g d;
  let before = Gc.minor_words () in
  for tick = 0 to 99 do
    Ugraph.Delta.reset d;
    if tick mod 2 = 0 then batch tick Ugraph.Delta.add_insert
    else batch tick Ugraph.Delta.add_delete;
    g := Ugraph.apply_delta ~builder:b !g d
  done;
  let spent = Gc.minor_words () -. before in
  check "churn loop back to start" true (Ugraph.equal g0 !g);
  check
    (Printf.sprintf "churn minor words %.0f under ceiling" spent)
    true (spent < 50_000.0)

let () =
  Alcotest.run "csr"
    [
      ( "equivalence",
        [
          Alcotest.test_case "random graphs x constructors" `Quick
            test_random_graphs;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "resident bytes" `Quick test_resident_bytes;
        ] );
      ( "generators",
        [ Alcotest.test_case "seeded pins" `Quick test_generator_pins ] );
      ( "delta",
        [
          Alcotest.test_case "scratch equivalence" `Quick
            test_delta_equivalence;
          Alcotest.test_case "edge cases" `Quick test_delta_edge_cases;
          Alcotest.test_case "slot endpoints" `Quick test_slot_endpoints;
          Alcotest.test_case "common neighbors" `Quick test_common_neighbors;
        ] );
      ( "gc",
        [
          Alcotest.test_case "builder minor words" `Quick test_gc_guard;
          Alcotest.test_case "churn loop minor words" `Quick
            test_churn_gc_guard;
        ] );
    ]
