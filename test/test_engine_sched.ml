(* The active-set scheduler must be observationally identical to the
   naive step-everyone reference path that [Distsim.Engine] retains:
   same states, same spanners, same metrics, bit for bit. The protocol
   specs are quiescent when done (the contract [Engine.sched]
   documents), so this is an equality, not an approximation. *)

open Grapho
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_metrics name (a : Distsim.Engine.metrics)
    (b : Distsim.Engine.metrics) =
  check_int (name ^ " rounds") a.rounds b.rounds;
  check_int (name ^ " messages") a.messages b.messages;
  check_int (name ^ " total_bits") a.total_bits b.total_bits;
  check_int (name ^ " max_message_bits") a.max_message_bits
    b.max_message_bits;
  check_int (name ^ " congest_violations") a.congest_violations
    b.congest_violations

(* [steps] is the one metric the schedulers legitimately disagree on:
   the naive path activates everyone every round (n inits + n per
   round), the active path only the awake set — never more. *)
let check_steps name ~n (active : Distsim.Engine.metrics)
    (naive : Distsim.Engine.metrics) =
  check_int (name ^ " naive steps = n*(rounds+1)")
    (n * (naive.rounds + 1))
    naive.steps;
  check (name ^ " active steps <= naive") true (active.steps <= naive.steps);
  check (name ^ " active steps >= n inits") true (active.steps >= n)

let rng seed = Rng.create seed

(* Generator families x seeds for the equivalence matrix. *)
let families =
  [
    ("K14", fun _ -> Generators.complete 14);
    ("path_40", fun _ -> Generators.path 40);
    ("cycle_31", fun _ -> Generators.cycle 31);
    ("star_25", fun _ -> Generators.star 25);
    ("caveman", fun s -> Generators.caveman (rng s) 5 6 0.05);
    ("gnp_60", fun s -> Generators.gnp_connected (rng s) 60 0.15);
    ("ladder_80", fun s -> Generators.clique_ladder (rng s) 80);
    ("pa_70_6", fun s -> Generators.preferential_attachment (rng s) 70 6);
    ("grid_7x7", fun _ -> Generators.grid 7 7);
    ("bipartite_8_9", fun _ -> Generators.complete_bipartite 8 9);
  ]

let seeds = [ 0; 3; 11 ]

let test_local_matrix () =
  List.iter
    (fun (name, make) ->
      List.iter
        (fun seed ->
          let g = make seed in
          let a = C.Two_spanner_local.run ~seed ~sched:`Active g in
          let b = C.Two_spanner_local.run ~seed ~sched:`Naive g in
          let label = Printf.sprintf "%s/seed=%d" name seed in
          check (label ^ " spanner") true (Edge.Set.equal a.spanner b.spanner);
          check_int (label ^ " iterations") a.iterations b.iterations;
          check_metrics label a.metrics b.metrics;
          check_steps label ~n:(Ugraph.n g) a.metrics b.metrics;
          (* The legacy-cost bench shim must be cost-only: identical
             results and deterministic metrics. *)
          let c = C.Two_spanner_local.run ~seed ~sched:`Active_legacy_cost g in
          check (label ^ " legacy-cost spanner") true
            (Edge.Set.equal a.spanner c.spanner);
          check (label ^ " legacy-cost metrics") true
            (Distsim.Engine.metrics_deterministic_eq a.metrics c.metrics))
        seeds)
    families

let test_congest_matrix () =
  List.iter
    (fun (name, make) ->
      List.iter
        (fun seed ->
          let g = make seed in
          let a = C.Two_spanner_local.run_congest ~seed ~sched:`Active g in
          let b = C.Two_spanner_local.run_congest ~seed ~sched:`Naive g in
          let label = Printf.sprintf "congest:%s/seed=%d" name seed in
          check (label ^ " spanner") true (Edge.Set.equal a.spanner b.spanner);
          check_int (label ^ " iterations") a.iterations b.iterations;
          check_metrics label a.metrics b.metrics)
        [ 0; 5 ])
    [
      ("K10", fun _ -> Generators.complete 10);
      ("caveman", fun s -> Generators.caveman (rng (s + 1)) 4 6 0.05);
      ("gnp_30", fun s -> Generators.gnp_connected (rng (s + 2)) 30 0.2);
      ("grid_5x5", fun _ -> Generators.grid 5 5);
    ]

let test_weighted_matrix () =
  List.iter
    (fun (name, make) ->
      List.iter
        (fun seed ->
          let g = make seed in
          let w =
            Generators.random_weights_with_zeros (rng (seed + 7)) g
              ~zero_fraction:0.2 ~max_weight:8
          in
          let a = C.Two_spanner_local.run_weighted ~seed ~sched:`Active g w in
          let b = C.Two_spanner_local.run_weighted ~seed ~sched:`Naive g w in
          let label = Printf.sprintf "weighted:%s/seed=%d" name seed in
          check (label ^ " spanner") true (Edge.Set.equal a.spanner b.spanner);
          check_int (label ^ " iterations") a.iterations b.iterations;
          check_metrics label a.metrics b.metrics)
        [ 2; 9 ])
    [
      ("caveman", fun s -> Generators.caveman (rng (s + 3)) 4 5 0.05);
      ("gnp_40", fun s -> Generators.gnp_connected (rng (s + 4)) 40 0.2);
    ]

(* A plain engine spec exercised under both schedulers: flooding the
   minimum id, a spec whose vertices go quiet at different times (and
   may wake again when an improvement arrives late). *)
type flood = { mutable best : int; nbrs : int array }

let flood_spec graph =
  let n = max 2 (Ugraph.n graph) in
  let to_all out nbrs payload =
    for i = 0 to Array.length nbrs - 1 do
      Distsim.Engine.emit out ~dst:nbrs.(i) payload
    done
  in
  {
    Distsim.Engine.init =
      (fun ~n:_ ~vertex ~neighbors ~out ->
        to_all out neighbors vertex;
        { best = vertex; nbrs = neighbors });
    step =
      (fun ~round:_ ~vertex:_ st inbox ~out ->
        let prev = st.best in
        Distsim.Engine.inbox_iter
          (fun ~src:_ p -> if p < st.best then st.best <- p)
          inbox;
        if st.best < prev then begin
          to_all out st.nbrs st.best;
          (st, `Continue)
        end
        else (st, `Done));
    measure = (fun _ -> Distsim.Message.bits_for_id ~n);
  }

let test_flood_min_both_scheds () =
  List.iter
    (fun (name, g) ->
      let run sched =
        Distsim.Engine.run ~sched ~model:Distsim.Model.local ~graph:g
          (flood_spec g)
      in
      let sa, ma = run `Active in
      let sb, mb = run `Naive in
      check (name ^ " minima") true
        (Array.for_all2 (fun a b -> a.best = b.best) sa sb);
      check_metrics name ma mb;
      check_steps name ~n:(Ugraph.n g) ma mb)
    [
      ("path_30", Generators.path 30);
      ("star_20", Generators.star 20);
      ("gnp_50", Generators.gnp_connected (rng 8) 50 0.1);
    ]

(* The per-edge traffic profile — the quantity the two-party
   cut-metering arguments depend on — must be (1) identical under both
   schedulers and (2) identical whether collected through the legacy
   observer callback or through a Send-only trace sink (the observer
   is now a thin wrapper over such a sink). *)
let test_observer_vs_send_sink () =
  let collect run =
    let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    let record ~src ~dst ~bits =
      Hashtbl.replace tbl (src, dst)
        (bits + Option.value ~default:0 (Hashtbl.find_opt tbl (src, dst)))
    in
    run record;
    tbl
  in
  let equal_tbl a b =
    Hashtbl.length a = Hashtbl.length b
    && Hashtbl.fold
         (fun k v acc -> acc && Hashtbl.find_opt b k = Some v)
         a true
  in
  let send_sink record =
    Distsim.Trace.custom (function
      | Distsim.Trace.Send { src; dst; bits; _ } -> record ~src ~dst ~bits
      | _ -> ())
  in
  List.iter
    (fun (name, g) ->
      (* Plain engine spec: observer vs sink, Active vs Naive. *)
      let via_observer sched =
        collect (fun record ->
            ignore
              (Distsim.Engine.run ~sched ~observer:record
                 ~model:Distsim.Model.local ~graph:g (flood_spec g)))
      in
      let via_sink sched =
        collect (fun record ->
            ignore
              (Distsim.Engine.run ~sched ~trace:(send_sink record)
                 ~model:Distsim.Model.local ~graph:g (flood_spec g)))
      in
      let oa = via_observer `Active and on = via_observer `Naive in
      let sa = via_sink `Active and sn = via_sink `Naive in
      check (name ^ " observer: active = naive") true (equal_tbl oa on);
      check (name ^ " sink = observer (active)") true (equal_tbl oa sa);
      check (name ^ " sink = observer (naive)") true (equal_tbl on sn);
      check (name ^ " some traffic recorded") true (Hashtbl.length oa > 0);
      (* The full protocol via its ?trace parameter. *)
      let protocol sched =
        collect (fun record ->
            ignore
              (C.Two_spanner_local.run ~seed:4 ~sched
                 ~trace:(send_sink record) g))
      in
      let pa = protocol `Active and pn = protocol `Naive in
      check (name ^ " protocol per-edge bits: active = naive") true
        (equal_tbl pa pn))
    [
      ("path_20", Generators.path 20);
      ("caveman", Generators.caveman (rng 12) 4 5 0.05);
      ("gnp_40", Generators.gnp_connected (rng 13) 40 0.15);
    ]

(* ------------------------------------------------------------------ *)
(* Parallel stepping must be *bit-identical* to the sequential
   [`Active] path: the shards only write disjoint per-vertex slots and
   the merge replays every side effect in ascending vertex id, so this
   is an equality on everything — final states, spanner edge sets, all
   metrics including [steps], and the full Stats-sink round series.
   The one field legitimately allowed to differ is [elapsed_ns]
   (wall-clock time inside the round). *)

let pars = [ 1; 2; 4 ]

let check_steps_eq name (a : Distsim.Engine.metrics)
    (b : Distsim.Engine.metrics) =
  check_metrics name a b;
  check_int (name ^ " steps") a.steps b.steps

let check_series name (a : Distsim.Trace.series) (b : Distsim.Trace.series) =
  check_int
    (name ^ " series length")
    (Array.length a.rounds)
    (Array.length b.rounds);
  Array.iteri
    (fun i (ra : Distsim.Trace.round_stat) ->
      let rb = b.rounds.(i) in
      let lab = Printf.sprintf "%s round %d" name i in
      check_int (lab ^ " round") ra.round rb.round;
      check_int (lab ^ " messages") ra.messages rb.messages;
      check_int (lab ^ " bits") ra.bits rb.bits;
      check_int (lab ^ " max_bits") ra.max_bits rb.max_bits;
      check_int (lab ^ " stepped") ra.vertices_stepped rb.vertices_stepped;
      check_int (lab ^ " done") ra.vertices_done rb.vertices_done;
      check_int (lab ^ " violations") ra.congest_violations
        rb.congest_violations
      (* [elapsed_ns] is wall-clock and excluded by design. *))
    a.rounds;
  check (name ^ " phases") true (a.phases = b.phases);
  check (name ^ " counters") true (a.counters = b.counters)

(* Run [f] with a fresh stats sink; return the result and the series. *)
let with_stats f =
  let st = Distsim.Trace.stats () in
  let r = f (Distsim.Trace.stats_sink st) in
  (r, Distsim.Trace.series st)

let check_protocol_par name base bs (r : C.Two_spanner_local.result) s =
  let b : C.Two_spanner_local.result = base in
  check (name ^ " spanner") true (Edge.Set.equal b.spanner r.spanner);
  check_int (name ^ " iterations") b.iterations r.iterations;
  check_steps_eq name b.metrics r.metrics;
  check_series name bs s

let test_par_local_matrix () =
  List.iter
    (fun (name, make) ->
      List.iter
        (fun seed ->
          let g = make seed in
          let base, bs =
            with_stats (fun sink ->
                C.Two_spanner_local.run ~seed ~trace:sink g)
          in
          List.iter
            (fun par ->
              let label = Printf.sprintf "par%d:%s/seed=%d" par name seed in
              let r, s =
                with_stats (fun sink ->
                    C.Two_spanner_local.run ~seed ~par ~trace:sink g)
              in
              check_protocol_par label base bs r s)
            pars)
        seeds)
    families

let test_par_congest_matrix () =
  List.iter
    (fun (name, make) ->
      List.iter
        (fun seed ->
          let g = make seed in
          let base, bs =
            with_stats (fun sink ->
                C.Two_spanner_local.run_congest ~seed ~trace:sink g)
          in
          List.iter
            (fun par ->
              let label =
                Printf.sprintf "par%d:congest:%s/seed=%d" par name seed
              in
              let r, s =
                with_stats (fun sink ->
                    C.Two_spanner_local.run_congest ~seed ~par ~trace:sink g)
              in
              check_protocol_par label base bs r s)
            pars)
        [ 0; 5 ])
    [
      ("K10", fun _ -> Generators.complete 10);
      ("caveman", fun s -> Generators.caveman (rng (s + 1)) 4 6 0.05);
      ("gnp_30", fun s -> Generators.gnp_connected (rng (s + 2)) 30 0.2);
      ("grid_5x5", fun _ -> Generators.grid 5 5);
    ]

let test_par_weighted_matrix () =
  List.iter
    (fun (name, make) ->
      List.iter
        (fun seed ->
          let g = make seed in
          let w =
            Generators.random_weights_with_zeros (rng (seed + 7)) g
              ~zero_fraction:0.2 ~max_weight:8
          in
          let base, bs =
            with_stats (fun sink ->
                C.Two_spanner_local.run_weighted ~seed ~trace:sink g w)
          in
          List.iter
            (fun par ->
              let label =
                Printf.sprintf "par%d:weighted:%s/seed=%d" par name seed
              in
              let r, s =
                with_stats (fun sink ->
                    C.Two_spanner_local.run_weighted ~seed ~par ~trace:sink g w)
              in
              check_protocol_par label base bs r s)
            pars)
        [ 2; 9 ])
    [
      ("caveman", fun s -> Generators.caveman (rng (s + 3)) 4 5 0.05);
      ("gnp_40", fun s -> Generators.gnp_connected (rng (s + 4)) 40 0.2);
    ]

let test_par_mds () =
  List.iter
    (fun (name, make) ->
      List.iter
        (fun seed ->
          let g = make seed in
          let base, bs =
            with_stats (fun sink ->
                C.Mds.run ~rng:(rng seed) ~trace:sink g)
          in
          List.iter
            (fun par ->
              let label = Printf.sprintf "par%d:mds:%s/seed=%d" par name seed in
              let r, s =
                with_stats (fun sink ->
                    C.Mds.run ~rng:(rng seed) ~par ~trace:sink g)
              in
              let b : C.Mds.result = base in
              check (label ^ " dominating set") true
                (b.dominating_set = r.dominating_set);
              check_int (label ^ " iterations") b.iterations r.iterations;
              check_steps_eq label b.metrics r.metrics;
              check_series label bs s)
            pars;
          (* The retained naive list path must agree with the mailbox
             scheduler on everything but [steps]. *)
          let nv = C.Mds.run ~rng:(rng seed) ~sched:`Naive g in
          let b : C.Mds.result = base in
          let label = Printf.sprintf "naive:mds:%s/seed=%d" name seed in
          check (label ^ " dominating set") true
            (b.dominating_set = nv.dominating_set);
          check_int (label ^ " iterations") b.iterations nv.iterations;
          check_metrics label b.metrics nv.metrics)
        [ 0; 5 ])
    [
      ("K10", fun _ -> Generators.complete 10);
      ("caveman", fun s -> Generators.caveman (rng (s + 1)) 4 6 0.05);
      ("gnp_40", fun s -> Generators.gnp_connected (rng (s + 6)) 40 0.15);
      ("star_25", fun _ -> Generators.star 25);
    ]

let test_par_flood () =
  List.iter
    (fun (name, g) ->
      let run ?par sink =
        Distsim.Engine.run ?par ~trace:sink ~model:Distsim.Model.local
          ~graph:g (flood_spec g)
      in
      let (sa, ma), bs = with_stats (fun sink -> run sink) in
      List.iter
        (fun par ->
          let label = Printf.sprintf "par%d:%s" par name in
          let (sp, mp), s = with_stats (fun sink -> run ~par sink) in
          check (label ^ " minima") true
            (Array.for_all2 (fun a b -> a.best = b.best) sa sp);
          check_steps_eq label ma mp;
          check_series label bs s)
        pars;
      (* Degenerate shard counts: more domains than vertices, and the
         untraced fast path. *)
      let sp, mp =
        Distsim.Engine.run ~par:64 ~model:Distsim.Model.local ~graph:g
          (flood_spec g)
      in
      check (name ^ " par=64 minima") true
        (Array.for_all2 (fun a b -> a.best = b.best) sa sp);
      check_steps_eq (name ^ " par=64") ma mp)
    [
      ("path_30", Generators.path 30);
      ("star_20", Generators.star 20);
      ("gnp_50", Generators.gnp_connected (rng 8) 50 0.1);
    ]

(* Degenerate graphs: the engine must terminate immediately with no
   traffic under both schedulers. *)
let test_empty_and_singleton () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun sched ->
          let states, metrics =
            Distsim.Engine.run ~sched ~model:Distsim.Model.local ~graph:g
              (flood_spec g)
          in
          let label =
            Printf.sprintf "%s/%s" name
              (match sched with
              | `Active -> "active"
              | `Naive -> "naive"
              | `Active_legacy_cost -> "legacy")
          in
          check_int (label ^ " states") (Ugraph.n g) (Array.length states);
          check_int (label ^ " messages") 0 metrics.messages;
          check_int (label ^ " bits") 0 metrics.total_bits)
        [ `Active; `Naive ])
    [ ("empty", Ugraph.empty 0); ("singleton", Ugraph.empty 1) ];
  (* The full protocol on the same degenerate graphs. *)
  List.iter
    (fun (name, g) ->
      List.iter
        (fun sched ->
          let r = C.Two_spanner_local.run ~seed:1 ~sched g in
          let label = "protocol " ^ name in
          check_int (label ^ " spanner") 0 (Edge.Set.cardinal r.spanner);
          check_int (label ^ " messages") 0 r.metrics.messages)
        [ `Active; `Naive ])
    [ ("empty", Ugraph.empty 0); ("singleton", Ugraph.empty 1) ]

(* Pool edge cases: shard counts beyond [n], the empty range, and the
   single-vertex graph must all behave — the pool clamps shards, never
   calls the body on an empty range, and the engine produces the same
   result at any [par]. *)
let test_pool_edge_cases () =
  (* Direct pool use: n = 0 hands the body nothing but empty ranges. *)
  let pool = Distsim.Pool.get 4 in
  let indices = Atomic.make 0 in
  Distsim.Pool.run pool ~shards:4 ~n:0 (fun ~lo ~hi ~shard:_ ->
      for _ = lo to hi - 1 do
        Atomic.incr indices
      done);
  check_int "n=0 processes no indices" 0 (Atomic.get indices);
  (* shards > n: the slices still partition [0, n) exactly once. *)
  let n = 3 in
  let hit = Array.make n 0 in
  Distsim.Pool.run pool ~shards:4 ~n (fun ~lo ~hi ~shard:_ ->
      for i = lo to hi - 1 do
        hit.(i) <- hit.(i) + 1
      done);
  check "shards>n covers each index once" true
    (Array.for_all (fun c -> c = 1) hit);
  (* Engine on degenerate graphs at par = 4 (more domains than
     vertices for the singleton, any domains for the empty graph). *)
  List.iter
    (fun (name, g) ->
      let states, metrics =
        Distsim.Engine.run ~par:4 ~model:Distsim.Model.local ~graph:g
          (flood_spec g)
      in
      check_int (name ^ " par=4 states") (Ugraph.n g) (Array.length states);
      check_int (name ^ " par=4 messages") 0 metrics.messages;
      let r = C.Two_spanner_local.run ~seed:1 ~par:4 g in
      check_int (name ^ " par=4 spanner") 0 (Edge.Set.cardinal r.spanner))
    [ ("empty", Ugraph.empty 0); ("singleton", Ugraph.empty 1) ];
  (* par far beyond n on a tiny but nonempty graph agrees with seq. *)
  let g = Generators.path 2 in
  let seq = C.Two_spanner_local.run ~seed:1 g in
  let par = C.Two_spanner_local.run ~seed:1 ~par:4 g in
  check "path_2 par=4 spanner" true
    (Edge.Set.equal seq.spanner par.spanner);
  check "path_2 par=4 metrics" true
    (Distsim.Engine.metrics_deterministic_eq seq.metrics par.metrics)

(* ------------------------------------------------------------------ *)
(* GC-regression guard: the mailbox hot path must not allocate per
   message. After a warm-up run (which grows the reused inbox/outbox
   banks to their steady-state capacity), repeat runs of a flood on a
   complete graph and demand that the per-run minor-heap allocation
   stays under a budget far below one word per delivered message. A
   regression to per-send list or tuple allocation blows through the
   budget by an order of magnitude. *)

let test_allocation_budget () =
  let g = Generators.complete 48 in
  let spec = flood_spec g in
  let run () =
    Distsim.Engine.run ~model:Distsim.Model.local ~graph:g spec
  in
  (* Warm-up: sizes the engine's internal buffers and triggers any
     one-time allocation (closures, state arrays). *)
  ignore (run ());
  let _, m = run () in
  check "messages flow" true (m.messages > 1000);
  let runs = 5 in
  let before = Gc.minor_words () in
  for _ = 1 to runs do
    ignore (run ())
  done;
  let delta = Gc.minor_words () -. before in
  let per_run = delta /. float_of_int runs in
  (* Steady state still allocates the per-run state array, closures and
     metrics record, but nothing proportional to the ~2256 messages *
     rounds of traffic. The budget is generous against noise yet an
     order of magnitude below the list-based cost (one 3-word block per
     send plus a (src,msg) tuple per delivery was > 5 words/message). *)
  let budget = 20_000.0 in
  if per_run > budget then
    Alcotest.failf
      "mailbox hot path allocates %.0f minor words/run (budget %.0f)"
      per_run budget;
  (* And the engine's own accounting agrees with the external probe:
     metrics report the same order of allocation. *)
  let _, m2 = run () in
  check "metrics expose minor_words" true (m2.minor_words >= 0.0);
  check "metrics expose allocated_bytes" true (m2.allocated_bytes >= 0.0)

let test_allocation_metrics_populated () =
  (* The GC fields must be populated (non-zero) for a protocol run —
     protocols allocate state — and excluded from deterministic
     equality. *)
  let g = Generators.caveman (rng 2) 4 6 0.05 in
  let a = C.Two_spanner_local.run ~seed:3 g in
  let b = C.Two_spanner_local.run ~seed:3 g in
  check "protocol run allocates" true (a.metrics.minor_words > 0.0);
  check "allocated_bytes tracks minor words" true
    (a.metrics.allocated_bytes > 0.0);
  check "deterministic equality ignores GC noise" true
    (Distsim.Engine.metrics_deterministic_eq a.metrics b.metrics)

let () =
  Alcotest.run "engine_sched"
    [
      ( "equivalence",
        [
          Alcotest.test_case "local matrix" `Quick test_local_matrix;
          Alcotest.test_case "congest matrix" `Quick test_congest_matrix;
          Alcotest.test_case "weighted matrix" `Quick test_weighted_matrix;
          Alcotest.test_case "flood min" `Quick test_flood_min_both_scheds;
          Alcotest.test_case "observer vs send sink" `Quick
            test_observer_vs_send_sink;
        ] );
      ( "parallel determinism",
        [
          Alcotest.test_case "local matrix" `Quick test_par_local_matrix;
          Alcotest.test_case "congest matrix" `Quick test_par_congest_matrix;
          Alcotest.test_case "weighted matrix" `Quick test_par_weighted_matrix;
          Alcotest.test_case "mds" `Quick test_par_mds;
          Alcotest.test_case "flood" `Quick test_par_flood;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "pool edge cases" `Quick test_pool_edge_cases;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "steady-state budget" `Quick
            test_allocation_budget;
          Alcotest.test_case "gc metrics populated" `Quick
            test_allocation_metrics_populated;
        ] );
    ]
