(* Tests for the graph substrate: edges, graphs, traversal, powers,
   generators, serialization, and the deterministic RNG. *)

open Grapho

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  let x = Rng.int child 1_000_000 and y = Rng.int a 1_000_000 in
  (* Not a statistical test; just pins that both streams advance. *)
  check "streams usable" true (x >= 0 && y >= 0)

let test_rng_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let test_rng_geometric_positive () =
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    check "non-negative" true (Rng.geometric rng 0.5 >= 0)
  done;
  check_int "p=1 is zero" 0 (Rng.geometric rng 1.0)

let test_rng_permutation () =
  let rng = Rng.create 11 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check "is permutation" true (sorted = Array.init 50 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Edge *)

let test_edge_normalization () =
  let e = Edge.make 5 2 in
  Alcotest.(check (pair int int)) "normalized" (2, 5) (Edge.endpoints e);
  check "equal both ways" true (Edge.equal (Edge.make 2 5) (Edge.make 5 2))

let test_edge_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Edge.make: self-loop")
    (fun () -> ignore (Edge.make 3 3))

let test_edge_other () =
  let e = Edge.make 1 9 in
  check_int "other of 1" 9 (Edge.other e 1);
  check_int "other of 9" 1 (Edge.other e 9)

let test_directed_edge () =
  let e = Edge.Directed.make 4 1 in
  check_int "src" 4 (Edge.Directed.src e);
  check_int "dst" 1 (Edge.Directed.dst e);
  check "rev" true (Edge.Directed.equal (1, 4) (Edge.Directed.rev e))

(* ------------------------------------------------------------------ *)
(* Ugraph *)

let test_ugraph_basic () =
  let g = Ugraph.of_edges ~n:4 [ (0, 1); (1, 2); (1, 0) ] in
  check_int "n" 4 (Ugraph.n g);
  check_int "m dedup" 2 (Ugraph.m g);
  check "mem" true (Ugraph.mem_edge g 0 1);
  check "mem sym" true (Ugraph.mem_edge g 1 0);
  check "not mem" false (Ugraph.mem_edge g 0 2);
  check_int "deg 1" 2 (Ugraph.degree g 1);
  check_int "max deg" 2 (Ugraph.max_degree g)

let test_ugraph_neighbors_sorted () =
  let g = Ugraph.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 3; 4 |] (Ugraph.neighbors g 2)

let test_ugraph_edge_set_roundtrip () =
  let g = Generators.gnp (Rng.create 1) 20 0.3 in
  let g' = Ugraph.of_edge_set ~n:20 (Ugraph.edge_set g) in
  check "equal" true (Ugraph.equal g g')

let test_ugraph_induced () =
  let g = Generators.complete 4 in
  let sub =
    Ugraph.induced_by_edges g (Edge.Set.of_list [ Edge.make 0 1; Edge.make 2 3 ])
  in
  check_int "m" 2 (Ugraph.m sub);
  check_int "same n" 4 (Ugraph.n sub)

let test_ugraph_out_of_range () =
  Alcotest.check_raises "bad vertex"
    (Invalid_argument "Ugraph: vertex 7 out of range [0,5)") (fun () ->
      ignore (Ugraph.of_edges ~n:5 [ (0, 7) ]))

(* ------------------------------------------------------------------ *)
(* Dgraph *)

let test_dgraph_basic () =
  let g = Dgraph.of_edges ~n:3 [ (0, 1); (1, 0); (1, 2) ] in
  check_int "m keeps antiparallel" 3 (Dgraph.m g);
  check "directed mem" true (Dgraph.mem_edge g 1 2);
  check "no reverse" false (Dgraph.mem_edge g 2 1);
  check_int "out deg 1" 2 (Dgraph.out_degree g 1);
  check_int "in deg 1" 1 (Dgraph.in_degree g 1);
  Alcotest.(check (array int)) "undirected nbrs" [| 0; 2 |]
    (Dgraph.undirected_neighbors g 1)

let test_dgraph_underlying () =
  let g = Dgraph.of_edges ~n:3 [ (0, 1); (1, 0); (1, 2) ] in
  check_int "underlying collapses" 2 (Ugraph.m (Dgraph.underlying g))

let test_bidirect () =
  let u = Generators.cycle 5 in
  let d = Generators.bidirect u in
  check_int "double edges" (2 * Ugraph.m u) (Dgraph.m d)

(* ------------------------------------------------------------------ *)
(* Weights *)

let test_weights_default () =
  let w = Weights.of_list ~default:1.0 [ (0, 1, 3.0) ] in
  Alcotest.(check (float 1e-9)) "explicit" 3.0 (Weights.get w (Edge.make 0 1));
  Alcotest.(check (float 1e-9)) "default" 1.0 (Weights.get w (Edge.make 1 2))

let test_weights_cost_and_ratio () =
  let g = Generators.path 4 in
  let w = Weights.of_list ~default:0.0 [ (0, 1, 2.0); (1, 2, 8.0) ] in
  Alcotest.(check (float 1e-9)) "cost" 10.0 (Weights.graph_cost w g);
  Alcotest.(check (float 1e-9)) "ratio" 4.0 (Weights.ratio w g);
  Alcotest.(check (float 1e-9)) "min positive" 2.0 (Weights.min_positive w g)

let test_weights_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Weights: negative weight")
    (fun () -> ignore (Weights.of_list [ (0, 1, -1.0) ]))

let test_directed_weights () =
  let w = Weights.Directed.of_list ~default:2.0 [ (0, 1, 5.0); (1, 0, 0.0) ] in
  Alcotest.(check (float 1e-9)) "forward" 5.0 (Weights.Directed.get w (0, 1));
  Alcotest.(check (float 1e-9)) "reverse distinct" 0.0
    (Weights.Directed.get w (1, 0));
  Alcotest.(check (float 1e-9)) "default" 2.0 (Weights.Directed.get w (2, 3));
  Alcotest.(check (float 1e-9)) "cost" 5.0
    (Weights.Directed.cost w (Edge.Directed.Set.of_list [ (0, 1); (1, 0) ]))

(* ------------------------------------------------------------------ *)
(* Traversal *)

let test_bfs_path () =
  let g = Generators.path 6 in
  let dist = Traversal.bfs_distances g 0 in
  check_int "end" 5 dist.(5);
  check_int "diameter" 5 (Traversal.diameter g)

let test_disconnected () =
  let g = Ugraph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check "not connected" false (Traversal.is_connected g);
  check_int "components" 2 (Traversal.component_count g);
  check_int "unreachable" max_int (Traversal.distance g 0 3);
  check_int "diameter infinite" max_int (Traversal.diameter g)

let test_girth () =
  check_int "C5" 5 (Traversal.girth (Generators.cycle 5));
  check_int "K4" 3 (Traversal.girth (Generators.complete 4));
  check_int "tree" max_int (Traversal.girth (Generators.path 5));
  check_int "hypercube" 4 (Traversal.girth (Generators.hypercube 3))

let test_ball () =
  let g = Generators.path 5 in
  Alcotest.(check (list int)) "ball r=1 around 2" [ 2; 1; 3 ]
    (Traversal.ball g 2 1)

let test_set_distance_bounded () =
  let s = Edge.Set.of_list [ Edge.make 0 1; Edge.make 1 2; Edge.make 2 3 ] in
  check_int "within bound" 3 (Traversal.set_distance_within ~n:4 s 0 3 ~bound:3);
  check_int "over bound" max_int
    (Traversal.set_distance_within ~n:4 s 0 3 ~bound:2)

let test_directed_distance () =
  let s = Edge.Directed.Set.of_list [ (0, 1); (1, 2) ] in
  check_int "forward" 2
    (Traversal.directed_set_distance_within ~n:3 s 0 2 ~bound:5);
  check_int "no backward" max_int
    (Traversal.directed_set_distance_within ~n:3 s 2 0 ~bound:5)

(* ------------------------------------------------------------------ *)
(* Power *)

let test_power_path () =
  let g = Generators.path 5 in
  let g2 = Power.power g 2 in
  check "0-2 adjacent in square" true (Ugraph.mem_edge g2 0 2);
  check "0-3 not adjacent" false (Ugraph.mem_edge g2 0 3);
  check_int "m of path^2" 7 (Ugraph.m g2)

let test_power_large_r_is_component_clique () =
  let g = Generators.path 4 in
  let gk = Power.power g 10 in
  check_int "clique" 6 (Ugraph.m gk)

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_structured_families () =
  check_int "path m" 7 (Ugraph.m (Generators.path 8));
  check_int "cycle m" 8 (Ugraph.m (Generators.cycle 8));
  check_int "star m" 7 (Ugraph.m (Generators.star 8));
  check_int "complete m" 28 (Ugraph.m (Generators.complete 8));
  check_int "bipartite m" 12 (Ugraph.m (Generators.complete_bipartite 3 4));
  check_int "grid m" 12 (Ugraph.m (Generators.grid 3 3));
  check_int "hypercube m" 32 (Ugraph.m (Generators.hypercube 4));
  check_int "hypercube deg" 4 (Ugraph.max_degree (Generators.hypercube 4))

let test_gnp_connected_is_connected () =
  for seed = 0 to 9 do
    let g = Generators.gnp_connected (Rng.create seed) 40 0.05 in
    check "connected" true (Traversal.is_connected g)
  done

let test_random_tree () =
  for seed = 0 to 9 do
    let g = Generators.random_tree (Rng.create seed) 30 in
    check_int "tree edges" 29 (Ugraph.m g);
    check "tree connected" true (Traversal.is_connected g)
  done

let test_preferential_attachment () =
  let g = Generators.preferential_attachment (Rng.create 2) 100 3 in
  check "connected" true (Traversal.is_connected g);
  check "m close to 3n" true (Ugraph.m g <= 3 * 100 && Ugraph.m g >= 100)

let test_regular_ish () =
  let g = Generators.random_regular_ish (Rng.create 4) 30 4 in
  check "connected" true (Traversal.is_connected g);
  check "degrees near 4" true (Ugraph.max_degree g <= 8)

let test_client_server_covers_all () =
  let g = Generators.gnp_connected (Rng.create 5) 30 0.2 in
  let clients, servers =
    Generators.random_client_server (Rng.create 6) g ~client_fraction:0.5
      ~server_fraction:0.5
  in
  Ugraph.iter_edges
    (fun e ->
      check "typed" true (Edge.Set.mem e clients || Edge.Set.mem e servers))
    g

(* ------------------------------------------------------------------ *)
(* Graph_io *)

let test_io_roundtrip () =
  let g = Generators.gnp (Rng.create 7) 15 0.3 in
  let g' = Graph_io.of_edge_list (Graph_io.to_edge_list g) in
  check "roundtrip" true (Ugraph.equal g g')

let test_io_directed_roundtrip () =
  let d = Generators.random_orientation (Rng.create 8) (Generators.cycle 9) in
  let d' = Graph_io.directed_of_edge_list (Graph_io.directed_to_edge_list d) in
  check "roundtrip" true
    (Edge.Directed.Set.equal (Dgraph.edge_set d) (Dgraph.edge_set d'))

let test_io_weighted_roundtrip () =
  let g = Generators.gnp (Rng.create 9) 12 0.4 in
  let w = Generators.random_weights (Rng.create 10) g ~max_weight:7 in
  let g', w' = Graph_io.weighted_of_edge_list (Graph_io.weighted_to_edge_list g w) in
  check "graph" true (Ugraph.equal g g');
  Ugraph.iter_edges
    (fun e ->
      Alcotest.(check (float 1e-9)) "weight" (Weights.get w e) (Weights.get w' e))
    g

let test_io_malformed_rejected () =
  check "garbage" true
    (try ignore (Graph_io.of_edge_list "nonsense"); false
     with Failure _ -> true);
  check "count mismatch" true
    (try ignore (Graph_io.of_edge_list "3 5\n0 1\n"); false
     with Failure _ -> true);
  check "empty" true
    (try ignore (Graph_io.of_edge_list "   \n"); false
     with Failure _ -> true)

(* The parser rejects bad edges at parse time, naming the 1-based
   input line (comments and blanks counted) that carries them. *)
let test_io_line_numbered_rejection () =
  let contains msg needle =
    let nl = String.length needle and ml = String.length msg in
    let rec go i =
      if i + nl > ml then false
      else String.sub msg i nl = needle || go (i + 1)
    in
    go 0
  in
  let rejects name needle reader input =
    check name true
      (try
         ignore (reader input);
         false
       with Failure msg ->
         if contains msg needle then true
         else Alcotest.failf "%s: expected %S in %S" name needle msg)
  in
  let undirected s = Graph_io.of_edge_list s in
  rejects "self-loop" "line 3: self-loop at vertex 1" undirected
    "3 2\n0 1\n1 1\n";
  rejects "duplicate" "line 4: duplicate edge (1, 0), first seen on line 2"
    undirected "3 3\n0 1\n1 2\n1 0\n";
  rejects "duplicate after comment" "line 5: duplicate edge" undirected
    "3 2\n0 1\n# a comment\n\n0 1\n";
  rejects "out of range" "line 3: edge (1, 7) out of range for n = 3"
    undirected "3 2\n0 1\n1 7\n";
  rejects "non-integer" "line 2: \"x\" is not an integer" undirected
    "2 1\n0 x\n";
  (* Directed: an antiparallel pair is two distinct edges... *)
  let d = Graph_io.directed_of_edge_list "2 2\n0 1\n1 0\n" in
  check "antiparallel ok" true (Dgraph.m d = 2);
  (* ...but a repeated ordered pair is not. *)
  rejects "directed duplicate" "line 3: duplicate edge (0, 1)"
    (fun s -> ignore (Graph_io.directed_of_edge_list s))
    "2 2\n0 1\n0 1\n";
  (* The weighted reader shares the validation. *)
  rejects "weighted self-loop" "line 2: self-loop at vertex 1"
    (fun s -> ignore (Graph_io.weighted_of_edge_list s))
    "2 1\n1 1 2.5\n";
  rejects "weighted bad weight" "line 2: \"heavy\" is not a weight"
    (fun s -> ignore (Graph_io.weighted_of_edge_list s))
    "2 1\n0 1 heavy\n"

let test_dot_mentions_highlight () =
  let g = Generators.path 3 in
  let dot = Graph_io.to_dot ~highlight:(Edge.Set.singleton (Edge.make 0 1)) g in
  check "has color" true
    (String.length dot > 0
    && String.split_on_char '\n' dot
       |> List.exists (fun l ->
              String.length l > 0
              && String.trim l = "0 -- 1 [color=red, penwidth=2.0];"))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_gnp_edge_bounds =
  QCheck.Test.make ~name:"gnp within bounds" ~count:30
    QCheck.(pair (int_range 2 25) (int_range 0 100))
    (fun (n, seed) ->
      let g = Generators.gnp (Rng.create seed) n 0.5 in
      Ugraph.m g <= n * (n - 1) / 2)

let prop_power_monotone =
  QCheck.Test.make ~name:"G^r grows with r" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Generators.gnp_connected (Rng.create seed) 12 0.2 in
      Ugraph.m (Power.power g 1) <= Ugraph.m (Power.power g 2)
      && Ugraph.m (Power.power g 2) <= Ugraph.m (Power.power g 3))

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs distances obey triangle inequality" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Generators.gnp_connected rng 15 0.3 in
      let d0 = Traversal.bfs_distances g 0 in
      Ugraph.fold_edges
        (fun e acc ->
          let u, v = Edge.endpoints e in
          acc && abs (d0.(u) - d0.(v)) <= 1)
        g true)

let prop_tree_acyclic =
  QCheck.Test.make ~name:"random tree has girth infinity" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Generators.random_tree (Rng.create seed) 12 in
      Traversal.girth g = max_int)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [ prop_gnp_edge_bounds; prop_power_monotone;
        prop_bfs_triangle_inequality; prop_tree_acyclic ]
  in
  Alcotest.run "grapho"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "geometric" `Quick test_rng_geometric_positive;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
        ] );
      ( "edge",
        [
          Alcotest.test_case "normalization" `Quick test_edge_normalization;
          Alcotest.test_case "self loop" `Quick test_edge_self_loop;
          Alcotest.test_case "other" `Quick test_edge_other;
          Alcotest.test_case "directed" `Quick test_directed_edge;
        ] );
      ( "ugraph",
        [
          Alcotest.test_case "basic" `Quick test_ugraph_basic;
          Alcotest.test_case "sorted neighbors" `Quick
            test_ugraph_neighbors_sorted;
          Alcotest.test_case "edge set roundtrip" `Quick
            test_ugraph_edge_set_roundtrip;
          Alcotest.test_case "induced" `Quick test_ugraph_induced;
          Alcotest.test_case "out of range" `Quick test_ugraph_out_of_range;
        ] );
      ( "dgraph",
        [
          Alcotest.test_case "basic" `Quick test_dgraph_basic;
          Alcotest.test_case "underlying" `Quick test_dgraph_underlying;
          Alcotest.test_case "bidirect" `Quick test_bidirect;
        ] );
      ( "weights",
        [
          Alcotest.test_case "default" `Quick test_weights_default;
          Alcotest.test_case "cost and ratio" `Quick
            test_weights_cost_and_ratio;
          Alcotest.test_case "negative rejected" `Quick
            test_weights_negative_rejected;
          Alcotest.test_case "directed weights" `Quick test_directed_weights;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs path" `Quick test_bfs_path;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "girth" `Quick test_girth;
          Alcotest.test_case "ball" `Quick test_ball;
          Alcotest.test_case "set distance" `Quick test_set_distance_bounded;
          Alcotest.test_case "directed distance" `Quick
            test_directed_distance;
        ] );
      ( "power",
        [
          Alcotest.test_case "path square" `Quick test_power_path;
          Alcotest.test_case "component clique" `Quick
            test_power_large_r_is_component_clique;
        ] );
      ( "generators",
        [
          Alcotest.test_case "structured" `Quick test_structured_families;
          Alcotest.test_case "gnp connected" `Quick
            test_gnp_connected_is_connected;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "preferential attachment" `Quick
            test_preferential_attachment;
          Alcotest.test_case "regular-ish" `Quick test_regular_ish;
          Alcotest.test_case "client-server typing" `Quick
            test_client_server_covers_all;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "directed roundtrip" `Quick
            test_io_directed_roundtrip;
          Alcotest.test_case "weighted roundtrip" `Quick
            test_io_weighted_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick
            test_io_malformed_rejected;
          Alcotest.test_case "line-numbered rejection" `Quick
            test_io_line_numbered_rejection;
          Alcotest.test_case "dot highlight" `Quick test_dot_mentions_highlight;
        ] );
      ("properties", qsuite);
    ]
