(* Baswana-Sen (2k-1)-spanner: the randomized clustering baseline the
   paper contrasts its directed lower bounds with (Sections 1.1, 2.1).
   The guarantees split by kind — stretch <= 2k-1 holds on EVERY run,
   the O(k n^{1+1/k}) size only in expectation — so the tests assert
   stretch per seed and size against the expectation bound with head
   room, across seeds and k. *)

open Grapho
module C = Spanner_core

let rng seed = Rng.create seed

let graphs () =
  [
    ("complete_30", Generators.complete 30);
    ("caveman_6x6", Generators.caveman (rng 11) 6 6 0.04);
    ("gnp_120", Generators.gnp_connected (rng 12) 120 0.08);
    ("pa_150_4", Generators.preferential_attachment (rng 13) 150 4);
    ("grid_9x9", Generators.grid 9 9);
  ]

let seeds = [ 1; 7; 42; 1234 ]

(* Stretch <= 2k-1, every graph, every seed, k in {1, 2, 3}. k = 1
   must return the whole graph (a 1-spanner has no slack). *)
let test_stretch () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          List.iter
            (fun seed ->
              let r = C.Baswana_sen.run ~rng:(rng seed) ~k g in
              Alcotest.(check int)
                (Printf.sprintf "%s k=%d seed=%d: k recorded" name k seed)
                k r.C.Baswana_sen.k;
              let stretch = C.Spanner_check.stretch g r.spanner in
              if stretch > (2 * k) - 1 then
                Alcotest.failf "%s k=%d seed=%d: stretch %d > %d" name k
                  seed stretch
                  ((2 * k) - 1))
            seeds)
        [ 1; 2; 3 ])
    (graphs ())

let test_k1_is_whole_graph () =
  List.iter
    (fun (name, g) ->
      let r = C.Baswana_sen.run ~rng:(rng 5) ~k:1 g in
      Alcotest.(check bool)
        (name ^ ": k=1 keeps every edge")
        true
        (Edge.Set.equal r.spanner (Ugraph.edge_set g)))
    (graphs ())

(* Size against the expectation bound k n^{1+1/k} + n. A single run
   can exceed its expectation, so the per-seed assertion allows 3x
   head room (far below the m it must beat on dense graphs), and the
   across-seed MEAN must sit under the bound itself — on these
   instances the slack is comfortable, so the test stays
   deterministic-robust without dialing in constants per graph. *)
let test_size_bound () =
  List.iter
    (fun (name, g) ->
      let n = Ugraph.n g in
      List.iter
        (fun k ->
          let bound = C.Baswana_sen.expected_size_bound ~n ~k in
          let sizes =
            List.map
              (fun seed ->
                let r = C.Baswana_sen.run ~rng:(rng seed) ~k g in
                let size = Edge.Set.cardinal r.spanner in
                if float_of_int size > 3.0 *. bound then
                  Alcotest.failf "%s k=%d seed=%d: size %d > 3x bound %.0f"
                    name k seed size bound;
                size)
              seeds
          in
          let mean =
            float_of_int (List.fold_left ( + ) 0 sizes)
            /. float_of_int (List.length sizes)
          in
          if mean > bound then
            Alcotest.failf "%s k=%d: mean size %.1f > bound %.0f" name k
              mean bound)
        [ 2; 3 ])
    (graphs ())

(* On the dense instances the k = 2 spanner must actually be a
   spanner worth the name: strictly sparser than the input. *)
let test_sparsifies_dense () =
  List.iter
    (fun (name, g) ->
      let r = C.Baswana_sen.run ~rng:(rng 3) ~k:2 g in
      let size = Edge.Set.cardinal r.spanner in
      if size >= Ugraph.m g then
        Alcotest.failf "%s: k=2 kept all %d edges" name size)
    [
      ("complete_30", Generators.complete 30);
      ("gnp_dense_60", Generators.gnp_connected (rng 14) 60 0.4);
    ]

(* Fixed seed, fixed k: the exact same spanner, rounds and cluster
   count on every run — [run] draws only from the given rng. *)
let test_deterministic () =
  List.iter
    (fun (name, g) ->
      let a = C.Baswana_sen.run ~rng:(rng 99) ~k:3 g in
      let b = C.Baswana_sen.run ~rng:(rng 99) ~k:3 g in
      Alcotest.(check bool)
        (name ^ ": same seed, same spanner")
        true
        (Edge.Set.equal a.C.Baswana_sen.spanner b.C.Baswana_sen.spanner);
      Alcotest.(check int) (name ^ ": rounds") a.rounds b.rounds;
      Alcotest.(check int)
        (name ^ ": final clusters")
        a.final_clusters b.final_clusters)
    (graphs ())

(* Spanner edges must come from the graph (subset property) — implied
   by [is_spanner]'s own check, asserted via the checker on one run
   per graph for the k the protocol layer actually exercises. *)
let test_valid_spanner () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let r = C.Baswana_sen.run ~rng:(rng 21) ~k g in
          Alcotest.(check bool)
            (Printf.sprintf "%s k=%d: valid (2k-1)-spanner" name k)
            true
            (C.Spanner_check.is_spanner g r.spanner ~k:((2 * k) - 1)))
        [ 2; 3 ])
    (graphs ())

let () =
  Alcotest.run "baswana_sen"
    [
      ( "guarantees",
        [
          Alcotest.test_case "stretch <= 2k-1 on every seed" `Quick
            test_stretch;
          Alcotest.test_case "k=1 returns the whole graph" `Quick
            test_k1_is_whole_graph;
          Alcotest.test_case "size vs k*n^(1+1/k)+n across seeds" `Quick
            test_size_bound;
          Alcotest.test_case "sparsifies dense graphs at k=2" `Quick
            test_sparsifies_dense;
          Alcotest.test_case "valid (2k-1)-spanner via checker" `Quick
            test_valid_spanner;
          Alcotest.test_case "deterministic under a fixed seed" `Quick
            test_deterministic;
        ] );
    ]
