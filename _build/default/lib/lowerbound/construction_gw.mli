(** The weighted lower-bound graphs of Section 2.3 (Figure 2).

    [Gw(ℓ)] is a directed graph on exactly 6ℓ vertices: the dense
    component D (complete bipartite X₂ → Y₂, ℓ² edges) has weight 1 and
    everything else weight 0, so a k-spanner of cost 0 exists iff the
    inputs are disjoint (k ≥ 4) — giving the Ω(n / log n) bound of
    Theorem 2.9 for any approximation ratio.

    The undirected variant replaces each edge {y²_i, y_i} by a
    weight-0 path of length k-3 so that no long undirected detour can
    sneak around the construction; it has (k-4)ℓ extra vertices and
    yields Theorem 2.10's Ω(n / (k log n)). *)

open Grapho

type t = {
  ell : int;
  inputs : Disjointness.t;
  graph : Dgraph.t;
  weights : Weights.Directed.t;
  d_edges : Edge.Directed.Set.t;
  bob_vertices : int list;
}

val build : ell:int -> Disjointness.t -> t
(** Inputs must have length ℓ². *)

val n : t -> int
val cut_edges : t -> (int * int) list

val zero_weight_edges : t -> Edge.Directed.Set.t

val has_zero_cost_spanner : t -> k:int -> bool
(** Whether the weight-0 edges alone form a k-spanner; the paper
    proves, for k ≥ 4, that this holds iff the inputs are disjoint. *)

val min_d_edges_needed : t -> int
(** Number of D-edges that are the unique path between their
    endpoints: a lower bound on the cost of any spanner. 0 iff a
    zero-cost spanner exists. *)

type undirected = {
  u_ell : int;
  u_k : int;
  u_inputs : Disjointness.t;
  u_graph : Ugraph.t;
  u_weights : Weights.t;
  u_d_edges : Edge.Set.t;
}

val build_undirected : ell:int -> k:int -> Disjointness.t -> undirected
(** Requires k ≥ 4. *)

val undirected_has_zero_cost_spanner : undirected -> bool
(** Whether the weight-0 edges form a k-spanner of the undirected
    construction; holds iff the inputs are disjoint. *)
