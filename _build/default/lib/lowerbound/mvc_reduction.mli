(** The MVC → weighted 2-spanner reduction of Section 3 (Figure 3).

    From an MVC instance [G] build [G_S]: each vertex [v] becomes a
    triangle [v₁v₂v₃] with w(v₁v₂)=1 and the other two sides 0; each
    edge [{v,u}] becomes [{v₁,u₁}] and [{v₂,u₂}] of weight 0 plus one
    of [{v₁,u₂}], [{u₁,v₂}] (by id order) of weight 2. Claim 3.1: the
    minimum 2-spanner cost of [G_S] equals the minimum vertex cover
    size of [G] — both directions of the proof are executable here as
    converters, so the claim is machine-checkable on small instances
    with the exact solvers. Lemma 3.2 then turns any weighted
    2-spanner algorithm into an MVC algorithm with a factor-3 round
    overhead, importing the KMW [48] and near-quadratic [11] lower
    bounds (Theorems 3.3-3.5). *)

open Grapho

type t = {
  base : Ugraph.t;  (** the MVC instance *)
  graph : Ugraph.t;  (** G_S, on 3n vertices *)
  weights : Weights.t;
}

val build : ?augmentation:bool -> Ugraph.t -> t
(** [augmentation] (default false) sets the cross edges to weight 1
    instead of 2 — the 0/1-weight variant of the remark after Theorem
    3.5, under which an α-approximation still yields a
    2α-approximation for MVC. *)

val v1 : int -> int
val v2 : int -> int
val v3 : int -> int

val vc_to_spanner : t -> int list -> Edge.Set.t
(** The forward direction of Claim 3.1: a vertex cover [C] of the base
    graph maps to a 2-spanner [H_C] of [G_S] of cost exactly [|C|]
    (all weight-0 edges plus [{v₁,v₂}] for each [v ∈ C]). *)

val spanner_to_vc : t -> Edge.Set.t -> int list
(** The reverse direction: normalize the spanner (replace each
    weight-2 edge by the two corresponding weight-1 edges, add all
    weight-0 edges) and read off [{v : {v₁,v₂} ∈ H'}]; a vertex cover
    of cost at most the spanner's. *)

val spanner_cost : t -> Edge.Set.t -> float

val check_claim_3_1 : Ugraph.t -> bool
(** Exact check on a small instance: min-cost 2-spanner of [G_S] =
    min vertex cover of [G]. *)

(** {2 Directed variant}

    The remark closing Section 3: the triangle of [v] becomes
    [(v₁,v₂), (v₁,v₃), (v₃,v₂)] and each base edge contributes five
    directed edges — both orientations of [(v₁,u₁)] and [(v₂,u₂)] at
    weight 0 plus one cross edge — so the same lower bounds hold for
    the directed weighted 2-spanner problem. *)

type directed = {
  d_base : Ugraph.t;
  d_graph : Dgraph.t;
  d_weights : Weights.Directed.t;
}

val build_directed : ?augmentation:bool -> Ugraph.t -> directed

val check_claim_3_1_directed : Ugraph.t -> bool
(** Exact check on a small instance: the minimum-cost directed
    2-spanner of the directed [G_S] costs exactly the minimum vertex
    cover of the base graph. *)
