open Grapho
module Dset = Edge.Directed.Set

type t = {
  ell : int;
  inputs : Disjointness.t;
  graph : Dgraph.t;
  weights : Weights.Directed.t;
  d_edges : Dset.t;
  bob_vertices : int list;
}

(* Vertex layout: x1_i = i, x2_i = ell+i, y1_i = 2ell+i, y2_i = 3ell+i,
   x_i = 4ell+i, y_i = 5ell+i. *)
let x1 ell i = assert (i < ell); i
let x2 ell i = assert (i < ell); ell + i
let y1 ell i = assert (i < ell); (2 * ell) + i
let y2 ell i = assert (i < ell); (3 * ell) + i
let xv ell i = assert (i < ell); (4 * ell) + i
let yv ell i = assert (i < ell); (5 * ell) + i

let n t = 6 * t.ell

let build ~ell inputs =
  if Disjointness.length inputs <> ell * ell then
    invalid_arg "Construction_gw.build: inputs must have length ell^2";
  let edges = ref [] and d_edges = ref Dset.empty in
  let add e = edges := e :: !edges in
  for i = 0 to ell - 1 do
    add (x1 ell i, y1 ell i);
    add (x2 ell i, y2 ell i);
    add (xv ell i, x1 ell i);
    add (y2 ell i, yv ell i);
    for j = 0 to ell - 1 do
      let e = (xv ell i, yv ell j) in
      add e;
      d_edges := Dset.add e !d_edges;
      if not inputs.Disjointness.a.((i * ell) + j) then
        add (x1 ell i, x2 ell j);
      if not inputs.Disjointness.b.((i * ell) + j) then
        add (y1 ell i, y2 ell j)
    done
  done;
  let graph = Dgraph.of_edges ~n:(6 * ell) !edges in
  let weights =
    Weights.Directed.of_list ~default:0.0
      (List.map (fun (u, v) -> (u, v, 1.0)) (Dset.elements !d_edges))
  in
  let bob_vertices =
    List.init ell (fun i -> y1 ell i) @ List.init ell (fun i -> y2 ell i)
  in
  { ell; inputs; graph; weights; d_edges = !d_edges; bob_vertices }

let cut_edges t =
  let bob = Array.make (n t) false in
  List.iter (fun v -> bob.(v) <- true) t.bob_vertices;
  Dgraph.fold_edges
    (fun (u, v) acc -> if bob.(u) <> bob.(v) then (u, v) :: acc else acc)
    t.graph []

let zero_weight_edges t =
  Dgraph.fold_edges
    (fun e acc ->
      if Weights.Directed.get t.weights e = 0.0 then Dset.add e acc else acc)
    t.graph Dset.empty

(* A zero-cost spanner exists iff the weight-0 edges alone cover every
   edge: covering any D-edge by itself would already cost 1. *)
let has_zero_cost_spanner t ~k =
  Spanner_core.Spanner_check.directed_uncovered_edges t.graph
    (zero_weight_edges t) ~k
  = []

let min_d_edges_needed t =
  let nn = n t in
  let zero = zero_weight_edges t in
  Dset.fold
    (fun (u, v) acc ->
      let d =
        Traversal.directed_set_distance_within ~n:nn zero u v ~bound:nn
      in
      if d = max_int then acc + 1 else acc)
    t.d_edges 0

(* ------------------------------------------------------------------ *)

type undirected = {
  u_ell : int;
  u_k : int;
  u_inputs : Disjointness.t;
  u_graph : Ugraph.t;
  u_weights : Weights.t;
  u_d_edges : Edge.Set.t;
}

let build_undirected ~ell ~k inputs =
  if k < 4 then invalid_arg "Construction_gw.build_undirected: k < 4";
  if Disjointness.length inputs <> ell * ell then
    invalid_arg "Construction_gw.build_undirected: inputs length";
  (* First 6ℓ vertices as in Gw; then (k-4)ℓ path vertices. *)
  let path_len = k - 3 in
  let extra = (path_len - 1) * ell in
  let nb = (6 * ell) + extra in
  let path_vertex i step =
    (* step in 1 .. path_len-1 *)
    (6 * ell) + ((step - 1) * ell) + i
  in
  let edges = ref [] and d_edges = ref Edge.Set.empty in
  let add u v = edges := (u, v) :: !edges in
  for i = 0 to ell - 1 do
    add (x1 ell i) (y1 ell i);
    add (x2 ell i) (y2 ell i);
    add (xv ell i) (x1 ell i);
    (* weight-0 path of length k-3 from y2_i to y_i *)
    let rec lay prev step =
      if step = path_len then add prev (yv ell i)
      else begin
        let w = path_vertex i step in
        add prev w;
        lay w (step + 1)
      end
    in
    lay (y2 ell i) 1;
    for j = 0 to ell - 1 do
      add (xv ell i) (yv ell j);
      d_edges := Edge.Set.add (Edge.make (xv ell i) (yv ell j)) !d_edges;
      if not inputs.Disjointness.a.((i * ell) + j) then
        add (x1 ell i) (x2 ell j);
      if not inputs.Disjointness.b.((i * ell) + j) then
        add (y1 ell i) (y2 ell j)
    done
  done;
  let u_graph = Ugraph.of_edges ~n:nb !edges in
  let u_weights =
    Weights.of_list ~default:0.0
      (List.map
         (fun e ->
           let u, v = Edge.endpoints e in
           (u, v, 1.0))
         (Edge.Set.elements !d_edges))
  in
  { u_ell = ell; u_k = k; u_inputs = inputs; u_graph; u_weights;
    u_d_edges = !d_edges }

let undirected_has_zero_cost_spanner u =
  let zero =
    Ugraph.fold_edges
      (fun e acc ->
        if Weights.get u.u_weights e = 0.0 then Edge.Set.add e acc else acc)
      u.u_graph Edge.Set.empty
  in
  Spanner_core.Spanner_check.uncovered_edges u.u_graph zero ~k:u.u_k = []
