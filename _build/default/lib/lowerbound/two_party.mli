(** The Alice/Bob simulation harness of Lemma 2.4.

    Alice simulates [V_A], Bob [V_B]; messages inside a side are free,
    and every message crossing the cut costs its wire size. Running a
    distributed algorithm under this meter realizes the protocol of
    the lower-bound proofs: the measured bits obey
    [bits ≤ rounds · cut · B], so a communication-complexity lower
    bound on the task forces a round lower bound on the algorithm. *)

open Grapho

type report = {
  rounds : int;
  cut_edge_count : int;  (** undirected cut edges of the topology *)
  bits_across_cut : int;
  total_bits : int;
  bound_per_round : int;  (** cut · bandwidth: the Lemma 2.4 budget *)
}

val meter :
  ?max_rounds:int ->
  model:Distsim.Model.t ->
  graph:Ugraph.t ->
  bob:int list ->
  ('s, 'm) Distsim.Engine.spec ->
  report * 's array

val meter_flood :
  ?model:Distsim.Model.t -> graph:Ugraph.t -> bob:int list -> unit -> report
(** Meters min-id flooding — a canonical CONGEST workload — over the
    given cut. *)
