(** Two-party communication problems behind the CONGEST lower bounds.

    Set disjointness: Alice holds [a], Bob holds [b] ([N]-bit strings);
    they must decide whether some index has [a_i = b_i = 1]. Any
    protocol, even randomized, exchanges Ω(N) bits (Lemma 2.1). Gap
    disjointness relaxes the task to distinguishing disjoint inputs
    from inputs intersecting in at least [N/12] indices, which still
    costs Ω(N) bits deterministically (Lemma 2.5). *)

type t = { a : bool array; b : bool array }

val length : t -> int
val is_disjoint : t -> bool

val intersection_size : t -> int
(** Number of indices with [a_i = b_i = 1]. *)

val is_far_from_disjoint : t -> bool
(** At least [N/12] intersecting indices. *)

val random : Grapho.Rng.t -> n:int -> density:float -> t
(** Independent biased bits on each side. *)

val random_disjoint : Grapho.Rng.t -> n:int -> density:float -> t
(** Random instance conditioned on disjointness: each index gets
    (0,0), (0,1) or (1,0). *)

val random_intersecting : Grapho.Rng.t -> n:int -> t
(** Disjoint-looking instance with exactly one planted intersection. *)

val random_far : Grapho.Rng.t -> n:int -> t
(** Instance with at least [N/12] planted intersections. *)

val communication_lower_bound : n:int -> int
(** Ω(N) with the constant 1: the bits any protocol must exchange. *)
