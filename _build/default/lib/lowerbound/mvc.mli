(** Minimum vertex cover algorithms used around the Section 3
    reduction. *)

open Grapho

val is_vertex_cover : Ugraph.t -> int list -> bool

val two_approx : Ugraph.t -> int list
(** Both endpoints of a greedily-built maximal matching: the classic
    2-approximation. *)

val greedy : Ugraph.t -> int list
(** Repeatedly pick the vertex covering the most uncovered edges
    (O(log n) approximation). *)
