let log2 x = Float.log x /. Float.log 2.0

let safe_log2 n = Float.max 1.0 (log2 (float_of_int (max n 2)))

let thm_1_1_randomized ~n ~alpha =
  Float.sqrt (float_of_int n) /. (Float.sqrt alpha *. safe_log2 n)

let thm_2_8_deterministic ~n ~alpha =
  float_of_int n /. (Float.sqrt alpha *. safe_log2 n)

let thm_2_9_weighted_directed ~n = float_of_int n /. safe_log2 n

let thm_2_10_weighted_undirected ~n ~k =
  float_of_int n /. (float_of_int k *. safe_log2 n)

let thm_3_3_local_by_degree ~delta =
  let l = Float.max 2.0 (log2 (float_of_int (max delta 4))) in
  l /. Float.max 1.0 (log2 l)

let thm_3_3_local_by_n ~n =
  let l = safe_log2 n in
  Float.sqrt (l /. Float.max 1.0 (log2 l))

let thm_3_4_ratio_by_n ~n ~rounds =
  let k = float_of_int (max rounds 1) in
  (float_of_int (max n 2) ** (1.0 /. (4.0 *. k *. k))) /. k

let thm_3_4_ratio_by_delta ~delta ~rounds =
  let k = float_of_int (max rounds 1) in
  (float_of_int (max delta 2) ** (1.0 /. (k +. 1.0))) /. k

let thm_3_5_exact_congest ~n =
  let l = safe_log2 n in
  float_of_int n *. float_of_int n /. (l *. l)

let simulation_rounds ~bits ~cut ~bandwidth =
  float_of_int bits /. float_of_int (2 * cut * bandwidth)
