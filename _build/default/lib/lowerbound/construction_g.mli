(** The lower-bound graph G(ℓ, β) of Section 2 (Figure 1).

    A directed graph on n = 2ℓβ + 5ℓ vertices hosting a reduction from
    set disjointness to directed k-spanner approximation for k ≥ 5.
    The dense complete bipartite component D between X₂ and Y₂ lives
    entirely on Alice's side, so the Alice/Bob cut stays Θ(ℓ) while
    every input bit (i,r) controls whether the β² D-edges of block
    (i,r) are forced into every k-spanner:

    - bit a_{ir} = 0 puts the edge (x¹_i, x²_r) in G;
    - bit b_{ir} = 0 puts the edge (y¹_i, y²_r) in G;
    - if either edge is present there is a directed 5-path from any
      x_{ij} to any y_{rs} avoiding D; if both are absent the only
      x_{ij} → y_{rs} path is the D-edge itself (Claim 2.2).

    Bob simulates V_B = Y₁ and Alice the rest. *)

open Grapho

type t = {
  ell : int;
  beta : int;
  inputs : Disjointness.t;  (** length ℓ² *)
  graph : Dgraph.t;
  d_edges : Edge.Directed.Set.t;
  bob_vertices : int list;  (** V_B = Y₁ *)
}

val build : ell:int -> beta:int -> Disjointness.t -> t
(** Requires the input strings to have length ℓ². *)

(** Vertex coordinates (all 0-based). *)

val x1 : t -> int -> int
val x2 : t -> int -> int
val y1 : t -> int -> int
val y2 : t -> int -> int
val y3 : t -> int -> int
val x2v : t -> int -> int -> int
(** [x2v t i j] is x_{ij} ∈ X₂. *)

val y2v : t -> int -> int -> int
(** [y2v t i j] is y_{ij} ∈ Y₂. *)

val n : t -> int

val cut_edges : t -> (int * int) list
(** Directed edges crossing the Alice/Bob cut; Θ(ℓ) many. *)

val non_d_edges : t -> Edge.Directed.Set.t
(** All edges outside D: at most 7ℓβ when β ≥ ℓ (Lemma 2.3). *)

val forced_d_edges : t -> Edge.Directed.Set.t
(** The D-edges every k-spanner (k ≥ 5) must contain: all β² edges of
    every intersecting block — β² per intersecting input index. *)

val oracle_spanner : t -> Edge.Directed.Set.t
(** [non_d_edges ∪ forced_d_edges]: a valid 5-spanner realizing the
    bounds of Lemmas 2.3/2.6 (machine-checkable via
    {!Spanner_core.Spanner_check.is_directed_spanner}). *)

val check_claim_2_2 : t -> i:int -> r:int -> bool
(** Verifies Claim 2.2 on block (i,r): when one of the optional edges
    exists, every x_{ij} reaches every y_{rs} by a directed path of
    length ≤ 5 avoiding D; otherwise the D-edge is the only path. *)

val decide_disjointness :
  t -> spanner:Edge.Directed.Set.t -> alpha:float -> bool
(** Alice's decision rule in Lemma 2.4: conclude "disjoint" iff the
    spanner uses at most [alpha · 7ℓβ] edges of D. Correct whenever
    [alpha · 7ℓβ < β²] and the spanner is an [alpha]-approximation. *)

val decide_gap_disjointness :
  t -> spanner:Edge.Directed.Set.t -> alpha:float -> bool
(** Alice's decision in the deterministic reduction (Lemma 2.7):
    conclude "disjoint" iff the spanner uses at most [alpha · 7ℓ²]
    edges of D; distinguishes disjoint from far-from-disjoint whenever
    [alpha · 7ℓ² < β²ℓ²/12]. *)

val params_randomized : n':int -> alpha:float -> int * int
(** The (ℓ, β) choice in the proof of Theorem 1.1: q = ⌈α·7⌉ + 1,
    ℓ = ⌊√(n′/(7q))⌋, β = qℓ. *)

val params_deterministic : n':int -> alpha:float -> int * int
(** The (ℓ, β) choice in the proof of Theorem 2.8:
    β = ⌈√(12·α·7)⌉ + 1, ℓ = ⌊n′/(7β)⌋. *)
