open Grapho

type t = { base : Ugraph.t; graph : Ugraph.t; weights : Weights.t }

let v1 v = 3 * v
let v2 v = (3 * v) + 1
let v3 v = (3 * v) + 2

let build ?(augmentation = false) base =
  let cross_weight = if augmentation then 1.0 else 2.0 in
  let entries = ref [] in
  let add u v w = entries := (u, v, w) :: !entries in
  for v = 0 to Ugraph.n base - 1 do
    add (v1 v) (v2 v) 1.0;
    add (v1 v) (v3 v) 0.0;
    add (v2 v) (v3 v) 0.0
  done;
  Ugraph.iter_edges
    (fun e ->
      let v, u = Edge.endpoints e in
      (* v < u by edge normalization: the cross edge is {v1, u2}. *)
      add (v1 v) (v1 u) 0.0;
      add (v2 v) (v2 u) 0.0;
      add (v1 v) (v2 u) cross_weight)
    base;
  let graph =
    Ugraph.of_edges ~n:(3 * Ugraph.n base)
      (List.map (fun (u, v, _) -> (u, v)) !entries)
  in
  let weights = Weights.of_list ~default:1.0 !entries in
  { base; graph; weights }

let zero_edges t =
  Ugraph.fold_edges
    (fun e acc ->
      if Weights.get t.weights e = 0.0 then Edge.Set.add e acc else acc)
    t.graph Edge.Set.empty

let vc_to_spanner t cover =
  List.fold_left
    (fun acc v -> Edge.Set.add (Edge.make (v1 v) (v2 v)) acc)
    (zero_edges t) cover

let spanner_to_vc t spanner =
  (* Normalize: keep weight-0/1 edges, expand weight-2 cross edges into
     the two triangle edges they shortcut, add all weight-0 edges. *)
  let normalized =
    Edge.Set.fold
      (fun e acc ->
        let w = Weights.get t.weights e in
        if w <= 1.0 then Edge.Set.add e acc
        else begin
          let a, b = Edge.endpoints e in
          (* a = v1 of some vertex, b = v2 of another. *)
          let v = a / 3 and u = b / 3 in
          Edge.Set.add
            (Edge.make (v1 v) (v2 v))
            (Edge.Set.add (Edge.make (v1 u) (v2 u)) acc)
        end)
      spanner (zero_edges t)
  in
  let cover = ref [] in
  for v = Ugraph.n t.base - 1 downto 0 do
    if Edge.Set.mem (Edge.make (v1 v) (v2 v)) normalized then
      cover := v :: !cover
  done;
  !cover

let spanner_cost t spanner = Weights.cost t.weights spanner

let check_claim_3_1 base =
  let t = build base in
  let spanner =
    Spanner_core.Exact.min_weighted_2_spanner t.graph t.weights
  in
  let cover = Spanner_core.Exact.min_vertex_cover base in
  let cost = spanner_cost t spanner in
  Float.abs (cost -. float_of_int (List.length cover)) < 1e-9

type directed = {
  d_base : Ugraph.t;
  d_graph : Dgraph.t;
  d_weights : Weights.Directed.t;
}

let build_directed ?(augmentation = false) base =
  let cross_weight = if augmentation then 1.0 else 2.0 in
  let entries = ref [] in
  let add u v w = entries := (u, v, w) :: !entries in
  for v = 0 to Ugraph.n base - 1 do
    add (v1 v) (v2 v) 1.0;
    add (v1 v) (v3 v) 0.0;
    add (v3 v) (v2 v) 0.0
  done;
  Ugraph.iter_edges
    (fun e ->
      let v, u = Edge.endpoints e in
      add (v1 v) (v1 u) 0.0;
      add (v1 u) (v1 v) 0.0;
      add (v2 v) (v2 u) 0.0;
      add (v2 u) (v2 v) 0.0;
      add (v1 v) (v2 u) cross_weight)
    base;
  let d_graph =
    Dgraph.of_edges ~n:(3 * Ugraph.n base)
      (List.map (fun (u, v, _) -> (u, v)) !entries)
  in
  let d_weights = Weights.Directed.of_list ~default:1.0 !entries in
  { d_base = base; d_graph; d_weights }

let check_claim_3_1_directed base =
  let t = build_directed base in
  let spanner =
    Spanner_core.Exact.min_directed_k_spanner ~weights:t.d_weights t.d_graph
      ~k:2
  in
  let cost = Weights.Directed.cost t.d_weights spanner in
  let cover = Spanner_core.Exact.min_vertex_cover base in
  Float.abs (cost -. float_of_int (List.length cover)) < 1e-9
