open Grapho

type t = { a : bool array; b : bool array }

let length t = Array.length t.a

let is_disjoint t =
  let n = length t in
  let rec go i = i >= n || ((not (t.a.(i) && t.b.(i))) && go (i + 1)) in
  go 0

let intersection_size t =
  let count = ref 0 in
  Array.iteri (fun i ai -> if ai && t.b.(i) then incr count) t.a;
  !count

let is_far_from_disjoint t = 12 * intersection_size t >= length t

let random rng ~n ~density =
  {
    a = Array.init n (fun _ -> Rng.float rng 1.0 < density);
    b = Array.init n (fun _ -> Rng.float rng 1.0 < density);
  }

let random_disjoint rng ~n ~density =
  let a = Array.make n false and b = Array.make n false in
  for i = 0 to n - 1 do
    if Rng.float rng 1.0 < density then
      if Rng.bool rng then a.(i) <- true else b.(i) <- true
  done;
  { a; b }

let random_intersecting rng ~n =
  let t = random_disjoint rng ~n ~density:0.5 in
  let i = Rng.int rng n in
  t.a.(i) <- true;
  t.b.(i) <- true;
  t

let random_far rng ~n =
  let t = random_disjoint rng ~n ~density:0.5 in
  let planted = max 1 ((n + 11) / 12) in
  let perm = Rng.permutation rng n in
  for j = 0 to planted - 1 do
    t.a.(perm.(j)) <- true;
    t.b.(perm.(j)) <- true
  done;
  t

let communication_lower_bound ~n = n
