lib/lowerbound/two_party.ml: Array Distsim Edge Grapho List Ugraph
