lib/lowerbound/construction_gw.ml: Array Dgraph Disjointness Edge Grapho List Spanner_core Traversal Ugraph Weights
