lib/lowerbound/bounds.ml: Float
