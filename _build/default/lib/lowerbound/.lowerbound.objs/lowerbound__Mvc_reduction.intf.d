lib/lowerbound/mvc_reduction.mli: Dgraph Edge Grapho Ugraph Weights
