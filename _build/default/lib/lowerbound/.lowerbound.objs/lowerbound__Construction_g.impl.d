lib/lowerbound/construction_g.ml: Array Dgraph Disjointness Edge Float Grapho List Traversal
