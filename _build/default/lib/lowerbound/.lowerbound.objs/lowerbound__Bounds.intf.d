lib/lowerbound/bounds.mli:
