lib/lowerbound/mvc.mli: Grapho Ugraph
