lib/lowerbound/disjointness.ml: Array Grapho Rng
