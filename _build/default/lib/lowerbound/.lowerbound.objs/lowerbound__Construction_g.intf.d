lib/lowerbound/construction_g.mli: Dgraph Disjointness Edge Grapho
