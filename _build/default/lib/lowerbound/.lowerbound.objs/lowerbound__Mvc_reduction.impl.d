lib/lowerbound/mvc_reduction.ml: Dgraph Edge Float Grapho List Spanner_core Ugraph Weights
