lib/lowerbound/construction_gw.mli: Dgraph Disjointness Edge Grapho Ugraph Weights
