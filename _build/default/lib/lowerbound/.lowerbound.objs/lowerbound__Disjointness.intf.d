lib/lowerbound/disjointness.mli: Grapho
