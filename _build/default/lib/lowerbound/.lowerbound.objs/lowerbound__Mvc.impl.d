lib/lowerbound/mvc.ml: Array Edge Grapho Hashtbl List Ugraph
