lib/lowerbound/two_party.mli: Distsim Grapho Ugraph
