(** The round lower-bound curves proved in Sections 2 and 3, as
    functions of the construction parameters. The benchmark harness
    prints these next to the verified construction quantities (cut
    sizes, spanner-size gaps) that the proofs count. *)

val log2 : float -> float

val thm_1_1_randomized : n:int -> alpha:float -> float
(** Ω(√n / (√α · log n)) — randomized directed k-spanner, k ≥ 5. *)

val thm_2_8_deterministic : n:int -> alpha:float -> float
(** Ω(n / (√α · log n)) — deterministic directed k-spanner, k ≥ 5. *)

val thm_2_9_weighted_directed : n:int -> float
(** Ω(n / log n) — weighted directed k-spanner, k ≥ 4, any ratio. *)

val thm_2_10_weighted_undirected : n:int -> k:int -> float
(** Ω(n / (k · log n)). *)

val thm_3_3_local_by_degree : delta:int -> float
(** Ω(log Δ / log log Δ) for (poly)log-ratio weighted 2-spanner. *)

val thm_3_3_local_by_n : n:int -> float
(** Ω(√(log n / log log n)). *)

val thm_3_4_ratio_by_n : n:int -> rounds:int -> float
(** In [rounds] LOCAL rounds the ratio is Ω(n^{(1-o(1))/4k²} / k);
    the o(1) is dropped for display. *)

val thm_3_4_ratio_by_delta : delta:int -> rounds:int -> float
(** Ω(Δ^{1/(k+1)} / k). *)

val thm_3_5_exact_congest : n:int -> float
(** Ω(n² / log² n) — exact weighted 2-spanner in CONGEST. *)

val simulation_rounds : bits:int -> cut:int -> bandwidth:int -> float
(** Lemma 2.4's accounting: a task needing [bits] over a [cut] at
    [bandwidth] bits/edge/round needs at least
    [bits / (2 · cut · bandwidth)] rounds. *)
