lib/graph/edge.ml: Format Map Set Stdlib
