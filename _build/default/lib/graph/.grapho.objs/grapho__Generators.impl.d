lib/graph/generators.ml: Array Dgraph Edge Int List Rng Set Ugraph Weights
