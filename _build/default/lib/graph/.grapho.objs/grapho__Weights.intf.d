lib/graph/weights.mli: Edge Ugraph
