lib/graph/edge.mli: Format Map Set Stdlib
