lib/graph/traversal.mli: Dgraph Edge Ugraph
