lib/graph/generators.mli: Dgraph Edge Rng Ugraph Weights
