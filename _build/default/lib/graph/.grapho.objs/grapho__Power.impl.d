lib/graph/power.ml: Array Traversal Ugraph
