lib/graph/graph_io.ml: Buffer Dgraph Edge List Printf String Ugraph Weights
