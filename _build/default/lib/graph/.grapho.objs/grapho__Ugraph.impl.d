lib/graph/ugraph.ml: Array Edge Format List Printf
