lib/graph/dgraph.mli: Edge Format Ugraph
