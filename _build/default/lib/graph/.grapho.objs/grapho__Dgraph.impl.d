lib/graph/dgraph.ml: Array Edge Format Int List Printf Set Ugraph
