lib/graph/graph_io.mli: Dgraph Edge Ugraph Weights
