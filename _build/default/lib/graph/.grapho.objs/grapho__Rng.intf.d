lib/graph/rng.mli:
