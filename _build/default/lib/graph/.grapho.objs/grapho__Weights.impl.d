lib/graph/weights.ml: Edge List Ugraph
