lib/graph/traversal.ml: Array Dgraph Edge List Queue Ugraph
