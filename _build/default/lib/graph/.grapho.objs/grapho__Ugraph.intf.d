lib/graph/ugraph.mli: Edge Format
