lib/graph/rng.ml: Array Float Int64
