lib/graph/power.mli: Ugraph
