(** Graph powers.

    The (1+ε)-approximation of Section 6 runs a network decomposition
    on [G^r], the graph connecting every two vertices at distance at
    most [r] in [G]. *)

val power : Ugraph.t -> int -> Ugraph.t
(** [power g r] with [r >= 1]. O(n·m) construction. *)
