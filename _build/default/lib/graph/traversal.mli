(** Breadth-first search and derived graph queries. *)

val bfs_distances : Ugraph.t -> int -> int array
(** [bfs_distances g s] maps each vertex to its hop distance from [s];
    unreachable vertices get [max_int]. *)

val distance : Ugraph.t -> int -> int -> int
(** Hop distance; [max_int] if disconnected. *)

val ball : Ugraph.t -> int -> int -> int list
(** [ball g v d] lists the vertices at distance at most [d] from [v],
    in increasing distance order. *)

val components : Ugraph.t -> int array
(** Component id per vertex (ids are arbitrary but dense from 0). *)

val component_count : Ugraph.t -> int
val is_connected : Ugraph.t -> bool

val eccentricity : Ugraph.t -> int -> int
(** Largest finite distance from the vertex; [max_int] when the graph
    is disconnected. *)

val diameter : Ugraph.t -> int
(** [max_int] when disconnected. Exact, O(n·m). *)

val girth : Ugraph.t -> int
(** Length of a shortest cycle; [max_int] for forests. *)

val adjacency_of_set : n:int -> Edge.Set.t -> int list array
(** Adjacency lists of the subgraph formed by an edge set. *)

val set_distance_within : n:int -> Edge.Set.t -> int -> int -> bound:int -> int
(** [set_distance_within ~n s u v ~bound] is the hop distance from [u]
    to [v] using only edges of [s], or [max_int] if it exceeds
    [bound]. *)

val directed_adjacency_of_set : n:int -> Edge.Directed.Set.t -> int list array

val directed_set_distance_within :
  n:int -> Edge.Directed.Set.t -> int -> int -> bound:int -> int
(** Directed variant of {!set_distance_within}. *)

val directed_bfs_distances : Dgraph.t -> int -> int array
(** Distances along directed edges from the source. *)
