let power g r =
  if r < 1 then invalid_arg "Power.power: r must be >= 1";
  let n = Ugraph.n g in
  let edges = ref [] in
  for v = 0 to n - 1 do
    let dist = Traversal.bfs_distances g v in
    for u = v + 1 to n - 1 do
      if dist.(u) <= r then edges := (v, u) :: !edges
    done
  done;
  Ugraph.of_edges ~n !edges
