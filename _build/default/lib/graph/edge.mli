(** Edges of undirected and directed graphs.

    Vertices are dense integer identifiers [0 .. n-1]. An undirected
    edge is kept in normalized form (smaller endpoint first) so that
    structural equality and ordering behave as set semantics demand. *)

type t = private int * int
(** A normalized undirected edge [(u, v)] with [u < v]. *)

val make : int -> int -> t
(** [make u v] normalizes the pair. Raises [Invalid_argument] on a
    self-loop. *)

val endpoints : t -> int * int
(** The two endpoints, smaller first. *)

val other : t -> int -> int
(** [other e u] is the endpoint of [e] different from [u]. Raises
    [Invalid_argument] if [u] is not an endpoint. *)

val mem_endpoint : t -> int -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

module Directed : sig
  (** A directed edge [(src, dst)]; no normalization. *)

  type t = int * int

  val make : int -> int -> t
  (** Raises [Invalid_argument] on a self-loop. *)

  val src : t -> int
  val dst : t -> int
  val rev : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  module Set : Stdlib.Set.S with type elt = t
  module Map : Stdlib.Map.S with type key = t
end
