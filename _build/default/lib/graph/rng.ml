(* SplitMix64. Public domain algorithm; see Vigna's reference code. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.(sub (add (sub r v) bound64) 1L) < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let geometric t p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Rng.geometric: p not in (0,1]";
  if p = 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u = 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
