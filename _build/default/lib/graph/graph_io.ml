let to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Ugraph.n g) (Ugraph.m g));
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    g;
  Buffer.contents buf

let parse_lines s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let parse_pair line =
  match String.split_on_char ' ' line |> List.filter (( <> ) "") with
  | [ a; b ] -> (int_of_string a, int_of_string b)
  | _ -> failwith (Printf.sprintf "Graph_io: malformed line %S" line)

let parse_edge_list s =
  match parse_lines s with
  | [] -> failwith "Graph_io: empty input"
  | header :: rest ->
      let n, m = parse_pair header in
      let edges = List.map parse_pair rest in
      if List.length edges <> m then
        failwith "Graph_io: edge count does not match header";
      (n, edges)

let of_edge_list s =
  let n, edges = parse_edge_list s in
  Ugraph.of_edges ~n edges

let directed_to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Dgraph.n g) (Dgraph.m g));
  Dgraph.iter_edges
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    g;
  Buffer.contents buf

let directed_of_edge_list s =
  let n, edges = parse_edge_list s in
  Dgraph.of_edges ~n edges

let to_dot ?(highlight = Edge.Set.empty) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph G {\n";
  for v = 0 to Ugraph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      let attrs =
        if Edge.Set.mem e highlight then " [color=red, penwidth=2.0]" else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v attrs))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let directed_to_dot ?(highlight = Edge.Directed.Set.empty) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph G {\n";
  for v = 0 to Dgraph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Dgraph.iter_edges
    (fun e ->
      let u, v = e in
      let attrs =
        if Edge.Directed.Set.mem e highlight then
          " [color=red, penwidth=2.0]"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d -> %d%s;\n" u v attrs))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let weighted_to_edge_list g w =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Ugraph.n g) (Ugraph.m g));
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      Buffer.add_string buf
        (Printf.sprintf "%d %d %g\n" u v (Weights.get w e)))
    g;
  Buffer.contents buf

let weighted_of_edge_list s =
  match parse_lines s with
  | [] -> failwith "Graph_io: empty input"
  | header :: rest ->
      let n, m = parse_pair header in
      let rows =
        List.map
          (fun line ->
            match String.split_on_char ' ' line |> List.filter (( <> ) "") with
            | [ a; b; w ] ->
                (int_of_string a, int_of_string b, float_of_string w)
            | _ -> failwith (Printf.sprintf "Graph_io: malformed line %S" line))
          rest
      in
      if List.length rows <> m then
        failwith "Graph_io: edge count does not match header";
      let g = Ugraph.of_edges ~n (List.map (fun (u, v, _) -> (u, v)) rows) in
      (g, Weights.of_list ~default:1.0 rows)
