type t = int * int

let make u v =
  if u = v then invalid_arg "Edge.make: self-loop";
  if u < v then (u, v) else (v, u)

let endpoints e = e

let other (u, v) w =
  if w = u then v
  else if w = v then u
  else invalid_arg "Edge.other: not an endpoint"

let mem_endpoint (u, v) w = w = u || w = v

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b
let hash ((u, v) : t) = (u * 1000003) lxor v
let pp ppf (u, v) = Format.fprintf ppf "{%d,%d}" u v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Directed = struct
  type t = int * int

  let make u v =
    if u = v then invalid_arg "Edge.Directed.make: self-loop";
    (u, v)

  let src (u, _) = u
  let dst (_, v) = v
  let rev (u, v) = (v, u)
  let compare (a : t) (b : t) = Stdlib.compare a b
  let equal (a : t) (b : t) = a = b
  let pp ppf (u, v) = Format.fprintf ppf "(%d->%d)" u v

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Set = Stdlib.Set.Make (Ord)
  module Map = Stdlib.Map.Make (Ord)
end
