(** Plain-text edge-list serialization and Graphviz export. *)

val to_edge_list : Ugraph.t -> string
(** First line "n m", then one "u v" line per edge. *)

val of_edge_list : string -> Ugraph.t
(** Inverse of {!to_edge_list}. Raises [Failure] on malformed input. *)

val directed_to_edge_list : Dgraph.t -> string
val directed_of_edge_list : string -> Dgraph.t

val weighted_to_edge_list : Ugraph.t -> Weights.t -> string
(** First line "n m", then one "u v w" line per edge. *)

val weighted_of_edge_list : string -> Ugraph.t * Weights.t
(** Inverse of {!weighted_to_edge_list}; unlisted weights default
    to 1. Raises [Failure] on malformed input. *)

val to_dot : ?highlight:Edge.Set.t -> Ugraph.t -> string
(** Graphviz source; edges in [highlight] are drawn bold red (used to
    visualize a spanner inside its graph). *)

val directed_to_dot : ?highlight:Edge.Directed.Set.t -> Dgraph.t -> string
