(** Deterministic splittable pseudo-random number generator.

    All randomized algorithms in this repository draw randomness through
    this module so that every experiment is reproducible from a seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
    64-bit state advanced by a Weyl sequence and finalized by a
    variant of the MurmurHash3 mixer. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator determined by [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream.
    Used to give each simulated vertex its own private randomness. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success
    of a Bernoulli(p) trial; [p] must lie in (0, 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)
