let density_of ?weights ?bonuses ~edges subset =
  let module S = Set.Make (Int) in
  let s = S.of_list subset in
  let inside = List.filter (fun (u, v) -> S.mem u s && S.mem v s) edges in
  let weight v = match weights with None -> 1.0 | Some w -> w.(v) in
  let bonus v = match bonuses with None -> 0.0 | Some b -> b.(v) in
  let total = List.fold_left (fun acc v -> acc +. weight v) 0.0 subset in
  let gain =
    float_of_int (List.length inside)
    +. List.fold_left (fun acc v -> acc +. bonus v) 0.0 subset
  in
  if total = 0.0 then infinity else gain /. total

let validate ?weights ?bonuses ~n ~edges () =
  (match weights with
  | Some w ->
      if Array.length w <> n then invalid_arg "Densest: weights length";
      Array.iter
        (fun x -> if x <= 0.0 then invalid_arg "Densest: non-positive weight")
        w
  | None -> ());
  (match bonuses with
  | Some b ->
      if Array.length b <> n then invalid_arg "Densest: bonuses length";
      Array.iter
        (fun x -> if x < 0.0 then invalid_arg "Densest: negative bonus")
        b
  | None -> ());
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n || u = v then
        invalid_arg "Densest: bad edge")
    edges

(* Source side of the min cut of Goldberg's network at guess [g];
   returns the subset (possibly empty) and whether the cut is strictly
   below the trivial cut, i.e. whether a subset of density > g
   exists. *)
let probe ~n ~edges ~weight ~bonus ~big g =
  let s = n and t = n + 1 in
  let net = Maxflow.create (n + 2) in
  let deg = Array.make n 0.0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) +. 1.0;
      deg.(v) <- deg.(v) +. 1.0)
    edges;
  for v = 0 to n - 1 do
    Maxflow.add_edge net ~src:s ~dst:v ~cap:big;
    Maxflow.add_edge net ~src:v ~dst:t
      ~cap:(big +. (2.0 *. g *. weight v) -. deg.(v) -. (2.0 *. bonus v))
  done;
  List.iter
    (fun (u, v) ->
      Maxflow.add_edge net ~src:u ~dst:v ~cap:1.0;
      Maxflow.add_edge net ~src:v ~dst:u ~cap:1.0)
    edges;
  let flow = Maxflow.max_flow net ~s ~t in
  let trivial = big *. float_of_int n in
  let feasible = flow < trivial -. 1e-6 in
  if not feasible then ([], false)
  else begin
    let side = Maxflow.min_cut_side net ~s in
    let subset = ref [] in
    for v = n - 1 downto 0 do
      if side.(v) then subset := v :: !subset
    done;
    (!subset, true)
  end

let densest_subset ?weights ?bonuses ~n ~edges () =
  validate ?weights ?bonuses ~n ~edges ();
  let weight v = match weights with None -> 1.0 | Some w -> w.(v) in
  let bonus v = match bonuses with None -> 0.0 | Some b -> b.(v) in
  let total_bonus = ref 0.0 in
  for v = 0 to n - 1 do
    total_bonus := !total_bonus +. bonus v
  done;
  (* A sensible starting incumbent: the endpoints of the first edge, or
     the best single node when only bonuses contribute. *)
  let seed =
    match edges with
    | (u0, v0) :: _ -> Some (List.sort_uniq compare [ u0; v0 ])
    | [] ->
        let best = ref None in
        for v = 0 to n - 1 do
          if bonus v > 0.0 then
            match !best with
            | Some b when bonus b /. weight b >= bonus v /. weight v -> ()
            | _ -> best := Some v
        done;
        Option.map (fun v -> [ v ]) !best
  in
  match seed with
  | None -> None
  | Some seed ->
      let m = List.length edges in
      let exact subset = density_of ?weights ?bonuses ~edges subset in
      let best = ref seed in
      let best_density = ref (exact seed) in
      let min_weight =
        match weights with
        | None -> 1.0
        | Some w -> Array.fold_left min w.(0) w
      in
      let max_bonus =
        match bonuses with
        | None -> 0.0
        | Some b -> Array.fold_left max 0.0 b
      in
      let big = (2.0 *. float_of_int m) +. (2.0 *. max_bonus) +. 1.0 in
      let lo = ref 0.0 in
      let hi =
        ref (((float_of_int m +. !total_bonus) /. min_weight) +. 1.0)
      in
      (* With unit weights (bonuses integral in all our uses) any two
         distinct densities differ by at least 1/(n*(n-1)); with float
         weights we settle for a tight relative tolerance and trust the
         exact recomputation of candidates. *)
      let granularity =
        match weights with
        | None -> 1.0 /. ((float_of_int n *. float_of_int n) +. 1.0)
        | Some _ -> 1e-9 *. !hi
      in
      let iterations = ref 0 in
      while !hi -. !lo > granularity && !iterations < 200 do
        incr iterations;
        let g = (!lo +. !hi) /. 2.0 in
        match probe ~n ~edges ~weight ~bonus ~big g with
        | subset, true when subset <> [] ->
            let d = exact subset in
            if d > !best_density then begin
              best := subset;
              best_density := d
            end;
            lo := g
        | _ -> hi := g
      done;
      Some (!best, !best_density)

let brute_force ?weights ?bonuses ~n ~edges () =
  validate ?weights ?bonuses ~n ~edges ();
  if n > 20 then invalid_arg "Densest.brute_force: n > 20";
  let no_gain =
    edges = []
    && match bonuses with
       | None -> true
       | Some b -> Array.for_all (fun x -> x = 0.0) b
  in
  if no_gain then None
  else begin
  let best = ref [] and best_density = ref neg_infinity in
  for mask = 1 to (1 lsl n) - 1 do
    let subset = ref [] in
    for v = n - 1 downto 0 do
      if mask land (1 lsl v) <> 0 then subset := v :: !subset
    done;
    let d = density_of ?weights ?bonuses ~edges !subset in
    if d > !best_density then begin
      best := !subset;
      best_density := d
    end
  done;
  if !best = [] then None else Some (!best, !best_density)
  end
