lib/flow/maxflow.mli:
