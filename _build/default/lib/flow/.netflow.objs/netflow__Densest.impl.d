lib/flow/densest.ml: Array Int List Maxflow Option Set
