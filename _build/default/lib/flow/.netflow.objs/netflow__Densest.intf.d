lib/flow/densest.mli:
