let eps = 1e-12

type edge = { dst : int; mutable cap : float; rev : int }

type t = { n : int; adj : edge array ref array; sizes : int array }

let create n =
  { n; adj = Array.init n (fun _ -> ref [||]); sizes = Array.make n 0 }

let push t v e =
  let a = !(t.adj.(v)) in
  let len = Array.length a in
  if t.sizes.(v) = len then begin
    let bigger = Array.make (max 4 (2 * len)) e in
    Array.blit a 0 bigger 0 len;
    t.adj.(v) := bigger
  end;
  !(t.adj.(v)).(t.sizes.(v)) <- e;
  t.sizes.(v) <- t.sizes.(v) + 1

let add_edge t ~src ~dst ~cap =
  if cap < 0.0 then invalid_arg "Maxflow.add_edge: negative capacity";
  let fwd = { dst; cap; rev = t.sizes.(dst) } in
  let bwd = { dst = src; cap = 0.0; rev = t.sizes.(src) } in
  push t src fwd;
  push t dst bwd

let bfs_levels t ~s ~t:sink =
  let level = Array.make t.n (-1) in
  let q = Queue.create () in
  level.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for i = 0 to t.sizes.(u) - 1 do
      let e = !(t.adj.(u)).(i) in
      if e.cap > eps && level.(e.dst) = -1 then begin
        level.(e.dst) <- level.(u) + 1;
        Queue.add e.dst q
      end
    done
  done;
  if level.(sink) = -1 then None else Some level

let max_flow t ~s ~t:sink =
  let flow = ref 0.0 in
  let continue = ref true in
  while !continue do
    match bfs_levels t ~s ~t:sink with
    | None -> continue := false
    | Some level ->
        let iter = Array.make t.n 0 in
        let rec dfs u pushed =
          if u = sink then pushed
          else begin
            let result = ref 0.0 in
            while !result = 0.0 && iter.(u) < t.sizes.(u) do
              let e = !(t.adj.(u)).(iter.(u)) in
              if e.cap > eps && level.(e.dst) = level.(u) + 1 then begin
                let d = dfs e.dst (min pushed e.cap) in
                if d > eps then begin
                  e.cap <- e.cap -. d;
                  let back = !(t.adj.(e.dst)).(e.rev) in
                  back.cap <- back.cap +. d;
                  result := d
                end
                else iter.(u) <- iter.(u) + 1
              end
              else iter.(u) <- iter.(u) + 1
            done;
            !result
          end
        in
        let rec pump () =
          let d = dfs s infinity in
          if d > eps then begin
            flow := !flow +. d;
            pump ()
          end
        in
        pump ()
  done;
  !flow

let min_cut_side t ~s =
  let seen = Array.make t.n false in
  let q = Queue.create () in
  seen.(s) <- true;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for i = 0 to t.sizes.(u) - 1 do
      let e = !(t.adj.(u)).(i) in
      if e.cap > eps && not seen.(e.dst) then begin
        seen.(e.dst) <- true;
        Queue.add e.dst q
      end
    done
  done;
  seen
