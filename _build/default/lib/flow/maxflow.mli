(** Dinic's maximum-flow algorithm on float capacities.

    Used by {!Densest} to solve the maximal-density problem that the
    paper's Section 4 relies on ("this is the maximal density problem,
    that can be solved in polynomial time using flow techniques
    [36]"). Capacities are floats; a small epsilon guards residual
    tests, which is sound here because {!Densest} re-checks candidate
    answers exactly. *)

type t

val create : int -> t
(** [create n] makes an empty network with nodes [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:float -> unit
(** Adds a directed edge with the given capacity (and a reverse edge
    of capacity 0). *)

val max_flow : t -> s:int -> t:int -> float
(** Computes the max flow; mutates the network's residual
    capacities. *)

val min_cut_side : t -> s:int -> bool array
(** After {!max_flow}, the set of nodes reachable from [s] in the
    residual network (the source side of a minimum cut). *)
