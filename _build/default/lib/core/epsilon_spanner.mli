(** (1+ε)-approximate minimum k-spanner in the LOCAL model
    (Theorem 1.2, Section 6).

    The algorithm follows the covering-problem framework of Ghaffari,
    Kuhn and Maus [39]: decompose the power graph [G^r] (for [r =
    O(log n / ε)]) with {!Decomposition}, then process clusters color
    by color; inside a cluster, vertices run, in id order, the
    sequential ball-growing step — find the smallest radius [r_i] with
    [g(v, r_i + 2k) <= (1+ε) · g(v, r_i)], where [g(v,d)] is the size
    of an optimal spanner of the still-uncovered edges of the radius-d
    ball, and commit an optimal spanner of the [r_i + 2k] ball.
    Optimal ball spanners come from {!Exact}; the paper explicitly
    assumes unbounded local computation here, which restricts our runs
    to small instances.

    The returned LOCAL-round figure charges, per color, the collection
    radius [O(r · log n)] a cluster leader needs — the accounting in
    the proof of Theorem 1.2. *)

open Grapho

type result = {
  spanner : Edge.Set.t;
  cost : float;  (** total weight; the cardinality under unit weights *)
  r : int;  (** the locality radius used *)
  colors : int;
  balls_processed : int;
  rounds : int;  (** simulated LOCAL rounds: [colors * O(log n) * r] *)
}

val run :
  ?rng:Rng.t -> ?weights:Weights.t -> epsilon:float -> k:int -> Ugraph.t ->
  result
(** The result is always a valid k-spanner; its cost is at most
    [(1+ε)] times optimal (certifiable against {!Exact} on small
    inputs). The weighted form follows the paper's closing remark of
    Section 6 (complexity grows with [log (nW)]). Intended for [n] up
    to a few dozen. *)
