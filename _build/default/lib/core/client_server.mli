(** Distributed approximation of client-server 2-spanners
    (Theorem 4.15).

    The edges of the input graph are typed as clients [C] and servers
    [S] (an edge may be both); the goal is a minimum set of server
    edges covering every client edge. The algorithm guarantees an
    approximation ratio of O(min(log (|C| / |V(C)|), log Δ_S)) in
    O(log n · log Δ_S) rounds w.h.p.

    Differences from the plain algorithm (Section 4.3.3): stars use
    server edges only, densities count client edges, the density floor
    is 1/2 (the best cover of a lone client edge may be a 2-path), and
    a terminating vertex may only self-add incident uncovered edges
    that are both client and server. Client edges no server path can
    cover are reported in [uncoverable]; when the instance admits a
    solution that set is empty. *)

open Grapho

type result = {
  spanner : Edge.Set.t;
  iterations : int;
  rounds : int;
  stars_added : int;
  candidate_count : int;
  uncoverable : Edge.Set.t;
}

val run :
  ?rng:Rng.t ->
  ?seed:int ->
  ?max_iterations:int ->
  ?selection:Two_spanner_engine.selection ->
  Ugraph.t ->
  clients:Edge.Set.t ->
  servers:Edge.Set.t ->
  result
(** [run g ~clients ~servers]: both sets must be subsets of [g]'s
    edges. Every coverable client edge is covered by the result. *)

val ratio_bound : Ugraph.t -> clients:Edge.Set.t -> servers:Edge.Set.t -> float
(** [8 · (min(log2(|C|/|V(C)|), log2 Δ_S) + 3)], for display. *)
