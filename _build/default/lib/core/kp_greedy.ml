open Grapho

type result = {
  spanner : Edge.Set.t;
  cost : float;
  stars_added : int;
  singles_added : int;
  uncoverable : Edge.Set.t;
}

let run ?weights ?targets ?usable g =
  let w = match weights with Some w -> w | None -> Weights.uniform 1.0 in
  let all = Ugraph.edge_set g in
  let targets = Option.value ~default:all targets in
  let usable = Option.value ~default:all usable in
  let n = Ugraph.n g in
  let cover = Cover2.create ~n ~targets ~usable in
  let dirty = Array.make n true in
  let density = Array.make n 0.0 in
  let star = Array.make n [] in
  let mark_dirty v = dirty.(v) <- true in
  (* Weight-zero edges are free: commit them immediately. *)
  let zero = Edge.Set.filter (fun e -> Weights.get w e = 0.0) usable in
  if not (Edge.Set.is_empty zero) then Cover2.add cover zero ~dirty:mark_dirty;
  let paying = Array.make n [||] and free = Array.make n [||] in
  for v = 0 to n - 1 do
    let pay = ref [] and fr = ref [] in
    Array.iter
      (fun u ->
        if Weights.get w (Edge.make v u) = 0.0 then fr := u :: !fr
        else pay := u :: !pay)
      (Cover2.usable_neighbors cover v);
    paying.(v) <- Array.of_list (List.rev !pay);
    free.(v) <- Array.of_list (List.rev !fr)
  done;
  let refresh v =
    if dirty.(v) then begin
      dirty.(v) <- false;
      let hv = Cover2.hv cover v in
      if Edge.Set.is_empty hv then begin
        density.(v) <- 0.0;
        star.(v) <- []
      end
      else begin
        let prob =
          Star_pick.make ~center:v ~nodes:paying.(v) ~free:free.(v)
            ~weight:(fun u -> Weights.get w (Edge.make v u))
            ~hv_edges:hv ()
        in
        match Star_pick.densest prob with
        | Some (sel, d) when d > 0.0 ->
            density.(v) <- d;
            star.(v) <- sel
        | _ ->
            density.(v) <- 0.0;
            star.(v) <- []
      end
    end
  in
  let stars_added = ref 0 and singles_added = ref 0 in
  let uncoverable = Cover2.uncoverable_targets cover in
  let continue_loop = ref true in
  while !continue_loop do
    let remaining =
      Edge.Set.diff (Cover2.uncovered cover) uncoverable
    in
    if Edge.Set.is_empty remaining then continue_loop := false
    else begin
      for v = 0 to n - 1 do
        refresh v
      done;
      let best_vertex = ref (-1) and best_density = ref 0.0 in
      for v = 0 to n - 1 do
        if density.(v) > !best_density then begin
          best_density := density.(v);
          best_vertex := v
        end
      done;
      (* The single-edge alternative: cover one usable target by
         itself, at density 1 / weight. *)
      let best_single =
        Edge.Set.fold
          (fun e acc ->
            if Edge.Set.mem e usable then
              let d = 1.0 /. Float.max (Weights.get w e) 1e-30 in
              match acc with
              | Some (_, d') when d' >= d -> acc
              | _ -> Some (e, d)
            else acc)
          remaining None
      in
      match best_single with
      | Some (e, d) when d >= !best_density ->
          incr singles_added;
          Cover2.add cover (Edge.Set.singleton e) ~dirty:mark_dirty
      | _ ->
          if !best_vertex < 0 then
            (* No star and no single edge can cover what remains; these
               targets are in fact uncoverable through longer joint
               effects — treat them as such. *)
            continue_loop := false
          else begin
            incr stars_added;
            let v = !best_vertex in
            let additions =
              List.fold_left
                (fun acc u -> Edge.Set.add (Edge.make v u) acc)
                Edge.Set.empty star.(v)
            in
            Cover2.add cover additions ~dirty:mark_dirty
          end
    end
  done;
  let spanner = Cover2.spanner cover in
  {
    spanner;
    cost = Weights.cost w spanner;
    stars_added = !stars_added;
    singles_added = !singles_added;
    uncoverable = Edge.Set.inter (Cover2.uncovered cover) targets;
  }
