open Grapho
module Iset = Set.Make (Int)

type t = {
  n : int;
  usable : Edge.Set.t;
  usable_adj : int array array;
  mutable spanner : Edge.Set.t;
  sp_adj : Iset.t array;
  mutable uncovered : Edge.Set.t;
  hv : Edge.Set.t array;
  incident : Edge.Set.t array;
}

let sorted_mem a x =
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true
      else if a.(mid) < x then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length a)

(* Common usable-neighbors of u and w: iterate the smaller sorted
   adjacency, binary-search the larger. *)
let common_usable_neighbors t u w =
  let a, b =
    if Array.length t.usable_adj.(u) <= Array.length t.usable_adj.(w) then
      (t.usable_adj.(u), t.usable_adj.(w))
    else (t.usable_adj.(w), t.usable_adj.(u))
  in
  Array.fold_left (fun acc z -> if sorted_mem b z then z :: acc else acc) [] a

let create ~n ~targets ~usable =
  let deg = Array.make n 0 in
  Edge.Set.iter
    (fun e ->
      let u, w = Edge.endpoints e in
      if u < 0 || w >= n then invalid_arg "Cover2.create: vertex out of range";
      deg.(u) <- deg.(u) + 1;
      deg.(w) <- deg.(w) + 1)
    usable;
  let usable_adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Edge.Set.iter
    (fun e ->
      let u, w = Edge.endpoints e in
      usable_adj.(u).(fill.(u)) <- w;
      fill.(u) <- fill.(u) + 1;
      usable_adj.(w).(fill.(w)) <- u;
      fill.(w) <- fill.(w) + 1)
    usable;
  Array.iter (fun a -> Array.sort compare a) usable_adj;
  let t =
    {
      n;
      usable;
      usable_adj;
      spanner = Edge.Set.empty;
      sp_adj = Array.make n Iset.empty;
      uncovered = targets;
      hv = Array.make n Edge.Set.empty;
      incident = Array.make n Edge.Set.empty;
    }
  in
  Edge.Set.iter
    (fun e ->
      let u, w = Edge.endpoints e in
      t.incident.(u) <- Edge.Set.add e t.incident.(u);
      t.incident.(w) <- Edge.Set.add e t.incident.(w);
      List.iter
        (fun z -> t.hv.(z) <- Edge.Set.add e t.hv.(z))
        (common_usable_neighbors t u w))
    targets;
  t

let n t = t.n
let spanner t = t.spanner
let uncovered t = t.uncovered
let uncovered_count t = Edge.Set.cardinal t.uncovered
let all_covered t = Edge.Set.is_empty t.uncovered
let is_covered t e = not (Edge.Set.mem e t.uncovered)
let hv t v = t.hv.(v)
let usable_neighbors t v = t.usable_adj.(v)
let uncovered_incident t v = t.incident.(v)

let covered_now t e =
  Edge.Set.mem e t.spanner
  ||
  let u, w = Edge.endpoints e in
  let a, b =
    if Iset.cardinal t.sp_adj.(u) <= Iset.cardinal t.sp_adj.(w) then
      (t.sp_adj.(u), t.sp_adj.(w))
    else (t.sp_adj.(w), t.sp_adj.(u))
  in
  Iset.exists (fun z -> Iset.mem z b) a

let add t edges ~dirty =
  let touched = ref Iset.empty in
  Edge.Set.iter
    (fun e ->
      if not (Edge.Set.mem e t.usable) then
        invalid_arg "Cover2.add: edge not usable";
      if not (Edge.Set.mem e t.spanner) then begin
        let u, w = Edge.endpoints e in
        t.spanner <- Edge.Set.add e t.spanner;
        t.sp_adj.(u) <- Iset.add w t.sp_adj.(u);
        t.sp_adj.(w) <- Iset.add u t.sp_adj.(w);
        touched := Iset.add u (Iset.add w !touched)
      end)
    edges;
  (* Any target covered by a brand-new 2-path has an endpoint incident
     to a new spanner edge, so rechecking incident uncovered targets of
     touched vertices is exhaustive. *)
  let candidates =
    Iset.fold
      (fun v acc -> Edge.Set.union acc t.incident.(v))
      !touched Edge.Set.empty
  in
  let dirtied = ref Iset.empty in
  Edge.Set.iter
    (fun e ->
      if Edge.Set.mem e t.uncovered && covered_now t e then begin
        let u, w = Edge.endpoints e in
        t.uncovered <- Edge.Set.remove e t.uncovered;
        t.incident.(u) <- Edge.Set.remove e t.incident.(u);
        t.incident.(w) <- Edge.Set.remove e t.incident.(w);
        List.iter
          (fun z ->
            t.hv.(z) <- Edge.Set.remove e t.hv.(z);
            dirtied := Iset.add z !dirtied)
          (common_usable_neighbors t u w)
      end)
    candidates;
  Iset.iter dirty !dirtied

let uncoverable_targets t =
  Edge.Set.filter
    (fun e ->
      let u, w = Edge.endpoints e in
      (not (Edge.Set.mem e t.usable)) && common_usable_neighbors t u w = [])
    t.uncovered
