(** f-vertex-fault-tolerant 2-spanners.

    [H] is an f-fault-tolerant 2-spanner of [G] when for every vertex
    set [F] with [|F| <= f], [H - F] is a 2-spanner of [G - F] — the
    problem of Dinitz & Krauthgamer [21], which the paper's Section 4
    improves on in the non-fault-tolerant case. For stretch 2 the
    condition has an exact local characterization, which both the
    checker and the greedy below exploit: every edge [{u,w}] must be
    in [H] or have at least [f+1] distinct middle vertices [z] with
    [{u,z}, {z,w} ∈ H]. *)

open Grapho

val middle_count : n:int -> Edge.Set.t -> Edge.t -> int
(** Number of distinct 2-path middles the candidate set offers an
    edge. *)

val is_ft_2_spanner : Ugraph.t -> f:int -> Edge.Set.t -> bool
(** The exact characterization: each graph edge is in the set or has
    ≥ f+1 middles. (Equivalent to the ∀F definition; the tests also
    cross-check against explicit fault sets.) *)

type result = {
  spanner : Edge.Set.t;
  stars_added : int;
  singles_added : int;
}

val greedy : Ugraph.t -> f:int -> result
(** Sequential greedy in the Kortsarz–Peleg style, with multiplicity:
    the densest star counts, per star edge, the unsatisfied graph
    edges to which its center is a {e new} middle (star edges already
    in [H] ride free); when no star reaches density 1, the remaining
    unsatisfied edges are bought directly. Always returns a valid
    f-fault-tolerant 2-spanner. *)
