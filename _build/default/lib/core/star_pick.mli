(** Stars, densities, and the star-choice mechanism of Section 4.1.

    A [v]-star is a non-empty subset of edges between [v] and a subset
    of its (usable) neighbors; we represent it by the chosen neighbor
    set. Its density with respect to the uncovered set [H_v] is the
    number of [H_v]-edges 2-spanned, divided by the star's size (or
    weight, in the weighted variant).

    The weighted variant (Section 4.3.2) adds all weight-zero edges to
    the spanner up front, so every star implicitly contains the
    weight-zero star edges of its center: we model those neighbors as
    {e free}. An [H_v]-edge between a paying selection and a free
    neighbor is 2-spanned at no extra weight; an [H_v]-edge between two
    free neighbors is already covered before the first iteration and
    never appears.

    [extend] implements the greedy closure the paper prescribes: grow
    the star by single edges (paper: "if there is an edge e such that
    ρ(S ∪ {e}) ≥ ρ/4, add it") and by disjoint dense stars, as long as
    the threshold is respected. Restricting [allowed] to the previous
    star realizes the shrinking discipline that Claim 4.4 needs. *)

open Grapho

type t
(** The densest-star problem local to one center vertex. *)

val make :
  center:int ->
  nodes:int array ->
  ?free:int array ->
  ?weight:(int -> float) ->
  hv_edges:Edge.Set.t ->
  unit ->
  t
(** [nodes] are the paying eligible neighbors of [center] and [free]
    the weight-zero ones (disjoint from [nodes]); [hv_edges] the
    uncovered targets, of which only those joining two eligible
    (paying or free) neighbors matter. [weight v] is the cost of the
    star edge [{center, v}] for [v] in [nodes] (default 1) and must be
    positive. *)

val center : t -> int
val nodes : t -> int array

val density : t -> int list -> float
(** Density of the star selecting the given paying neighbors. The
    empty selection has density 0. *)

val spanned : t -> int list -> Edge.Set.t
(** [H_v]-edges 2-spanned by the star: both endpoints selected, or one
    selected and one free. *)

val weight_of : t -> int list -> float

val densest : t -> (int list * float) option
(** Maximum-density star over all paying neighbors, via parametric
    flow ({!Netflow.Densest}); [None] when every star has density 0. *)

val densest_within : t -> allowed:int list -> (int list * float) option
(** Same, restricted to a subset of the paying neighbors. *)

val extend : t -> start:int list -> allowed:int list -> threshold:float ->
  int list
(** Greedy closure of Section 4.1: repeatedly add a single neighbor
    keeping density ≥ [threshold] (largest resulting density first),
    otherwise a disjoint star of density ≥ [threshold] drawn from
    [allowed], until neither exists. [start ⊆ allowed]. Returns the
    selection sorted. *)

val section_4_1_choice :
  t -> stored:(int list * int) option -> level:int -> divisor:float ->
  int list
(** The complete star-choice mechanism of Section 4.1 at rounded-
    density level [level] (threshold [2^level / divisor]): keep the
    stored star if it is still dense enough; otherwise shrink inside
    it (densest sub-star, then closure within it); on a fresh level
    start from the densest star and close over everything. Returns []
    when no positive-density star exists. [stored] pairs the previous
    selection with the level it was chosen at. *)

val rounded_exponent : float -> int option
(** [rounded_exponent rho] is the integer [k] with [2^(k-1) <= rho <
    2^k], i.e. the paper's rounding of a positive density to the
    closest power of two strictly above it is [2^k]; [None] for
    [rho <= 0]. *)

val pow2 : int -> float
