(** Exact solvers for small instances.

    Used as ground truth in tests and experiments, and as the
    unbounded-local-computation oracle inside the (1+ε)-approximation
    of Section 6 (which the paper explicitly allows to solve
    NP-complete subproblems on polylogarithmic-size balls).

    All solvers are branch-and-bound searches; they are exponential in
    the worst case and intended for instances of a few dozen edges. *)

open Grapho

val min_k_spanner :
  ?weights:Weights.t ->
  ?targets:Edge.Set.t ->
  ?usable:Edge.Set.t ->
  n:int ->
  k:int ->
  unit ->
  Edge.Set.t option
(** Minimum-cost subset of [usable] covering every edge of [targets]
    within [k] hops. [None] when some target is uncoverable. Defaults:
    unit weights; when [usable] is omitted it defaults to [targets].
    Branches over the ≤[k]-hop covering paths of an uncovered target
    (those with the fewest options first). *)

val min_2_spanner : Ugraph.t -> Edge.Set.t
(** Minimum 2-spanner of a graph (always exists). *)

val min_2_spanner_size : Ugraph.t -> int

val min_weighted_2_spanner : Ugraph.t -> Weights.t -> Edge.Set.t

val min_directed_k_spanner :
  ?weights:Weights.Directed.t -> Dgraph.t -> k:int -> Edge.Directed.Set.t
(** Minimum(-cost) directed k-spanner (always exists: the whole edge
    set). Unit costs when [weights] is omitted. *)

val min_dominating_set : Ugraph.t -> int list
(** Minimum dominating set, by branching on the closed neighborhood of
    an undominated vertex. *)

val min_vertex_cover : Ugraph.t -> int list
(** Minimum vertex cover, by branching on the endpoints of an
    uncovered edge. *)
