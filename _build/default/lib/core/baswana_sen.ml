open Grapho

type result = {
  spanner : Edge.Set.t;
  k : int;
  rounds : int;
  final_clusters : int;
}

let expected_size_bound ~n ~k =
  let nf = float_of_int n in
  (float_of_int k *. (nf ** (1.0 +. (1.0 /. float_of_int k)))) +. nf

let run ?rng ~k g =
  if k < 1 then invalid_arg "Baswana_sen.run: k < 1";
  let rng = match rng with Some r -> r | None -> Rng.create 0xBA55 in
  let n = Ugraph.n g in
  let sample_p =
    if n <= 1 then 1.0 else float_of_int n ** (-1.0 /. float_of_int k)
  in
  let cluster = Array.init n (fun v -> Some v) in
  let live = ref (Ugraph.edge_set g) in
  let spanner = ref Edge.Set.empty in
  (* Live edges of v grouped by the cluster of the clustered other
     endpoint. *)
  let neighbors_by_cluster v =
    let tbl = Hashtbl.create 8 in
    Edge.Set.iter
      (fun e ->
        if Edge.mem_endpoint e v then begin
          let u = Edge.other e v in
          match cluster.(u) with
          | Some c ->
              Hashtbl.replace tbl c
                (e :: Option.value ~default:[] (Hashtbl.find_opt tbl c))
          | None -> ()
        end)
      !live;
    tbl
  in
  let drop_edges tbl clusters =
    List.iter
      (fun c ->
        match Hashtbl.find_opt tbl c with
        | Some edges ->
            List.iter (fun e -> live := Edge.Set.remove e !live) edges
        | None -> ())
      clusters
  in
  for _phase = 1 to k - 1 do
    let centers = Hashtbl.create 16 in
    Array.iter
      (function Some c -> Hashtbl.replace centers c () | None -> ())
      cluster;
    let sampled = Hashtbl.create 16 in
    Hashtbl.iter
      (fun c () -> if Rng.float rng 1.0 < sample_p then Hashtbl.replace sampled c ())
      centers;
    let next = Array.copy cluster in
    for v = 0 to n - 1 do
      match cluster.(v) with
      | None -> ()
      | Some c when Hashtbl.mem sampled c -> ()
      | Some _ ->
          let tbl = neighbors_by_cluster v in
          let neighbor_clusters =
            Hashtbl.fold (fun c _ acc -> c :: acc) tbl []
          in
          let sampled_neighbor =
            List.find_opt (fun c -> Hashtbl.mem sampled c) neighbor_clusters
          in
          (match sampled_neighbor with
          | Some c_star ->
              (* Join the sampled cluster through one edge. Edges into
                 c_star are covered by its tree and discarded; edges to
                 other clusters stay live for later levels or the final
                 join. *)
              (match Hashtbl.find_opt tbl c_star with
              | Some (e :: _) -> spanner := Edge.Set.add e !spanner
              | _ -> assert false);
              next.(v) <- Some c_star;
              drop_edges tbl [ c_star ]
          | None ->
              (* No sampled cluster around: keep one edge per
                 neighboring cluster and retire. *)
              List.iter
                (fun c ->
                  match Hashtbl.find_opt tbl c with
                  | Some (e :: _) -> spanner := Edge.Set.add e !spanner
                  | _ -> assert false)
                neighbor_clusters;
              drop_edges tbl neighbor_clusters;
              next.(v) <- None)
    done;
    Array.blit next 0 cluster 0 n
  done;
  (* Final vertex-cluster joining: one edge per adjacent cluster. *)
  for v = 0 to n - 1 do
    let tbl = neighbors_by_cluster v in
    Hashtbl.iter
      (fun c edges ->
        if Some c <> cluster.(v) then
          match edges with
          | e :: _ -> spanner := Edge.Set.add e !spanner
          | [] -> ())
      tbl;
    drop_edges tbl (Hashtbl.fold (fun c _ acc -> c :: acc) tbl [])
  done;
  (* Intra-cluster edges ride the cluster trees built by the joins;
     an edge that is still live and intra-cluster is covered there. *)
  let final_clusters =
    let tbl = Hashtbl.create 16 in
    Array.iter
      (function Some c -> Hashtbl.replace tbl c () | None -> ())
      cluster;
    Hashtbl.length tbl
  in
  { spanner = !spanner; k; rounds = k; final_clusters }
