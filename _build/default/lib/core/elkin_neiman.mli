(** The Elkin–Neiman (2k-1)-spanner [28] — the k-round randomized
    CONGEST construction the paper cites as the best undirected upper
    bound in the separation discussion (Sections 1.1 and 2.1).

    Every vertex draws an exponential radius r_u ~ Exp(ln n / k)
    (rejection-truncated below k, which makes the stretch guarantee
    unconditional); values m_u(v) = r_u - d(u,v) flood the graph,
    non-negative entries only; finally each vertex keeps one edge
    toward every source whose value is within 1 of its maximum. The
    expected size is O(n^{1+1/k}), and the flooding settles within k
    rounds because deeper values go negative.

    Runs as a genuine message-passing algorithm on {!Distsim.Engine};
    the value tables make the messages super-logarithmic in the worst
    case, so the metrics report honest sizes rather than assuming the
    CONGEST bound. *)

open Grapho

type result = {
  spanner : Edge.Set.t;
  k : int;
  rounds : int;
  metrics : Distsim.Engine.metrics;
}

val run : ?seed:int -> k:int -> Ugraph.t -> result
(** Stretch of the result is at most [2k-1], always (thanks to the
    truncation). *)
