(** Incremental coverage bookkeeping for 2-spanner algorithms.

    A tracker watches a set of {e target} edges that must be covered
    and a set of {e usable} edges from which the spanner may be built
    (targets = usable = all edges for the plain problem; targets =
    client edges and usable = server edges for the client-server
    variant). A target [{u,w}] is covered once the spanner contains it
    or contains a 2-path [u–z–w].

    The tracker maintains, per vertex [v], the paper's set [H_v]: the
    still-uncovered targets 2-spanned by the full usable [v]-star,
    i.e. targets both of whose endpoints are usable-neighbors of [v].
    Updates run in time proportional to the neighborhood of the
    touched vertices, so a whole run costs O(m·Δ) bookkeeping. *)

open Grapho

type t

val create : n:int -> targets:Edge.Set.t -> usable:Edge.Set.t -> t
val n : t -> int
val spanner : t -> Edge.Set.t
val uncovered : t -> Edge.Set.t
val uncovered_count : t -> int
val all_covered : t -> bool
val is_covered : t -> Edge.t -> bool

val hv : t -> int -> Edge.Set.t
(** Still-uncovered targets 2-spannable by the full usable star of the
    vertex. The returned set must not be relied upon across [add]s. *)

val usable_neighbors : t -> int -> int array
(** Sorted; static over the run. *)

val uncovered_incident : t -> int -> Edge.Set.t
(** Uncovered targets having the vertex as an endpoint. *)

val add : t -> Edge.Set.t -> dirty:(int -> unit) -> unit
(** [add t edges ~dirty] inserts usable edges into the spanner,
    recomputes coverage of the affected targets and calls [dirty z]
    for every vertex whose [H_z] lost an edge (each vertex at most
    once per call). Raises [Invalid_argument] if an edge is not
    usable. *)

val uncoverable_targets : t -> Edge.Set.t
(** Targets no combination of usable edges can ever cover (relevant
    for client-server instances; empty when targets ⊆ usable). *)
