(** Low-diameter network decomposition (Linial & Saks [52]).

    Partitions the vertices into clusters, each assigned a color, such
    that clusters of the same color are non-adjacent and each cluster
    has weak diameter O(log n); O(log n) colors are used w.h.p. This
    is the scaffolding of the (1+ε)-approximation of Section 6, which
    runs it on the power graph [G^r]. *)

open Grapho

type t = {
  color : int array;  (** phase in which the vertex was clustered *)
  leader : int array;  (** cluster identifier: the capturing vertex *)
  colors : int;  (** number of colors used *)
}

val run : ?rng:Rng.t -> ?p:float -> ?radius_cap:int -> Ugraph.t -> t
(** [p] is the geometric-radius parameter (default 0.5); [radius_cap]
    defaults to [ceil(log2 n) + 2]. Each phase, every live vertex [y]
    draws a radius [r_y]; a live vertex [u] is captured by the
    largest-id [y] with [d(u, y) <= r_y] (distances among live
    vertices), joins [y]'s cluster if the inequality is strict, and
    is deferred to the next phase otherwise. *)

val clusters_of_color : t -> int -> int list list
(** The clusters assigned a given color, as vertex lists. *)

val check : Ugraph.t -> t -> bool
(** Validity: every vertex clustered; same-color adjacent vertices are
    in the same cluster; each cluster's weak diameter (in the input
    graph) is at most [4 * (radius_cap + 1)]. *)

val weak_diameter : Ugraph.t -> int list -> int
(** Largest pairwise distance, measured in the ambient graph. *)
