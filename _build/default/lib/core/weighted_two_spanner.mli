(** Distributed approximation of weighted minimum 2-spanners
    (Theorem 4.12): O(log Δ) guaranteed approximation, O(log n ·
    log (ΔW)) rounds w.h.p., where W is the ratio of the extreme
    positive edge weights.

    Differences from the unweighted algorithm (Section 4.3.2): star
    densities divide covered counts by star {e weight}; weight-zero
    edges enter the spanner up front; rounded densities extend to
    negative powers of two; a vertex terminates once the maximal
    density in its 2-neighborhood is at most [1/wmax], for [wmax] the
    largest weight adjacent to its 2-neighborhood. *)

open Grapho

type result = {
  spanner : Edge.Set.t;
  cost : float;
  iterations : int;
  rounds : int;
  stars_added : int;
  candidate_count : int;
}

val run :
  ?rng:Rng.t ->
  ?seed:int ->
  ?max_iterations:int ->
  ?selection:Two_spanner_engine.selection ->
  Ugraph.t ->
  Weights.t ->
  result
(** The result is always a valid 2-spanner of the input graph. *)
