(** Validity checkers for all spanner variants of the paper.

    Following Section 1.5: an edge [{u,v}] is covered by an edge set
    [S] if [S] contains a path of length at most [k] between [u] and
    [v]; a k-spanner of [G] covers every edge of [G]; a k-spanner of a
    subgraph [G' ⊆ G] is a subset of [G]'s edges covering every edge
    of [G']. For directed graphs the path must be directed from [u]
    to [v]. *)

open Grapho

val covers_edge : n:int -> Edge.Set.t -> k:int -> Edge.t -> bool
(** [covers_edge ~n s ~k e]: does [s] contain a path of length ≤ [k]
    between the endpoints of [e]? *)

val uncovered_edges : Ugraph.t -> Edge.Set.t -> k:int -> Edge.t list
(** Edges of the graph not covered by the candidate spanner. *)

val is_spanner : Ugraph.t -> Edge.Set.t -> k:int -> bool
(** [is_spanner g s ~k]: [s] covers every edge of [g]. [s] must be a
    subset of [g]'s edges (checked). *)

val is_spanner_of_targets :
  n:int -> targets:Edge.Set.t -> Edge.Set.t -> k:int -> bool
(** Client-server / partial form: does the edge set cover every edge
    of [targets]? *)

val directed_covers_edge :
  n:int -> Edge.Directed.Set.t -> k:int -> Edge.Directed.t -> bool

val directed_uncovered_edges :
  Dgraph.t -> Edge.Directed.Set.t -> k:int -> Edge.Directed.t list

val is_directed_spanner : Dgraph.t -> Edge.Directed.Set.t -> k:int -> bool

val stretch : Ugraph.t -> Edge.Set.t -> int
(** Maximum over edges [{u,v}] of [g] of the distance between [u] and
    [v] in the spanner ([max_int] if some edge is not spanned at all).
    A set is a k-spanner iff its stretch is at most [k]. *)

val directed_stretch : Dgraph.t -> Edge.Directed.Set.t -> int
