lib/core/cover2.ml: Array Edge Grapho Int List Set
