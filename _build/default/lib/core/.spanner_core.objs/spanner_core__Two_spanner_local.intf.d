lib/core/two_spanner_local.mli: Distsim Edge Grapho Ugraph Weights
