lib/core/directed_two_spanner.mli: Dgraph Edge Grapho Rng
