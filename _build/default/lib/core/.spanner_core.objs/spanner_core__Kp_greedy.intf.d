lib/core/kp_greedy.mli: Edge Grapho Ugraph Weights
