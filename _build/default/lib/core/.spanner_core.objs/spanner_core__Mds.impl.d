lib/core/mds.ml: Array Distsim Grapho Int List Rng Set Star_pick Ugraph
