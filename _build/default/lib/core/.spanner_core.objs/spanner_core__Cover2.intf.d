lib/core/cover2.mli: Edge Grapho
