lib/core/mds.mli: Distsim Grapho Rng Ugraph
