lib/core/randomness.mli:
