lib/core/spanner_check.ml: Array Dgraph Edge Grapho List Queue Traversal Ugraph
