lib/core/exact.ml: Array Dgraph Edge Float Grapho Hashtbl Int List Option Set Ugraph Weights
