lib/core/directed_two_spanner.ml: Array Dgraph Edge Grapho Hashtbl Int List Option Rng Set Star_pick
