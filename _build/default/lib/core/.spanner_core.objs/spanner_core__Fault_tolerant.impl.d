lib/core/fault_tolerant.ml: Array Edge Grapho Int List Set Star_pick Ugraph
