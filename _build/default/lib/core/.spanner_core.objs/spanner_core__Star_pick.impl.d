lib/core/star_pick.ml: Array Edge Float Grapho Hashtbl List Netflow
