lib/core/decomposition.mli: Grapho Rng Ugraph
