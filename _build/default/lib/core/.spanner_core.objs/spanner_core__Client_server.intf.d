lib/core/client_server.mli: Edge Grapho Rng Two_spanner_engine Ugraph
