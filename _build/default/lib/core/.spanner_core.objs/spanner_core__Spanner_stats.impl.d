lib/core/spanner_stats.ml: Array Dgraph Edge Format Grapho Hashtbl List Option Queue Traversal Ugraph
