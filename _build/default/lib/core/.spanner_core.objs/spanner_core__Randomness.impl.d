lib/core/randomness.ml: Grapho Rng
