lib/core/elkin_neiman.ml: Array Distsim Edge Float Grapho Hashtbl List Rng Ugraph
