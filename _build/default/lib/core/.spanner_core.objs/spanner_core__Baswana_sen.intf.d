lib/core/baswana_sen.mli: Edge Grapho Rng Ugraph
