lib/core/two_spanner_engine.ml: Array Cover2 Edge Float Grapho Hashtbl List Option Printf Randomness Rng Star_pick Ugraph
