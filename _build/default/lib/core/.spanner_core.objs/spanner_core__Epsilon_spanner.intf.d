lib/core/epsilon_spanner.mli: Edge Grapho Rng Ugraph Weights
