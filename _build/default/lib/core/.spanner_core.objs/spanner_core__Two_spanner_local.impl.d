lib/core/two_spanner_local.ml: Array Distsim Edge Float Grapho Hashtbl Int Int64 List Option Randomness Set Star_pick Ugraph Weights
