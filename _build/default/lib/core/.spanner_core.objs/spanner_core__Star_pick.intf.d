lib/core/star_pick.mli: Edge Grapho
