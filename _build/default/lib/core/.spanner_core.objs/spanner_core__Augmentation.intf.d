lib/core/augmentation.mli: Edge Grapho Rng Ugraph
