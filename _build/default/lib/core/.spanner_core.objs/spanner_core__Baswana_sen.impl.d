lib/core/baswana_sen.ml: Array Edge Grapho Hashtbl List Option Rng Ugraph
