lib/core/two_spanner.mli: Edge Grapho Rng Two_spanner_engine Ugraph
