lib/core/elkin_neiman.mli: Distsim Edge Grapho Ugraph
