lib/core/spanner_stats.mli: Dgraph Edge Format Grapho Ugraph
