lib/core/weighted_two_spanner.ml: Array Edge Grapho Two_spanner_engine Ugraph Weights
