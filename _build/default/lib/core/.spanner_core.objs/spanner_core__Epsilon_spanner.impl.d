lib/core/epsilon_spanner.ml: Array Decomposition Edge Exact Float Grapho List Power Queue Rng Traversal Ugraph Weights
