lib/core/augmentation.ml: Edge Grapho Ugraph Weighted_two_spanner Weights
