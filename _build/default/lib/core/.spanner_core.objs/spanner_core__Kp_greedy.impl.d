lib/core/kp_greedy.ml: Array Cover2 Edge Float Grapho List Option Star_pick Ugraph Weights
