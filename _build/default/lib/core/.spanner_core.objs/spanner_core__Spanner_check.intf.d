lib/core/spanner_check.mli: Dgraph Edge Grapho Ugraph
