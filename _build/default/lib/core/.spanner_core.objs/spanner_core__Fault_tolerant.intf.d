lib/core/fault_tolerant.mli: Edge Grapho Ugraph
