lib/core/weighted_two_spanner.mli: Edge Grapho Rng Two_spanner_engine Ugraph Weights
