lib/core/decomposition.ml: Array Edge Grapho Hashtbl List Option Queue Rng Traversal Ugraph
