lib/core/exact.mli: Dgraph Edge Grapho Ugraph Weights
