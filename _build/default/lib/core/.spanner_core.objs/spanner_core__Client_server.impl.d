lib/core/client_server.ml: Edge Float Grapho Hashtbl Int List Option Printf Set Two_spanner_engine Ugraph
