lib/core/two_spanner.ml: Edge Float Grapho Two_spanner_engine Ugraph
