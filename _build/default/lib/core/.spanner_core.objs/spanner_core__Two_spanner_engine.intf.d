lib/core/two_spanner_engine.mli: Edge Grapho Rng Ugraph
