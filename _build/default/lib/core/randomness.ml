open Grapho

let derived ~seed ~vertex ~iteration =
  (* Feed the coordinates through SplitMix via distinct odd multipliers
     so nearby (vertex, iteration) pairs decorrelate. *)
  Rng.create
    (seed
    lxor (vertex * 0x9E3779B1)
    lxor (iteration * 0x85EBCA77)
    lxor 0x165667B1)

let vote_value ~seed ~vertex ~iteration ~bound =
  1 + Rng.int (derived ~seed ~vertex ~iteration) bound

let coin ~seed ~vertex ~iteration ~p =
  Rng.float (derived ~seed ~vertex ~iteration) 1.0 < p

let vote_bound ~n =
  let f = float_of_int (max n 2) ** 4.0 in
  if f > 1e15 then 1_000_000_000_000_000 else int_of_float f + 16
