(** Distributed approximation of directed minimum 2-spanners
    (Theorem 4.9): O(log (m/n)) guaranteed approximation, O(log n ·
    log Δ) rounds w.h.p.

    A [v]-star here is a set of directed edges incident to [v] (both
    orientations allowed); it 2-spans a directed edge [(u,w)] when it
    contains [(u,v)] and [(v,w)]. Following Section 4.3.1, the densest
    directed star is approximated within factor 2 through its
    undirected shadow (Claims 4.10/4.11): compute the densest
    undirected star over the 2-spannable uncovered edges ignoring
    orientation, then re-orient by taking every existing orientation
    of each chosen star edge. Accordingly the star threshold relaxes
    from a quarter to an eighth of the rounded density, and the
    rounded density of a vertex is kept monotone by capping it with
    the previous iteration's value (the paper's footnote 7).

    Communication runs over the underlying undirected topology, per
    the model of Section 1.5. *)

open Grapho

type result = {
  spanner : Edge.Directed.Set.t;
  iterations : int;
  rounds : int;
  stars_added : int;
  candidate_count : int;
}

val run : ?rng:Rng.t -> ?max_iterations:int -> Dgraph.t -> result
(** The result is always a valid directed 2-spanner. *)
