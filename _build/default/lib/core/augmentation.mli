(** The 2-spanner augmentation problem (remark after Theorem 3.5):
    given an initial edge set, add the minimum number of edges so that
    the union becomes a 2-spanner.

    Realized through the weighted algorithm with 0/1 weights — initial
    edges are free, new edges cost 1 — so the O(log Δ) guarantee of
    Theorem 4.12 carries over, and by the same remark the problem
    inherits the MVC-hardness bounds of Theorems 3.3/3.4. *)

open Grapho

type result = {
  added : Edge.Set.t;  (** the newly bought edges *)
  spanner : Edge.Set.t;  (** initial ∪ added: a valid 2-spanner *)
  iterations : int;
  rounds : int;
}

val run :
  ?rng:Rng.t -> ?seed:int -> ?max_iterations:int -> Ugraph.t ->
  initial:Edge.Set.t -> result
(** [initial] must consist of edges of the graph. *)
