open Grapho

(* Coverage tests run one bounded BFS per queried edge over adjacency
   built once from the candidate set. *)

let bounded_reach adj n src dst bound =
  if src = dst then true
  else begin
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    let found = ref false in
    (try
       while not (Queue.is_empty q) do
         let x = Queue.pop q in
         if dist.(x) < bound then
           List.iter
             (fun y ->
               if dist.(y) = -1 then begin
                 dist.(y) <- dist.(x) + 1;
                 if y = dst then begin
                   found := true;
                   raise Exit
                 end;
                 Queue.add y q
               end)
             adj.(x)
       done
     with Exit -> ());
    !found
  end

let covers_edge ~n s ~k e =
  let adj = Traversal.adjacency_of_set ~n s in
  let u, v = Edge.endpoints e in
  bounded_reach adj n u v k

let uncovered_of_targets ~n ~targets s ~k =
  let adj = Traversal.adjacency_of_set ~n s in
  Edge.Set.fold
    (fun e acc ->
      let u, v = Edge.endpoints e in
      if bounded_reach adj n u v k then acc else e :: acc)
    targets []

let uncovered_edges g s ~k =
  uncovered_of_targets ~n:(Ugraph.n g) ~targets:(Ugraph.edge_set g) s ~k

let is_spanner g s ~k =
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      if not (Ugraph.mem_edge g u v) then
        invalid_arg "Spanner_check.is_spanner: spanner edge not in graph")
    s;
  uncovered_edges g s ~k = []

let is_spanner_of_targets ~n ~targets s ~k =
  uncovered_of_targets ~n ~targets s ~k = []

let directed_covers_edge ~n s ~k e =
  let adj = Traversal.directed_adjacency_of_set ~n s in
  bounded_reach adj n (Edge.Directed.src e) (Edge.Directed.dst e) k

let directed_uncovered_edges g s ~k =
  let n = Dgraph.n g in
  let adj = Traversal.directed_adjacency_of_set ~n s in
  Dgraph.fold_edges
    (fun (u, v) acc -> if bounded_reach adj n u v k then acc else (u, v) :: acc)
    g []

let is_directed_spanner g s ~k =
  Edge.Directed.Set.iter
    (fun (u, v) ->
      if not (Dgraph.mem_edge g u v) then
        invalid_arg
          "Spanner_check.is_directed_spanner: spanner edge not in graph")
    s;
  directed_uncovered_edges g s ~k = []

let stretch_generic ~n ~adj ~fold =
  fold (fun (u, v) acc ->
      if acc = max_int then max_int
      else begin
        (* Unbounded BFS in the candidate set from u, read distance of v. *)
        let dist = Array.make n (-1) in
        let q = Queue.create () in
        dist.(u) <- 0;
        Queue.add u q;
        while not (Queue.is_empty q) do
          let x = Queue.pop q in
          List.iter
            (fun y ->
              if dist.(y) = -1 then begin
                dist.(y) <- dist.(x) + 1;
                Queue.add y q
              end)
            adj.(x)
        done;
        if dist.(v) = -1 then max_int else max acc dist.(v)
      end)
    0

let stretch g s =
  let n = Ugraph.n g in
  let adj = Traversal.adjacency_of_set ~n s in
  stretch_generic ~n ~adj ~fold:(fun f init ->
      Ugraph.fold_edges (fun e acc -> f (Edge.endpoints e) acc) g init)

let directed_stretch g s =
  let n = Dgraph.n g in
  let adj = Traversal.directed_adjacency_of_set ~n s in
  stretch_generic ~n ~adj ~fold:(fun f init ->
      Dgraph.fold_edges (fun e acc -> f e acc) g init)
