open Grapho

type result = {
  added : Edge.Set.t;
  spanner : Edge.Set.t;
  iterations : int;
  rounds : int;
}

let run ?rng ?seed ?max_iterations g ~initial =
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      if not (Ugraph.mem_edge g u v) then
        invalid_arg "Augmentation.run: initial edge not in graph")
    initial;
  let weights =
    Weights.of_map ~default:1.0
      (Edge.Set.fold (fun e m -> Edge.Map.add e 0.0 m) initial Edge.Map.empty)
  in
  let r = Weighted_two_spanner.run ?rng ?seed ?max_iterations g weights in
  {
    added = Edge.Set.diff r.spanner initial;
    spanner = r.spanner;
    iterations = r.iterations;
    rounds = r.rounds;
  }
