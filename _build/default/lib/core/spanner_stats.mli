(** Descriptive statistics of a candidate spanner, for reports and
    benchmarks. *)

open Grapho

type t = {
  edges : int;
  graph_edges : int;
  compression : float;  (** edges / graph_edges *)
  max_stretch : int;  (** over graph edges; [max_int] if not a spanner *)
  mean_stretch : float;
  stretch_histogram : (int * int) list;
      (** (stretch value, #edges) sorted by stretch; a missing path
          counts under [max_int] *)
}

val compute : Ugraph.t -> Edge.Set.t -> t
val pp : Format.formatter -> t -> unit

val directed_compute : Dgraph.t -> Edge.Directed.Set.t -> t
