open Grapho

type result = {
  spanner : Edge.Set.t;
  cost : float;
  r : int;
  colors : int;
  balls_processed : int;
  rounds : int;
}

let log2_ceil x =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  go 0 (max 1 x)

let run ?rng ?weights ~epsilon ~k g =
  if epsilon <= 0.0 then invalid_arg "Epsilon_spanner.run: epsilon <= 0";
  if k < 1 then invalid_arg "Epsilon_spanner.run: k < 1";
  let rng = match rng with Some r -> r | None -> Rng.create 0xE9511 in
  let n = Ugraph.n g in
  let m = Ugraph.m g in
  let w = match weights with Some w -> w | None -> Weights.uniform 1.0 in
  (* Failing the stopping rule forces g(v, r + 2k) to grow by (1+ε)
     every 2k radius steps, and g is at most the total cost over the
     smallest positive cost, bounding r_i (the paper's log(nW)/ε). *)
  let cost_span =
    let mn = Weights.min_positive w g in
    if mn = 0.0 then float_of_int (m + 2)
    else (Weights.graph_cost w g /. mn) +. 2.0
  in
  let max_ri =
    (2 * k
    * (int_of_float
         (Float.ceil (Float.log cost_span /. Float.log (1.0 +. epsilon)))
      + 2))
    + 2
  in
  let r = max_ri + (4 * k) + 1 in
  let power = Power.power g r in
  let decomp = Decomposition.run ~rng power in
  (* Process vertices color by color, by id inside a color: exactly the
     (q_v, ID_v) label order of the proof of Theorem 1.2. *)
  let order =
    List.sort
      (fun a b -> compare (decomp.color.(a), a) (decomp.color.(b), b))
      (List.init n (fun i -> i))
  in
  let spanner = ref Edge.Set.empty in
  let uncovered = ref (Ugraph.edge_set g) in
  let refresh_uncovered () =
    let adj = Traversal.adjacency_of_set ~n !spanner in
    uncovered :=
      Edge.Set.filter
        (fun e ->
          let u, v = Edge.endpoints e in
          not
            (let dist = Array.make n (-1) in
             let q = Queue.create () in
             dist.(u) <- 0;
             Queue.add u q;
             let found = ref false in
             (try
                while not (Queue.is_empty q) do
                  let x = Queue.pop q in
                  if dist.(x) < k then
                    List.iter
                      (fun y ->
                        if dist.(y) = -1 then begin
                          dist.(y) <- dist.(x) + 1;
                          if y = v then begin
                            found := true;
                            raise Exit
                          end;
                          Queue.add y q
                        end)
                      adj.(x)
                done
              with Exit -> ());
             !found))
        !uncovered
  in
  let balls = ref 0 in
  List.iter
    (fun v ->
      if not (Edge.Set.is_empty !uncovered) then begin
        let dist = Traversal.bfs_distances g v in
        let ball_edges set d =
          Edge.Set.filter
            (fun e ->
              let a, b = Edge.endpoints e in
              dist.(a) <= d && dist.(b) <= d)
            set
        in
        let g_of d =
          let targets = ball_edges !uncovered d in
          if Edge.Set.is_empty targets then 0.0
          else
            let usable = ball_edges (Ugraph.edge_set g) (d + k) in
            match Exact.min_k_spanner ~weights:w ~targets ~usable ~n ~k () with
            | Some s -> Weights.cost w s
            | None -> assert false
        in
        let rec find_ri ri =
          if ri >= max_ri then ri
          else if g_of (ri + (2 * k)) <= (1.0 +. epsilon) *. g_of ri then ri
          else find_ri (ri + 1)
        in
        let ri = find_ri 0 in
        let targets = ball_edges !uncovered (ri + (2 * k)) in
        if not (Edge.Set.is_empty targets) then begin
          incr balls;
          let usable = ball_edges (Ugraph.edge_set g) (ri + (3 * k)) in
          match Exact.min_k_spanner ~weights:w ~targets ~usable ~n ~k () with
          | Some s ->
              spanner := Edge.Set.union s !spanner;
              refresh_uncovered ()
          | None -> assert false
        end
      end)
    order;
  {
    spanner = !spanner;
    cost = Weights.cost w !spanner;
    r;
    colors = decomp.colors;
    balls_processed = !balls;
    rounds = decomp.colors * 4 * (log2_ceil n + 3) * r;
  }
