(** Shared per-vertex randomness for the voting scheme.

    Both implementations of the Section 4 algorithm (the round-
    structured engine and the message-passing LOCAL state machine)
    must draw the same value r_v for the same (seed, vertex,
    iteration) so that their executions coincide — which is exactly
    what the differential tests assert. *)

val vote_value : seed:int -> vertex:int -> iteration:int -> bound:int -> int
(** Uniform in [{1..bound}], deterministic in its inputs. *)

val coin : seed:int -> vertex:int -> iteration:int -> p:float -> bool

val vote_bound : n:int -> int
(** The paper's n^4 (capped to stay within native ints). *)
