(** Randomized (2k-1)-spanner of Baswana & Sen [7], unweighted.

    Builds a spanner with O(k · n^{1+1/k}) edges in expectation and
    stretch at most 2k-1 always, in k phases — the k-round CONGEST
    construction [28] that gives the O(n^{1/k})-approximation for
    undirected minimum (2k-1)-spanners which the paper contrasts with
    its directed-case lower bounds (Sections 1.1 and 2.1). *)

open Grapho

type result = {
  spanner : Edge.Set.t;
  k : int;
  rounds : int;  (** k: one communication phase per clustering level *)
  final_clusters : int;
}

val run : ?rng:Rng.t -> k:int -> Ugraph.t -> result
(** Stretch of the result is at most [2k-1] always. *)

val expected_size_bound : n:int -> k:int -> float
(** [k * n^(1 + 1/k) + n], a convenient display bound. *)
