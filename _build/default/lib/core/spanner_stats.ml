open Grapho

type t = {
  edges : int;
  graph_edges : int;
  compression : float;
  max_stretch : int;
  mean_stretch : float;
  stretch_histogram : (int * int) list;
}

let from_stretches ~edges ~graph_edges stretches =
  let histogram = Hashtbl.create 8 in
  List.iter
    (fun s ->
      Hashtbl.replace histogram s
        (1 + Option.value ~default:0 (Hashtbl.find_opt histogram s)))
    stretches;
  let finite = List.filter (fun s -> s < max_int) stretches in
  let mean =
    if finite = [] then 0.0
    else
      float_of_int (List.fold_left ( + ) 0 finite)
      /. float_of_int (List.length finite)
  in
  {
    edges;
    graph_edges;
    compression =
      float_of_int edges /. float_of_int (max 1 graph_edges);
    max_stretch = List.fold_left max 0 stretches;
    mean_stretch = mean;
    stretch_histogram =
      List.sort compare
        (Hashtbl.fold (fun s c acc -> (s, c) :: acc) histogram []);
  }

let compute g s =
  let n = Ugraph.n g in
  let adj = Traversal.adjacency_of_set ~n s in
  let stretches =
    Ugraph.fold_edges
      (fun e acc ->
        let u, v = Edge.endpoints e in
        let dist = Array.make n (-1) in
        let q = Queue.create () in
        dist.(u) <- 0;
        Queue.add u q;
        while not (Queue.is_empty q) do
          let x = Queue.pop q in
          List.iter
            (fun y ->
              if dist.(y) = -1 then begin
                dist.(y) <- dist.(x) + 1;
                Queue.add y q
              end)
            adj.(x)
        done;
        (if dist.(v) = -1 then max_int else dist.(v)) :: acc)
      g []
  in
  from_stretches ~edges:(Edge.Set.cardinal s) ~graph_edges:(Ugraph.m g)
    stretches

let directed_compute g s =
  let n = Dgraph.n g in
  let adj = Traversal.directed_adjacency_of_set ~n s in
  let stretches =
    Dgraph.fold_edges
      (fun (u, v) acc ->
        let dist = Array.make n (-1) in
        let q = Queue.create () in
        dist.(u) <- 0;
        Queue.add u q;
        while not (Queue.is_empty q) do
          let x = Queue.pop q in
          List.iter
            (fun y ->
              if dist.(y) = -1 then begin
                dist.(y) <- dist.(x) + 1;
                Queue.add y q
              end)
            adj.(x)
        done;
        (if dist.(v) = -1 then max_int else dist.(v)) :: acc)
      g []
  in
  from_stretches
    ~edges:(Edge.Directed.Set.cardinal s)
    ~graph_edges:(Dgraph.m g) stretches

let pp ppf t =
  Format.fprintf ppf
    "@[<v>edges: %d / %d (%.1f%%)@,max stretch: %s@,mean stretch: %.3f@,histogram:"
    t.edges t.graph_edges (100.0 *. t.compression)
    (if t.max_stretch = max_int then "unreachable pair!"
     else string_of_int t.max_stretch)
    t.mean_stretch;
  List.iter
    (fun (s, c) ->
      if s = max_int then Format.fprintf ppf "@,  unreachable: %d" c
      else Format.fprintf ppf "@,  %d hops: %d" s c)
    t.stretch_histogram;
  Format.fprintf ppf "@]"
