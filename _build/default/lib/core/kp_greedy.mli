(** The sequential greedy 2-spanner of Kortsarz and Peleg [46], with
    the weighted [45] and client-server [29] extensions.

    Repeatedly commits the globally densest star — density measured
    against the still-uncovered targets, computed in polynomial time by
    parametric flow — or a single target edge when that covers more per
    unit cost, until everything coverable is covered. Approximation
    ratio O(log (m/n)) (unweighted), the benchmark our distributed
    algorithm is measured against. *)

open Grapho

type result = {
  spanner : Edge.Set.t;
  cost : float;
  stars_added : int;
  singles_added : int;
  uncoverable : Edge.Set.t;
}

val run :
  ?weights:Weights.t ->
  ?targets:Edge.Set.t ->
  ?usable:Edge.Set.t ->
  Ugraph.t ->
  result
(** [targets] and [usable] default to all edges of the graph;
    [weights] to the all-ones weighting. *)
