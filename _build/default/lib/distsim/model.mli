(** Synchronous distributed computing models.

    Both the LOCAL model [Linial 92] and the CONGEST model [Peleg 00]
    proceed in synchronous rounds over the communication graph; they
    differ only in the permitted message size. The simulator accounts
    for the size in bits of every message and, under CONGEST, flags or
    rejects oversized ones. *)

type t =
  | Local  (** unbounded messages *)
  | Congest of { bits_per_message : int }
      (** at most [bits_per_message] bits per edge per direction per
          round *)

val local : t

val congest : n:int -> ?c:int -> unit -> t
(** [congest ~n ()] allows [c * ceil(log2 (n+1))] bits per message —
    the customary O(log n); [c] defaults to 4 (enough for a constant
    number of identifiers or counters per message). *)

val bandwidth : t -> int option
val pp : Format.formatter -> t -> unit
