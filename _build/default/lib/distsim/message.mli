(** Bit-size accounting helpers for message payloads.

    Algorithms declare how many bits their messages occupy on the wire;
    these helpers encode the usual conventions (an identifier or counter
    in a graph of [n] vertices costs [ceil(log2 (n+1))] bits). *)

val bits_for_id : n:int -> int
(** Bits to name one vertex among [n]. *)

val bits_int : int -> int
(** Bits of a concrete non-negative integer value (at least 1). *)

val bits_float : int
(** We charge 64 bits for a float. *)

val bits_list : ('a -> int) -> 'a list -> int
val bits_pair : ('a -> int) -> ('b -> int) -> 'a * 'b -> int
val bits_option : ('a -> int) -> 'a option -> int
val bits_bool : int
