type 'msg send = { dst : int; payload : 'msg }

type metrics = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  congest_violations : int;
}

type ('state, 'msg) spec = {
  init :
    n:int -> vertex:int -> neighbors:int array ->
    'state * 'msg send list;
  step :
    round:int -> vertex:int -> 'state -> (int * 'msg) list ->
    'state * 'msg send list * [ `Continue | `Done ];
  measure : 'msg -> int;
}

exception Congest_violation of { src : int; dst : int; bits : int }

let run ?max_rounds ?(strict = false) ?observer ~model ~graph spec =
  let n = Grapho.Ugraph.n graph in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 50 * (n + 5)
  in
  let done_flags = Array.make n false in
  let inboxes = Array.make n [] in
  let messages = ref 0 in
  let total_bits = ref 0 in
  let max_message_bits = ref 0 in
  let congest_violations = ref 0 in
  let bandwidth = Model.bandwidth model in
  let in_flight = ref 0 in
  let account src outbox =
    List.iter
      (fun { dst; payload } ->
        if not (Grapho.Ugraph.mem_edge graph src dst) then
          invalid_arg
            (Printf.sprintf "Engine: vertex %d sent to non-neighbor %d" src
               dst);
        let bits = spec.measure payload in
        (match observer with
        | Some f -> f ~src ~dst ~bits
        | None -> ());
        incr messages;
        incr in_flight;
        total_bits := !total_bits + bits;
        if bits > !max_message_bits then max_message_bits := bits;
        (match bandwidth with
        | Some limit when bits > limit ->
            if strict then raise (Congest_violation { src; dst; bits })
            else incr congest_violations
        | _ -> ());
        inboxes.(dst) <- (src, payload) :: inboxes.(dst))
      outbox
  in
  (* Round 0: init everyone. *)
  let initial =
    Array.init n (fun v ->
        spec.init ~n ~vertex:v ~neighbors:(Grapho.Ugraph.neighbors graph v))
  in
  let states = Array.map fst initial in
  Array.iteri (fun v (_, outbox) -> account v outbox) initial;
  let round = ref 0 in
  let all_done () = Array.for_all (fun f -> f) done_flags in
  let finished = ref (n = 0) in
  while not !finished do
    incr round;
    if !round > max_rounds then
      failwith
        (Printf.sprintf "Engine.run: no termination within %d rounds"
           max_rounds);
    (* Snapshot and clear inboxes so this round's sends arrive next
       round. *)
    let current = Array.copy inboxes in
    Array.fill inboxes 0 n [];
    in_flight := 0;
    for v = 0 to n - 1 do
      let inbox =
        List.sort (fun (a, _) (b, _) -> compare a b) current.(v)
      in
      let state, outbox, status = spec.step ~round:!round ~vertex:v
          states.(v) inbox
      in
      states.(v) <- state;
      done_flags.(v) <- (status = `Done);
      account v outbox
    done;
    if all_done () && !in_flight = 0 then finished := true
  done;
  ( states,
    {
      rounds = !round;
      messages = !messages;
      total_bits = !total_bits;
      max_message_bits = !max_message_bits;
      congest_violations = !congest_violations;
    } )
