type 's outer_state = {
  inner : 's;
  queues : (int, int list) Hashtbl.t;  (* dst -> chunks still to send *)
  buffers : (int, int list) Hashtbl.t;  (* src -> chunks received (rev) *)
  mutable inner_done : bool;
}

let run ?max_rounds ?strict ~model ~graph ~chunks_per_round ~encode ~decode
    spec =
  if chunks_per_round < 2 then
    invalid_arg "Chunked.run: chunks_per_round must be at least 2";
  let c = chunks_per_round in
  (* Frame a message as [length; chunk1; ...; chunkL]. *)
  let frame msg =
    let chunks = encode msg in
    let len = List.length chunks in
    if len > c - 1 then
      invalid_arg
        (Printf.sprintf
           "Chunked.run: a message encoded to %d chunks, budget is %d" len
           (c - 1));
    len :: chunks
  in
  let enqueue st outbox =
    List.iter
      (fun { Engine.dst; payload } ->
        (* One inner message per edge per virtual round: anything more
           cannot fit the chunk schedule (and violates the model). *)
        if Hashtbl.mem st.queues dst then
          invalid_arg
            "Chunked.run: two messages to one destination in a round";
        Hashtbl.replace st.queues dst (frame payload))
      outbox
  in
  (* One chunk per destination per real round. (Mutating a Hashtbl
     under fold is unspecified, so snapshot the keys first.) *)
  let drain st =
    let keys = Hashtbl.fold (fun dst _ acc -> dst :: acc) st.queues [] in
    List.filter_map
      (fun dst ->
        match Hashtbl.find_opt st.queues dst with
        | None | Some [] ->
            Hashtbl.remove st.queues dst;
            None
        | Some (chunk :: rest) ->
            if rest = [] then Hashtbl.remove st.queues dst
            else Hashtbl.replace st.queues dst rest;
            Some { Engine.dst; payload = chunk })
      keys
  in
  let queues_empty st = Hashtbl.length st.queues = 0 in
  let absorb st inbox =
    List.iter
      (fun (src, chunk) ->
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt st.buffers src)
        in
        Hashtbl.replace st.buffers src (chunk :: existing))
      inbox
  in
  let deliverables st =
    let messages =
      Hashtbl.fold
        (fun src rev_chunks acc ->
          let rec parse stream acc =
            match stream with
            | [] -> acc
            | len :: rest ->
                let rec take k stream taken =
                  if k = 0 then (List.rev taken, stream)
                  else
                    match stream with
                    | x :: xs -> take (k - 1) xs (x :: taken)
                    | [] ->
                        invalid_arg
                          (Printf.sprintf
                             "Chunked.run: truncated chunk stream (src=%d \
                              need=%d have=%d)"
                             src k (List.length rev_chunks))
                in
                let body, rest = take len rest [] in
                let msg, leftover = decode body in
                if leftover <> [] then
                  invalid_arg "Chunked.run: decoder left residue";
                parse rest ((src, msg) :: acc)
          in
          parse (List.rev rev_chunks) acc)
        st.buffers []
    in
    Hashtbl.reset st.buffers;
    (* Engine semantics: inboxes sorted by source. *)
    List.sort (fun (a, _) (b, _) -> compare a b) messages
  in
  let outer =
    {
      Engine.init =
        (fun ~n ~vertex ~neighbors ->
          let inner, outbox = spec.Engine.init ~n ~vertex ~neighbors in
          let st =
            {
              inner;
              queues = Hashtbl.create 8;
              buffers = Hashtbl.create 8;
              inner_done = false;
            }
          in
          enqueue st outbox;
          (st, drain st));
      step =
        (fun ~round ~vertex st inbox ->
          absorb st inbox;
          if round mod c = 0 then begin
            (* Virtual round boundary: deliver and run the inner step. *)
            let virtual_round = round / c in
            let delivered = deliverables st in
            let inner, outbox, status =
              spec.Engine.step ~round:virtual_round ~vertex st.inner delivered
            in
            let st = { st with inner } in
            st.inner_done <- (status = `Done);
            enqueue st outbox;
            ( st,
              drain st,
              if st.inner_done && queues_empty st then `Done else `Continue )
          end
          else
            ( st,
              drain st,
              if st.inner_done && queues_empty st then `Done else `Continue ))
        ;
      measure = (fun chunk -> 6 + Message.bits_int (abs chunk + 1));
    }
  in
  let states, metrics = Engine.run ?max_rounds ?strict ~model ~graph outer in
  (Array.map (fun st -> st.inner) states, metrics)
