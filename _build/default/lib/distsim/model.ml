type t = Local | Congest of { bits_per_message : int }

let local = Local

let bits_needed n =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  max 1 (go 0 n)

let congest ~n ?(c = 4) () = Congest { bits_per_message = c * bits_needed n }

let bandwidth = function
  | Local -> None
  | Congest { bits_per_message } -> Some bits_per_message

let pp ppf = function
  | Local -> Format.pp_print_string ppf "LOCAL"
  | Congest { bits_per_message } ->
      Format.fprintf ppf "CONGEST(%d bits)" bits_per_message
