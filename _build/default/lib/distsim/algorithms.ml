type 'a state = { mutable value : 'a }

(* Shared shape: each vertex holds a value, rebroadcasts it whenever it
   improves, and is done while no improvement arrives. Messages carry
   values of the same type as the state. *)
let improving ~initial ~announces_first ~improve ~measure ?model graph =
  let model =
    match model with
    | Some m -> m
    | None -> Model.congest ~n:(max 2 (Grapho.Ugraph.n graph)) ()
  in
  let broadcast neighbors payload =
    Array.to_list
      (Array.map (fun u -> { Engine.dst = u; payload }) neighbors)
  in
  let spec =
    {
      Engine.init =
        (fun ~n:_ ~vertex ~neighbors ->
          let v = initial vertex in
          let out = if announces_first vertex then broadcast neighbors v else [] in
          ({ value = v }, out));
      step =
        (fun ~round:_ ~vertex st inbox ->
          let improved = ref false in
          List.iter
            (fun (_, msg) ->
              match improve st.value msg with
              | Some better ->
                  st.value <- better;
                  improved := true
              | None -> ())
            inbox;
          if !improved then
            ( st,
              broadcast (Grapho.Ugraph.neighbors graph vertex) st.value,
              `Continue )
          else (st, [], `Done));
      measure;
    }
  in
  let states, metrics = Engine.run ~model ~graph spec in
  (Array.map (fun s -> s.value) states, metrics)

let flood_min_id ?model graph =
  let bits = Message.bits_for_id ~n:(max 2 (Grapho.Ugraph.n graph)) in
  improving ?model graph
    ~initial:(fun v -> v)
    ~announces_first:(fun _ -> true)
    ~improve:(fun current incoming ->
      if incoming < current then Some incoming else None)
    ~measure:(fun _ -> bits)

let bfs_distances ?model ~root graph =
  let bits = Message.bits_for_id ~n:(max 2 (Grapho.Ugraph.n graph)) in
  improving ?model graph
    ~initial:(fun v -> if v = root then 0 else max_int)
    ~announces_first:(fun v -> v = root)
    ~improve:(fun current incoming ->
      if incoming < max_int && incoming + 1 < current then Some (incoming + 1)
      else None)
    ~measure:(fun _ -> bits)

(* ------------------------------------------------------------------ *)
(* Luby's MIS: phases of (Value, Joined, -). *)

type mis_state = {
  rng : Grapho.Rng.t;
  mutable in_mis : bool;
  mutable dead : bool;
  mutable my_value : int;
  mutable best_seen : int option;
}

type mis_msg = Value of int | Joined_mis

let luby_mis ?(seed = 0x715B) ?model graph =
  let n = max 2 (Grapho.Ugraph.n graph) in
  let model =
    match model with Some m -> m | None -> Model.congest ~n ()
  in
  let master = Grapho.Rng.create seed in
  let streams =
    Array.init (Grapho.Ugraph.n graph) (fun _ -> Grapho.Rng.split master)
  in
  let bound = n * n * n in
  let broadcast st payload =
    ignore st;
    fun neighbors ->
      Array.to_list
        (Array.map (fun u -> { Engine.dst = u; payload }) neighbors)
  in
  let spec =
    {
      Engine.init =
        (fun ~n:_ ~vertex ~neighbors ->
          let st =
            {
              rng = streams.(vertex);
              in_mis = false;
              dead = false;
              my_value = 0;
              best_seen = None;
            }
          in
          st.my_value <- Grapho.Rng.int st.rng bound;
          (st, broadcast st (Value st.my_value) neighbors));
      step =
        (fun ~round ~vertex st inbox ->
          if st.dead || st.in_mis then (st, [], `Done)
          else begin
            let neighbors = Grapho.Ugraph.neighbors graph vertex in
            let phase = (round - 1) mod 3 in
            let out =
              match phase with
              | 0 ->
                  (* Received live neighbor values; join if strictly
                     first in (value, id) order. *)
                  let mine = (st.my_value, vertex) in
                  let beaten =
                    List.exists
                      (fun (src, m) ->
                        match m with
                        | Value v -> (v, src) < mine
                        | _ -> false)
                      inbox
                  in
                  if not beaten then begin
                    st.in_mis <- true;
                    broadcast st Joined_mis neighbors
                  end
                  else []
              | 1 ->
                  (* Neighbors joining kill this vertex. *)
                  if List.exists (fun (_, m) -> m = Joined_mis) inbox then
                    st.dead <- true;
                  []
              | _ ->
                  (* Start the next phase with a fresh value. *)
                  st.my_value <- Grapho.Rng.int st.rng bound;
                  broadcast st (Value st.my_value) neighbors
            in
            let status =
              if st.dead || st.in_mis then `Done else `Continue
            in
            (st, out, status)
          end);
      measure =
        (fun m ->
          match m with
          | Value _ -> 2 + (3 * Message.bits_for_id ~n)
          | Joined_mis -> 2);
    }
  in
  let states, metrics = Engine.run ~model ~graph spec in
  (Array.map (fun st -> st.in_mis) states, metrics)

(* ------------------------------------------------------------------ *)
(* Maximal matching by random head/tail proposals (Israeli-Itai
   style): each phase, every active vertex flips a coin; heads propose
   to a random active tail neighbor, tails accept one proposer. The
   head/tail asymmetry rules out mutual-proposal deadlocks. *)

type mm_state = {
  mm_rng : Grapho.Rng.t;
  mutable mate : int;
  mutable announced : bool;
  mutable is_head : bool;
  mutable tails : int list;
  mutable live_nbrs : int list;
}

type mm_msg = Mm_coin of bool | Mm_propose | Mm_accept | Mm_matched

let maximal_matching ?(seed = 0x7A7E) ?model graph =
  let n = max 2 (Grapho.Ugraph.n graph) in
  let model =
    match model with Some m -> m | None -> Model.congest ~n ()
  in
  let master = Grapho.Rng.create seed in
  let streams =
    Array.init (Grapho.Ugraph.n graph) (fun _ -> Grapho.Rng.split master)
  in
  let send dst payload = { Engine.dst; payload } in
  let broadcast_to targets payload =
    List.map (fun u -> send u payload) targets
  in
  let spec =
    {
      Engine.init =
        (fun ~n:_ ~vertex ~neighbors ->
          let st =
            {
              mm_rng = streams.(vertex);
              mate = -1;
              announced = false;
              is_head = false;
              tails = [];
              live_nbrs = Array.to_list neighbors;
            }
          in
          st.is_head <- Grapho.Rng.bool st.mm_rng;
          (st, broadcast_to st.live_nbrs (Mm_coin st.is_head)));
      step =
        (fun ~round ~vertex st inbox ->
          ignore vertex;
          (* Matched neighbors leave the pool, whatever the phase. *)
          List.iter
            (fun (src, m) ->
              if m = Mm_matched then
                st.live_nbrs <- List.filter (fun u -> u <> src) st.live_nbrs)
            inbox;
          let finished () = st.mate >= 0 || st.live_nbrs = [] in
          let phase = (round - 1) mod 4 in
          let out =
            match phase with
            | 0 ->
                (* Coins in hand: heads court a random active tail. *)
                if st.mate >= 0 then []
                else begin
                  st.tails <-
                    List.filter_map
                      (fun (src, m) ->
                        match m with
                        | Mm_coin false
                          when List.mem src st.live_nbrs ->
                            Some src
                        | _ -> None)
                      inbox;
                  if st.is_head && st.tails <> [] then begin
                    let pick =
                      List.nth st.tails
                        (Grapho.Rng.int st.mm_rng (List.length st.tails))
                    in
                    [ send pick Mm_propose ]
                  end
                  else []
                end
            | 1 ->
                (* Tails accept the smallest-id proposer. *)
                if st.mate >= 0 then []
                else begin
                  let proposers =
                    List.filter_map
                      (fun (src, m) ->
                        match m with Mm_propose -> Some src | _ -> None)
                      inbox
                  in
                  match List.sort compare proposers with
                  | [] -> []
                  | u :: _ ->
                      st.mate <- u;
                      st.announced <- true;
                      send u Mm_accept
                      :: broadcast_to st.live_nbrs Mm_matched
                end
            | 2 ->
                (* Heads learn their fate: an accept can only come from
                   the single tail they proposed to. *)
                if st.mate < 0 then
                  (match
                     List.find_opt (fun (_, m) -> m = Mm_accept) inbox
                   with
                  | Some (src, _) -> st.mate <- src
                  | None -> ());
                if st.mate >= 0 && not st.announced then begin
                  st.announced <- true;
                  broadcast_to st.live_nbrs Mm_matched
                end
                else []
            | _ ->
                (* Fresh coins for the next phase. *)
                if finished () then []
                else begin
                  st.is_head <- Grapho.Rng.bool st.mm_rng;
                  broadcast_to st.live_nbrs (Mm_coin st.is_head)
                end
          in
          (st, out, if finished () then `Done else `Continue));
      measure = (fun _ -> 3);
    }
  in
  let states, metrics = Engine.run ~model ~graph spec in
  (Array.map (fun st -> st.mate) states, metrics)
