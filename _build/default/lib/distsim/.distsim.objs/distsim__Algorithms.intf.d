lib/distsim/algorithms.mli: Engine Grapho Model
