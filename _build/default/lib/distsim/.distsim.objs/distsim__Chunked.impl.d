lib/distsim/chunked.ml: Array Engine Hashtbl List Message Option Printf
