lib/distsim/message.mli:
