lib/distsim/model.mli: Format
