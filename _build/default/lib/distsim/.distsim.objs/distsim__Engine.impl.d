lib/distsim/engine.ml: Array Grapho List Model Printf
