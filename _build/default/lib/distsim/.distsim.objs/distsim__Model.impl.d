lib/distsim/model.ml: Format
