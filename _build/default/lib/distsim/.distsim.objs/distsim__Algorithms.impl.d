lib/distsim/algorithms.ml: Array Engine Grapho List Message Model
