lib/distsim/chunked.mli: Engine Grapho Model
