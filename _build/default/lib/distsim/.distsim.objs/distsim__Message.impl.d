lib/distsim/message.ml: List
