lib/distsim/engine.mli: Grapho Model
