let bits_for_id ~n =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  max 1 (go 0 n)

let bits_int v =
  if v < 0 then invalid_arg "Message.bits_int: negative";
  bits_for_id ~n:v

let bits_float = 64
let bits_list f l = List.fold_left (fun acc x -> acc + f x) 0 l
let bits_pair f g (a, b) = f a + g b
let bits_option f = function None -> 1 | Some x -> 1 + f x
let bits_bool = 1
