(* Incremental network upgrade: 2-spanner augmentation and fault
   tolerance.

   An operator already owns a backbone (say, last year's spanner) and
   wants to (a) top it up to a valid 2-spanner after the overlay grew,
   paying only for new links, and (b) harden the result against single
   node failures.

   Augmentation is the 0/1-weight special case of the weighted
   algorithm (the remark after Theorem 3.5); fault tolerance is the
   Dinitz-Krauthgamer variant the paper's Section 4 relates to.

   Run with: dune exec examples/network_upgrade.exe *)

open Grapho
module Spanner = Spanner_core

let () =
  let rng = Rng.create 21 in
  (* Last year's network and its spanner. *)
  let old_overlay = Generators.caveman rng 8 8 0.05 in
  let owned = (Spanner.Two_spanner.run ~rng old_overlay).spanner in
  Printf.printf "owned backbone: %d links\n" (Edge.Set.cardinal owned);

  (* The overlay grew: new chords appeared. *)
  let grown =
    Ugraph.of_edge_set ~n:(Ugraph.n old_overlay)
      (Edge.Set.union
         (Ugraph.edge_set old_overlay)
         (Ugraph.edge_set (Generators.gnp rng (Ugraph.n old_overlay) 0.02)))
  in
  Printf.printf "overlay grew to %d edges (was %d)\n" (Ugraph.m grown)
    (Ugraph.m old_overlay);

  (* (a) Pay only for the top-up. *)
  let owned = Edge.Set.inter owned (Ugraph.edge_set grown) in
  let upgrade = Spanner.Augmentation.run ~seed:4 grown ~initial:owned in
  Printf.printf "augmentation buys %d new links (%d total)\n"
    (Edge.Set.cardinal upgrade.added)
    (Edge.Set.cardinal upgrade.spanner);
  assert (Spanner.Spanner_check.is_spanner grown upgrade.spanner ~k:2);

  (* (b) Harden against one node failure. *)
  let hardened = Spanner.Fault_tolerant.greedy grown ~f:1 in
  Printf.printf "1-fault-tolerant backbone: %d links\n"
    (Edge.Set.cardinal hardened.spanner);
  assert (Spanner.Fault_tolerant.is_ft_2_spanner grown ~f:1 hardened.spanner);

  (* Demonstrate the guarantee: knock out the busiest vertex and check
     the survivors still span the surviving demands within 2 hops. *)
  let victim =
    Ugraph.fold_vertices
      (fun v best ->
        if Ugraph.degree grown v > Ugraph.degree grown best then v else best)
      grown 0
  in
  let survives set =
    Edge.Set.filter (fun e -> not (Edge.mem_endpoint e victim)) set
  in
  let ok =
    Spanner.Spanner_check.is_spanner_of_targets ~n:(Ugraph.n grown)
      ~targets:(survives (Ugraph.edge_set grown))
      (survives hardened.spanner) ~k:2
  in
  Printf.printf "after losing hub %d (degree %d): still a 2-spanner? %b\n"
    victim (Ugraph.degree grown victim) ok;
  assert ok
