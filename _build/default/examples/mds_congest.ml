(* Minimum dominating set in CONGEST (Section 5 of the paper): pick
   cluster heads so that every node has a head in its closed
   neighborhood, with a guaranteed O(log Delta) approximation, while
   every message fits in O(log n) bits.

   Scenario: choosing aggregation points in a sensor grid.

   Run with: dune exec examples/mds_congest.exe *)

open Grapho
module Spanner = Spanner_core

let () =
  let grid = Generators.grid 20 20 in
  let r = Spanner.Mds.run ~rng:(Rng.create 5) grid in
  Printf.printf "sensor grid 20x20: %d cluster heads elected\n"
    (List.length r.dominating_set);
  Printf.printf "rounds=%d (%d iterations), messages=%d\n" r.metrics.rounds
    r.iterations r.metrics.messages;
  Printf.printf "largest message: %d bits; CONGEST violations: %d\n"
    r.metrics.max_message_bits r.metrics.congest_violations;
  assert (Spanner.Mds.is_dominating_set grid r.dominating_set);
  assert (r.metrics.congest_violations = 0);

  (* The guaranteed ratio is O(log Delta) *always*, not just in
     expectation: rerun with adversarial seeds and watch stability. *)
  let sizes =
    List.map
      (fun seed ->
        List.length
          (Spanner.Mds.run ~rng:(Rng.create seed) grid).dominating_set)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Printf.printf "sizes across 8 seeds: %s (greedy: %d, Delta=%d)\n"
    (String.concat ", " (List.map string_of_int sizes))
    (List.length (Spanner.Mds.greedy grid))
    (Ugraph.max_degree grid)
