(* Quickstart: build a graph, approximate its minimum 2-spanner with
   the distributed algorithm of Censor-Hillel & Dory (PODC 2018), and
   verify the result.

   Run with: dune exec examples/quickstart.exe *)

open Grapho
module Spanner = Spanner_core

let () =
  (* A reproducible random graph: 100 vertices, locally dense. *)
  let rng = Rng.create 42 in
  let graph = Generators.caveman rng 10 10 0.05 in
  Printf.printf "input graph: %d vertices, %d edges, max degree %d\n"
    (Ugraph.n graph) (Ugraph.m graph) (Ugraph.max_degree graph);

  (* Run the LOCAL-model 2-spanner approximation (Theorem 1.3):
     guaranteed O(log m/n) ratio, O(log n log Delta) rounds w.h.p. *)
  let result = Spanner.Two_spanner.run ~rng graph in
  Printf.printf "2-spanner: %d edges (%.0f%% of the graph)\n"
    (Edge.Set.cardinal result.spanner)
    (100.0
    *. float_of_int (Edge.Set.cardinal result.spanner)
    /. float_of_int (Ugraph.m graph));
  Printf.printf "converged in %d iterations = %d LOCAL rounds, %d stars\n"
    result.iterations result.rounds result.stars_added;

  (* Every edge of the graph now has a path of length <= 2 inside the
     spanner; the library can check that for you. *)
  assert (Spanner.Spanner_check.is_spanner graph result.spanner ~k:2);
  Printf.printf "verified: every edge is spanned within 2 hops\n";

  (* Compare with the sequential greedy of Kortsarz & Peleg. *)
  let greedy = Spanner.Kp_greedy.run graph in
  Printf.printf "sequential greedy baseline: %d edges\n"
    (Edge.Set.cardinal greedy.spanner);

  (* Stretch statistics: how much each edge pays. *)
  Format.printf "%a@."
    Spanner.Spanner_stats.pp
    (Spanner.Spanner_stats.compute graph result.spanner);

  (* Export for visualization: the spanner in red. *)
  let dot = Graph_io.to_dot ~highlight:result.spanner graph in
  Printf.printf "dot output: %d characters (pipe to `dot -Tsvg`)\n"
    (String.length dot)
