(* Client-server network design (Elkin & Peleg [29], Section 4.3.3 of
   the paper): demands ("client" pairs) must be served within two hops
   using only purchasable ("server") links. The distributed algorithm
   selects an approximately minimum set of server links.

   Scenario: a metro network where only some fiber segments are for
   sale, and a set of latency-critical endpoint pairs must end up at
   most two hops apart.

   Run with: dune exec examples/client_server_design.exe *)

open Grapho
module Spanner = Spanner_core

let () =
  let rng = Rng.create 11 in
  let metro = Generators.gnp_connected rng 120 0.12 in
  (* 60% of adjacent pairs are demands; 70% of segments purchasable. *)
  let clients, servers =
    Generators.random_client_server rng metro ~client_fraction:0.6
      ~server_fraction:0.7
  in
  Printf.printf "metro: n=%d m=%d | demands=%d purchasable=%d\n"
    (Ugraph.n metro) (Ugraph.m metro)
    (Edge.Set.cardinal clients) (Edge.Set.cardinal servers);

  let r = Spanner.Client_server.run ~rng metro ~clients ~servers in
  Printf.printf "purchased %d server links in %d LOCAL rounds\n"
    (Edge.Set.cardinal r.spanner) r.rounds;
  Printf.printf "unserveable demands (no purchasable 2-hop route): %d\n"
    (Edge.Set.cardinal r.uncoverable);

  (* Verify the service-level objective. *)
  let served = Edge.Set.diff clients r.uncoverable in
  assert (
    Spanner.Spanner_check.is_spanner_of_targets ~n:(Ugraph.n metro)
      ~targets:served r.spanner ~k:2);
  Printf.printf "verified: every serveable demand is within 2 purchased hops\n";

  (* Compare with the sequential greedy on the same instance. *)
  let greedy = Spanner.Kp_greedy.run ~targets:clients ~usable:servers metro in
  Printf.printf "sequential greedy buys %d links; guaranteed ratio <= %.1f\n"
    (Edge.Set.cardinal greedy.spanner)
    (Spanner.Client_server.ratio_bound metro ~clients ~servers)
