examples/client_server_design.mli:
