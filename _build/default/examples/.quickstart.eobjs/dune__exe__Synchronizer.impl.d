examples/synchronizer.ml: Array Distsim Float Generators Grapho Printf Rng Spanner_core Traversal Ugraph
