examples/quickstart.mli:
