examples/quickstart.ml: Edge Format Generators Graph_io Grapho Printf Rng Spanner_core String Ugraph
