examples/network_upgrade.mli:
