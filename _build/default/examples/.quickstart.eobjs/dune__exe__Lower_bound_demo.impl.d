examples/lower_bound_demo.ml: Edge Grapho List Lowerbound Printf Rng Spanner_core
