examples/network_upgrade.ml: Edge Generators Grapho Printf Rng Spanner_core Ugraph
