examples/synchronizer.mli:
