examples/client_server_design.ml: Edge Generators Grapho Printf Rng Spanner_core Ugraph
