examples/mds_congest.ml: Generators Grapho List Printf Rng Spanner_core String Ugraph
