examples/mds_congest.mli:
