(* The hardness construction, end to end (Section 2 of the paper).

   Builds the Figure 1 graph G(l,b) for both a disjoint and an
   intersecting input pair, machine-checks Claim 2.2 and Lemma 2.3 on
   it, and executes Alice & Bob's decision protocol of Lemma 2.4 —
   the engine of the Omega(sqrt(n)/(sqrt(alpha) log n)) round lower
   bound (Theorem 1.1).

   Run with: dune exec examples/lower_bound_demo.exe *)

open Grapho
module L = Lowerbound
module Spanner = Spanner_core

let run_case name inputs ~ell ~beta ~alpha =
  let t = L.Construction_g.build ~ell ~beta inputs in
  Printf.printf "\n-- %s inputs --\n" name;
  Printf.printf "G(l=%d, b=%d): n=%d, dense component D has %d edges\n" ell
    beta (L.Construction_g.n t)
    (Edge.Directed.Set.cardinal t.d_edges);
  Printf.printf "Alice/Bob cut: %d edges (Theta(l), independent of b)\n"
    (List.length (L.Construction_g.cut_edges t));
  (* Claim 2.2 on every input block. *)
  let ok = ref true in
  for i = 0 to ell - 1 do
    for r = 0 to ell - 1 do
      if not (L.Construction_g.check_claim_2_2 t ~i ~r) then ok := false
    done
  done;
  Printf.printf "Claim 2.2 (path structure of every block): %b\n" !ok;
  (* Lemma 2.3's two sides. *)
  let spanner = L.Construction_g.oracle_spanner t in
  assert (Spanner.Spanner_check.is_directed_spanner t.graph spanner ~k:5);
  Printf.printf "5-spanner found with %d edges; %d forced from D (b^2 = %d)\n"
    (Edge.Directed.Set.cardinal spanner)
    (Edge.Directed.Set.cardinal (L.Construction_g.forced_d_edges t))
    (beta * beta);
  (* Alice's verdict per Lemma 2.4. *)
  let verdict = L.Construction_g.decide_disjointness t ~spanner ~alpha in
  Printf.printf "Alice concludes: %s (truth: %s)\n"
    (if verdict then "DISJOINT" else "INTERSECTING")
    (if L.Disjointness.is_disjoint inputs then "disjoint" else "intersecting");
  assert (verdict = L.Disjointness.is_disjoint inputs)

let () =
  let alpha = 1.0 in
  let ell, beta = L.Construction_g.params_randomized ~n':400 ~alpha in
  Printf.printf "Theorem 1.1 parameters for n'=400, alpha=%.0f: l=%d b=%d\n"
    alpha ell beta;
  let rng = Rng.create 3 in
  run_case "disjoint"
    (L.Disjointness.random_disjoint rng ~n:(ell * ell) ~density:0.5)
    ~ell ~beta ~alpha;
  run_case "intersecting"
    (L.Disjointness.random_intersecting rng ~n:(ell * ell))
    ~ell ~beta ~alpha;
  Printf.printf
    "\nsince deciding disjointness needs Omega(l^2) bits over a Theta(l)\n\
     cut of O(log n)-bit links, any alpha-approximation needs\n\
     Omega(sqrt(n)/(sqrt(alpha) log n)) rounds; for n=10^6, alpha=1: %.0f\n"
    (L.Bounds.thm_1_1_randomized ~n:1_000_000 ~alpha)
