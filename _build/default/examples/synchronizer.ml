(* Network synchronizer, the classic spanner application the paper's
   introduction cites [2,3,57]: replace the full topology by a sparse
   2-spanner and pay at most one extra hop on every exchanged message
   while cutting the per-round message volume.

   We build a skewed overlay network, compute a 2-spanner, then run
   the same flooding workload (distributed min-id election) on both
   topologies under CONGEST and compare measured traffic.

   Run with: dune exec examples/synchronizer.exe *)

open Grapho
module Spanner = Spanner_core

let () =
  let rng = Rng.create 7 in
  let overlay = Generators.preferential_attachment rng 300 12 in
  Printf.printf "overlay: n=%d m=%d max-degree=%d\n" (Ugraph.n overlay)
    (Ugraph.m overlay) (Ugraph.max_degree overlay);

  let result = Spanner.Two_spanner.run ~rng overlay in
  let backbone = Ugraph.of_edge_set ~n:(Ugraph.n overlay) result.spanner in
  assert (Spanner.Spanner_check.is_spanner overlay result.spanner ~k:2);
  Printf.printf "synchronizer backbone: m=%d (%.0f%% of overlay edges)\n"
    (Ugraph.m backbone)
    (100.0 *. float_of_int (Ugraph.m backbone)
    /. float_of_int (Ugraph.m overlay));

  (* The same distributed workload on both topologies. *)
  let _, full = Distsim.Algorithms.flood_min_id overlay in
  let _, sparse = Distsim.Algorithms.flood_min_id backbone in
  Printf.printf "flooding on overlay : rounds=%d messages=%d bits=%d\n"
    full.rounds full.messages full.total_bits;
  Printf.printf "flooding on backbone: rounds=%d messages=%d bits=%d\n"
    sparse.rounds sparse.messages sparse.total_bits;
  Printf.printf "traffic saved: %.0f%%, extra rounds: %d\n"
    (100.0 *. (1.0 -. float_of_int sparse.total_bits
               /. float_of_int full.total_bits))
    (sparse.rounds - full.rounds);

  (* Distances degrade by at most the stretch factor 2. *)
  let d_full = Traversal.bfs_distances overlay 0 in
  let d_sparse = Traversal.bfs_distances backbone 0 in
  let worst = ref 0.0 in
  for v = 1 to Ugraph.n overlay - 1 do
    if d_full.(v) > 0 && d_full.(v) < max_int then
      worst := Float.max !worst
          (float_of_int d_sparse.(v) /. float_of_int d_full.(v))
  done;
  Printf.printf "worst observed distance blow-up from node 0: %.2fx (<= 2x)\n"
    !worst;
  assert (!worst <= 2.0 +. 1e-9)
