(* Tests for the message-passing LOCAL implementation of the Section 4
   algorithm, including the differential equality with the
   round-structured engine, plus the augmentation wrapper and the
   spanner statistics. *)

open Grapho
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Two_spanner_local *)

let families =
  [
    ("K12", Generators.complete 12);
    ("caveman", Generators.caveman (Rng.create 1) 5 6 0.05);
    ("gnp40", Generators.gnp_connected (Rng.create 2) 40 0.25);
    ("ladder80", Generators.clique_ladder (Rng.create 3) 80);
    ("pa60", Generators.preferential_attachment (Rng.create 4) 60 8);
    ("bipartite", Generators.complete_bipartite 5 6);
    ("path7", Generators.path 7);
  ]

let test_local_valid () =
  List.iter
    (fun (name, g) ->
      let r = C.Two_spanner_local.run ~seed:5 g in
      check (name ^ " valid") true
        (C.Spanner_check.is_spanner g r.spanner ~k:2))
    families

let test_local_equals_engine () =
  (* The headline differential test: identical spanners for identical
     seeds, across families and seeds, including multi-iteration
     runs. *)
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let a = C.Two_spanner.run ~seed g in
          let b = C.Two_spanner_local.run ~seed g in
          check
            (Printf.sprintf "%s seed %d identical" name seed)
            true
            (Edge.Set.equal a.spanner b.spanner);
          check_int
            (Printf.sprintf "%s seed %d iterations" name seed)
            a.iterations b.iterations)
        [ 1; 2; 3 ])
    families

let test_local_round_accounting () =
  let g = Generators.clique_ladder (Rng.create 5) 60 in
  let r = C.Two_spanner_local.run ~seed:1 g in
  (* 12 rounds per completed iteration, plus the quiet-detection tail
     that never exceeds two extra iterations. *)
  check "round shape" true
    (r.metrics.rounds >= C.Two_spanner_local.rounds_per_iteration * r.iterations
    && r.metrics.rounds
       <= C.Two_spanner_local.rounds_per_iteration * (r.iterations + 3))

let test_local_degenerate () =
  let r = C.Two_spanner_local.run (Ugraph.empty 4) in
  check_int "no edges" 0 (Edge.Set.cardinal r.spanner);
  let g1 = Generators.path 2 in
  let r1 = C.Two_spanner_local.run g1 in
  check_int "single edge" 1 (Edge.Set.cardinal r1.spanner)

let test_local_runs_under_local_model_only () =
  (* Messages genuinely exceed O(log n): that is the point of LOCAL. *)
  let g = Generators.complete 20 in
  let r = C.Two_spanner_local.run ~seed:2 g in
  check "big messages happen" true (r.metrics.max_message_bits > 64)

let prop_local_equals_engine =
  QCheck.Test.make ~name:"local protocol = engine on random graphs" ~count:15
    QCheck.(pair (int_range 2 25) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Generators.gnp_connected (Rng.create seed) n 0.35 in
      let a = C.Two_spanner.run ~seed g in
      let b = C.Two_spanner_local.run ~seed g in
      Edge.Set.equal a.spanner b.spanner)

(* ------------------------------------------------------------------ *)
(* Augmentation *)

let test_augment_from_empty_is_plain () =
  let g = Generators.complete 12 in
  let r = C.Augmentation.run ~seed:3 g ~initial:Edge.Set.empty in
  check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2);
  check "added = spanner" true (Edge.Set.equal r.added r.spanner)

let test_augment_from_full_adds_nothing () =
  let g = Generators.gnp_connected (Rng.create 6) 30 0.2 in
  let r = C.Augmentation.run ~seed:3 g ~initial:(Ugraph.edge_set g) in
  check_int "nothing added" 0 (Edge.Set.cardinal r.added);
  check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2)

let test_augment_partial () =
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (Rng.create (10 + seed)) 30 0.25 in
    (* Start from a random half of the edges. *)
    let rng = Rng.create seed in
    let initial =
      Edge.Set.filter (fun _ -> Rng.bool rng) (Ugraph.edge_set g)
    in
    let r = C.Augmentation.run ~seed g ~initial in
    check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2);
    check "contains initial" true (Edge.Set.subset initial r.spanner);
    check "added disjoint from initial" true
      (Edge.Set.is_empty (Edge.Set.inter r.added initial))
  done

let test_augment_rejects_foreign_edges () =
  let g = Generators.path 3 in
  check "raises" true
    (try
       ignore
         (C.Augmentation.run g ~initial:(Edge.Set.singleton (Edge.make 0 2)));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Spanner_stats *)

let test_stats_full_graph () =
  let g = Generators.complete 6 in
  let s = C.Spanner_stats.compute g (Ugraph.edge_set g) in
  check_int "max stretch" 1 s.max_stretch;
  Alcotest.(check (float 1e-9)) "mean" 1.0 s.mean_stretch;
  Alcotest.(check (float 1e-9)) "compression" 1.0 s.compression

let test_stats_star_spanner () =
  let g = Generators.complete 6 in
  let star =
    Edge.Set.of_list (List.init 5 (fun i -> Edge.make 0 (i + 1)))
  in
  let s = C.Spanner_stats.compute g star in
  check_int "max stretch 2" 2 s.max_stretch;
  check_int "edges" 5 s.edges;
  (* 5 direct edges at stretch 1, 10 at stretch 2 *)
  check "histogram" true (s.stretch_histogram = [ (1, 5); (2, 10) ])

let test_stats_detects_disconnection () =
  let g = Generators.path 3 in
  let s = C.Spanner_stats.compute g (Edge.Set.singleton (Edge.make 0 1)) in
  check_int "unreachable flagged" max_int s.max_stretch

let test_stats_directed () =
  let dg = Dgraph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let s =
    C.Spanner_stats.directed_compute dg
      (Edge.Directed.Set.of_list [ (0, 1); (1, 2) ])
  in
  check_int "max stretch" 2 s.max_stretch;
  check_int "edges" 2 s.edges

let test_congest_compilation_equal () =
  List.iter
    (fun (name, g) ->
      let a = C.Two_spanner.run ~seed:3 g in
      let c = C.Two_spanner_local.run_congest ~seed:3 g in
      check (name ^ " identical under CONGEST") true
        (Edge.Set.equal a.spanner c.spanner);
      check_int (name ^ " no violations") 0 c.metrics.congest_violations)
    [
      ("K10", Generators.complete 10);
      ("ladder60", Generators.clique_ladder (Rng.create 2) 60);
      ("gnp30", Generators.gnp_connected (Rng.create 3) 30 0.3);
    ]

let test_congest_overhead_is_delta () =
  (* Real rounds = chunks_per_round x virtual rounds: the O(Delta)
     overhead of Section 1.3. *)
  let g = Generators.complete 12 in
  let c = C.Two_spanner_local.run_congest ~seed:1 g in
  let chunks = (2 * Ugraph.max_degree g) + 4 in
  check "round multiple" true (c.metrics.rounds mod chunks = 0);
  check "bounded" true
    (c.metrics.rounds
    <= chunks * C.Two_spanner_local.rounds_per_iteration * (c.iterations + 3))

let test_weighted_protocol_equal () =
  List.iter
    (fun (name, g, zf, mw) ->
      List.iter
        (fun seed ->
          let w =
            Generators.random_weights_with_zeros (Rng.create (seed + 50)) g
              ~zero_fraction:zf ~max_weight:mw
          in
          let a = C.Weighted_two_spanner.run ~seed g w in
          let b = C.Two_spanner_local.run_weighted ~seed g w in
          check
            (Printf.sprintf "%s seed %d identical" name seed)
            true
            (Edge.Set.equal a.spanner b.spanner))
        [ 1; 2 ])
    [
      ("K12", Generators.complete 12, 0.0, 8);
      ("caveman", Generators.caveman (Rng.create 1) 4 6 0.05, 0.2, 5);
      ("gnp30", Generators.gnp_connected (Rng.create 4) 30 0.3, 0.3, 16);
      ("allzero", Generators.complete 8, 1.0, 3);
    ]

let prop_weighted_protocol_equal =
  QCheck.Test.make ~name:"weighted local protocol = weighted engine"
    ~count:10
    QCheck.(pair (int_range 2 20) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Generators.gnp_connected (Rng.create seed) n 0.35 in
      let w =
        Generators.random_weights_with_zeros (Rng.create (seed + 1)) g
          ~zero_fraction:0.25 ~max_weight:6
      in
      let a = C.Weighted_two_spanner.run ~seed g w in
      let b = C.Two_spanner_local.run_weighted ~seed g w in
      Edge.Set.equal a.spanner b.spanner)

let prop_congest_equals_engine =
  QCheck.Test.make ~name:"CONGEST compilation = engine" ~count:8
    QCheck.(pair (int_range 2 18) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Generators.gnp_connected (Rng.create seed) n 0.35 in
      let a = C.Two_spanner.run ~seed g in
      let c = C.Two_spanner_local.run_congest ~seed g in
      Edge.Set.equal a.spanner c.spanner
      && c.metrics.congest_violations = 0)

let base_suites =
    [
      ( "two_spanner_local",
        [
          Alcotest.test_case "valid" `Quick test_local_valid;
          Alcotest.test_case "equals engine" `Quick test_local_equals_engine;
          Alcotest.test_case "round accounting" `Quick
            test_local_round_accounting;
          Alcotest.test_case "degenerate" `Quick test_local_degenerate;
          Alcotest.test_case "LOCAL-size messages" `Quick
            test_local_runs_under_local_model_only;
          QCheck_alcotest.to_alcotest prop_local_equals_engine;
          Alcotest.test_case "congest compilation" `Quick
            test_congest_compilation_equal;
          Alcotest.test_case "congest overhead" `Quick
            test_congest_overhead_is_delta;
          QCheck_alcotest.to_alcotest prop_congest_equals_engine;
          Alcotest.test_case "weighted protocol" `Quick
            test_weighted_protocol_equal;
          QCheck_alcotest.to_alcotest prop_weighted_protocol_equal;
        ] );
      ( "augmentation",
        [
          Alcotest.test_case "from empty" `Quick test_augment_from_empty_is_plain;
          Alcotest.test_case "from full" `Quick test_augment_from_full_adds_nothing;
          Alcotest.test_case "partial" `Quick test_augment_partial;
          Alcotest.test_case "foreign edges" `Quick
            test_augment_rejects_foreign_edges;
        ] );
      ( "stats",
        [
          Alcotest.test_case "full graph" `Quick test_stats_full_graph;
          Alcotest.test_case "star spanner" `Quick test_stats_star_spanner;
          Alcotest.test_case "disconnection" `Quick
            test_stats_detects_disconnection;
          Alcotest.test_case "directed" `Quick test_stats_directed;
        ] );
    ]

(* Appended suites: engine traces, fault tolerance, weighted (1+eps),
   and the MDS selection-rule comparison. These piggyback on this
   runner to keep the test executables few. *)

let test_trace_rows_consistent () =
  let g = Generators.clique_ladder (Rng.create 8) 100 in
  let rows = ref [] in
  let r = C.Two_spanner.run ~seed:4 ~trace:(fun row -> rows := row :: !rows) g in
  let rows = List.rev !rows in
  check_int "one row per iteration" r.iterations (List.length rows);
  (* Uncovered counts never increase between iterations; the first row
     sees all edges uncovered. *)
  (match rows with
  | first :: _ -> check_int "starts full" (Ugraph.m g) first.C.Two_spanner_engine.uncovered_before
  | [] -> Alcotest.fail "expected rows");
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        check "uncovered decreases" true
          (b.C.Two_spanner_engine.uncovered_before
          <= a.C.Two_spanner_engine.uncovered_before);
        monotone rest
    | _ -> ()
  in
  monotone rows;
  (* Max density steps down across iterations (Lemma 4.5 shape). *)
  (match (rows, List.rev rows) with
  | first :: _, last :: _ ->
      check "density falls" true
        (last.C.Two_spanner_engine.max_density
        <= first.C.Two_spanner_engine.max_density +. 1e-9)
  | _ -> ())

let test_ft_checker_known () =
  let g = Generators.complete 5 in
  let all = Ugraph.edge_set g in
  check "whole graph is f-FT for any f" true
    (C.Fault_tolerant.is_ft_2_spanner g ~f:3 all);
  (* One star of K5 is a 0-FT 2-spanner but not 1-FT: the hub is a
     single point of failure. *)
  let star = Edge.Set.of_list (List.init 4 (fun i -> Edge.make 0 (i + 1))) in
  check "star is 0-FT" true (C.Fault_tolerant.is_ft_2_spanner g ~f:0 star);
  check "star is not 1-FT" false (C.Fault_tolerant.is_ft_2_spanner g ~f:1 star)

let test_ft_middle_count () =
  let s =
    Edge.Set.of_list
      [ Edge.make 0 1; Edge.make 1 2; Edge.make 0 3; Edge.make 3 2 ]
  in
  check_int "two middles" 2 (C.Fault_tolerant.middle_count ~n:4 s (Edge.make 0 2))

(* Brute-force cross-check of the characterization against the ∀F
   definition. *)
let ft_by_definition g ~f s =
  let n = Ugraph.n g in
  let rec subsets k from acc =
    if k = 0 then [ acc ]
    else if from >= n then []
    else subsets (k - 1) (from + 1) (from :: acc) @ subsets k (from + 1) acc
  in
  let fault_sets =
    List.concat_map (fun k -> subsets k 0 []) (List.init (f + 1) (fun i -> i))
  in
  List.for_all
    (fun faults ->
      let dead = Array.make n false in
      List.iter (fun v -> dead.(v) <- true) faults;
      let surviving_edges set =
        Edge.Set.filter
          (fun e ->
            let u, w = Edge.endpoints e in
            (not dead.(u)) && not dead.(w))
          set
      in
      C.Spanner_check.is_spanner_of_targets ~n
        ~targets:(surviving_edges (Ugraph.edge_set g))
        (surviving_edges s) ~k:2)
    fault_sets

let test_ft_characterization_matches_definition () =
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (Rng.create (80 + seed)) 8 0.5 in
    let r = C.Fault_tolerant.greedy g ~f:1 in
    check "characterization" true (C.Fault_tolerant.is_ft_2_spanner g ~f:1 r.spanner);
    check "by definition" true (ft_by_definition g ~f:1 r.spanner)
  done

let test_ft_greedy_valid_across_f () =
  let g = Generators.caveman (Rng.create 9) 4 7 0.05 in
  let prev = ref 0 in
  List.iter
    (fun f ->
      let r = C.Fault_tolerant.greedy g ~f in
      check "valid" true (C.Fault_tolerant.is_ft_2_spanner g ~f r.spanner);
      let size = Edge.Set.cardinal r.spanner in
      check "monotone in f" true (size >= !prev);
      prev := size)
    [ 0; 1; 2; 3 ]

let test_ft_f0_is_plain_spanner () =
  let g = Generators.gnp_connected (Rng.create 10) 25 0.3 in
  let r = C.Fault_tolerant.greedy g ~f:0 in
  check "plain 2-spanner" true (C.Spanner_check.is_spanner g r.spanner ~k:2)

let test_weighted_epsilon () =
  for seed = 0 to 2 do
    let g = Generators.gnp_connected (Rng.create (90 + seed)) 9 0.45 in
    let w = Generators.random_weights (Rng.create seed) g ~max_weight:4 in
    let r = C.Epsilon_spanner.run ~rng:(Rng.create seed) ~weights:w
        ~epsilon:0.25 ~k:2 g
    in
    check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2);
    let opt = Weights.cost w (C.Exact.min_weighted_2_spanner g w) in
    check "within (1+eps) of optimum" true (r.cost <= (1.25 *. opt) +. 1e-9)
  done

let test_mds_coin_variant () =
  let g = Generators.gnp_connected (Rng.create 11) 100 0.08 in
  let coin =
    C.Mds.run ~rng:(Rng.create 1) ~selection:(C.Mds.Coin 0.5) g
  in
  check "coin variant dominates" true
    (C.Mds.is_dominating_set g coin.dominating_set);
  check_int "coin congest ok" 0 coin.metrics.congest_violations

let prop_ft_greedy_valid =
  QCheck.Test.make ~name:"FT greedy always valid" ~count:12
    QCheck.(pair (int_range 0 2) (int_range 0 10_000))
    (fun (f, seed) ->
      let g = Generators.gnp_connected (Rng.create seed) 15 0.4 in
      let r = C.Fault_tolerant.greedy g ~f in
      C.Fault_tolerant.is_ft_2_spanner g ~f r.spanner)

let extra_suites =
    [
      ( "trace",
        [ Alcotest.test_case "rows" `Quick test_trace_rows_consistent ] );
      ( "fault_tolerant",
        [
          Alcotest.test_case "checker" `Quick test_ft_checker_known;
          Alcotest.test_case "middles" `Quick test_ft_middle_count;
          Alcotest.test_case "matches definition" `Quick
            test_ft_characterization_matches_definition;
          Alcotest.test_case "monotone in f" `Quick
            test_ft_greedy_valid_across_f;
          Alcotest.test_case "f=0 plain" `Quick test_ft_f0_is_plain_spanner;
          QCheck_alcotest.to_alcotest prop_ft_greedy_valid;
        ] );
      ( "weighted_epsilon",
        [ Alcotest.test_case "ratio" `Quick test_weighted_epsilon ] );
      ( "mds_coin",
        [ Alcotest.test_case "valid" `Quick test_mds_coin_variant ] );
    ]

let () = Alcotest.run "local_protocol" (base_suites @ extra_suites)
