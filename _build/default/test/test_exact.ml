(* Tests for the exact solvers (ground truth for everything else). *)

open Grapho
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let spanner_size g k =
  match
    C.Exact.min_k_spanner ~targets:(Ugraph.edge_set g)
      ~usable:(Ugraph.edge_set g) ~n:(Ugraph.n g) ~k ()
  with
  | Some s -> Edge.Set.cardinal s
  | None -> Alcotest.fail "spanner must exist"

let test_known_2_spanners () =
  check_int "K5 star" 4 (spanner_size (Generators.complete 5) 2);
  check_int "path keeps all" 4 (spanner_size (Generators.path 5) 2);
  check_int "C5 keeps all" 5 (spanner_size (Generators.cycle 5) 2);
  check_int "C3 drops one" 2 (spanner_size (Generators.cycle 3) 2);
  (* bipartite graphs are triangle-free: all edges needed *)
  check_int "K23 all" 6 (spanner_size (Generators.complete_bipartite 2 3) 2)

let test_known_k_spanners () =
  (* C6 with k=5: dropping one edge leaves a 5-path. *)
  check_int "C6 k5" 5 (spanner_size (Generators.cycle 6) 5);
  check_int "C6 k4" 6 (spanner_size (Generators.cycle 6) 4);
  (* K4 with k=3: a spanning path of 3 edges covers everything. *)
  check_int "K4 k3" 3 (spanner_size (Generators.complete 4) 3)

let test_spanner_result_is_valid () =
  for seed = 0 to 5 do
    let g = Generators.gnp_connected (Rng.create seed) 9 0.4 in
    match
      C.Exact.min_k_spanner ~targets:(Ugraph.edge_set g)
        ~usable:(Ugraph.edge_set g) ~n:9 ~k:2 ()
    with
    | Some s -> check "valid" true (C.Spanner_check.is_spanner g s ~k:2)
    | None -> Alcotest.fail "must exist"
  done

let test_uncoverable_targets_give_none () =
  let targets = Edge.Set.singleton (Edge.make 0 1) in
  let usable = Edge.Set.singleton (Edge.make 2 3) in
  check "none" true
    (C.Exact.min_k_spanner ~targets ~usable ~n:4 ~k:2 () = None)

let test_weighted_prefers_cheap_paths () =
  (* Triangle where the direct edge costs 10 and the 2-path costs 2. *)
  let g = Generators.complete 3 in
  let w = Weights.of_list [ (0, 1, 10.0); (1, 2, 1.0); (0, 2, 1.0) ] in
  let s = C.Exact.min_weighted_2_spanner g w in
  check "skips expensive edge" false (Edge.Set.mem (Edge.make 0 1) s);
  Alcotest.(check (float 1e-9)) "cost 2" 2.0 (Weights.cost w s)

let test_weighted_zero_edges () =
  let g = Generators.complete 4 in
  let w = Weights.uniform 0.0 in
  let s = C.Exact.min_weighted_2_spanner g w in
  Alcotest.(check (float 1e-9)) "free" 0.0 (Weights.cost w s);
  check "valid" true (C.Spanner_check.is_spanner g s ~k:2)

let test_directed_known () =
  (* Bidirected K4: double star = 6 edges. *)
  let dg = Generators.bidirect (Generators.complete 4) in
  check_int "double star" 6
    (Edge.Directed.Set.cardinal (C.Exact.min_directed_k_spanner dg ~k:2));
  (* Directed triangle cycle: no shortcuts, all edges needed. *)
  let tri = Dgraph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  check_int "directed triangle" 3
    (Edge.Directed.Set.cardinal (C.Exact.min_directed_k_spanner tri ~k:2))

let test_directed_result_valid () =
  for seed = 0 to 3 do
    let dg =
      Generators.random_orientation (Rng.create seed)
        (Generators.gnp_connected (Rng.create (seed + 50)) 8 0.5)
    in
    let s = C.Exact.min_directed_k_spanner dg ~k:3 in
    check "valid" true (C.Spanner_check.is_directed_spanner dg s ~k:3)
  done

let test_mds_known () =
  check_int "star" 1 (List.length (C.Exact.min_dominating_set (Generators.star 9)));
  check_int "C7" 3 (List.length (C.Exact.min_dominating_set (Generators.cycle 7)));
  check_int "C9" 3 (List.length (C.Exact.min_dominating_set (Generators.cycle 9)));
  check_int "path6" 2 (List.length (C.Exact.min_dominating_set (Generators.path 6)));
  check_int "K6" 1 (List.length (C.Exact.min_dominating_set (Generators.complete 6)));
  check_int "empty graph dominates itself" 4
    (List.length (C.Exact.min_dominating_set (Ugraph.empty 4)))

let test_mds_result_dominates () =
  for seed = 0 to 5 do
    let g = Generators.gnp_connected (Rng.create seed) 12 0.25 in
    let d = C.Exact.min_dominating_set g in
    check "dominates" true (C.Mds.is_dominating_set g d)
  done

let test_mvc_known () =
  check_int "star" 1 (List.length (C.Exact.min_vertex_cover (Generators.star 9)));
  check_int "C7" 4 (List.length (C.Exact.min_vertex_cover (Generators.cycle 7)));
  check_int "path5" 2 (List.length (C.Exact.min_vertex_cover (Generators.path 5)));
  check_int "K5" 4 (List.length (C.Exact.min_vertex_cover (Generators.complete 5)));
  check_int "K33" 3
    (List.length (C.Exact.min_vertex_cover (Generators.complete_bipartite 3 3)))

let test_mvc_result_covers () =
  for seed = 0 to 5 do
    let g = Generators.gnp_connected (Rng.create seed) 12 0.3 in
    let c = C.Exact.min_vertex_cover g in
    check "covers" true (Lowerbound.Mvc.is_vertex_cover g c)
  done

let prop_exact_below_greedy =
  QCheck.Test.make ~name:"exact 2-spanner never beats itself" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Generators.gnp_connected (Rng.create seed) 9 0.4 in
      let exact = C.Exact.min_2_spanner_size g in
      let greedy = Edge.Set.cardinal (C.Kp_greedy.run g).spanner in
      exact <= greedy)

let prop_mds_exact_minimal =
  QCheck.Test.make ~name:"exact MDS below greedy MDS" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Generators.gnp_connected (Rng.create seed) 12 0.25 in
      List.length (C.Exact.min_dominating_set g)
      <= List.length (C.Mds.greedy g))

let prop_mvc_exact_minimal =
  QCheck.Test.make ~name:"exact MVC below 2-approx" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Generators.gnp_connected (Rng.create seed) 12 0.3 in
      let exact = List.length (C.Exact.min_vertex_cover g) in
      let approx = List.length (Lowerbound.Mvc.two_approx g) in
      exact <= approx && approx <= 2 * exact)

let () =
  Alcotest.run "exact"
    [
      ( "spanners",
        [
          Alcotest.test_case "known 2-spanners" `Quick test_known_2_spanners;
          Alcotest.test_case "known k-spanners" `Quick test_known_k_spanners;
          Alcotest.test_case "valid" `Quick test_spanner_result_is_valid;
          Alcotest.test_case "uncoverable" `Quick
            test_uncoverable_targets_give_none;
          Alcotest.test_case "weighted cheap paths" `Quick
            test_weighted_prefers_cheap_paths;
          Alcotest.test_case "weighted zero" `Quick test_weighted_zero_edges;
          Alcotest.test_case "directed known" `Quick test_directed_known;
          Alcotest.test_case "directed valid" `Quick test_directed_result_valid;
        ] );
      ( "covering",
        [
          Alcotest.test_case "mds known" `Quick test_mds_known;
          Alcotest.test_case "mds dominates" `Quick test_mds_result_dominates;
          Alcotest.test_case "mvc known" `Quick test_mvc_known;
          Alcotest.test_case "mvc covers" `Quick test_mvc_result_covers;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_exact_below_greedy; prop_mds_exact_minimal;
            prop_mvc_exact_minimal ] );
    ]
