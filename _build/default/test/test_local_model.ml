(* Tests for the LOCAL-model machinery: network decomposition
   (Linial-Saks) and the (1+eps)-approximation of Section 6
   (Theorem 1.2). *)

open Grapho
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Decomposition *)

let test_decomposition_valid_on_families () =
  List.iter
    (fun (name, g) ->
      let d = C.Decomposition.run ~rng:(Rng.create 3) g in
      check (name ^ " valid") true (C.Decomposition.check g d))
    [
      ("path", Generators.path 30);
      ("cycle", Generators.cycle 25);
      ("gnp", Generators.gnp_connected (Rng.create 1) 60 0.08);
      ("grid", Generators.grid 6 6);
      ("complete", Generators.complete 15);
      ("tree", Generators.random_tree (Rng.create 2) 50);
    ]

let test_decomposition_all_clustered () =
  let g = Generators.gnp_connected (Rng.create 4) 70 0.05 in
  let d = C.Decomposition.run ~rng:(Rng.create 5) g in
  Array.iter (fun c -> check "colored" true (c >= 0)) d.color;
  Array.iter (fun l -> check "has leader" true (l >= 0)) d.leader

let test_decomposition_color_count_logarithmic () =
  let g = Generators.gnp_connected (Rng.create 6) 100 0.05 in
  let d = C.Decomposition.run ~rng:(Rng.create 7) g in
  check "few colors" true (d.colors <= 25)

let test_decomposition_same_color_nonadjacent () =
  let g = Generators.gnp_connected (Rng.create 8) 50 0.1 in
  let d = C.Decomposition.run ~rng:(Rng.create 9) g in
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      if d.color.(u) = d.color.(v) then
        check "same cluster" true (d.leader.(u) = d.leader.(v)))
    g

let test_decomposition_singleton_graph () =
  let g = Ugraph.empty 3 in
  let d = C.Decomposition.run g in
  check "valid" true (C.Decomposition.check g d);
  check "handful of colors" true (d.colors >= 1 && d.colors <= 6)

let test_clusters_of_color_partition () =
  let g = Generators.gnp_connected (Rng.create 10) 40 0.1 in
  let d = C.Decomposition.run ~rng:(Rng.create 11) g in
  let total = ref 0 in
  for c = 0 to d.colors - 1 do
    List.iter
      (fun members -> total := !total + List.length members)
      (C.Decomposition.clusters_of_color d c)
  done;
  check_int "partition" (Ugraph.n g) !total

let test_weak_diameter () =
  let g = Generators.path 10 in
  check_int "path ends" 9 (C.Decomposition.weak_diameter g [ 0; 9 ]);
  check_int "empty" 0 (C.Decomposition.weak_diameter g [])

let prop_decomposition_valid =
  QCheck.Test.make ~name:"decomposition always valid" ~count:15
    QCheck.(pair (int_range 1 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Generators.gnp (Rng.create seed) n 0.15 in
      let d = C.Decomposition.run ~rng:(Rng.create (seed + 1)) g in
      C.Decomposition.check g d)

let test_decomposition_custom_parameters () =
  let g = Generators.gnp_connected (Rng.create 12) 40 0.1 in
  List.iter
    (fun (p, cap) ->
      let d = C.Decomposition.run ~rng:(Rng.create 13) ~p ~radius_cap:cap g in
      check "valid under params" true (C.Decomposition.check g d))
    [ (0.3, 4); (0.7, 10); (0.5, 2) ]

let test_randomness_deterministic () =
  let a = C.Randomness.vote_value ~seed:5 ~vertex:7 ~iteration:3 ~bound:1000 in
  let b = C.Randomness.vote_value ~seed:5 ~vertex:7 ~iteration:3 ~bound:1000 in
  check_int "reproducible" a b;
  check "in range" true (a >= 1 && a <= 1000);
  let c = C.Randomness.vote_value ~seed:5 ~vertex:8 ~iteration:3 ~bound:1000 in
  let d = C.Randomness.vote_value ~seed:5 ~vertex:7 ~iteration:4 ~bound:1000 in
  (* overwhelmingly distinct across coordinates *)
  check "varies" true (a <> c || a <> d);
  check "bound helper" true (C.Randomness.vote_bound ~n:10 >= 10_000)

(* ------------------------------------------------------------------ *)
(* Epsilon spanner *)

let small_instances =
  [
    ("K7", Generators.complete 7, 2);
    ("gnp10_k2", Generators.gnp_connected (Rng.create 1) 10 0.4, 2);
    ("gnp10_k3", Generators.gnp_connected (Rng.create 2) 10 0.35, 3);
    ("cycle8_k4", Generators.cycle 8, 4);
    ("grid3x3_k2", Generators.grid 3 3, 2);
  ]

let test_eps_valid_spanner () =
  List.iter
    (fun (name, g, k) ->
      let r = C.Epsilon_spanner.run ~rng:(Rng.create 5) ~epsilon:0.5 ~k g in
      check (name ^ " valid") true (C.Spanner_check.is_spanner g r.spanner ~k))
    small_instances

let test_eps_near_optimal () =
  List.iter
    (fun (name, g, k) ->
      let r = C.Epsilon_spanner.run ~rng:(Rng.create 6) ~epsilon:0.25 ~k g in
      let opt =
        match
          C.Exact.min_k_spanner ~targets:(Ugraph.edge_set g)
            ~usable:(Ugraph.edge_set g) ~n:(Ugraph.n g) ~k ()
        with
        | Some s -> Edge.Set.cardinal s
        | None -> Alcotest.fail "spanner must exist"
      in
      check
        (name ^ " within 1+eps")
        true
        (float_of_int (Edge.Set.cardinal r.spanner)
        <= (1.25 *. float_of_int opt) +. 1e-9))
    small_instances

let test_eps_tight_epsilon_is_optimal () =
  (* With eps small enough on a tiny instance, the result is optimal. *)
  let g = Generators.gnp_connected (Rng.create 3) 9 0.5 in
  let r = C.Epsilon_spanner.run ~rng:(Rng.create 7) ~epsilon:0.05 ~k:2 g in
  let opt = C.Exact.min_2_spanner_size g in
  check "optimal" true (Edge.Set.cardinal r.spanner <= opt)

let test_eps_rejects_bad_arguments () =
  let g = Generators.path 3 in
  check "eps<=0" true
    (try ignore (C.Epsilon_spanner.run ~epsilon:0.0 ~k:2 g); false
     with Invalid_argument _ -> true);
  check "k<1" true
    (try ignore (C.Epsilon_spanner.run ~epsilon:0.5 ~k:0 g); false
     with Invalid_argument _ -> true)

let test_eps_rounds_reported () =
  let g = Generators.complete 6 in
  let r = C.Epsilon_spanner.run ~rng:(Rng.create 8) ~epsilon:0.5 ~k:2 g in
  check "positive accounting" true (r.rounds > 0 && r.colors >= 1 && r.r >= 1)

let prop_eps_always_valid =
  QCheck.Test.make ~name:"(1+eps) result is always a k-spanner" ~count:8
    QCheck.(pair (int_range 2 3) (int_range 0 10_000))
    (fun (k, seed) ->
      let g = Generators.gnp_connected (Rng.create seed) 9 0.4 in
      let r =
        C.Epsilon_spanner.run ~rng:(Rng.create (seed + 1)) ~epsilon:0.5 ~k g
      in
      C.Spanner_check.is_spanner g r.spanner ~k)

let () =
  Alcotest.run "local_model"
    [
      ( "decomposition",
        [
          Alcotest.test_case "valid" `Quick test_decomposition_valid_on_families;
          Alcotest.test_case "all clustered" `Quick
            test_decomposition_all_clustered;
          Alcotest.test_case "few colors" `Quick
            test_decomposition_color_count_logarithmic;
          Alcotest.test_case "same color nonadjacent" `Quick
            test_decomposition_same_color_nonadjacent;
          Alcotest.test_case "no edges" `Quick test_decomposition_singleton_graph;
          Alcotest.test_case "partition" `Quick test_clusters_of_color_partition;
          Alcotest.test_case "weak diameter" `Quick test_weak_diameter;
          QCheck_alcotest.to_alcotest prop_decomposition_valid;
          Alcotest.test_case "custom parameters" `Quick
            test_decomposition_custom_parameters;
          Alcotest.test_case "shared randomness" `Quick
            test_randomness_deterministic;
        ] );
      ( "epsilon",
        [
          Alcotest.test_case "valid" `Quick test_eps_valid_spanner;
          Alcotest.test_case "near optimal" `Quick test_eps_near_optimal;
          Alcotest.test_case "tight epsilon" `Quick
            test_eps_tight_epsilon_is_optimal;
          Alcotest.test_case "bad arguments" `Quick test_eps_rejects_bad_arguments;
          Alcotest.test_case "rounds reported" `Quick test_eps_rounds_reported;
          QCheck_alcotest.to_alcotest prop_eps_always_valid;
        ] );
    ]
