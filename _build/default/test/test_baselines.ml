(* Tests for the baselines: Kortsarz-Peleg sequential greedy and the
   Baswana-Sen (2k-1)-spanner. *)

open Grapho
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Kp_greedy *)

let test_greedy_valid_on_families () =
  List.iter
    (fun (name, g) ->
      let r = C.Kp_greedy.run g in
      check (name ^ " valid") true (C.Spanner_check.is_spanner g r.spanner ~k:2))
    [
      ("complete", Generators.complete 20);
      ("bipartite", Generators.complete_bipartite 6 8);
      ("caveman", Generators.caveman (Rng.create 1) 5 6 0.05);
      ("gnp", Generators.gnp_connected (Rng.create 2) 50 0.2);
      ("tree", Generators.random_tree (Rng.create 3) 30);
    ]

let test_greedy_complete_graph_optimal () =
  (* One full star is the optimal 2-spanner of K_n; greedy finds it. *)
  let g = Generators.complete 20 in
  let r = C.Kp_greedy.run g in
  check_int "single star" 19 (Edge.Set.cardinal r.spanner);
  check_int "one star added" 1 r.stars_added

let test_greedy_near_optimal_small () =
  for seed = 0 to 6 do
    let g = Generators.gnp_connected (Rng.create (10 + seed)) 9 0.45 in
    let r = C.Kp_greedy.run g in
    let opt = C.Exact.min_2_spanner_size g in
    check "within log factor" true
      (float_of_int (Edge.Set.cardinal r.spanner)
      <= C.Two_spanner.ratio_bound g *. float_of_int opt)
  done

let test_greedy_weighted () =
  for seed = 0 to 3 do
    let g = Generators.gnp_connected (Rng.create (20 + seed)) 25 0.25 in
    let w =
      Generators.random_weights_with_zeros (Rng.create seed) g
        ~zero_fraction:0.2 ~max_weight:6
    in
    let r = C.Kp_greedy.run ~weights:w g in
    check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2);
    check "cost consistent" true
      (Float.abs (r.cost -. Weights.cost w r.spanner) < 1e-9)
  done

let test_greedy_weighted_beats_paying () =
  (* Free edges should be used: spanner cost must ignore zero edges. *)
  let g = Generators.complete 8 in
  let w = Weights.of_list ~default:1.0 (List.init 7 (fun i -> (0, i + 1, 0.0))) in
  let r = C.Kp_greedy.run ~weights:w g in
  check "zero cost solution" true (r.cost = 0.0)

let test_greedy_client_server () =
  let g = Generators.gnp_connected (Rng.create 30) 30 0.25 in
  let clients, servers =
    Generators.random_client_server (Rng.create 31) g ~client_fraction:0.6
      ~server_fraction:0.7
  in
  let r = C.Kp_greedy.run ~targets:clients ~usable:servers g in
  check "spanner within servers" true (Edge.Set.subset r.spanner servers);
  check "coverable covered" true
    (C.Spanner_check.is_spanner_of_targets ~n:(Ugraph.n g)
       ~targets:(Edge.Set.diff clients r.uncoverable)
       r.spanner ~k:2)

let test_greedy_vs_distributed_consistency () =
  (* Both are O(log)-approximations: sizes within a moderate factor on
     a compressible family. *)
  let g = Generators.caveman (Rng.create 5) 6 7 0.02 in
  let greedy = Edge.Set.cardinal (C.Kp_greedy.run g).spanner in
  let dist =
    Edge.Set.cardinal (C.Two_spanner.run ~rng:(Rng.create 6) g).spanner
  in
  check "same ballpark" true (dist <= 6 * greedy && greedy <= dist * 6 + 10)

let prop_greedy_always_valid =
  QCheck.Test.make ~name:"greedy always yields a 2-spanner" ~count:20
    QCheck.(pair (int_range 2 25) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Generators.gnp_connected (Rng.create seed) n 0.3 in
      let r = C.Kp_greedy.run g in
      C.Spanner_check.is_spanner g r.spanner ~k:2)

let prop_greedy_no_worse_than_all_edges =
  QCheck.Test.make ~name:"greedy never larger than the graph" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Generators.gnp_connected (Rng.create seed) 20 0.4 in
      Edge.Set.cardinal (C.Kp_greedy.run g).spanner <= Ugraph.m g)

(* ------------------------------------------------------------------ *)
(* Baswana-Sen *)

let test_bs_stretch_always_holds () =
  List.iter
    (fun k ->
      for seed = 0 to 4 do
        let g = Generators.gnp_connected (Rng.create (seed * 7 + k)) 60 0.2 in
        let r = C.Baswana_sen.run ~rng:(Rng.create seed) ~k g in
        let stretch = C.Spanner_check.stretch g r.spanner in
        check "stretch <= 2k-1" true (stretch <= (2 * k) - 1)
      done)
    [ 1; 2; 3; 4 ]

let test_bs_k1_takes_everything () =
  let g = Generators.gnp_connected (Rng.create 3) 30 0.2 in
  let r = C.Baswana_sen.run ~rng:(Rng.create 4) ~k:1 g in
  check_int "all edges" (Ugraph.m g) (Edge.Set.cardinal r.spanner)

let test_bs_sparsifies_dense_graphs () =
  let g = Generators.gnp_connected (Rng.create 5) 120 0.4 in
  let r = C.Baswana_sen.run ~rng:(Rng.create 6) ~k:3 g in
  check "sparser than input" true
    (Edge.Set.cardinal r.spanner < Ugraph.m g / 2)

let test_bs_size_within_expectation_slack () =
  (* Expected size O(k n^{1+1/k}); allow factor 4 slack on one run. *)
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (Rng.create (40 + seed)) 100 0.3 in
    let r = C.Baswana_sen.run ~rng:(Rng.create seed) ~k:2 g in
    check "size sane" true
      (float_of_int (Edge.Set.cardinal r.spanner)
      <= 4.0 *. C.Baswana_sen.expected_size_bound ~n:100 ~k:2)
  done

let test_bs_connected_preserved () =
  let g = Generators.gnp_connected (Rng.create 7) 50 0.15 in
  let r = C.Baswana_sen.run ~rng:(Rng.create 8) ~k:3 g in
  let sub = Ugraph.of_edge_set ~n:50 r.spanner in
  check "spanner connected" true (Traversal.is_connected sub)

let test_bs_rounds_is_k () =
  let g = Generators.cycle 10 in
  let r = C.Baswana_sen.run ~k:3 g in
  check_int "k rounds" 3 r.rounds

let prop_bs_stretch =
  QCheck.Test.make ~name:"Baswana-Sen stretch bound is never violated"
    ~count:25
    QCheck.(pair (int_range 1 4) (int_range 0 10_000))
    (fun (k, seed) ->
      let g = Generators.gnp_connected (Rng.create seed) 30 0.25 in
      let r = C.Baswana_sen.run ~rng:(Rng.create (seed + 1)) ~k g in
      C.Spanner_check.stretch g r.spanner <= (2 * k) - 1)

let prop_bs_subset =
  QCheck.Test.make ~name:"Baswana-Sen spanner is a subgraph" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Generators.gnp_connected (Rng.create seed) 25 0.3 in
      let r = C.Baswana_sen.run ~rng:(Rng.create (seed + 1)) ~k:2 g in
      Edge.Set.subset r.spanner (Ugraph.edge_set g))

(* ------------------------------------------------------------------ *)
(* Elkin-Neiman *)

let test_en_stretch_always_holds () =
  List.iter
    (fun k ->
      for seed = 0 to 4 do
        let g = Generators.gnp_connected (Rng.create (seed * 11 + k)) 60 0.2 in
        let r = C.Elkin_neiman.run ~seed ~k g in
        check "stretch" true (C.Spanner_check.stretch g r.spanner <= (2 * k) - 1)
      done)
    [ 2; 3; 4 ]

let test_en_rounds_at_most_k () =
  let g = Generators.gnp_connected (Rng.create 3) 100 0.15 in
  let r = C.Elkin_neiman.run ~seed:1 ~k:4 g in
  (* Values go negative beyond distance r_u < k, so the flooding
     settles within k rounds (plus the final silent one). *)
  check "rounds <= k+1" true (r.rounds <= 5)

let test_en_sparsifies () =
  let g = Generators.gnp_connected (Rng.create 4) 150 0.3 in
  let r = C.Elkin_neiman.run ~seed:2 ~k:3 g in
  check "sparser" true (Edge.Set.cardinal r.spanner < Ugraph.m g / 2);
  check "subset" true (Edge.Set.subset r.spanner (Ugraph.edge_set g))

let prop_en_stretch =
  QCheck.Test.make ~name:"Elkin-Neiman stretch never violated" ~count:20
    QCheck.(pair (int_range 2 4) (int_range 0 10_000))
    (fun (k, seed) ->
      let g = Generators.gnp_connected (Rng.create seed) 25 0.3 in
      let r = C.Elkin_neiman.run ~seed:(seed + 1) ~k g in
      C.Spanner_check.stretch g r.spanner <= (2 * k) - 1)

let () =
  Alcotest.run "baselines"
    [
      ( "kp_greedy",
        [
          Alcotest.test_case "valid" `Quick test_greedy_valid_on_families;
          Alcotest.test_case "complete optimal" `Quick
            test_greedy_complete_graph_optimal;
          Alcotest.test_case "near optimal" `Quick test_greedy_near_optimal_small;
          Alcotest.test_case "weighted" `Quick test_greedy_weighted;
          Alcotest.test_case "free edges" `Quick test_greedy_weighted_beats_paying;
          Alcotest.test_case "client-server" `Quick test_greedy_client_server;
          Alcotest.test_case "vs distributed" `Quick
            test_greedy_vs_distributed_consistency;
          QCheck_alcotest.to_alcotest prop_greedy_always_valid;
          QCheck_alcotest.to_alcotest prop_greedy_no_worse_than_all_edges;
        ] );
      ( "baswana_sen",
        [
          Alcotest.test_case "stretch" `Quick test_bs_stretch_always_holds;
          Alcotest.test_case "k=1" `Quick test_bs_k1_takes_everything;
          Alcotest.test_case "sparsifies" `Quick test_bs_sparsifies_dense_graphs;
          Alcotest.test_case "size" `Quick test_bs_size_within_expectation_slack;
          Alcotest.test_case "connected" `Quick test_bs_connected_preserved;
          Alcotest.test_case "rounds" `Quick test_bs_rounds_is_k;
          QCheck_alcotest.to_alcotest prop_bs_stretch;
          QCheck_alcotest.to_alcotest prop_bs_subset;
        ] );
      ( "elkin_neiman",
        [
          Alcotest.test_case "stretch" `Quick test_en_stretch_always_holds;
          Alcotest.test_case "rounds" `Quick test_en_rounds_at_most_k;
          Alcotest.test_case "sparsifies" `Quick test_en_sparsifies;
          QCheck_alcotest.to_alcotest prop_en_stretch;
        ] );
    ]
