(* Tests for Dinic max-flow and Goldberg maximum-density subgraph. *)

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Maxflow *)

let test_single_edge () =
  let net = Netflow.Maxflow.create 2 in
  Netflow.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3.5;
  check_float "flow" 3.5 (Netflow.Maxflow.max_flow net ~s:0 ~t:1)

let test_series_bottleneck () =
  let net = Netflow.Maxflow.create 3 in
  Netflow.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5.0;
  Netflow.Maxflow.add_edge net ~src:1 ~dst:2 ~cap:2.0;
  check_float "bottleneck" 2.0 (Netflow.Maxflow.max_flow net ~s:0 ~t:2)

let test_parallel_paths () =
  let net = Netflow.Maxflow.create 4 in
  Netflow.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3.0;
  Netflow.Maxflow.add_edge net ~src:1 ~dst:3 ~cap:3.0;
  Netflow.Maxflow.add_edge net ~src:0 ~dst:2 ~cap:4.0;
  Netflow.Maxflow.add_edge net ~src:2 ~dst:3 ~cap:1.0;
  check_float "sum of paths" 4.0 (Netflow.Maxflow.max_flow net ~s:0 ~t:3)

let test_classic_network () =
  (* CLRS figure: max flow 23. *)
  let net = Netflow.Maxflow.create 6 in
  let edges =
    [ (0, 1, 16.); (0, 2, 13.); (1, 2, 10.); (2, 1, 4.); (1, 3, 12.);
      (3, 2, 9.); (2, 4, 14.); (4, 3, 7.); (3, 5, 20.); (4, 5, 4.) ]
  in
  List.iter
    (fun (src, dst, cap) -> Netflow.Maxflow.add_edge net ~src ~dst ~cap)
    edges;
  check_float "CLRS" 23.0 (Netflow.Maxflow.max_flow net ~s:0 ~t:5)

let test_min_cut_side () =
  let net = Netflow.Maxflow.create 3 in
  Netflow.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1.0;
  Netflow.Maxflow.add_edge net ~src:1 ~dst:2 ~cap:100.0;
  ignore (Netflow.Maxflow.max_flow net ~s:0 ~t:2);
  let side = Netflow.Maxflow.min_cut_side net ~s:0 in
  check "s side" true side.(0);
  check "cut after bottleneck" false side.(1);
  check "t side" false side.(2)

let test_disconnected_flow () =
  let net = Netflow.Maxflow.create 3 in
  Netflow.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5.0;
  check_float "no path" 0.0 (Netflow.Maxflow.max_flow net ~s:0 ~t:2)

let test_negative_capacity_rejected () =
  let net = Netflow.Maxflow.create 2 in
  check "raises" true
    (try
       Netflow.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:(-1.0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Densest subgraph *)

let test_densest_triangle_plus_pendant () =
  (* Triangle 0-1-2 with pendant 3: both the triangle and the whole
     graph achieve the maximum density 1. *)
  let edges = [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  match Netflow.Densest.densest_subset ~n:4 ~edges () with
  | Some (subset, d) ->
      check "contains triangle" true
        (List.for_all (fun v -> List.mem v subset) [ 0; 1; 2 ]);
      check_float "density 1" 1.0 d
  | None -> Alcotest.fail "expected a subset"

let test_densest_empty () =
  check "no edges -> none" true
    (Netflow.Densest.densest_subset ~n:5 ~edges:[] () = None)

let test_densest_clique_inside_sparse () =
  (* K4 on 0..3 (density 1.5) dangling path 4-5-6. *)
  let edges =
    [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (3, 4); (4, 5); (5, 6) ]
  in
  match Netflow.Densest.densest_subset ~n:7 ~edges () with
  | Some (subset, d) ->
      Alcotest.(check (list int)) "K4" [ 0; 1; 2; 3 ] subset;
      check_float "density" 1.5 d
  | None -> Alcotest.fail "expected a subset"

let test_densest_with_weights () =
  (* One heavy node makes the pair (0,1) denser than the triangle. *)
  let edges = [ (0, 1); (1, 2); (0, 2) ] in
  let weights = [| 1.0; 1.0; 10.0 |] in
  match Netflow.Densest.densest_subset ~weights ~n:3 ~edges () with
  | Some (subset, d) ->
      Alcotest.(check (list int)) "skip heavy" [ 0; 1 ] subset;
      check_float "density" 0.5 d
  | None -> Alcotest.fail "expected a subset"

let test_densest_with_bonuses () =
  (* No edges, but node 2 has a bonus. *)
  let bonuses = [| 0.0; 0.0; 4.0 |] in
  match Netflow.Densest.densest_subset ~bonuses ~n:3 ~edges:[] () with
  | Some (subset, d) ->
      Alcotest.(check (list int)) "bonus node" [ 2 ] subset;
      check_float "density" 4.0 d
  | None -> Alcotest.fail "expected a subset"

let test_density_of () =
  let edges = [ (0, 1); (1, 2); (0, 2) ] in
  check_float "triangle" 1.0 (Netflow.Densest.density_of ~edges [ 0; 1; 2 ]);
  check_float "pair" 0.5 (Netflow.Densest.density_of ~edges [ 0; 1 ])

let random_instance seed =
  let rng = Grapho.Rng.create seed in
  let n = 2 + Grapho.Rng.int rng 8 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Grapho.Rng.float rng 1.0 < 0.45 then edges := (u, v) :: !edges
    done
  done;
  (n, !edges, rng)

let prop_flow_matches_brute_density =
  QCheck.Test.make ~name:"flow densest = brute force (unit weights)"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n, edges, _ = random_instance seed in
      match
        ( Netflow.Densest.densest_subset ~n ~edges (),
          Netflow.Densest.brute_force ~n ~edges () )
      with
      | None, None -> true
      | Some (_, d1), Some (_, d2) -> Float.abs (d1 -. d2) < 1e-9
      | _ -> false)

let prop_flow_matches_brute_weighted =
  QCheck.Test.make ~name:"flow densest = brute force (weights + bonuses)"
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n, edges, rng = random_instance seed in
      let weights =
        Array.init n (fun _ -> 0.5 +. Grapho.Rng.float rng 3.0)
      in
      let bonuses =
        Array.init n (fun _ -> float_of_int (Grapho.Rng.int rng 3))
      in
      match
        ( Netflow.Densest.densest_subset ~weights ~bonuses ~n ~edges (),
          Netflow.Densest.brute_force ~weights ~bonuses ~n ~edges () )
      with
      | None, None -> true
      | Some (_, d1), Some (_, d2) -> Float.abs (d1 -. d2) < 1e-6
      | _ -> false)

let prop_returned_subset_has_returned_density =
  QCheck.Test.make ~name:"reported density is exact for reported subset"
    ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n, edges, _ = random_instance seed in
      match Netflow.Densest.densest_subset ~n ~edges () with
      | None -> edges = []
      | Some (subset, d) ->
          Float.abs (Netflow.Densest.density_of ~edges subset -. d) < 1e-9)

let () =
  Alcotest.run "netflow"
    [
      ( "maxflow",
        [
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "series" `Quick test_series_bottleneck;
          Alcotest.test_case "parallel" `Quick test_parallel_paths;
          Alcotest.test_case "classic" `Quick test_classic_network;
          Alcotest.test_case "min cut side" `Quick test_min_cut_side;
          Alcotest.test_case "disconnected" `Quick test_disconnected_flow;
          Alcotest.test_case "negative rejected" `Quick
            test_negative_capacity_rejected;
        ] );
      ( "densest",
        [
          Alcotest.test_case "triangle" `Quick
            test_densest_triangle_plus_pendant;
          Alcotest.test_case "empty" `Quick test_densest_empty;
          Alcotest.test_case "clique inside sparse" `Quick
            test_densest_clique_inside_sparse;
          Alcotest.test_case "weights" `Quick test_densest_with_weights;
          Alcotest.test_case "bonuses" `Quick test_densest_with_bonuses;
          Alcotest.test_case "density_of" `Quick test_density_of;
          QCheck_alcotest.to_alcotest prop_flow_matches_brute_density;
          QCheck_alcotest.to_alcotest prop_flow_matches_brute_weighted;
          QCheck_alcotest.to_alcotest prop_returned_subset_has_returned_density;
        ] );
    ]
