test/test_local_protocol.mli:
