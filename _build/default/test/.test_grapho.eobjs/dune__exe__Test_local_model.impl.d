test/test_local_model.ml: Alcotest Array Edge Generators Grapho List QCheck QCheck_alcotest Rng Spanner_core Ugraph
