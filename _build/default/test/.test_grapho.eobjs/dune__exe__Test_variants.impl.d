test/test_variants.ml: Alcotest Dgraph Edge Float Generators Grapho List QCheck QCheck_alcotest Rng Spanner_core Ugraph Weights
