test/test_local_model.mli:
