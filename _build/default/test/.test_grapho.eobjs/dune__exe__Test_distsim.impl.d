test/test_distsim.ml: Alcotest Array Distsim Edge Generators Grapho Hashtbl List Option QCheck QCheck_alcotest Rng Traversal Ugraph
