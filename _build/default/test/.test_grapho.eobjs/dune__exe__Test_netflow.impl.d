test/test_netflow.ml: Alcotest Array Float Grapho List Netflow QCheck QCheck_alcotest
