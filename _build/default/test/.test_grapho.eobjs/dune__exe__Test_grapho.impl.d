test/test_grapho.ml: Alcotest Array Dgraph Edge Generators Graph_io Grapho List Power QCheck QCheck_alcotest Rng String Traversal Ugraph Weights
