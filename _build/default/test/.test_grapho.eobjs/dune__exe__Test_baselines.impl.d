test/test_baselines.ml: Alcotest Edge Float Generators Grapho List QCheck QCheck_alcotest Rng Spanner_core Traversal Ugraph Weights
