test/test_mds.ml: Alcotest Distsim Float Generators Grapho List Printf QCheck QCheck_alcotest Rng Spanner_core Ugraph
