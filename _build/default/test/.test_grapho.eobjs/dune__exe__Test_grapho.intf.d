test/test_grapho.mli:
