test/test_local_protocol.ml: Alcotest Array Dgraph Edge Generators Grapho List Printf QCheck QCheck_alcotest Rng Spanner_core Ugraph Weights
