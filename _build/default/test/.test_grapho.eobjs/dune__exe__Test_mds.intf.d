test/test_mds.mli:
