test/test_spanner.ml: Alcotest Array Dgraph Edge Generators Grapho List QCheck QCheck_alcotest Rng Spanner_core Ugraph
