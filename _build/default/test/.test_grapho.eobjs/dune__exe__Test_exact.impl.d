test/test_exact.ml: Alcotest Dgraph Edge Generators Grapho List Lowerbound QCheck QCheck_alcotest Rng Spanner_core Ugraph Weights
