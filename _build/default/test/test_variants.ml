(* Tests for the directed, weighted and client-server 2-spanner
   variants (Theorems 4.9, 4.12, 4.15). *)

open Grapho
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Directed *)

let directed_families =
  [
    ("bidirect_K12", Generators.bidirect (Generators.complete 12));
    ( "orient_gnp",
      Generators.random_orientation (Rng.create 1)
        (Generators.gnp_connected (Rng.create 2) 40 0.2) );
    ( "bidirect_gnp",
      Generators.bidirect (Generators.gnp_connected (Rng.create 3) 30 0.25) );
    ( "dag", Generators.random_dag_orientation
        (Generators.gnp_connected (Rng.create 4) 30 0.25) );
    ("single_arc", Dgraph.of_edges ~n:2 [ (0, 1) ]);
  ]

let test_directed_valid () =
  List.iter
    (fun (name, dg) ->
      let r = C.Directed_two_spanner.run ~rng:(Rng.create 7) dg in
      check (name ^ " valid") true
        (C.Spanner_check.is_directed_spanner dg r.spanner ~k:2);
      check (name ^ " subset") true
        (Edge.Directed.Set.subset r.spanner (Dgraph.edge_set dg)))
    directed_families

let test_directed_bidirected_complete_quality () =
  (* Both orientations of a single star 2-span the bidirected clique:
     optimum is 2(n-1). *)
  let dg = Generators.bidirect (Generators.complete 15) in
  let r = C.Directed_two_spanner.run ~rng:(Rng.create 5) dg in
  check "double star found" true
    (Edge.Directed.Set.cardinal r.spanner <= 4 * 14)

let test_directed_antiparallel_pair () =
  let dg = Dgraph.of_edges ~n:2 [ (0, 1); (1, 0) ] in
  let r = C.Directed_two_spanner.run dg in
  check_int "both kept" 2 (Edge.Directed.Set.cardinal r.spanner)

let test_directed_ratio_vs_exact () =
  for seed = 0 to 4 do
    let dg =
      Generators.bidirect (Generators.gnp_connected (Rng.create (30 + seed)) 8 0.5)
    in
    let r = C.Directed_two_spanner.run ~rng:(Rng.create seed) dg in
    let opt =
      Edge.Directed.Set.cardinal (C.Exact.min_directed_k_spanner dg ~k:2)
    in
    let size = Edge.Directed.Set.cardinal r.spanner in
    (* O(log m/n) guarantee with generous explicit constant. *)
    let bound =
      16.0
      *. (Float.log (float_of_int (Dgraph.m dg)) /. Float.log 2.0 +. 2.0)
    in
    check "ratio bounded" true (float_of_int size <= bound *. float_of_int opt)
  done

let prop_directed_always_valid =
  QCheck.Test.make ~name:"directed 2-spanner always valid" ~count:20
    QCheck.(pair (int_range 2 20) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Generators.gnp_connected rng n 0.3 in
      let dg =
        if seed mod 2 = 0 then Generators.bidirect g
        else Generators.random_orientation rng g
      in
      let r = C.Directed_two_spanner.run ~rng:(Rng.create (seed + 1)) dg in
      C.Spanner_check.is_directed_spanner dg r.spanner ~k:2)

(* ------------------------------------------------------------------ *)
(* Weighted *)

let test_weighted_valid_and_cost () =
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (Rng.create (40 + seed)) 40 0.2 in
    let w = Generators.random_weights (Rng.create seed) g ~max_weight:8 in
    let r = C.Weighted_two_spanner.run ~rng:(Rng.create seed) g w in
    check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2);
    check "cost consistent" true
      (Float.abs (r.cost -. Weights.cost w r.spanner) < 1e-9);
    check "cost at most total" true (r.cost <= Weights.graph_cost w g +. 1e-9)
  done

let test_weighted_zero_edges_free () =
  (* All-zero weights: the spanner costs nothing. *)
  let g = Generators.complete 10 in
  let w = Weights.uniform 0.0 in
  let r = C.Weighted_two_spanner.run ~rng:(Rng.create 2) g w in
  check "zero cost" true (r.cost = 0.0);
  check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2)

let test_weighted_prefers_cheap_star () =
  (* Two stars cover K4's edges; center 0's edges are cheap, center 3's
     expensive. The algorithm should not pay for expensive edges. *)
  let g = Generators.complete 4 in
  let w =
    Weights.of_list ~default:100.0
      [ (0, 1, 1.0); (0, 2, 1.0); (0, 3, 1.0) ]
  in
  let r = C.Weighted_two_spanner.run ~rng:(Rng.create 3) g w in
  check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2);
  (* optimum: star of 0 (cost 3) + nothing else is NOT a 2-spanner of
     the expensive edges? {1,2} is 2-spanned via 0. cost 3. *)
  check "cheap" true (r.cost <= 303.0)

let test_weighted_zero_mix () =
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (Rng.create (60 + seed)) 30 0.25 in
    let w =
      Generators.random_weights_with_zeros (Rng.create seed)
        g ~zero_fraction:0.3 ~max_weight:5
    in
    let r = C.Weighted_two_spanner.run ~rng:(Rng.create seed) g w in
    check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2)
  done

let test_weighted_ratio_vs_exact () =
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (Rng.create (70 + seed)) 8 0.5 in
    let w = Generators.random_weights (Rng.create seed) g ~max_weight:4 in
    let r = C.Weighted_two_spanner.run ~rng:(Rng.create seed) g w in
    let opt = Weights.cost w (C.Exact.min_weighted_2_spanner g w) in
    let delta = float_of_int (Ugraph.max_degree g) in
    let bound = 16.0 *. (Float.log delta /. Float.log 2.0 +. 3.0) in
    check "O(log delta) ratio" true (r.cost <= bound *. opt +. 1e-9)
  done

let test_weighted_unit_weights_match_unweighted_family () =
  (* With unit weights the weighted algorithm is still a valid
     2-spanner builder of comparable size. *)
  let g = Generators.complete 15 in
  let r = C.Weighted_two_spanner.run ~rng:(Rng.create 4) g (Weights.uniform 1.0) in
  check "valid" true (C.Spanner_check.is_spanner g r.spanner ~k:2);
  check "compresses" true (Edge.Set.cardinal r.spanner < Ugraph.m g)

let prop_weighted_always_valid =
  QCheck.Test.make ~name:"weighted 2-spanner always valid" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Generators.gnp_connected rng 20 0.3 in
      let w =
        Generators.random_weights_with_zeros rng g ~zero_fraction:0.2
          ~max_weight:6
      in
      let r = C.Weighted_two_spanner.run ~rng:(Rng.create (seed + 1)) g w in
      C.Spanner_check.is_spanner g r.spanner ~k:2)

(* ------------------------------------------------------------------ *)
(* Client-server *)

let cs_instance seed n p =
  let rng = Rng.create seed in
  let g = Generators.gnp_connected rng n p in
  let clients, servers =
    Generators.random_client_server rng g ~client_fraction:0.6
      ~server_fraction:0.7
  in
  (g, clients, servers)

let test_cs_covers_coverable () =
  for seed = 0 to 4 do
    let g, clients, servers = cs_instance (80 + seed) 40 0.2 in
    let r = C.Client_server.run ~rng:(Rng.create seed) g ~clients ~servers in
    check "spanner uses servers only" true (Edge.Set.subset r.spanner servers);
    check "covers the coverable" true
      (C.Spanner_check.is_spanner_of_targets ~n:(Ugraph.n g)
         ~targets:(Edge.Set.diff clients r.uncoverable)
         r.spanner ~k:2)
  done

let test_cs_uncoverable_reported_correctly () =
  let g, clients, servers = cs_instance 99 30 0.15 in
  let r = C.Client_server.run ~rng:(Rng.create 1) g ~clients ~servers in
  (* Each reported uncoverable edge really has no server cover. *)
  Edge.Set.iter
    (fun e ->
      check "not in servers" false (Edge.Set.mem e servers);
      check "no server 2-path" false
        (C.Spanner_check.covers_edge ~n:(Ugraph.n g) servers ~k:2 e))
    r.uncoverable

let test_cs_all_edges_both_reduces_to_plain () =
  let g = Generators.complete 12 in
  let all = Ugraph.edge_set g in
  let r = C.Client_server.run ~rng:(Rng.create 2) g ~clients:all ~servers:all in
  check_int "no uncoverable" 0 (Edge.Set.cardinal r.uncoverable);
  check "valid plain 2-spanner" true
    (C.Spanner_check.is_spanner g r.spanner ~k:2)

let test_cs_disjoint_clients_servers () =
  (* Clients are a perfect matching; servers form a star that covers
     them all. *)
  let edges = [ (0, 1); (2, 3); (4, 0); (4, 1); (4, 2); (4, 3) ] in
  let g = Ugraph.of_edges ~n:5 edges in
  let clients = Edge.Set.of_list [ Edge.make 0 1; Edge.make 2 3 ] in
  let servers =
    Edge.Set.of_list
      [ Edge.make 4 0; Edge.make 4 1; Edge.make 4 2; Edge.make 4 3 ]
  in
  let r = C.Client_server.run ~rng:(Rng.create 3) g ~clients ~servers in
  check_int "all coverable" 0 (Edge.Set.cardinal r.uncoverable);
  check "covered through the star" true
    (C.Spanner_check.is_spanner_of_targets ~n:5 ~targets:clients r.spanner ~k:2)

let test_cs_edge_in_no_class () =
  (* An edge that is neither client nor server is simply ignored. *)
  let g = Generators.complete 4 in
  let clients = Edge.Set.singleton (Edge.make 0 1) in
  let servers = Edge.Set.of_list [ Edge.make 0 2; Edge.make 1 2 ] in
  let r = C.Client_server.run g ~clients ~servers in
  check "covered" true
    (C.Spanner_check.is_spanner_of_targets ~n:4 ~targets:clients r.spanner ~k:2);
  check "spanner within servers" true (Edge.Set.subset r.spanner servers)

let test_cs_ratio_bound_display () =
  let g, clients, servers = cs_instance 123 30 0.3 in
  check "positive bound" true
    (C.Client_server.ratio_bound g ~clients ~servers > 0.0)

let prop_cs_always_covers_coverable =
  QCheck.Test.make ~name:"client-server covers every coverable client"
    ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, clients, servers = cs_instance seed 20 0.3 in
      let r = C.Client_server.run ~rng:(Rng.create (seed + 1)) g ~clients ~servers in
      C.Spanner_check.is_spanner_of_targets ~n:(Ugraph.n g)
        ~targets:(Edge.Set.diff clients r.uncoverable)
        r.spanner ~k:2)

let () =
  Alcotest.run "variants"
    [
      ( "directed",
        [
          Alcotest.test_case "valid" `Quick test_directed_valid;
          Alcotest.test_case "bidirected clique" `Quick
            test_directed_bidirected_complete_quality;
          Alcotest.test_case "antiparallel" `Quick
            test_directed_antiparallel_pair;
          Alcotest.test_case "ratio vs exact" `Quick
            test_directed_ratio_vs_exact;
          QCheck_alcotest.to_alcotest prop_directed_always_valid;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "valid and cost" `Quick
            test_weighted_valid_and_cost;
          Alcotest.test_case "all zero" `Quick test_weighted_zero_edges_free;
          Alcotest.test_case "prefers cheap" `Quick
            test_weighted_prefers_cheap_star;
          Alcotest.test_case "zero mix" `Quick test_weighted_zero_mix;
          Alcotest.test_case "ratio vs exact" `Quick
            test_weighted_ratio_vs_exact;
          Alcotest.test_case "unit weights" `Quick
            test_weighted_unit_weights_match_unweighted_family;
          QCheck_alcotest.to_alcotest prop_weighted_always_valid;
        ] );
      ( "client_server",
        [
          Alcotest.test_case "covers coverable" `Quick test_cs_covers_coverable;
          Alcotest.test_case "uncoverable reported" `Quick
            test_cs_uncoverable_reported_correctly;
          Alcotest.test_case "reduces to plain" `Quick
            test_cs_all_edges_both_reduces_to_plain;
          Alcotest.test_case "matching clients" `Quick
            test_cs_disjoint_clients_servers;
          Alcotest.test_case "untyped edges ignored" `Quick
            test_cs_edge_in_no_class;
          Alcotest.test_case "ratio bound" `Quick test_cs_ratio_bound_display;
          QCheck_alcotest.to_alcotest prop_cs_always_covers_coverable;
        ] );
    ]
