(* Tests for the CONGEST minimum dominating set algorithm of Section 5
   (Theorem 5.1). *)

open Grapho
module C = Spanner_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let families =
  [
    ("path_25", Generators.path 25);
    ("cycle_24", Generators.cycle 24);
    ("star_40", Generators.star 40);
    ("complete_20", Generators.complete 20);
    ("grid_7x7", Generators.grid 7 7);
    ("gnp_80", Generators.gnp_connected (Rng.create 2) 80 0.08);
    ("pa_100", Generators.preferential_attachment (Rng.create 3) 100 3);
    ("tree_60", Generators.random_tree (Rng.create 4) 60);
  ]

let test_dominates_on_families () =
  List.iter
    (fun (name, g) ->
      let r = C.Mds.run ~rng:(Rng.create 7) g in
      check (name ^ " dominates") true
        (C.Mds.is_dominating_set g r.dominating_set))
    families

let test_star_optimal () =
  let g = Generators.star 30 in
  let r = C.Mds.run ~rng:(Rng.create 1) g in
  check_int "single center" 1 (List.length r.dominating_set);
  check_int "center is 0" 0 (List.hd r.dominating_set)

let test_complete_small () =
  let g = Generators.complete 25 in
  let r = C.Mds.run ~rng:(Rng.create 2) g in
  check "at most a few" true (List.length r.dominating_set <= 3)

let test_isolated_vertices_self_dominate () =
  let g = Ugraph.empty 6 in
  let r = C.Mds.run g in
  check_int "everyone joins" 6 (List.length r.dominating_set)

let test_congest_compliance () =
  let g = Generators.gnp_connected (Rng.create 5) 120 0.06 in
  let r = C.Mds.run ~rng:(Rng.create 6) g in
  check_int "no oversized messages" 0 r.metrics.congest_violations;
  (match Distsim.Model.bandwidth (Distsim.Model.congest ~n:120 ~c:8 ()) with
  | Some limit -> check "max bits within budget" true
      (r.metrics.max_message_bits <= limit)
  | None -> Alcotest.fail "congest model must bound bandwidth")

let test_round_bound_plausible () =
  (* O(log n log Delta) with a generous constant. *)
  List.iter
    (fun (_, g) ->
      let r = C.Mds.run ~rng:(Rng.create 8) g in
      let log2 x = Float.log (float_of_int (max 2 x)) /. Float.log 2.0 in
      let bound =
        60.0 *. (log2 (Ugraph.n g) +. 2.0)
        *. (log2 (Ugraph.max_degree g) +. 2.0)
      in
      check "rounds bounded" true (float_of_int r.metrics.rounds <= bound))
    families

let test_ratio_vs_exact_small () =
  for seed = 0 to 5 do
    let g = Generators.gnp_connected (Rng.create (20 + seed)) 14 0.25 in
    let r = C.Mds.run ~rng:(Rng.create seed) g in
    let opt = List.length (C.Exact.min_dominating_set g) in
    let delta = Ugraph.max_degree g in
    let bound =
      16.0 *. (Float.log (float_of_int (delta + 2)) /. Float.log 2.0 +. 1.0)
    in
    check "O(log delta) vs optimum" true
      (float_of_int (List.length r.dominating_set)
      <= bound *. float_of_int opt)
  done

let test_greedy_baseline () =
  List.iter
    (fun (name, g) ->
      let d = C.Mds.greedy g in
      check (name ^ " greedy dominates") true (C.Mds.is_dominating_set g d))
    families;
  check_int "greedy star" 1 (List.length (C.Mds.greedy (Generators.star 20)))

let test_deterministic_with_seed () =
  let g = Generators.gnp_connected (Rng.create 9) 50 0.1 in
  let a = C.Mds.run ~rng:(Rng.create 3) g in
  let b = C.Mds.run ~rng:(Rng.create 3) g in
  check "same set" true (a.dominating_set = b.dominating_set)

let test_is_dominating_set_detects_gap () =
  let g = Generators.path 5 in
  check "partial set rejected" false (C.Mds.is_dominating_set g [ 0 ]);
  check "full check passes" true (C.Mds.is_dominating_set g [ 1; 3 ])

let test_reference_mirror_equal () =
  (* Section 5 analogue of the E13 validation: the centralized mirror
     consumes the same randomness and must elect the same set. *)
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let a = (C.Mds.run ~rng:(Rng.create seed) g).dominating_set in
          let b = C.Mds.reference ~rng:(Rng.create seed) g in
          check (Printf.sprintf "%s seed %d" name seed) true (a = b))
        [ 1; 2 ])
    families

let prop_reference_mirror =
  QCheck.Test.make ~name:"MDS protocol = centralized mirror" ~count:15
    QCheck.(pair (int_range 1 30) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Generators.gnp (Rng.create seed) n 0.2 in
      (C.Mds.run ~rng:(Rng.create seed) g).dominating_set
      = C.Mds.reference ~rng:(Rng.create seed) g)

let prop_mds_always_dominates =
  QCheck.Test.make ~name:"MDS output always dominates" ~count:25
    QCheck.(pair (int_range 1 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Generators.gnp (Rng.create seed) n 0.15 in
      let r = C.Mds.run ~rng:(Rng.create (seed + 1)) g in
      C.Mds.is_dominating_set g r.dominating_set)

let prop_mds_never_larger_than_n =
  QCheck.Test.make ~name:"MDS is at most greedy times O(log)" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Generators.gnp_connected (Rng.create seed) 30 0.15 in
      let r = C.Mds.run ~rng:(Rng.create (seed + 1)) g in
      List.length r.dominating_set <= Ugraph.n g)

let () =
  Alcotest.run "mds"
    [
      ( "correctness",
        [
          Alcotest.test_case "families" `Quick test_dominates_on_families;
          Alcotest.test_case "star optimal" `Quick test_star_optimal;
          Alcotest.test_case "complete" `Quick test_complete_small;
          Alcotest.test_case "isolated" `Quick
            test_isolated_vertices_self_dominate;
          Alcotest.test_case "detects gap" `Quick
            test_is_dominating_set_detects_gap;
        ] );
      ( "model",
        [
          Alcotest.test_case "congest compliant" `Quick test_congest_compliance;
          Alcotest.test_case "round bound" `Quick test_round_bound_plausible;
          Alcotest.test_case "deterministic" `Quick test_deterministic_with_seed;
        ] );
      ( "quality",
        [
          Alcotest.test_case "ratio vs exact" `Quick test_ratio_vs_exact_small;
          Alcotest.test_case "greedy baseline" `Quick test_greedy_baseline;
          Alcotest.test_case "mirror equality" `Quick
            test_reference_mirror_equal;
          QCheck_alcotest.to_alcotest prop_reference_mirror;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mds_always_dominates; prop_mds_never_larger_than_n ] );
    ]
