(* Experiment harness.

   The paper (Censor-Hillel & Dory, PODC 2018) is a theory paper: its
   "evaluation" is a set of theorems and three constructions (Figures
   1-3). Each experiment below regenerates the quantitative content of
   one of them -- measured approximation ratios and round counts for
   the algorithmic theorems, machine-checked construction properties
   and bound curves for the hardness theorems. EXPERIMENTS.md records
   paper-vs-measured for each. Run with a list of experiment ids
   (e.g. `dune exec bench/main.exe -- e1 e8`) or nothing for all;
   `micro` appends the Bechamel micro-benchmarks. *)

(* Report formatting, graph families, anchors, timing helpers and the
   --json/--trace writer live in Harness (bench/harness.ml). *)
open Grapho
open Harness
module C = Spanner_core
module L = Lowerbound

(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1" "Theorem 1.3: 2-spanner approximation ratio vs O(log m/n)";
  printf "%-18s %5s %6s %6s %7s %7s %9s %8s\n" "family" "n" "m" "dist"
    "greedy" "d/g" "log2(m/n)" "bound";
  List.iter
    (fun (name, g) ->
      let d = C.Two_spanner.run ~rng:(rng 11) g in
      let gr = C.Kp_greedy.run g in
      let ds = Edge.Set.cardinal d.spanner
      and gs = Edge.Set.cardinal gr.spanner in
      assert (C.Spanner_check.is_spanner g d.spanner ~k:2);
      printf "%-18s %5d %6d %6d %7d %7.2f %9.2f %8.1f\n" name (Ugraph.n g)
        (Ugraph.m g) ds gs
        (float_of_int ds /. float_of_int (max 1 gs))
        (log2 (float_of_int (Ugraph.m g) /. float_of_int (Ugraph.n g)))
        (C.Two_spanner.ratio_bound g))
    (ratio_families ());
  printf "\nsmall instances vs exact optimum:\n";
  printf "%-10s %3s %4s %5s %6s %6s %7s\n" "instance" "n" "m" "opt" "dist"
    "greedy" "ratio";
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (rng (100 + seed)) 10 0.45 in
    let opt = C.Exact.min_2_spanner_size g in
    let d = Edge.Set.cardinal (C.Two_spanner.run ~rng:(rng seed) g).spanner in
    let gr = Edge.Set.cardinal (C.Kp_greedy.run g).spanner in
    printf "%-10s %3d %4d %5d %6d %6d %7.2f\n"
      (Printf.sprintf "gnp#%d" seed)
      (Ugraph.n g) (Ugraph.m g) opt d gr
      (float_of_int d /. float_of_int opt)
  done

let e2 () =
  section "E2" "Theorem 1.3: rounds vs O(log n log Delta)";
  printf "%-16s %5s %6s %6s %6s %7s %17s\n" "family" "n" "m" "Delta" "iters"
    "rounds" "log2(n)*log2(D)";
  let sweep =
    List.concat_map
      (fun n ->
        [
          ( Printf.sprintf "gnp_dense_%d" n,
            Generators.gnp_connected (rng n) n (40.0 /. float_of_int n) );
          ( Printf.sprintf "ladder_%d" n,
            Generators.clique_ladder (rng (n + 1)) n );
          ( Printf.sprintf "pa_%d" n,
            Generators.preferential_attachment (rng (n + 2)) n 15 );
        ])
      [ 100; 200; 400; 800 ]
  in
  List.iter
    (fun (name, g) ->
      let d = C.Two_spanner.run ~rng:(rng 21) g in
      printf "%-16s %5d %6d %6d %6d %7d %17.1f\n" name (Ugraph.n g)
        (Ugraph.m g) (Ugraph.max_degree g) d.iterations d.rounds
        (flog2 (Ugraph.n g) *. flog2 (Ugraph.max_degree g)))
    sweep

let e3 () =
  section "E3" "Theorem 4.9: directed 2-spanner (2-approx densest star)";
  printf "%-18s %5s %6s %6s %6s %7s\n" "family" "n" "m" "size" "iters" "valid";
  List.iter
    (fun (name, dg) ->
      let r = C.Directed_two_spanner.run ~rng:(rng 31) dg in
      printf "%-18s %5d %6d %6d %6d %7b\n" name (Dgraph.n dg) (Dgraph.m dg)
        (Edge.Directed.Set.cardinal r.spanner)
        r.iterations
        (C.Spanner_check.is_directed_spanner dg r.spanner ~k:2))
    [
      ("bidirect_K25", Generators.bidirect (Generators.complete 25));
      ( "bidirect_caveman",
        Generators.bidirect (Generators.caveman (rng 1) 6 7 0.03) );
      ( "orient_gnp_120",
        Generators.random_orientation (rng 2)
          (Generators.gnp_connected (rng 3) 120 0.1) );
      ( "dag_gnp_100",
        Generators.random_dag_orientation
          (Generators.gnp_connected (rng 4) 100 0.12) );
    ];
  printf "\nsmall instances vs exact optimum:\n";
  printf "%-10s %4s %5s %6s %7s\n" "instance" "m" "opt" "dist" "ratio";
  for seed = 0 to 4 do
    let dg =
      Generators.bidirect (Generators.gnp_connected (rng (40 + seed)) 8 0.5)
    in
    let opt =
      Edge.Directed.Set.cardinal (C.Exact.min_directed_k_spanner dg ~k:2)
    in
    let d =
      Edge.Directed.Set.cardinal
        (C.Directed_two_spanner.run ~rng:(rng seed) dg).spanner
    in
    printf "%-10s %4d %5d %6d %7.2f\n"
      (Printf.sprintf "bidir#%d" seed)
      (Dgraph.m dg) opt d
      (float_of_int d /. float_of_int opt)
  done

let e4 () =
  section "E4" "Theorem 4.12: weighted 2-spanner, O(log Delta) ratio";
  printf "%-16s %5s %6s %3s %9s %9s %7s %10s\n" "family" "n" "W" "D"
    "dist-cost" "greedy" "d/g" "8(log2D+3)";
  List.iter
    (fun (name, g, max_weight, zero_fraction) ->
      let w =
        Generators.random_weights_with_zeros (rng 41) g ~zero_fraction
          ~max_weight
      in
      let d = C.Weighted_two_spanner.run ~rng:(rng 42) g w in
      let gr = C.Kp_greedy.run ~weights:w g in
      assert (C.Spanner_check.is_spanner g d.spanner ~k:2);
      let delta = Ugraph.max_degree g in
      printf "%-16s %5d %6.0f %3d %9.0f %9.0f %7.2f %10.1f\n" name
        (Ugraph.n g) (Weights.ratio w g) delta d.cost gr.cost
        (d.cost /. Float.max 1.0 gr.cost)
        (8.0 *. (flog2 delta +. 3.0)))
    [
      ("complete_30", Generators.complete 30, 16, 0.0);
      ("caveman", Generators.caveman (rng 5) 7 7 0.03, 8, 0.1);
      ("gnp_100", Generators.gnp_connected (rng 6) 100 0.2, 32, 0.2);
      ("pa_150", Generators.preferential_attachment (rng 7) 150 8, 64, 0.0);
    ];
  printf "\nrounds vs O(log n log (Delta W)) as W grows (gnp_100):\n";
  printf "%6s %6s %7s %20s\n" "W" "iters" "rounds" "log2(n)*log2(D*W)";
  let g = Generators.gnp_connected (rng 8) 100 0.2 in
  List.iter
    (fun max_weight ->
      let w = Generators.random_weights (rng 43) g ~max_weight in
      let d = C.Weighted_two_spanner.run ~rng:(rng 44) g w in
      printf "%6d %6d %7d %20.1f\n" max_weight d.iterations d.rounds
        (flog2 100 *. flog2 (Ugraph.max_degree g * max_weight)))
    [ 1; 4; 16; 64; 256 ]

let e5 () =
  section "E5" "Theorem 4.15: client-server 2-spanner";
  printf "%-12s %5s %5s %5s %6s %7s %7s %12s %8s\n" "family" "|C|" "|S|"
    "unc" "dist" "greedy" "d/g" "log|C|/|VC|" "log2 Ds";
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (rng (50 + seed)) 80 0.15 in
    let clients, servers =
      Generators.random_client_server (rng (60 + seed)) g
        ~client_fraction:0.6 ~server_fraction:0.7
    in
    let d = C.Client_server.run ~rng:(rng seed) g ~clients ~servers in
    let gr = C.Kp_greedy.run ~targets:clients ~usable:servers g in
    let module Iset = Set.Make (Int) in
    let vc =
      Edge.Set.fold
        (fun e acc ->
          let u, v = Edge.endpoints e in
          Iset.add u (Iset.add v acc))
        clients Iset.empty
    in
    let delta_s =
      Ugraph.fold_vertices
        (fun v acc ->
          let deg =
            Ugraph.fold_neighbors
              (fun a u ->
                if Edge.Set.mem (Edge.make v u) servers then a + 1 else a)
              g v 0
          in
          max acc deg)
        g 0
    in
    printf "%-12s %5d %5d %5d %6d %7d %7.2f %12.2f %8.2f\n"
      (Printf.sprintf "gnp80#%d" seed)
      (Edge.Set.cardinal clients) (Edge.Set.cardinal servers)
      (Edge.Set.cardinal d.uncoverable)
      (Edge.Set.cardinal d.spanner)
      (Edge.Set.cardinal gr.spanner)
      (float_of_int (Edge.Set.cardinal d.spanner)
      /. float_of_int (max 1 (Edge.Set.cardinal gr.spanner)))
      (log2
         (float_of_int (Edge.Set.cardinal clients)
         /. float_of_int (max 1 (Iset.cardinal vc))))
      (flog2 delta_s)
  done

let e6 () =
  section "E6" "Theorem 5.1: CONGEST MDS, guaranteed O(log Delta)";
  printf "%-14s %5s %4s %5s %7s %6s %7s %8s %6s\n" "family" "n" "D" "|DS|"
    "greedy" "iters" "rounds" "max-bits" "B(n)";
  List.iter
    (fun (name, g) ->
      let r = C.Mds.run ~rng:(rng 61) g in
      let greedy = C.Mds.greedy g in
      assert (C.Mds.is_dominating_set g r.dominating_set);
      assert (r.metrics.congest_violations = 0);
      let budget =
        match
          Distsim.Model.bandwidth
            (Distsim.Model.congest ~n:(max 2 (Ugraph.n g)) ~c:8 ())
        with
        | Some b -> b
        | None -> -1
      in
      printf "%-14s %5d %4d %5d %7d %6d %7d %8d %6d\n" name (Ugraph.n g)
        (Ugraph.max_degree g)
        (List.length r.dominating_set)
        (List.length greedy) r.iterations r.metrics.rounds
        r.metrics.max_message_bits budget)
    [
      ("path_200", Generators.path 200);
      ("grid_15x15", Generators.grid 15 15);
      ("gnp_300", Generators.gnp_connected (rng 1) 300 0.03);
      ("pa_400_5", Generators.preferential_attachment (rng 2) 400 5);
      ("caveman", Generators.caveman (rng 3) 10 8 0.05);
      ("star_300", Generators.star 300);
    ];
  printf "\nsmall instances vs exact optimum:\n";
  printf "%-8s %4s %5s %6s %7s\n" "inst" "opt" "dist" "greedy" "ratio";
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (rng (70 + seed)) 14 0.25 in
    let opt = List.length (C.Exact.min_dominating_set g) in
    let d = List.length (C.Mds.run ~rng:(rng seed) g).dominating_set in
    let gr = List.length (C.Mds.greedy g) in
    printf "%-8s %4d %5d %6d %7.2f\n"
      (Printf.sprintf "gnp#%d" seed)
      opt d gr
      (float_of_int d /. float_of_int opt)
  done;
  (* Mirror validation, asserted silently here (tested at length in
     the suite). *)
  let gm = Generators.gnp_connected (rng 64) 60 0.1 in
  assert (
    (C.Mds.run ~rng:(rng 65) gm).dominating_set
    = C.Mds.reference ~rng:(rng 65) gm);
  printf
    "\nvoting (guaranteed, Section 5) vs Jia-et-al coin (expected, [43]):\n";
  printf "%-12s %7s %7s %11s %11s\n" "family" "votes" "coin" "votes-iters"
    "coin-iters";
  List.iter
    (fun (name, g) ->
      let a = C.Mds.run ~rng:(rng 62) g in
      let b = C.Mds.run ~rng:(rng 63) ~selection:(C.Mds.Coin 0.5) g in
      assert (C.Mds.is_dominating_set g b.dominating_set);
      printf "%-12s %7d %7d %11d %11d\n" name
        (List.length a.dominating_set)
        (List.length b.dominating_set)
        a.iterations b.iterations)
    [
      ("grid_12x12", Generators.grid 12 12);
      ("gnp_200", Generators.gnp_connected (rng 4) 200 0.05);
      ("pa_300_4", Generators.preferential_attachment (rng 5) 300 4);
    ]

let e7 () =
  section "E7" "Theorem 1.2: (1+eps)-approximate k-spanner in LOCAL";
  printf "%-12s %2s %5s %4s %6s %9s %6s %6s\n" "instance" "k" "eps" "opt"
    "result" "(1+e)*opt" "colors" "balls";
  List.iter
    (fun (name, g, k) ->
      List.iter
        (fun epsilon ->
          let r = C.Epsilon_spanner.run ~rng:(rng 71) ~epsilon ~k g in
          let opt =
            match
              C.Exact.min_k_spanner ~targets:(Ugraph.edge_set g)
                ~usable:(Ugraph.edge_set g) ~n:(Ugraph.n g) ~k ()
            with
            | Some s -> Edge.Set.cardinal s
            | None -> -1
          in
          assert (C.Spanner_check.is_spanner g r.spanner ~k);
          printf "%-12s %2d %5.2f %4d %6d %9.1f %6d %6d\n" name k epsilon opt
            (Edge.Set.cardinal r.spanner)
            ((1.0 +. epsilon) *. float_of_int opt)
            r.colors r.balls_processed)
        [ 0.5; 0.25 ])
    [
      ("K8", Generators.complete 8, 2);
      ("gnp11_k2", Generators.gnp_connected (rng 1) 11 0.4, 2);
      ("gnp11_k3", Generators.gnp_connected (rng 2) 11 0.35, 3);
      ("cycle9_k4", Generators.cycle 9, 4);
    ];
  printf "\nweighted variant (closing remark of Section 6):\n";
  printf "%-10s %5s %8s %8s %10s\n" "instance" "eps" "opt" "result"
    "(1+e)*opt";
  for seed = 0 to 2 do
    let g = Generators.gnp_connected (rng (72 + seed)) 9 0.45 in
    let w = Generators.random_weights (rng seed) g ~max_weight:4 in
    let r = C.Epsilon_spanner.run ~rng:(rng 73) ~weights:w ~epsilon:0.25 ~k:2 g in
    let opt = Weights.cost w (C.Exact.min_weighted_2_spanner g w) in
    assert (r.cost <= (1.25 *. opt) +. 1e-9);
    printf "%-10s %5.2f %8.0f %8.0f %10.1f\n"
      (Printf.sprintf "wgnp#%d" seed)
      0.25 opt r.cost (1.25 *. opt)
  done

let e8 () =
  section "E8"
    "Figure 1 / Thms 1.1 & 2.8: directed k>=5 hardness construction";
  printf "checked on random inputs (disjoint / single-intersection / far):\n";
  printf "%-4s %-4s %6s %4s %8s %7s %8s %9s %7s\n" "l" "b" "n" "cut"
    "claim2.2" "nonD" "<=7lb" "forcedD" "b^2";
  List.iter
    (fun (ell, beta, kind, seed) ->
      let inputs =
        match kind with
        | `Disjoint ->
            L.Disjointness.random_disjoint (rng seed) ~n:(ell * ell)
              ~density:0.5
        | `Intersecting -> L.Disjointness.random_intersecting (rng seed) ~n:(ell * ell)
        | `Far -> L.Disjointness.random_far (rng seed) ~n:(ell * ell)
      in
      let t = L.Construction_g.build ~ell ~beta inputs in
      let claim = ref true in
      for i = 0 to ell - 1 do
        for r = 0 to ell - 1 do
          if not (L.Construction_g.check_claim_2_2 t ~i ~r) then claim := false
        done
      done;
      let non_d = L.Construction_g.non_d_edges t in
      assert (
        C.Spanner_check.is_directed_spanner t.graph
          (L.Construction_g.oracle_spanner t)
          ~k:5);
      printf "%-4d %-4d %6d %4d %8b %7d %8d %9d %7d\n" ell beta
        (L.Construction_g.n t)
        (List.length (L.Construction_g.cut_edges t))
        !claim
        (Edge.Directed.Set.cardinal non_d)
        (7 * ell * beta)
        (Edge.Directed.Set.cardinal (L.Construction_g.forced_d_edges t))
        (beta * beta))
    [
      (3, 4, `Disjoint, 1); (3, 4, `Intersecting, 2); (4, 3, `Far, 3);
      (4, 8, `Disjoint, 4); (4, 8, `Intersecting, 5); (5, 5, `Far, 6);
    ];
  printf "\nLemma 2.4 protocol executed end to end (parameters per Thm 1.1):\n";
  printf "%-6s %-5s %-5s %7s %9s %10s %8s\n" "alpha" "l" "b" "n" "spanner"
    "D-edges" "verdict";
  List.iter
    (fun (n', alpha, kind) ->
      let ell, beta = L.Construction_g.params_randomized ~n' ~alpha in
      let inputs =
        match kind with
        | `Disjoint ->
            L.Disjointness.random_disjoint (rng 7) ~n:(ell * ell) ~density:0.5
        | `Intersecting ->
            L.Disjointness.random_intersecting (rng 8) ~n:(ell * ell)
      in
      let t = L.Construction_g.build ~ell ~beta inputs in
      let spanner = L.Construction_g.oracle_spanner t in
      let verdict = L.Construction_g.decide_disjointness t ~spanner ~alpha in
      assert (verdict = L.Disjointness.is_disjoint inputs);
      printf "%-6.1f %-5d %-5d %7d %9d %10d %8s\n" alpha ell beta
        (L.Construction_g.n t)
        (Edge.Directed.Set.cardinal spanner)
        (Edge.Directed.Set.cardinal
           (Edge.Directed.Set.inter spanner t.d_edges))
        (if verdict then "disjoint" else "intersect"))
    [
      (300, 1.0, `Disjoint); (300, 1.0, `Intersecting);
      (800, 2.0, `Disjoint); (800, 2.0, `Intersecting);
    ];
  printf "\nround lower-bound curves (rows the theorems tabulate):\n";
  printf "%9s %8s | %14s %14s\n" "n" "alpha" "Thm1.1(rand)" "Thm2.8(det)";
  List.iter
    (fun n ->
      List.iter
        (fun alpha ->
          printf "%9d %8.0f | %14.1f %14.1f\n" n alpha
            (L.Bounds.thm_1_1_randomized ~n ~alpha)
            (L.Bounds.thm_2_8_deterministic ~n ~alpha))
        [ 1.0; 16.0; 256.0 ])
    [ 10_000; 100_000; 1_000_000 ]

let e9 () =
  section "E9" "Figure 2 / Thms 2.9 & 2.10: weighted hardness construction";
  printf "%-4s %-12s %5s %4s %17s %9s\n" "l" "inputs" "n" "cut"
    "zero-cost-4span" "disjoint";
  List.iter
    (fun (ell, kind, seed) ->
      let inputs =
        match kind with
        | `Disjoint ->
            L.Disjointness.random_disjoint (rng seed) ~n:(ell * ell)
              ~density:0.5
        | `Intersecting ->
            L.Disjointness.random_intersecting (rng seed) ~n:(ell * ell)
      in
      let t = L.Construction_gw.build ~ell inputs in
      let zc = L.Construction_gw.has_zero_cost_spanner t ~k:4 in
      assert (zc = L.Disjointness.is_disjoint inputs);
      printf "%-4d %-12s %5d %4d %17b %9b\n" ell
        (match kind with `Disjoint -> "disjoint" | _ -> "intersecting")
        (L.Construction_gw.n t)
        (List.length (L.Construction_gw.cut_edges t))
        zc
        (L.Disjointness.is_disjoint inputs))
    [
      (4, `Disjoint, 1); (4, `Intersecting, 2); (8, `Disjoint, 3);
      (8, `Intersecting, 4); (16, `Disjoint, 5); (16, `Intersecting, 6);
    ];
  printf "\nundirected variant (path padding, n = 6l + (k-4)l):\n";
  printf "%-3s %-4s %5s %17s\n" "k" "l" "n" "zero-cost-kspan";
  List.iter
    (fun (k, ell) ->
      let inputs =
        L.Disjointness.random_intersecting (rng (k + ell)) ~n:(ell * ell)
      in
      let u = L.Construction_gw.build_undirected ~ell ~k inputs in
      printf "%-3d %-4d %5d %17b\n" k ell (Ugraph.n u.u_graph)
        (L.Construction_gw.undirected_has_zero_cost_spanner u))
    [ (4, 6); (5, 6); (6, 6); (8, 6) ];
  printf "\nround lower-bound curves:\n";
  printf "%9s | %14s %14s %14s\n" "n" "Thm2.9(dir)" "Thm2.10(k=4)"
    "Thm2.10(k=8)";
  List.iter
    (fun n ->
      printf "%9d | %14.1f %14.1f %14.1f\n" n
        (L.Bounds.thm_2_9_weighted_directed ~n)
        (L.Bounds.thm_2_10_weighted_undirected ~n ~k:4)
        (L.Bounds.thm_2_10_weighted_undirected ~n ~k:8))
    [ 1_000; 100_000; 10_000_000 ]

let e10 () =
  section "E10" "Figure 3 / Claim 3.1 & Thms 3.3-3.5: MVC reduction";
  printf "exact check of Claim 3.1 (min 2-spanner cost = min VC):\n";
  printf "%-10s %3s %4s %6s %9s\n" "base" "n" "m" "VC" "verified";
  List.iter
    (fun (name, g) ->
      let ok = L.Mvc_reduction.check_claim_3_1 g in
      printf "%-10s %3d %4d %6d %9b\n" name (Ugraph.n g) (Ugraph.m g)
        (List.length (C.Exact.min_vertex_cover g))
        ok)
    [
      ("path5", Generators.path 5);
      ("C6", Generators.cycle 6);
      ("K5", Generators.complete 5);
      ("star7", Generators.star 7);
      ("gnp8", Generators.gnp_connected (rng 1) 8 0.4);
    ];
  printf "\nLemma 3.2 pipeline: weighted 2-spanner algorithm => MVC:\n";
  printf "%-10s %4s %5s %9s %8s %8s %7s\n" "base" "n" "opt" "from-span"
    "2approx" "greedy" "valid";
  for seed = 0 to 4 do
    let g = Generators.gnp_connected (rng (20 + seed)) 16 0.25 in
    let t = L.Mvc_reduction.build g in
    let r = C.Weighted_two_spanner.run ~rng:(rng seed) t.graph t.weights in
    let vc = L.Mvc_reduction.spanner_to_vc t r.spanner in
    let opt = List.length (C.Exact.min_vertex_cover g) in
    printf "%-10s %4d %5d %9d %8d %8d %7b\n"
      (Printf.sprintf "gnp16#%d" seed)
      (Ugraph.n g) opt (List.length vc)
      (List.length (L.Mvc.two_approx g))
      (List.length (L.Mvc.greedy g))
      (L.Mvc.is_vertex_cover g vc)
  done;
  printf "\nimported lower-bound curves for weighted 2-spanner:\n";
  printf "%9s %6s | %11s %11s %14s\n" "n" "Delta" "Thm3.3(D)" "Thm3.3(n)"
    "Thm3.5(exact)";
  List.iter
    (fun (n, delta) ->
      printf "%9d %6d | %11.2f %11.2f %14.0f\n" n delta
        (L.Bounds.thm_3_3_local_by_degree ~delta)
        (L.Bounds.thm_3_3_local_by_n ~n)
        (L.Bounds.thm_3_5_exact_congest ~n))
    [ (1_000, 32); (100_000, 256); (10_000_000, 4096) ];
  printf "\nThm 3.4 ratio/time trade-off (LOCAL, k rounds):\n";
  printf "%6s | %14s %14s\n" "rounds" "ratio>=f(n)" "ratio>=f(Delta)";
  List.iter
    (fun k ->
      printf "%6d | %14.3f %14.3f\n" k
        (L.Bounds.thm_3_4_ratio_by_n ~n:1_000_000 ~rounds:k)
        (L.Bounds.thm_3_4_ratio_by_delta ~delta:4096 ~rounds:k))
    [ 1; 2; 3; 5 ]

let e11 () =
  section "E11"
    "Separation: undirected CONGEST upper bound vs directed hardness";
  printf
    "Baswana-Sen [7] and Elkin-Neiman [28] (2k-1)-spanners (k rounds,\n\
     CONGEST, undirected):\n";
  printf "%-3s %6s %7s %8s %8s %10s %8s %8s %11s\n" "k" "n" "m" "BS-size"
    "EN-size" "k*n^1+1/k" "BS-str" "EN-str" "<=n^{1/k}";
  let g = Generators.gnp_connected (rng 1) 400 0.12 in
  List.iter
    (fun k ->
      let r = C.Baswana_sen.run ~rng:(rng k) ~k g in
      let en = C.Elkin_neiman.run ~seed:k ~k g in
      let stretch = C.Spanner_check.stretch g r.spanner in
      let en_stretch = C.Spanner_check.stretch g en.spanner in
      assert (stretch <= (2 * k) - 1);
      assert (en_stretch <= (2 * k) - 1);
      printf "%-3d %6d %7d %8d %8d %10.0f %8d %8d %11.2f\n" k (Ugraph.n g)
        (Ugraph.m g)
        (Edge.Set.cardinal r.spanner)
        (Edge.Set.cardinal en.spanner)
        (C.Baswana_sen.expected_size_bound ~n:400 ~k)
        stretch en_stretch
        (float_of_int 400 ** (1.0 /. float_of_int k)))
    [ 2; 3; 4; 5 ];
  printf
    "\ndirected (2k-1)-spanner at the same O(n^{1/k}) ratio needs (Thms 1.1/2.8):\n";
  printf "%-3s %9s %16s %16s\n" "k" "n" "rand rounds >=" "det rounds >=";
  List.iter
    (fun k ->
      let n = 100_000 in
      let alpha = float_of_int n ** (1.0 /. float_of_int k) in
      printf "%-3d %9d %16.1f %16.1f\n" k n
        (L.Bounds.thm_1_1_randomized ~n ~alpha)
        (L.Bounds.thm_2_8_deterministic ~n ~alpha))
    [ 2; 3; 4; 5 ];
  printf
    "\nLOCAL side of the separation: constant-round O(n)-approx [5] and\n\
     polylog (1+eps) (Section 6 / E7) both apply to directed k-spanner,\n\
     while CONGEST needs the polynomial round counts above.\n"

let e12 () =
  section "E12" "Lemma 2.4: two-party simulation metered on G(l,b)";
  printf "%-6s %-6s %7s %5s %7s %10s %12s %11s\n" "l" "b" "n" "cut" "rounds"
    "cut-bits" "budget*T" "DISJ-rounds";
  List.iter
    (fun (ell, beta) ->
      let inputs =
        L.Disjointness.random_disjoint (rng (ell * beta)) ~n:(ell * ell)
          ~density:0.5
      in
      let t = L.Construction_g.build ~ell ~beta inputs in
      let g = Dgraph.underlying t.graph in
      let rep = L.Two_party.meter_flood ~graph:g ~bob:t.bob_vertices () in
      assert (rep.bits_across_cut <= rep.rounds * rep.bound_per_round);
      (* Rounds any algorithm needs to move Omega(l^2) disjointness
         bits across this cut. *)
      let disj_bits = L.Disjointness.communication_lower_bound ~n:(ell * ell) in
      printf "%-6d %-6d %7d %5d %7d %10d %12d %11.2f\n" ell beta
        (L.Construction_g.n t) rep.cut_edge_count rep.rounds
        rep.bits_across_cut
        (rep.rounds * rep.bound_per_round)
        (L.Bounds.simulation_rounds ~bits:disj_bits ~cut:rep.cut_edge_count
           ~bandwidth:(rep.bound_per_round / (2 * max 1 rep.cut_edge_count))))
    [ (3, 4); (4, 8); (8, 16); (12, 24); (16, 32) ]

let e13 () =
  section "E13"
    "Protocol validation: message-passing LOCAL run vs round engine";
  printf "%-12s %5s %6s %7s %7s %6s %12s %10s\n" "family" "n" "size" "eng-it"
    "loc-it" "equal" "loc-rounds" "loc-msgs";
  List.iter
    (fun (name, g) ->
      let a = C.Two_spanner.run ~seed:5 g in
      let b = C.Two_spanner_local.run ~seed:5 g in
      printf "%-12s %5d %6d %7d %7d %6b %12d %10d\n" name (Ugraph.n g)
        (Edge.Set.cardinal b.spanner)
        a.iterations b.iterations
        (Edge.Set.equal a.spanner b.spanner)
        b.metrics.rounds b.metrics.messages)
    [
      ("K20", Generators.complete 20);
      ("caveman", Generators.caveman (rng 1) 6 7 0.03);
      ("ladder_120", Generators.clique_ladder (rng 2) 120);
      ("gnp_80", Generators.gnp_connected (rng 3) 80 0.3);
      ("pa_100", Generators.preferential_attachment (rng 4) 100 10);
    ];
  printf "\nweighted variant (zero-weight bootstrap included):\n";
  printf "%-12s %6s %7s %7s %6s\n" "family" "cost" "eng-it" "loc-it" "equal";
  List.iter
    (fun (name, g, zf, mw) ->
      let w =
        Generators.random_weights_with_zeros (rng 8) g ~zero_fraction:zf
          ~max_weight:mw
      in
      let a = C.Weighted_two_spanner.run ~seed:5 g w in
      let b = C.Two_spanner_local.run_weighted ~seed:5 g w in
      printf "%-12s %6.0f %7d %7d %6b\n" name a.cost a.iterations
        b.iterations
        (Edge.Set.equal a.spanner b.spanner))
    [
      ("caveman", Generators.caveman (rng 5) 5 7 0.03, 0.2, 5);
      ("gnp_60", Generators.gnp_connected (rng 6) 60 0.2, 0.3, 16);
      ("ladder_100", Generators.clique_ladder (rng 7) 100, 0.1, 4);
    ]

let e15 () =
  section "E15"
    "Section 1.3: direct CONGEST port of the 2-spanner (O(Delta) overhead)";
  printf "%-12s %4s %7s %12s %12s %9s %6s %6s\n" "family" "D" "LOCAL-r"
    "CONGEST-r" "slowdown" "max-bits" "B(n)" "equal";
  List.iter
    (fun (name, g) ->
      let a = C.Two_spanner.run ~seed:5 g in
      let l = C.Two_spanner_local.run ~seed:5 g in
      let c = C.Two_spanner_local.run_congest ~seed:5 g in
      assert (c.metrics.congest_violations = 0);
      let budget =
        match
          Distsim.Model.bandwidth
            (Distsim.Model.congest ~n:(max 2 (Ugraph.n g)) ~c:16 ())
        with
        | Some b -> b
        | None -> -1
      in
      printf "%-12s %4d %7d %12d %12.1f %9d %6d %6b\n" name
        (Ugraph.max_degree g) l.metrics.rounds c.metrics.rounds
        (float_of_int c.metrics.rounds /. float_of_int l.metrics.rounds)
        c.metrics.max_message_bits budget
        (Edge.Set.equal a.spanner c.spanner))
    [
      ("K12", Generators.complete 12);
      ("caveman", Generators.caveman (rng 1) 5 6 0.05);
      ("ladder_80", Generators.clique_ladder (rng 2) 80);
      ("gnp_50", Generators.gnp_connected (rng 3) 50 0.25);
    ]

let e16 () =
  section "E16"
    "Guaranteed vs in-expectation: ratio stability across 20 seeds";
  let g = Generators.caveman (rng 9) 10 8 0.03 in
  let greedy = Edge.Set.cardinal (C.Kp_greedy.run g).spanner in
  printf "caveman n=%d m=%d; greedy (reference) = %d edges\n" (Ugraph.n g)
    (Ugraph.m g) greedy;
  printf "%-12s %6s %6s %6s %8s\n" "rule" "min" "mean" "max" "max/min";
  let stats selection =
    let sizes =
      List.init 20 (fun seed ->
          Edge.Set.cardinal (C.Two_spanner.run ~seed ~selection g).spanner)
    in
    let mn = List.fold_left min max_int sizes in
    let mx = List.fold_left max 0 sizes in
    let mean =
      float_of_int (List.fold_left ( + ) 0 sizes) /. 20.0
    in
    (mn, mean, mx)
  in
  List.iter
    (fun (name, selection) ->
      let mn, mean, mx = stats selection in
      printf "%-12s %6d %6.1f %6d %8.2f\n" name mn mean mx
        (float_of_int mx /. float_of_int mn))
    [
      ("votes(1/8)", C.Two_spanner_engine.Votes 0.125);
      ("coin(1/2)", C.Two_spanner_engine.Coin 0.5);
      ("coin(1/8)", C.Two_spanner_engine.Coin 0.125);
    ];
  printf
    "\nthe voting rule's spread is the paper's point: its O(log m/n) ratio\n\
     holds on every run, not merely in expectation (Section 1.1.2).\n"

let e17 () =
  section "E17"
    "Fault injection: survivor quality under message loss and crashes";
  printf "%-32s %6s %6s %7s %9s %8s %7s %6s %7s\n" "anchor" "drop" "retry"
    "rounds" "messages" "dropped" "crashed" "valid" "stretch";
  List.iter
    (fun (name, fields) ->
      let f k = List.assoc k fields in
      printf "%-32s %6g %6.0f %7.0f %9.0f %8.0f %7.0f %6.0f %7.0f\n" name
        (f "drop_p") (f "retry") (f "rounds") (f "messages") (f "dropped")
        (f "crashed") (f "valid") (f "stretch"))
    (fault_rows ~selected:[ "e17" ]);
  printf
    "\nretransmit wrapper: every message sent retry times, receivers keep\n\
     the first copy per source; a drop-p adversary then loses a message\n\
     with probability p^retry. valid=1 means the surviving output still\n\
     2-spans (resp. dominates) the surviving subgraph (Resilience.run).\n"

let e18 () =
  section "E18" "CSR scale: streaming build, BFS and flood at large n";
  printf "%-14s %8s %9s %12s %9s %8s %10s %10s %5s\n" "anchor" "n" "m"
    "bytes" "build_ms" "bfs_ms" "flood_seq" "flood_par" "same";
  List.iter
    (fun (name, fields) ->
      let f k = List.assoc k fields in
      printf "%-14s %8.0f %9.0f %12.0f %9.1f %8.1f %10.1f %10.1f %5.0f\n"
        name (f "n") (f "m") (f "resident_bytes") (f "build_ms") (f "bfs_ms")
        (f "flood_seq_ms") (f "flood_par_ms") (f "flood_identical"))
    (csr_rows ~par:2 ~selected:[ "e18" ]);
  printf
    "\nthe CSR row is the whole graph: resident_bytes = 8*(n+1+2m) of\n\
     off-heap Bigarray, zero GC-traced words per edge. flood runs the\n\
     distributed engine end to end; par=2 must produce bit-identical\n\
     output (same=1). the 10^5/10^6 anchors (csr_gnp_100k, csr_pa_1e6)\n\
     run in the full --json sweep under the e18big family.\n"

let e18big () =
  section "E18BIG" "CSR scale: the 10^5- and 10^6-vertex anchors";
  printf "%-14s %8s %9s %12s %9s %8s %10s %10s %5s\n" "anchor" "n" "m"
    "bytes" "build_ms" "bfs_ms" "flood_seq" "flood_par" "same";
  List.iter
    (fun (name, fields) ->
      let f k = List.assoc k fields in
      printf "%-14s %8.0f %9.0f %12.0f %9.1f %8.1f %10.1f %10.1f %5.0f\n"
        name (f "n") (f "m") (f "resident_bytes") (f "build_ms") (f "bfs_ms")
        (f "flood_seq_ms") (f "flood_par_ms") (f "flood_identical"))
    (csr_rows ~par:2 ~selected:[ "e18big" ]);
  printf
    "\nsingle timed runs; flood at n=10^6 runs the full distributed\n\
     engine (one mailbox per vertex) and dominates the row — the CSR\n\
     build + BFS share is under 1.5 s.\n"

let e19 () =
  section "E19"
    "Message frugality: silence-as-information + collection trees";
  printf "%-24s %7s %9s %9s %7s %9s %8s %5s\n" "anchor" "rounds" "logical"
    "physical" "reduce" "suppress" "markers" "same";
  List.iter
    (fun (name, fields) ->
      let f k = List.assoc k fields in
      printf "%-24s %7.0f %9.0f %9.0f %6.2fx %9.0f %8.0f %5.0f\n" name
        (f "rounds") (f "logical_messages") (f "physical_messages")
        (f "message_reduction") (f "suppressed") (f "markers") (f "identical"))
    (frugal_rows ~reps:3 ~selected:[ "e19" ]);
  printf
    "\nboth columns describe the same execution: the frugality layer\n\
     re-derives every logical delivery on the receiver side, so the\n\
     spanner, the round count and all logical metrics are bit-identical\n\
     (same=1, asserted) — only the physical wire stream shrinks. the\n\
     flood A/B on the 10^5/10^6 CSR anchors rides the e18/e18big\n\
     families in the full --json sweep (fr_flood_* rows).\n"

let churn_table rows =
  printf "%-24s %8s %7s %6s %6s %9s %9s %9s %8s %6s %5s %4s\n" "anchor" "m"
    "replace" "ticks" "dirty" "repair" "recomp" "boot" "speedup" "drift"
    "valid" "det";
  List.iter
    (fun (name, fields) ->
      let f k = List.assoc k fields in
      let det =
        match List.assoc_opt "deterministic" fields with
        | Some v -> Printf.sprintf "%4.0f" v
        | None -> "   -"
      in
      printf "%-24s %8.0f %7.0f %6.0f %6.0f %8.1fms %8.1fms %8.0fms %7.1fx \
              %6.0f %5.0f %s\n"
        name (f "m") (f "replace_per_tick") (f "ticks") (f "dirty_mean")
        (f "repair_ms_best") (f "recompute_ms_best") (f "bootstrap_ms")
        (f "speedup_vs_recompute") (f "spanner_drift") (f "valid_every_tick")
        det)
    rows

let e20 () =
  section "E20"
    "Incremental repair under churn: dirty-ball re-run vs full recompute";
  churn_table (churn_rows ~selected:[ "e20" ]);
  printf
    "\neach tick replaces `replace` edges (uniform seeded deletions +\n\
     insertions, batched through the CSR delta rebuild), sweeps the\n\
     stretch-2 certificates incident to the update, and re-runs the\n\
     protocol only on the dirty ball (Engine ?active). repair/recomp\n\
     are the interleaved best-of-3 on the final tick; valid=1 means\n\
     the maintained spanner passed the stretch-2 check after every\n\
     tick, det=1 that naive/par2/par4 replays were bit-identical.\n\
     the 10^5/10^6 anchors ride the e20big family in full sweeps.\n"

let e20big () =
  section "E20BIG" "Churn repair at scale: the 10^5- and 10^6-vertex anchors";
  churn_table (churn_rows ~selected:[ "e20big" ]);
  printf
    "\nsingle bootstrap per anchor; the 10^6-vertex recompute baseline\n\
     is a single timed run (time_once) — best-of-k would multiply\n\
     minutes of wall clock for noise the ~10x+ speedups don't need.\n"

let e21 () =
  section "E21"
    "Serving: closed-loop query load against a forked spannerd";
  ignore (serve_rows ~selected:[ "e21" ] : (string * (string * float) list) list);
  printf
    "\neach row forks a spannerd preloaded with the anchor graph (the\n\
     port file doubles as the ready signal), then `conns` client\n\
     threads run a closed loop of random-pair QUERYs for `secs`,\n\
     recording per-request latency into per-thread log2 histograms\n\
     merged at the end. The daemon is one thread: queueing delay at\n\
     high concurrency is the product, not a bug — qps is the\n\
     throughput claim, p50/p99 the latency claim, errors must be 0.\n"

let e14 () =
  section "E14" "Lemma 4.5 in action: per-iteration convergence trace";
  let g = Generators.clique_ladder (rng 7) 300 in
  printf "clique ladder, n=%d m=%d Delta=%d\n" (Ugraph.n g) (Ugraph.m g)
    (Ugraph.max_degree g);
  printf "%5s %10s %12s %11s %7s %11s\n" "iter" "uncovered" "max-density"
    "candidates" "stars" "terminated";
  let r =
    C.Two_spanner.run ~seed:5
      ~trace:(fun row ->
        printf "%5d %10d %12.2f %11d %7d %11d\n"
          row.C.Two_spanner_engine.iteration
          row.C.Two_spanner_engine.uncovered_before
          row.C.Two_spanner_engine.max_density
          row.C.Two_spanner_engine.candidates
          row.C.Two_spanner_engine.stars_accepted
          row.C.Two_spanner_engine.terminated_now)
      g
  in
  printf "final spanner: %d edges\n" (Edge.Set.cardinal r.spanner)

(* ------------------------------------------------------------------ *)
(* Ablations *)

let a1 () =
  section "A1" "Ablation: voting threshold (paper: 1/8)";
  let g = Generators.caveman (rng 1) 10 8 0.03 in
  printf "%-10s %6s %6s %6s\n" "threshold" "size" "iters" "stars";
  List.iter
    (fun fraction ->
      let r =
        C.Two_spanner.run ~rng:(rng 2)
          ~selection:(C.Two_spanner_engine.Votes fraction) g
      in
      assert (C.Spanner_check.is_spanner g r.spanner ~k:2);
      printf "%-10.4f %6d %6d %6d\n" fraction
        (Edge.Set.cardinal r.spanner)
        r.iterations r.stars_added)
    [ 0.03125; 0.0625; 0.125; 0.25; 0.5; 1.0 ]

let a2 () =
  section "A2" "Ablation: symmetry-breaking rule (votes vs coin vs all)";
  let g = Generators.caveman (rng 3) 10 8 0.03 in
  printf "%-14s %6s %6s %6s\n" "rule" "size" "iters" "stars";
  List.iter
    (fun (name, selection) ->
      let r = C.Two_spanner.run ~rng:(rng 4) ~selection g in
      assert (C.Spanner_check.is_spanner g r.spanner ~k:2);
      printf "%-14s %6d %6d %6d\n" name
        (Edge.Set.cardinal r.spanner)
        r.iterations r.stars_added)
    [
      ("votes(1/8)", C.Two_spanner_engine.Votes 0.125);
      ("coin(1/2)", C.Two_spanner_engine.Coin 0.5);
      ("coin(1/8)", C.Two_spanner_engine.Coin 0.125);
      ("all", C.Two_spanner_engine.All);
    ]

let a3 () =
  section "A3" "Extension: fault-tolerant 2-spanners (size vs f)";
  printf "%-12s %5s | %6s %6s %6s %6s | %5s\n" "family" "m" "f=0" "f=1"
    "f=2" "f=3" "valid";
  List.iter
    (fun (name, g) ->
      let sizes =
        List.map
          (fun f ->
            let r = C.Fault_tolerant.greedy g ~f in
            assert (C.Fault_tolerant.is_ft_2_spanner g ~f r.spanner);
            Edge.Set.cardinal r.spanner)
          [ 0; 1; 2; 3 ]
      in
      match sizes with
      | [ a; b; c; d ] ->
          printf "%-12s %5d | %6d %6d %6d %6d | %5b\n" name (Ugraph.m g) a b
            c d true
      | _ -> assert false)
    [
      ("K25", Generators.complete 25);
      ("caveman", Generators.caveman (rng 6) 5 8 0.03);
      ("gnp_60", Generators.gnp_connected (rng 7) 60 0.3);
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment. *)

let micro () =
  section "MICRO" "Bechamel timings (one test per experiment)";
  let open Bechamel in
  let g80 = Generators.gnp_connected (rng 1) 80 0.15 in
  let w80 = Generators.random_weights (rng 2) g80 ~max_weight:8 in
  let clients, servers =
    Generators.random_client_server (rng 3) g80 ~client_fraction:0.6
      ~server_fraction:0.7
  in
  let dg = Generators.bidirect (Generators.gnp_connected (rng 4) 50 0.2) in
  let g_small = Generators.gnp_connected (rng 5) 9 0.4 in
  let inputs = L.Disjointness.random_disjoint (rng 6) ~n:16 ~density:0.5 in
  let inputs_small =
    L.Disjointness.random_disjoint (rng 9) ~n:9 ~density:0.5
  in
  let mvc_base = Generators.gnp_connected (rng 7) 12 0.3 in
  let star_edges =
    let prob_rng = rng 8 in
    let edges = ref [] in
    for u = 0 to 13 do
      for v = u + 1 to 13 do
        if Rng.float prob_rng 1.0 < 0.4 then edges := (u, v) :: !edges
      done
    done;
    !edges
  in
  let tests =
    Test.make_grouped ~name:"spanner"
      [
        Test.make ~name:"e1_ratio_2spanner"
          (Staged.stage (fun () -> C.Two_spanner.run ~rng:(rng 10) g80));
        Test.make ~name:"e2_rounds_2spanner"
          (Staged.stage (fun () ->
               C.Two_spanner.run ~rng:(rng 11)
                 (Generators.caveman (rng 12) 6 6 0.03)));
        Test.make ~name:"e3_directed"
          (Staged.stage (fun () -> C.Directed_two_spanner.run ~rng:(rng 13) dg));
        Test.make ~name:"e4_weighted"
          (Staged.stage (fun () ->
               C.Weighted_two_spanner.run ~rng:(rng 14) g80 w80));
        Test.make ~name:"e5_client_server"
          (Staged.stage (fun () ->
               C.Client_server.run ~rng:(rng 15) g80 ~clients ~servers));
        Test.make ~name:"e6_mds"
          (Staged.stage (fun () -> C.Mds.run ~rng:(rng 16) g80));
        Test.make ~name:"e7_eps"
          (Staged.stage (fun () ->
               C.Epsilon_spanner.run ~rng:(rng 17) ~epsilon:0.5 ~k:2 g_small));
        Test.make ~name:"e8_lb_directed"
          (Staged.stage (fun () ->
               L.Construction_g.build ~ell:4 ~beta:6 inputs));
        Test.make ~name:"e9_lb_weighted"
          (Staged.stage (fun () ->
               let t = L.Construction_gw.build ~ell:4 inputs in
               L.Construction_gw.has_zero_cost_spanner t ~k:4));
        Test.make ~name:"e10_lb_mvc"
          (Staged.stage (fun () ->
               let t = L.Mvc_reduction.build mvc_base in
               L.Mvc_reduction.spanner_to_vc t
                 (L.Mvc_reduction.vc_to_spanner t (L.Mvc.two_approx mvc_base))));
        Test.make ~name:"e11_separation"
          (Staged.stage (fun () -> C.Baswana_sen.run ~rng:(rng 18) ~k:3 g80));
        Test.make ~name:"e12_two_party"
          (Staged.stage (fun () ->
               let t = L.Construction_g.build ~ell:3 ~beta:4 inputs_small in
               L.Two_party.meter_flood
                 ~graph:(Dgraph.underlying t.graph)
                 ~bob:t.bob_vertices ()));
        Test.make ~name:"e13_local_protocol"
          (Staged.stage (fun () ->
               C.Two_spanner_local.run ~seed:3
                 (Generators.caveman (rng 19) 4 6 0.05)));
        Test.make ~name:"e14_trace"
          (Staged.stage (fun () ->
               C.Two_spanner.run ~seed:3 ~trace:(fun _ -> ())
                 (Generators.clique_ladder (rng 20) 60)));
        Test.make ~name:"e15_congest_port"
          (Staged.stage (fun () ->
               C.Two_spanner_local.run_congest ~seed:3
                 (Generators.caveman (rng 21) 4 6 0.05)));
        (* Larger protocol workloads: the perf-trajectory anchors that
           BENCH_PR*.json tracks across PRs. *)
        Test.make ~name:"e8_local_caveman"
          (Staged.stage (fun () ->
               C.Two_spanner_local.run ~seed:3
                 (Generators.caveman (rng 23) 8 8 0.03)));
        Test.make ~name:"e15_congest"
          (Staged.stage (fun () ->
               C.Two_spanner_local.run_congest ~seed:3
                 (Generators.caveman (rng 24) 6 6 0.04)));
        Test.make ~name:"e16_stability"
          (Staged.stage (fun () ->
               C.Two_spanner.run ~seed:9
                 ~selection:(C.Two_spanner_engine.Coin 0.5)
                 (Generators.caveman (rng 22) 4 6 0.05)));
        Test.make ~name:"a4_densest_flow"
          (Staged.stage (fun () ->
               Netflow.Densest.densest_subset ~n:14 ~edges:star_edges ()));
        Test.make ~name:"a4_densest_brute"
          (Staged.stage (fun () ->
               Netflow.Densest.brute_force ~n:14 ~edges:star_edges ()));
      ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  printf "%-32s %14s\n" "benchmark" "ns/run";
  List.iter (fun (name, est) -> printf "%-32s %14.0f\n" name est) rows;
  rows

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e18big", e18big); ("e19", e19);
    ("e20", e20); ("e20big", e20big); ("e21", e21); ("a1", a1); ("a2", a2);
    ("a3", a3);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec extract_flag flag acc = function
    | f :: path :: rest when f = flag ->
        (Some path, List.rev_append acc rest)
    | [ f ] when f = flag ->
        Printf.eprintf "bench: %s requires a file argument\n" flag;
        exit 2
    | x :: rest -> extract_flag flag (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_path, args = extract_flag "--json" [] args in
  let trace_path, args = extract_flag "--trace" [] args in
  let par_arg, args = extract_flag "--par" [] args in
  let par =
    match par_arg with
    | None -> 4
    | Some s -> (
        match int_of_string_opt s with
        | Some p when p >= 1 -> p
        | _ ->
            Printf.eprintf "bench: --par requires a positive integer\n";
            exit 2)
  in
  let t0 = Unix.gettimeofday () in
  let wanted, with_micro =
    match args with
    | [] -> (List.map fst experiments, true)
    | _ -> (List.filter (fun a -> a <> "micro") args, List.mem "micro" args)
  in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None -> printf "unknown experiment %s\n" id)
    wanted;
  let micro_rows = if with_micro then Some (micro ()) else None in
  (match (json_path, trace_path) with
  | None, None -> ()
  | _ -> perf_json ~json_path ~trace_path ~selected:args ~micro_rows ~par);
  printf "\ntotal time: %.1fs\n" (Unix.gettimeofday () -. t0)
