(* Shared plumbing for the bench executable: report formatting, the
   graph families and protocol anchors the perf trajectory tracks
   across PRs, wall-clock timing helpers, and the --json/--trace
   writer (schema "spanner-bench/9").

   The experiment functions themselves live in main.ml; everything
   here is the scaffolding they share so that adding an experiment
   does not mean growing a thousand-line file. *)

open Grapho
module C = Spanner_core

let printf = Printf.printf

let section id title =
  printf "\n==================================================================\n";
  printf "%s  %s\n" id title;
  printf "==================================================================\n"

let log2 x = Float.log x /. Float.log 2.0
let flog2 n = log2 (float_of_int (max 2 n))
let rng seed = Rng.create seed

(* Shared graph families for upper-bound experiments. *)
let ratio_families () =
  [
    ("complete_40", Generators.complete 40);
    ("caveman_8x8", Generators.caveman (rng 1) 8 8 0.03);
    ("gnp_dense_100", Generators.gnp_connected (rng 2) 100 0.35);
    ("gnp_sparse_200", Generators.gnp_connected (rng 3) 200 0.05);
    ("pa_200_10", Generators.preferential_attachment (rng 4) 200 10);
    ("bipartite_15_15", Generators.complete_bipartite 15 15);
    ("grid_10x10", Generators.grid 10 10);
  ]

(* ------------------------------------------------------------------ *)
(* Protocol anchors.

   The workloads the perf trajectory tracks across PRs. [`Local] runs
   the LOCAL message-passing protocol, [`Congest] its chunked CONGEST
   compilation. Gated by the experiment family they belong to. *)

let anchors () =
  [
    ("e8_local_caveman", "e8", `Local, Generators.caveman (rng 23) 8 8 0.03);
    ("e13_local_protocol", "e13", `Local, Generators.caveman (rng 19) 4 6 0.05);
    ("e15_congest", "e15", `Congest, Generators.caveman (rng 24) 6 6 0.04);
    ("e15_congest_port", "e15", `Congest, Generators.caveman (rng 21) 4 6 0.05);
  ]

(* Larger instances for the seq-vs-par A/B section: big enough that a
   round has real work to split across domains. The small e13-tagged
   one keeps `bench -- e13 --par 2 --json ...` cheap for CI smoke. *)
let seq_vs_par_anchors () =
  [
    ("sv_local_caveman_4x6", "e13", `Local, Generators.caveman (rng 19) 4 6 0.05);
    ("sv_local_caveman_8x8", "e8", `Local, Generators.caveman (rng 23) 8 8 0.03);
    ( "sv_local_gnp_240",
      "e2",
      `Local,
      Generators.gnp_connected (rng 31) 240 0.08 );
    ("sv_local_ladder_400", "e2", `Local, Generators.clique_ladder (rng 32) 400);
    ( "sv_congest_caveman_6x6",
      "e15",
      `Congest,
      Generators.caveman (rng 24) 6 6 0.04 );
  ]

let run_anchor ?(trace = Distsim.Trace.null) ?profile ?par ?sched ?frugal
    ?adversary ?retry kind g : C.Two_spanner_local.result =
  match kind with
  | `Local ->
      C.Two_spanner_local.run ~seed:3 ?par ?sched ?profile ?frugal ?adversary
        ?retry ~trace g
  | `Congest ->
      C.Two_spanner_local.run_congest ~seed:3 ?par ?sched ?profile ?frugal
        ?adversary ?retry ~trace g

(* ------------------------------------------------------------------ *)
(* Wall-clock timing. *)

let best_wall_ms ~reps f =
  f () (* warm-up *);
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Distsim.Clock.now_s () in
    f ();
    let dt = Distsim.Clock.now_s () -. t0 in
    if dt < !best then best := dt
  done;
  1000.0 *. !best

(* Interleaved A/B: alternate the two variants rep by rep so that
   drifting machine load hits both sides equally, and report the best
   wall time of each. *)
let interleaved_ab_ms ~reps f_a f_b =
  f_a ();
  f_b () (* warm-up both *);
  let best_a = ref infinity and best_b = ref infinity in
  for _ = 1 to reps do
    let t0 = Distsim.Clock.now_s () in
    f_a ();
    let t1 = Distsim.Clock.now_s () in
    f_b ();
    let t2 = Distsim.Clock.now_s () in
    if t1 -. t0 < !best_a then best_a := t1 -. t0;
    if t2 -. t1 < !best_b then best_b := t2 -. t1
  done;
  (1000.0 *. !best_a, 1000.0 *. !best_b)

(* ------------------------------------------------------------------ *)
(* Metric and series rows. *)

(* (name, (key, value) list); every value is a JSON number. *)
let metric_row name g (r : C.Two_spanner_local.result) densest_calls =
  ( name,
    [
      ("n", float_of_int (Ugraph.n g));
      ("m", float_of_int (Ugraph.m g));
      ("spanner_edges", float_of_int (Edge.Set.cardinal r.spanner));
      ("iterations", float_of_int r.iterations);
      ("rounds", float_of_int r.metrics.rounds);
      ("steps", float_of_int r.metrics.steps);
      ("messages", float_of_int r.metrics.messages);
      ("total_bits", float_of_int r.metrics.total_bits);
      ("max_message_bits", float_of_int r.metrics.max_message_bits);
      ("densest_calls", float_of_int densest_calls);
    ] )

(* Per-round summary of a traced run for the "round_series" section:
   how hard the busiest round works, and how fast the network
   quiesces (histogram of vertices stepped per round, bucketed by
   powers of two: bucket 0 counts rounds with 0 awake vertices,
   bucket k >= 1 counts rounds with 2^(k-1) <= stepped < 2^k). *)
let series_summary (s : Distsim.Trace.series) =
  let rows = s.Distsim.Trace.rounds in
  let n_rounds = Array.length rows in
  let msgs_total = ref 0
  and msgs_max = ref 0
  and bits_max = ref 0
  and steps = ref 0 in
  let bucket stepped =
    if stepped <= 0 then 0
    else
      let rec go k v = if v = 0 then k else go (k + 1) (v lsr 1) in
      go 0 stepped
  in
  let max_bucket =
    Array.fold_left
      (fun acc (r : Distsim.Trace.round_stat) ->
        max acc (bucket r.vertices_stepped))
      0 rows
  in
  let hist = Array.make (max_bucket + 1) 0 in
  Array.iter
    (fun (r : Distsim.Trace.round_stat) ->
      msgs_total := !msgs_total + r.messages;
      msgs_max := max !msgs_max r.messages;
      bits_max := max !bits_max r.bits;
      steps := !steps + r.vertices_stepped;
      let b = bucket r.vertices_stepped in
      hist.(b) <- hist.(b) + 1)
    rows;
  let mean =
    float_of_int !msgs_total /. float_of_int (max 1 (n_rounds - 1))
  in
  (n_rounds - 1, !steps, !msgs_total, !msgs_max, mean, !bits_max, hist)

(* ------------------------------------------------------------------ *)
(* seq-vs-par A/B rows.

   For every seq-vs-par anchor, run the protocol sequentially and
   with [par] domains in interleaved reps; record the best wall time
   of each plus an [identical] flag asserting that the parallel run
   produced the same spanner, iteration count and engine metrics as
   the sequential one (the engine's determinism contract). On a
   single-core container the speedup is expected to sit at or below
   1.0; the "cores" field records why. *)
let seq_vs_par_rows ~par ~reps ~selected =
  let sel id = selected = [] || List.mem id selected in
  List.filter_map
    (fun (name, family, kind, g) ->
      if not (sel family) then None
      else begin
        let seq = run_anchor kind g in
        let prl = run_anchor ~par kind g in
        let identical =
          Edge.Set.equal seq.C.Two_spanner_local.spanner
            prl.C.Two_spanner_local.spanner
          && seq.iterations = prl.iterations
          (* GC-pressure floats vary per run and per domain count;
             equality is stated on the deterministic fields. *)
          && Distsim.Engine.metrics_deterministic_eq seq.metrics prl.metrics
        in
        let seq_ms, par_ms =
          interleaved_ab_ms ~reps
            (fun () -> ignore (run_anchor kind g))
            (fun () -> ignore (run_anchor ~par kind g))
        in
        Some
          ( name,
            [
              ("n", float_of_int (Ugraph.n g));
              ("m", float_of_int (Ugraph.m g));
              ("rounds", float_of_int seq.metrics.rounds);
              ("steps", float_of_int seq.metrics.steps);
              ("seq_ms_best", seq_ms);
              ("par_ms_best", par_ms);
              ("speedup", seq_ms /. Float.max 1e-9 par_ms);
              ("identical", if identical then 1.0 else 0.0);
            ] )
      end)
    (seq_vs_par_anchors ())

(* ------------------------------------------------------------------ *)
(* Allocation A/B rows (schema "spanner-bench/4").

   For the E1 families and every protocol anchor, run the protocol
   under the mailbox engine and under the legacy-cost shim
   ([`Active_legacy_cost]): the same event-driven scheduler with the
   pre-mailbox per-message allocation profile (list inbox + sorted
   copy per step, send-record list per emit batch) interposed. The
   deterministic metrics are asserted equal, so the row isolates the
   cost of the message plumbing: minor words and allocated bytes per
   run from [Engine.metrics], and interleaved best wall times. *)
let alloc_rows ~reps ~selected =
  let sel id = selected = [] || List.mem id selected in
  let entries =
    (if not (sel "e1") then []
     else
       List.map
         (fun (name, g) ->
           ( "e1_local_" ^ name,
             g,
             fun ?sched () -> C.Two_spanner_local.run ~seed:5 ?sched g ))
         (ratio_families ()))
    @ List.filter_map
        (fun (name, family, kind, g) ->
          if not (sel family) then None
          else Some (name, g, fun ?sched () -> run_anchor ?sched kind g))
        (anchors ())
  in
  List.map
    (fun
      ( name,
        g,
        (run :
          ?sched:Distsim.Engine.sched -> unit -> C.Two_spanner_local.result)
      )
    ->
      let a = run () in
      let b = run ~sched:`Active_legacy_cost () in
      if not (Distsim.Engine.metrics_deterministic_eq a.metrics b.metrics)
      then
        failwith
          (Printf.sprintf
             "alloc A/B: legacy-cost shim diverged on %s (deterministic \
              metrics differ)"
             name);
      let mailbox_ms, legacy_ms =
        interleaved_ab_ms ~reps
          (fun () -> ignore (run ()))
          (fun () -> ignore (run ~sched:`Active_legacy_cost ()))
      in
      ( name,
        [
          ("n", float_of_int (Ugraph.n g));
          ("m", float_of_int (Ugraph.m g));
          ("minor_words", a.metrics.minor_words);
          ("allocated_bytes", a.metrics.allocated_bytes);
          ("legacy_minor_words", b.metrics.minor_words);
          ("legacy_allocated_bytes", b.metrics.allocated_bytes);
          ( "minor_words_ratio",
            b.metrics.minor_words /. Float.max 1.0 a.metrics.minor_words );
          ("mailbox_ms_best", mailbox_ms);
          ("legacy_ms_best", legacy_ms);
          ("speedup_vs_legacy", legacy_ms /. Float.max 1e-9 mailbox_ms);
        ] ))
    entries

(* ------------------------------------------------------------------ *)
(* Fault-sweep rows (new in schema "spanner-bench/5").

   For every fault anchor, run the protocol under a drop-[p] adversary
   for p in {0, 0.01, 0.05, 0.1} (plus one crash schedule for the
   LOCAL anchors) through {!Spanner_core.Resilience.run} and record
   the survivor-quality report: round/message/drop counts, how much of
   the output survived, and whether the surviving output still spans
   (resp. dominates) the surviving subgraph. The p = 0 row doubles as
   the Null-adversary overhead baseline: its rounds/messages must
   match the fault-free anchor exactly. *)

let fault_drop_rates = [ 0.0; 0.01; 0.05; 0.1 ]

(* (name, family, protocol, retry at p > 0, max_rounds, graph). CONGEST
   needs retransmits even at low p (one lost chunk corrupts its
   reassembly stream) and a generous round budget: its rounds are the
   compiled chunk rounds. *)
let fault_anchors () =
  [
    ( "ft_local_caveman_8x8",
      "e17",
      C.Resilience.Spanner_local,
      3,
      2_000,
      Generators.caveman (rng 23) 8 8 0.03 );
    ( "ft_local_gnp_100",
      "e17",
      C.Resilience.Spanner_local,
      3,
      2_000,
      Generators.gnp_connected (rng 2) 100 0.1 );
    ( "ft_mds_caveman_6x6",
      "e17",
      C.Resilience.Mds,
      3,
      2_000,
      Generators.caveman (rng 24) 6 6 0.04 );
    ( "ft_congest_caveman_4x6",
      "e17",
      C.Resilience.Spanner_congest,
      3,
      60_000,
      Generators.caveman (rng 21) 4 6 0.05 );
  ]

let fault_row_of_report name g (r : C.Resilience.report) ~drop_p ~retry =
  ( name,
    [
      ("n", float_of_int (Ugraph.n g));
      ("m", float_of_int (Ugraph.m g));
      ("drop_p", drop_p);
      ("retry", float_of_int retry);
      ("terminated", if r.C.Resilience.terminated then 1.0 else 0.0);
      ("rounds", float_of_int r.C.Resilience.rounds);
      ("messages", float_of_int r.C.Resilience.messages);
      ("dropped", float_of_int r.C.Resilience.dropped);
      ("crashed", float_of_int (List.length r.C.Resilience.crashed));
      ("survivors", float_of_int r.C.Resilience.survivors);
      ("output_size", float_of_int r.C.Resilience.output_size);
      ("surviving_output", float_of_int r.C.Resilience.surviving_output);
      ("valid", if r.C.Resilience.valid then 1.0 else 0.0);
      ("stretch", float_of_int r.C.Resilience.stretch);
    ] )

let fault_rows ~selected =
  let sel id = selected = [] || List.mem id selected in
  List.concat_map
    (fun (name, family, protocol, retry, max_rounds, g) ->
      if not (sel family) then []
      else
        let drop_rows =
          List.map
            (fun p ->
              let schedule =
                { Distsim.Faults.empty with drop_p = p; seed = 42 }
              in
              let retry = if p = 0.0 then 1 else retry in
              let r =
                C.Resilience.run ~seed:3 ~retry ~max_rounds ~protocol
                  ~schedule g
              in
              fault_row_of_report
                (Printf.sprintf "%s@drop%g" name p)
                g r ~drop_p:p ~retry)
            fault_drop_rates
        in
        let crash_rows =
          match protocol with
          | C.Resilience.Spanner_local ->
              let schedule =
                match Distsim.Faults.parse "crash=0.1@r3,seed=42" with
                | Ok s -> s
                | Error e -> failwith e
              in
              let r =
                C.Resilience.run ~seed:3 ~retry:1 ~max_rounds ~protocol
                  ~schedule g
              in
              [
                fault_row_of_report (name ^ "@crash0.1r3") g r ~drop_p:0.0
                  ~retry:1;
              ]
          | _ -> []
        in
        drop_rows @ crash_rows)
    (fault_anchors ())

(* ------------------------------------------------------------------ *)
(* CSR scale anchors (new in schema "spanner-bench/6").

   The large-n re-baseline that the Bigarray CSR core exists for:
   build a graph of up to 10^6 vertices through the streaming
   generators, then time BFS (centralized traversal) and flood-min-id
   (the distributed engine end to end, sequential and with [par]
   domains) on it. Rows record the CSR's exact resident bytes
   (8 * (n + 1 + 2m)) next to the wall times, so memory regressions
   show up in the same diff as time regressions.

   The "e18" family is the small anchor check.sh smokes; "e18big" adds
   the 10^5- and 10^6-vertex instances, which only run in full
   (unselected) BENCH_PR*.json sweeps. Each measurement is a single
   timed run — at these sizes a best-of-k loop would multiply minutes
   of wall clock for noise reduction the ~100x PR-over-PR deltas don't
   need. The LOCAL 2-spanner rides on the largest anchor where the
   protocol itself is feasible (gnp_10k: ~2 s; at 10^5 the densest-
   subgraph oracle dominates and the row would time out CI). *)

let csr_anchors () =
  [
    ( "csr_gnp_10k",
      "e18",
      (fun () -> Generators.gnp_connected (rng 51) 10_000 0.0015),
      true );
    ( "csr_gnp_100k",
      "e18big",
      (fun () -> Generators.gnp_connected (rng 52) 100_000 0.0002),
      false );
    ( "csr_pa_1e6",
      "e18big",
      (fun () -> Generators.preferential_attachment (rng 53) 1_000_000 3),
      false );
  ]

let time_once f =
  let t0 = Distsim.Clock.now_s () in
  let r = f () in
  (r, 1000.0 *. (Distsim.Clock.now_s () -. t0))

let csr_rows ~par ~selected =
  let sel id = selected = [] || List.mem id selected in
  List.filter_map
    (fun (name, family, gen, with_spanner) ->
      if not (sel family) then None
      else begin
        (* The millisecond-scale build anchors are dominated by major-GC
           work left over from whatever experiments ran before this
           section (the 10k build measures 8 ms from a fresh heap and
           10x that after the traced e1 sweep). Settle the heap first
           so the row measures the builder, not the predecessor. *)
        Gc.compact ();
        let g, build_ms = time_once gen in
        let _, bfs_ms = time_once (fun () -> Traversal.bfs_distances g 0) in
        let (seq_vals, seq_metrics), flood_seq_ms =
          time_once (fun () -> Distsim.Algorithms.flood_min_id g)
        in
        let (par_vals, par_metrics), flood_par_ms =
          time_once (fun () -> Distsim.Algorithms.flood_min_id ~par g)
        in
        let identical =
          seq_vals = par_vals
          && Distsim.Engine.metrics_deterministic_eq seq_metrics par_metrics
        in
        let spanner_fields =
          if not with_spanner then []
          else begin
            let r, spanner_ms =
              time_once (fun () -> C.Two_spanner_local.run ~seed:3 g)
            in
            [
              ("spanner_ms", spanner_ms);
              ( "spanner_edges",
                float_of_int (Edge.Set.cardinal r.C.Two_spanner_local.spanner)
              );
              ("spanner_rounds", float_of_int r.metrics.rounds);
            ]
          end
        in
        Some
          ( name,
            [
              ("n", float_of_int (Ugraph.n g));
              ("m", float_of_int (Ugraph.m g));
              ("resident_bytes", float_of_int (Ugraph.resident_bytes g));
              ("build_ms", build_ms);
              ("bfs_ms", bfs_ms);
              ("flood_seq_ms", flood_seq_ms);
              ("flood_par_ms", flood_par_ms);
              ("flood_rounds", float_of_int seq_metrics.Distsim.Engine.rounds);
              ( "flood_messages",
                float_of_int seq_metrics.Distsim.Engine.messages );
              ("flood_identical", if identical then 1.0 else 0.0);
            ]
            @ spanner_fields )
      end)
    (csr_anchors ())

(* ------------------------------------------------------------------ *)
(* Frugal A/B rows (new in schema "spanner-bench/8").

   For every protocol anchor, run the protocol plain and under the
   message-frugality layer ([Engine.run ?frugal]: silence-as-
   information re-send suppression + deterministic collection trees)
   in interleaved reps. The row records both sides of the ledger —
   logical message/bit counts (identical by construction) next to the
   physical stream ([metrics.sent_physical] / [sent_bits]) — plus the
   layer's own counters (publishes, collects, suppressed re-sends,
   2-bit markers) and tree shape. The [identical] flag asserts the
   correctness contract (same spanner, same iteration count, equal
   logical metrics per [Engine.metrics_logical_eq]); a divergence
   fails the whole bench, like the alloc A/B. [identical_faulted]
   re-asserts it under a deterministic fault schedule (LOCAL anchors:
   drops + crashes; drops exercise the suppression-memo invalidation
   path). *)

let frugal_schedule spec =
  match Distsim.Faults.parse spec with
  | Ok s -> s
  | Error e -> failwith e

(* Frugal auto fields (new in schema "spanner-bench/9").

   [Frugal.Auto w] probes each run for [w] rounds at full charge
   before deciding whether per-edge silence suppression pays: it arms
   only when the observed payload repeats form runs long enough that
   the 2-bit Again/Eps marker pair costs fewer physical messages than
   the repeats it silences. The point is the chunked CONGEST anchors,
   whose per-chunk payloads rarely repeat — under [Always] they land
   at 0.97x physical messages (markers bought nothing), under [Auto]
   the machine stays at parity and the reduction is >= 1.0x by
   construction. Broadcast suppression and the collection trees are
   unaffected, so repeat-heavy LOCAL anchors keep their full
   reduction. Both the >= 1.0x floor and the logical-identity
   contract are asserted; a violation fails the whole bench. *)
let frugal_auto_fields name kind g (plain : C.Two_spanner_local.result) =
  let fra =
    Distsim.Frugal.create
      ~mode:(Distsim.Frugal.Auto Distsim.Frugal.default_auto_window)
      g
  in
  let fauto = run_anchor ~frugal:fra kind g in
  let m = plain.C.Two_spanner_local.metrics in
  let am = fauto.C.Two_spanner_local.metrics in
  if
    not
      (Edge.Set.equal plain.C.Two_spanner_local.spanner
         fauto.C.Two_spanner_local.spanner
      && Distsim.Engine.metrics_logical_eq m am)
  then
    failwith
      (Printf.sprintf
         "frugal auto A/B: logical divergence on %s (the observation \
          window must be invisible to the protocol)"
         name);
  (* The auto contract is on the classic frugality measure, message
     count: arm only when the observed run lengths pay for the
     markers, so the wire never carries more messages than the
     logical stream. Bits are reported but not gated — on LOCAL
     anchors the collection trees' collect frames can push bit
     totals above logical even as messages drop 2-3x (E19 documents
     the same for Always mode). *)
  if am.sent_physical > m.messages then
    failwith
      (Printf.sprintf
         "frugal auto A/B: %s physical stream above logical (%d > %d \
          msgs) — the auto probe exists to forbid this"
         name am.sent_physical m.messages);
  [
    ("auto_physical_messages", float_of_int am.sent_physical);
    ( "auto_message_reduction",
      float_of_int m.messages /. float_of_int (max 1 am.sent_physical) );
    ("auto_physical_bits", float_of_int am.sent_bits);
    ("auto_armed", float_of_int (Distsim.Frugal.auto_armed fra));
    ("auto_disarmed", float_of_int (Distsim.Frugal.auto_disarmed fra));
    ("auto_identical", 1.0);
  ]

let frugal_rows ~reps ~selected =
  let sel id = selected = [] || List.mem id selected in
  List.filter_map
    (fun (name, family, kind, g) ->
      if not (sel family || sel "e19") then None
      else begin
        let fr = Distsim.Frugal.create g in
        let plain = run_anchor kind g in
        let frug = run_anchor ~frugal:fr kind g in
        (* Snapshot the layer's counters for this one run, before the
           faulted and timing runs accumulate on top. *)
        let publishes = Distsim.Frugal.publishes fr in
        let collects = Distsim.Frugal.collects fr in
        let suppressed = Distsim.Frugal.suppressed fr in
        let markers = Distsim.Frugal.markers fr in
        let identical =
          Edge.Set.equal plain.C.Two_spanner_local.spanner
            frug.C.Two_spanner_local.spanner
          && plain.iterations = frug.iterations
          && Distsim.Engine.metrics_logical_eq plain.metrics frug.metrics
        in
        if not identical then
          failwith
            (Printf.sprintf
               "frugal A/B: logical divergence on %s (the frugality layer \
                must be invisible to the protocol)"
               name);
        (* The same contract under faults. Drops hit the suppression
           memo (an undelivered send must not license later silence);
           LOCAL anchors get drops + crashes with retransmits, the
           chunked CONGEST anchors crashes only (a lossy adversary
           needs the Resilience harness's round bounds). *)
        let faulted_fields =
          match kind with
          | `Congest -> []
          | `Local ->
              let schedule = frugal_schedule "drop=0.08,crash=0.1@r3,seed=13" in
              let adv () = Distsim.Faults.compile ~n:(Ugraph.n g) schedule in
              let fp = run_anchor ~adversary:(adv ()) ~retry:3 kind g in
              let ff =
                run_anchor ~adversary:(adv ()) ~retry:3 ~frugal:fr kind g
              in
              let ok =
                Edge.Set.equal fp.C.Two_spanner_local.spanner
                  ff.C.Two_spanner_local.spanner
                && Distsim.Engine.metrics_logical_eq fp.metrics ff.metrics
              in
              if not ok then
                failwith
                  (Printf.sprintf
                     "frugal A/B: divergence under faults on %s (the \
                      adversary coin stream must be frugality-invariant)"
                     name);
              [ ("identical_faulted", 1.0) ]
        in
        let plain_ms, frugal_ms =
          interleaved_ab_ms ~reps
            (fun () -> ignore (run_anchor kind g))
            (fun () -> ignore (run_anchor ~frugal:fr kind g))
        in
        let m = plain.C.Two_spanner_local.metrics in
        let fm = frug.C.Two_spanner_local.metrics in
        Some
          ( "fr_" ^ name,
            [
              ("n", float_of_int (Ugraph.n g));
              ("m", float_of_int (Ugraph.m g));
              ("rounds", float_of_int m.rounds);
              ("logical_messages", float_of_int m.messages);
              ("physical_messages", float_of_int fm.sent_physical);
              ( "message_reduction",
                float_of_int m.messages
                /. float_of_int (max 1 fm.sent_physical) );
              ("logical_bits", float_of_int m.total_bits);
              ("physical_bits", float_of_int fm.sent_bits);
              ("publishes", float_of_int publishes);
              ("collects", float_of_int collects);
              ("suppressed", float_of_int suppressed);
              ("markers", float_of_int markers);
              ("trees", float_of_int (Distsim.Frugal.tree_count fr));
              ( "max_tree_degree",
                float_of_int (Distsim.Frugal.max_tree_degree fr) );
              ("plain_ms_best", plain_ms);
              ("frugal_ms_best", frugal_ms);
              ("speedup", plain_ms /. Float.max 1e-9 frugal_ms);
              ("identical", 1.0);
            ]
            @ faulted_fields
            @ frugal_auto_fields name kind g plain )
      end)
    (anchors ())

(* Frugal flood rows: the million-vertex anchors, end to end. The
   flood is broadcast-shaped (every emission is a whole-row
   rebroadcast of one value), so it rides the layer's collection-tree
   fast path — which also skips the per-message [mem_edge] binary
   search on the engine's merge path, the honest 1-core win the
   [speedup] field tracks. Single timed runs, like [csr_rows]: at
   these sizes best-of-k would multiply minutes of wall clock. *)
let frugal_flood_rows ~selected =
  let sel id = selected = [] || List.mem id selected in
  List.filter_map
    (fun (name, family, gen, _with_spanner) ->
      if not (sel family) then None
      else begin
        Gc.compact ();
        let g, _ = time_once gen in
        let fr, setup_ms = time_once (fun () -> Distsim.Frugal.create g) in
        let (plain_vals, pm), plain_ms =
          time_once (fun () -> Distsim.Algorithms.flood_min_id g)
        in
        let (frugal_vals, fm), frugal_ms =
          time_once (fun () -> Distsim.Algorithms.flood_min_id ~frugal:fr g)
        in
        if
          not
            (plain_vals = frugal_vals
            && Distsim.Engine.metrics_logical_eq pm fm)
        then
          failwith
            (Printf.sprintf "frugal A/B: flood divergence on %s" name);
        Some
          ( "fr_flood_" ^ name,
            [
              ("n", float_of_int (Ugraph.n g));
              ("m", float_of_int (Ugraph.m g));
              ("rounds", float_of_int pm.Distsim.Engine.rounds);
              ("logical_messages", float_of_int pm.Distsim.Engine.messages);
              ( "physical_messages",
                float_of_int fm.Distsim.Engine.sent_physical );
              ( "message_reduction",
                float_of_int pm.Distsim.Engine.messages
                /. float_of_int (max 1 fm.Distsim.Engine.sent_physical) );
              ("logical_bits", float_of_int pm.Distsim.Engine.total_bits);
              ("physical_bits", float_of_int fm.Distsim.Engine.sent_bits);
              ("setup_ms", setup_ms);
              ("plain_ms", plain_ms);
              ("frugal_ms", frugal_ms);
              ("speedup", plain_ms /. Float.max 1e-9 frugal_ms);
              ("identical", 1.0);
            ] )
      end)
    (csr_anchors ())

(* ------------------------------------------------------------------ *)
(* Churn rows (new in schema "spanner-bench/9").

   Incremental 2-spanner repair under batched edge churn
   ({!Spanner_core.Incremental}): bootstrap with one full protocol
   run, then per tick replace a fraction of the edges (uniform seeded
   deletions + insertions through [Ugraph.apply_delta]'s merge
   rebuild), sweep the update-incident certificates, and re-run the
   protocol only on the dirty ball via [Engine.run ?active]. Each row
   is one (anchor, churn rate) pair and records the per-tick repair
   statistics next to a full-recompute baseline on the same
   post-churn graph — interleaved best-of-k where recompute is cheap
   enough to repeat ([`Best k]), a single timed run on the
   million-vertex anchor ([`Once], where best-of-k recomputes would
   multiply minutes of wall clock). The repair side of the A/B
   rebuilds its workspaces from the pre-tick state every rep
   ([Incremental.create] + [apply]), so its time honestly includes
   the O(n) setup the steady-state loop amortizes. [valid_every_tick]
   is the fast stretch-2 verdict after every tick; the small anchor
   also replays the whole trace under naive/par2/par4 engines and
   asserts bit-identical spanners and tick statistics
   ([deterministic]). *)

let churn_anchors () =
  [
    ( "churn_gnp_10k",
      "e20",
      5,
      `Best 3,
      fun () -> Generators.gnp_connected (rng 51) 10_000 0.0015 );
    ( "churn_gnp_100k",
      "e20big",
      3,
      `Best 3,
      fun () -> Generators.gnp_connected (rng 52) 100_000 0.0002 );
    ( "churn_pa_1e6",
      "e20big",
      2,
      `Once,
      fun () -> Generators.preferential_attachment (rng 53) 1_000_000 3 );
  ]

let churn_rates = [ 0.001; 0.01 ]

let churn_rows ~selected =
  let sel id = selected = [] || List.mem id selected in
  List.concat_map
    (fun (name, family, ticks, ab, gen) ->
      if not (sel family) then []
      else begin
        Gc.compact ();
        let g0 = gen () in
        let (inc0, base), bootstrap_ms =
          time_once (fun () -> C.Incremental.bootstrap ~seed:3 g0)
        in
        let s0 = C.Incremental.spanner inc0 in
        let base_size =
          Edge.Set.cardinal base.C.Two_spanner_local.spanner
        in
        List.map
          (fun rate ->
            let replace =
              max 1 (int_of_float (rate *. float_of_int (Ugraph.m g0)))
            in
            (* One full churn trace from the shared (g0, s0) baseline:
               per tick one seeded delta, one timed repair, one fast
               validity verdict. Returns the final state, the per-tick
               records, the pre-state of the final tick and its delta
               (still in [d]: churn resets it, apply does not) for the
               A/B below. *)
            let run_trace ?sched ?par () =
              let inc = C.Incremental.create ~seed:3 ~spanner:s0 g0 in
              let rng_c = Rng.create 0xC0FFEE in
              let d = Ugraph.Delta.create () in
              let stats = ref [] in
              let pre = ref (g0, s0) in
              for t = 1 to ticks do
                C.Incremental.churn ~rng:rng_c ~replace
                  (C.Incremental.graph inc)
                  d;
                if t = ticks then
                  pre :=
                    (C.Incremental.graph inc, C.Incremental.spanner inc);
                let st, ms =
                  time_once (fun () ->
                      C.Incremental.apply ?sched ?par inc d)
                in
                let ok = C.Incremental.valid inc in
                stats := (st, ms, ok) :: !stats
              done;
              (inc, List.rev !stats, !pre, d)
            in
            let inc, stats, (g_pre, s_pre), d_last = run_trace () in
            let g_post = C.Incremental.graph inc in
            let all_valid = List.for_all (fun (_, _, ok) -> ok) stats in
            let repair_ms =
              List.map (fun (_, ms, _) -> ms) stats
            in
            let repair_mean =
              List.fold_left ( +. ) 0.0 repair_ms /. float_of_int ticks
            in
            let repair_max =
              List.fold_left Float.max 0.0 repair_ms
            in
            let isum f =
              List.fold_left
                (fun a (st, _, _) -> a + f (st : C.Incremental.tick_stats))
                0 stats
            in
            let imax f =
              List.fold_left
                (fun a (st, _, _) -> max a (f (st : C.Incremental.tick_stats)))
                0 stats
            in
            (* The repair-vs-recompute A/B on the final tick's delta:
               repair replays from the pre-tick snapshot, recompute
               runs the full protocol on the post-tick graph both
               sides produce. *)
            let repair_once () =
              let i2 = C.Incremental.create ~seed:3 ~spanner:s_pre g_pre in
              ignore (C.Incremental.apply i2 d_last)
            in
            let recompute_once () =
              ignore (C.Two_spanner_local.run ~seed:3 g_post)
            in
            let repair_best, recompute_best =
              match ab with
              | `Best reps -> interleaved_ab_ms ~reps repair_once recompute_once
              | `Once ->
                  let _, r_ms = time_once repair_once in
                  let _, f_ms = time_once recompute_once in
                  (r_ms, f_ms)
            in
            (* The incremental path's determinism contract, replayed
               end to end on the cheap anchor: same final spanner and
               the same per-tick statistics under every engine. *)
            let det_fields =
              if family <> "e20" then []
              else begin
                let key (i, st, _, _) =
                  ( C.Incremental.spanner i,
                    List.map (fun (s, _, ok) -> (s, ok)) st )
                in
                let s_seq, k_seq = key (inc, stats, ((g_pre, s_pre) : Ugraph.t * Edge.Set.t), d_last) in
                let same variant =
                  let s_v, k_v = key variant in
                  Edge.Set.equal s_seq s_v && k_seq = k_v
                in
                let det =
                  same (run_trace ~sched:`Naive ())
                  && same (run_trace ~par:2 ())
                  && same (run_trace ~par:4 ())
                in
                if not det then
                  failwith
                    (Printf.sprintf
                       "churn: incremental repair diverged across engines \
                        on %s@r%g"
                       name rate);
                [ ("deterministic", 1.0) ]
              end
            in
            let final_size = Edge.Set.cardinal (C.Incremental.spanner inc) in
            ( Printf.sprintf "%s@r%g" name rate,
              [
                ("n", float_of_int (Ugraph.n g0));
                ("m", float_of_int (Ugraph.m g0));
                ("replace_per_tick", float_of_int replace);
                ("ticks", float_of_int ticks);
                ("bootstrap_ms", bootstrap_ms);
                ("repair_ms_mean", repair_mean);
                ("repair_ms_max", repair_max);
                ("repair_ms_best", repair_best);
                ("recompute_ms_best", recompute_best);
                ( "speedup_vs_recompute",
                  recompute_best /. Float.max 1e-9 repair_best );
                ("seeds_mean", float_of_int (isum (fun s -> s.seeds) / ticks));
                ("broken_total", float_of_int (isum (fun s -> s.broken)));
                ("dirty_mean", float_of_int (isum (fun s -> s.dirty) / ticks));
                ("dirty_max", float_of_int (imax (fun s -> s.dirty)));
                ("spanner_edges", float_of_int final_size);
                ("spanner_drift", float_of_int (final_size - base_size));
                ("valid_every_tick", if all_valid then 1.0 else 0.0);
              ]
              @ det_fields )
          )
          churn_rates
      end)
    (churn_anchors ())

(* ------------------------------------------------------------------ *)
(* Serving anchors (schema 10, family e21): fork a spannerd preloaded
   with a resident spanner, hammer it with closed-loop query threads
   (Serveload), and record the latency distribution and throughput the
   daemon sustains on this container. Latency fields are wall-clock
   and noisy by nature (bench_diff classifies the [_us] suffix);
   [n]/[m]/[spanner_edges]/[conns]/[errors] are exact, and errors must
   be 0 on a healthy run. *)

let serve_anchors =
  [
    (* name, family, preload spec, connections, burst seconds *)
    ("serve_gnp10k_c8", "e21", "gnp 10000 0.0015 51", 8, 2.0);
    ("serve_gnp10k_c32", "e21", "gnp 10000 0.0015 51", 32, 2.0);
  ]

let serve_rows ~selected =
  let sel id = selected = [] || List.mem id selected in
  List.concat_map
    (fun (name, family, preload, conns, secs) ->
      if not (sel family) then []
      else begin
        let d = Serveload.spawn_daemon ~preload () in
        Fun.protect ~finally:(fun () -> Serveload.stop_daemon d) @@ fun () ->
        let n, m, spanner_edges =
          let c = Spannernet.Client.connect ~port:d.Serveload.port () in
          Fun.protect
            ~finally:(fun () -> Spannernet.Client.close c)
            (fun () ->
              match Spannernet.Client.request c Spannernet.Wire.Stats with
              | Ok (Spannernet.Wire.Stats_reply fields) ->
                  let get k =
                    match List.assoc_opt k fields with
                    | Some v -> v
                    | None -> 0.0
                  in
                  (get "n", get "m", get "spanner_edges")
              | Ok _ | Error _ -> failwith "serve_rows: STATS failed")
        in
        let st =
          Serveload.run_load ~port:d.Serveload.port ~conns ~secs ~seed:9
            ~n:(int_of_float n) ()
        in
        let h = st.Serveload.hist in
        let pc p = float_of_int (Distsim.Histogram.percentile h p) in
        printf
          "%-18s conns=%-3d queries=%-6d errors=%d qps=%-6.0f \
           lat_us p50=%d p99=%d\n%!"
          name conns st.Serveload.queries st.Serveload.errors
          (Serveload.qps st)
          (Distsim.Histogram.percentile h 0.5)
          (Distsim.Histogram.percentile h 0.99);
        [
          ( name,
            [
              ("n", n);
              ("m", m);
              ("spanner_edges", spanner_edges);
              ("conns", float_of_int st.Serveload.conns);
              ("secs", st.Serveload.secs);
              ("queries", float_of_int st.Serveload.queries);
              ("errors", float_of_int st.Serveload.errors);
              ("qps", Serveload.qps st);
              ("lat_us_p50", pc 0.5);
              ("lat_us_p90", pc 0.9);
              ("lat_us_p99", pc 0.99);
              ("lat_us_max", float_of_int (Distsim.Histogram.max_value h));
              ("lat_us_mean", Distsim.Histogram.mean h);
            ] )
        ]
      end)
    serve_anchors

(* ------------------------------------------------------------------ *)
(* Perf trajectory (--json FILE): a machine-readable snapshot of the
   Bechamel estimates, wall-clock anchors, seq-vs-par A/B and engine
   metrics, written as BENCH_PR<k>.json at the end of a PR so
   regressions show up as diffs (see EXPERIMENTS.md,
   "Performance"). *)

let perf_json ~json_path ~trace_path ~selected ~micro_rows ~par =
  let sel id = selected = [] || List.mem id selected in
  let with_densest_count f =
    let c0 = !Netflow.Densest.solver_calls in
    let r = f () in
    (r, !Netflow.Densest.solver_calls - c0)
  in
  let trace_oc = Option.map open_out trace_path in
  (* Every metric-row run executes under a Stats sink (and, when
     --trace FILE was given, a tee'd JSONL sink with a
     "anchor:<name>" counter separating the runs), so the JSON can
     carry the per-round series of the same executions the engine
     metrics describe. *)
  let series_acc = ref [] in
  (* Each metric-row run also carries a Profile (schema 7's "profile"
     section): histograms of message bits and inbox sizes, round
     times, and the per-phase breakdown of the same execution. The
     profile sink reports [wants_sends = false], so its presence
     changes neither the event stream nor the metering. *)
  let profile_acc = ref [] in
  let traced name f =
    let st = Distsim.Trace.stats () in
    let prof = Distsim.Profile.create () in
    let sink =
      Distsim.Trace.tee (Distsim.Trace.stats_sink st)
        (Distsim.Profile.sink prof)
    in
    let sink =
      match trace_oc with
      | None -> sink
      | Some oc ->
          let j = Distsim.Trace.jsonl ~sends:false oc in
          Distsim.Trace.emit j
            (Distsim.Trace.Counter
               { name = "anchor:" ^ name; value = 0.0; round = 0 });
          Distsim.Trace.tee sink j
    in
    let r = f sink prof in
    series_acc := (name, Distsim.Trace.series st) :: !series_acc;
    profile_acc := (name, prof) :: !profile_acc;
    r
  in
  (* Engine metrics: the E1 graph families under the LOCAL protocol,
     plus the protocol anchors. *)
  let metric_rows =
    let e1_rows =
      if not (sel "e1") then []
      else
        List.map
          (fun (name, g) ->
            let name = "e1_local_" ^ name in
            let r, calls =
              with_densest_count (fun () ->
                  traced name (fun sink prof ->
                      C.Two_spanner_local.run ~seed:5 ~trace:sink
                        ~profile:prof g))
            in
            metric_row name g r calls)
          (ratio_families ())
    in
    let anchor_rows =
      List.filter_map
        (fun (name, family, kind, g) ->
          if not (sel family) then None
          else
            let r, calls =
              with_densest_count (fun () ->
                  traced name (fun sink prof ->
                      run_anchor ~trace:sink ~profile:prof kind g))
            in
            Some (metric_row name g r calls))
        (anchors ())
    in
    e1_rows @ anchor_rows
  in
  let series_rows = List.rev !series_acc in
  let profile_rows = List.rev !profile_acc in
  Option.iter close_out trace_oc;
  (* Wall-clock anchors run with the default null sink: comparing
     these against the previous PR's numbers shows the tracing layer's
     (absence of) overhead on the untraced path; the stats-sink
     column quantifies the cost of actually collecting a series. *)
  let wall_rows =
    List.filter_map
      (fun (name, family, kind, g) ->
        if not (sel family) then None
        else
          Some
            (name, best_wall_ms ~reps:5 (fun () -> ignore (run_anchor kind g))))
      (anchors ())
  in
  let wall_stats_rows =
    if json_path = None then []
    else
      List.filter_map
        (fun (name, family, kind, g) ->
          if not (sel family) then None
          else
            Some
              ( name,
                best_wall_ms ~reps:3 (fun () ->
                    let st = Distsim.Trace.stats () in
                    ignore
                      (run_anchor ~trace:(Distsim.Trace.stats_sink st) kind g))
              ))
        (anchors ())
  in
  let sv_rows =
    if json_path = None then [] else seq_vs_par_rows ~par ~reps:3 ~selected
  in
  let al_rows =
    if json_path = None then [] else alloc_rows ~reps:3 ~selected
  in
  let ft_rows = if json_path = None then [] else fault_rows ~selected in
  let cs_rows = if json_path = None then [] else csr_rows ~par ~selected in
  let fr_rows =
    if json_path = None then []
    else frugal_rows ~reps:3 ~selected @ frugal_flood_rows ~selected
  in
  let ch_rows = if json_path = None then [] else churn_rows ~selected in
  let sv2_rows = if json_path = None then [] else serve_rows ~selected in
  (match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      let buf = Buffer.create 4096 in
      let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      let sep body items =
        List.iteri
          (fun i x ->
            if i > 0 then out ",\n";
            body x)
          items
      in
      let num v =
        (* Integers as integers, everything else with 3 decimals. *)
        if Float.is_integer v && Float.abs v < 1e15 then
          Printf.sprintf "%.0f" v
        else Printf.sprintf "%.3f" v
      in
      out "{\n";
      out "  \"schema\": \"spanner-bench/10\",\n";
      out "  \"par\": { \"domains\": %d, \"cores\": %d },\n" par
        (Domain.recommended_domain_count ());
      out "  \"micro_ns_per_run\": {\n";
      sep
        (fun (name, est) -> out "    %S: %.1f" name est)
        (match micro_rows with None -> [] | Some rows -> rows);
      out "\n  },\n";
      out "  \"wall_clock_ms_best_of_5\": {\n";
      sep (fun (name, ms) -> out "    %S: %.3f" name ms) wall_rows;
      out "\n  },\n";
      out "  \"wall_clock_ms_stats_sink_best_of_3\": {\n";
      sep (fun (name, ms) -> out "    %S: %.3f" name ms) wall_stats_rows;
      out "\n  },\n";
      out "  \"seq_vs_par\": {\n";
      sep
        (fun (name, fields) ->
          out "    %S: { " name;
          List.iteri
            (fun i (k, v) ->
              if i > 0 then out ", ";
              out "%S: %s" k (num v))
            fields;
          out " }")
        sv_rows;
      out "\n  },\n";
      out "  \"alloc\": {\n";
      sep
        (fun (name, fields) ->
          out "    %S: { " name;
          List.iteri
            (fun i (k, v) ->
              if i > 0 then out ", ";
              out "%S: %s" k (num v))
            fields;
          out " }")
        al_rows;
      out "\n  },\n";
      out "  \"faults\": {\n";
      sep
        (fun (name, fields) ->
          out "    %S: { " name;
          List.iteri
            (fun i (k, v) ->
              if i > 0 then out ", ";
              out "%S: %s" k (num v))
            fields;
          out " }")
        ft_rows;
      out "\n  },\n";
      out "  \"csr\": {\n";
      sep
        (fun (name, fields) ->
          out "    %S: { " name;
          List.iteri
            (fun i (k, v) ->
              if i > 0 then out ", ";
              out "%S: %s" k (num v))
            fields;
          out " }")
        cs_rows;
      out "\n  },\n";
      (* Frugal A/B rows (schema "spanner-bench/8"): the physical
         wire stream under the message-frugality layer next to the
         logical one, with the correctness contract asserted on every
         row ([identical] / [identical_faulted]). *)
      out "  \"frugal\": {\n";
      sep
        (fun (name, fields) ->
          out "    %S: { " name;
          List.iteri
            (fun i (k, v) ->
              if i > 0 then out ", ";
              out "%S: %s" k (num v))
            fields;
          out " }")
        fr_rows;
      out "\n  },\n";
      (* Churn rows (schema "spanner-bench/9"): incremental dirty-ball
         repair vs full recompute under seeded edge churn, with the
         per-tick validity verdict and (on the small anchor) the
         cross-engine determinism flag folded in. *)
      out "  \"churn\": {\n";
      sep
        (fun (name, fields) ->
          out "    %S: { " name;
          List.iteri
            (fun i (k, v) ->
              if i > 0 then out ", ";
              out "%S: %s" k (num v))
            fields;
          out " }")
        ch_rows;
      out "\n  },\n";
      (* Serve rows (schema "spanner-bench/10"): closed-loop query
         load against a forked spannerd holding the resident spanner —
         queries/sec, error count and the per-request latency
         distribution in microseconds. *)
      out "  \"serve\": {\n";
      sep
        (fun (name, fields) ->
          out "    %S: { " name;
          List.iteri
            (fun i (k, v) ->
              if i > 0 then out ", ";
              out "%S: %s" k (num v))
            fields;
          out " }")
        sv2_rows;
      out "\n  },\n";
      out "  \"round_series\": {\n";
      sep
        (fun (name, series) ->
          let rounds, steps, m_total, m_max, m_mean, b_max, hist =
            series_summary series
          in
          out
            "    %S: { \"rounds\": %d, \"steps\": %d, \"messages_total\": \
             %d, \"messages_max_round\": %d, \"messages_mean_round\": %.2f, \
             \"bits_max_round\": %d, \"stepped_hist\": [%s] }"
            name rounds steps m_total m_max m_mean b_max
            (String.concat ", "
               (Array.to_list (Array.map string_of_int hist))))
        series_rows;
      out "\n  },\n";
      (* Profile rows (schema "spanner-bench/7"): histogram
         percentiles and per-phase breakdowns of the same traced
         executions the engine metrics describe. Histogram-derived
         fields (message/inbox percentiles, counts) are deterministic;
         [*_ns] fields are wall-clock measurements and noisy by
         nature — bench_diff classifies them by suffix. *)
      out "  \"profile\": {\n";
      sep
        (fun (name, p) ->
          let bits = Distsim.Profile.message_bits p in
          let inbox = Distsim.Profile.inbox_sizes p in
          let rt = Distsim.Profile.round_times p in
          let pc h q = Distsim.Histogram.percentile h q in
          out
            "    %S: { \"rounds\": %d, \"messages\": %d, \"bits_p50\": %d, \
             \"bits_p90\": %d, \"bits_p99\": %d, \"bits_max\": %d, \
             \"inbox_p50\": %d, \"inbox_p99\": %d, \"inbox_max\": %d, \
             \"round_ns_p50\": %d, \"round_ns_p90\": %d, \"round_ns_p99\": \
             %d, \"total_ns\": %d"
            name
            (Distsim.Profile.rounds_profiled p)
            (Distsim.Histogram.count bits)
            (pc bits 0.5) (pc bits 0.9) (pc bits 0.99)
            (Distsim.Histogram.max_value bits)
            (pc inbox 0.5) (pc inbox 0.99)
            (Distsim.Histogram.max_value inbox)
            (pc rt 0.5) (pc rt 0.9) (pc rt 0.99)
            (Distsim.Profile.total_ns p);
          List.iter
            (fun (row : Distsim.Profile.phase_row) ->
              out ", \"phase_%s_rounds\": %d, \"phase_%s_ns\": %d" row.phase
                row.occurrences row.phase row.total_ns)
            (Distsim.Profile.phase_breakdown p);
          out " }")
        profile_rows;
      out "\n  },\n";
      out "  \"engine_metrics\": {\n";
      sep
        (fun (name, fields) ->
          out "    %S: { " name;
          List.iteri
            (fun i (k, v) ->
              if i > 0 then out ", ";
              out "%S: %.0f" k v)
            fields;
          out " }")
        metric_rows;
      out "\n  }\n";
      out "}\n";
      output_string oc (Buffer.contents buf);
      close_out oc;
      printf
        "\nperf trajectory written to %s (%d metric rows, %d micros, %d \
         seq-vs-par anchors at %d domains, %d alloc rows, %d fault rows, %d \
         csr rows, %d frugal rows, %d churn rows, %d serve rows, %d profile \
         rows)\n"
        path
        (List.length metric_rows)
        (match micro_rows with None -> 0 | Some rows -> List.length rows)
        (List.length sv_rows) par (List.length al_rows)
        (List.length ft_rows) (List.length cs_rows) (List.length fr_rows)
        (List.length ch_rows) (List.length sv2_rows)
        (List.length profile_rows));
  match trace_path with
  | Some path ->
      printf "event trace (JSON Lines) written to %s (%d runs)\n" path
        (List.length series_rows)
  | None -> ()
