(* Latency load-generator for spannerd.

   Closed-loop mode: N client threads, each its own connection and
   seeded query stream, per-request latency into log2 histograms,
   merged and summarized after the burst:

     loadgen --spawn "gnp 10000 0.0015 51" --conns 32 --secs 2 --seed 9
     loadgen --port 7421 --conns 8 --secs 1

   Script mode (the determinism smoke): send each line of a command
   file, print every reply line — the transcript is byte-identical
   across daemon runs:

     loadgen --port 7421 --script session.txt *)

module H = Distsim.Histogram
module Net = Spannernet

let usage = "loadgen [--spawn SPEC | --port P] [--host H] [--conns N] \
             [--secs S] [--seed K] [--script FILE]"

let () =
  let host = ref "127.0.0.1" in
  let port = ref 0 in
  let spawn = ref "" in
  let conns = ref 8 in
  let secs = ref 2.0 in
  let seed = ref 9 in
  let script = ref "" in
  Arg.parse
    [
      ("--host", Arg.Set_string host, "ADDR daemon address");
      ("--port", Arg.Set_int port, "PORT daemon port (0 = use --spawn)");
      ("--spawn", Arg.Set_string spawn,
       "SPEC fork a daemon preloaded with 'LOAD SPEC', e.g. 'gnp 10000 \
        0.0015 51'");
      ("--conns", Arg.Set_int conns, "N concurrent connections (default 8)");
      ("--secs", Arg.Set_float secs, "S burst duration (default 2.0)");
      ("--seed", Arg.Set_int seed, "K query-mix seed (default 9)");
      ("--script", Arg.Set_string script,
       "FILE scripted session: send each line, print each reply");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let daemon =
    if !spawn <> "" then begin
      let d = Serveload.spawn_daemon ~preload:!spawn () in
      port := d.Serveload.port;
      Some d
    end
    else None
  in
  if !port = 0 then begin
    prerr_endline "loadgen: need --port or --spawn";
    exit 2
  end;
  Fun.protect
    ~finally:(fun () ->
      match daemon with Some d -> Serveload.stop_daemon d | None -> ())
  @@ fun () ->
  if !script <> "" then begin
    (* Scripted session: one reply (plus any EVENT frames) per line. *)
    let ic = open_in !script in
    let commands = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then commands := line :: !commands
       done
     with End_of_file -> close_in ic);
    let c = Net.Client.connect ~host:!host ~port:!port () in
    Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
    List.iter
      (fun cmd ->
        Net.Client.send_line c cmd;
        let rec replies () =
          match Net.Client.recv_line c with
          | None -> ()
          | Some line ->
              print_endline line;
              if String.length line >= 6 && String.sub line 0 6 = "EVENT "
              then replies ()
        in
        replies ())
      (List.rev !commands)
  end
  else begin
    let n = Serveload.resident_n ~host:!host ~port:!port in
    let st =
      Serveload.run_load ~host:!host ~port:!port ~conns:!conns ~secs:!secs
        ~seed:!seed ~n ()
    in
    let pc p = H.percentile st.Serveload.hist p in
    Printf.printf
      "serve: n=%d conns=%d secs=%.2f queries=%d errors=%d qps=%.0f\n" n
      st.Serveload.conns st.Serveload.secs st.Serveload.queries
      st.Serveload.errors (Serveload.qps st);
    Printf.printf
      "latency_us: p50=%d p90=%d p99=%d max=%d mean=%.1f\n" (pc 0.5)
      (pc 0.9) (pc 0.99)
      (H.max_value st.Serveload.hist)
      (H.mean st.Serveload.hist)
  end
