(* Wall-clock repeat timer for the protocol hot paths.

   Bechamel's OLS estimates are great for ns-scale kernels but noisy
   for multi-millisecond end-to-end protocol runs on a busy machine;
   this harness times fixed workloads over many repetitions and
   reports the best (least-interfered) wall-clock per run. It is the
   tool used for the before/after numbers in EXPERIMENTS.md and the
   wall-clock fields of BENCH_PR*.json.

   Usage: dune exec bench/timeit.exe [-- reps [workload ...]] *)

open Grapho
module C = Spanner_core

let rng seed = Rng.create seed

let workloads () =
  [
    ( "e8_local_caveman",
      let g = Generators.caveman (rng 23) 8 8 0.03 in
      fun () -> ignore (C.Two_spanner_local.run ~seed:3 g) );
    ( "e15_congest",
      let g = Generators.caveman (rng 24) 6 6 0.04 in
      fun () -> ignore (C.Two_spanner_local.run_congest ~seed:3 g) );
    ( "e13_local_protocol",
      let g = Generators.caveman (rng 19) 4 6 0.05 in
      fun () -> ignore (C.Two_spanner_local.run ~seed:3 g) );
    ( "e15_congest_port",
      let g = Generators.caveman (rng 21) 4 6 0.05 in
      fun () -> ignore (C.Two_spanner_local.run_congest ~seed:3 g) );
    ( "e2_gnp_400_local",
      let g = Generators.gnp_connected (rng 400) 400 0.1 in
      fun () -> ignore (C.Two_spanner_local.run ~seed:3 g) );
  ]

let best_of ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Distsim.Clock.now_s () in
    f ();
    let dt = Distsim.Clock.now_s () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let () =
  let reps, only =
    match Array.to_list Sys.argv with
    | _ :: r :: rest -> ((try int_of_string r with _ -> 7), rest)
    | _ -> (7, [])
  in
  let selected =
    List.filter
      (fun (name, _) -> only = [] || List.mem name only)
      (workloads ())
  in
  Printf.printf "%-24s %12s  (best of %d)\n" "workload" "ms/run" reps;
  List.iter
    (fun (name, f) ->
      f () (* warm-up *);
      let s = best_of ~reps f in
      Printf.printf "%-24s %12.2f\n" name (1000.0 *. s))
    selected
