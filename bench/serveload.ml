(* Shared serving-bench machinery: fork a spannerd (fork+exec — bare
   fork is unsafe once the domain pool exists), wait for its port
   file, hammer it with closed-loop query threads, merge per-thread
   latency histograms. Used by both the loadgen CLI and the bench's
   serve section. *)

module H = Distsim.Histogram
module Net = Spannernet
module Rng = Grapho.Rng

type daemon = { pid : int; port : int; port_file : string }

let spannerd_path () =
  (* bench/*.exe and bin/spannerd.exe live in sibling directories of
     one _build tree. *)
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "spannerd.exe"))

let spawn_daemon ?preload () =
  let exe = spannerd_path () in
  if not (Sys.file_exists exe) then
    failwith ("serveload: spannerd not built at " ^ exe);
  let port_file = Filename.temp_file "spannerd" ".port" in
  Sys.remove port_file;
  let args =
    [ exe; "--port"; "0"; "--port-file"; port_file ]
    @ (match preload with Some s -> [ "--preload"; s ] | None -> [])
  in
  let devnull = Unix.openfile "/dev/null" [ O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe (Array.of_list args) Unix.stdin devnull devnull
  in
  Unix.close devnull;
  (* The port file appears only after the preload finished, so its
     existence doubles as the ready signal. The 10^6-scale preloads
     take minutes; poll patiently. *)
  let deadline = Unix.gettimeofday () +. 300.0 in
  let rec wait () =
    match
      let ic = open_in port_file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> int_of_string (String.trim (input_line ic)))
    with
    | port -> port
    | exception _ ->
        (match Unix.waitpid [ WNOHANG ] pid with
        | 0, _ -> ()
        | _, _ -> failwith "serveload: spannerd exited before listening");
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          failwith "serveload: spannerd did not come up"
        end;
        Unix.sleepf 0.05;
        wait ()
  in
  let port = wait () in
  { pid; port; port_file }

let stop_daemon d =
  (try
     let c = Net.Client.connect ~port:d.port () in
     ignore (Net.Client.request c Net.Wire.Shutdown);
     Net.Client.close c
   with _ -> (try Unix.kill d.pid Sys.sigint with Unix.Unix_error _ -> ()));
  (try ignore (Unix.waitpid [] d.pid) with Unix.Unix_error _ -> ());
  try Sys.remove d.port_file with Sys_error _ -> ()

type load_stats = {
  conns : int;
  secs : float;  (* measured wall-clock of the whole burst *)
  queries : int;
  errors : int;
  hist : H.t;  (* per-request latency, microseconds *)
}

let qps st = float_of_int st.queries /. Float.max st.secs 1e-9

(* One closed-loop worker: its own connection, rng and histogram —
   nothing shared, merge at the end (order-independent, so the merged
   histogram is deterministic given each thread's request count). *)
let worker ~host ~port ~n ~seed ~deadline i =
  let rng = Rng.create (seed lxor ((i + 1) * 0x9E3779B9)) in
  let hist = H.create () in
  let queries = ref 0 and errors = ref 0 in
  (match Net.Client.connect ~host ~port () with
  | exception _ -> errors := 1
  | c ->
      Fun.protect
        ~finally:(fun () -> Net.Client.close c)
        (fun () ->
          while Unix.gettimeofday () < deadline do
            let u = Rng.int rng n and v = Rng.int rng n in
            let t0 = Unix.gettimeofday () in
            (match Net.Client.request c (Net.Wire.Query (u, v)) with
            | Ok (Net.Wire.Path _ | Net.Wire.Nopath _) -> incr queries
            | Ok _ | Error _ -> incr errors);
            let dt = Unix.gettimeofday () -. t0 in
            H.record hist (int_of_float (1e6 *. dt))
          done));
  (hist, !queries, !errors)

let run_load ?(host = "127.0.0.1") ~port ~conns ~secs ~seed ~n () =
  if conns < 1 then invalid_arg "serveload: conns must be >= 1";
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. secs in
  let parts = Array.make conns None in
  let threads =
    List.init conns (fun i ->
        Thread.create
          (fun i -> parts.(i) <- Some (worker ~host ~port ~n ~seed ~deadline i))
          i)
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let hist = H.create () in
  let queries = ref 0 and errors = ref 0 in
  Array.iter
    (function
      | None -> errors := !errors + 1
      | Some (h, q, e) ->
          H.merge_into ~into:hist h;
          queries := !queries + q;
          errors := !errors + e)
    parts;
  { conns; secs = elapsed; queries = !queries; errors = !errors; hist }

(* Ask a running daemon how many vertices it holds (for the query
   mix) — loadgen's no-spawn mode. *)
let resident_n ~host ~port =
  let c = Net.Client.connect ~host ~port () in
  Fun.protect
    ~finally:(fun () -> Net.Client.close c)
    (fun () ->
      match Net.Client.request c Net.Wire.Stats with
      | Ok (Net.Wire.Stats_reply fields) -> (
          match List.assoc_opt "n" fields with
          | Some n when n > 0.0 -> int_of_float n
          | _ -> failwith "loadgen: daemon has no graph loaded")
      | Ok _ | Error _ -> failwith "loadgen: STATS failed")
