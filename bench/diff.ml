(* bench_diff — compare two bench trajectory files (bench/main.exe --json)
   anchor by anchor and flag regressions.

     dune exec bench/diff.exe -- OLD.json NEW.json [options]

   Every leaf of both files is flattened to a slash path
   (section/anchor/field) and the intersection is compared:

   - timing fields (wall-clock, per-run nanoseconds, GC pressure) are
     noise: NEW may exceed OLD by the tolerance before the row counts
     as a regression, and rows whose OLD value sits below the floor
     are skipped outright — ratios of sub-millisecond measurements
     mean nothing (the checked-in trajectories contain a 1694x "jump"
     on a 0.14 ms micro-entry that is pure harness re-anchoring);
   - ratio-like fields (speedup, *_ratio) and machine identity (par/)
     are skipped: they divide one noisy clock by another;
   - everything else (rounds, messages, bits, spanner sizes, identical
     / valid flags, histograms) is deterministic and must match
     exactly — mismatches warn by default and fail under --strict.

   Exits 0 when no row fails, 1 on regressions, 2 on usage/parse
   errors. Keys present in only one file are reported, never fatal:
   a fresh single-experiment run is a legitimate NEW side. Whole
   sections (top-level path components) present in only one file are
   called out by name as "section added"/"section removed" — that is
   what a schema bump looks like, and naming it lets check.sh keep
   gating OLD-vs-NEW across bumps instead of pinning both files to
   one schema.

   Defaults are calibrated against BENCH_PR5.json vs BENCH_PR6.json:
   the worst above-floor timing drift between those checked-in runs is
   1.77x and GC fields only improved, so tolerance 1.0 (fail above
   2x) separates noise from regression with margin on both sides. *)

(* ---- minimal recursive-descent JSON ------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos >= n then '\000' else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %C" c);
    advance ()
  in
  let expect_lit lit v =
    String.iter (fun c -> expect c) lit;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              (* bench files are ASCII; keep the escape verbatim *)
              Buffer.add_string buf "\\u"
          | c -> fail (Printf.sprintf "bad escape %C" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while numeric (peek ()) do advance () done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | 't' -> expect_lit "true" (Bool true)
    | 'f' -> expect_lit "false" (Bool false)
    | 'n' -> expect_lit "null" Null
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ()
            | '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); Arr [])
        else begin
          let items = ref [] in
          let rec elems () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | ',' -> advance (); elems ()
            | ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elems ();
          Arr (List.rev !items)
        end
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---- flattening and field classes -------------------------------- *)

(* Leaves in file order, keyed "section/anchor/field". Arrays are
   leaves (round-series histograms compare as a unit). *)
let flatten (j : json) : (string * json) list =
  let out = ref [] in
  let rec go path j =
    match j with
    | Obj fields ->
        List.iter
          (fun (k, v) -> go (if path = "" then k else path ^ "/" ^ k) v)
          fields
    | leaf -> out := (path, leaf) :: !out
  in
  go "" j;
  List.rev !out

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else at (i + 1)
  in
  nn = 0 || at 0

let has_prefix p s = String.length s >= String.length p
  && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  let ns = String.length s and nf = String.length suf in
  ns >= nf && String.sub s (ns - nf) nf = suf

(* What kind of comparison a path gets. [Timing floor] carries the
   below-which-we-skip floor in the field's native unit. *)
type cls = Skip | Timing of float | Exact

let classify ~floor_ms path =
  if path = "schema" then Skip (* reported separately *)
  else if has_prefix "par/" path then Skip (* machine identity *)
  else if contains path "speedup" || contains path "ratio" then Skip
  else if has_suffix "minor_words" path || has_suffix "allocated_bytes" path
  then
    (* GC pressure. [allocated_bytes] only advances at minor-heap
       flushes, so for runs allocating less than a few minor heaps the
       delta measures heap phase, not the run — deltas below ~10M
       words/bytes are phase-dominated and carry no signal. *)
    Timing 1e7
  else if contains path "_ns" || has_prefix "micro_ns_per_run/" path then
    Timing (floor_ms *. 1e6)
  else if contains path "_ms" || has_prefix "wall_clock" path then
    Timing floor_ms
  else if contains path "_us" then Timing (floor_ms *. 1e3)
  else if
    (* Serve-section throughput: run-to-run noisy, and higher is
       better — the Timing rule's direction is wrong for it, so it is
       excluded from gating rather than gated backwards. *)
    has_prefix "serve/" path
    && (has_suffix "qps" path || has_suffix "queries" path
       || has_suffix "secs" path)
  then Skip
  else Exact

(* ---- comparison --------------------------------------------------- *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let str_of = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num v -> fnum v
  | Str s -> Printf.sprintf "%S" s
  | Arr items ->
      "["
      ^ String.concat ","
          (List.map (function Num v -> fnum v | _ -> "?") items)
      ^ "]"
  | Obj _ -> "{...}"

let () =
  let usage =
    "usage: bench_diff OLD.json NEW.json [--tolerance T] [--floor-ms F] \
     [--strict]\n\
     \  --tolerance T  allowed timing growth: NEW/OLD above 1+T fails \
     (default 1.0, i.e. fail above 2x)\n\
     \  --floor-ms F   skip timing rows whose OLD value is below F \
     milliseconds (default 1.0; ns fields scale to F*1e6, GC fields \
     floor at 1e7 words/bytes)\n\
     \  --strict       deterministic-field mismatches (counts, flags, \
     histograms) fail instead of warn\n"
  in
  let tolerance = ref 1.0 in
  let floor_ms = ref 1.0 in
  let strict = ref false in
  let files = ref [] in
  let die msg =
    prerr_string msg;
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0.0 -> tolerance := t
        | _ -> die usage);
        parse_args rest
    | "--floor-ms" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0.0 -> floor_ms := f
        | _ -> die usage);
        parse_args rest
    | "--strict" :: rest ->
        strict := true;
        parse_args rest
    | ("--help" | "-h") :: _ ->
        print_string usage;
        exit 0
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
        files := f :: !files;
        parse_args rest
    | f :: _ -> die (Printf.sprintf "bench_diff: unknown option %s\n%s" f usage)
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_file, new_file =
    match List.rev !files with
    | [ a; b ] -> (a, b)
    | _ -> die usage
  in
  let load path =
    let text =
      try
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
      with Sys_error e -> die (Printf.sprintf "bench_diff: %s\n" e)
    in
    try parse_json text
    with Parse msg -> die (Printf.sprintf "bench_diff: %s: %s\n" path msg)
  in
  let jo = load old_file and jn = load new_file in
  let fo = flatten jo and fn = flatten jn in
  let tbl = Hashtbl.create 512 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) fn;
  let schema_of flat =
    match List.assoc_opt "schema" flat with Some (Str s) -> s | _ -> "?"
  in
  Printf.printf "bench_diff: %s (%s) vs %s (%s)  tolerance=%.2f floor=%.1fms%s\n"
    old_file (schema_of fo) new_file (schema_of fn) !tolerance !floor_ms
    (if !strict then " strict" else "");
  let compared = ref 0
  and ok = ref 0
  and improved = ref 0
  and skipped = ref 0
  and below_floor = ref 0
  and warns = ref 0
  and fails = ref 0
  and only_old_keys = ref [] in
  let row status path old_s new_s note =
    Printf.printf "  %-6s %-44s %14s -> %-14s %s\n" status path old_s new_s
      note
  in
  List.iter
    (fun (path, vo) ->
      match Hashtbl.find_opt tbl path with
      | None -> only_old_keys := path :: !only_old_keys
      | Some vn -> (
          incr compared;
          match classify ~floor_ms:!floor_ms path with
          | Skip -> incr skipped
          | Timing floor -> (
              match (vo, vn) with
              | Num o, Num nv ->
                  if o < floor then incr below_floor
                  else
                    let ratio = nv /. o in
                    if ratio > 1.0 +. !tolerance then begin
                      incr fails;
                      row "FAIL" path (fnum o) (fnum nv)
                        (Printf.sprintf "(%.2fx > %.2fx tolerance)" ratio
                           (1.0 +. !tolerance))
                    end
                    else if ratio < 1.0 /. (1.0 +. !tolerance) then begin
                      incr improved;
                      row "good" path (fnum o) (fnum nv)
                        (Printf.sprintf "(%.2fx)" ratio)
                    end
                    else incr ok
              | _ ->
                  incr warns;
                  row "warn" path (str_of vo) (str_of vn)
                    "(timing field is not a number)")
          | Exact ->
              if vo = vn then incr ok
              else begin
                let status = if !strict then "FAIL" else "warn" in
                if !strict then incr fails else incr warns;
                row status path (str_of vo) (str_of vn)
                  "(deterministic field changed)"
              end))
    fo;
  let only_old = List.rev !only_old_keys in
  let tbl_old = Hashtbl.create 512 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl_old k v) fo;
  let only_new =
    List.filter_map
      (fun (k, _) -> if Hashtbl.mem tbl_old k then None else Some k)
      fn
  in
  (* Whole-section adds/removes, named: the top-level components that
     exist in exactly one file. A schema bump is supposed to look like
     this, so the report says which sections moved instead of leaving
     a bare only-in-one count to decode. *)
  let section_of path =
    match String.index_opt path '/' with
    | Some i -> String.sub path 0 i
    | None -> path
  in
  let sections flat =
    List.fold_left
      (fun acc (k, _) ->
        let s = section_of k in
        if List.mem s acc then acc else s :: acc)
      [] flat
    |> List.rev
  in
  let so = sections fo and sn = sections fn in
  let added = List.filter (fun s -> not (List.mem s so)) sn in
  let removed = List.filter (fun s -> not (List.mem s sn)) so in
  let keys_in sections_lst keys =
    List.length (List.filter (fun k -> List.mem (section_of k) sections_lst) keys)
  in
  List.iter
    (fun s ->
      Printf.printf "  section added:   %S (%d keys, only in NEW)\n" s
        (keys_in [ s ] only_new))
    added;
  List.iter
    (fun s ->
      Printf.printf "  section removed: %S (%d keys, only in OLD)\n" s
        (keys_in [ s ] only_old))
    removed;
  Printf.printf
    "summary: %d compared (%d ok, %d improved, %d skipped, %d below floor), \
     %d warning%s, %d regression%s; %d key%s only in OLD, %d only in NEW \
     (%d section%s added, %d removed)\n"
    !compared !ok !improved !skipped !below_floor !warns
    (if !warns = 1 then "" else "s")
    !fails
    (if !fails = 1 then "" else "s")
    (List.length only_old)
    (if List.length only_old = 1 then "" else "s")
    (List.length only_new)
    (List.length added)
    (if List.length added = 1 then "" else "s")
    (List.length removed);
  if !fails > 0 then begin
    Printf.printf "bench_diff: FAIL (%d regression%s)\n" !fails
      (if !fails = 1 then "" else "s");
    exit 1
  end
  else Printf.printf "bench_diff: OK\n"
