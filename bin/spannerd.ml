(* spanner-as-a-service: keep a graph and its maintained 2-spanner
   resident, serve stretch-bounded path queries, edge churn, stats and
   trace subscriptions over a line protocol.

     spannerd --port 7421
     spannerd --port 0 --port-file /tmp/spannerd.port \
              --preload "gnp 10000 0.0015 51"

   See EXPERIMENTS.md "Serving (E21)" for the protocol. *)

open Cmdliner

let serve host port port_file idle_timeout preload =
  let service = Spannernet.Service.create () in
  (match preload with
  | None -> ()
  | Some spec -> (
      match Spannernet.Wire.parse_request ("LOAD " ^ spec) with
      | Error e ->
          Printf.eprintf "spannerd: bad --preload: %s\n%!" e;
          exit 2
      | Ok req -> (
          match Spannernet.Service.handle service req with
          | Spannernet.Wire.Err e ->
              Printf.eprintf "spannerd: --preload failed: %s\n%!" e;
              exit 2
          | reply ->
              Printf.printf "preloaded: %s\n%!"
                (Spannernet.Wire.print_reply reply))));
  Spannernet.Daemon.serve ~host ~port ?port_file ?idle_timeout service;
  0

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let port_arg =
  Arg.(value & opt int 7421
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port; 0 picks an ephemeral port (see --port-file).")

let port_file_arg =
  Arg.(value & opt (some string) None
       & info [ "port-file" ] ~docv:"PATH"
           ~doc:"Write the bound port here (atomically) once listening — \
                 how scripts discover an ephemeral port.")

let idle_arg =
  Arg.(value & opt (some float) None
       & info [ "idle-timeout" ] ~docv:"SECS"
           ~doc:"Close connections with no inbound traffic for this long \
                 (subscribed connections are exempt). Default: never.")

let preload_arg =
  Arg.(value & opt (some string) None
       & info [ "preload" ] ~docv:"SPEC"
           ~doc:"Load a generated graph before accepting connections, e.g. \
                 'gnp 10000 0.0015 51' — the arguments of a LOAD request.")

let cmd =
  Cmd.v
    (Cmd.info "spannerd" ~version:"%%VERSION%%"
       ~doc:"Serve 2-spanner path queries, churn and stats over TCP"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Single-process, single-thread event loop (select readiness, \
              non-blocking sockets) over a line protocol: LOAD, LOADFILE, \
              QUERY, CHURN, STATS, SUBSCRIBE, UNSUBSCRIBE, QUIT, SHUTDOWN. \
              Request handling is deterministic: two daemons fed the same \
              script produce byte-identical reply transcripts. SIGINT \
              drains pending replies and exits 0.";
         ])
    Term.(const serve $ host_arg $ port_arg $ port_file_arg $ idle_arg
          $ preload_arg)

let () = exit (Cmd.eval' cmd)
