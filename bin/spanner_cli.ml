(* Command-line driver: generate graphs, run the paper's algorithms on
   edge-list files, verify spanners, and print lower-bound curves.

     spanner_cli generate --family caveman --n 100 --seed 1 graph.txt
     spanner_cli span graph.txt --algorithm distributed --dot out.dot
     spanner_cli mds graph.txt
     spanner_cli trace graph.txt --algorithm local --jsonl trace.jsonl
     spanner_cli check graph.txt spanner.txt --k 2
     spanner_cli bounds --n 1000000 --alpha 4 *)

open Grapho
module C = Spanner_core
module L = Lowerbound
open Cmdliner

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let load_graph path = Graph_io.of_edge_list (read_file path)

(* ---- generate ---------------------------------------------------- *)

let generate family n p seed out =
  let rng = Rng.create seed in
  let g =
    match family with
    | "gnp" -> Generators.gnp_connected rng n p
    | "complete" -> Generators.complete n
    | "bipartite" -> Generators.complete_bipartite (n / 2) (n - (n / 2))
    | "grid" ->
        let side = int_of_float (Float.sqrt (float_of_int n)) in
        Generators.grid side side
    | "caveman" -> Generators.caveman_n rng n 0.05
    | "pa" -> Generators.preferential_attachment rng n (max 2 (int_of_float p))
    | "tree" -> Generators.random_tree rng n
    | "ladder" -> Generators.clique_ladder rng n
    | other -> failwith (Printf.sprintf "unknown family %S" other)
  in
  let text = Graph_io.to_edge_list g in
  (match out with
  | Some path ->
      write_file path text;
      Printf.printf "wrote %s: n=%d m=%d\n" path (Ugraph.n g) (Ugraph.m g)
  | None ->
      print_string text;
      (* the actual size goes to stderr so the edge list stays pipeable *)
      Printf.eprintf "generated: n=%d m=%d\n" (Ugraph.n g) (Ugraph.m g));
  0

let family_arg =
  let doc =
    "Graph family: gnp, complete, bipartite, grid, caveman, pa, tree, ladder."
  in
  Arg.(value & opt string "gnp" & info [ "family" ] ~docv:"FAMILY" ~doc)

let n_arg = Arg.(value & opt int 100 & info [ "vertices"; "n" ] ~docv:"N" ~doc:"Vertices.")

let p_arg =
  Arg.(value & opt float 0.1
       & info [ "prob"; "p" ] ~docv:"P" ~doc:"Edge probability (or degree for pa).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let out_arg =
  Arg.(value & pos 0 (some string) None
       & info [] ~docv:"FILE" ~doc:"Output file (stdout if omitted).")

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a graph as an edge list.")
    Term.(const generate $ family_arg $ n_arg $ p_arg $ seed_arg $ out_arg)

(* ---- engine knobs (span / mds / trace) --------------------------- *)

let sched_conv : Distsim.Engine.sched Arg.conv =
  let parse = function
    | "active" -> Ok `Active
    | "naive" -> Ok `Naive
    | "legacy-cost" -> Ok `Active_legacy_cost
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown scheduler %S (active|naive|legacy-cost)"
               s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | `Active -> "active"
      | `Naive -> "naive"
      | `Active_legacy_cost -> "legacy-cost")
  in
  Arg.conv (parse, print)

let sched_arg =
  Arg.(value & opt sched_conv `Active
       & info [ "sched" ] ~docv:"SCHED"
           ~doc:"Engine scheduler: active (event-driven, default) or naive \
                 (step-everyone reference). Results are bit-identical.")

let par_arg =
  Arg.(value & opt int 1
       & info [ "par" ] ~docv:"N"
           ~doc:"Domains used to step each round (active scheduler only). \
                 Results are bit-identical for any N.")

let schedule_conv : Distsim.Faults.schedule Arg.conv =
  let parse s =
    match Distsim.Faults.parse s with
    | Ok sch -> Ok sch
    | Error e -> Error (`Msg e)
  in
  let print ppf s = Format.pp_print_string ppf (Distsim.Faults.to_string s) in
  Arg.conv (parse, print)

let schedule_arg =
  Arg.(value & opt schedule_conv Distsim.Faults.empty
       & info [ "schedule" ] ~docv:"DSL"
           ~doc:"Deterministic fault schedule, comma-separated clauses: \
                 drop=P (per-message loss), dup=P (duplication), \
                 crash=F\\@rR (crash-stop a fraction F of the vertices at \
                 round R) or crash=vID\\@rR (a specific vertex), \
                 cut=U-V\\@rA..B (link down during rounds A..B; omit ..B \
                 for permanent), seed=S. Same schedule + seed = the same \
                 faulted execution, for any scheduler and --par.")

let retry_arg =
  Arg.(value & opt int 1
       & info [ "retry" ] ~docv:"K"
           ~doc:"Bounded retransmit: send every message K times, keep the \
                 first copy per source (1 = off). A drop-p adversary then \
                 loses a message only with probability p^K.")

let frugal_arg =
  Arg.(value & opt ~vopt:"on" string "off"
       & info [ "frugal" ] ~docv:"MODE"
           ~doc:"Message-frugality layer: off (default), on, or auto. Under \
                 on, identical consecutive re-sends are suppressed behind \
                 2-bit silence markers and whole-neighborhood broadcasts \
                 route through deterministic collection trees. Under auto, \
                 per-edge suppression first observes a few rounds at full \
                 charge and arms only if payload repeats are long enough to \
                 beat the marker overhead — chunked CONGEST traffic thereby \
                 never pays for markers it cannot amortize. The protocol's \
                 output, round count and every logical metric are \
                 bit-identical in all modes; only the physical wire stream \
                 (metrics sent_physical / sent_bits) changes. A bare \
                 --frugal means --frugal=on.")

let frugal_of g mode =
  match mode with
  | "off" -> None
  | "on" -> Some (Distsim.Frugal.create g)
  | "auto" ->
      Some
        (Distsim.Frugal.create
           ~mode:(Distsim.Frugal.Auto Distsim.Frugal.default_auto_window)
           g)
  | other ->
      failwith (Printf.sprintf "unknown frugal mode %S (off|on|auto)" other)

(* The physical-vs-logical summary, printed only under --frugal (the
   default output stays byte-identical with and without the layer). *)
let frugal_line (m : Distsim.Engine.metrics) =
  let ratio a b =
    if b > 0 then float_of_int a /. float_of_int (max 1 b) else 1.0
  in
  Printf.printf
    "physical: messages=%d of %d (%.2fx fewer), bits=%d of %d (%.2fx)\n"
    m.Distsim.Engine.sent_physical m.messages
    (ratio m.messages m.sent_physical)
    m.sent_bits m.total_bits
    (ratio m.total_bits m.sent_bits)

(* The event-driven scheduler's saving, printed next to the round
   count: the naive path would have activated every vertex every round
   ([n * (rounds + 1)] including init). *)
let steps_line (m : Distsim.Engine.metrics) ~n =
  let naive = n * (m.rounds + 1) in
  let saved =
    if naive > 0 then
      100.0 *. (1.0 -. (float_of_int m.steps /. float_of_int naive))
    else 0.0
  in
  Printf.printf "steps=%d of naive %d (%.1f%% saved)\n" m.steps naive saved

(* ---- span -------------------------------------------------------- *)

let span file algorithm k seed sched par frugal dot weights_file faults =
  let g = load_graph file in
  let rng = Rng.create seed in
  (if frugal <> "off" then
     match algorithm with
     | "local" | "congest" -> ()
     | other ->
         failwith
           (Printf.sprintf
              "--frugal applies to the message-passing algorithms \
               (local|congest), not %S"
              other));
  let frugal = frugal_of g frugal in
  let weights =
    Option.map (fun p -> snd (Graph_io.weighted_of_edge_list (read_file p)))
      weights_file
  in
  let spanner, label =
    match algorithm with
    | "distributed" ->
        if k <> 2 then failwith "the distributed algorithm targets k=2";
        let r = C.Two_spanner.run ~rng g in
        Printf.printf "iterations=%d rounds=%d stars=%d\n" r.iterations
          r.rounds r.stars_added;
        (r.spanner, "distributed (Thm 1.3)")
    | "local" ->
        if k <> 2 then failwith "the LOCAL protocol targets k=2";
        let r = C.Two_spanner_local.run ~seed ~sched ~par ?frugal g in
        Printf.printf "iterations=%d rounds=%d messages=%d\n" r.iterations
          r.metrics.rounds r.metrics.messages;
        steps_line r.metrics ~n:(Ugraph.n g);
        if frugal <> None then frugal_line r.metrics;
        (r.spanner, "message-passing LOCAL protocol")
    | "congest" ->
        if k <> 2 then failwith "the CONGEST port targets k=2";
        let r = C.Two_spanner_local.run_congest ~seed ~sched ~par ?frugal g in
        Printf.printf
          "iterations=%d rounds=%d max-message=%d bits violations=%d\n"
          r.iterations r.metrics.rounds r.metrics.max_message_bits
          r.metrics.congest_violations;
        steps_line r.metrics ~n:(Ugraph.n g);
        if frugal <> None then frugal_line r.metrics;
        (r.spanner, "chunked CONGEST port (Section 1.3)")
    | "weighted" ->
        if k <> 2 then failwith "the weighted algorithm targets k=2";
        let w =
          match weights with
          | Some w -> w
          | None -> failwith "--weights FILE required for weighted"
        in
        let r = C.Weighted_two_spanner.run ~rng g w in
        Printf.printf "cost=%g iterations=%d\n" r.cost r.iterations;
        (r.spanner, "weighted distributed (Thm 4.12)")
    | "fault-tolerant" ->
        if k <> 2 then failwith "fault tolerance targets k=2";
        let r = C.Fault_tolerant.greedy g ~f:faults in
        Printf.printf "stars=%d single-batches=%d (f=%d)\n" r.stars_added
          r.singles_added faults;
        (r.spanner, Printf.sprintf "%d-fault-tolerant greedy" faults)
    | "greedy" ->
        if k <> 2 then failwith "the greedy algorithm targets k=2";
        ((C.Kp_greedy.run g).spanner, "Kortsarz-Peleg greedy")
    | "exact" ->
        (match
           C.Exact.min_k_spanner ~targets:(Ugraph.edge_set g)
             ~usable:(Ugraph.edge_set g) ~n:(Ugraph.n g) ~k ()
         with
        | Some s -> (s, "exact (branch & bound)")
        | None -> failwith "no spanner (impossible)")
    | "baswana-sen" ->
        let bs_k = max 1 ((k + 1) / 2) in
        let r = C.Baswana_sen.run ~rng ~k:bs_k g in
        (r.spanner, Printf.sprintf "Baswana-Sen (stretch %d)" ((2 * bs_k) - 1))
    | "epsilon" ->
        let r = C.Epsilon_spanner.run ~rng ~epsilon:0.25 ~k g in
        (r.spanner, "(1+eps) via network decomposition (Thm 1.2)")
    | other -> failwith (Printf.sprintf "unknown algorithm %S" other)
  in
  let valid =
    if algorithm = "fault-tolerant" then
      C.Fault_tolerant.is_ft_2_spanner g ~f:faults spanner
    else C.Spanner_check.is_spanner g spanner ~k
  in
  Printf.printf "%s: %d / %d edges, valid: %b\n" label
    (Edge.Set.cardinal spanner) (Ugraph.m g) valid;
  (match dot with
  | Some path ->
      write_file path (Graph_io.to_dot ~highlight:spanner g);
      Printf.printf "wrote %s\n" path
  | None -> ());
  0

let file_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"GRAPH" ~doc:"Edge-list file.")

let algorithm_arg =
  let doc =
    "Algorithm: distributed, local, congest, weighted, fault-tolerant, \
     greedy, exact, baswana-sen, epsilon."
  in
  Arg.(value & opt string "distributed"
       & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)

let k_arg = Arg.(value & opt int 2 & info [ "stretch"; "k" ] ~docv:"K" ~doc:"Stretch.")

let dot_arg =
  Arg.(value & opt (some string) None
       & info [ "dot" ] ~docv:"FILE" ~doc:"Write a Graphviz rendering.")

let weights_arg =
  Arg.(value & opt (some file) None
       & info [ "weights" ] ~docv:"FILE"
           ~doc:"Weighted edge list (u v w lines) for -a weighted.")

let faults_arg =
  Arg.(value & opt int 1
       & info [ "faults"; "f" ] ~docv:"F"
           ~doc:"Fault budget for -a fault-tolerant.")

let span_cmd =
  Cmd.v
    (Cmd.info "span" ~doc:"Approximate a minimum k-spanner.")
    Term.(const span $ file_arg $ algorithm_arg $ k_arg $ seed_arg $ sched_arg
          $ par_arg $ frugal_arg $ dot_arg $ weights_arg $ faults_arg)

(* ---- mds --------------------------------------------------------- *)

let mds file seed sched par frugal =
  let g = load_graph file in
  let frugal = frugal_of g frugal in
  let r = C.Mds.run ~rng:(Rng.create seed) ~sched ~par ?frugal g in
  Printf.printf
    "dominating set of %d vertices (greedy: %d), %d CONGEST rounds,\n\
     max message %d bits, violations %d\n"
    (List.length r.dominating_set)
    (List.length (C.Mds.greedy g))
    r.metrics.rounds r.metrics.max_message_bits
    r.metrics.congest_violations;
  steps_line r.metrics ~n:(Ugraph.n g);
  if frugal <> None then frugal_line r.metrics;
  Printf.printf "members: %s\n"
    (String.concat " " (List.map string_of_int r.dominating_set));
  0

let mds_cmd =
  Cmd.v
    (Cmd.info "mds" ~doc:"Approximate a minimum dominating set in CONGEST.")
    Term.(const mds $ file_arg $ seed_arg $ sched_arg $ par_arg $ frugal_arg)

(* ---- faults ------------------------------------------------------ *)

let faults file protocol schedule retry seed sched par =
  let g = load_graph file in
  let protocol =
    match protocol with
    | "local" -> C.Resilience.Spanner_local
    | "congest" -> C.Resilience.Spanner_congest
    | "mds" -> C.Resilience.Mds
    | other ->
        failwith (Printf.sprintf "unknown protocol %S (local|congest|mds)" other)
  in
  let r = C.Resilience.run ~seed ~retry ~sched ~par ~protocol ~schedule g in
  Format.printf "%a@." C.Resilience.pp_report r;
  if r.C.Resilience.valid then 0 else 1

let fault_protocol_arg =
  let doc = "Protocol to stress: local, congest, mds." in
  Arg.(value & opt string "local" & info [ "protocol"; "P" ] ~docv:"PROTO" ~doc)

let faults_cmd =
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run a protocol under a deterministic fault schedule (crashes, \
             link cuts, message loss/duplication) and grade the survivors: \
             rounds to termination, message/drop counts, and whether the \
             surviving output still 2-spans (resp. dominates) the surviving \
             subgraph, at what stretch. Exits 0 iff the survivors pass.")
    Term.(const faults $ file_arg $ fault_protocol_arg $ schedule_arg
          $ retry_arg $ seed_arg $ sched_arg $ par_arg)

(* ---- trace ------------------------------------------------------- *)

module T = Distsim.Trace

(* Shared protocol dispatch for the trace and profile subcommands:
   run [algorithm] with the given sink and profile, print its
   one-line result summary, return the engine metrics. *)
let run_traced ~algorithm ~seed ~sched ~par ~adversary ~frugal ~retry
    ~weights_file ~sink ~profile g =
  match algorithm with
  | "local" ->
      let r =
        C.Two_spanner_local.run ~seed ~sched ~par ?adversary ?frugal ~retry
          ~profile ~trace:sink g
      in
      Printf.printf "local 2-spanner: %d / %d edges, %d iterations\n"
        (Edge.Set.cardinal r.spanner) (Ugraph.m g) r.iterations;
      r.metrics
  | "congest" ->
      let r =
        C.Two_spanner_local.run_congest ~seed ~sched ~par ?adversary ?frugal
          ~retry ~profile ~trace:sink g
      in
      Printf.printf "CONGEST 2-spanner: %d / %d edges, %d iterations\n"
        (Edge.Set.cardinal r.spanner) (Ugraph.m g) r.iterations;
      r.metrics
  | "weighted" ->
      let w =
        match weights_file with
        | Some p -> snd (Graph_io.weighted_of_edge_list (read_file p))
        | None -> Weights.uniform 1.0
      in
      let r =
        C.Two_spanner_local.run_weighted ~seed ~sched ~par ?adversary ?frugal
          ~retry ~profile ~trace:sink g w
      in
      Printf.printf "weighted 2-spanner: %d / %d edges, %d iterations\n"
        (Edge.Set.cardinal r.spanner) (Ugraph.m g) r.iterations;
      r.metrics
  | "mds" ->
      let r =
        C.Mds.run ~rng:(Rng.create seed) ~sched ~par ?adversary ?frugal ~retry
          ~profile ~trace:sink g
      in
      Printf.printf "dominating set: %d vertices, %d iterations\n"
        (List.length r.dominating_set) r.iterations;
      r.metrics
  | other -> failwith (Printf.sprintf "unknown algorithm %S" other)

let trace file algorithm seed sched par frugal schedule retry jsonl_file
    weights_file limit gc times physical =
  let g = load_graph file in
  let frugal = frugal_of g frugal in
  let st = T.stats () in
  let prof = Distsim.Profile.create () in
  let jsonl_oc = Option.map open_out jsonl_file in
  let sink =
    let stats = T.stats_sink st in
    match jsonl_oc with
    | None -> stats
    | Some oc -> T.tee stats (T.jsonl oc)
  in
  let adversary =
    if Distsim.Faults.is_empty schedule then None
    else Some (Distsim.Faults.compile ~n:(Ugraph.n g) schedule)
  in
  let metrics =
    run_traced ~algorithm ~seed ~sched ~par ~adversary ~frugal ~retry
      ~weights_file ~sink ~profile:prof g
  in
  Option.iter close_out jsonl_oc;
  let s = T.series st in
  let rows = s.T.rounds in
  let total = Array.length rows in
  (* [--gc] appends a minor-words column; off by default because GC
     pressure is per-run/per-domain noise, and the default output must
     stay byte-identical between seq and --par runs (scripts/check.sh
     diffs them). *)
  Printf.printf "%6s %9s %10s %9s %8s %6s %6s %7s %6s%s%s\n" "round" "msgs"
    "bits" "max-bits" "stepped" "done" "viol" "dropped" "crash"
    (if physical then "  physical" else "")
    (if gc then "   minor-w" else "");
  let print_row (r : T.round_stat) =
    Printf.printf "%6d %9d %10d %9d %8d %6d %6d %7d %6d" r.round r.messages
      r.bits r.max_bits r.vertices_stepped r.vertices_done
      r.congest_violations r.dropped r.crashed;
    if physical then Printf.printf " %9d" r.physical;
    if gc then Printf.printf " %9d" r.minor_words;
    print_newline ()
  in
  let limit = max 2 limit in
  if total <= limit then Array.iter print_row rows
  else begin
    let head = limit - (limit / 2) in
    let tail = limit / 2 in
    Array.iteri (fun i r -> if i < head then print_row r) rows;
    Printf.printf "  ...  (%d rounds elided)\n" (total - limit);
    Array.iteri (fun i r -> if i >= total - tail then print_row r) rows
  end;
  (match s.T.phases with
  | [] -> ()
  | phases ->
      Printf.printf "phases: %s\n"
        (String.concat ", "
           (List.map (fun (name, k) -> Printf.sprintf "%s=%d" name k) phases)));
  (match s.T.counters with
  | [] -> ()
  | counters ->
      Printf.printf "counters: %s\n"
        (String.concat ", "
           (List.map (fun (name, v) -> Printf.sprintf "%s=%g" name v) counters)));
  (* Histogram percentiles from the installed profile. Message bits
     and inbox sizes are deterministic (identical across schedulers
     and --par, like the table above); round times are wall-clock
     noise, so they hide behind [--times] the way GC hides behind
     [--gc]. *)
  let bh = Distsim.Profile.message_bits prof in
  let ih = Distsim.Profile.inbox_sizes prof in
  let pct h p = Distsim.Histogram.percentile h p in
  Printf.printf "msg-bits: p50=%d p90=%d p99=%d max=%d\n" (pct bh 0.50)
    (pct bh 0.90) (pct bh 0.99) (Distsim.Histogram.max_value bh);
  Printf.printf "inbox: p50=%d p99=%d max=%d\n" (pct ih 0.50) (pct ih 0.99)
    (Distsim.Histogram.max_value ih);
  if times then begin
    let rh = Distsim.Profile.round_times prof in
    Printf.printf "round-ns: p50=%d p90=%d p99=%d max=%d\n" (pct rh 0.50)
      (pct rh 0.90) (pct rh 0.99)
      (Distsim.Histogram.max_value rh)
  end;
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 rows in
  let msgs = sum (fun (r : T.round_stat) -> r.messages) in
  let bits = sum (fun (r : T.round_stat) -> r.bits) in
  let stepped = sum (fun (r : T.round_stat) -> r.vertices_stepped) in
  let phys = sum (fun (r : T.round_stat) -> r.physical) in
  let ok =
    msgs = metrics.Distsim.Engine.messages
    && bits = metrics.total_bits
    && stepped = metrics.steps
    && total = metrics.rounds + 1
    && phys = metrics.sent_physical
  in
  steps_line metrics ~n:(Ugraph.n g);
  if frugal <> None then frugal_line metrics;
  if gc then
    Printf.printf "gc: minor_words=%.0f allocated_bytes=%.0f\n"
      metrics.Distsim.Engine.minor_words
      metrics.Distsim.Engine.allocated_bytes;
  Printf.printf
    "reconcile: rounds=%d messages=%d bits=%d steps=%d — %s the engine metrics\n"
    metrics.rounds msgs bits stepped
    (if ok then "match" else "MISMATCH with");
  (match jsonl_file with
  | Some p -> Printf.printf "wrote %s\n" p
  | None -> ());
  if ok then 0 else 1

let trace_algorithm_arg =
  let doc = "Algorithm to trace: local, congest, weighted, mds." in
  Arg.(value & opt string "local" & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)

let jsonl_arg =
  Arg.(value & opt (some string) None
       & info [ "jsonl" ] ~docv:"FILE"
           ~doc:"Also stream the full event trace (JSON Lines) to FILE.")

let limit_arg =
  Arg.(value & opt int 40
       & info [ "limit" ] ~docv:"K"
           ~doc:"Show at most K rows of the per-round table (head and tail).")

let gc_arg =
  Arg.(value & flag
       & info [ "gc" ]
           ~doc:"Append a per-round minor-words column and print the run's \
                 GC totals. Off by default: GC pressure varies run to run \
                 (and per domain under --par), so the default output stays \
                 byte-comparable across schedulers and domain counts.")

let physical_arg =
  Arg.(value & flag
       & info [ "physical" ]
           ~doc:"Append a per-round physical-messages column (wire messages \
                 actually charged; equals msgs on a plain run, the reduced \
                 stream under --frugal). Deterministic like msgs, but off by \
                 default so the default table stays byte-identical between \
                 plain and --frugal runs (scripts/check.sh diffs them).")

let times_arg =
  Arg.(value & flag
       & info [ "times" ]
           ~doc:"Also print round-time percentiles (round-ns line). Off by \
                 default for the same reason as --gc: wall-clock durations \
                 vary run to run, and the default output must stay \
                 byte-comparable across schedulers and domain counts.")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a protocol under a structured trace and print per-round \
             statistics, phase-marker counts, counters and message-size \
             percentiles; the summary line cross-checks the per-round sums \
             against the engine metrics.")
    Term.(const trace $ file_arg $ trace_algorithm_arg $ seed_arg $ sched_arg
          $ par_arg $ frugal_arg $ schedule_arg $ retry_arg $ jsonl_arg
          $ weights_arg $ limit_arg $ gc_arg $ times_arg $ physical_arg)

(* ---- profile ----------------------------------------------------- *)

let profile file algorithm seed sched par frugal schedule retry weights_file
    chrome =
  let g = load_graph file in
  let frugal = frugal_of g frugal in
  let prof = Distsim.Profile.create () in
  let sink = Distsim.Profile.sink prof in
  let adversary =
    if Distsim.Faults.is_empty schedule then None
    else Some (Distsim.Faults.compile ~n:(Ugraph.n g) schedule)
  in
  let metrics =
    run_traced ~algorithm ~seed ~sched ~par ~adversary ~frugal ~retry
      ~weights_file ~sink ~profile:prof g
  in
  let ms ns = float_of_int ns /. 1e6 in
  Printf.printf "rounds=%d messages=%d faults=%d wall=%.3f ms\n"
    (Distsim.Profile.rounds_profiled prof)
    metrics.Distsim.Engine.messages
    (Distsim.Profile.fault_count prof)
    (ms (Distsim.Profile.total_ns prof));
  if frugal <> None then frugal_line metrics;
  (* Per-phase wall-clock breakdown, in first-appearance order. *)
  (match Distsim.Profile.phase_breakdown prof with
  | [] -> ()
  | rows ->
      let total =
        List.fold_left
          (fun acc (r : Distsim.Profile.phase_row) -> acc + r.total_ns)
          0 rows
      in
      Printf.printf "%-14s %7s %12s %7s\n" "phase" "rounds" "ms" "share";
      List.iter
        (fun (r : Distsim.Profile.phase_row) ->
          let share =
            if total > 0 then
              100.0 *. float_of_int r.total_ns /. float_of_int total
            else 0.0
          in
          Printf.printf "%-14s %7d %12.3f %6.1f%%\n" r.phase r.occurrences
            (ms r.total_ns) share)
        rows);
  let line name h =
    Format.printf "%s: %a@." name Distsim.Histogram.pp_summary h
  in
  line "msg-bits" (Distsim.Profile.message_bits prof);
  line "inbox" (Distsim.Profile.inbox_sizes prof);
  line "round-ns" (Distsim.Profile.round_times prof);
  (* Shard step vs serial-merge split, --par > 1 only. *)
  let shards = Distsim.Profile.shard_ns prof in
  if Array.length shards > 0 then begin
    Printf.printf "shards:";
    Array.iteri (fun i ns -> Printf.printf " s%d=%.3fms" i (ms ns)) shards;
    Printf.printf " merge=%.3fms\n" (ms (Distsim.Profile.merge_ns prof))
  end;
  (match chrome with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Distsim.Profile.write_chrome prof oc;
      close_out oc;
      Printf.printf
        "wrote %s (%d events) — load at ui.perfetto.dev or chrome://tracing\n"
        path
        (Distsim.Profile.chrome_event_count prof));
  0

let chrome_arg =
  Arg.(value & opt (some string) None
       & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Write the profile as Chrome trace_event JSON, loadable in \
                 Perfetto (ui.perfetto.dev) or chrome://tracing: rounds, \
                 phases, shard stepping and serial merges as duration \
                 events, fault injections as instants.")

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a protocol under the wall-clock profiler and print a \
             per-phase time breakdown, message-size / inbox / round-time \
             histograms, and (under --par) the shard-step vs serial-merge \
             split. --chrome FILE exports a Perfetto-loadable trace. \
             Profiling is observational: the simulated execution is \
             bit-identical with and without it.")
    Term.(const profile $ file_arg $ trace_algorithm_arg $ seed_arg
          $ sched_arg $ par_arg $ frugal_arg $ schedule_arg $ retry_arg
          $ weights_arg $ chrome_arg)

(* ---- churn ------------------------------------------------------- *)

let churn file ticks rate seed sched par schedule retry recompute =
  let g0 = load_graph file in
  if ticks < 1 then failwith "--ticks must be >= 1";
  if rate <= 0.0 || rate >= 1.0 then failwith "--rate must be in (0, 1)";
  let replace =
    max 1 (int_of_float (rate *. float_of_int (Ugraph.m g0)))
  in
  let now () = Unix.gettimeofday () in
  let t0 = now () in
  let inc, base = C.Incremental.bootstrap ~seed ~sched ~par g0 in
  let bootstrap_ms = 1000.0 *. (now () -. t0) in
  Printf.printf
    "bootstrap: n=%d m=%d spanner=%d/%d rounds=%d (%.1f ms); churn \
     replaces %d edges/tick (rate %g)\n"
    (Ugraph.n g0) (Ugraph.m g0)
    (Edge.Set.cardinal base.C.Two_spanner_local.spanner)
    (Ugraph.m g0) base.C.Two_spanner_local.metrics.rounds bootstrap_ms
    replace rate;
  let churn_rng = Rng.create (seed lxor 0x6A7A) in
  let adversary =
    if Distsim.Faults.is_empty schedule then None
    else begin
      Printf.printf "faults: %s (retry %d) on every repair run\n"
        (Distsim.Faults.to_string schedule) retry;
      Some (Distsim.Faults.compile ~n:(Ugraph.n g0) schedule)
    end
  in
  let d = Ugraph.Delta.create () in
  Printf.printf "%5s %5s %5s %6s %6s %6s %9s%s %9s %6s\n" "tick" "del"
    "ins" "seeds" "broken" "dirty" "repair"
    (if recompute then "   recomp  speedup" else "")
    "spanner" "valid";
  let all_valid = ref true in
  let sum_repair = ref 0.0 and sum_recomp = ref 0.0 in
  for _ = 1 to ticks do
    C.Incremental.churn ~rng:churn_rng ~replace (C.Incremental.graph inc) d;
    let t1 = now () in
    let st = C.Incremental.apply ~sched ~par ?adversary ~retry inc d in
    let repair_ms = 1000.0 *. (now () -. t1) in
    sum_repair := !sum_repair +. repair_ms;
    let valid = C.Incremental.valid inc in
    if not valid then all_valid := false;
    Printf.printf "%5d %5d %5d %6d %6d %6d %7.1fms" st.tick st.deleted
      st.inserted st.seeds st.broken st.dirty repair_ms;
    if recompute then begin
      let g = C.Incremental.graph inc in
      let t2 = now () in
      let r = C.Two_spanner_local.run ~seed ~sched ~par g in
      let recomp_ms = 1000.0 *. (now () -. t2) in
      sum_recomp := !sum_recomp +. recomp_ms;
      ignore r.C.Two_spanner_local.spanner;
      Printf.printf " %7.1fms %7.1fx" recomp_ms
        (recomp_ms /. Float.max repair_ms 1e-6)
    end;
    Printf.printf " %9d %6b\n" st.spanner_size valid
  done;
  Printf.printf "ticks=%d mean repair=%.1f ms%s all-valid=%b\n" ticks
    (!sum_repair /. float_of_int ticks)
    (if recompute then
       Printf.sprintf " mean recompute=%.1f ms mean speedup=%.1fx"
         (!sum_recomp /. float_of_int ticks)
         (!sum_recomp /. Float.max !sum_repair 1e-6)
     else "")
    !all_valid;
  if !all_valid then 0 else 1

let ticks_arg =
  Arg.(value & opt int 10
       & info [ "ticks" ] ~docv:"T" ~doc:"Churn ticks to apply.")

let rate_arg =
  Arg.(value & opt float 0.01
       & info [ "rate" ] ~docv:"R"
           ~doc:"Fraction of the edges replaced per tick (that many uniform \
                 deletions plus that many uniform insertions), at least one \
                 of each.")

let recompute_arg =
  Arg.(value & flag
       & info [ "recompute" ]
           ~doc:"After every repaired tick, also run the full protocol from \
                 scratch on the updated graph and report per-tick recompute \
                 time and speedup.")

let churn_cmd =
  Cmd.v
    (Cmd.info "churn"
       ~doc:"Maintain a 2-spanner under seeded edge churn: bootstrap with \
             the full LOCAL protocol, then per tick replace a fraction of \
             the edges (batched CSR delta), find the certificates the \
             update broke, and re-run the protocol only on the dirty ball \
             around them. Prints per-tick repair statistics and a validity \
             verdict; exits 0 iff the maintained spanner was valid after \
             every tick. --recompute adds a full-recompute baseline and \
             speedup column. --schedule subjects every repair run to a \
             deterministic fault schedule (churn + drops simultaneously); \
             validity is then a per-tick verdict, not a guarantee.")
    Term.(const churn $ file_arg $ ticks_arg $ rate_arg $ seed_arg
          $ sched_arg $ par_arg $ schedule_arg $ retry_arg $ recompute_arg)

(* ---- check ------------------------------------------------------- *)

let check file spanner_file k =
  let g = load_graph file in
  let s = Ugraph.edge_set (load_graph spanner_file) in
  let ok = C.Spanner_check.is_spanner_of_targets ~n:(Ugraph.n g)
      ~targets:(Ugraph.edge_set g) s ~k
  in
  Printf.printf "%s is %sa valid %d-spanner of %s\n" spanner_file
    (if ok then "" else "NOT ")
    k file;
  if ok then 0 else 1

let spanner_file_arg =
  Arg.(required & pos 1 (some file) None
       & info [] ~docv:"SPANNER" ~doc:"Candidate spanner edge list.")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a candidate k-spanner.")
    Term.(const check $ file_arg $ spanner_file_arg $ k_arg)

(* ---- bounds ------------------------------------------------------ *)

let bounds n alpha =
  Printf.printf "round lower bounds at n=%d, alpha=%.1f:\n" n alpha;
  Printf.printf "  directed k>=5, randomized (Thm 1.1): %.1f\n"
    (L.Bounds.thm_1_1_randomized ~n ~alpha);
  Printf.printf "  directed k>=5, deterministic (Thm 2.8): %.1f\n"
    (L.Bounds.thm_2_8_deterministic ~n ~alpha);
  Printf.printf "  weighted directed k>=4 (Thm 2.9): %.1f\n"
    (L.Bounds.thm_2_9_weighted_directed ~n);
  Printf.printf "  weighted undirected, k=4 (Thm 2.10): %.1f\n"
    (L.Bounds.thm_2_10_weighted_undirected ~n ~k:4);
  Printf.printf "  exact weighted 2-spanner, CONGEST (Thm 3.5): %.0f\n"
    (L.Bounds.thm_3_5_exact_congest ~n);
  0

let alpha_arg =
  Arg.(value & opt float 1.0
       & info [ "alpha" ] ~docv:"ALPHA" ~doc:"Approximation ratio.")

let bound_n_arg =
  Arg.(value & opt int 1_000_000 & info [ "vertices"; "n" ] ~docv:"N" ~doc:"Vertices.")

let bounds_cmd =
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the paper's lower-bound curves.")
    Term.(const bounds $ bound_n_arg $ alpha_arg)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "spanner_cli" ~version:"1.0"
      ~doc:"Distributed spanner approximation (Censor-Hillel & Dory, PODC 2018)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd;
            span_cmd;
            mds_cmd;
            faults_cmd;
            churn_cmd;
            trace_cmd;
            profile_cmd;
            check_cmd;
            bounds_cmd;
          ]))
