#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
#   - full build
#   - the unit/integration/property suites
#   - a bench smoke run exercising the --json perf-trajectory path
# Run from the repository root: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- e1 --json /dev/null

echo "check.sh: all green"
