#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
#   - full build
#   - the unit/integration/property suites (includes the GC-regression
#     allocation guard, also run below by name so a suite filter can't
#     silently drop it)
#   - a bench smoke run exercising the --json perf-trajectory and
#     --trace event-stream paths, plus the --par 2 seq-vs-par A/B path;
#     the emitted JSON must carry the spanner-bench/9 "alloc",
#     "faults", "csr", "frugal" and "churn" rows (the frugal row's
#     physical message accounting, its identical=1 contract flag and
#     the auto-mode >= 1.0x fields; the churn row's repair-vs-recompute
#     split, per-tick validity and cross-engine determinism flags)
#   - a CSR scale smoke: the e18 anchor (10^4-vertex gnp) must stream-
#     build, BFS and flood inside a hard time budget, and the CSR
#     builder's GC guard (10^5 vertices under a minor-words ceiling)
#     is run by name so a suite filter can't drop it
#   - a tiny spanner_cli trace run (its exit status asserts that the
#     per-round series reconciles with the engine metrics), run both
#     sequentially and with --par 2: the two reports must be
#     byte-identical (the round engine's determinism contract) — and
#     the same byte-diff again under a fault schedule, where the
#     adversary's coin stream joins the determinism contract
#   - a spanner_cli faults smoke run: the survivor-quality report must
#     come back VALID (exit 0) for a LOCAL run under drops+crashes
#     with retransmission
#   - the profiling subsystem: the bench JSON must carry the schema-7
#     "profile" rows, spanner_cli profile --chrome must emit a
#     Perfetto-loadable trace_event array whose every event parses
#     with the repo's own flat-JSON codec (asserted by the test suite;
#     here the file must exist, be an array, and be non-trivial), and
#     bench_diff must (a) pass the two checked-in trajectories
#     (BENCH_PR5.json vs BENCH_PR6.json) under default tolerances and
#     (b) gate a fresh e13 run against BENCH_PR7.json in --strict
#     mode: deterministic fields must match exactly, timing may drift
#     up to 3x (the new "frugal" section shows up as a named
#     "section added" — informational, not a failure)
#   - the serving subsystem: a spannerd on an ephemeral port must
#     answer a scripted session (including a malformed line the
#     connection survives) with a reply transcript that is
#     byte-identical across two fresh daemon runs, shut down cleanly
#     on request, and sustain a short closed-loop loadgen burst with
#     zero errors; the e21 bench JSON must carry the schema-10
#     "serve" rows (qps + latency percentiles)
#   - the message-frugality layer: span --frugal must produce the
#     same spanner (exit 0 implies the internal identity assertions
#     held) and print the physical summary; the default trace table
#     must stay byte-identical with and without --frugal once the
#     --frugal-only "physical:" summary and the "msg-bits:" histogram
#     (which deliberately describes the physical stream) are
#     filtered — everything the protocol computes from is unchanged
# Run from the repository root: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
# The zero-allocation mailbox guard, explicitly.
dune exec test/test_engine_sched.exe -- test allocation > /dev/null
# The CSR builder's GC guard (10^5 vertices, fixed minor-words
# ceiling), explicitly.
dune exec test/test_csr.exe -- test gc > /dev/null

dune exec bench/main.exe -- e1 --json /dev/null --trace /dev/null
benchjson=$(mktemp)
dune exec bench/main.exe -- e13 --json "$benchjson" --trace /dev/null
# The perf trajectory must be schema 10 and expose the allocation A/B
# plus the profile section's histogram percentiles and per-phase rows.
grep -q '"schema": "spanner-bench/10"' "$benchjson"
grep -q '"alloc"' "$benchjson"
grep -q '"minor_words"' "$benchjson"
grep -q '"allocated_bytes"' "$benchjson"
grep -q '"legacy_minor_words"' "$benchjson"
grep -q '"profile"' "$benchjson"
grep -q '"bits_p50"' "$benchjson"
grep -q '"round_ns_p99"' "$benchjson"
grep -q '"phase_' "$benchjson"
# The frugality A/B rows for the selected protocol anchor: physical
# message accounting plus the bit-identity contract flags (the bench
# itself fail-hards on any logical divergence before emitting them).
grep -q '"frugal"' "$benchjson"
grep -q '"fr_e13_local_protocol"' "$benchjson"
grep -q '"physical_messages"' "$benchjson"
grep -q '"message_reduction"' "$benchjson"
grep -q '"suppressed"' "$benchjson"
grep -q '"identical": 1' "$benchjson"
grep -q '"identical_faulted": 1' "$benchjson"
# The frugal auto probe: its physical stream must be recorded next to
# the Always-mode one, with the logical-identity contract re-asserted
# (the bench fail-hards if auto ever lands above 1.0x or diverges).
grep -q '"auto_message_reduction"' "$benchjson"
grep -q '"auto_identical": 1' "$benchjson"
# The bench-trajectory regression gate, both ways it is used:
# checked-in PR5 vs PR6 must pass the calibrated defaults, and the
# fresh e13 run just emitted must match BENCH_PR9.json exactly on
# every deterministic field (--strict) with a wide allowance on this
# machine's wall clock.
dune exec bench/diff.exe -- BENCH_PR5.json BENCH_PR6.json > /dev/null
dune exec bench/diff.exe -- BENCH_PR9.json "$benchjson" \
  --strict --tolerance 2.0 > /dev/null
rm -f "$benchjson"
dune exec bench/main.exe -- e13 --par 2 --json /dev/null
# The fault sweep: e17 selects the fault anchors, whose JSON rows must
# carry the survivor-quality fields.
benchjson=$(mktemp)
dune exec bench/main.exe -- e17 --json "$benchjson" > /dev/null
grep -q '"faults"' "$benchjson"
grep -q '"drop_p"' "$benchjson"
grep -q '"surviving_output"' "$benchjson"
grep -q '"dropped"' "$benchjson"
grep -q '"crashed"' "$benchjson"
rm -f "$benchjson"
# The CSR scale section: the e18 smoke anchor (streaming gnp build +
# BFS + seq/par flood on 10^4 vertices) must finish inside the budget
# and its JSON rows must carry the layout fields.
benchjson=$(mktemp)
timeout 120 dune exec bench/main.exe -- e18 --json "$benchjson" > /dev/null
grep -q '"csr"' "$benchjson"
grep -q '"csr_gnp_10k"' "$benchjson"
grep -q '"build_ms"' "$benchjson"
grep -q '"resident_bytes"' "$benchjson"
grep -q '"flood_identical"' "$benchjson"
rm -f "$benchjson"
# The churn section: the e20 anchor (10^4-vertex gnp under two churn
# rates) must bootstrap, repair every tick validly and deterministically
# across engines, and carry the repair-vs-recompute A/B fields. The
# bench itself fail-hards on a cross-engine divergence before emitting
# the row.
benchjson=$(mktemp)
timeout 300 dune exec bench/main.exe -- e20 --json "$benchjson" > /dev/null
grep -q '"churn"' "$benchjson"
grep -q '"churn_gnp_10k@r0.01"' "$benchjson"
grep -q '"repair_ms_best"' "$benchjson"
grep -q '"recompute_ms_best"' "$benchjson"
grep -q '"speedup_vs_recompute"' "$benchjson"
grep -q '"dirty_mean"' "$benchjson"
grep -q '"spanner_drift"' "$benchjson"
grep -q '"valid_every_tick": 1' "$benchjson"
grep -q '"deterministic": 1' "$benchjson"
rm -f "$benchjson"

tmpgraph=$(mktemp)
seqrep=$(mktemp)
parrep=$(mktemp)
trap 'rm -f "$tmpgraph" "$seqrep" "$parrep"' EXIT
dune exec bin/spanner_cli.exe -- generate --family caveman -n 24 --seed 1 \
  "$tmpgraph" > /dev/null
# Both runs must reconcile (exit 0) and agree byte for byte: the trace
# report contains no wall-clock columns, so any divergence is a real
# determinism break in the parallel stepping path.
dune exec bin/spanner_cli.exe -- trace "$tmpgraph" -a local --limit 4 \
  --jsonl /dev/null > "$seqrep"
dune exec bin/spanner_cli.exe -- trace "$tmpgraph" -a local --limit 4 \
  --par 2 --jsonl /dev/null > "$parrep"
diff "$seqrep" "$parrep"

# The same determinism contract under a fault schedule: the adversary's
# coin stream is consulted on the serial merge path, so the faulted
# traces must also be byte-identical across shard counts.
sched='drop=0.08,crash=0.1@r3,seed=13'
dune exec bin/spanner_cli.exe -- trace "$tmpgraph" -a local --limit 4 \
  --schedule "$sched" --retry 3 > "$seqrep"
dune exec bin/spanner_cli.exe -- trace "$tmpgraph" -a local --limit 4 \
  --schedule "$sched" --retry 3 --par 2 > "$parrep"
diff "$seqrep" "$parrep"
grep -q 'dropped' "$seqrep"

# Survivor-quality smoke: LOCAL under drops+crashes with retransmission
# must grade VALID (the subcommand exits non-zero otherwise).
dune exec bin/spanner_cli.exe -- faults "$tmpgraph" \
  --schedule "$sched" --retry 3 > /dev/null

# Message frugality: span --frugal must run (its physical summary line
# proves the wire stream shrank below the logical count), and the
# default trace table must be byte-identical with and without --frugal
# once the --frugal-only "physical:" summary line and the "msg-bits:"
# histogram (which deliberately shows the physical stream under
# --frugal) are filtered out — spanner, rounds, logical messages/bits,
# phase counts and the reconciliation line must not move.
dune exec bin/spanner_cli.exe -- span "$tmpgraph" -a local --frugal \
  > "$seqrep"
grep -q '^physical: messages=' "$seqrep"
# Auto mode must also run clean (exit 0 implies the same identity
# assertions held after the observe-then-arm decision) and print its
# physical summary.
dune exec bin/spanner_cli.exe -- span "$tmpgraph" -a local --frugal=auto \
  > "$seqrep"
grep -q '^physical: messages=' "$seqrep"
dune exec bin/spanner_cli.exe -- trace "$tmpgraph" -a local --limit 4 \
  > "$seqrep"
dune exec bin/spanner_cli.exe -- trace "$tmpgraph" -a local --limit 4 \
  --frugal > "$parrep"
grep -v '^physical:' "$parrep" | grep -v '^msg-bits:' > "$parrep.f"
grep -v '^msg-bits:' "$seqrep" > "$seqrep.f"
diff "$seqrep.f" "$parrep.f"
rm -f "$seqrep.f" "$parrep.f"

# Churn smoke: the incremental-repair subcommand must bootstrap, apply
# a few churn ticks and certify the repaired spanner valid after every
# one (exit 0 is the per-tick validity contract; the recompute A/B
# column must also appear so the repair-vs-full split stays wired).
dune exec bin/spanner_cli.exe -- churn "$tmpgraph" --ticks 3 \
  --rate 0.02 --recompute > "$seqrep"
grep -q 'valid' "$seqrep"
grep -q 'speedup' "$seqrep"
# And the determinism contract extends to repair: once the wall-clock
# tokens are stripped, the per-tick table must be byte-identical across
# shard counts (seeds, broken certificates, dirty-ball sizes, spanner
# sizes and validity all come from the same deterministic pipeline).
dune exec bin/spanner_cli.exe -- churn "$tmpgraph" --ticks 3 \
  --rate 0.02 | sed -E 's/[0-9.]+ ?ms//g' > "$seqrep"
dune exec bin/spanner_cli.exe -- churn "$tmpgraph" --ticks 3 \
  --rate 0.02 --par 2 | sed -E 's/[0-9.]+ ?ms//g' > "$parrep"
diff "$seqrep" "$parrep"
# Churn composes with the adversary: each repair tick runs under the
# fault schedule, the adversary's coin stream joins the determinism
# contract, and the per-tick table stays byte-identical across shard
# counts once wall-clock tokens are stripped.
dune exec bin/spanner_cli.exe -- churn "$tmpgraph" --ticks 3 \
  --rate 0.02 --schedule "$sched" --retry 3 \
  | sed -E 's/[0-9.]+ ?ms//g' > "$seqrep"
grep -q 'on every repair run' "$seqrep"
dune exec bin/spanner_cli.exe -- churn "$tmpgraph" --ticks 3 \
  --rate 0.02 --schedule "$sched" --retry 3 --par 2 \
  | sed -E 's/[0-9.]+ ?ms//g' > "$parrep"
diff "$seqrep" "$parrep"

# Profiler smoke: the profile subcommand must produce a per-phase
# breakdown and a Chrome trace_event file that is a JSON array with
# actual events in it (full per-event codec validation lives in
# test/test_profile.ml).
chromejson=$(mktemp)
profrep=$(mktemp)
dune exec bin/spanner_cli.exe -- profile "$tmpgraph" -a local --par 2 \
  --chrome "$chromejson" > "$profrep"
grep -q '^phase' "$profrep"
rm -f "$profrep"
head -c 1 "$chromejson" | grep -q '\['
grep -q '"ph":"X"' "$chromejson"
grep -q '"cat":"round"' "$chromejson"
grep -q '"cat":"shard"' "$chromejson"
rm -f "$chromejson"

# Serving smoke: a scripted session against two FRESH daemons on
# ephemeral ports must produce byte-identical reply transcripts (the
# replies carry no wall-clock, pid or address material), including an
# ERR line the connection survives; SHUTDOWN must stop the daemon
# cleanly (exit 0).
spannerd=./_build/default/bin/spannerd.exe
loadgen=./_build/default/bench/loadgen.exe
session=$(mktemp)
cat > "$session" <<'EOF'
# scripted spannerd session — replies must be deterministic
LOAD caveman 24 0.1 7
QUERY 0 5
SUBSCRIBE
CHURN -0-1 +0-13
UNSUBSCRIBE
QUERY 0 1
GARBAGE this line must ERR without killing the connection
STATS
SHUTDOWN
EOF
run_scripted() {
  pf=$(mktemp -u)
  "$spannerd" --port 0 --port-file "$pf" > /dev/null &
  dpid=$!
  for _ in $(seq 1 100); do [ -s "$pf" ] && break; sleep 0.1; done
  [ -s "$pf" ]
  "$loadgen" --port "$(cat "$pf")" --script "$session" > "$1"
  wait "$dpid"
  rm -f "$pf"
}
run_scripted "$seqrep"
run_scripted "$parrep"
diff "$seqrep" "$parrep"
grep -q '^OK LOADED ' "$seqrep"
grep -q '^EVENT ' "$seqrep"
grep -q '^ERR ' "$seqrep"
# STATS comes after the ERR line, so the connection survived it.
grep -q '^STATS {' "$seqrep"
rm -f "$session"

# A short closed-loop burst against a forked daemon must complete with
# zero protocol errors and print the latency summary.
"$loadgen" --spawn "gnp 2000 0.004 51" --conns 4 --secs 1 > "$seqrep"
grep -q 'errors=0' "$seqrep"
grep -q '^latency_us: p50=' "$seqrep"

# The serving bench section: e21 selects the spannerd anchors, whose
# schema-10 JSON rows must carry throughput and latency percentiles.
benchjson=$(mktemp)
timeout 300 dune exec bench/main.exe -- e21 --json "$benchjson" > /dev/null
grep -q '"serve"' "$benchjson"
grep -q '"serve_gnp10k_c32"' "$benchjson"
grep -q '"qps"' "$benchjson"
grep -q '"lat_us_p50"' "$benchjson"
grep -q '"lat_us_p99"' "$benchjson"
grep -q '"errors"' "$benchjson"
rm -f "$benchjson"

echo "check.sh: all green"
