#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
#   - full build
#   - the unit/integration/property suites
#   - a bench smoke run exercising the --json perf-trajectory and
#     --trace event-stream paths
#   - a tiny spanner_cli trace run (its exit status asserts that the
#     per-round series reconciles with the engine metrics)
# Run from the repository root: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- e1 --json /dev/null --trace /dev/null

tmpgraph=$(mktemp)
trap 'rm -f "$tmpgraph"' EXIT
dune exec bin/spanner_cli.exe -- generate --family caveman -n 24 --seed 1 \
  "$tmpgraph" > /dev/null
dune exec bin/spanner_cli.exe -- trace "$tmpgraph" -a local --limit 4 \
  --jsonl /dev/null > /dev/null

echo "check.sh: all green"
