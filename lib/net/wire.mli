(** The spannerd wire protocol: line-oriented, length-free, typed.

    Every frame is one ['\n']-terminated line of printable ASCII
    (CRLF tolerated on input). Requests:

    {v
    LOAD <family> <n> <p> <seed>   build a graph, precompute its 2-spanner
    LOADFILE <path>                same, from an edge-list file
    QUERY <u> <v>                  stretch-bounded path over the spanner
    CHURN <±u-v> ...               batched edge delta + incremental repair
    STATS                          deterministic counters, flat JSON
    SUBSCRIBE / UNSUBSCRIBE        stream engine trace events
    QUIT                           close this connection
    SHUTDOWN                       stop the whole daemon
    v}

    Replies are single lines too; the only asynchronous frame is
    [EVENT {...}], pushed to subscribed connections. Parsing and
    printing round-trip exactly — the codec tests pin it — and the
    printers emit no wall-clock, pid or address material, so a
    scripted session's reply transcript is byte-identical across
    daemon runs. *)

type churn_op = Ins of int * int | Del of int * int

type request =
  | Load of { family : string; n : int; p : float; seed : int }
  | Loadfile of string
  | Query of int * int
  | Churn of churn_op list
  | Stats
  | Subscribe
  | Unsubscribe
  | Quit
  | Shutdown

type reply =
  | Loaded of { n : int; m : int; spanner : int; rounds : int }
  | Path of int list  (** [PATH <hops> <v0> ... <vk>] — at least one vertex *)
  | Nopath of int * int
  | Churned of {
      tick : int;
      deleted : int;
      inserted : int;
      broken : int;
      dirty : int;
      spanner : int;
      valid : bool;
    }
  | Stats_reply of (string * float) list
      (** field order is part of the frame — printed verbatim *)
  | Subscribed
  | Unsubscribed
  | Bye
  | Shutting_down
  | Event of Distsim.Trace.event
      (** rendered with {!Distsim.Trace.event_to_json}; the daemon
          zeroes the nondeterministic [Round_end] fields before
          emitting *)
  | Err of string  (** the message must not contain newlines *)

val print_request : request -> string
(** One line, without the terminating newline. *)

val parse_request : string -> (request, string) result
(** Case-sensitive verbs, whitespace-separated fields. The [Error]
    string is a human-readable reason, safe to echo in an [ERR]
    reply. *)

val print_reply : reply -> string
val parse_reply : string -> (reply, string) result

val churn_op_to_string : churn_op -> string
(** [+u-v] for inserts, [-u-v] for deletes. *)
