module Trace = Distsim.Trace

module Conn = struct
  type verdict = Continue | Close | Shutdown

  type t = {
    inbuf : Netbuf.t;
    outbuf : Netbuf.t;
    max_line : int;
    mutable subscribed : bool;
    mutable verdict : verdict;
  }

  let create ?(max_line = 1 lsl 20) () =
    {
      inbuf = Netbuf.create ();
      outbuf = Netbuf.create ();
      max_line;
      subscribed = false;
      verdict = Continue;
    }

  let output t = t.outbuf
  let subscribed t = t.subscribed

  let reply t r =
    Netbuf.add_string t.outbuf (Wire.print_reply r);
    Netbuf.add_string t.outbuf "\n"

  let push_event t ev = reply t (Wire.Event ev)

  let dispatch t service line =
    if String.trim line = "" then ()
    else
      match Wire.parse_request line with
      | Error e ->
          Service.bump_errors service;
          reply t (Wire.Err e)
      | Ok Wire.Quit ->
          reply t Wire.Bye;
          t.verdict <- Close
      | Ok Wire.Shutdown ->
          reply t Wire.Shutting_down;
          t.verdict <- Shutdown
      | Ok Wire.Subscribe ->
          t.subscribed <- true;
          reply t Wire.Subscribed
      | Ok Wire.Unsubscribe ->
          t.subscribed <- false;
          reply t Wire.Unsubscribed
      | Ok req -> reply t (Service.handle service req)

  let feed t service bytes =
    if t.verdict = Continue then begin
      Netbuf.add_string t.inbuf bytes;
      let continue = ref true in
      while !continue && t.verdict = Continue do
        match Netbuf.take_line t.inbuf with
        | Some line -> dispatch t service line
        | None ->
            if Netbuf.length t.inbuf > t.max_line then begin
              Service.bump_errors service;
              reply t (Wire.Err "line too long");
              t.verdict <- Close
            end;
            continue := false
      done;
      if t.verdict <> Continue then Netbuf.clear t.inbuf
    end;
    t.verdict
end

(* ---- the select loop --------------------------------------------- *)

type client = {
  fd : Unix.file_descr;
  conn : Conn.t;
  mutable last_activity : float;
}

let write_port_file path port =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "%d\n" port;
  close_out oc;
  Sys.rename tmp path

let serve ?(host = "127.0.0.1") ?(port = 0) ?port_file ?idle_timeout
    ?max_line service =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = ref false in
  let prev_sigint =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
  in
  let listener = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      Sys.set_signal Sys.sigint prev_sigint)
  @@ fun () ->
  Unix.setsockopt listener SO_REUSEADDR true;
  Unix.bind listener (ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listener 128;
  Unix.set_nonblock listener;
  let bound_port =
    match Unix.getsockname listener with
    | ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  (match port_file with
  | Some path -> write_port_file path bound_port
  | None -> ());
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 64 in
  let drop c =
    Hashtbl.remove clients c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  (* The engine-event hook is installed only while someone listens:
     with no subscribers the protocol runs with Trace.null and pays
     nothing. *)
  let refresh_hook () =
    let any =
      Hashtbl.fold (fun _ c any -> any || Conn.subscribed c.conn) clients false
    in
    Service.set_on_event service
      (if any then
         Some
           (fun ev ->
             Hashtbl.iter
               (fun _ c ->
                 if Conn.subscribed c.conn then Conn.push_event c.conn ev)
               clients)
       else None)
  in
  let listening = ref true in
  let stop_listening () =
    if !listening then begin
      listening := false;
      try Unix.close listener with Unix.Unix_error _ -> ()
    end
  in
  let accept_new () =
    let continue = ref true in
    while !continue do
      match Unix.accept listener with
      | fd, _ ->
          Unix.set_nonblock fd;
          Hashtbl.replace clients fd
            {
              fd;
              conn = Conn.create ?max_line ();
              last_activity = Unix.gettimeofday ();
            }
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          continue := false
      | exception Unix.Unix_error ((ECONNABORTED | EPERM), _, _) -> ()
    done
  in
  let flush_client c =
    match Netbuf.write_to_fd (Conn.output c.conn) c.fd with
    | `Closed ->
        drop c;
        refresh_hook ()
    | `Flushed when c.conn.Conn.verdict <> Conn.Continue ->
        drop c;
        refresh_hook ();
        if c.conn.Conn.verdict = Conn.Shutdown then stop := true
    | `Flushed | `Partial -> ()
  in
  let read_client c =
    match Netbuf.read_from_fd c.conn.Conn.inbuf c.fd with
    | exception _ ->
        drop c;
        refresh_hook ()
    | `Eof ->
        drop c;
        refresh_hook ()
    | `Again -> ()
    | `Data _ ->
        c.last_activity <- Unix.gettimeofday ();
        (* Bytes already sit in the conn's in-buffer; feed processes
           them (empty append keeps the actor's single entry point). *)
        let verdict = Conn.feed c.conn service "" in
        refresh_hook ();
        if verdict <> Conn.Continue then flush_client c
  in
  let deadline = ref infinity in
  let finished = ref false in
  while not !finished do
    if !stop then begin
      stop_listening ();
      if !deadline = infinity then deadline := Unix.gettimeofday () +. 5.0
    end;
    let now = Unix.gettimeofday () in
    (* Idle reaping (subscribers exempt: they are deliberately quiet). *)
    (match idle_timeout with
    | Some limit ->
        let stale =
          Hashtbl.fold
            (fun _ c acc ->
              if
                (not (Conn.subscribed c.conn))
                && now -. c.last_activity > limit
              then c :: acc
              else acc)
            clients []
        in
        List.iter drop stale;
        if stale <> [] then refresh_hook ()
    | None -> ());
    let reads =
      Hashtbl.fold
        (fun fd c acc -> if c.conn.Conn.verdict = Conn.Continue then fd :: acc else acc)
        clients
        (if !listening && not !stop then [ listener ] else [])
    in
    let writes =
      Hashtbl.fold
        (fun fd c acc ->
          if not (Netbuf.is_empty (Conn.output c.conn)) then fd :: acc
          else acc)
        clients []
    in
    if !stop && (writes = [] || now > !deadline) then begin
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) clients;
      Hashtbl.reset clients;
      finished := true
    end
    else begin
      match Unix.select reads writes [] 0.25 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, writable, _ ->
          if !listening && List.memq listener readable then accept_new ();
          List.iter
            (fun fd ->
              match Hashtbl.find_opt clients fd with
              | Some c -> read_client c
              | None -> ())
            readable;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt clients fd with
              | Some c -> flush_client c
              | None -> ())
            writable
    end
  done
