type t = { fd : Unix.file_descr; buf : Netbuf.t }

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.setsockopt fd TCP_NODELAY true;
  { fd; buf = Netbuf.create () }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let s = line ^ "\n" in
  let len = String.length s in
  let sent = ref 0 in
  while !sent < len do
    sent :=
      !sent + Unix.write_substring t.fd s !sent (len - !sent)
  done

let recv_line t =
  let rec go () =
    match Netbuf.take_line t.buf with
    | Some line -> Some line
    | None -> (
        match Netbuf.read_from_fd t.buf t.fd with
        | `Eof -> None
        | `Data _ | `Again -> go ())
  in
  go ()

let request t req =
  send_line t (Wire.print_request req);
  let rec await () =
    match recv_line t with
    | None -> Error "connection closed"
    | Some line -> (
        match Wire.parse_reply line with
        | Ok (Wire.Event _) -> await ()
        | Ok reply -> Ok reply
        | Error e -> Error e)
  in
  await ()
