type t = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable len : int;  (* unconsumed byte count *)
}

let create ?(cap = 256) () = { buf = Bytes.create (max cap 16); start = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let clear t =
  t.start <- 0;
  t.len <- 0

(* Make room for [extra] more bytes at the tail: compact first (free
   the consumed prefix), grow only if still too small. *)
let reserve t extra =
  let cap = Bytes.length t.buf in
  if t.start + t.len + extra > cap then begin
    if t.len + extra <= cap then begin
      Bytes.blit t.buf t.start t.buf 0 t.len;
      t.start <- 0
    end
    else begin
      let cap' = max (t.len + extra) (2 * cap) in
      let buf' = Bytes.create cap' in
      Bytes.blit t.buf t.start buf' 0 t.len;
      t.buf <- buf';
      t.start <- 0
    end
  end

let add_string t s =
  let k = String.length s in
  reserve t k;
  Bytes.blit_string s 0 t.buf (t.start + t.len) k;
  t.len <- t.len + k

let consume t k =
  t.start <- t.start + k;
  t.len <- t.len - k;
  if t.len = 0 then t.start <- 0

let take_line t =
  match Bytes.index_from_opt t.buf t.start '\n' with
  | Some i when i < t.start + t.len ->
      let stop =
        if i > t.start && Bytes.get t.buf (i - 1) = '\r' then i - 1 else i
      in
      let line = Bytes.sub_string t.buf t.start (stop - t.start) in
      consume t (i + 1 - t.start);
      Some line
  | _ -> None

let contents t = Bytes.sub_string t.buf t.start t.len

let chunk = 65536

let read_from_fd t fd =
  reserve t chunk;
  match Unix.read fd t.buf (t.start + t.len) chunk with
  | 0 -> `Eof
  | k ->
      t.len <- t.len + k;
      `Data k
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> `Again
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | ENOTCONN | ESHUTDOWN), _, _)
    ->
      `Eof

let write_to_fd t fd =
  if t.len = 0 then `Flushed
  else
    match Unix.write fd t.buf t.start t.len with
    | k ->
        consume t k;
        if t.len = 0 then `Flushed else `Partial
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        `Partial
    | exception
        Unix.Unix_error ((EPIPE | ECONNRESET | ENOTCONN | ESHUTDOWN), _, _) ->
        `Closed
