open Grapho
module C = Spanner_core
module Trace = Distsim.Trace

type loaded = {
  inc : C.Incremental.t;
  bootstrap_rounds : int;
  mutable scsr : Ugraph.t;  (* the maintained spanner as its own CSR *)
  mutable valid : bool;
}

type t = {
  mutable resident : loaded option;
  query : C.Spanner_check.query;
  mutable on_event : (Trace.event -> unit) option;
  mutable loads : int;
  mutable queries : int;
  mutable paths : int;
  mutable nopaths : int;
  mutable churn_ticks : int;
  mutable churn_broken : int;
  mutable repair_rounds : int;
  mutable errors : int;
}

let create () =
  {
    resident = None;
    query = C.Spanner_check.query_create ();
    on_event = None;
    loads = 0;
    queries = 0;
    paths = 0;
    nopaths = 0;
    churn_ticks = 0;
    churn_broken = 0;
    repair_rounds = 0;
    errors = 0;
  }

let set_on_event t f = t.on_event <- f
let bump_errors t = t.errors <- t.errors + 1

(* Subscribers see a deterministic projection of the engine's event
   stream: Round_end's wall-clock and GC fields are measurements of
   the simulator, not the protocol, so they are zeroed on the wire. *)
let scrub = function
  | Trace.Round_end st ->
      Trace.Round_end { st with elapsed_ns = 0; minor_words = 0 }
  | ev -> ev

let trace_sink t =
  match t.on_event with
  | None -> Trace.null
  | Some f -> Trace.custom ~sends:false (fun ev -> f (scrub ev))

let err t msg =
  t.errors <- t.errors + 1;
  Wire.Err msg

(* Vertex count cap on generated graphs: a typo'd LOAD should answer
   ERR, not OOM the daemon. *)
let max_n = 2_000_000

let build_graph ~family ~n ~p ~seed =
  if n < 1 then Error "n must be >= 1"
  else if n > max_n then
    Error (Printf.sprintf "n too large (max %d)" max_n)
  else
    match family with
    | "gnp" ->
        if p <= 0.0 || p > 1.0 then Error "gnp: p must be in (0, 1]"
        else Ok (Generators.gnp_connected (Rng.create seed) n p)
    | "pa" ->
        let d = int_of_float p in
        if d < 1 then Error "pa: p is edges-per-vertex, must be >= 1"
        else Ok (Generators.preferential_attachment (Rng.create seed) n d)
    | "caveman" ->
        if p < 0.0 || p > 1.0 then Error "caveman: p must be in [0, 1]"
        else Ok (Generators.caveman_n (Rng.create seed) n p)
    | "complete" -> Ok (Generators.complete n)
    | "cycle" -> Ok (Generators.cycle n)
    | f ->
        Error
          (Printf.sprintf
             "unknown family %S (want gnp|pa|caveman|complete|cycle)" f)

let install t ~seed g =
  let inc, (r : C.Two_spanner_local.result) =
    C.Incremental.bootstrap ~seed ~trace:(trace_sink t) g
  in
  let scsr =
    C.Spanner_check.spanner_csr ~n:(Ugraph.n g) (C.Incremental.spanner inc)
  in
  t.resident <-
    Some
      {
        inc;
        bootstrap_rounds = r.metrics.rounds;
        scsr;
        valid = true;
      };
  t.loads <- t.loads + 1;
  Wire.Loaded
    {
      n = Ugraph.n g;
      m = Ugraph.m g;
      spanner = Edge.Set.cardinal r.spanner;
      rounds = r.metrics.rounds;
    }

let handle_query t u v =
  match t.resident with
  | None -> err t "no graph loaded"
  | Some ld ->
      let n = Ugraph.n ld.scsr in
      if u >= n || v >= n then
        err t (Printf.sprintf "vertex out of range (n=%d)" n)
      else begin
        t.queries <- t.queries + 1;
        match C.Spanner_check.query_path t.query ld.scsr ~u ~v with
        | Some p ->
            t.paths <- t.paths + 1;
            Wire.Path p
        | None ->
            t.nopaths <- t.nopaths + 1;
            Wire.Nopath (u, v)
      end

let handle_churn t ops =
  match t.resident with
  | None -> err t "no graph loaded"
  | Some ld -> (
      let d = Ugraph.Delta.create () in
      List.iter
        (function
          | Wire.Ins (u, v) -> Ugraph.Delta.add_insert d u v
          | Wire.Del (u, v) -> Ugraph.Delta.add_delete d u v)
        ops;
      match
        C.Incremental.apply ~trace:(trace_sink t) ld.inc d
      with
      | st ->
          ld.scsr <-
            C.Spanner_check.spanner_csr
              ~n:(Ugraph.n (C.Incremental.graph ld.inc))
              (C.Incremental.spanner ld.inc);
          ld.valid <- C.Incremental.valid ld.inc;
          t.churn_ticks <- t.churn_ticks + 1;
          t.churn_broken <- t.churn_broken + st.broken;
          t.repair_rounds <- t.repair_rounds + st.repair_rounds;
          Wire.Churned
            {
              tick = st.tick;
              deleted = st.deleted;
              inserted = st.inserted;
              broken = st.broken;
              dirty = st.dirty;
              spanner = st.spanner_size;
              valid = ld.valid;
            }
      | exception Invalid_argument msg -> err t msg)

let stats t =
  let f = float_of_int in
  let loaded, n, m, spanner, tick, valid, brounds =
    match t.resident with
    | None -> (0., 0., 0., 0., 0., 0., 0.)
    | Some ld ->
        let g = C.Incremental.graph ld.inc in
        ( 1.,
          f (Ugraph.n g),
          f (Ugraph.m g),
          f (Edge.Set.cardinal (C.Incremental.spanner ld.inc)),
          f (C.Incremental.tick ld.inc),
          (if ld.valid then 1. else 0.),
          f ld.bootstrap_rounds )
  in
  [
    ("loaded", loaded);
    ("n", n);
    ("m", m);
    ("spanner_edges", spanner);
    ("tick", tick);
    ("valid", valid);
    ("bootstrap_rounds", brounds);
    ("repair_rounds", f t.repair_rounds);
    ("loads", f t.loads);
    ("queries", f t.queries);
    ("paths", f t.paths);
    ("nopaths", f t.nopaths);
    ("churn_ticks", f t.churn_ticks);
    ("churn_broken", f t.churn_broken);
    ("errors", f t.errors);
  ]

let handle t (req : Wire.request) =
  match req with
  | Load { family; n; p; seed } -> (
      match build_graph ~family ~n ~p ~seed with
      | Error e -> err t ("LOAD: " ^ e)
      | Ok g -> install t ~seed g
      | exception Invalid_argument msg -> err t ("LOAD: " ^ msg)
      | exception Failure msg -> err t ("LOAD: " ^ msg))
  | Loadfile path -> (
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error msg -> err t ("LOADFILE: " ^ msg)
      | text -> (
          match Graph_io.of_edge_list text with
          | g when Ugraph.n g > max_n ->
              err t (Printf.sprintf "LOADFILE: n too large (max %d)" max_n)
          | g -> install t ~seed:0x2D5F1 g
          | exception Invalid_argument msg -> err t ("LOADFILE: " ^ msg)
          | exception Failure msg -> err t ("LOADFILE: " ^ msg)))
  | Query (u, v) -> handle_query t u v
  | Churn ops -> handle_churn t ops
  | Stats -> Wire.Stats_reply (stats t)
  | Subscribe | Unsubscribe | Quit | Shutdown ->
      err t "connection-scoped request routed to the service"

let graph t =
  match t.resident with
  | None -> None
  | Some ld -> Some (C.Incremental.graph ld.inc)

let spanner_size t =
  match t.resident with
  | None -> 0
  | Some ld -> Edge.Set.cardinal (C.Incremental.spanner ld.inc)
