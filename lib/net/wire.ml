module Trace = Distsim.Trace

type churn_op = Ins of int * int | Del of int * int

type request =
  | Load of { family : string; n : int; p : float; seed : int }
  | Loadfile of string
  | Query of int * int
  | Churn of churn_op list
  | Stats
  | Subscribe
  | Unsubscribe
  | Quit
  | Shutdown

type reply =
  | Loaded of { n : int; m : int; spanner : int; rounds : int }
  | Path of int list
  | Nopath of int * int
  | Churned of {
      tick : int;
      deleted : int;
      inserted : int;
      broken : int;
      dirty : int;
      spanner : int;
      valid : bool;
    }
  | Stats_reply of (string * float) list
  | Subscribed
  | Unsubscribed
  | Bye
  | Shutting_down
  | Event of Trace.event
  | Err of string

(* ---- printing ---------------------------------------------------- *)

let churn_op_to_string = function
  | Ins (u, v) -> Printf.sprintf "+%d-%d" u v
  | Del (u, v) -> Printf.sprintf "-%d-%d" u v

let print_request = function
  | Load { family; n; p; seed } ->
      Printf.sprintf "LOAD %s %d %s %d" family n (Trace.json_float p) seed
  | Loadfile path -> "LOADFILE " ^ path
  | Query (u, v) -> Printf.sprintf "QUERY %d %d" u v
  | Churn ops ->
      "CHURN " ^ String.concat " " (List.map churn_op_to_string ops)
  | Stats -> "STATS"
  | Subscribe -> "SUBSCRIBE"
  | Unsubscribe -> "UNSUBSCRIBE"
  | Quit -> "QUIT"
  | Shutdown -> "SHUTDOWN"

let stats_json fields =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Trace.escape_into b k;
      Buffer.add_string b "\":";
      Buffer.add_string b (Trace.json_float v))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let print_reply = function
  | Loaded { n; m; spanner; rounds } ->
      Printf.sprintf "OK LOADED n=%d m=%d spanner=%d rounds=%d" n m spanner
        rounds
  | Path vs ->
      let b = Buffer.create 64 in
      Buffer.add_string b
        (Printf.sprintf "PATH %d" (List.length vs - 1));
      List.iter (fun v -> Buffer.add_string b (Printf.sprintf " %d" v)) vs;
      Buffer.contents b
  | Nopath (u, v) -> Printf.sprintf "NOPATH %d %d" u v
  | Churned { tick; deleted; inserted; broken; dirty; spanner; valid } ->
      Printf.sprintf
        "OK CHURN tick=%d del=%d ins=%d broken=%d dirty=%d spanner=%d \
         valid=%d"
        tick deleted inserted broken dirty spanner
        (if valid then 1 else 0)
  | Stats_reply fields -> "STATS " ^ stats_json fields
  | Subscribed -> "OK SUBSCRIBED"
  | Unsubscribed -> "OK UNSUBSCRIBED"
  | Bye -> "OK BYE"
  | Shutting_down -> "OK SHUTDOWN"
  | Event ev -> "EVENT " ^ Trace.event_to_json ev
  | Err msg -> "ERR " ^ msg

(* ---- parsing ----------------------------------------------------- *)

let ( let* ) = Result.bind

let tokens s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let int_field what s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> Ok v
  | Some _ -> Error (Printf.sprintf "%s must be non-negative" what)
  | None -> Error (Printf.sprintf "%s is not an integer: %s" what s)

let float_field what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s is not a number: %s" what s)

let parse_churn_op tok =
  let fail () =
    Error (Printf.sprintf "bad churn op %S (want +u-v or -u-v)" tok)
  in
  if String.length tok < 4 then fail ()
  else
    let mk u v =
      match tok.[0] with
      | '+' -> Ok (Ins (u, v))
      | '-' -> Ok (Del (u, v))
      | _ -> fail ()
    in
    match String.index_from_opt tok 1 '-' with
    | None -> fail ()
    | Some i -> (
        match
          ( int_of_string_opt (String.sub tok 1 (i - 1)),
            int_of_string_opt
              (String.sub tok (i + 1) (String.length tok - i - 1)) )
        with
        | Some u, Some v when u >= 0 && v >= 0 -> mk u v
        | _ -> fail ())

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let after_verb line verb =
  String.sub line (String.length verb + 1)
    (String.length line - String.length verb - 1)

let parse_request line =
  let line = String.trim line in
  match tokens line with
  | [] -> Error "empty request"
  | [ "LOAD"; family; n; p; seed ] ->
      let* n = int_field "n" n in
      let* p = float_field "p" p in
      let* seed = int_field "seed" seed in
      Ok (Load { family; n; p; seed })
  | "LOAD" :: _ -> Error "usage: LOAD <family> <n> <p> <seed>"
  | "LOADFILE" :: _ :: _ ->
      (* The path is the raw remainder of the line — it may contain
         spaces, so it is not tokenized. *)
      Ok (Loadfile (after_verb line "LOADFILE"))
  | [ "LOADFILE" ] -> Error "usage: LOADFILE <path>"
  | [ "QUERY"; u; v ] ->
      let* u = int_field "u" u in
      let* v = int_field "v" v in
      Ok (Query (u, v))
  | "QUERY" :: _ -> Error "usage: QUERY <u> <v>"
  | "CHURN" :: ops when ops <> [] ->
      let* ops = map_result parse_churn_op ops in
      Ok (Churn ops)
  | [ "CHURN" ] -> Error "usage: CHURN <+u-v|-u-v> ..."
  | [ "STATS" ] -> Ok Stats
  | [ "SUBSCRIBE" ] -> Ok Subscribe
  | [ "UNSUBSCRIBE" ] -> Ok Unsubscribe
  | [ "QUIT" ] -> Ok Quit
  | [ "SHUTDOWN" ] -> Ok Shutdown
  | verb :: _ -> Error (Printf.sprintf "unknown request %S" verb)

let parse_kv what tok =
  match String.index_opt tok '=' with
  | None -> Error (Printf.sprintf "%s: expected key=value, got %S" what tok)
  | Some i ->
      let k = String.sub tok 0 i in
      let* v =
        int_field
          (Printf.sprintf "%s.%s" what k)
          (String.sub tok (i + 1) (String.length tok - i - 1))
      in
      Ok (k, v)

let parse_kvs what expected toks =
  let* kvs = map_result (parse_kv what) toks in
  if List.map fst kvs = expected then Ok (List.map snd kvs)
  else
    Error
      (Printf.sprintf "%s: expected fields %s" what
         (String.concat "," expected))

let parse_stats_json what s =
  let* fields =
    Result.map_error (fun e -> what ^ ": " ^ e) (Trace.parse_flat_json s)
  in
  map_result
    (fun (k, v) ->
      match (v : Trace.json_value) with
      | Jnum f -> Ok (k, f)
      | Jstr _ -> Error (Printf.sprintf "%s: field %s is not a number" what k))
    fields

let parse_reply line =
  let line = String.trim line in
  match tokens line with
  | [] -> Error "empty reply"
  | "OK" :: "LOADED" :: kvs ->
      let* vs = parse_kvs "LOADED" [ "n"; "m"; "spanner"; "rounds" ] kvs in
      (match vs with
      | [ n; m; spanner; rounds ] -> Ok (Loaded { n; m; spanner; rounds })
      | _ -> assert false)
  | "PATH" :: hops :: vs when vs <> [] ->
      let* hops = int_field "hops" hops in
      let* vs = map_result (int_field "vertex") vs in
      if List.length vs = hops + 1 then Ok (Path vs)
      else Error "PATH: hop count does not match vertex count"
  | "PATH" :: _ -> Error "usage: PATH <hops> <v0> ... <vk>"
  | [ "NOPATH"; u; v ] ->
      let* u = int_field "u" u in
      let* v = int_field "v" v in
      Ok (Nopath (u, v))
  | "OK" :: "CHURN" :: kvs ->
      let* vs =
        parse_kvs "CHURN"
          [ "tick"; "del"; "ins"; "broken"; "dirty"; "spanner"; "valid" ]
          kvs
      in
      (match vs with
      | [ tick; deleted; inserted; broken; dirty; spanner; valid ] ->
          if valid > 1 then Error "CHURN: valid must be 0 or 1"
          else
            Ok
              (Churned
                 {
                   tick;
                   deleted;
                   inserted;
                   broken;
                   dirty;
                   spanner;
                   valid = valid = 1;
                 })
      | _ -> assert false)
  | [ "OK"; "SUBSCRIBED" ] -> Ok Subscribed
  | [ "OK"; "UNSUBSCRIBED" ] -> Ok Unsubscribed
  | [ "OK"; "BYE" ] -> Ok Bye
  | [ "OK"; "SHUTDOWN" ] -> Ok Shutting_down
  | "STATS" :: _ :: _ ->
      let* fields = parse_stats_json "STATS" (after_verb line "STATS") in
      Ok (Stats_reply fields)
  | "EVENT" :: _ :: _ ->
      let* ev =
        Result.map_error
          (fun e -> "EVENT: " ^ e)
          (Trace.event_of_json (after_verb line "EVENT"))
      in
      Ok (Event ev)
  | "ERR" :: _ :: _ -> Ok (Err (after_verb line "ERR"))
  | [ "ERR" ] -> Ok (Err "")
  | verb :: _ -> Error (Printf.sprintf "unknown reply %S" verb)
