(** The spannerd event loop: non-blocking [Unix] sockets multiplexed
    by [select], one {!Conn} state machine per client.

    Single process, single thread: readiness events are the only
    scheduler. Each connection owns a growable in-buffer (bytes
    accumulate until complete lines appear — slow and one-byte-at-a-
    time writers are fine) and out-buffer (replies queue until the
    socket can take them — write backpressure is just membership in
    the writability set). Malformed lines answer [ERR] and the
    connection survives; killed clients ([EPIPE]/[ECONNRESET], or a
    read returning EOF) are cleaned up silently; idle connections are
    closed after a configurable timeout. SIGINT (and the [SHUTDOWN]
    request) stop accepting, drain pending replies with a deadline,
    and return cleanly. *)

module Conn : sig
  (** The per-connection state machine, socket-free: bytes in, reply
      bytes out. The daemon owns one per client; the protocol tests
      drive it directly — partial-frame reassembly and garbage-input
      fuzz need no sockets. *)

  type t

  type verdict =
    | Continue  (** keep serving this connection *)
    | Close  (** flush the out-buffer, then close (QUIT, fatal input) *)
    | Shutdown  (** like [Close], but stop the whole daemon (SHUTDOWN) *)

  val create : ?max_line:int -> unit -> t
  (** [max_line] (default 1 MiB) bounds the in-buffer: input that
      grows past it with no newline in sight answers [ERR] and closes
      (there is no way to resync a lost frame boundary). *)

  val feed : t -> Service.t -> string -> verdict
  (** Append raw bytes, process every complete line: parse, dispatch
      (to the service, or locally for the connection-scoped verbs),
      append each reply line to the out-buffer. Never raises on any
      input. Once a non-[Continue] verdict is reached, remaining
      buffered input is discarded. *)

  val output : t -> Netbuf.t
  (** The out-buffer, for the event loop to flush (or for tests to
      read). *)

  val subscribed : t -> bool
  (** Whether this connection has an active [SUBSCRIBE]. *)

  val push_event : t -> Distsim.Trace.event -> unit
  (** Append one [EVENT] line to the out-buffer (the daemon calls
      this on every subscribed connection when the service emits). *)
end

val serve :
  ?host:string ->
  ?port:int ->
  ?port_file:string ->
  ?idle_timeout:float ->
  ?max_line:int ->
  Service.t ->
  unit
(** Bind (default [127.0.0.1], port [0] = ephemeral), listen with
    [SO_REUSEADDR], ignore SIGPIPE, and serve until SIGINT or a
    [SHUTDOWN] request. [port_file] is written atomically with the
    bound port (how scripts discover an ephemeral port).
    [idle_timeout] (seconds; default none) closes connections with no
    inbound traffic for that long, except subscribed ones — a
    subscriber is deliberately quiet. Returns after the drain:
    listener closed first, pending replies flushed with a 5 s
    deadline, every fd closed. *)
