(** Blocking, buffered spannerd client — the loadgen's and the
    scripted smoke test's side of the wire.

    One TCP connection, blocking sockets, a read buffer for line
    reassembly. Threads may each own one client (nothing is shared);
    a single client must not be shared between threads. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** Raises [Unix.Unix_error] if the daemon is not there. *)

val close : t -> unit

val send_line : t -> string -> unit
(** Write one raw line (the newline is appended). *)

val recv_line : t -> string option
(** Next complete line from the daemon ([None] on EOF), CR stripped. *)

val request : t -> Wire.request -> (Wire.reply, string) result
(** Send one request and read frames until its reply arrives,
    skipping interleaved [EVENT] frames (they belong to the
    subscription stream, not to this exchange). [Error] on EOF or an
    unparseable frame. *)
