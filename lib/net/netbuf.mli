(** Growable byte buffers for non-blocking socket I/O.

    One pair per connection: the in-buffer accumulates whatever
    [read] returns until complete ['\n']-terminated lines can be
    taken off the front; the out-buffer queues replies until the
    readiness loop can flush them, possibly a few bytes at a time.
    Both are plain contiguous [Bytes] with a consumed-prefix cursor,
    compacted opportunistically — steady-state traffic reuses the
    allocation. *)

type t

val create : ?cap:int -> unit -> t
(** Fresh empty buffer (default initial capacity 256 bytes). *)

val length : t -> int
(** Unconsumed bytes currently held. *)

val is_empty : t -> bool

val add_string : t -> string -> unit
(** Append the whole string, growing as needed. *)

val take_line : t -> string option
(** Remove and return the first complete line — everything up to the
    first ['\n'], which is consumed; one trailing ['\r'] is stripped
    (the protocol is CRLF-tolerant). [None] when no full line is
    buffered yet. *)

val contents : t -> string
(** The unconsumed bytes, as a string (for tests; does not consume). *)

val clear : t -> unit

val read_from_fd : t -> Unix.file_descr -> [ `Data of int | `Eof | `Again ]
(** One [read] into the buffer (up to 64 KiB). [`Data k] appended k
    bytes; [`Eof] is an orderly close; [`Again] means the socket had
    nothing ([EAGAIN]/[EWOULDBLOCK]/[EINTR]). Connection-reset errors
    ([ECONNRESET] and friends) surface as [`Eof] — a killed client is
    a clean disconnect, not a crash. *)

val write_to_fd : t -> Unix.file_descr -> [ `Flushed | `Partial | `Closed ]
(** One [write] of as much of the buffer as the socket accepts,
    consuming what was written. [`Flushed] emptied the buffer;
    [`Partial] means bytes remain (keep the fd in the writability
    set); [`Closed] means the peer is gone ([EPIPE]/[ECONNRESET]/...),
    which with [SIGPIPE] ignored arrives here as an errno, not a
    signal. *)
