(** The daemon's resident state: one graph + maintained 2-spanner,
    the BFS query scratch, and deterministic serving counters.

    One value per daemon, shared by every connection — the event loop
    is single-threaded, so handlers run to completion and need no
    locking. {!handle} answers the graph-facing requests ([LOAD],
    [LOADFILE], [QUERY], [CHURN], [STATS]); connection-scoped
    requests ([SUBSCRIBE]/[QUIT]/...) are the {!Daemon.Conn} actor's
    business. Replies are a pure function of the load/churn/query
    history — no wall-clock, pid or address material — which is what
    makes scripted-session transcripts byte-identical across daemon
    runs. *)

open Grapho

type t

val create : unit -> t
(** Fresh service with nothing loaded. *)

val handle : t -> Wire.request -> Wire.reply
(** Answer one request. Never raises: malformed or unserviceable
    requests (unknown family, no graph loaded, vertex out of range,
    churn delta rejected) come back as [Err] with the reason, and the
    connection survives. [Subscribe]/[Unsubscribe]/[Quit]/[Shutdown]
    also answer [Err] here — routing them to the service instead of
    the connection actor is a programming error surfaced gently. *)

val set_on_event : t -> (Distsim.Trace.event -> unit) option -> unit
(** Install (or remove) the engine-event hook. While installed, the
    bootstrap and churn-repair runs stream their trace events through
    it, with the nondeterministic [Round_end] fields ([elapsed_ns],
    [minor_words]) zeroed so subscribers see a deterministic
    projection. While absent the engine runs with {!Distsim.Trace.null}
    and skips event construction entirely. *)

val bump_errors : t -> unit
(** Count a protocol-level error that never reached {!handle} (a
    connection actor's parse failure) in the [errors] stat. *)

val stats : t -> (string * float) list
(** The [STATS] payload: fixed field order, deterministic values
    only. *)

val graph : t -> Ugraph.t option
(** The resident graph, if any (for the CLI/bench to introspect). *)

val spanner_size : t -> int
(** Edges in the maintained spanner; 0 when nothing is loaded. *)
