(* Shared plumbing for the Bigarray-backed CSR adjacency used by
   [Ugraph] and [Dgraph]: off-heap int arrays, a growable edge buffer,
   and an in-place range sort.

   Everything here is int-packed [Bigarray.Array1] storage: the
   payload lives outside the OCaml heap, so building or holding a
   million-vertex graph produces no minor-heap traffic and no GC
   scanning cost proportional to m. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create len : ba =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout len

let create_zeroed len =
  let a = create len in
  if len > 0 then Bigarray.Array1.fill a 0;
  a

(* Growable off-heap int buffer. Doubling growth; [len] is the number
   of live elements. *)
type buf = { mutable data : ba; mutable len : int }

let buf_create capacity = { data = create (max capacity 16); len = 0 }

let buf_push b x =
  let cap = Bigarray.Array1.dim b.data in
  if b.len = cap then begin
    let bigger = create (2 * cap) in
    Bigarray.Array1.blit b.data (Bigarray.Array1.sub bigger 0 cap);
    b.data <- bigger
  end;
  Bigarray.Array1.unsafe_set b.data b.len x;
  b.len <- b.len + 1

(* Keep the backing array: repeated fill/reset cycles (the churn
   path's per-tick delta buffers) touch the allocator only until the
   buffer has grown to its steady-state capacity. *)
let buf_reset b = b.len <- 0

(* In-place ascending sort of [a.(lo) .. a.(hi - 1)]. Insertion sort
   for short rows (the common case: row length = vertex degree),
   heapsort above that — O(len log len) worst case with no stack and
   no allocation, so adversarial rows (stars, cliques) cannot blow the
   construction up. *)
let insertion_sort (a : ba) lo hi =
  for i = lo + 1 to hi - 1 do
    let x = Bigarray.Array1.unsafe_get a i in
    let j = ref (i - 1) in
    while !j >= lo && Bigarray.Array1.unsafe_get a !j > x do
      Bigarray.Array1.unsafe_set a (!j + 1) (Bigarray.Array1.unsafe_get a !j);
      decr j
    done;
    Bigarray.Array1.unsafe_set a (!j + 1) x
  done

let heapsort (a : ba) lo hi =
  let len = hi - lo in
  let get i = Bigarray.Array1.unsafe_get a (lo + i) in
  let set i v = Bigarray.Array1.unsafe_set a (lo + i) v in
  let sift root limit =
    let root = ref root in
    let continue_ = ref true in
    while !continue_ do
      let child = (2 * !root) + 1 in
      if child >= limit then continue_ := false
      else begin
        let child =
          if child + 1 < limit && get (child + 1) > get child then child + 1
          else child
        in
        if get child > get !root then begin
          let tmp = get !root in
          set !root (get child);
          set child tmp;
          root := child
        end
        else continue_ := false
      end
    done
  in
  for i = (len / 2) - 1 downto 0 do
    sift i len
  done;
  for i = len - 1 downto 1 do
    let tmp = get 0 in
    set 0 (get i);
    set i tmp;
    sift 0 i
  done

let sort_range a lo hi =
  let len = hi - lo in
  if len >= 2 then if len < 32 then insertion_sort a lo hi else heapsort a lo hi
