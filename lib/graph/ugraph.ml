(* Immutable undirected simple graphs as an int-packed CSR adjacency.

   The representation is a [(row_ptr, col)] pair of off-heap Bigarrays:
   [col.(row_ptr.(u)) .. col.(row_ptr.(u+1) - 1)] is the sorted
   neighbor row of [u]. Degree is two row_ptr reads, membership is a
   binary search in the lower-degree endpoint's row, and iteration is
   pointer arithmetic over a flat buffer — no per-vertex array objects,
   no GC scanning proportional to m, no minor-heap traffic on any hot
   path. A graph of n vertices and m edges occupies exactly
   8 * (n + 1 + 2m) bytes regardless of how it was built. *)

type t = { n : int; m : int; row_ptr : Bigcsr.ba; col : Bigcsr.ba }

let validate_vertex n u =
  if u < 0 || u >= n then
    invalid_arg (Printf.sprintf "Ugraph: vertex %d out of range [0,%d)" u n)

module Builder = struct

  (* Endpoint pairs accumulate in two parallel off-heap buffers; the
     CSR is produced by one counting pass, one scatter pass, a per-row
     sort and an in-place dedup. Nothing about the build materializes
     a per-edge OCaml value, so streaming a million-vertex graph
     through [add_edge] allocates O(1) words on the OCaml heap. *)
  type builder = {
    mutable bn : int;
    us : Bigcsr.buf;
    vs : Bigcsr.buf;
    mutable finished : bool;
  }

  let create ?(expected_edges = 1024) ~n () =
    if n < 0 then invalid_arg "Ugraph.Builder.create: negative n";
    {
      bn = n;
      us = Bigcsr.buf_create expected_edges;
      vs = Bigcsr.buf_create expected_edges;
      finished = false;
    }

  (* Rewind for another build: the grown endpoint buffers stay, so a
     churn loop that rebuilds a graph every tick allocates off-heap
     storage only until the buffers reach steady-state capacity. *)
  let reset b ~n =
    if n < 0 then invalid_arg "Ugraph.Builder.reset: negative n";
    b.bn <- n;
    Bigcsr.buf_reset b.us;
    Bigcsr.buf_reset b.vs;
    b.finished <- false

  let add_edge b u v =
    if b.finished then invalid_arg "Ugraph.Builder: already finished";
    validate_vertex b.bn u;
    validate_vertex b.bn v;
    if u = v then
      invalid_arg (Printf.sprintf "Ugraph: self-loop at vertex %d" u);
    Bigcsr.buf_push b.us u;
    Bigcsr.buf_push b.vs v

  let finish b =
    if b.finished then invalid_arg "Ugraph.Builder: already finished";
    b.finished <- true;
    let n = b.bn and len = b.us.Bigcsr.len in
    let us = b.us.Bigcsr.data and vs = b.vs.Bigcsr.data in
    let row_ptr = Bigcsr.create_zeroed (n + 1) in
    (* degree count (duplicates included; they vanish in the dedup) *)
    for i = 0 to len - 1 do
      let u = Bigarray.Array1.unsafe_get us i
      and v = Bigarray.Array1.unsafe_get vs i in
      Bigarray.Array1.unsafe_set row_ptr (u + 1)
        (Bigarray.Array1.unsafe_get row_ptr (u + 1) + 1);
      Bigarray.Array1.unsafe_set row_ptr (v + 1)
        (Bigarray.Array1.unsafe_get row_ptr (v + 1) + 1)
    done;
    (* exclusive prefix sum: row_ptr.(u) = start of row u *)
    for u = 1 to n do
      Bigarray.Array1.unsafe_set row_ptr u
        (Bigarray.Array1.unsafe_get row_ptr u
        + Bigarray.Array1.unsafe_get row_ptr (u - 1))
    done;
    let col = Bigcsr.create (2 * len) in
    let cursor = Bigcsr.create (max n 1) in
    if n > 0 then
      Bigarray.Array1.blit
        (Bigarray.Array1.sub row_ptr 0 n)
        (Bigarray.Array1.sub cursor 0 n);
    for i = 0 to len - 1 do
      let u = Bigarray.Array1.unsafe_get us i
      and v = Bigarray.Array1.unsafe_get vs i in
      let cu = Bigarray.Array1.unsafe_get cursor u in
      Bigarray.Array1.unsafe_set col cu v;
      Bigarray.Array1.unsafe_set cursor u (cu + 1);
      let cv = Bigarray.Array1.unsafe_get cursor v in
      Bigarray.Array1.unsafe_set col cv u;
      Bigarray.Array1.unsafe_set cursor v (cv + 1)
    done;
    (* sort each row, then compact duplicates in place, rebuilding
       row_ptr as the write cursor advances *)
    let w = ref 0 in
    let lo = ref 0 in
    for u = 0 to n - 1 do
      let hi = Bigarray.Array1.unsafe_get row_ptr (u + 1) in
      Bigcsr.sort_range col !lo hi;
      Bigarray.Array1.unsafe_set row_ptr u !w;
      let prev = ref (-1) in
      for i = !lo to hi - 1 do
        let v = Bigarray.Array1.unsafe_get col i in
        if v <> !prev then begin
          Bigarray.Array1.unsafe_set col !w v;
          incr w;
          prev := v
        end
      done;
      lo := hi
    done;
    Bigarray.Array1.unsafe_set row_ptr n !w;
    let col =
      if !w = 2 * len then col
      else begin
        let exact = Bigcsr.create !w in
        if !w > 0 then
          Bigarray.Array1.blit (Bigarray.Array1.sub col 0 !w) exact;
        exact
      end
    in
    { n; m = !w / 2; row_ptr; col }
end

module Delta = struct
  (* A batched edge update: canonicalized (u < v) endpoint pairs in
     four off-heap buffers plus two reusable key workspaces for
     [apply_delta]'s sorted-merge. The record is a mutable
     accumulator; [reset] rewinds it for the next tick without
     touching the allocator, mirroring [Builder.reset]. *)
  type t = {
    ins_u : Bigcsr.buf;
    ins_v : Bigcsr.buf;
    del_u : Bigcsr.buf;
    del_v : Bigcsr.buf;
    dkeys : Bigcsr.buf;  (* scratch: sorted packed delete keys *)
    ikeys : Bigcsr.buf;  (* scratch: sorted packed insert keys *)
  }

  let create ?(expected = 64) () =
    {
      ins_u = Bigcsr.buf_create expected;
      ins_v = Bigcsr.buf_create expected;
      del_u = Bigcsr.buf_create expected;
      del_v = Bigcsr.buf_create expected;
      dkeys = Bigcsr.buf_create expected;
      ikeys = Bigcsr.buf_create expected;
    }

  let reset d =
    Bigcsr.buf_reset d.ins_u;
    Bigcsr.buf_reset d.ins_v;
    Bigcsr.buf_reset d.del_u;
    Bigcsr.buf_reset d.del_v

  let canon name u v =
    if u < 0 || v < 0 then
      invalid_arg (Printf.sprintf "Ugraph.Delta.%s: negative vertex" name);
    if u = v then
      invalid_arg
        (Printf.sprintf "Ugraph.Delta.%s: self-loop at vertex %d" name u);
    if u < v then (u, v) else (v, u)

  let add_insert d u v =
    let u, v = canon "insert" u v in
    Bigcsr.buf_push d.ins_u u;
    Bigcsr.buf_push d.ins_v v

  let add_delete d u v =
    let u, v = canon "delete" u v in
    Bigcsr.buf_push d.del_u u;
    Bigcsr.buf_push d.del_v v

  let inserts d = d.ins_u.Bigcsr.len
  let deletes d = d.del_u.Bigcsr.len

  let iter_pairs us vs f =
    let len = us.Bigcsr.len in
    let ud = us.Bigcsr.data and vd = vs.Bigcsr.data in
    for i = 0 to len - 1 do
      f (Bigarray.Array1.unsafe_get ud i) (Bigarray.Array1.unsafe_get vd i)
    done

  let iter_inserts f d = iter_pairs d.ins_u d.ins_v f
  let iter_deletes f d = iter_pairs d.del_u d.del_v f
end

(* [dst.len <- 0], then the packed canonical keys [u * n + v] of the
   pairs, sorted ascending. Adjacent duplicates raise. *)
let delta_sorted_keys ~what ~n us vs (dst : Bigcsr.buf) =
  Bigcsr.buf_reset dst;
  Delta.iter_pairs us vs (fun u v ->
      validate_vertex n u;
      validate_vertex n v;
      Bigcsr.buf_push dst ((u * n) + v));
  Bigcsr.sort_range dst.Bigcsr.data 0 dst.Bigcsr.len;
  for i = 1 to dst.Bigcsr.len - 1 do
    if
      Bigarray.Array1.unsafe_get dst.Bigcsr.data i
      = Bigarray.Array1.unsafe_get dst.Bigcsr.data (i - 1)
    then
      let key = Bigarray.Array1.unsafe_get dst.Bigcsr.data i in
      invalid_arg
        (Printf.sprintf "Ugraph.apply_delta: duplicate %s (%d, %d)" what
           (key / n) (key mod n))
  done

let sorted_keys_mem (b : Bigcsr.buf) key =
  let lo = ref 0 and hi = ref b.Bigcsr.len in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let k = Bigarray.Array1.unsafe_get b.Bigcsr.data mid in
    if k = key then found := true else if k < key then lo := mid + 1 else hi := mid
  done;
  !found

let of_edge_iter ?expected_edges ~n iter =
  let b = Builder.create ?expected_edges ~n () in
  iter (fun u v -> Builder.add_edge b u v);
  Builder.finish b

let of_edge_set ~n set =
  of_edge_iter ~expected_edges:(Edge.Set.cardinal set) ~n (fun emit ->
      Edge.Set.iter
        (fun e ->
          let u, v = Edge.endpoints e in
          emit u v)
        set)

let of_edges ~n edges =
  of_edge_iter ~n (fun emit ->
      List.iter
        (fun (u, v) ->
          (* [Edge.make] keeps the historical self-loop diagnostic *)
          let u, v = Edge.endpoints (Edge.make u v) in
          emit u v)
        edges)

let empty n = of_edge_iter ~expected_edges:0 ~n (fun _ -> ())
let n g = g.n
let m g = g.m

let degree g u =
  Bigarray.Array1.get g.row_ptr (u + 1) - Bigarray.Array1.get g.row_ptr u

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    let d =
      Bigarray.Array1.unsafe_get g.row_ptr (u + 1)
      - Bigarray.Array1.unsafe_get g.row_ptr u
    in
    if d > !best then best := d
  done;
  !best

let neighbors g u =
  let lo = Bigarray.Array1.get g.row_ptr u
  and hi = Bigarray.Array1.get g.row_ptr (u + 1) in
  Array.init (hi - lo) (fun i -> Bigarray.Array1.unsafe_get g.col (lo + i))

(* Direct loops over the flat neighbor row: no array value escapes and
   nothing is copied, so hot paths pay two row_ptr reads and then one
   load per neighbor. *)
let iter_neighbors f g u =
  let lo = Bigarray.Array1.get g.row_ptr u
  and hi = Bigarray.Array1.get g.row_ptr (u + 1) in
  for i = lo to hi - 1 do
    f (Bigarray.Array1.unsafe_get g.col i)
  done

let fold_neighbors f g u init =
  let lo = Bigarray.Array1.get g.row_ptr u
  and hi = Bigarray.Array1.get g.row_ptr (u + 1) in
  let acc = ref init in
  for i = lo to hi - 1 do
    acc := f !acc (Bigarray.Array1.unsafe_get g.col i)
  done;
  !acc

let mem_edge g u v =
  if u = v then false
  else begin
    (* Binary search in the sorted row of the lower-degree endpoint.
       Iterative: the engine probes this once per delivered message,
       and an inner recursive closure would allocate on every call. *)
    let rp = g.row_ptr in
    let ulo = Bigarray.Array1.get rp u
    and uhi = Bigarray.Array1.get rp (u + 1)
    and vlo = Bigarray.Array1.get rp v
    and vhi = Bigarray.Array1.get rp (v + 1) in
    let swap = uhi - ulo > vhi - vlo in
    let lo = ref (if swap then vlo else ulo)
    and hi = ref (if swap then vhi else uhi) in
    let x = if swap then u else v in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let y = Bigarray.Array1.unsafe_get g.col mid in
      if y = x then found := true else if y < x then lo := mid + 1 else hi := mid
    done;
    !found
  end

(* Directed slot of [v] inside [u]'s row. Unlike [mem_edge] this must
   search [u]'s row specifically (not the lower-degree endpoint's): the
   returned index is a stable per-directed-edge identifier in
   [0, 2m), which the engine's frugal layer uses to key per-edge send
   memos without hashing. *)
let edge_slot g u v =
  if u = v then -1
  else begin
    let rp = g.row_ptr in
    let lo = ref (Bigarray.Array1.get rp u)
    and hi = ref (Bigarray.Array1.get rp (u + 1)) in
    let slot = ref (-1) in
    while !slot < 0 && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let y = Bigarray.Array1.unsafe_get g.col mid in
      if y = v then slot := mid else if y < v then lo := mid + 1 else hi := mid
    done;
    !slot
  end

(* Inverse of [edge_slot]: binary-search [row_ptr] for the row owning
   the slot. Uniform sampling over slots is uniform over edges (every
   edge owns exactly two slots), which is how the churn generator
   draws deletions without materializing an edge list. *)
let slot_endpoints g i =
  if i < 0 || i >= 2 * g.m then
    invalid_arg "Ugraph.slot_endpoints: slot out of range";
  let rp = g.row_ptr in
  let lo = ref 0 and hi = ref (g.n - 1) in
  (* Invariant: row_ptr.(!lo) <= i < row_ptr.(!hi + ...). Find the
     largest u with row_ptr.(u) <= i. *)
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if Bigarray.Array1.get rp mid <= i then lo := mid else hi := mid - 1
  done;
  (!lo, Bigarray.Array1.get g.col i)

(* Ascending-merge intersection of two sorted neighbor rows: the
   smallest common neighbor, or -1. This is the stretch-2 certificate
   probe — (u, v) is 2-spanned by an edge set exactly when the set
   contains (u, v) or a common neighbor in the set's CSR — and runs in
   O(deg u + deg v) with no allocation, which is what lets the churn
   path check certificates and full validity at the 10^5/10^6
   anchors. *)
let common_neighbor g u v =
  let rp = g.row_ptr in
  let i = ref (Bigarray.Array1.get rp u)
  and ihi = Bigarray.Array1.get rp (u + 1)
  and j = ref (Bigarray.Array1.get rp v)
  and jhi = Bigarray.Array1.get rp (v + 1) in
  let res = ref (-1) in
  while !res < 0 && !i < ihi && !j < jhi do
    let a = Bigarray.Array1.unsafe_get g.col !i
    and b = Bigarray.Array1.unsafe_get g.col !j in
    if a = b then res := a else if a < b then incr i else incr j
  done;
  !res

(* Same merge, without the early exit: every common neighbor, in
   ascending order. The churn path's dirty-ball construction needs all
   the 2-path midpoints of a broken edge, not just a witness. *)
let iter_common_neighbors f g u v =
  let rp = g.row_ptr in
  let i = ref (Bigarray.Array1.get rp u)
  and ihi = Bigarray.Array1.get rp (u + 1)
  and j = ref (Bigarray.Array1.get rp v)
  and jhi = Bigarray.Array1.get rp (v + 1) in
  while !i < ihi && !j < jhi do
    let a = Bigarray.Array1.unsafe_get g.col !i
    and b = Bigarray.Array1.unsafe_get g.col !j in
    if a = b then begin
      f a;
      incr i;
      incr j
    end
    else if a < b then incr i
    else incr j
  done

(* Does [dsts.(lo .. hi-1)] spell out exactly [u]'s neighbor row?
   Allocation-free; used to recognize full-neighborhood broadcasts
   from an outbox segment without touching per-edge state. *)
let row_matches g u dsts ~lo ~hi =
  let rlo = Bigarray.Array1.get g.row_ptr u
  and rhi = Bigarray.Array1.get g.row_ptr (u + 1) in
  hi - lo = rhi - rlo
  &&
  let ok = ref true in
  let i = ref lo and j = ref rlo in
  while !ok && !i < hi do
    if Array.unsafe_get dsts !i <> Bigarray.Array1.unsafe_get g.col !j then
      ok := false;
    incr i;
    incr j
  done;
  !ok

(* Allocation-free edge iteration: each edge visited once as the
   ordered pair (u, v) with u < v, in ascending lexicographic order. *)
let iter_edges_uv f g =
  let lo = ref 0 in
  for u = 0 to g.n - 1 do
    let hi = Bigarray.Array1.unsafe_get g.row_ptr (u + 1) in
    for i = !lo to hi - 1 do
      let v = Bigarray.Array1.unsafe_get g.col i in
      if u < v then f u v
    done;
    lo := hi
  done

let fold_edges_uv f g init =
  let acc = ref init in
  iter_edges_uv (fun u v -> acc := f !acc u v) g;
  !acc

let iter_edges f g = iter_edges_uv (fun u v -> f (Edge.make u v)) g

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun e -> acc := f e !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun e acc -> e :: acc) g [])
let edge_set g = fold_edges Edge.Set.add g Edge.Set.empty

let fold_vertices f g init =
  let acc = ref init in
  for u = 0 to g.n - 1 do
    acc := f u !acc
  done;
  !acc

let iter_vertices f g =
  for u = 0 to g.n - 1 do
    f u
  done

(* Merge-rebuild: stream every surviving edge of [g] plus the inserts
   through the Builder. The cost is one full build — O(n + m) — which
   sounds heavy next to pointer-surgery dynamic adjacency, but the CSR
   build is a linear scatter over off-heap buffers (~1 s at n = 10^6),
   the result keeps every O(1)/O(log deg) access guarantee the
   algorithms rely on, and with [?builder] (a [Builder.reset] reuse
   path) plus the Delta's own scratch, a churn tick allocates nothing
   beyond the result graph itself. *)
let apply_delta ?builder g (d : Delta.t) =
  let n = g.n in
  (* Sorted key workspaces double as the validation pass: duplicate
     inserts and duplicate deletes raise there. *)
  delta_sorted_keys ~what:"delete" ~n d.Delta.del_u d.Delta.del_v
    d.Delta.dkeys;
  delta_sorted_keys ~what:"insert" ~n d.Delta.ins_u d.Delta.ins_v
    d.Delta.ikeys;
  (* A key on both lists is ambiguous — reject rather than pick an
     order. Merge walk over the two sorted workspaces. *)
  let i = ref 0 and j = ref 0 in
  let dk = d.Delta.dkeys and ik = d.Delta.ikeys in
  while !i < dk.Bigcsr.len && !j < ik.Bigcsr.len do
    let a = Bigarray.Array1.unsafe_get dk.Bigcsr.data !i
    and b = Bigarray.Array1.unsafe_get ik.Bigcsr.data !j in
    if a = b then
      invalid_arg
        (Printf.sprintf
           "Ugraph.apply_delta: edge (%d, %d) both inserted and deleted"
           (a / n) (a mod n))
    else if a < b then incr i
    else incr j
  done;
  Delta.iter_deletes
    (fun u v ->
      if not (mem_edge g u v) then
        invalid_arg
          (Printf.sprintf "Ugraph.apply_delta: deleted edge (%d, %d) absent"
             u v))
    d;
  Delta.iter_inserts
    (fun u v ->
      if mem_edge g u v then
        invalid_arg
          (Printf.sprintf
             "Ugraph.apply_delta: inserted edge (%d, %d) already present" u v))
    d;
  let b =
    match builder with
    | Some b ->
        Builder.reset b ~n;
        b
    | None ->
        Builder.create
          ~expected_edges:(g.m - Delta.deletes d + Delta.inserts d)
          ~n ()
  in
  iter_edges_uv
    (fun u v ->
      if not (sorted_keys_mem dk ((u * n) + v)) then Builder.add_edge b u v)
    g;
  Delta.iter_inserts (fun u v -> Builder.add_edge b u v) d;
  Builder.finish b

let induced_by_edges g s =
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      if not (mem_edge g u v) then
        invalid_arg "Ugraph.induced_by_edges: edge not in graph")
    s;
  of_edge_set ~n:g.n s

(* The CSR layout is canonical (rows sorted, duplicates merged, exact
   buffer sizes), so equality is a flat comparison — no edge sets. *)
let equal a b =
  a.n = b.n && a.m = b.m
  &&
  let ok = ref true in
  for u = 0 to a.n do
    if
      Bigarray.Array1.unsafe_get a.row_ptr u
      <> Bigarray.Array1.unsafe_get b.row_ptr u
    then ok := false
  done;
  if !ok then
    for i = 0 to (2 * a.m) - 1 do
      if
        Bigarray.Array1.unsafe_get a.col i
        <> Bigarray.Array1.unsafe_get b.col i
      then ok := false
    done;
  !ok

let resident_bytes g =
  8 * (Bigarray.Array1.dim g.row_ptr + Bigarray.Array1.dim g.col)

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>graph(n=%d, m=%d:" g.n g.m;
  iter_edges (fun e -> Format.fprintf ppf "@ %a" Edge.pp e) g;
  Format.fprintf ppf ")@]"
