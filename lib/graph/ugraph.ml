type t = { n : int; m : int; adj : int array array }

let validate_vertex n u =
  if u < 0 || u >= n then
    invalid_arg (Printf.sprintf "Ugraph: vertex %d out of range [0,%d)" u n)

let of_edge_set ~n set =
  let deg = Array.make n 0 in
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      validate_vertex n u;
      validate_vertex n v;
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    set;
  let adj = Array.init n (fun u -> Array.make deg.(u) 0) in
  let fill = Array.make n 0 in
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    set;
  (* Monomorphic comparator: rows are int arrays, and the polymorphic
     [compare] costs a C call per comparison on the construction path
     of every generated graph. *)
  Array.iter (fun a -> Array.sort (fun (x : int) y -> Int.compare x y) a) adj;
  { n; m = Edge.Set.cardinal set; adj }

let of_edges ~n edges =
  let set =
    List.fold_left (fun s (u, v) -> Edge.Set.add (Edge.make u v) s)
      Edge.Set.empty edges
  in
  of_edge_set ~n set

let empty n = { n; m = 0; adj = Array.make n [||] }
let n g = g.n
let m g = g.m
let degree g u = Array.length g.adj.(u)

let max_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

let neighbors g u = g.adj.(u)

(* Direct loops over the adjacency row: no array value escapes, so hot
   paths neither alias nor re-fetch [adj.(u)] per element. *)
let iter_neighbors f g u =
  let a = g.adj.(u) in
  for i = 0 to Array.length a - 1 do
    f a.(i)
  done

let fold_neighbors f g u init =
  let a = g.adj.(u) in
  let acc = ref init in
  for i = 0 to Array.length a - 1 do
    acc := f !acc a.(i)
  done;
  !acc

let mem_edge g u v =
  if u = v then false
  else begin
    (* Binary search in the sorted neighbor array of the lower-degree
       endpoint. Iterative: the engine probes this once per delivered
       message, and an inner recursive closure would allocate on every
       call. *)
    let swap = Array.length g.adj.(u) > Array.length g.adj.(v) in
    let a = if swap then g.adj.(v) else g.adj.(u) in
    let x = if swap then u else v in
    let lo = ref 0 and hi = ref (Array.length a) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let y = a.(mid) in
      if y = x then found := true
      else if y < x then lo := mid + 1
      else hi := mid
    done;
    !found
  end

let iter_edges f g =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> if u < v then f (Edge.make u v)) g.adj.(u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun e -> acc := f e !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun e acc -> e :: acc) g [])
let edge_set g = fold_edges Edge.Set.add g Edge.Set.empty

let fold_vertices f g init =
  let acc = ref init in
  for u = 0 to g.n - 1 do
    acc := f u !acc
  done;
  !acc

let iter_vertices f g =
  for u = 0 to g.n - 1 do
    f u
  done

let induced_by_edges g s =
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      if not (mem_edge g u v) then
        invalid_arg "Ugraph.induced_by_edges: edge not in graph")
    s;
  of_edge_set ~n:g.n s

let equal a b = a.n = b.n && Edge.Set.equal (edge_set a) (edge_set b)

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>graph(n=%d, m=%d:" g.n g.m;
  iter_edges (fun e -> Format.fprintf ppf "@ %a" Edge.pp e) g;
  Format.fprintf ppf ")@]"
