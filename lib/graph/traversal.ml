let bfs_generic ~n ~neighbors s =
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    neighbors u (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
  done;
  dist

let bfs_distances g s =
  bfs_generic ~n:(Ugraph.n g)
    ~neighbors:(fun u f -> Ugraph.iter_neighbors f g u)
    s

let distance g u v = (bfs_distances g u).(v)

let ball g v d =
  let dist = bfs_distances g v in
  let inside = ref [] in
  for u = Ugraph.n g - 1 downto 0 do
    if dist.(u) <= d then inside := u :: !inside
  done;
  List.sort (fun a b -> compare (dist.(a), a) (dist.(b), b)) !inside

let components g =
  let n = Ugraph.n g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for s = 0 to n - 1 do
    if comp.(s) = -1 then begin
      let id = !next in
      incr next;
      let q = Queue.create () in
      comp.(s) <- id;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Ugraph.iter_neighbors
          (fun v ->
            if comp.(v) = -1 then begin
              comp.(v) <- id;
              Queue.add v q
            end)
          g u
      done
    end
  done;
  comp

let component_count g =
  let comp = components g in
  Array.fold_left max (-1) comp + 1

let is_connected g = Ugraph.n g = 0 || component_count g = 1

let eccentricity g v =
  let dist = bfs_distances g v in
  Array.fold_left max 0 dist

let diameter g =
  let best = ref 0 in
  (try
     for v = 0 to Ugraph.n g - 1 do
       let e = eccentricity g v in
       if e = max_int then begin
         best := max_int;
         raise Exit
       end;
       best := max !best e
     done
   with Exit -> ());
  !best

let girth g =
  (* For each root, BFS; a non-tree edge closing at depths d1, d2 gives a
     cycle of length d1 + d2 + 1 through the root's BFS tree. Taking the
     minimum over all roots is exact for girth. *)
  let n = Ugraph.n g in
  let best = ref max_int in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  for s = 0 to n - 1 do
    Array.fill dist 0 n max_int;
    Array.fill parent 0 n (-1);
    let q = Queue.create () in
    dist.(s) <- 0;
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Ugraph.iter_neighbors
        (fun v ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            parent.(v) <- u;
            Queue.add v q
          end
          else if v <> parent.(u) && dist.(u) + dist.(v) + 1 < !best then
            best := dist.(u) + dist.(v) + 1)
        g u
    done
  done;
  !best

let adjacency_of_set ~n set =
  let adj = Array.make n [] in
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    set;
  adj

let bounded_bfs ~adj ~n u v ~bound =
  if u = v then 0
  else begin
    let dist = Array.make n max_int in
    let q = Queue.create () in
    dist.(u) <- 0;
    Queue.add u q;
    let answer = ref max_int in
    (try
       while not (Queue.is_empty q) do
         let x = Queue.pop q in
         if dist.(x) < bound then
           List.iter
             (fun y ->
               if dist.(y) = max_int then begin
                 dist.(y) <- dist.(x) + 1;
                 if y = v then begin
                   answer := dist.(y);
                   raise Exit
                 end;
                 Queue.add y q
               end)
             adj.(x)
       done
     with Exit -> ());
    !answer
  end

let set_distance_within ~n set u v ~bound =
  bounded_bfs ~adj:(adjacency_of_set ~n set) ~n u v ~bound

let directed_adjacency_of_set ~n set =
  let adj = Array.make n [] in
  Edge.Directed.Set.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) set;
  adj

let directed_set_distance_within ~n set u v ~bound =
  bounded_bfs ~adj:(directed_adjacency_of_set ~n set) ~n u v ~bound

let directed_bfs_distances g s =
  bfs_generic ~n:(Dgraph.n g)
    ~neighbors:(fun u f -> Dgraph.iter_out_neighbors f g u)
    s
