(** Non-negative edge weights.

    The weighted k-spanner problem of the paper assigns each edge a
    non-negative cost; all edges keep {e length} 1 (weights are costs,
    not metric lengths). A weight table carries a default so that
    "all remaining edges weigh 1" needs no enumeration. *)

type t
(** Weights for undirected edges. *)

val uniform : float -> t
(** Every edge has the given weight. *)

val of_list : ?default:float -> (int * int * float) list -> t
(** Explicit weights; unlisted edges get [default] (1.0 if omitted).
    Raises [Invalid_argument] on negative weights. *)

val of_map : ?default:float -> float Edge.Map.t -> t
val get : t -> Edge.t -> float

val get_uv : t -> int -> int -> float
(** [get_uv t u v] is [get t (Edge.make u v)] without allocating the
    edge: lookups go through an int-packed hash mirror built at
    construction, so per-probe cost is one immediate-key hash lookup.
    This is the accessor hot loops (e.g. [wmax_two_hop], the protocol
    variants' weight probes) should use. Raises [Invalid_argument] on
    [u = v], like [Edge.make]. *)

val cost : t -> Edge.Set.t -> float
(** Total weight of an edge set. *)

val graph_cost : t -> Ugraph.t -> float

val max_positive : t -> Ugraph.t -> float
(** Largest positive weight of an edge of the graph; 0 if none. *)

val min_positive : t -> Ugraph.t -> float
(** Smallest positive weight of an edge of the graph; 0 if none. *)

val ratio : t -> Ugraph.t -> float
(** [W = max_positive / min_positive]; 1.0 when the graph has no
    positively-weighted edge. *)

module Directed : sig
  type t

  val uniform : float -> t
  val of_list : ?default:float -> (int * int * float) list -> t
  val get : t -> Edge.Directed.t -> float
  val cost : t -> Edge.Directed.Set.t -> float
end
