let check w =
  if w < 0.0 then invalid_arg "Weights: negative weight";
  w

type t = {
  table : float Edge.Map.t;
  default : float;
  fast : (int, float) Hashtbl.t;
      (* packed (lo, hi) -> weight mirror of [table], built once at
         construction so hot loops can probe a weight without
         allocating an [Edge.t] per lookup. *)
}

(* Vertex ids are non-negative and well below 2^31 in this code base,
   so an unordered pair packs losslessly into one immediate int. *)
let pack u v = if u < v then (u lsl 31) lor v else (v lsl 31) lor u

let fast_of_table table =
  let h = Hashtbl.create (max 16 (2 * Edge.Map.cardinal table)) in
  Edge.Map.iter
    (fun e w ->
      let u, v = Edge.endpoints e in
      Hashtbl.replace h (pack u v) w)
    table;
  h

let uniform w =
  let table = Edge.Map.empty in
  { table; default = check w; fast = fast_of_table table }

let of_map ?(default = 1.0) table =
  Edge.Map.iter (fun _ w -> ignore (check w)) table;
  { table; default = check default; fast = fast_of_table table }

let of_list ?(default = 1.0) l =
  let table =
    List.fold_left
      (fun m (u, v, w) -> Edge.Map.add (Edge.make u v) (check w) m)
      Edge.Map.empty l
  in
  { table; default = check default; fast = fast_of_table table }

let get_uv t u v =
  if u = v then invalid_arg "Weights.get_uv: self-loop";
  try Hashtbl.find t.fast (pack u v) with Not_found -> t.default

let get t e =
  match Edge.Map.find_opt e t.table with Some w -> w | None -> t.default

let cost t s = Edge.Set.fold (fun e acc -> acc +. get t e) s 0.0

let graph_cost t g = Ugraph.fold_edges (fun e acc -> acc +. get t e) g 0.0

let fold_positive f t g init =
  Ugraph.fold_edges
    (fun e acc ->
      let w = get t e in
      if w > 0.0 then f w acc else acc)
    g init

let max_positive t g = fold_positive max t g 0.0

let min_positive t g =
  fold_positive (fun w acc -> if acc = 0.0 then w else min w acc) t g 0.0

let ratio t g =
  let mn = min_positive t g in
  if mn = 0.0 then 1.0 else max_positive t g /. mn

module Directed = struct
  type t = { table : float Edge.Directed.Map.t; default : float }

  let uniform w = { table = Edge.Directed.Map.empty; default = check w }

  let of_list ?(default = 1.0) l =
    let table =
      List.fold_left
        (fun m (u, v, w) ->
          Edge.Directed.Map.add (Edge.Directed.make u v) (check w) m)
        Edge.Directed.Map.empty l
    in
    { table; default = check default }

  let get t e =
    match Edge.Directed.Map.find_opt e t.table with
    | Some w -> w
    | None -> t.default

  let cost t s = Edge.Directed.Set.fold (fun e acc -> acc +. get t e) s 0.0
end
