let path n =
  Ugraph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Ugraph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  Ugraph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Ugraph.of_edges ~n !edges

let complete_bipartite a b =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Ugraph.of_edges ~n:(a + b) !edges

let grid rows cols =
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Ugraph.of_edges ~n:(rows * cols) !edges

let hypercube d =
  let n = 1 lsl d in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to d - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Ugraph.of_edges ~n !edges

let gnp rng n p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Ugraph.of_edges ~n !edges

let gnp_connected rng n p =
  let g = gnp rng n p in
  let perm = Rng.permutation rng n in
  let backbone = List.init (max 0 (n - 1)) (fun i -> (perm.(i), perm.(i + 1))) in
  Ugraph.of_edge_set ~n
    (List.fold_left
       (fun s (u, v) -> Edge.Set.add (Edge.make u v) s)
       (Ugraph.edge_set g) backbone)

let random_bipartite rng a b p =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      if Rng.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Ugraph.of_edges ~n:(a + b) !edges

let preferential_attachment rng n k =
  if n < k + 1 then invalid_arg "Generators.preferential_attachment: n <= k";
  (* endpoint multiset: picking a uniform element weights by degree *)
  let endpoints = ref [] in
  let edges = ref [] in
  for v = 1 to k do
    edges := (v, 0) :: !edges;
    endpoints := v :: 0 :: !endpoints
  done;
  let pool = ref (Array.of_list !endpoints) in
  for v = k + 1 to n - 1 do
    let targets = ref [] in
    let attempts = ref 0 in
    while List.length !targets < k && !attempts < 50 * k do
      incr attempts;
      let t = !pool.(Rng.int rng (Array.length !pool)) in
      if t <> v && not (List.mem t !targets) then targets := t :: !targets
    done;
    List.iter
      (fun t ->
        edges := (v, t) :: !edges;
        pool := Array.append !pool [| v; t |])
      !targets
  done;
  Ugraph.of_edges ~n !edges

let caveman rng cliques size p_rewire =
  let n = cliques * size in
  let set = ref Edge.Set.empty in
  for c = 0 to cliques - 1 do
    let base = c * size in
    for i = 0 to size - 1 do
      for j = i + 1 to size - 1 do
        set := Edge.Set.add (Edge.make (base + i) (base + j)) !set
      done
    done;
    (* ring of cliques *)
    let next = (c + 1) mod cliques * size in
    set := Edge.Set.add (Edge.make base next) !set
  done;
  (* rewire: replace a random intra-clique edge endpoint *)
  let rewired =
    Edge.Set.fold
      (fun e acc ->
        if Rng.float rng 1.0 < p_rewire then begin
          let u, _ = Edge.endpoints e in
          let w = Rng.int rng n in
          if w <> u then Edge.Set.add (Edge.make u w) acc
          else Edge.Set.add e acc
        end
        else Edge.Set.add e acc)
      !set Edge.Set.empty
  in
  Ugraph.of_edge_set ~n rewired

let caveman_n rng n p_rewire =
  if n <= 0 then invalid_arg "Generators.caveman_n: n must be positive";
  (* k = ceil(n / 8) cliques of near-equal sizes (floor or ceil of
     n/k), summing to exactly n — so the requested vertex count is
     honored precisely instead of being rounded to a multiple of 8. *)
  let k = (n + 7) / 8 in
  let base_size = n / k and extra = n mod k in
  let set = ref Edge.Set.empty in
  let bases = Array.make k 0 in
  let base = ref 0 in
  for c = 0 to k - 1 do
    let size = base_size + if c < extra then 1 else 0 in
    bases.(c) <- !base;
    for i = 0 to size - 1 do
      for j = i + 1 to size - 1 do
        set := Edge.Set.add (Edge.make (!base + i) (!base + j)) !set
      done
    done;
    base := !base + size
  done;
  (* ring of cliques; skipped when a single clique would self-loop *)
  if k > 1 then
    for c = 0 to k - 1 do
      set := Edge.Set.add (Edge.make bases.(c) bases.((c + 1) mod k)) !set
    done;
  let rewired =
    Edge.Set.fold
      (fun e acc ->
        if Rng.float rng 1.0 < p_rewire then begin
          let u, _ = Edge.endpoints e in
          let w = Rng.int rng n in
          if w <> u then Edge.Set.add (Edge.make u w) acc
          else Edge.Set.add e acc
        end
        else Edge.Set.add e acc)
      !set Edge.Set.empty
  in
  Ugraph.of_edge_set ~n rewired

let clique_ladder rng n =
  let set = ref Edge.Set.empty in
  let base = ref 0 and size = ref 4 in
  while !base + !size < n do
    for i = 0 to !size - 1 do
      for j = i + 1 to !size - 1 do
        set := Edge.Set.add (Edge.make (!base + i) (!base + j)) !set
      done
    done;
    base := !base + !size;
    size := !size + 2
  done;
  for _ = 1 to 3 * n do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then set := Edge.Set.add (Edge.make u v) !set
  done;
  Ugraph.of_edge_set ~n !set

let random_tree rng n =
  if n <= 1 then Ugraph.empty (max n 0)
  else if n = 2 then Ugraph.of_edges ~n [ (0, 1) ]
  else begin
    (* Prüfer decoding *)
    let prufer = Array.init (n - 2) (fun _ -> Rng.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) prufer;
    let module H = Set.Make (Int) in
    let leaves = ref H.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := H.add v !leaves
    done;
    let edges = ref [] in
    Array.iter
      (fun v ->
        let leaf = H.min_elt !leaves in
        leaves := H.remove leaf !leaves;
        edges := (leaf, v) :: !edges;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := H.add v !leaves)
      prufer;
    (match H.elements !leaves with
    | [ a; b ] -> edges := (a, b) :: !edges
    | _ -> assert false);
    Ugraph.of_edges ~n !edges
  end

let random_regular_ish rng n d =
  if d >= n then invalid_arg "Generators.random_regular_ish: d >= n";
  let set = ref Edge.Set.empty in
  let add_cycle () =
    let perm = Rng.permutation rng n in
    for i = 0 to n - 1 do
      let u = perm.(i) and v = perm.((i + 1) mod n) in
      if u <> v then set := Edge.Set.add (Edge.make u v) !set
    done
  in
  let add_path () =
    let perm = Rng.permutation rng n in
    for i = 0 to n - 2 do
      set := Edge.Set.add (Edge.make perm.(i) perm.(i + 1)) !set
    done
  in
  for _ = 1 to d / 2 do
    add_cycle ()
  done;
  if d mod 2 = 1 then add_path ();
  Ugraph.of_edge_set ~n !set

let random_orientation rng g =
  let edges =
    Ugraph.fold_edges
      (fun e acc ->
        let u, v = Edge.endpoints e in
        if Rng.bool rng then (u, v) :: acc else (v, u) :: acc)
      g []
  in
  Dgraph.of_edges ~n:(Ugraph.n g) edges

let random_dag_orientation g =
  Dgraph.of_edges ~n:(Ugraph.n g)
    (List.map Edge.endpoints (Ugraph.edges g))

let bidirect g =
  let edges =
    Ugraph.fold_edges
      (fun e acc ->
        let u, v = Edge.endpoints e in
        (u, v) :: (v, u) :: acc)
      g []
  in
  Dgraph.of_edges ~n:(Ugraph.n g) edges

let random_weights rng g ~max_weight =
  let l =
    Ugraph.fold_edges
      (fun e acc ->
        let u, v = Edge.endpoints e in
        (u, v, float_of_int (1 + Rng.int rng max_weight)) :: acc)
      g []
  in
  Weights.of_list ~default:1.0 l

let random_weights_with_zeros rng g ~zero_fraction ~max_weight =
  let l =
    Ugraph.fold_edges
      (fun e acc ->
        let u, v = Edge.endpoints e in
        let w =
          if Rng.float rng 1.0 < zero_fraction then 0.0
          else float_of_int (1 + Rng.int rng max_weight)
        in
        (u, v, w) :: acc)
      g []
  in
  Weights.of_list ~default:1.0 l

let random_client_server rng g ~client_fraction ~server_fraction =
  Ugraph.fold_edges
    (fun e (clients, servers) ->
      let c = Rng.float rng 1.0 < client_fraction in
      let s = Rng.float rng 1.0 < server_fraction in
      let s = s || not c in
      let clients = if c then Edge.Set.add e clients else clients in
      let servers = if s then Edge.Set.add e servers else servers in
      (clients, servers))
    g
    (Edge.Set.empty, Edge.Set.empty)
