(* The structured families stream straight into the CSR builder: no
   intermediate edge list, so even the n=10^6 instances build in O(m)
   off-heap memory. *)

let path n =
  Ugraph.of_edge_iter ~n (fun emit ->
      for i = 0 to n - 2 do
        emit i (i + 1)
      done)

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Ugraph.of_edge_iter ~n (fun emit ->
      emit (n - 1) 0;
      for i = 0 to n - 2 do
        emit i (i + 1)
      done)

let star n =
  Ugraph.of_edge_iter ~n (fun emit ->
      for i = 1 to n - 1 do
        emit 0 i
      done)

let complete n =
  Ugraph.of_edge_iter ~n (fun emit ->
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          emit u v
        done
      done)

let complete_bipartite a b =
  Ugraph.of_edge_iter ~n:(a + b) (fun emit ->
      for u = 0 to a - 1 do
        for v = a to a + b - 1 do
          emit u v
        done
      done)

let grid rows cols =
  let id r c = (r * cols) + c in
  Ugraph.of_edge_iter ~n:(rows * cols) (fun emit ->
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          if c + 1 < cols then emit (id r c) (id r (c + 1));
          if r + 1 < rows then emit (id r c) (id (r + 1) c)
        done
      done)

let hypercube d =
  let n = 1 lsl d in
  Ugraph.of_edge_iter ~n (fun emit ->
      for u = 0 to n - 1 do
        for b = 0 to d - 1 do
          let v = u lxor (1 lsl b) in
          if u < v then emit u v
        done
      done)

(* G(n, p) by geometric skip-sampling (Batagelj-Brandes): walk the
   upper triangle in lexicographic order jumping straight to the next
   sampled pair, so generation costs O(n + m) Rng draws instead of one
   Bernoulli trial per pair. Callers must keep [p] in (0, 1); emits
   (w, v) pairs with w < v, ascending in v then w — already in CSR row
   order. Note the Rng consumption differs from the historical
   trial-per-pair loop, so graphs sampled at a given seed changed when
   skip-sampling landed; the bench re-pins its gnp anchors. *)
let gnp_stream rng n p emit =
  let v = ref 1 and w = ref (-1) in
  while !v < n do
    w := !w + 1 + Rng.geometric rng p;
    while !w >= !v && !v < n do
      w := !w - !v;
      incr v
    done;
    if !v < n then emit !w !v
  done

let gnp rng n p =
  let n = max n 0 in
  if p <= 0.0 then Ugraph.empty n
  else if p >= 1.0 then complete n
  else Ugraph.of_edge_iter ~n (fun emit -> gnp_stream rng n p emit)

let gnp_connected rng n p =
  let n = max n 0 in
  Ugraph.of_edge_iter ~n (fun emit ->
      if p >= 1.0 then
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            emit u v
          done
        done
      else if p > 0.0 then gnp_stream rng n p emit;
      (* backbone drawn after the gnp draws, as before *)
      let perm = Rng.permutation rng n in
      for i = 0 to n - 2 do
        emit perm.(i) perm.(i + 1)
      done)

let random_bipartite rng a b p =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      if Rng.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Ugraph.of_edges ~n:(a + b) !edges

let preferential_attachment rng n k =
  if n < k + 1 then invalid_arg "Generators.preferential_attachment: n <= k";
  (* Endpoint multiset: picking a uniform element weights by degree.
     The pool is preallocated at its exact upper bound and grown by
     cursor — the historical implementation re-copied it with
     [Array.append] per accepted target, which is O(n^2 k) at scale.
     Pool contents, growth order and Rng draws are replicated exactly,
     so every seed still samples the same graph. *)
  let cap = 2 * (k + (max 0 (n - 1 - k) * k)) in
  let pool = Array.make (max cap 1) 0 in
  let plen = ref 0 in
  let push x =
    pool.(!plen) <- x;
    incr plen
  in
  (* matches the historical [v :: 0 :: ...] prepend order *)
  for v = k downto 1 do
    push v;
    push 0
  done;
  let targets = Array.make (max k 1) 0 in
  Ugraph.of_edge_iter ~expected_edges:(k + (max 0 (n - 1 - k) * k)) ~n
    (fun emit ->
      for v = 1 to k do
        emit v 0
      done;
      for v = k + 1 to n - 1 do
        let tcount = ref 0 and attempts = ref 0 in
        let len = !plen in
        while !tcount < k && !attempts < 50 * k do
          incr attempts;
          let t = pool.(Rng.int rng len) in
          let dup = ref (t = v) in
          for i = 0 to !tcount - 1 do
            if targets.(i) = t then dup := true
          done;
          if not !dup then begin
            targets.(!tcount) <- t;
            incr tcount
          end
        done;
        (* most-recent target first, as the historical list fold did *)
        for i = !tcount - 1 downto 0 do
          let t = targets.(i) in
          emit v t;
          push v;
          push t
        done
      done)

let caveman rng cliques size p_rewire =
  let n = cliques * size in
  let set = ref Edge.Set.empty in
  for c = 0 to cliques - 1 do
    let base = c * size in
    for i = 0 to size - 1 do
      for j = i + 1 to size - 1 do
        set := Edge.Set.add (Edge.make (base + i) (base + j)) !set
      done
    done;
    (* ring of cliques *)
    let next = (c + 1) mod cliques * size in
    set := Edge.Set.add (Edge.make base next) !set
  done;
  (* rewire: replace a random intra-clique edge endpoint *)
  let rewired =
    Edge.Set.fold
      (fun e acc ->
        if Rng.float rng 1.0 < p_rewire then begin
          let u, _ = Edge.endpoints e in
          let w = Rng.int rng n in
          if w <> u then Edge.Set.add (Edge.make u w) acc
          else Edge.Set.add e acc
        end
        else Edge.Set.add e acc)
      !set Edge.Set.empty
  in
  Ugraph.of_edge_set ~n rewired

let caveman_n rng n p_rewire =
  if n <= 0 then invalid_arg "Generators.caveman_n: n must be positive";
  (* k = ceil(n / 8) cliques of near-equal sizes (floor or ceil of
     n/k), summing to exactly n — so the requested vertex count is
     honored precisely instead of being rounded to a multiple of 8.

     Unlike {!caveman} (whose sampled graphs are pinned by the bench
     anchors), this streams every clique/ring edge through the CSR
     builder and rewires at emission time: O(m) off-heap memory, no
     Edge.Set, which is what lets spanner_cli generate million-vertex
     caveman instances. Rewiring draws happen in generation order
     rather than sorted-set order, so seeds sample different (equally
     distributed) graphs than the historical Edge.Set version did. *)
  let k = (n + 7) / 8 in
  let base_size = n / k and extra = n mod k in
  let bases = Array.make k 0 in
  let base = ref 0 in
  let sizes = Array.make k 0 in
  for c = 0 to k - 1 do
    let size = base_size + if c < extra then 1 else 0 in
    bases.(c) <- !base;
    sizes.(c) <- size;
    base := !base + size
  done;
  Ugraph.of_edge_iter ~n (fun emit ->
      let emit_rewired u v =
        if Rng.float rng 1.0 < p_rewire then begin
          let u = min u v and v = max u v in
          let w = Rng.int rng n in
          if w <> u then emit u w else emit u v
        end
        else emit u v
      in
      for c = 0 to k - 1 do
        let base = bases.(c) and size = sizes.(c) in
        for i = 0 to size - 1 do
          for j = i + 1 to size - 1 do
            emit_rewired (base + i) (base + j)
          done
        done
      done;
      (* ring of cliques; skipped when a single clique would
         self-loop, and emitted once (not twice) for k = 2 *)
      if k > 1 then
        for c = 0 to (if k = 2 then 0 else k - 1) do
          emit_rewired bases.(c) bases.((c + 1) mod k)
        done)

let clique_ladder rng n =
  let set = ref Edge.Set.empty in
  let base = ref 0 and size = ref 4 in
  while !base + !size < n do
    for i = 0 to !size - 1 do
      for j = i + 1 to !size - 1 do
        set := Edge.Set.add (Edge.make (!base + i) (!base + j)) !set
      done
    done;
    base := !base + !size;
    size := !size + 2
  done;
  for _ = 1 to 3 * n do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then set := Edge.Set.add (Edge.make u v) !set
  done;
  Ugraph.of_edge_set ~n !set

let random_tree rng n =
  if n <= 1 then Ugraph.empty (max n 0)
  else if n = 2 then Ugraph.of_edges ~n [ (0, 1) ]
  else begin
    (* Prüfer decoding *)
    let prufer = Array.init (n - 2) (fun _ -> Rng.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) prufer;
    let module H = Set.Make (Int) in
    let leaves = ref H.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := H.add v !leaves
    done;
    let edges = ref [] in
    Array.iter
      (fun v ->
        let leaf = H.min_elt !leaves in
        leaves := H.remove leaf !leaves;
        edges := (leaf, v) :: !edges;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := H.add v !leaves)
      prufer;
    (match H.elements !leaves with
    | [ a; b ] -> edges := (a, b) :: !edges
    | _ -> assert false);
    Ugraph.of_edges ~n !edges
  end

let random_regular_ish rng n d =
  if d >= n then invalid_arg "Generators.random_regular_ish: d >= n";
  let set = ref Edge.Set.empty in
  let add_cycle () =
    let perm = Rng.permutation rng n in
    for i = 0 to n - 1 do
      let u = perm.(i) and v = perm.((i + 1) mod n) in
      if u <> v then set := Edge.Set.add (Edge.make u v) !set
    done
  in
  let add_path () =
    let perm = Rng.permutation rng n in
    for i = 0 to n - 2 do
      set := Edge.Set.add (Edge.make perm.(i) perm.(i + 1)) !set
    done
  in
  for _ = 1 to d / 2 do
    add_cycle ()
  done;
  if d mod 2 = 1 then add_path ();
  Ugraph.of_edge_set ~n !set

let random_orientation rng g =
  Dgraph.of_edge_iter ~expected_edges:(Ugraph.m g) ~n:(Ugraph.n g)
    (fun emit ->
      (* coin per edge in ascending edge order, as before *)
      Ugraph.iter_edges_uv
        (fun u v -> if Rng.bool rng then emit u v else emit v u)
        g)

let random_dag_orientation g =
  Dgraph.of_edge_iter ~expected_edges:(Ugraph.m g) ~n:(Ugraph.n g)
    (fun emit -> Ugraph.iter_edges_uv emit g)

let bidirect g =
  Dgraph.of_edge_iter ~expected_edges:(2 * Ugraph.m g) ~n:(Ugraph.n g)
    (fun emit ->
      Ugraph.iter_edges_uv
        (fun u v ->
          emit u v;
          emit v u)
        g)

let random_weights rng g ~max_weight =
  let l =
    Ugraph.fold_edges
      (fun e acc ->
        let u, v = Edge.endpoints e in
        (u, v, float_of_int (1 + Rng.int rng max_weight)) :: acc)
      g []
  in
  Weights.of_list ~default:1.0 l

let random_weights_with_zeros rng g ~zero_fraction ~max_weight =
  let l =
    Ugraph.fold_edges
      (fun e acc ->
        let u, v = Edge.endpoints e in
        let w =
          if Rng.float rng 1.0 < zero_fraction then 0.0
          else float_of_int (1 + Rng.int rng max_weight)
        in
        (u, v, w) :: acc)
      g []
  in
  Weights.of_list ~default:1.0 l

let random_client_server rng g ~client_fraction ~server_fraction =
  Ugraph.fold_edges
    (fun e (clients, servers) ->
      let c = Rng.float rng 1.0 < client_fraction in
      let s = Rng.float rng 1.0 < server_fraction in
      let s = s || not c in
      let clients = if c then Edge.Set.add e clients else clients in
      let servers = if s then Edge.Set.add e servers else servers in
      (clients, servers))
    g
    (Edge.Set.empty, Edge.Set.empty)
