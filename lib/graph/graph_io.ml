let to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Ugraph.n g) (Ugraph.m g));
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    g;
  Buffer.contents buf

(* Parsing keeps the 1-based line number of every retained line so
   that a rejected edge can name the exact offending line of the
   original input, comments and blanks included. Lines are streamed —
   scanned in place and handed to a callback one at a time — and the
   parsed rows land in a growable off-heap buffer, so reading an
   m-edge file into the CSR builder never materializes a line list or
   an edge list. *)
let iter_numbered_lines s f =
  let len = String.length s in
  let start = ref 0 and lineno = ref 0 in
  while !start <= len do
    incr lineno;
    let stop =
      match String.index_from_opt s !start '\n' with
      | Some i -> i
      | None -> len
    in
    let line = String.trim (String.sub s !start (stop - !start)) in
    if line <> "" && line.[0] <> '#' then f !lineno line;
    start := stop + 1
  done

let fail_line lineno fmt =
  Printf.ksprintf
    (fun msg -> failwith (Printf.sprintf "Graph_io: line %d: %s" lineno msg))
    fmt

let int_field lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail_line lineno "%S is not an integer" s

let fields line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let parse_pair (lineno, line) =
  match fields line with
  | [ a; b ] -> (int_field lineno a, int_field lineno b)
  | _ ->
      fail_line lineno "expected two fields %S, got %S" "u v" line

(* Shared validation for the undirected, directed and weighted
   readers: endpoints in range, no self-loops, no duplicate edges
   ([directed] distinguishes (u,v) from (v,u); antiparallel pairs are
   two distinct directed edges). Every rejection names the input line
   that carries the offending edge. Rows live as (lineno, u, v)
   triples in an off-heap buffer; the duplicate key packs both
   endpoints into one int. *)
let check_edges ~n ~directed (rows : Bigcsr.buf) =
  let count = rows.Bigcsr.len / 3 in
  let seen = Hashtbl.create (count * 2) in
  let data = rows.Bigcsr.data in
  for i = 0 to count - 1 do
    let lineno = Bigarray.Array1.unsafe_get data (3 * i)
    and u = Bigarray.Array1.unsafe_get data ((3 * i) + 1)
    and v = Bigarray.Array1.unsafe_get data ((3 * i) + 2) in
    if u < 0 || u >= n || v < 0 || v >= n then
      fail_line lineno "edge (%d, %d) out of range for n = %d" u v n;
    if u = v then fail_line lineno "self-loop at vertex %d" u;
    let a, b =
      if directed then (u, v) else if u < v then (u, v) else (v, u)
    in
    let key = (a * n) + b in
    match Hashtbl.find_opt seen key with
    | Some first ->
        fail_line lineno "duplicate edge (%d, %d), first seen on line %d"
          u v first
    | None -> Hashtbl.add seen key lineno
  done

(* Streams the file into (header, rows buffer): the header line is
   parsed first, every subsequent retained line must be "u v". *)
let parse_rows s =
  let header = ref None in
  let rows = Bigcsr.buf_create 3072 in
  iter_numbered_lines s (fun lineno line ->
      match !header with
      | None ->
          let n, m = parse_pair (lineno, line) in
          if n < 0 then fail_line lineno "negative vertex count %d" n;
          header := Some (n, m)
      | Some _ ->
          let u, v = parse_pair (lineno, line) in
          Bigcsr.buf_push rows lineno;
          Bigcsr.buf_push rows u;
          Bigcsr.buf_push rows v);
  match !header with
  | None -> failwith "Graph_io: empty input"
  | Some (n, m) -> (n, m, rows)

let check_count ~declared ~found =
  if found <> declared then
    failwith
      (Printf.sprintf
         "Graph_io: edge count does not match header (header says %d, \
          found %d)"
         declared found)

let iter_rows (rows : Bigcsr.buf) emit =
  let data = rows.Bigcsr.data in
  for i = 0 to (rows.Bigcsr.len / 3) - 1 do
    emit
      (Bigarray.Array1.unsafe_get data ((3 * i) + 1))
      (Bigarray.Array1.unsafe_get data ((3 * i) + 2))
  done

let of_edge_list s =
  let n, m, rows = parse_rows s in
  check_count ~declared:m ~found:(rows.Bigcsr.len / 3);
  check_edges ~n ~directed:false rows;
  Ugraph.of_edge_iter ~expected_edges:m ~n (iter_rows rows)

let directed_to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Dgraph.n g) (Dgraph.m g));
  Dgraph.iter_edges
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    g;
  Buffer.contents buf

let directed_of_edge_list s =
  let n, m, rows = parse_rows s in
  check_count ~declared:m ~found:(rows.Bigcsr.len / 3);
  check_edges ~n ~directed:true rows;
  Dgraph.of_edge_iter ~expected_edges:m ~n (iter_rows rows)

let to_dot ?(highlight = Edge.Set.empty) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph G {\n";
  for v = 0 to Ugraph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      let attrs =
        if Edge.Set.mem e highlight then " [color=red, penwidth=2.0]" else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v attrs))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let directed_to_dot ?(highlight = Edge.Directed.Set.empty) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph G {\n";
  for v = 0 to Dgraph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Dgraph.iter_edges
    (fun e ->
      let u, v = e in
      let attrs =
        if Edge.Directed.Set.mem e highlight then
          " [color=red, penwidth=2.0]"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d -> %d%s;\n" u v attrs))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let weighted_to_edge_list g w =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Ugraph.n g) (Ugraph.m g));
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      Buffer.add_string buf
        (Printf.sprintf "%d %d %g\n" u v (Weights.get w e)))
    g;
  Buffer.contents buf

let weighted_of_edge_list s =
  let header = ref None in
  let rows = Bigcsr.buf_create 3072 in
  let weights = ref [] in
  iter_numbered_lines s (fun lineno line ->
      match !header with
      | None ->
          let n, m = parse_pair (lineno, line) in
          if n < 0 then fail_line lineno "negative vertex count %d" n;
          header := Some (n, m)
      | Some _ -> (
          match fields line with
          | [ a; b; w ] -> (
              let u = int_field lineno a and v = int_field lineno b in
              match float_of_string_opt w with
              | Some w ->
                  Bigcsr.buf_push rows lineno;
                  Bigcsr.buf_push rows u;
                  Bigcsr.buf_push rows v;
                  weights := (u, v, w) :: !weights
              | None -> fail_line lineno "%S is not a weight" w)
          | _ ->
              fail_line lineno "expected three fields %S, got %S" "u v w" line));
  match !header with
  | None -> failwith "Graph_io: empty input"
  | Some (n, m) ->
      check_count ~declared:m ~found:(rows.Bigcsr.len / 3);
      check_edges ~n ~directed:false rows;
      let g = Ugraph.of_edge_iter ~expected_edges:m ~n (iter_rows rows) in
      (g, Weights.of_list ~default:1.0 (List.rev !weights))
