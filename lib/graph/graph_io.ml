let to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Ugraph.n g) (Ugraph.m g));
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    g;
  Buffer.contents buf

(* Parsing keeps the 1-based line number of every retained line so
   that a rejected edge can name the exact offending line of the
   original input, comments and blanks included. *)
let numbered_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let fail_line lineno fmt =
  Printf.ksprintf
    (fun msg -> failwith (Printf.sprintf "Graph_io: line %d: %s" lineno msg))
    fmt

let int_field lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail_line lineno "%S is not an integer" s

let fields line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let parse_pair (lineno, line) =
  match fields line with
  | [ a; b ] -> (int_field lineno a, int_field lineno b)
  | _ ->
      fail_line lineno "expected two fields %S, got %S" "u v" line

(* Shared validation for the undirected, directed and weighted
   readers: endpoints in range, no self-loops, no duplicate edges
   ([directed] distinguishes (u,v) from (v,u); antiparallel pairs are
   two distinct directed edges). Every rejection names the input line
   that carries the offending edge. *)
let check_edges ~n ~directed rows =
  let seen = Hashtbl.create (List.length rows * 2) in
  List.iter
    (fun (lineno, u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        fail_line lineno "edge (%d, %d) out of range for n = %d" u v n;
      if u = v then fail_line lineno "self-loop at vertex %d" u;
      let key =
        if directed then (u, v) else if u < v then (u, v) else (v, u)
      in
      match Hashtbl.find_opt seen key with
      | Some first ->
          fail_line lineno "duplicate edge (%d, %d), first seen on line %d"
            u v first
      | None -> Hashtbl.add seen key lineno)
    rows

let parse_edge_list ~directed s =
  match numbered_lines s with
  | [] -> failwith "Graph_io: empty input"
  | header :: rest ->
      let n, m = parse_pair header in
      if n < 0 then
        fail_line (fst header) "negative vertex count %d" n;
      let rows =
        List.map
          (fun (lineno, line) ->
            let u, v = parse_pair (lineno, line) in
            (lineno, u, v))
          rest
      in
      if List.length rows <> m then
        failwith
          (Printf.sprintf
             "Graph_io: edge count does not match header (header says %d, \
              found %d)"
             m (List.length rows));
      check_edges ~n ~directed rows;
      (n, List.map (fun (_, u, v) -> (u, v)) rows)

let of_edge_list s =
  let n, edges = parse_edge_list ~directed:false s in
  Ugraph.of_edges ~n edges

let directed_to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Dgraph.n g) (Dgraph.m g));
  Dgraph.iter_edges
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    g;
  Buffer.contents buf

let directed_of_edge_list s =
  let n, edges = parse_edge_list ~directed:true s in
  Dgraph.of_edges ~n edges

let to_dot ?(highlight = Edge.Set.empty) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph G {\n";
  for v = 0 to Ugraph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      let attrs =
        if Edge.Set.mem e highlight then " [color=red, penwidth=2.0]" else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v attrs))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let directed_to_dot ?(highlight = Edge.Directed.Set.empty) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph G {\n";
  for v = 0 to Dgraph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Dgraph.iter_edges
    (fun e ->
      let u, v = e in
      let attrs =
        if Edge.Directed.Set.mem e highlight then
          " [color=red, penwidth=2.0]"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d -> %d%s;\n" u v attrs))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let weighted_to_edge_list g w =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Ugraph.n g) (Ugraph.m g));
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      Buffer.add_string buf
        (Printf.sprintf "%d %d %g\n" u v (Weights.get w e)))
    g;
  Buffer.contents buf

let weighted_of_edge_list s =
  match numbered_lines s with
  | [] -> failwith "Graph_io: empty input"
  | header :: rest ->
      let n, m = parse_pair header in
      if n < 0 then fail_line (fst header) "negative vertex count %d" n;
      let rows =
        List.map
          (fun (lineno, line) ->
            match fields line with
            | [ a; b; w ] -> (
                let u = int_field lineno a and v = int_field lineno b in
                match float_of_string_opt w with
                | Some w -> (lineno, u, v, w)
                | None -> fail_line lineno "%S is not a weight" w)
            | _ -> fail_line lineno "expected three fields %S, got %S" "u v w" line)
          rest
      in
      if List.length rows <> m then
        failwith
          (Printf.sprintf
             "Graph_io: edge count does not match header (header says %d, \
              found %d)"
             m (List.length rows));
      check_edges ~n ~directed:false
        (List.map (fun (lineno, u, v, _) -> (lineno, u, v)) rows);
      let g =
        Ugraph.of_edges ~n (List.map (fun (_, u, v, _) -> (u, v)) rows)
      in
      ( g,
        Weights.of_list ~default:1.0
          (List.map (fun (_, u, v, w) -> (u, v, w)) rows) )
