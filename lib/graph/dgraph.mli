(** Immutable directed simple graphs on vertices [0 .. n-1].

    Out-, in- and underlying-undirected adjacency are all materialized
    (as int-packed CSR structures in off-heap Bigarrays, like
    {!Ugraph}) because distributed spanner algorithms communicate over
    the underlying undirected topology while covering directed
    edges. *)

type t

val of_edge_iter : ?expected_edges:int -> n:int -> ((int -> int -> unit) -> unit) -> t
(** [of_edge_iter ~n iter] builds a digraph by running [iter emit],
    streaming each [emit u v] edge into the CSR builder without
    materializing an edge list. Duplicates are merged; self-loops and
    out-of-range endpoints raise [Invalid_argument]. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a digraph; [(u, v)] is an edge from [u]
    to [v]. Duplicates are merged; self-loops and out-of-range
    endpoints raise [Invalid_argument]. Antiparallel pairs are kept. *)

val of_edge_set : n:int -> Edge.Directed.Set.t -> t
val empty : int -> t
val n : t -> int
val m : t -> int
val out_degree : t -> int -> int
val in_degree : t -> int -> int

val degree : t -> int -> int
(** [out_degree + in_degree]: degree in the communication topology,
    counting an antiparallel pair twice. *)

val max_degree : t -> int
val out_neighbors : t -> int -> int array
val in_neighbors : t -> int -> int array

val undirected_neighbors : t -> int -> int array
(** Sorted, deduplicated union of in- and out-neighbors. Like every
    [_neighbors] accessor, this copies the CSR row into a fresh
    array — use the [iter_]/[fold_] variants in per-round hot
    paths. *)

val iter_out_neighbors : (int -> unit) -> t -> int -> unit
val iter_in_neighbors : (int -> unit) -> t -> int -> unit

val iter_undirected_neighbors : (int -> unit) -> t -> int -> unit
(** Direct loops over the respective adjacency rows in ascending
    order, mirroring {!Ugraph.iter_neighbors}: nothing escapes, no
    per-element row re-fetch. *)

val fold_out_neighbors : ('a -> int -> 'a) -> t -> int -> 'a -> 'a
val fold_in_neighbors : ('a -> int -> 'a) -> t -> int -> 'a -> 'a
val fold_undirected_neighbors : ('a -> int -> 'a) -> t -> int -> 'a -> 'a

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests for the directed edge [u -> v]. *)

val edges : t -> Edge.Directed.t list
val edge_set : t -> Edge.Directed.Set.t
val iter_edges : (Edge.Directed.t -> unit) -> t -> unit
val fold_edges : (Edge.Directed.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter_edges_uv : (int -> int -> unit) -> t -> unit
(** [iter_edges_uv f g] calls [f u v] once per directed edge
    [u -> v], in ascending lexicographic order, allocating nothing. *)

val underlying : t -> Ugraph.t
(** Forget orientations (antiparallel pairs collapse). *)

val resident_bytes : t -> int
(** Exact bytes held by the three CSR adjacency views. *)

val pp : Format.formatter -> t -> unit
