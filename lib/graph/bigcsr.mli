(** Internal plumbing shared by the CSR graph representations.

    Off-heap int storage ([Bigarray.Array1] of kind [int]), a growable
    edge buffer, and an in-place range sort. Not part of the public
    graph API — use {!Ugraph} and {!Dgraph}. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> ba
(** Uninitialized off-heap int array of the given length. *)

val create_zeroed : int -> ba

type buf = { mutable data : ba; mutable len : int }
(** Growable off-heap int buffer; [len] live elements in [data]. *)

val buf_create : int -> buf
(** [buf_create capacity]: empty buffer with at least the given
    initial capacity. *)

val buf_push : buf -> int -> unit
(** Amortized O(1) append; doubles the backing array when full. *)

val buf_reset : buf -> unit
(** Empties the buffer while keeping its backing array, so the next
    fill reuses the already-grown off-heap storage instead of walking
    a fresh doubling chain. The churn path resets the same buffers
    every tick, keeping a 100-tick loop allocation-flat. *)

val sort_range : ba -> int -> int -> unit
(** [sort_range a lo hi] sorts [a.(lo) .. a.(hi - 1)] ascending in
    place: insertion sort for short ranges, heapsort (O(len log len)
    worst case, no allocation) above that. *)
