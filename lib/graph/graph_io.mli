(** Plain-text edge-list serialization and Graphviz export. *)

val to_edge_list : Ugraph.t -> string
(** First line "n m", then one "u v" line per edge. *)

val of_edge_list : string -> Ugraph.t
(** Inverse of {!to_edge_list}. Raises [Failure] on malformed input;
    the message carries the 1-based line number of the offending line
    (["Graph_io: line 3: ..."]). Rejected at parse time: non-integer
    fields, out-of-range endpoints, self-loops, and duplicate edges
    (in either orientation) — a graph that parses is exactly the graph
    the file describes. *)

val directed_to_edge_list : Dgraph.t -> string

val directed_of_edge_list : string -> Dgraph.t
(** Like {!of_edge_list} with directed duplicate detection: [(u, v)]
    twice is rejected, but an antiparallel [(v, u)] is a distinct
    edge and accepted. *)

val weighted_to_edge_list : Ugraph.t -> Weights.t -> string
(** First line "n m", then one "u v w" line per edge. *)

val weighted_of_edge_list : string -> Ugraph.t * Weights.t
(** Inverse of {!weighted_to_edge_list}; unlisted weights default
    to 1. Raises [Failure] on malformed input with the same
    line-numbered diagnostics as {!of_edge_list}. *)

val to_dot : ?highlight:Edge.Set.t -> Ugraph.t -> string
(** Graphviz source; edges in [highlight] are drawn bold red (used to
    visualize a spanner inside its graph). *)

val directed_to_dot : ?highlight:Edge.Directed.Set.t -> Dgraph.t -> string
