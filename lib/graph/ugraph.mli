(** Immutable undirected simple graphs on vertices [0 .. n-1].

    The representation is an int-packed CSR adjacency: a
    [(row_ptr, col)] pair of off-heap Bigarrays with each neighbor row
    sorted ascending. Degree is O(1) ([row_ptr.(u+1) - row_ptr.(u)]),
    membership is O(log deg) binary search, iteration is a flat-buffer
    scan with zero GC traffic, and a graph occupies exactly
    [8 * (n + 1 + 2m)] bytes. Graphs are built once — from an edge
    list, an edge set, or a streaming emitter — and never mutated;
    algorithms that grow edge sets (spanners) operate on {!Edge.Set}
    values instead. *)

type t

module Builder : sig
  type builder
  (** Streaming constructor: feed endpoint pairs one at a time, in any
      order and orientation, without ever materializing an edge list.
      Duplicates are merged at {!finish}. The builder buffers
      endpoints off the OCaml heap, so building an m-edge graph
      allocates O(1) words on the minor heap. *)

  val create : ?expected_edges:int -> n:int -> unit -> builder
  (** [create ~n ()] starts a builder for vertex set [0..n-1].
      [expected_edges] pre-sizes the endpoint buffers (growth is
      amortized doubling either way). *)

  val add_edge : builder -> int -> int -> unit
  (** Buffers one edge. Raises [Invalid_argument] on out-of-range
      endpoints or self-loops, and if the builder is finished. *)

  val finish : builder -> t
  (** Produces the CSR graph: one counting pass, one scatter pass, a
      per-row sort and an in-place dedup — O(m log deg_max) time,
      O(m) off-heap space. The builder cannot be reused until
      {!reset}. *)

  val reset : builder -> n:int -> unit
  (** Rewinds a (possibly finished) builder for another build over
      vertex set [0..n-1], keeping the grown endpoint buffers. A
      churn loop that rebuilds a graph every tick through the same
      builder allocates off-heap storage only until the buffers reach
      steady-state capacity; {!apply_delta}'s [?builder] argument is
      the intended consumer. *)
end

module Delta : sig
  type t
  (** A batched edge update against some graph: a set of edges to
      delete plus a set to insert, accumulated incrementally and
      applied atomically by {!apply_delta}. The accumulator and its
      sort workspaces live off-heap and are reusable via {!reset},
      so a churn tick allocates nothing here in steady state. The
      delta is graph-independent until applied; endpoint range checks
      happen at {!apply_delta} time. *)

  val create : ?expected:int -> unit -> t
  (** [expected] pre-sizes the edge buffers (amortized doubling
      either way). *)

  val reset : t -> unit
  (** Empties both edge sets, keeping all backing storage. *)

  val add_insert : t -> int -> int -> unit
  (** Queues one edge insertion. Orientation is canonicalized;
      self-loops and negative endpoints raise [Invalid_argument]. *)

  val add_delete : t -> int -> int -> unit

  val inserts : t -> int
  (** Queued insertion count. *)

  val deletes : t -> int

  val iter_inserts : (int -> int -> unit) -> t -> unit
  (** Queued insertions as canonical [u < v] pairs, in queue order. *)

  val iter_deletes : (int -> int -> unit) -> t -> unit
end

val apply_delta : ?builder:Builder.builder -> t -> Delta.t -> t
(** [apply_delta g d] is [g] with [d]'s deletions removed and its
    insertions added, as a fresh graph — [g] itself is immutable and
    untouched. Raises [Invalid_argument] if any deleted edge is
    absent from [g], any inserted edge is already present, an edge is
    queued twice on the same side or on both sides, or an endpoint is
    outside [g]'s vertex range — a rejected delta leaves no partial
    state. Implemented as a merge-rebuild through the streaming
    {!Builder}: O(n + m + |d| log |d|) time, and with [?builder]
    (reused via {!Builder.reset}) no off-heap reallocation beyond the
    result graph's own buffers. *)

val of_edge_iter : ?expected_edges:int -> n:int -> ((int -> int -> unit) -> unit) -> t
(** [of_edge_iter ~n iter] builds a graph by running [iter emit],
    where each [emit u v] call streams one edge into a {!Builder}.
    The canonical way to construct large graphs in O(m) memory. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph with vertex set [0..n-1].
    Duplicate edges are merged; self-loops raise [Invalid_argument],
    as do endpoints outside the vertex range. *)

val of_edge_set : n:int -> Edge.Set.t -> t

val empty : int -> t
(** [empty n] has [n] vertices and no edges. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val degree : t -> int -> int
(** O(1): two [row_ptr] reads. *)

val max_degree : t -> int

val neighbors : t -> int -> int array
(** Sorted array of neighbors. Allocates a fresh copy of the CSR row
    on every call — fine at init time, wrong in a per-round hot path;
    use {!iter_neighbors}/{!fold_neighbors} there. *)

val iter_neighbors : (int -> unit) -> t -> int -> unit
(** [iter_neighbors f g u] applies [f] to each neighbor of [u] in
    ascending order. The hot-path alternative to {!neighbors}: no
    array is copied and nothing escapes — two [row_ptr] reads, then
    one flat-buffer load per neighbor. *)

val fold_neighbors : ('a -> int -> 'a) -> t -> int -> 'a -> 'a
(** [fold_neighbors f g u init] folds [f] over the neighbors of [u]
    in ascending order. *)

val mem_edge : t -> int -> int -> bool
(** O(log deg) binary search in the lower-degree endpoint's row;
    allocation-free. *)

val edge_slot : t -> int -> int -> int
(** [edge_slot g u v] is the position of [v] within [u]'s sorted
    neighbor row as a global index into the CSR column buffer, or
    [-1] when [(u, v)] is not an edge. The index is a stable
    identifier for the {e directed} edge [u -> v] in [0, 2m) —
    [edge_slot g v u] names the opposite direction — so flat arrays
    of length [2m] can carry per-directed-edge state without
    hashing. O(log deg u), allocation-free. *)

val slot_endpoints : t -> int -> int * int
(** [slot_endpoints g i] is the directed edge [(u, v)] whose
    {!edge_slot} is [i], for [i] in [0, 2m) ([Invalid_argument]
    outside) — a [row_ptr] binary search, O(log n). Drawing [i]
    uniformly gives a uniform random edge (each edge owns exactly two
    slots), which is how the churn generator samples deletions
    without materializing an edge list. *)

val common_neighbor : t -> int -> int -> int
(** [common_neighbor g u v] is the smallest vertex adjacent to both
    [u] and [v], or [-1] if none exists. One ascending merge of the
    two sorted neighbor rows — O(deg u + deg v), allocation-free.
    With [g] the CSR of a candidate spanner this is the stretch-2
    certificate probe: edge [(u, v)] is 2-spanned iff it is in the
    set or this returns a witness. *)

val iter_common_neighbors : (int -> unit) -> t -> int -> int -> unit
(** [iter_common_neighbors f g u v] applies [f] to every vertex
    adjacent to both [u] and [v], in ascending order — the same merge
    as {!common_neighbor} without the early exit, O(deg u + deg v),
    allocation-free. The churn path uses it to pull every 2-path
    midpoint of a broken edge into the dirty ball. *)

val row_matches : t -> int -> int array -> lo:int -> hi:int -> bool
(** [row_matches g u dsts ~lo ~hi] is [true] iff
    [dsts.(lo .. hi-1)] is exactly [u]'s neighbor row (same length,
    same vertices, same ascending order). Allocation-free; the
    engine uses it to recognize a full-neighborhood broadcast in an
    outbox segment. *)

val edges : t -> Edge.t list
(** Materializes the edge list — prefer {!iter_edges_uv} or
    {!fold_edges} when the caller only iterates. *)

val edge_set : t -> Edge.Set.t

val iter_edges : (Edge.t -> unit) -> t -> unit
(** Edges in ascending lexicographic order. Allocates one {!Edge.t}
    per edge; {!iter_edges_uv} is the allocation-free variant. *)

val fold_edges : (Edge.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter_edges_uv : (int -> int -> unit) -> t -> unit
(** [iter_edges_uv f g] calls [f u v] once per edge with [u < v], in
    ascending lexicographic order, allocating nothing. *)

val fold_edges_uv : ('a -> int -> int -> 'a) -> t -> 'a -> 'a

val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter_vertices : (int -> unit) -> t -> unit

val induced_by_edges : t -> Edge.Set.t -> t
(** [induced_by_edges g s] keeps the vertex set of [g] but only the
    edges in [s]. All edges of [s] must be edges of [g]. *)

val equal : t -> t -> bool
(** Structural equality, O(n + m): the CSR layout is canonical, so
    this is a flat buffer comparison, not an edge-set comparison. *)

val resident_bytes : t -> int
(** Exact bytes held by the adjacency buffers:
    [8 * (n + 1 + 2m)]. *)

val pp : Format.formatter -> t -> unit
