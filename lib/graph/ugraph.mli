(** Immutable undirected simple graphs on vertices [0 .. n-1].

    The representation is a frozen adjacency structure with sorted
    neighbor arrays, giving O(deg) iteration and O(log deg) membership
    tests. Graphs are built once from an edge list and never mutated;
    algorithms that grow edge sets (spanners) operate on {!Edge.Set}
    values instead. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph with vertex set [0..n-1].
    Duplicate edges are merged; self-loops raise [Invalid_argument],
    as do endpoints outside the vertex range. *)

val of_edge_set : n:int -> Edge.Set.t -> t

val empty : int -> t
(** [empty n] has [n] vertices and no edges. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val degree : t -> int -> int
val max_degree : t -> int
val neighbors : t -> int -> int array
(** Sorted array of neighbors. The returned array must not be mutated. *)

val iter_neighbors : (int -> unit) -> t -> int -> unit
(** [iter_neighbors f g u] applies [f] to each neighbor of [u] in
    ascending order. The hot-path alternative to indexing
    {!neighbors} in a loop: no array value escapes and the adjacency
    row is fetched once. *)

val fold_neighbors : ('a -> int -> 'a) -> t -> int -> 'a -> 'a
(** [fold_neighbors f g u init] folds [f] over the neighbors of [u]
    in ascending order. *)

val mem_edge : t -> int -> int -> bool
val edges : t -> Edge.t list
val edge_set : t -> Edge.Set.t
val iter_edges : (Edge.t -> unit) -> t -> unit
val fold_edges : (Edge.t -> 'a -> 'a) -> t -> 'a -> 'a
val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter_vertices : (int -> unit) -> t -> unit

val induced_by_edges : t -> Edge.Set.t -> t
(** [induced_by_edges g s] keeps the vertex set of [g] but only the
    edges in [s]. All edges of [s] must be edges of [g]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
