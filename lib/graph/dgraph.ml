(* Immutable directed simple graphs as three int-packed CSR
   adjacencies: out-edges, in-edges, and the underlying undirected
   topology (sorted, deduplicated union — distributed spanner
   algorithms communicate over it while covering directed edges).
   Same storage discipline as [Ugraph]: everything lives in off-heap
   Bigarrays, rows sorted ascending, O(1) degrees, allocation-free
   iteration and membership. *)

type t = {
  n : int;
  m : int;
  out_ptr : Bigcsr.ba;
  out_col : Bigcsr.ba;
  in_ptr : Bigcsr.ba;
  in_col : Bigcsr.ba;
  und_ptr : Bigcsr.ba;
  und_col : Bigcsr.ba;
}

let validate_vertex n u =
  if u < 0 || u >= n then
    invalid_arg (Printf.sprintf "Dgraph: vertex %d out of range [0,%d)" u n)

(* Build one CSR from [count] (lineno-free) pairs held in [us]/[vs].
   [both] scatters each pair in both directions (the undirected
   union); otherwise u -> v only. Rows are sorted and deduplicated in
   place. Returns (ptr, col, total). *)
let csr_of_pairs ~n ~count ~both us vs =
  let ptr = Bigcsr.create_zeroed (n + 1) in
  for i = 0 to count - 1 do
    let u = Bigarray.Array1.unsafe_get us i in
    Bigarray.Array1.unsafe_set ptr (u + 1)
      (Bigarray.Array1.unsafe_get ptr (u + 1) + 1);
    if both then begin
      let v = Bigarray.Array1.unsafe_get vs i in
      Bigarray.Array1.unsafe_set ptr (v + 1)
        (Bigarray.Array1.unsafe_get ptr (v + 1) + 1)
    end
  done;
  for u = 1 to n do
    Bigarray.Array1.unsafe_set ptr u
      (Bigarray.Array1.unsafe_get ptr u + Bigarray.Array1.unsafe_get ptr (u - 1))
  done;
  let slots = if both then 2 * count else count in
  let col = Bigcsr.create slots in
  let cursor = Bigcsr.create (max n 1) in
  if n > 0 then
    Bigarray.Array1.blit
      (Bigarray.Array1.sub ptr 0 n)
      (Bigarray.Array1.sub cursor 0 n);
  for i = 0 to count - 1 do
    let u = Bigarray.Array1.unsafe_get us i
    and v = Bigarray.Array1.unsafe_get vs i in
    let cu = Bigarray.Array1.unsafe_get cursor u in
    Bigarray.Array1.unsafe_set col cu v;
    Bigarray.Array1.unsafe_set cursor u (cu + 1);
    if both then begin
      let cv = Bigarray.Array1.unsafe_get cursor v in
      Bigarray.Array1.unsafe_set col cv u;
      Bigarray.Array1.unsafe_set cursor v (cv + 1)
    end
  done;
  let w = ref 0 in
  let lo = ref 0 in
  for u = 0 to n - 1 do
    let hi = Bigarray.Array1.unsafe_get ptr (u + 1) in
    Bigcsr.sort_range col !lo hi;
    Bigarray.Array1.unsafe_set ptr u !w;
    let prev = ref (-1) in
    for i = !lo to hi - 1 do
      let v = Bigarray.Array1.unsafe_get col i in
      if v <> !prev then begin
        Bigarray.Array1.unsafe_set col !w v;
        incr w;
        prev := v
      end
    done;
    lo := hi
  done;
  Bigarray.Array1.unsafe_set ptr n !w;
  let col =
    if !w = slots then col
    else begin
      let exact = Bigcsr.create !w in
      if !w > 0 then Bigarray.Array1.blit (Bigarray.Array1.sub col 0 !w) exact;
      exact
    end
  in
  (ptr, col, !w)

module Builder = struct

  type builder = {
    bn : int;
    us : Bigcsr.buf;
    vs : Bigcsr.buf;
    mutable finished : bool;
  }

  let create ?(expected_edges = 1024) ~n () =
    if n < 0 then invalid_arg "Dgraph.Builder.create: negative n";
    {
      bn = n;
      us = Bigcsr.buf_create expected_edges;
      vs = Bigcsr.buf_create expected_edges;
      finished = false;
    }

  let add_edge b u v =
    if b.finished then invalid_arg "Dgraph.Builder: already finished";
    validate_vertex b.bn u;
    validate_vertex b.bn v;
    if u = v then
      invalid_arg (Printf.sprintf "Dgraph: self-loop at vertex %d" u);
    Bigcsr.buf_push b.us u;
    Bigcsr.buf_push b.vs v

  let finish b =
    if b.finished then invalid_arg "Dgraph.Builder: already finished";
    b.finished <- true;
    let n = b.bn and len = b.us.Bigcsr.len in
    let us = b.us.Bigcsr.data and vs = b.vs.Bigcsr.data in
    (* The out-CSR merges duplicate directed edges; the in- and
       undirected CSRs are rebuilt from the deduplicated edge set so
       the three views agree on multiplicity. *)
    let out_ptr, out_col, m = csr_of_pairs ~n ~count:len ~both:false us vs in
    let du = Bigcsr.create (max m 1) and dv = Bigcsr.create (max m 1) in
    let k = ref 0 in
    let lo = ref 0 in
    for u = 0 to n - 1 do
      let hi = Bigarray.Array1.unsafe_get out_ptr (u + 1) in
      for i = !lo to hi - 1 do
        Bigarray.Array1.unsafe_set du !k u;
        Bigarray.Array1.unsafe_set dv !k (Bigarray.Array1.unsafe_get out_col i);
        incr k
      done;
      lo := hi
    done;
    (* Scattering v -> u pairs: in-rows pick up sources in ascending
       order (the pairs stream by ascending u), but sort anyway for
       uniformity — sorted input is the insertion sort's best case. *)
    let in_ptr, in_col, _ = csr_of_pairs ~n ~count:m ~both:false dv du in
    let und_ptr, und_col, _ = csr_of_pairs ~n ~count:m ~both:true du dv in
    { n; m; out_ptr; out_col; in_ptr; in_col; und_ptr; und_col }
end

let of_edge_iter ?expected_edges ~n iter =
  let b = Builder.create ?expected_edges ~n () in
  iter (fun u v -> Builder.add_edge b u v);
  Builder.finish b

let of_edge_set ~n set =
  of_edge_iter ~expected_edges:(Edge.Directed.Set.cardinal set) ~n (fun emit ->
      Edge.Directed.Set.iter (fun (u, v) -> emit u v) set)

let of_edges ~n edges =
  of_edge_iter ~n (fun emit ->
      List.iter
        (fun (u, v) ->
          (* [Edge.Directed.make] keeps the historical self-loop
             diagnostic *)
          let u, v = Edge.Directed.make u v in
          emit u v)
        edges)

let empty n = of_edge_iter ~expected_edges:0 ~n (fun _ -> ())
let n g = g.n
let m g = g.m

let row_len ptr u =
  Bigarray.Array1.get ptr (u + 1) - Bigarray.Array1.get ptr u

let out_degree g u = row_len g.out_ptr u
let in_degree g u = row_len g.in_ptr u
let degree g u = out_degree g u + in_degree g u

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    best := max !best (degree g u)
  done;
  !best

let row_array ptr col u =
  let lo = Bigarray.Array1.get ptr u and hi = Bigarray.Array1.get ptr (u + 1) in
  Array.init (hi - lo) (fun i -> Bigarray.Array1.unsafe_get col (lo + i))

let out_neighbors g u = row_array g.out_ptr g.out_col u
let in_neighbors g u = row_array g.in_ptr g.in_col u
let undirected_neighbors g u = row_array g.und_ptr g.und_col u

(* Direct loops over the flat rows, mirroring
   [Ugraph.iter_neighbors]/[fold_neighbors]. *)
let iter_row f ptr col u =
  let lo = Bigarray.Array1.get ptr u and hi = Bigarray.Array1.get ptr (u + 1) in
  for i = lo to hi - 1 do
    f (Bigarray.Array1.unsafe_get col i)
  done

let fold_row f ptr col u init =
  let lo = Bigarray.Array1.get ptr u and hi = Bigarray.Array1.get ptr (u + 1) in
  let acc = ref init in
  for i = lo to hi - 1 do
    acc := f !acc (Bigarray.Array1.unsafe_get col i)
  done;
  !acc

let iter_out_neighbors f g u = iter_row f g.out_ptr g.out_col u
let iter_in_neighbors f g u = iter_row f g.in_ptr g.in_col u
let iter_undirected_neighbors f g u = iter_row f g.und_ptr g.und_col u
let fold_out_neighbors f g u init = fold_row f g.out_ptr g.out_col u init
let fold_in_neighbors f g u init = fold_row f g.in_ptr g.in_col u init

let fold_undirected_neighbors f g u init =
  fold_row f g.und_ptr g.und_col u init

let mem_edge g u v =
  if u = v then false
  else begin
    let lo = ref (Bigarray.Array1.get g.out_ptr u)
    and hi = ref (Bigarray.Array1.get g.out_ptr (u + 1)) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let y = Bigarray.Array1.unsafe_get g.out_col mid in
      if y = v then found := true else if y < v then lo := mid + 1 else hi := mid
    done;
    !found
  end

let iter_edges_uv f g =
  let lo = ref 0 in
  for u = 0 to g.n - 1 do
    let hi = Bigarray.Array1.unsafe_get g.out_ptr (u + 1) in
    for i = !lo to hi - 1 do
      f u (Bigarray.Array1.unsafe_get g.out_col i)
    done;
    lo := hi
  done

let iter_edges f g = iter_edges_uv (fun u v -> f (u, v)) g

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun e -> acc := f e !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun e acc -> e :: acc) g [])
let edge_set g = fold_edges Edge.Directed.Set.add g Edge.Directed.Set.empty

let underlying g =
  Ugraph.of_edge_iter ~expected_edges:g.m ~n:g.n (fun emit ->
      iter_edges_uv emit g)

let resident_bytes g =
  8
  * (Bigarray.Array1.dim g.out_ptr + Bigarray.Array1.dim g.out_col
    + Bigarray.Array1.dim g.in_ptr + Bigarray.Array1.dim g.in_col
    + Bigarray.Array1.dim g.und_ptr + Bigarray.Array1.dim g.und_col)

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>digraph(n=%d, m=%d:" g.n g.m;
  iter_edges (fun e -> Format.fprintf ppf "@ %a" Edge.Directed.pp e) g;
  Format.fprintf ppf ")@]"
