type t = {
  n : int;
  m : int;
  out_adj : int array array;
  in_adj : int array array;
  und_adj : int array array;
}

let validate_vertex n u =
  if u < 0 || u >= n then
    invalid_arg (Printf.sprintf "Dgraph: vertex %d out of range [0,%d)" u n)

let of_edge_set ~n set =
  let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
  Edge.Directed.Set.iter
    (fun (u, v) ->
      validate_vertex n u;
      validate_vertex n v;
      out_deg.(u) <- out_deg.(u) + 1;
      in_deg.(v) <- in_deg.(v) + 1)
    set;
  let out_adj = Array.init n (fun u -> Array.make out_deg.(u) 0) in
  let in_adj = Array.init n (fun u -> Array.make in_deg.(u) 0) in
  let ofill = Array.make n 0 and ifill = Array.make n 0 in
  Edge.Directed.Set.iter
    (fun (u, v) ->
      out_adj.(u).(ofill.(u)) <- v;
      ofill.(u) <- ofill.(u) + 1;
      in_adj.(v).(ifill.(v)) <- u;
      ifill.(v) <- ifill.(v) + 1)
    set;
  Array.iter (fun a -> Array.sort compare a) out_adj;
  Array.iter (fun a -> Array.sort compare a) in_adj;
  let und_adj =
    Array.init n (fun u ->
        let module S = Set.Make (Int) in
        let s =
          Array.fold_left (fun s v -> S.add v s)
            (Array.fold_left (fun s v -> S.add v s) S.empty out_adj.(u))
            in_adj.(u)
        in
        Array.of_list (S.elements s))
  in
  { n; m = Edge.Directed.Set.cardinal set; out_adj; in_adj; und_adj }

let of_edges ~n edges =
  let set =
    List.fold_left
      (fun s (u, v) -> Edge.Directed.Set.add (Edge.Directed.make u v) s)
      Edge.Directed.Set.empty edges
  in
  of_edge_set ~n set

let empty n =
  { n; m = 0; out_adj = Array.make n [||]; in_adj = Array.make n [||];
    und_adj = Array.make n [||] }

let n g = g.n
let m g = g.m
let out_degree g u = Array.length g.out_adj.(u)
let in_degree g u = Array.length g.in_adj.(u)
let degree g u = out_degree g u + in_degree g u

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    best := max !best (degree g u)
  done;
  !best

let out_neighbors g u = g.out_adj.(u)
let in_neighbors g u = g.in_adj.(u)
let undirected_neighbors g u = g.und_adj.(u)

(* Direct loops over the adjacency rows, mirroring
   [Ugraph.iter_neighbors]/[fold_neighbors]. *)
let iter_row f a =
  for i = 0 to Array.length a - 1 do
    f a.(i)
  done

let fold_row f a init =
  let acc = ref init in
  for i = 0 to Array.length a - 1 do
    acc := f !acc a.(i)
  done;
  !acc

let iter_out_neighbors f g u = iter_row f g.out_adj.(u)
let iter_in_neighbors f g u = iter_row f g.in_adj.(u)
let iter_undirected_neighbors f g u = iter_row f g.und_adj.(u)
let fold_out_neighbors f g u init = fold_row f g.out_adj.(u) init
let fold_in_neighbors f g u init = fold_row f g.in_adj.(u) init
let fold_undirected_neighbors f g u init = fold_row f g.und_adj.(u) init

let mem_edge g u v =
  if u = v then false
  else
    let a = g.out_adj.(u) in
    let rec search lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if a.(mid) = v then true
        else if a.(mid) < v then search (mid + 1) hi
        else search lo mid
    in
    search 0 (Array.length a)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> f (u, v)) g.out_adj.(u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun e -> acc := f e !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun e acc -> e :: acc) g [])
let edge_set g = fold_edges Edge.Directed.Set.add g Edge.Directed.Set.empty

let underlying g =
  Ugraph.of_edges ~n:g.n (List.map (fun (u, v) -> (u, v)) (edges g))

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>digraph(n=%d, m=%d:" g.n g.m;
  iter_edges (fun e -> Format.fprintf ppf "@ %a" Edge.Directed.pp e) g;
  Format.fprintf ppf ")@]"
