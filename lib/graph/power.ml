let power g r =
  if r < 1 then invalid_arg "Power.power: r must be >= 1";
  let n = Ugraph.n g in
  Ugraph.of_edge_iter ~n (fun emit ->
      for v = 0 to n - 1 do
        let dist = Traversal.bfs_distances g v in
        for u = v + 1 to n - 1 do
          if dist.(u) <= r then emit v u
        done
      done)
