(** Graph families used by the tests, examples and benchmarks.

    Random generators take an {!Rng.t} so that every workload is
    reproducible. Generators that can produce disconnected graphs
    offer a [connected] variant that adds a Hamiltonian-path backbone. *)

val path : int -> Ugraph.t
val cycle : int -> Ugraph.t
val star : int -> Ugraph.t
(** [star n]: vertex 0 joined to [1..n-1]. *)

val complete : int -> Ugraph.t
val complete_bipartite : int -> int -> Ugraph.t
(** [complete_bipartite a b]: sides [0..a-1] and [a..a+b-1]. The
    worst-case instance for 2-spanner sparsity cited in the paper. *)

val grid : int -> int -> Ugraph.t
(** [grid rows cols]. *)

val hypercube : int -> Ugraph.t
(** [hypercube d]: the d-dimensional Boolean cube on [2^d] vertices. *)

val gnp : Rng.t -> int -> float -> Ugraph.t
(** Erdős–Rényi G(n, p). *)

val gnp_connected : Rng.t -> int -> float -> Ugraph.t
(** G(n, p) plus a random Hamiltonian path, guaranteeing connectivity
    without changing the density regime. *)

val random_bipartite : Rng.t -> int -> int -> float -> Ugraph.t

val preferential_attachment : Rng.t -> int -> int -> Ugraph.t
(** [preferential_attachment rng n k]: Barabási–Albert-style growth,
    each new vertex attaching to [k] existing vertices weighted by
    degree. Produces the skewed degree distributions under which the
    [O(log Δ)] bounds differ visibly from [O(log n)]. *)

val caveman : Rng.t -> int -> int -> float -> Ugraph.t
(** [caveman rng cliques size p_rewire]: connected caveman graph of
    [cliques] cliques of [size] vertices with rewiring probability,
    a locally-dense family where star-based 2-spanners shine. *)

val caveman_n : Rng.t -> int -> float -> Ugraph.t
(** [caveman_n rng n p_rewire]: connected caveman graph on {e exactly}
    [n] vertices: [ceil (n / 8)] cliques of near-equal sizes (within
    one of [n / cliques]) joined in a ring, then rewired as
    {!caveman}. Raises [Invalid_argument] when [n <= 0]. *)

val clique_ladder : Rng.t -> int -> Ugraph.t
(** [clique_ladder rng n]: disjoint cliques of growing sizes (4, 6,
    8, ...) plus ~3n random chords. Densities span many scales, which
    exercises the density-level structure of the 2-spanner analysis. *)

val random_tree : Rng.t -> int -> Ugraph.t
(** Uniform random labelled tree (Prüfer sequence decoding). *)

val random_regular_ish : Rng.t -> int -> int -> Ugraph.t
(** Random graph with degrees close to [d]: union of [d/2] random
    Hamiltonian cycles (plus a path when [d] is odd). *)

val random_orientation : Rng.t -> Ugraph.t -> Dgraph.t
(** Orient each edge uniformly at random. *)

val random_dag_orientation : Ugraph.t -> Dgraph.t
(** Orient each edge from the smaller to the larger endpoint. *)

val bidirect : Ugraph.t -> Dgraph.t
(** Replace each undirected edge by both orientations. *)

val random_weights : Rng.t -> Ugraph.t -> max_weight:int -> Weights.t
(** Integer weights drawn uniformly from [1..max_weight]. *)

val random_weights_with_zeros :
  Rng.t -> Ugraph.t -> zero_fraction:float -> max_weight:int -> Weights.t

val random_client_server :
  Rng.t -> Ugraph.t -> client_fraction:float -> server_fraction:float ->
  Edge.Set.t * Edge.Set.t
(** [(clients, servers)]: each edge is independently a client and/or a
    server with the given probabilities; edges drawn as neither are
    made servers so that the instance stays meaningful. *)
