open Grapho

type spec = {
  graph : Ugraph.t;
  targets : Edge.Set.t;
  usable : Edge.Set.t;
  weight : int -> int -> float;
  candidate_ok : int -> float -> bool;
  terminate_ok : int -> float -> bool;
  finalize : Edge.t -> bool;
  dominance_includes_terminated : bool;
  selection : selection;
}

and selection = Votes of float | Coin of float | All

type iteration_stats = {
  iteration : int;
  uncovered_before : int;
  max_density : float;
  candidates : int;
  stars_accepted : int;
  terminated_now : int;
}

type result = {
  spanner : Edge.Set.t;
  iterations : int;
  rounds : int;
  stars_added : int;
  candidate_count : int;
  votes_cast : int;
  uncovered : Edge.Set.t;
}

let rounds_per_iteration = 8

type vstate = {
  mutable rho : float;  (* true density of the densest star *)
  mutable exp : int;  (* rounded exponent; min_int when rho <= 0 *)
  mutable dirty : bool;
  mutable star : int list;  (* stored selection (paying neighbors) *)
  mutable star_exp : int;  (* level the stored star was chosen at *)
  mutable terminated : bool;
}

let log2_ceil x =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  go 0 x

let run ?rng ?seed ?max_iterations ?trace ?(sink = Distsim.Trace.null) spec =
  let tracing = not (Distsim.Trace.is_null sink) in
  let mark vertex name round =
    if tracing then
      Distsim.Trace.emit sink (Distsim.Trace.Phase { vertex; name; round })
  in
  let count name value round =
    if tracing then
      Distsim.Trace.emit sink
        (Distsim.Trace.Counter { name; value = float_of_int value; round })
  in
  let seed =
    match (seed, rng) with
    | Some s, _ -> s
    | None, Some r -> Rng.int r (1 lsl 30)
    | None, None -> 0x2D5F1
  in
  let g = spec.graph in
  let n = Ugraph.n g in
  let max_iterations =
    match max_iterations with
    | Some m -> m
    | None ->
        (10 * (log2_ceil (n + 2) + 2) * (log2_ceil (Ugraph.max_degree g + 2) + 2))
        + 100
  in
  let cover = Cover2.create ~n ~targets:spec.targets ~usable:spec.usable in
  let st =
    Array.init n (fun _ ->
        {
          rho = 0.0;
          exp = min_int;
          dirty = true;
          star = [];
          star_exp = min_int;
          terminated = false;
        })
  in
  let mark_dirty v = st.(v).dirty <- true in
  (* Weight-zero usable edges enter the spanner before the first
     iteration (weighted variant; a no-op otherwise). *)
  let zero_edges =
    Edge.Set.filter
      (fun e ->
        let u, v = Edge.endpoints e in
        spec.weight u v = 0.0)
      spec.usable
  in
  if not (Edge.Set.is_empty zero_edges) then
    Cover2.add cover zero_edges ~dirty:mark_dirty;
  (* Split eligible neighbors into paying and free once; weights are
     static. *)
  let paying = Array.make n [||] and free = Array.make n [||] in
  for v = 0 to n - 1 do
    let pay = ref [] and fr = ref [] in
    let nb = Cover2.usable_neighbors cover v in
    Array.iter
      (fun u ->
        if spec.weight v u = 0.0 then fr := u :: !fr
        else pay := u :: !pay)
      nb;
    paying.(v) <- Array.of_list (List.rev !pay);
    free.(v) <- Array.of_list (List.rev !fr)
  done;
  let problem v =
    Star_pick.make ~center:v ~nodes:paying.(v) ~free:free.(v)
      ~weight:(fun u -> spec.weight v u)
      ~hv_edges:(Cover2.hv cover v) ()
  in
  let refresh_densities () =
    for v = 0 to n - 1 do
      if st.(v).dirty then begin
        st.(v).dirty <- false;
        let rho =
          if Edge.Set.is_empty (Cover2.hv cover v) then 0.0
          else
            match Star_pick.densest (problem v) with
            | None -> 0.0
            | Some (_, d) -> d
        in
        st.(v).rho <- rho;
        st.(v).exp <-
          (match Star_pick.rounded_exponent rho with
          | None -> min_int
          | Some e -> e)
      end
    done
  in
  (* Maximum of a per-vertex value over closed 2-neighborhoods, by two
     rounds of neighbor-max (exactly how the vertices would learn it). *)
  let two_hop_max (value : int -> float) =
    let one = Array.make n neg_infinity in
    for v = 0 to n - 1 do
      one.(v) <-
        Ugraph.fold_neighbors (fun m u -> max m (value u)) g v (value v)
    done;
    let two = Array.make n neg_infinity in
    for v = 0 to n - 1 do
      two.(v) <- Ugraph.fold_neighbors (fun m u -> max m one.(u)) g v one.(v)
    done;
    two
  in
  let iterations = ref 0 in
  let stars_added = ref 0 in
  let candidate_count = ref 0 in
  let votes_cast = ref 0 in
  let n4 = Randomness.vote_bound ~n in
  let all_terminated () = Array.for_all (fun s -> s.terminated) st in
  while not (all_terminated ()) do
    incr iterations;
    if !iterations > max_iterations then
      failwith
        (Printf.sprintf "Two_spanner_engine.run: %d iterations without \
                         termination" max_iterations);
    (* Step 1: densities and their rounded 2-neighborhood maxima. *)
    refresh_densities ();
    let uncovered_before = Cover2.uncovered_count cover in
    let max_density_now =
      Array.fold_left (fun acc s -> Float.max acc s.rho) 0.0 st
    in
    let stars_before = !stars_added and cands_before = !candidate_count in
    count "uncovered" uncovered_before !iterations;
    let dom_exp v =
      if st.(v).terminated && not spec.dominance_includes_terminated then
        neg_infinity
      else if st.(v).exp = min_int then neg_infinity
      else float_of_int st.(v).exp
    in
    let max_exp = two_hop_max dom_exp in
    (* Step 2: candidates choose stars (Section 4.1). *)
    let candidates = ref [] in
    for v = 0 to n - 1 do
      let s = st.(v) in
      if
        (not s.terminated)
        && s.exp <> min_int
        && float_of_int s.exp >= max_exp.(v)
        && spec.candidate_ok v s.rho
      then begin
        let prob = problem v in
        let level = s.exp in
        let selection =
          Star_pick.section_4_1_choice prob
            ~stored:(Some (s.star, s.star_exp))
            ~level ~divisor:4.0
        in
        if selection <> [] then begin
          s.star <- selection;
          s.star_exp <- level;
          let covered = Star_pick.spanned prob selection in
          if not (Edge.Set.is_empty covered) then begin
            incr candidate_count;
            (* Step 3: the random value r_v in {1..n^4}, drawn from the
               shared per-(vertex, iteration) stream so that the
               message-passing implementation coincides. *)
            let r =
              Randomness.vote_value ~seed ~vertex:v ~iteration:!iterations
                ~bound:n4
            in
            mark v "candidate" !iterations;
            candidates := (v, r, selection, covered) :: !candidates
          end
        end
      end
    done;
    (* Step 4: each uncovered 2-spanned target votes for the first
       candidate in (r, id) order among those 2-spanning it. *)
    let ballot : (Edge.t, int * int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (v, r, _, covered) ->
        Edge.Set.iter
          (fun e ->
            match Hashtbl.find_opt ballot e with
            | Some (r', v') when (r', v') <= (r, v) -> ()
            | _ -> Hashtbl.replace ballot e (r, v))
          covered)
      !candidates;
    let votes = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ (_, v) ->
        incr votes_cast;
        Hashtbl.replace votes v
          (1 + Option.value ~default:0 (Hashtbl.find_opt votes v)))
      ballot;
    count "votes" (Hashtbl.length ballot) !iterations;
    (* Step 5: admit candidate stars per the selection rule (the paper:
       at least |C_v| / 8 votes). *)
    let admitted v covered =
      match spec.selection with
      | Votes fraction ->
          let received = Option.value ~default:0 (Hashtbl.find_opt votes v) in
          float_of_int received
          >= fraction *. float_of_int (Edge.Set.cardinal covered)
      | Coin p -> Randomness.coin ~seed ~vertex:v ~iteration:!iterations ~p
      | All -> true
    in
    let additions = ref Edge.Set.empty in
    List.iter
      (fun (v, _, selection, covered) ->
        if admitted v covered then begin
          incr stars_added;
          mark v "commit" !iterations;
          List.iter
            (fun u -> additions := Edge.Set.add (Edge.make v u) !additions)
            selection
        end)
      !candidates;
    if not (Edge.Set.is_empty !additions) then
      Cover2.add cover !additions ~dirty:mark_dirty;
    (* Step 6/7: refresh and terminate low-density neighborhoods. *)
    refresh_densities ();
    let max_rho =
      two_hop_max (fun v ->
          if st.(v).terminated && not spec.dominance_includes_terminated then
            0.0
          else st.(v).rho)
    in
    let finals = ref Edge.Set.empty in
    let terminated_this_iteration = ref 0 in
    for v = 0 to n - 1 do
      if (not st.(v).terminated) && spec.terminate_ok v (max max_rho.(v) 0.0)
      then begin
        st.(v).terminated <- true;
        incr terminated_this_iteration;
        mark v "terminate" !iterations;
        Edge.Set.iter
          (fun e -> if spec.finalize e then finals := Edge.Set.add e !finals)
          (Cover2.uncovered_incident cover v)
      end
    done;
    if not (Edge.Set.is_empty !finals) then
      Cover2.add cover !finals ~dirty:mark_dirty;
    (match trace with
    | Some f ->
        f
          {
            iteration = !iterations;
            uncovered_before;
            max_density = max_density_now;
            candidates = !candidate_count - cands_before;
            stars_accepted = !stars_added - stars_before;
            terminated_now = !terminated_this_iteration;
          }
    | None -> ())
  done;
  {
    spanner = Cover2.spanner cover;
    iterations = !iterations;
    rounds = rounds_per_iteration * !iterations;
    stars_added = !stars_added;
    candidate_count = !candidate_count;
    votes_cast = !votes_cast;
    uncovered = Cover2.uncovered cover;
  }
