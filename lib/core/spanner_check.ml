open Grapho

(* Coverage tests run one bounded BFS per queried edge over adjacency
   built once from the candidate set. *)

let bounded_reach adj n src dst bound =
  if src = dst then true
  else begin
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    let found = ref false in
    (try
       while not (Queue.is_empty q) do
         let x = Queue.pop q in
         if dist.(x) < bound then
           List.iter
             (fun y ->
               if dist.(y) = -1 then begin
                 dist.(y) <- dist.(x) + 1;
                 if y = dst then begin
                   found := true;
                   raise Exit
                 end;
                 Queue.add y q
               end)
             adj.(x)
       done
     with Exit -> ());
    !found
  end

let covers_edge ~n s ~k e =
  let adj = Traversal.adjacency_of_set ~n s in
  let u, v = Edge.endpoints e in
  bounded_reach adj n u v k

let uncovered_of_targets ~n ~targets s ~k =
  let adj = Traversal.adjacency_of_set ~n s in
  Edge.Set.fold
    (fun e acc ->
      let u, v = Edge.endpoints e in
      if bounded_reach adj n u v k then acc else e :: acc)
    targets []

let uncovered_edges g s ~k =
  uncovered_of_targets ~n:(Ugraph.n g) ~targets:(Ugraph.edge_set g) s ~k

let is_spanner g s ~k =
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      if not (Ugraph.mem_edge g u v) then
        invalid_arg "Spanner_check.is_spanner: spanner edge not in graph")
    s;
  uncovered_edges g s ~k = []

let is_spanner_of_targets ~n ~targets s ~k =
  uncovered_of_targets ~n ~targets s ~k = []

(* Specialized stretch-2 path at CSR scale. [is_spanner] runs one
   bounded BFS with an O(n) distance array per queried edge — O(m n)
   for a full verdict, infeasible at the 10^5/10^6 churn anchors. For
   k = 2 a certificate is just "the edge itself, or one common
   neighbor inside the spanner", so building the candidate set's own
   CSR once turns the whole verdict into m sorted-row merges. *)
let spanner_csr ~n s =
  Ugraph.of_edge_iter ~expected_edges:(Edge.Set.cardinal s) ~n (fun emit ->
      Edge.Set.iter
        (fun e ->
          let u, v = Edge.endpoints e in
          emit u v)
        s)

let covers_edge_2 ~spanner_csr u v =
  Ugraph.mem_edge spanner_csr u v
  || Ugraph.common_neighbor spanner_csr u v >= 0

let is_2_spanner_fast g s =
  let n = Ugraph.n g in
  let sg = spanner_csr ~n s in
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      if not (Ugraph.mem_edge g u v) then
        invalid_arg "Spanner_check.is_2_spanner_fast: spanner edge not in graph")
    s;
  let ok = ref true in
  (try
     Ugraph.iter_edges_uv
       (fun u v ->
         if not (covers_edge_2 ~spanner_csr:sg u v) then begin
           ok := false;
           raise Exit
         end)
       g
   with Exit -> ());
  !ok

(* Serving-path BFS: the daemon answers thousands of QUERYs per second
   against one resident spanner CSR, so the per-query cost must be the
   traversal and nothing else. The scratch reuses stamp/parent/queue
   arrays across queries with an epoch counter standing in for
   clearing: a vertex is "visited this query" iff its stamp equals the
   current epoch, so reset is one increment, not an O(n) fill. *)
type query = {
  mutable cap : int;
  mutable stamp : int array;
  mutable parent : int array;
  mutable queue : int array;
  mutable epoch : int;
}

let query_create ?(n = 0) () =
  {
    cap = n;
    stamp = Array.make (max n 1) 0;
    parent = Array.make (max n 1) (-1);
    queue = Array.make (max n 1) 0;
    epoch = 0;
  }

let query_ensure q n =
  if n > q.cap then begin
    let cap = max n (2 * q.cap) in
    q.stamp <- Array.make cap 0;
    q.parent <- Array.make cap (-1);
    q.queue <- Array.make cap 0;
    q.cap <- cap;
    q.epoch <- 0
  end

let query_path q sg ~u ~v =
  let n = Ugraph.n sg in
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg "Spanner_check.query_path: vertex out of range";
  if u = v then Some [ u ]
  else begin
    query_ensure q n;
    q.epoch <- q.epoch + 1;
    let ep = q.epoch in
    let stamp = q.stamp and parent = q.parent and queue = q.queue in
    stamp.(u) <- ep;
    parent.(u) <- u;
    queue.(0) <- u;
    let head = ref 0 and tail = ref 1 in
    let found = ref false in
    while not !found && !head < !tail do
      let x = queue.(!head) in
      incr head;
      (try
         Ugraph.iter_neighbors
           (fun y ->
             if stamp.(y) <> ep then begin
               stamp.(y) <- ep;
               parent.(y) <- x;
               if y = v then begin
                 found := true;
                 raise Exit
               end;
               queue.(!tail) <- y;
               incr tail
             end)
           sg x
       with Exit -> ())
    done;
    if not !found then None
    else begin
      let rec walk x acc =
        if x = u then u :: acc else walk parent.(x) (x :: acc)
      in
      Some (walk v [])
    end
  end

let directed_covers_edge ~n s ~k e =
  let adj = Traversal.directed_adjacency_of_set ~n s in
  bounded_reach adj n (Edge.Directed.src e) (Edge.Directed.dst e) k

let directed_uncovered_edges g s ~k =
  let n = Dgraph.n g in
  let adj = Traversal.directed_adjacency_of_set ~n s in
  Dgraph.fold_edges
    (fun (u, v) acc -> if bounded_reach adj n u v k then acc else (u, v) :: acc)
    g []

let is_directed_spanner g s ~k =
  Edge.Directed.Set.iter
    (fun (u, v) ->
      if not (Dgraph.mem_edge g u v) then
        invalid_arg
          "Spanner_check.is_directed_spanner: spanner edge not in graph")
    s;
  directed_uncovered_edges g s ~k = []

let stretch_generic ~n ~adj ~fold =
  fold (fun (u, v) acc ->
      if acc = max_int then max_int
      else begin
        (* Unbounded BFS in the candidate set from u, read distance of v. *)
        let dist = Array.make n (-1) in
        let q = Queue.create () in
        dist.(u) <- 0;
        Queue.add u q;
        while not (Queue.is_empty q) do
          let x = Queue.pop q in
          List.iter
            (fun y ->
              if dist.(y) = -1 then begin
                dist.(y) <- dist.(x) + 1;
                Queue.add y q
              end)
            adj.(x)
        done;
        if dist.(v) = -1 then max_int else max acc dist.(v)
      end)
    0

let stretch g s =
  let n = Ugraph.n g in
  let adj = Traversal.adjacency_of_set ~n s in
  stretch_generic ~n ~adj ~fold:(fun f init ->
      Ugraph.fold_edges (fun e acc -> f (Edge.endpoints e) acc) g init)

let directed_stretch g s =
  let n = Dgraph.n g in
  let adj = Traversal.directed_adjacency_of_set ~n s in
  stretch_generic ~n ~adj ~fold:(fun f init ->
      Dgraph.fold_edges (fun e acc -> f e acc) g init)
