open Grapho
module Iset = Set.Make (Int)

type msg =
  | Uncovered of int list
  | Density of int * bool  (* rounded exponent (min_int = zero), terminated *)
  | Max1 of int
  | Candidate of int * int list  (* r_v, chosen neighbor set *)
  | Votes of (int * int) list  (* the voting edges, batched per candidate *)
  | Accepted of int list
  | Covered_notice of (int * int) list
  | Fresh_uncovered of int list
  | Rho of float * bool  (* true density, terminated flag *)
  | Max1_rho of float * bool  (* 1-hop max density, 1-hop all-terminated *)
  | Final_added of int list

type vstate = {
  neighbors : int array;
  nbr_set : (int, unit) Hashtbl.t;  (* static membership index *)
  paying : int array;  (* neighbors across positive-weight edges *)
  free : int array;  (* neighbors across weight-zero edges *)
  mutable uncovered_inc : Iset.t;  (* w with {v,w} an uncovered target *)
  mutable prob : Star_pick.t option;
      (* the densest-star problem for the current hv; invalidated on
         every hv mutation, so [compute_density] and the candidate
         phase of one iteration share a single [Star_pick.make] *)
  mutable h_adj : Iset.t;  (* spanner neighbors *)
  mutable hv : Edge.Set.t;
  mutable rho : float;
  mutable exp : int;
  mutable max1 : int;
  mutable star : int list;
  mutable star_exp : int;
  mutable is_candidate : bool;
  mutable covered_set : Edge.Set.t;  (* C_v of the current candidacy *)
  mutable max1_rho : float;
  mutable all1 : bool;
  mutable terminated : bool;
  mutable quiet : bool;
  mutable iteration : int;
}

type result = {
  spanner : Edge.Set.t;
  iterations : int;
  metrics : Distsim.Engine.metrics;
}

(* The variant knobs, mirroring Two_spanner_engine.spec. *)
type variant = {
  weight : int -> int -> float;
      (* endpoint-keyed so weight probes allocate no [Edge.t] *)
  candidate_ok : int -> float -> bool;
  terminate_ok : int -> float -> bool;
  dominance_includes_terminated : bool;
}

let unweighted_variant =
  {
    weight = (fun _ _ -> 1.0);
    candidate_ok = (fun _ rho -> rho >= 1.0);
    terminate_ok = (fun _ max_rho -> max_rho <= 1.0);
    dominance_includes_terminated = true;
  }

let rounds_per_iteration = 12
let warmup_rounds = 3

(* Wire sizes (LOCAL: unbounded, but we still account). *)
let measure ~n msg =
  let id = Distsim.Message.bits_for_id ~n in
  match msg with
  | Uncovered l | Fresh_uncovered l | Accepted l | Final_added l ->
      4 + (id * List.length l)
  | Density _ | Max1 _ -> 5 + id
  | Candidate (_, l) -> 4 + (5 * id) + (id * List.length l)
  | Votes l | Covered_notice l -> 4 + (2 * id * List.length l)
  | Rho _ | Max1_rho _ -> 4 + 65

(* Names for the 12 protocol phases, for {!Distsim.Trace.Phase}
   markers (one global marker per protocol round, derived from the
   round number on the engine's merge thread via
   {!Distsim.Trace.with_round_phases} — never from inside [step], so
   phase emission is race-free under parallel stepping). *)
let phase_names =
  [|
    "density"; "max1"; "candidate"; "vote"; "tally"; "accept"; "fresh";
    "rho"; "max1-rho"; "terminate"; "final"; "restart";
  |]

(* The phase schedule is a pure function of the (virtual) round. *)
let phase_of_virtual vr =
  if vr < warmup_rounds then "warmup"
  else phase_names.((vr - warmup_rounds) mod rounds_per_iteration)

(* LOCAL: engine round = protocol round; round 0 is initialization. *)
let local_phases r = if r = 0 then None else Some (phase_of_virtual r, r)

(* CONGEST compilation: the inner protocol advances only at real
   rounds [r = chunks_per_round * vr, vr >= 1]; intermediate rounds
   carry chunks of the current message and get no marker (exactly the
   rounds the old in-step stamping skipped). *)
let congest_phases ~chunks_per_round r =
  if r > 0 && r mod chunks_per_round = 0 then
    let vr = r / chunks_per_round in
    Some (phase_of_virtual vr, vr)
  else None

(* Parallel-safety note (Engine [?par]): the spec below keeps every
   piece of mutable state inside the per-vertex [vstate] record, and
   its randomness is the pure [(seed, vertex, iteration)]-keyed
   {!Randomness.vote_value} — no shared RNG, no cross-vertex writes —
   so stepping vertices on concurrent domains is race-free by
   construction. *)
let make_spec ~seed ~variant g =
  let n = Ugraph.n g in
  let n4 = Randomness.vote_bound ~n in
  (* Broadcast = push one message per neighbor into the engine's
     reused outbox; no send records, no cons cells. *)
  let broadcast st out payload =
    let nbrs = st.neighbors in
    for i = 0 to Array.length nbrs - 1 do
      Distsim.Engine.emit out ~dst:nbrs.(i) payload
    done
  in
  let exponent_of rho =
    match Star_pick.rounded_exponent rho with
    | Some e -> e
    | None -> min_int
  in
  let problem vertex st =
    Star_pick.make ~center:vertex ~nodes:st.paying ~free:st.free
      ~weight:(fun u -> variant.weight vertex u)
      ~hv_edges:st.hv ()
  in
  let compute_density vertex st =
    if Edge.Set.is_empty st.hv then begin
      st.prob <- None;
      st.rho <- 0.0;
      st.exp <- min_int
    end
    else begin
      match st.prob with
      | Some _ ->
          (* hv is unchanged since the last computation (the cache is
             invalidated on every hv mutation), so [rho] and [exp] are
             already current: skip the densest-star flow entirely. *)
          ()
      | None ->
          let p = problem vertex st in
          st.prob <- Some p;
          let rho =
            match Star_pick.densest p with None -> 0.0 | Some (_, d) -> d
          in
          st.rho <- rho;
          st.exp <- exponent_of rho
    end
  in
  let rebuild_hv vertex st inbox =
    (* Each [Uncovered]/[Fresh_uncovered] message is (neighbor u, u's
       uncovered incident endpoints). An edge {u,w} belongs to H_v iff
       both u and w are neighbors of v and either reports it uncovered
       (they agree, so one suffices). Neighbor membership is the
       static [nbr_set] index built once in [init]; the inbox is
       folded directly — no intermediate (src, list) pairs. *)
    let hv' =
      Distsim.Engine.inbox_fold
        (fun acc ~src:u m ->
          match m with
          | Uncovered ws | Fresh_uncovered ws ->
              List.fold_left
                (fun acc w ->
                  if w <> u && w <> vertex && Hashtbl.mem st.nbr_set w then
                    Edge.Set.add (Edge.make u w) acc
                  else acc)
                acc ws
          | _ -> acc)
        Edge.Set.empty inbox
    in
    (* Keep the cached problem (and with it the cached density) alive
       across iterations in which nothing near this vertex changed —
       the steady state of almost-terminated regions. *)
    if not (Edge.Set.equal hv' st.hv) then begin
      st.hv <- hv';
      st.prob <- None
    end
  in
  (* H_v edges newly 2-spanned through this vertex; emits the notices
     and prunes them from hv. *)
  let via_me_notices st out =
    let covered =
      Edge.Set.filter
        (fun e ->
          let u, w = Edge.endpoints e in
          Iset.mem u st.h_adj && Iset.mem w st.h_adj)
        st.hv
    in
    st.hv <- Edge.Set.diff st.hv covered;
    if not (Edge.Set.is_empty covered) then begin
      st.prob <- None;
      let per_endpoint = Hashtbl.create 8 in
      Edge.Set.iter
        (fun e ->
          let u, w = Edge.endpoints e in
          List.iter
            (fun x ->
              Hashtbl.replace per_endpoint x
                ((u, w)
                :: Option.value ~default:[] (Hashtbl.find_opt per_endpoint x)))
            [ u; w ])
        covered;
      Hashtbl.iter
        (fun dst pairs ->
          Distsim.Engine.emit out ~dst (Covered_notice pairs))
        per_endpoint
    end
  in
  let absorb_notices vertex st inbox =
    Distsim.Engine.inbox_iter
      (fun ~src:_ m ->
        match m with
        | Covered_notice pairs ->
            List.iter
              (fun (a, b) ->
                if vertex = a then
                  st.uncovered_inc <- Iset.remove b st.uncovered_inc
                else if vertex = b then
                  st.uncovered_inc <- Iset.remove a st.uncovered_inc)
              pairs
        | _ -> ())
      inbox
  in
  let uncovered_list st = Iset.elements st.uncovered_inc in
  {
    Distsim.Engine.init =
      (fun ~n:_ ~vertex ~neighbors ~out ->
        let paying = ref [] and free = ref [] in
        Array.iter
          (fun u ->
            if variant.weight vertex u = 0.0 then free := u :: !free
            else paying := u :: !paying)
          neighbors;
        (* Weight-zero edges enter the spanner before the first
           iteration; their own targets are covered by membership. *)
        let free = Array.of_list (List.rev !free) in
        let nbr_set = Hashtbl.create (2 * Array.length neighbors) in
        Array.iter (fun u -> Hashtbl.replace nbr_set u ()) neighbors;
        let st =
          {
            neighbors;
            nbr_set;
            paying = Array.of_list (List.rev !paying);
            free;
            prob = None;
            uncovered_inc =
              Array.fold_left
                (fun s u ->
                  if variant.weight vertex u = 0.0 then s else Iset.add u s)
                Iset.empty neighbors;
            h_adj = Array.fold_left (fun s u -> Iset.add u s) Iset.empty free;
            hv = Edge.Set.empty;
            rho = 0.0;
            exp = min_int;
            max1 = min_int;
            star = [];
            star_exp = min_int;
            is_candidate = false;
            covered_set = Edge.Set.empty;
            max1_rho = 0.0;
            all1 = true;
            terminated = false;
            quiet = false;
            iteration = 1;
          }
        in
        (* Warm-up round W0 payload. *)
        broadcast st out (Uncovered (uncovered_list st));
        st);
    step =
      (fun ~round ~vertex st inbox ~out ->
        if st.quiet then (st, `Done)
        else if round < warmup_rounds then begin
          if round = 1 then begin
            (* W1: pre-added weight-zero 2-paths already cover some
               targets; notify their endpoints. A no-op when there are
               no zero-weight edges. *)
            rebuild_hv vertex st inbox;
            via_me_notices st out;
            (st, `Continue)
          end
          else begin
            (* W2: absorb and launch the main loop's first iteration. *)
            absorb_notices vertex st inbox;
            broadcast st out (Uncovered (uncovered_list st));
            (st, `Continue)
          end
        end
        else begin
          let phase = (round - warmup_rounds) mod rounds_per_iteration in
          (match phase with
          | 0 ->
              (* Uncovered lists -> H_v -> density. *)
              rebuild_hv vertex st inbox;
              compute_density vertex st;
              broadcast st out (Density (st.exp, st.terminated))
          | 1 ->
              let own =
                if st.terminated && not variant.dominance_includes_terminated
                then min_int
                else st.exp
              in
              let m =
                Distsim.Engine.inbox_fold
                  (fun acc ~src:_ msg ->
                    match msg with
                    | Density (e, t) ->
                        if t && not variant.dominance_includes_terminated
                        then acc
                        else max acc e
                    | _ -> acc)
                  own inbox
              in
              st.max1 <- m;
              broadcast st out (Max1 m)
          | 2 ->
              let max2 =
                Distsim.Engine.inbox_fold
                  (fun acc ~src:_ msg ->
                    match msg with Max1 e -> max acc e | _ -> acc)
                  st.max1 inbox
              in
              st.is_candidate <- false;
              if
                (not st.terminated)
                && st.exp <> min_int
                && st.exp >= max2
                && variant.candidate_ok vertex st.rho
              then begin
                (* hv is untouched since phase 0, so the problem
                   built by [compute_density] is still valid. *)
                let prob =
                  match st.prob with
                  | Some p -> p
                  | None -> problem vertex st
                in
                let selection =
                  Star_pick.section_4_1_choice prob
                    ~stored:(Some (st.star, st.star_exp))
                    ~level:st.exp ~divisor:4.0
                in
                if selection <> [] then begin
                  st.star <- selection;
                  st.star_exp <- st.exp;
                  let covered = Star_pick.spanned prob selection in
                  if not (Edge.Set.is_empty covered) then begin
                    st.is_candidate <- true;
                    st.covered_set <- covered;
                    let r =
                      Randomness.vote_value ~seed ~vertex
                        ~iteration:st.iteration ~bound:n4
                    in
                    (* Voters must see the star as Section 4.3.2
                       defines it: the paying selection plus the
                       implicit weight-zero edges. *)
                    broadcast st out
                      (Candidate (r, selection @ Array.to_list st.free))
                  end
                end
              end
          | 3 ->
              (* The smaller endpoint of each uncovered edge casts
                 its vote; votes to the same candidate are batched
                 into one message (one message per edge per round).
                 Each candidate's star is indexed into a hash set
                 once, so an edge costs O(1) per candidate instead
                 of two O(|star|) scans. *)
              let candidates =
                Distsim.Engine.inbox_fold
                  (fun acc ~src m ->
                    match m with
                    | Candidate (r, star) ->
                        let members =
                          Hashtbl.create (2 * List.length star)
                        in
                        List.iter
                          (fun u -> Hashtbl.replace members u ())
                          star;
                        (src, r, members) :: acc
                    | _ -> acc)
                  [] inbox
              in
              let candidates = List.rev candidates in
              if candidates <> [] then begin
                let per_winner = Hashtbl.create 8 in
                (* Only candidates whose star contains me can span
                   my incident edges. *)
                let mine =
                  List.filter
                    (fun (_, _, members) -> Hashtbl.mem members vertex)
                    candidates
                in
                if mine <> [] then
                  Iset.iter
                    (fun w ->
                      if vertex < w then begin
                        (* Lexicographic minimum of (r, src) over the
                           candidates spanning {vertex, w} — the same
                           winner the sorted scan used to pick. *)
                        let winner =
                          List.fold_left
                            (fun best (src, r, members) ->
                              if Hashtbl.mem members w then
                                match best with
                                | Some (br, bsrc)
                                  when br < r || (br = r && bsrc < src) ->
                                    best
                                | _ -> Some (r, src)
                              else best)
                            None mine
                        in
                        match winner with
                        | None -> ()
                        | Some (_, winner) ->
                            Hashtbl.replace per_winner winner
                              ((vertex, w)
                              :: Option.value ~default:[]
                                   (Hashtbl.find_opt per_winner winner))
                      end)
                    st.uncovered_inc;
                Hashtbl.iter
                  (fun dst votes ->
                    Distsim.Engine.emit out ~dst (Votes votes))
                  per_winner
              end
          | 4 ->
              if st.is_candidate then begin
                st.is_candidate <- false;
                let votes =
                  Distsim.Engine.inbox_fold
                    (fun acc ~src:_ m ->
                      match m with
                      | Votes l -> acc + List.length l
                      | _ -> acc)
                    0 inbox
                in
                if
                  float_of_int votes
                  >= 0.125 *. float_of_int (Edge.Set.cardinal st.covered_set)
                then begin
                  (* The star joins the spanner. *)
                  List.iter
                    (fun u ->
                      st.h_adj <- Iset.add u st.h_adj;
                      st.uncovered_inc <- Iset.remove u st.uncovered_inc)
                    st.star;
                  broadcast st out (Accepted st.star)
                end
              end
          | 5 ->
              (* Neighbors' accepted stars update the spanner
                 incidence; report edges 2-spanned through me. *)
              Distsim.Engine.inbox_iter
                (fun ~src m ->
                  match m with
                  | Accepted star when List.mem vertex star ->
                      st.h_adj <- Iset.add src st.h_adj;
                      st.uncovered_inc <- Iset.remove src st.uncovered_inc
                  | _ -> ())
                inbox;
              via_me_notices st out
          | 6 ->
              absorb_notices vertex st inbox;
              broadcast st out (Fresh_uncovered (uncovered_list st))
          | 7 ->
              rebuild_hv vertex st inbox;
              compute_density vertex st;
              broadcast st out (Rho (st.rho, st.terminated))
          | 8 ->
              let exclude t =
                t && not variant.dominance_includes_terminated
              in
              let own_rho = if exclude st.terminated then 0.0 else st.rho in
              let m = ref own_rho in
              let a = ref st.terminated in
              Distsim.Engine.inbox_iter
                (fun ~src:_ msg ->
                  match msg with
                  | Rho (r, t) ->
                      m := Float.max !m (if exclude t then 0.0 else r);
                      a := !a && t
                  | _ -> ())
                inbox;
              st.max1_rho <- !m;
              st.all1 <- !a;
              broadcast st out (Max1_rho (!m, !a))
          | 9 ->
              let max2_rho = ref st.max1_rho in
              let all2 = ref st.all1 in
              Distsim.Engine.inbox_iter
                (fun ~src:_ msg ->
                  match msg with
                  | Max1_rho (r, t) ->
                      max2_rho := Float.max !max2_rho r;
                      all2 := !all2 && t
                  | _ -> ())
                inbox;
              if
                (not st.terminated)
                && variant.terminate_ok vertex (Float.max !max2_rho 0.0)
              then begin
                st.terminated <- true;
                let finals = uncovered_list st in
                List.iter
                  (fun w ->
                    st.h_adj <- Iset.add w st.h_adj;
                    st.uncovered_inc <- Iset.remove w st.uncovered_inc)
                  finals;
                if finals <> [] then broadcast st out (Final_added finals)
              end;
              if !all2 && st.terminated then st.quiet <- true
          | 10 ->
              Distsim.Engine.inbox_iter
                (fun ~src m ->
                  match m with
                  | Final_added l when List.mem vertex l ->
                      st.h_adj <- Iset.add src st.h_adj;
                      st.uncovered_inc <- Iset.remove src st.uncovered_inc
                  | _ -> ())
                inbox;
              via_me_notices st out
          | _ ->
              absorb_notices vertex st inbox;
              st.iteration <- st.iteration + 1;
              broadcast st out (Uncovered (uncovered_list st)));
          (st, if st.quiet then `Done else `Continue)
        end);
    measure = measure ~n:(max n 2);
  }

(* Under [?active] the engine's state array is slot-indexed: slot [i]
   holds the final state of vertex [active.(i)]. *)
let collect_result ?active (states, metrics) =
  let vertex_of =
    match active with
    | None -> fun i -> i
    | Some act -> fun i -> act.(i)
  in
  let spanner = ref Edge.Set.empty in
  Array.iteri
    (fun i st ->
      let v = vertex_of i in
      Iset.iter
        (fun u -> spanner := Edge.Set.add (Edge.make v u) !spanner)
        st.h_adj)
    states;
  let iterations =
    Array.fold_left (fun acc st -> max acc (st.iteration - 1)) 0 states
  in
  { spanner = !spanner; iterations; metrics }

let run ?(seed = 0x2D5F1) ?max_rounds ?sched ?par ?adversary ?profile ?frugal
    ?(retry = 1) ?(trace = Distsim.Trace.null) ?active g =
  let n =
    match active with Some a -> Array.length a | None -> Ugraph.n g
  in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 200 * (n + 20)
  in
  let trace = Distsim.Trace.with_round_phases local_phases trace in
  collect_result ?active
    (Distsim.Engine.run ~max_rounds ?sched ?par ?adversary ?profile ?frugal
       ?active ~trace
       ~model:Distsim.Model.local ~graph:g
       (Distsim.Faults.with_retry ~attempts:retry
          (make_spec ~seed ~variant:unweighted_variant g)))

(* The weighted variant of Section 4.3.2, mirroring
   Weighted_two_spanner's engine configuration. The per-vertex
   termination floors 1/wmax (wmax over the closed 2-neighborhood) are
   static topology data, precomputed the way vertices' knowledge of
   their neighbors is. *)
let run_weighted ?(seed = 0x2D5F1) ?max_rounds ?sched ?par ?adversary
    ?profile ?frugal ?(retry = 1) ?(trace = Distsim.Trace.null) g w =
  let n = Ugraph.n g in
  let own = Array.make n 0.0 in
  for v = 0 to n - 1 do
    own.(v) <-
      Ugraph.fold_neighbors
        (fun acc u -> Float.max acc (Weights.get_uv w v u))
        g v 0.0
  done;
  let hop a =
    Array.init n (fun v ->
        Ugraph.fold_neighbors (fun acc u -> Float.max acc a.(u)) g v a.(v))
  in
  let wmax2 = hop (hop own) in
  let floor_of v = if wmax2.(v) > 0.0 then 1.0 /. wmax2.(v) else infinity in
  let variant =
    {
      weight = Weights.get_uv w;
      candidate_ok = (fun _ rho -> rho > 0.0);
      terminate_ok = (fun v max_rho -> max_rho <= floor_of v);
      dominance_includes_terminated = false;
    }
  in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 400 * (n + 20)
  in
  let trace = Distsim.Trace.with_round_phases local_phases trace in
  collect_result
    (Distsim.Engine.run ~max_rounds ?sched ?par ?adversary ?profile ?frugal
       ~trace ~model:Distsim.Model.local ~graph:g
       (Distsim.Faults.with_retry ~attempts:retry (make_spec ~seed ~variant g)))

(* ------------------------------------------------------------------ *)
(* CONGEST compilation: every protocol message is a short list of
   identifiers (or a density), so it fragments into O(log n)-bit
   chunks; a virtual round costs O(Delta) real rounds, exactly the
   overhead Section 1.3 predicts for a direct CONGEST port. *)

let exp_offset = 4096
let encode_exp e = if e = min_int then 0 else e + exp_offset
let decode_exp x = if x = 0 then min_int else x - exp_offset

let encode_float f =
  let bits = Int64.bits_of_float f in
  ( Int64.to_int (Int64.shift_right_logical bits 32),
    Int64.to_int (Int64.logand bits 0xFFFFFFFFL) )

let decode_float hi lo =
  Int64.float_of_bits
    (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))

let encode_pairs pairs = List.concat_map (fun (a, b) -> [ a; b ]) pairs

(* Tail-recursive: Votes/Covered_notice payloads can hold an edge set
   of the whole 2-neighborhood, which must not be stack-bounded. *)
let decode_pairs chunks =
  let rec go acc = function
    | [] -> List.rev acc
    | a :: b :: rest -> go ((a, b) :: acc) rest
    | _ -> invalid_arg "Two_spanner_local: odd pair stream"
  in
  go [] chunks

let encode = function
  | Uncovered l -> 0 :: l
  | Density (e, t) -> [ 1; encode_exp e; (if t then 1 else 0) ]
  | Max1 e -> [ 2; encode_exp e ]
  | Candidate (r, star) -> 3 :: r :: star
  | Votes pairs -> 4 :: encode_pairs pairs
  | Accepted l -> 5 :: l
  | Covered_notice pairs -> 6 :: encode_pairs pairs
  | Fresh_uncovered l -> 7 :: l
  | Rho (f, t) ->
      let hi, lo = encode_float f in
      [ 8; (if t then 1 else 0); hi; lo ]
  | Max1_rho (f, t) ->
      let hi, lo = encode_float f in
      [ 9; (if t then 1 else 0); hi; lo ]
  | Final_added l -> 10 :: l

let decode chunks =
  let msg =
    match chunks with
    | 0 :: l -> Uncovered l
    | [ 1; e; t ] -> Density (decode_exp e, t = 1)
    | [ 2; e ] -> Max1 (decode_exp e)
    | 3 :: r :: star -> Candidate (r, star)
    | 4 :: pairs -> Votes (decode_pairs pairs)
    | 5 :: l -> Accepted l
    | 6 :: pairs -> Covered_notice (decode_pairs pairs)
    | 7 :: l -> Fresh_uncovered l
    | [ 8; t; hi; lo ] -> Rho (decode_float hi lo, t = 1)
    | [ 9; t; hi; lo ] -> Max1_rho (decode_float hi lo, t = 1)
    | 10 :: l -> Final_added l
    | _ -> invalid_arg "Two_spanner_local: undecodable chunk stream"
  in
  (msg, [])

let run_congest ?(seed = 0x2D5F1) ?max_rounds ?chunks_per_round ?sched ?par
    ?adversary ?profile ?frugal ?retry ?audit ?(trace = Distsim.Trace.null) g =
  let n = Ugraph.n g in
  let delta = Ugraph.max_degree g in
  let chunks_per_round =
    match chunks_per_round with Some c -> c | None -> (2 * delta) + 4
  in
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None -> 200 * (n + 20) * chunks_per_round
  in
  (* c = 16 suffices once log n covers the 33-bit density halves; on
     tiny graphs raise the constant so the budget still does. *)
  let id_bits = Distsim.Message.bits_for_id ~n:(max n 2) in
  let c = max 16 ((48 / id_bits) + 1) in
  let model = Distsim.Model.congest ~n:(max n 2) ~c () in
  let trace =
    Distsim.Trace.with_round_phases (congest_phases ~chunks_per_round) trace
  in
  collect_result
    (Distsim.Chunked.run ~max_rounds ?sched ?par ?adversary ?profile ?frugal
       ?retry ?audit ~trace ~model ~graph:g ~chunks_per_round ~encode ~decode
       (make_spec ~seed ~variant:unweighted_variant g))
