open Grapho
module Iset = Set.Make (Int)

let adjacency_sets ~n set =
  let adj = Array.make n Iset.empty in
  Edge.Set.iter
    (fun e ->
      let u, w = Edge.endpoints e in
      adj.(u) <- Iset.add w adj.(u);
      adj.(w) <- Iset.add u adj.(w))
    set;
  adj

let middle_count_adj adj e =
  let u, w = Edge.endpoints e in
  let a, b =
    if Iset.cardinal adj.(u) <= Iset.cardinal adj.(w) then (adj.(u), adj.(w))
    else (adj.(w), adj.(u))
  in
  Iset.fold (fun z acc -> if Iset.mem z b then acc + 1 else acc) a 0

let middle_count ~n set e = middle_count_adj (adjacency_sets ~n set) e

let is_ft_2_spanner g ~f s =
  if f < 0 then invalid_arg "Fault_tolerant.is_ft_2_spanner: f < 0";
  let adj = adjacency_sets ~n:(Ugraph.n g) s in
  Ugraph.fold_edges
    (fun e acc ->
      acc && (Edge.Set.mem e s || middle_count_adj adj e >= f + 1))
    g true

type result = {
  spanner : Edge.Set.t;
  stars_added : int;
  singles_added : int;
}

let greedy g ~f =
  if f < 0 then invalid_arg "Fault_tolerant.greedy: f < 0";
  let n = Ugraph.n g in
  let h = ref Edge.Set.empty in
  let h_adj = Array.make n Iset.empty in
  let add_edge e =
    if not (Edge.Set.mem e !h) then begin
      let u, w = Edge.endpoints e in
      h := Edge.Set.add e !h;
      h_adj.(u) <- Iset.add w h_adj.(u);
      h_adj.(w) <- Iset.add u h_adj.(w)
    end
  in
  let satisfied e =
    Edge.Set.mem e !h || middle_count_adj h_adj e >= f + 1
  in
  (* Unsatisfied edges between neighbors of v to which v would be a new
     middle. *)
  let hv_of v =
    let nset =
      Ugraph.fold_neighbors (fun s u -> Iset.add u s) g v Iset.empty
    in
    Ugraph.fold_edges
      (fun e acc ->
        let u, w = Edge.endpoints e in
        if
          Iset.mem u nset && Iset.mem w nset
          && (not (satisfied e))
          && not (Iset.mem u h_adj.(v) && Iset.mem w h_adj.(v))
        then Edge.Set.add e acc
        else acc)
      g Edge.Set.empty
  in
  let stars_added = ref 0 and singles_added = ref 0 in
  let continue_loop = ref true in
  while !continue_loop do
    let unsatisfied =
      Ugraph.fold_edges
        (fun e acc -> if satisfied e then acc else e :: acc)
        g []
    in
    if unsatisfied = [] then continue_loop := false
    else begin
      (* Globally densest star, with already-bought star edges free. *)
      let best = ref None in
      for v = 0 to n - 1 do
        let hv = hv_of v in
        if not (Edge.Set.is_empty hv) then begin
          let paying = ref [] and free = ref [] in
          Ugraph.iter_neighbors
            (fun u ->
              if Iset.mem u h_adj.(v) then free := u :: !free
              else paying := u :: !paying)
            g v;
          let prob =
            Star_pick.make ~center:v
              ~nodes:(Array.of_list (List.rev !paying))
              ~free:(Array.of_list (List.rev !free))
              ~hv_edges:hv ()
          in
          match Star_pick.densest prob with
          | Some (sel, d) when d > 0.0 -> (
              match !best with
              | Some (_, _, d') when d' >= d -> ()
              | _ -> best := Some (v, sel, d))
          | _ ->
              (* All gain may sit on free edges alone: then v is already
                 a middle-in-waiting through 0-cost edges; buy nothing
                 here, the edges will be handled elsewhere or singly. *)
              ()
        end
      done;
      match !best with
      | Some (v, sel, d) when d >= 1.0 ->
          incr stars_added;
          List.iter (fun u -> add_edge (Edge.make v u)) sel
      | _ ->
          (* No star pays for itself: buy the remaining edges. *)
          incr singles_added;
          List.iter add_edge unsatisfied
    end
  done;
  { spanner = !h; stars_added = !stars_added; singles_added = !singles_added }
