open Grapho

type result = {
  spanner : Edge.Set.t;
  iterations : int;
  rounds : int;
  stars_added : int;
  candidate_count : int;
  uncoverable : Edge.Set.t;
}

let validate g set name =
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      if not (Ugraph.mem_edge g u v) then
        invalid_arg (Printf.sprintf "Client_server.run: %s edge not in graph" name))
    set

let run ?rng ?seed ?max_iterations
    ?(selection = Two_spanner_engine.Votes 0.125) g ~clients ~servers =
  validate g clients "client";
  validate g servers "server";
  let both = Edge.Set.inter clients servers in
  let spec =
    {
      Two_spanner_engine.graph = g;
      targets = clients;
      usable = servers;
      weight = (fun _ _ -> 1.0);
      candidate_ok = (fun _ rho -> rho >= 0.5);
      terminate_ok = (fun _ max_rho -> max_rho < 0.5);
      finalize = (fun e -> Edge.Set.mem e both);
      dominance_includes_terminated = true;
      selection;
    }
  in
  let r = Two_spanner_engine.run ?rng ?seed ?max_iterations spec in
  {
    spanner = r.spanner;
    iterations = r.iterations;
    rounds = r.rounds;
    stars_added = r.stars_added;
    candidate_count = r.candidate_count;
    uncoverable = r.uncovered;
  }

let ratio_bound _g ~clients ~servers =
  let log2 x = Float.log x /. Float.log 2.0 in
  let c = float_of_int (max 1 (Edge.Set.cardinal clients)) in
  let module Iset = Set.Make (Int) in
  let vc =
    Edge.Set.fold
      (fun e acc ->
        let u, v = Edge.endpoints e in
        Iset.add u (Iset.add v acc))
      clients Iset.empty
  in
  let vcount = float_of_int (max 1 (Iset.cardinal vc)) in
  let deg = Hashtbl.create 64 in
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      List.iter
        (fun x ->
          Hashtbl.replace deg x
            (1 + Option.value ~default:0 (Hashtbl.find_opt deg x)))
        [ u; v ])
    servers;
  let delta_s = Hashtbl.fold (fun _ d acc -> max d acc) deg 1 in
  8.0 *. (Float.min (log2 (c /. vcount)) (log2 (float_of_int delta_s)) +. 3.0)
