open Grapho

type result = {
  spanner : Edge.Set.t;
  cost : float;
  iterations : int;
  rounds : int;
  stars_added : int;
  candidate_count : int;
}

(* wmax over the closed 2-neighborhood of each vertex: the largest
   weight of an edge adjacent to a vertex at distance at most 2. *)
let wmax_two_hop g w =
  let n = Ugraph.n g in
  let own = Array.make n 0.0 in
  for v = 0 to n - 1 do
    own.(v) <-
      Ugraph.fold_neighbors
        (fun acc u -> Float.max acc (Weights.get_uv w v u))
        g v 0.0
  done;
  let hop array =
    Array.init n (fun v ->
        Ugraph.fold_neighbors (fun acc u -> max acc array.(u)) g v array.(v))
  in
  hop (hop own)

let run ?rng ?seed ?max_iterations ?(selection = Two_spanner_engine.Votes 0.125) g w =
  let edges = Ugraph.edge_set g in
  let wmax2 = wmax_two_hop g w in
  let floor_of v = if wmax2.(v) > 0.0 then 1.0 /. wmax2.(v) else infinity in
  let spec =
    {
      Two_spanner_engine.graph = g;
      targets = edges;
      usable = edges;
      weight = Weights.get_uv w;
      (* The weighted variant places no density floor on candidacy
         (stars of density below 1 are expressly allowed, §4.3.2). *)
      candidate_ok = (fun _ rho -> rho > 0.0);
      terminate_ok = (fun v max_rho -> max_rho <= floor_of v);
      finalize = (fun _ -> true);
      dominance_includes_terminated = false;
      selection;
    }
  in
  let r = Two_spanner_engine.run ?rng ?seed ?max_iterations spec in
  assert (Edge.Set.is_empty r.uncovered);
  {
    spanner = r.spanner;
    cost = Weights.cost w r.spanner;
    iterations = r.iterations;
    rounds = r.rounds;
    stars_added = r.stars_added;
    candidate_count = r.candidate_count;
  }
