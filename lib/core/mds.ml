open Grapho
module Iset = Set.Make (Int)

type msg =
  | Density of int  (* rounded exponent; 0 encodes density zero *)
  | Max_density of int
  | Candidate of int  (* the random draw r_v *)
  | Vote
  | Joined
  | Covered

type vstate = {
  neighbors : int array;
  rng : Rng.t;
  mutable covered_self : bool;
  mutable announced_covered : bool;
  mutable uncovered_nbrs : Iset.t;
  mutable in_mds : bool;
  mutable quiet : bool;
  mutable max1 : int;
  mutable is_candidate : bool;
  mutable r_value : int;
  mutable cv_size : int;  (* |S_v ∩ U| frozen at candidacy *)
  mutable self_vote : bool;
  mutable nbr_candidates : (int * int) list;  (* (r, id) *)
}

type result = {
  dominating_set : int list;
  iterations : int;
  metrics : Distsim.Engine.metrics;
}

let density_count st =
  (if st.covered_self then 0 else 1) + Iset.cardinal st.uncovered_nbrs

let exponent_of count =
  if count <= 0 then 0
  else
    match Star_pick.rounded_exponent (float_of_int count) with
    | Some e -> e
    | None -> 0

let measure ~n msg =
  let id_bits = Distsim.Message.bits_for_id ~n in
  match msg with
  | Density e | Max_density e -> 3 + Distsim.Message.bits_int (abs e + 1)
  | Candidate _ -> 3 + (4 * id_bits)  (* r_v ranges over n^4 *)
  | Vote | Joined | Covered -> 3

type selection = Votes | Coin of float

let phase_names = [| "max1"; "candidate"; "vote"; "tally"; "cover"; "restart" |]

let run ?rng ?model ?(selection = Votes) ?sched ?par ?adversary ?profile
    ?frugal ?(retry = 1) ?(trace = Distsim.Trace.null) g =
  let seed_rng = match rng with Some r -> r | None -> Rng.create 0xD0517 in
  let n = Ugraph.n g in
  let model =
    match model with
    | Some m -> m
    | None -> Distsim.Model.congest ~n:(max n 2) ~c:8 ()
  in
  let n4 =
    let f = float_of_int (max n 2) ** 4.0 in
    if f > 1e15 then 1_000_000_000_000_000 else int_of_float f + 16
  in
  (* Each vertex gets a private random stream, split deterministically
     from the seed *before* the engine runs; afterwards a vertex only
     ever draws from its own [streams.(vertex)], so stepping vertices
     on concurrent domains (Engine [?par]) touches disjoint RNG state
     and the draw sequence is identical for any shard count. *)
  let streams = Array.init n (fun _ -> Rng.split seed_rng) in
  let broadcast st out payload =
    let nbrs = st.neighbors in
    for i = 0 to Array.length nbrs - 1 do
      Distsim.Engine.emit out ~dst:nbrs.(i) payload
    done
  in
  (* One global phase marker per round, stamped from [Round_begin] on
     the engine's merge thread (race-free under [?par]). *)
  let trace =
    Distsim.Trace.with_round_phases
      (fun r -> if r = 0 then None else Some (phase_names.((r - 1) mod 6), r))
      trace
  in
  let spec =
    {
      Distsim.Engine.init =
        (fun ~n:_ ~vertex ~neighbors ~out ->
          let st =
            {
              neighbors;
              rng = streams.(vertex);
              covered_self = false;
              announced_covered = false;
              uncovered_nbrs =
                Array.fold_left (fun s u -> Iset.add u s) Iset.empty neighbors;
              in_mds = false;
              quiet = false;
              max1 = 0;
              is_candidate = false;
              r_value = 0;
              cv_size = 0;
              self_vote = false;
              nbr_candidates = [];
            }
          in
          broadcast st out (Density (exponent_of (density_count st)));
          st);
      step =
        (fun ~round ~vertex st inbox ~out ->
          if st.quiet then (st, `Done)
          else begin
            let phase = (round - 1) mod 6 in
            (match phase with
            | 0 ->
                (* Received neighbor densities; relay the local max. *)
                let own = exponent_of (density_count st) in
                let m =
                  Distsim.Engine.inbox_fold
                    (fun acc ~src:_ msg ->
                      match msg with Density e -> max acc e | _ -> acc)
                    own inbox
                in
                st.max1 <- m;
                broadcast st out (Max_density m)
            | 1 ->
                (* Know the 2-neighborhood max; decide candidacy or
                   quiescence. *)
                let m2 =
                  Distsim.Engine.inbox_fold
                    (fun acc ~src:_ msg ->
                      match msg with Max_density e -> max acc e | _ -> acc)
                    st.max1 inbox
                in
                let count = density_count st in
                let own = exponent_of count in
                if m2 = 0 then st.quiet <- true
                else if count >= 1 && own >= m2 then begin
                  st.is_candidate <- true;
                  st.cv_size <- count;
                  st.r_value <- 1 + Rng.int st.rng n4;
                  st.self_vote <- false;
                  broadcast st out (Candidate st.r_value)
                end
                else st.is_candidate <- false
            | 2 ->
                (* Received candidacies; uncovered vertices vote. *)
                st.nbr_candidates <-
                  List.rev
                    (Distsim.Engine.inbox_fold
                       (fun acc ~src msg ->
                         match msg with
                         | Candidate r -> (r, src) :: acc
                         | _ -> acc)
                       [] inbox);
                if not st.covered_self then begin
                  let options =
                    if st.is_candidate then
                      (st.r_value, vertex) :: st.nbr_candidates
                    else st.nbr_candidates
                  in
                  let sorted =
                    List.sort
                      (fun (r1, v1) (r2, v2) ->
                        if r1 <> r2 then Int.compare r1 r2
                        else Int.compare v1 v2)
                      options
                  in
                  match sorted with
                  | [] -> ()
                  | (_, winner) :: _ ->
                      if winner = vertex then st.self_vote <- true
                      else Distsim.Engine.emit out ~dst:winner Vote
                end
            | 3 ->
                (* Candidates tally votes and join on an eighth --- or
                   flip the Jia-et-al-style coin instead. *)
                if st.is_candidate then begin
                  let votes =
                    Distsim.Engine.inbox_fold
                      (fun acc ~src:_ msg ->
                        if msg = Vote then acc + 1 else acc)
                      (if st.self_vote then 1 else 0)
                      inbox
                  in
                  st.is_candidate <- false;
                  let joins =
                    match selection with
                    | Votes -> 8 * votes >= st.cv_size
                    | Coin p -> Rng.float st.rng 1.0 < p
                  in
                  if joins then begin
                    st.in_mds <- true;
                    st.covered_self <- true;
                    broadcast st out Joined
                  end
                end
            | 4 ->
                (* Joins cover the neighborhood; announce new cover
                   status once. *)
                let nbr_joined =
                  Distsim.Engine.inbox_fold
                    (fun acc ~src:_ msg -> acc || msg = Joined)
                    false inbox
                in
                if nbr_joined then st.covered_self <- true;
                if st.covered_self && not st.announced_covered then begin
                  st.announced_covered <- true;
                  broadcast st out Covered
                end
            | _ ->
                (* Absorb cover updates; restart with fresh densities. *)
                Distsim.Engine.inbox_iter
                  (fun ~src msg ->
                    if msg = Covered then
                      st.uncovered_nbrs <- Iset.remove src st.uncovered_nbrs)
                  inbox;
                broadcast st out (Density (exponent_of (density_count st))));
            (st, if st.quiet then `Done else `Continue)
          end);
      measure = measure ~n:(max n 2);
    }
  in
  let states, metrics =
    Distsim.Engine.run ?sched ?par ?adversary ?profile ?frugal ~model ~graph:g
      ~trace
      (Distsim.Faults.with_retry ~attempts:retry spec)
  in
  let dominating_set =
    Array.to_list states
    |> List.mapi (fun v st -> (v, st.in_mds))
    |> List.filter_map (fun (v, flag) -> if flag then Some v else None)
  in
  { dominating_set; iterations = (metrics.rounds + 5) / 6; metrics }

let is_dominating_set g d =
  let n = Ugraph.n g in
  let dominated = Array.make n false in
  List.iter
    (fun v ->
      dominated.(v) <- true;
      Ugraph.iter_neighbors (fun u -> dominated.(u) <- true) g v)
    d;
  Array.for_all (fun b -> b) dominated

let greedy g =
  let n = Ugraph.n g in
  let covered = Array.make n false in
  let chosen = ref [] in
  let uncovered_gain v =
    Ugraph.fold_neighbors
      (fun acc u -> if covered.(u) then acc else acc + 1)
      g v
      (if covered.(v) then 0 else 1)
  in
  let remaining = ref n in
  while !remaining > 0 do
    let best = ref 0 and best_gain = ref (-1) in
    for v = 0 to n - 1 do
      let gain = uncovered_gain v in
      if gain > !best_gain then begin
        best := v;
        best_gain := gain
      end
    done;
    let v = !best in
    chosen := v :: !chosen;
    if not covered.(v) then begin
      covered.(v) <- true;
      decr remaining
    end;
    Ugraph.iter_neighbors
      (fun u ->
        if not covered.(u) then begin
          covered.(u) <- true;
          decr remaining
        end)
      g v
  done;
  List.sort compare !chosen

(* Centralized mirror of the protocol above. It must consume
   randomness identically: one stream split per vertex in id order at
   start, one draw per candidacy. *)
let reference ?rng ?(selection = Votes) g =
  let seed_rng = match rng with Some r -> r | None -> Rng.create 0xD0517 in
  let n = Ugraph.n g in
  let n4 =
    let f = float_of_int (max n 2) ** 4.0 in
    if f > 1e15 then 1_000_000_000_000_000 else int_of_float f + 16
  in
  let streams = Array.init n (fun _ -> Rng.split seed_rng) in
  let covered = Array.make n false in
  let in_mds = Array.make n false in
  let closed v = v :: Ugraph.fold_neighbors (fun acc u -> u :: acc) g v [] in
  let count v =
    List.length (List.filter (fun u -> not covered.(u)) (closed v))
  in
  let exp_of v = exponent_of (count v) in
  let all_covered () = Array.for_all (fun c -> c) covered in
  let guard = ref 0 in
  while not (all_covered ()) do
    incr guard;
    if !guard > 50 * (n + 5) then failwith "Mds.reference: no progress";
    (* Rounded-density maxima over closed 2-neighborhoods. *)
    let one =
      Array.init n (fun v ->
          List.fold_left (fun acc u -> max acc (exp_of u)) 0 (closed v))
    in
    let two =
      Array.init n (fun v ->
          Ugraph.fold_neighbors (fun acc u -> max acc one.(u)) g v one.(v))
    in
    (* Candidates draw their values. *)
    let candidate = Array.make n false in
    let r_value = Array.make n 0 in
    let cv = Array.make n 0 in
    for v = 0 to n - 1 do
      let c = count v in
      if c >= 1 && exp_of v >= two.(v) then begin
        candidate.(v) <- true;
        cv.(v) <- c;
        r_value.(v) <- 1 + Rng.int streams.(v) n4
      end
    done;
    (* Uncovered vertices vote for the first candidate covering them. *)
    let votes = Array.make n 0 in
    for u = 0 to n - 1 do
      if not covered.(u) then begin
        let options =
          List.filter_map
            (fun w -> if candidate.(w) then Some (r_value.(w), w) else None)
            (closed u)
        in
        match List.sort compare options with
        | [] -> ()
        | (_, winner) :: _ -> votes.(winner) <- votes.(winner) + 1
      end
    done;
    (* Joins. *)
    for v = 0 to n - 1 do
      if candidate.(v) then begin
        let joins =
          match selection with
          | Votes -> 8 * votes.(v) >= cv.(v)
          | Coin p -> Rng.float streams.(v) 1.0 < p
        in
        if joins then in_mds.(v) <- true
      end
    done;
    for v = 0 to n - 1 do
      if in_mds.(v) then List.iter (fun u -> covered.(u) <- true) (closed v)
    done
  done;
  List.filter (fun v -> in_mds.(v)) (List.init n (fun i -> i))
