open Grapho

type t = {
  center : int;
  nodes : int array;
  pos : (int, int) Hashtbl.t;  (* paying neighbor -> position *)
  weight : float array;
  edges : (int * int) list;  (* hv edges between paying neighbors, by position *)
  adj : int list array;  (* same, as adjacency *)
  free_edges : Edge.t list array;  (* hv edges from paying position to a free neighbor *)
  bonus : float array;  (* |free_edges| per position *)
  mutable densest_memo : (int list * float) option option;
      (* cached [densest] answer; the problem is immutable after
         [make], so one flow solve serves every later query *)
}

let make ~center ~nodes ?(free = [||]) ?(weight = fun _ -> 1.0) ~hv_edges () =
  let k = Array.length nodes in
  let pos = Hashtbl.create (2 * k) in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) nodes;
  let free_set = Hashtbl.create (2 * Array.length free) in
  Array.iter
    (fun v ->
      if Hashtbl.mem pos v then
        invalid_arg "Star_pick.make: free neighbor also paying";
      Hashtbl.replace free_set v ())
    free;
  let weight_arr = Array.map weight nodes in
  Array.iter
    (fun w -> if w <= 0.0 then invalid_arg "Star_pick.make: weight <= 0")
    weight_arr;
  let adj = Array.make k [] in
  let free_edges = Array.make k [] in
  let edges =
    Edge.Set.fold
      (fun e acc ->
        let u, w = Edge.endpoints e in
        match (Hashtbl.find_opt pos u, Hashtbl.find_opt pos w) with
        | Some i, Some j ->
            adj.(i) <- j :: adj.(i);
            adj.(j) <- i :: adj.(j);
            (i, j) :: acc
        | Some i, None when Hashtbl.mem free_set w ->
            free_edges.(i) <- e :: free_edges.(i);
            acc
        | None, Some j when Hashtbl.mem free_set u ->
            free_edges.(j) <- e :: free_edges.(j);
            acc
        | _ -> acc)
      hv_edges []
  in
  let bonus =
    Array.init k (fun i -> float_of_int (List.length free_edges.(i)))
  in
  {
    center;
    nodes;
    pos;
    weight = weight_arr;
    edges;
    adj;
    free_edges;
    bonus;
    densest_memo = None;
  }

let center t = t.center
let nodes t = t.nodes

let positions t selection =
  List.map
    (fun v ->
      match Hashtbl.find_opt t.pos v with
      | Some i -> i
      | None -> invalid_arg "Star_pick: vertex not an eligible neighbor")
    selection

let selection_stats t selection =
  let ps = positions t selection in
  let inside = Array.make (Array.length t.nodes) false in
  List.iter (fun i -> inside.(i) <- true) ps;
  let spanned =
    List.fold_left
      (fun acc (i, j) -> if inside.(i) && inside.(j) then acc + 1 else acc)
      0 t.edges
  in
  let weight = List.fold_left (fun acc i -> acc +. t.weight.(i)) 0.0 ps in
  let gain =
    float_of_int spanned
    +. List.fold_left (fun acc i -> acc +. t.bonus.(i)) 0.0 ps
  in
  (gain, weight)

let density t selection =
  if selection = [] then 0.0
  else
    let gain, weight = selection_stats t selection in
    gain /. weight

let spanned t selection =
  let inside = Array.make (Array.length t.nodes) false in
  let ps = positions t selection in
  List.iter (fun i -> inside.(i) <- true) ps;
  let base =
    List.fold_left
      (fun acc (i, j) ->
        if inside.(i) && inside.(j) then
          Edge.Set.add (Edge.make t.nodes.(i) t.nodes.(j)) acc
        else acc)
      Edge.Set.empty t.edges
  in
  List.fold_left
    (fun acc i ->
      List.fold_left (fun acc e -> Edge.Set.add e acc) acc t.free_edges.(i))
    base ps

let weight_of t selection =
  let _, weight = selection_stats t selection in
  weight

let is_unit_weight t = Array.for_all (fun w -> w = 1.0) t.weight

let densest_on t ~allowed_positions =
  (* Remap the restricted subproblem to a dense index space for the
     flow solver. *)
  let k = List.length allowed_positions in
  if k = 0 then None
  else begin
    let arr = Array.of_list allowed_positions in
    let back = Hashtbl.create (2 * k) in
    Array.iteri (fun small orig -> Hashtbl.replace back orig small) arr;
    let edges =
      List.filter_map
        (fun (i, j) ->
          match (Hashtbl.find_opt back i, Hashtbl.find_opt back j) with
          | Some a, Some b -> Some (a, b)
          | _ -> None)
        t.edges
    in
    let weights =
      if is_unit_weight t then None
      else Some (Array.map (fun orig -> t.weight.(orig)) arr)
    in
    let all_zero_bonus = Array.for_all (fun b -> b = 0.0) t.bonus in
    let bonuses =
      if all_zero_bonus then None
      else Some (Array.map (fun orig -> t.bonus.(orig)) arr)
    in
    match Netflow.Densest.densest_subset ?weights ?bonuses ~n:k ~edges () with
    | None -> None
    | Some (subset, d) ->
        Some (List.map (fun small -> t.nodes.(arr.(small))) subset, d)
  end

let densest t =
  match t.densest_memo with
  | Some memo -> memo
  | None ->
      let memo =
        densest_on t
          ~allowed_positions:(List.init (Array.length t.nodes) (fun i -> i))
      in
      t.densest_memo <- Some memo;
      memo

let densest_within t ~allowed =
  densest_on t ~allowed_positions:(positions t allowed)

let extend t ~start ~allowed ~threshold =
  let k = Array.length t.nodes in
  let inside = Array.make k false in
  let allowed_flag = Array.make k false in
  List.iter (fun i -> allowed_flag.(i) <- true) (positions t allowed);
  let selection = ref (positions t start) in
  List.iter
    (fun i ->
      if not allowed_flag.(i) then
        invalid_arg "Star_pick.extend: start not within allowed";
      inside.(i) <- true)
    !selection;
  let gain = ref 0.0 and weight = ref 0.0 in
  List.iter
    (fun i ->
      weight := !weight +. t.weight.(i);
      gain := !gain +. t.bonus.(i))
    !selection;
  List.iter
    (fun (i, j) -> if inside.(i) && inside.(j) then gain := !gain +. 1.0)
    t.edges;
  let add_position i =
    inside.(i) <- true;
    selection := i :: !selection;
    weight := !weight +. t.weight.(i);
    gain := !gain +. t.bonus.(i);
    List.iter (fun j -> if inside.(j) then gain := !gain +. 1.0) t.adj.(i)
  in
  let progress = ref true in
  while !progress do
    progress := false;
    (* Best single addition keeping the density at or above the
       threshold. *)
    let best = ref None in
    for i = 0 to k - 1 do
      if allowed_flag.(i) && not inside.(i) then begin
        let inside_deg =
          List.fold_left
            (fun acc j -> if inside.(j) then acc + 1 else acc)
            0 t.adj.(i)
        in
        let extra = t.bonus.(i) +. float_of_int inside_deg in
        let d = (!gain +. extra) /. (!weight +. t.weight.(i)) in
        if d >= threshold then
          match !best with
          | Some (_, best_d) when best_d >= d -> ()
          | _ -> best := Some (i, d)
      end
    done;
    match !best with
    | Some (i, _) ->
        add_position i;
        progress := true
    | None -> (
        (* No single edge extends; look for a dense disjoint star. *)
        let remaining = ref [] in
        for i = k - 1 downto 0 do
          if allowed_flag.(i) && not inside.(i) then
            remaining := i :: !remaining
        done;
        match densest_on t ~allowed_positions:!remaining with
        | Some (vertices, d) when d >= threshold && vertices <> [] ->
            List.iter (fun v -> add_position (Hashtbl.find t.pos v)) vertices;
            progress := true
        | _ -> ())
  done;
  List.map (fun i -> t.nodes.(i)) (List.sort compare !selection)

let section_4_1_choice t ~stored ~level ~divisor =
  let threshold = Float.ldexp 1.0 level /. divisor in
  let fresh () =
    match densest t with
    | Some (sel, _) when sel <> [] ->
        extend t ~start:sel ~allowed:(Array.to_list t.nodes) ~threshold
    | _ -> []
  in
  match stored with
  | Some (star, star_level) when star_level = level && star <> [] ->
      if density t star >= threshold then star
      else begin
        match densest_within t ~allowed:star with
        | Some (inner, d) when d >= threshold ->
            extend t ~start:inner ~allowed:star ~threshold
        | _ ->
            (* Claim 4.4 proves this branch unreachable; fall back to a
               fresh choice defensively. *)
            fresh ()
      end
  | _ -> fresh ()

let rounded_exponent rho =
  if rho <= 0.0 then None
  else
    let _, e = Float.frexp rho in
    Some e

let pow2 k = Float.ldexp 1.0 k
