(** Distributed minimum dominating set (Theorem 5.1).

    The CONGEST-model algorithm of Section 5: O(log Δ) guaranteed
    approximation, O(log n log Δ) rounds w.h.p. It runs as an honest
    message-passing state machine on {!Distsim.Engine}: each iteration
    spends six communication rounds (spread rounded densities two
    hops, announce candidacies with their random draws, vote, announce
    joins, propagate cover status), and every message fits in O(log n)
    bits — the run's metrics report the largest message so CONGEST
    compliance is checkable.

    Density here follows Section 5: the density of the star of [v] is
    the number of still-uncovered vertices among [v] and its
    neighbors. A vertex is covered once it or a neighbor joined the
    dominating set. Candidates are the rounded-density maxima of
    their 2-neighborhoods; uncovered vertices vote for the first
    candidate covering them in [(r_v, id)] order; a candidate keeping
    at least an eighth of its coverable vertices' votes joins. A
    vertex goes quiet once the maximal density in its 2-neighborhood
    reaches zero. *)

open Grapho

type result = {
  dominating_set : int list;
  iterations : int;
  metrics : Distsim.Engine.metrics;
}

type selection = Votes | Coin of float
(** [Votes] is the paper's scheme (guaranteed O(log Δ)); [Coin p] has
    each candidate join independently — the symmetry breaking of Jia,
    Rajaraman & Suel [43], whose O(log Δ) holds only in expectation.
    The paper's Section 5 contribution is exactly this difference. *)

val phase_names : string array
(** The six phase names a traced run stamps on its rounds, in order:
    [max1], [candidate], [vote], [tally], [cover], [restart]. Round
    [r >= 1] carries [phase_names.((r - 1) mod 6)]. *)

val run :
  ?rng:Rng.t ->
  ?model:Distsim.Model.t ->
  ?selection:selection ->
  ?sched:Distsim.Engine.sched ->
  ?par:int ->
  ?adversary:Distsim.Adversary.t ->
  ?profile:Distsim.Profile.t ->
  ?frugal:Distsim.Frugal.t ->
  ?retry:int ->
  ?trace:Distsim.Trace.sink ->
  Ugraph.t ->
  result
(** [model] defaults to CONGEST with the customary [O(log n)]-bit
    bandwidth; running under {!Distsim.Model.local} merely disables
    the bandwidth check; [selection] defaults to [Votes]. The returned
    set always dominates the graph. [sched] and [par] select the
    engine scheduler and the per-round domain count
    ({!Distsim.Engine.run}); per-vertex random streams are split from
    the seed before the engine runs, so results are bit-identical
    across schedulers and any [par]. [trace] (default
    {!Distsim.Trace.null}) receives the engine's round and send events
    plus one global ([vertex = -1]) {!phase_names} [Phase] marker per
    round. [adversary] injects deterministic faults
    ({!Distsim.Engine.run}); [retry] (default 1 = off) retransmits
    every message that many times and dedups the receive side
    ({!Distsim.Faults.with_retry}). [frugal] enables the engine's
    message-frugality layer ({!Distsim.Engine.run}): the dominating
    set and all logical metrics are bit-identical with and without it;
    only [metrics.sent_physical]/[sent_bits] shrink. *)

val is_dominating_set : Ugraph.t -> int list -> bool

val greedy : Ugraph.t -> int list
(** The classic sequential greedy (pick the vertex covering the most
    uncovered vertices): the O(ln Δ) baseline. *)

val reference : ?rng:Rng.t -> ?selection:selection -> Ugraph.t -> int list
(** A centralized mirror of the protocol, consuming randomness through
    the same per-vertex streams: with equal [rng] seeds it elects the
    identical dominating set as {!run} — the Section 5 analogue of the
    E13 protocol-equality validation. *)
