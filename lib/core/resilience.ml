(* Survivor-quality analysis. See resilience.mli. *)

open Grapho

type protocol = Spanner_local | Spanner_congest | Mds

type report = {
  protocol : protocol;
  schedule : string;
  n : int;
  m : int;
  terminated : bool;
  failure : string option;
  rounds : int;
  messages : int;
  dropped : int;
  crashed : int list;
  survivors : int;
  surviving_m : int;
  output_size : int;
  surviving_output : int;
  valid : bool;
  stretch : int;
}

let protocol_name = function
  | Spanner_local -> "spanner-local"
  | Spanner_congest -> "spanner-congest"
  | Mds -> "mds"

let surviving_subgraph g ~crashed ~schedule =
  let n = Ugraph.n g in
  let dead = Array.make (max n 1) false in
  List.iter (fun v -> if v >= 0 && v < n then dead.(v) <- true) crashed;
  let cut u v =
    List.exists
      (fun ((a, b), (_, upto)) ->
        upto = max_int && ((a = u && b = v) || (a = v && b = u)))
      schedule.Distsim.Faults.cuts
  in
  Ugraph.of_edge_iter ~expected_edges:(Ugraph.m g) ~n (fun emit ->
      Ugraph.iter_edges_uv
        (fun u v -> if not (dead.(u) || dead.(v) || cut u v) then emit u v)
        g)

let surviving_edges s ~graph =
  Edge.Set.filter
    (fun e ->
      let u, v = Edge.endpoints e in
      Ugraph.mem_edge graph u v)
    s

(* A dominating-set check that only grades the survivors: every
   non-crashed vertex must be in the set or adjacent (in the surviving
   subgraph) to a member. Crashed vertices are beyond saving. *)
let dominates_survivors g' ~alive set =
  let n = Ugraph.n g' in
  let in_set = Array.make (max n 1) false in
  List.iter (fun v -> if v >= 0 && v < n then in_set.(v) <- true) set;
  let ok = ref true in
  for v = 0 to n - 1 do
    if alive.(v) && not in_set.(v) then begin
      let dominated =
        Ugraph.fold_neighbors
          (fun acc u -> acc || in_set.(u))
          g' v false
      in
      if not dominated then ok := false
    end
  done;
  !ok

let run ?(seed = 0x2D5F1) ?(retry = 1) ?sched ?par ?max_rounds ~protocol
    ~schedule g =
  let n = Ugraph.n g in
  let m = Ugraph.m g in
  let adversary = Distsim.Faults.compile ~n schedule in
  (* The stats sink survives a mid-run exception, so round/message/drop
     counts are available even when the run dies. *)
  let stats = Distsim.Trace.stats () in
  let trace = Distsim.Trace.stats_sink stats in
  let outcome =
    try
      match protocol with
      | Spanner_local ->
          let r =
            Two_spanner_local.run ~seed ?max_rounds ?sched ?par ~adversary
              ~retry ~trace g
          in
          Ok (`Spanner r.Two_spanner_local.spanner)
      | Spanner_congest ->
          let r =
            Two_spanner_local.run_congest ~seed ?max_rounds ?sched ?par
              ~adversary ~retry ~trace g
          in
          Ok (`Spanner r.Two_spanner_local.spanner)
      | Mds ->
          let r =
            Mds.run ~rng:(Rng.create seed) ?sched ?par ~adversary ~retry
              ~trace g
          in
          Ok (`Mds r.Mds.dominating_set)
    with
    | Failure msg -> Error msg
    | Invalid_argument msg -> Error msg
    | Distsim.Chunked.Bandwidth_exceeded { vertex; round; bits; budget } ->
        Error
          (Printf.sprintf
             "bandwidth audit: vertex %d round %d sent %d bits (budget %d)"
             vertex round bits budget)
  in
  let series = Distsim.Trace.series stats in
  let rounds = max 0 (Array.length series.Distsim.Trace.rounds - 1) in
  let messages, dropped =
    Array.fold_left
      (fun (m, d) r ->
        (m + r.Distsim.Trace.messages, d + r.Distsim.Trace.dropped))
      (0, 0) series.Distsim.Trace.rounds
  in
  let crashed = Distsim.Adversary.crashed_list adversary in
  let survivors = n - List.length crashed in
  let g' = surviving_subgraph g ~crashed ~schedule in
  let surviving_m = Ugraph.m g' in
  let alive = Array.make (max n 1) true in
  List.iter (fun v -> if v >= 0 && v < n then alive.(v) <- false) crashed;
  let terminated, failure, output_size, surviving_output, valid, stretch =
    match outcome with
    | Error msg -> (false, Some msg, 0, 0, false, -1)
    | Ok (`Spanner s) ->
        let s' = surviving_edges s ~graph:g' in
        let valid = Spanner_check.is_spanner g' s' ~k:2 in
        let st = Spanner_check.stretch g' s' in
        ( true,
          None,
          Edge.Set.cardinal s,
          Edge.Set.cardinal s',
          valid,
          if st = max_int then -1 else st )
    | Ok (`Mds d) ->
        let d' = List.filter (fun v -> v < n && alive.(v)) d in
        ( true,
          None,
          List.length d,
          List.length d',
          dominates_survivors g' ~alive d',
          0 )
  in
  {
    protocol;
    schedule = Distsim.Faults.to_string schedule;
    n;
    m;
    terminated;
    failure;
    rounds;
    messages;
    dropped;
    crashed;
    survivors;
    surviving_m;
    output_size;
    surviving_output;
    valid;
    stretch;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>protocol         %s@,schedule         %s@,graph            n=%d \
     m=%d@,terminated       %b%s@,rounds           %d@,messages         %d \
     (%d dropped)@,crashed          %d%s@,surviving graph  n'=%d \
     m'=%d@,output           %d edges/members (%d survive)@,verdict          \
     %s@]"
    (protocol_name r.protocol)
    (if r.schedule = "" then "(none)" else r.schedule)
    r.n r.m r.terminated
    (match r.failure with None -> "" | Some msg -> " (" ^ msg ^ ")")
    r.rounds r.messages r.dropped (List.length r.crashed)
    (if r.crashed = [] then ""
     else
       " [" ^ String.concat "," (List.map string_of_int r.crashed) ^ "]")
    r.survivors r.surviving_m r.output_size r.surviving_output
    (if r.valid then
       if r.stretch >= 0 then
         Printf.sprintf "VALID (stretch %d on survivors)" r.stretch
       else "VALID"
     else if not r.terminated then "FAILED"
     else
       Printf.sprintf "INVALID (stretch %s on survivors)"
         (if r.stretch = -1 then "infinite" else string_of_int r.stretch))
