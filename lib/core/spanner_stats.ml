open Grapho

type t = {
  edges : int;
  graph_edges : int;
  compression : float;
  max_stretch : int;
  mean_stretch : float;
  stretch_histogram : (int * int) list;
}

(* Streaming accumulator: histogram, count, running sum and max — so
   computing stats over an m-edge graph never materializes an m-long
   stretch list. *)
type acc = {
  histogram : (int, int) Hashtbl.t;
  mutable finite_sum : int;
  mutable finite_count : int;
  mutable max_stretch : int;
}

let acc_create () =
  {
    histogram = Hashtbl.create 8;
    finite_sum = 0;
    finite_count = 0;
    max_stretch = 0;
  }

let acc_add a s =
  Hashtbl.replace a.histogram s
    (1 + Option.value ~default:0 (Hashtbl.find_opt a.histogram s));
  if s < max_int then begin
    a.finite_sum <- a.finite_sum + s;
    a.finite_count <- a.finite_count + 1
  end;
  if s > a.max_stretch then a.max_stretch <- s

let acc_finish a ~edges ~graph_edges =
  let mean =
    if a.finite_count = 0 then 0.0
    else float_of_int a.finite_sum /. float_of_int a.finite_count
  in
  {
    edges;
    graph_edges;
    compression = float_of_int edges /. float_of_int (max 1 graph_edges);
    max_stretch = a.max_stretch;
    mean_stretch = mean;
    stretch_histogram =
      List.sort compare
        (Hashtbl.fold (fun s c acc -> (s, c) :: acc) a.histogram []);
  }

let compute g s =
  let n = Ugraph.n g in
  let adj = Traversal.adjacency_of_set ~n s in
  let a = acc_create () in
  Ugraph.iter_edges_uv
    (fun u v ->
      let dist = Array.make n (-1) in
      let q = Queue.create () in
      dist.(u) <- 0;
      Queue.add u q;
      while not (Queue.is_empty q) do
        let x = Queue.pop q in
        List.iter
          (fun y ->
            if dist.(y) = -1 then begin
              dist.(y) <- dist.(x) + 1;
              Queue.add y q
            end)
          adj.(x)
      done;
      acc_add a (if dist.(v) = -1 then max_int else dist.(v)))
    g;
  acc_finish a ~edges:(Edge.Set.cardinal s) ~graph_edges:(Ugraph.m g)

let directed_compute g s =
  let n = Dgraph.n g in
  let adj = Traversal.directed_adjacency_of_set ~n s in
  let a = acc_create () in
  Dgraph.iter_edges_uv
    (fun u v ->
      let dist = Array.make n (-1) in
      let q = Queue.create () in
      dist.(u) <- 0;
      Queue.add u q;
      while not (Queue.is_empty q) do
        let x = Queue.pop q in
        List.iter
          (fun y ->
            if dist.(y) = -1 then begin
              dist.(y) <- dist.(x) + 1;
              Queue.add y q
            end)
          adj.(x)
      done;
      acc_add a (if dist.(v) = -1 then max_int else dist.(v)))
    g;
  acc_finish a
    ~edges:(Edge.Directed.Set.cardinal s)
    ~graph_edges:(Dgraph.m g)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>edges: %d / %d (%.1f%%)@,max stretch: %s@,mean stretch: %.3f@,histogram:"
    t.edges t.graph_edges (100.0 *. t.compression)
    (if t.max_stretch = max_int then "unreachable pair!"
     else string_of_int t.max_stretch)
    t.mean_stretch;
  List.iter
    (fun (s, c) ->
      if s = max_int then Format.fprintf ppf "@,  unreachable: %d" c
      else Format.fprintf ppf "@,  %d hops: %d" s c)
    t.stretch_histogram;
  Format.fprintf ppf "@]"
