open Grapho

(* Incremental 2-spanner repair under edge churn.

   Correctness rests on a locality lemma for stretch-2 certificates.
   Write g for the pre-tick graph, g' for the post-tick graph, S for
   the maintained spanner of g and S' for its surviving restriction
   to g'. A g'-edge (x, y) is covered by S' iff (x, y) ∈ S' or the
   two endpoints share an S'-neighbor. Which g'-edges can have lost
   their certificate relative to S?

   - An edge covered by membership loses it only by being deleted —
     then it is no longer a g'-edge and needs nothing.
   - An edge (x, y) covered through a midpoint w loses the witness
     only if a spanner edge (x, w) or (w, y) left S. Spanner edges
     leave S only by being deleted from the graph (S' is the
     mem_edge restriction), so the broken edge is incident to a
     deleted edge's endpoint.
   - An inserted edge never had a certificate; its endpoints are
     update endpoints by definition.

   So every possibly-broken g'-edge is incident to a "seed" — an
   endpoint of some deleted or inserted edge — and a sweep of the
   g'-edges incident to seeds, probing each against S''s CSR, finds
   exactly the uncovered edges. The dirty ball D is then the broken
   edges' endpoints plus all their common g'-neighbors (the 2-path
   midpoints a repair could use); re-running the protocol on g'[D]
   yields a 2-spanner R of g'[D], and since every broken edge has
   both endpoints in D it is an edge of g'[D], hence covered by R.
   S'' = S' ∪ R therefore covers every g'-edge: unbroken ones keep
   their S' certificate (coverage is monotone in the edge set),
   broken ones get one from R. *)

type tick_stats = {
  tick : int;
  deleted : int;
  inserted : int;
  seeds : int;
  candidates : int;
  broken : int;
  dirty : int;
  repair_rounds : int;
  repair_iterations : int;
  spanner_size : int;
}

type t = {
  seed : int;
  mutable graph : Ugraph.t;
  mutable spanner : Edge.Set.t;
  mutable tick : int;
  builder : Ugraph.Builder.builder;
  mark : Bytes.t;  (* bit 0: seed this tick, bit 1: in the dirty ball *)
  seed_buf : Bigcsr.buf;
  dirty_buf : Bigcsr.buf;
}

let create ?(seed = 0x2D5F1) ~spanner g =
  {
    seed;
    graph = g;
    spanner;
    tick = 0;
    builder = Ugraph.Builder.create ~expected_edges:(Ugraph.m g)
        ~n:(Ugraph.n g) ();
    mark = Bytes.make (Ugraph.n g) '\000';
    seed_buf = Bigcsr.buf_create 64;
    dirty_buf = Bigcsr.buf_create 64;
  }

let bootstrap ?(seed = 0x2D5F1) ?sched ?par ?trace g =
  let r = Two_spanner_local.run ~seed ?sched ?par ?trace g in
  (create ~seed ~spanner:r.spanner g, r)

let graph t = t.graph
let spanner t = t.spanner
let tick t = t.tick
let valid t = Spanner_check.is_2_spanner_fast t.graph t.spanner

(* Repair seeds drift per tick so consecutive dirty-ball runs do not
   reuse vote streams; same SplitMix-style decorrelation as
   {!Randomness.derived}. *)
let tick_seed t tick = t.seed lxor (tick * 0x85EBCA77) lxor 0x165667B1

let buf_get (b : Bigcsr.buf) i = Bigarray.Array1.get b.data i

let apply ?sched ?par ?adversary ?retry ?trace t d =
  let deleted = Ugraph.Delta.deletes d
  and inserted = Ugraph.Delta.inserts d in
  (* A rejected delta raises here, before any state mutates. *)
  let g' = Ugraph.apply_delta ~builder:t.builder t.graph d in
  let n = Ugraph.n g' in
  let s' = Resilience.surviving_edges t.spanner ~graph:g' in
  let mark = t.mark in
  let is_seed v = Char.code (Bytes.unsafe_get mark v) land 1 <> 0 in
  let set_seed v =
    let c = Char.code (Bytes.unsafe_get mark v) in
    if c land 1 = 0 then begin
      Bytes.unsafe_set mark v (Char.unsafe_chr (c lor 1));
      Bigcsr.buf_push t.seed_buf v
    end
  in
  let set_dirty v =
    let c = Char.code (Bytes.unsafe_get mark v) in
    if c land 2 = 0 then begin
      Bytes.unsafe_set mark v (Char.unsafe_chr (c lor 2));
      Bigcsr.buf_push t.dirty_buf v
    end
  in
  Ugraph.Delta.iter_deletes (fun u v -> set_seed u; set_seed v) d;
  Ugraph.Delta.iter_inserts (fun u v -> set_seed u; set_seed v) d;
  let seeds = t.seed_buf.len in
  (* Candidate sweep: every g'-edge incident to a seed, each probed
     once (a seed-seed edge is charged to its larger endpoint). *)
  let scsr = Spanner_check.spanner_csr ~n s' in
  let candidates = ref 0 and broken = ref 0 in
  for i = 0 to seeds - 1 do
    let u = buf_get t.seed_buf i in
    Ugraph.iter_neighbors
      (fun v ->
        if not (is_seed v && v < u) then begin
          incr candidates;
          if not (Spanner_check.covers_edge_2 ~spanner_csr:scsr u v)
          then begin
            incr broken;
            set_dirty u;
            set_dirty v;
            Ugraph.iter_common_neighbors set_dirty g' u v
          end
        end)
      g' u
  done;
  let dirty = t.dirty_buf.len in
  let repair_rounds = ref 0 and repair_iterations = ref 0 in
  let repaired =
    if !broken = 0 then s'
    else begin
      Bigcsr.sort_range t.dirty_buf.data 0 dirty;
      let active = Array.init dirty (fun i -> buf_get t.dirty_buf i) in
      let r =
        Two_spanner_local.run
          ~seed:(tick_seed t (t.tick + 1))
          ?sched ?par ?adversary ?retry ?trace ~active g'
      in
      repair_rounds := r.metrics.rounds;
      repair_iterations := r.iterations;
      Edge.Set.union s' r.spanner
    end
  in
  for i = 0 to t.seed_buf.len - 1 do
    Bytes.unsafe_set mark (buf_get t.seed_buf i) '\000'
  done;
  for i = 0 to t.dirty_buf.len - 1 do
    Bytes.unsafe_set mark (buf_get t.dirty_buf i) '\000'
  done;
  Bigcsr.buf_reset t.seed_buf;
  Bigcsr.buf_reset t.dirty_buf;
  t.graph <- g';
  t.spanner <- repaired;
  t.tick <- t.tick + 1;
  {
    tick = t.tick;
    deleted;
    inserted;
    seeds;
    candidates = !candidates;
    broken = !broken;
    dirty;
    repair_rounds = !repair_rounds;
    repair_iterations = !repair_iterations;
    spanner_size = Edge.Set.cardinal repaired;
  }

(* ------------------------------------------------------------------ *)
(* Seeded churn generation: [replace] uniform deletions of existing
   edges plus [replace] uniform insertions of absent ones. *)

let churn ~rng ~replace g d =
  if replace < 0 then invalid_arg "Incremental.churn: negative replace";
  Ugraph.Delta.reset d;
  let n = Ugraph.n g and m = Ugraph.m g in
  let dels = min replace m in
  let chosen = Hashtbl.create (4 * (dels + 1)) in
  while Ugraph.Delta.deletes d < dels do
    let u, v = Ugraph.slot_endpoints g (Rng.int rng (2 * m)) in
    let key = (min u v * n) + max u v in
    if not (Hashtbl.mem chosen key) then begin
      Hashtbl.replace chosen key ();
      Ugraph.Delta.add_delete d u v
    end
  done;
  (* Insertions must be absent from g (a just-deleted edge is still
     "present" to [apply_delta]'s checks, and is excluded here for
     free by the [mem_edge] probe). Possible only when the graph is
     not complete; the attempt cap turns a pathological density into
     an error instead of a hang. *)
  let ins = if n < 2 then 0 else replace in
  let attempts = ref 0 in
  let max_attempts = 100 * (ins + 10) in
  while Ugraph.Delta.inserts d < ins && !attempts < max_attempts do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Ugraph.mem_edge g u v) then begin
      let key = (min u v * n) + max u v in
      if not (Hashtbl.mem chosen key) then begin
        Hashtbl.replace chosen key ();
        Ugraph.Delta.add_insert d u v
      end
    end
  done;
  if Ugraph.Delta.inserts d < ins then
    invalid_arg "Incremental.churn: graph too dense to place insertions"
