(** Distributed approximation of minimum 2-spanners (Theorem 1.3).

    The LOCAL-model algorithm of Section 4: guaranteed approximation
    ratio O(log (m/n)) with polynomial local computation, O(log n ·
    log Δ) rounds w.h.p. *)

open Grapho

type result = {
  spanner : Edge.Set.t;
  iterations : int;
  rounds : int;
  stars_added : int;
  candidate_count : int;
}

val run :
  ?rng:Rng.t ->
  ?seed:int ->
  ?max_iterations:int ->
  ?selection:Two_spanner_engine.selection ->
  ?trace:(Two_spanner_engine.iteration_stats -> unit) ->
  ?sink:Distsim.Trace.sink ->
  Ugraph.t ->
  result
(** Runs on a (not necessarily connected) undirected graph; the result
    is always a valid 2-spanner. [sink] (default {!Distsim.Trace.null})
    receives the engine's structured phase markers and counters — see
    {!Two_spanner_engine.run}. *)

val ratio_bound : Ugraph.t -> float
(** The guaranteed bound [c · (log2 (m/n) + 2)] with the paper's
    constant [c = 8], for display next to measured ratios. *)
