open Grapho

type t = { color : int array; leader : int array; colors : int }

(* BFS among live vertices only, truncated at [cap]. *)
let live_distances g live source cap =
  let n = Ugraph.n g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(source) <- 0;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    if dist.(u) < cap then
      Ugraph.iter_neighbors
        (fun v ->
          if live.(v) && dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        g u
  done;
  dist

let default_cap n =
  let rec log2c acc v = if v <= 1 then acc else log2c (acc + 1) ((v + 1) / 2) in
  log2c 0 (max 2 n) + 2

let run ?rng ?(p = 0.5) ?radius_cap g =
  let rng = match rng with Some r -> r | None -> Rng.create 0x115A5 in
  let n = Ugraph.n g in
  let cap = match radius_cap with Some c -> c | None -> default_cap n in
  let color = Array.make n (-1) in
  let leader = Array.make n (-1) in
  let live = Array.make n true in
  let remaining = ref n in
  let phase = ref 0 in
  let attempts = ref 0 in
  while !remaining > 0 do
    let radius = Array.make n 0 in
    for y = 0 to n - 1 do
      if live.(y) then radius.(y) <- min cap (Rng.geometric rng p)
    done;
    (* capture.(u) = (best id y, d(u,y)) over live y with d <= r_y *)
    let capture = Array.make n (-1, max_int) in
    for y = 0 to n - 1 do
      if live.(y) then begin
        let dist = live_distances g live y radius.(y) in
        for u = 0 to n - 1 do
          if live.(u) && dist.(u) <= radius.(y) then begin
            let best, _ = capture.(u) in
            if y > best then capture.(u) <- (y, dist.(u))
          end
        done
      end
    done;
    let progressed = ref false in
    for u = 0 to n - 1 do
      if live.(u) then begin
        let y, d = capture.(u) in
        assert (y >= 0) (* u captures itself: d(u,u) = 0 <= r_u *);
        (* Strict inequality keeps same-phase clusters non-adjacent;
           boundary vertices are deferred. *)
        if d < radius.(y) then begin
          color.(u) <- !phase;
          leader.(u) <- y;
          live.(u) <- false;
          decr remaining;
          progressed := true
        end
      end
    done;
    (* An all-boundary phase clusters nobody; redraw the radii without
       consuming a color. Each vertex is deferred with probability at
       most 1/2, so this happens O(1) times in expectation. *)
    if !progressed then incr phase;
    incr attempts;
    if !attempts > 200 * (n + 4) then
      failwith "Decomposition.run: radii draws failed to make progress"
  done;
  { color; leader; colors = !phase }

let clusters_of_color t c =
  let by_leader = Hashtbl.create 16 in
  Array.iteri
    (fun v col ->
      if col = c then
        Hashtbl.replace by_leader t.leader.(v)
          (v :: Option.value ~default:[] (Hashtbl.find_opt by_leader t.leader.(v))))
    t.color;
  Hashtbl.fold (fun _ members acc -> List.sort compare members :: acc)
    by_leader []

let weak_diameter g members =
  match members with
  | [] -> 0
  | _ ->
      List.fold_left
        (fun acc v ->
          let dist = Traversal.bfs_distances g v in
          List.fold_left (fun acc u -> max acc dist.(u)) acc members)
        0 members

let check g t =
  let n = Ugraph.n g in
  let ok = ref true in
  for v = 0 to n - 1 do
    if t.color.(v) < 0 || t.leader.(v) < 0 then ok := false
  done;
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      if t.color.(u) = t.color.(v) && t.leader.(u) <> t.leader.(v) then
        ok := false)
    g;
  let cap = default_cap n in
  for c = 0 to t.colors - 1 do
    List.iter
      (fun members ->
        if weak_diameter g members > 4 * (cap + 1) then ok := false)
      (clusters_of_color t c)
  done;
  !ok
