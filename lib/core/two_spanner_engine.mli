(** The distributed 2-spanner algorithm of Section 4, as a generic
    engine shared by the unweighted (§4), weighted (§4.3.2) and
    client-server (§4.3.3) variants.

    The engine executes the paper's iteration faithfully:

    + every vertex computes its rounded density (densest star over its
      still-uncovered 2-spannable targets, by parametric flow) and
      learns the maximum over its 2-neighborhood;
    + vertices whose rounded density attains that maximum (and whose
      true density passes the variant's candidacy bar) become
      candidates and choose a star of density at least a quarter of
      their rounded density, with the monotone star-choice mechanism
      of Section 4.1;
    + candidates draw uniform values in [{1..n^4}]; each uncovered
      target 2-spanned by at least one candidate star votes for the
      first such candidate in [(value, id)] order;
    + a candidate star receiving at least an eighth of the votes of
      the targets it 2-spans joins the spanner;
    + coverage and the sets [H_v] are updated, and a vertex whose
      2-neighborhood's maximal density has dropped to the variant's
      floor terminates, adding its remaining uncovered incident
      targets (those the variant allows).

    Every decision of a vertex reads only its own state and its
    2-neighborhood, so each iteration is implementable in O(1) LOCAL
    rounds; {!rounds_per_iteration} is the constant we charge, and the
    returned [rounds] is that constant times the iteration count. *)

open Grapho

type spec = {
  graph : Ugraph.t;  (** communication topology *)
  targets : Edge.Set.t;  (** edges that must be covered *)
  usable : Edge.Set.t;  (** edges the spanner may use *)
  weight : int -> int -> float;
      (** cost of a usable edge, queried by endpoints so hot loops
          never allocate an [Edge.t] per probe (see
          [Grapho.Weights.get_uv]); weight-zero edges are added to the
          spanner up front, as the weighted variant prescribes *)
  candidate_ok : int -> float -> bool;
      (** [candidate_ok v rho]: may [v] (true density [rho]) stand as
          a candidate? (unweighted: [rho >= 1]) *)
  terminate_ok : int -> float -> bool;
      (** [terminate_ok v max_rho]: does [v] terminate when the
          maximal true density in its 2-neighborhood is [max_rho]?
          (unweighted: [max_rho <= 1]) *)
  finalize : Edge.t -> bool;
      (** which of [v]'s uncovered incident targets are added on
          termination (they must be usable) *)
  dominance_includes_terminated : bool;
      (** whether terminated vertices still take part in the rounded-
          density maxima that gate candidacy. The paper compares
          against the whole 2-neighborhood (true); the weighted
          variant's per-vertex termination floors make that unsafe
          against stalls, so it passes false. *)
  selection : selection;
      (** how candidate stars are admitted to the spanner; the paper's
          rule is [Votes 0.125] *)
}

and selection =
  | Votes of float
      (** the paper's voting scheme: a star joins when it receives at
          least the given fraction of the votes of the targets it
          2-spans (1/8 in the paper; other values for ablations) *)
  | Coin of float
      (** symmetry breaking by independent coin flips with the given
          acceptance probability — the Dinitz–Krauthgamer-style rule
          whose ratio holds only in expectation; kept as a baseline *)
  | All  (** every candidate star joins; degrades the ratio *)

type iteration_stats = {
  iteration : int;
  uncovered_before : int;  (** uncovered targets entering the iteration *)
  max_density : float;  (** largest true density at the iteration start *)
  candidates : int;
  stars_accepted : int;
  terminated_now : int;  (** vertices that terminated this iteration *)
}
(** One row of the optional per-iteration trace: enough to watch the
    potential of Lemma 4.5 fall and the density levels step down. *)

type result = {
  spanner : Edge.Set.t;
  iterations : int;
  rounds : int;  (** [rounds_per_iteration * iterations] LOCAL rounds *)
  stars_added : int;
  candidate_count : int;  (** candidacies summed over iterations *)
  votes_cast : int;
  uncovered : Edge.Set.t;
      (** targets left uncovered: exactly the client-server targets no
          usable 2-path can ever cover; empty otherwise *)
}

val rounds_per_iteration : int
(** 8: two rounds to spread densities to the 2-neighborhood, one each
    for candidate stars, random values and votes, one to announce
    accepted stars, and two to refresh the [H_v] sets. *)

val run :
  ?rng:Rng.t ->
  ?seed:int ->
  ?max_iterations:int ->
  ?trace:(iteration_stats -> unit) ->
  ?sink:Distsim.Trace.sink ->
  spec ->
  result
(** Executes the algorithm to global termination. All vote values are
    drawn through {!Randomness} from [seed] (which, when absent, is
    derived from [rng], which in turn defaults to a fixed seed) so
    that the message-passing implementation {!Two_spanner_local} run
    with the same seed produces the identical spanner.
    [max_iterations] (default [10·(log2 n + 2)·(log2 Δ + 2) + 100])
    guards against the improbable event that the random voting
    stalls, raising [Failure].

    [sink] (default {!Distsim.Trace.null}) receives structured phase
    markers with [round] = iteration number: [Phase {name =
    "candidate"}] per candidacy, ["commit"] per admitted star,
    ["terminate"] per terminating vertex, and [Counter]s ["uncovered"]
    (uncovered targets entering each iteration, summed across
    iterations by [Trace.series]) and ["votes"] (ballots cast). The
    legacy [trace] callback still delivers one {!iteration_stats} row
    per iteration. *)
