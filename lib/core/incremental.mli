(** Incremental 2-spanner repair under batched edge churn.

    Maintains a graph together with a valid stretch-2 spanner across
    {!Grapho.Ugraph.Delta} updates, re-running the Section 4 LOCAL
    protocol only on the {e dirty ball} around the update instead of
    the whole graph:

    + the delta is applied ({!Grapho.Ugraph.apply_delta}, through a
      reused streaming builder) and the spanner restricted to its
      surviving edges ({!Resilience.surviving_edges});
    + a certificate sweep probes every surviving-graph edge incident
      to an update endpoint against the surviving spanner's CSR
      ({!Spanner_check.covers_edge_2}). A locality lemma (proved in
      the implementation header) shows these are the only edges whose
      stretch-2 certificate can have broken, so the sweep is exact —
      clean regions are pruned without being visited;
    + the dirty ball [D] — broken edges' endpoints plus all their
      common surviving-graph neighbors — is repaired by
      {!Two_spanner_local.run}[ ~active:D] on the induced subgraph,
      and the repair unioned into the surviving spanner. Coverage is
      monotone in the edge set, so the union stays valid everywhere.

    The repaired spanner is generally {e not} the spanner a full
    recompute would produce (the protocol sees a different
    subproblem), but it is a valid 2-spanner of the updated graph
    after every tick, and the whole pipeline is deterministic in
    [(seed, initial graph, delta sequence)] — bit-identical across
    engine schedulers and [par] values, like the protocol itself.
    Per-tick cost scales with the churn footprint (seed degrees plus
    dirty-ball size), not with [n]; the churn bench measures the
    resulting speedup against full recompute. *)

open Grapho

type t
(** Mutable repair state: current graph, current spanner, tick
    counter, plus reused off-heap workspaces (delta-application
    builder, mark bytes, seed/dirty vertex buffers) so steady-state
    ticks do not grow the heap. *)

type tick_stats = {
  tick : int;  (** 1-based tick this record describes *)
  deleted : int;  (** edges removed by the delta *)
  inserted : int;  (** edges added by the delta *)
  seeds : int;  (** distinct endpoints of changed edges *)
  candidates : int;  (** seed-incident edges certificate-probed *)
  broken : int;  (** of those, how many had lost their certificate *)
  dirty : int;  (** dirty-ball size |D| (0 when nothing broke) *)
  repair_rounds : int;  (** engine rounds of the ball-local re-run *)
  repair_iterations : int;  (** protocol iterations of the re-run *)
  spanner_size : int;  (** |S| after the tick *)
}

val create : ?seed:int -> spanner:Edge.Set.t -> Ugraph.t -> t
(** Wrap an existing graph and a valid 2-spanner of it (validity is
    the caller's obligation — typically the output of a full
    protocol run). [seed] keys the repair runs' vote randomness. *)

val bootstrap :
  ?seed:int ->
  ?sched:Distsim.Engine.sched ->
  ?par:int ->
  ?trace:Distsim.Trace.sink ->
  Ugraph.t ->
  t * Two_spanner_local.result
(** Run the full protocol once and wrap its output — the
    tick-0 baseline of the churn bench. [trace] observes the
    bootstrap run's engine events (the daemon's SUBSCRIBE hook). *)

val apply :
  ?sched:Distsim.Engine.sched ->
  ?par:int ->
  ?adversary:Distsim.Adversary.t ->
  ?retry:int ->
  ?trace:Distsim.Trace.sink ->
  t ->
  Ugraph.Delta.t ->
  tick_stats
(** One churn tick: apply the delta, find the broken certificates,
    repair the dirty ball, advance the tick counter. A rejected
    delta ({!Grapho.Ugraph.apply_delta}'s [Invalid_argument]) leaves
    the state untouched. [sched]/[par] configure the repair run's
    engine exactly as in {!Two_spanner_local.run}; the resulting
    spanner is bit-identical across all of them. [adversary]/[retry]
    subject the ball-local re-run to a fault schedule (churn + drops
    simultaneously — the PR 5 composition): the adversary's fraction
    crashes resolve over the full-graph [n] and its coin stream is
    consulted in merge order, so faulted ticks remain bit-identical
    across schedulers and [par] values too. Note that under crashes
    the repair run can terminate without covering every dirty edge —
    {!valid} is the caller's verdict, exactly as in the resilience
    harness. [trace] observes the repair run's engine events; ticks
    that break nothing emit no events. *)

val graph : t -> Ugraph.t
(** The current (post-latest-tick) graph. *)

val spanner : t -> Edge.Set.t
(** The maintained spanner of {!graph}. *)

val tick : t -> int
(** Ticks applied so far. *)

val valid : t -> bool
(** [Spanner_check.is_2_spanner_fast (graph t) (spanner t)] — the
    per-tick verdict the churn bench records. *)

val churn : rng:Rng.t -> replace:int -> Ugraph.t -> Ugraph.Delta.t -> unit
(** [churn ~rng ~replace g d] resets [d] and fills it with [replace]
    uniform deletions of existing edges of [g] (capped at [m]) plus
    [replace] uniform insertions of absent non-loop edges, all drawn
    from [rng] — the seeded churn traces of the bench and tests.
    Raises [Invalid_argument] if the graph is too dense to place the
    insertions. *)
