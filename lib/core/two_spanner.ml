open Grapho

type result = {
  spanner : Edge.Set.t;
  iterations : int;
  rounds : int;
  stars_added : int;
  candidate_count : int;
}

let run ?rng ?seed ?max_iterations ?(selection = Two_spanner_engine.Votes 0.125)
    ?trace ?sink g =
  let edges = Ugraph.edge_set g in
  let spec =
    {
      Two_spanner_engine.graph = g;
      targets = edges;
      usable = edges;
      weight = (fun _ _ -> 1.0);
      candidate_ok = (fun _ rho -> rho >= 1.0);
      terminate_ok = (fun _ max_rho -> max_rho <= 1.0);
      finalize = (fun _ -> true);
      dominance_includes_terminated = true;
      selection;
    }
  in
  let r = Two_spanner_engine.run ?rng ?seed ?max_iterations ?trace ?sink spec in
  assert (Edge.Set.is_empty r.uncovered);
  {
    spanner = r.spanner;
    iterations = r.iterations;
    rounds = r.rounds;
    stars_added = r.stars_added;
    candidate_count = r.candidate_count;
  }

let ratio_bound g =
  let n = float_of_int (max 1 (Ugraph.n g)) in
  let m = float_of_int (max 1 (Ugraph.m g)) in
  8.0 *. ((Float.log (m /. n) /. Float.log 2.0) +. 2.0)
