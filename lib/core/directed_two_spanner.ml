open Grapho
module Iset = Set.Make (Int)
module Dset = Edge.Directed.Set

type result = {
  spanner : Dset.t;
  iterations : int;
  rounds : int;
  stars_added : int;
  candidate_count : int;
}

(* ------------------------------------------------------------------ *)
(* Directed coverage tracker: a target (u,w) is covered once it is in
   the spanner or the spanner holds a directed 2-path u -> z -> w.    *)

type cover = {
  n : int;
  g : Dgraph.t;
  mutable spanner : Dset.t;
  out_h : Iset.t array;  (* spanner out-neighbors *)
  in_h : Iset.t array;
  mutable uncovered : Dset.t;
  hv : Dset.t array;  (* uncovered targets 2-spannable by each center *)
  out_un : Dset.t array;  (* uncovered targets by source vertex *)
  in_un : Dset.t array;  (* uncovered targets by destination vertex *)
}

(* Centers able to 2-span (u,w): vertices z with (u,z) and (z,w) in G. *)
let spanning_centers g u w =
  let outs = Dgraph.out_neighbors g u in
  Array.fold_left
    (fun acc z -> if z <> w && Dgraph.mem_edge g z w then z :: acc else acc)
    [] outs

let cover_create g =
  let n = Dgraph.n g in
  let c =
    {
      n;
      g;
      spanner = Dset.empty;
      out_h = Array.make n Iset.empty;
      in_h = Array.make n Iset.empty;
      uncovered = Dgraph.edge_set g;
      hv = Array.make n Dset.empty;
      out_un = Array.make n Dset.empty;
      in_un = Array.make n Dset.empty;
    }
  in
  Dset.iter
    (fun (u, w) ->
      c.out_un.(u) <- Dset.add (u, w) c.out_un.(u);
      c.in_un.(w) <- Dset.add (u, w) c.in_un.(w);
      List.iter
        (fun z -> c.hv.(z) <- Dset.add (u, w) c.hv.(z))
        (spanning_centers g u w))
    c.uncovered;
  c

let covered_now c (u, w) =
  Dset.mem (u, w) c.spanner
  ||
  let a, b =
    if Iset.cardinal c.out_h.(u) <= Iset.cardinal c.in_h.(w) then
      (c.out_h.(u), c.in_h.(w))
    else (c.in_h.(w), c.out_h.(u))
  in
  Iset.exists (fun z -> Iset.mem z b) a

let cover_add c edges ~dirty =
  let touched_src = ref Iset.empty and touched_dst = ref Iset.empty in
  Dset.iter
    (fun (a, b) ->
      if not (Dgraph.mem_edge c.g a b) then
        invalid_arg "Directed_two_spanner: edge not in graph";
      if not (Dset.mem (a, b) c.spanner) then begin
        c.spanner <- Dset.add (a, b) c.spanner;
        c.out_h.(a) <- Iset.add b c.out_h.(a);
        c.in_h.(b) <- Iset.add a c.in_h.(b);
        touched_src := Iset.add a !touched_src;
        touched_dst := Iset.add b !touched_dst
      end)
    edges;
  (* A target covered by a brand-new 2-path u -> z -> w uses a new edge
     (u,z) (so u gained an out-edge) or (z,w) (so w gained an in-edge);
     the target itself being added touches both. *)
  let candidates =
    Iset.fold
      (fun v acc -> Dset.union acc c.out_un.(v))
      !touched_src
      (Iset.fold
         (fun v acc -> Dset.union acc c.in_un.(v))
         !touched_dst Dset.empty)
  in
  let dirtied = ref Iset.empty in
  Dset.iter
    (fun (u, w) ->
      if Dset.mem (u, w) c.uncovered && covered_now c (u, w) then begin
        c.uncovered <- Dset.remove (u, w) c.uncovered;
        c.out_un.(u) <- Dset.remove (u, w) c.out_un.(u);
        c.in_un.(w) <- Dset.remove (u, w) c.in_un.(w);
        List.iter
          (fun z ->
            c.hv.(z) <- Dset.remove (u, w) c.hv.(z);
            dirtied := Iset.add z !dirtied)
          (spanning_centers c.g u w)
      end)
    candidates;
  Iset.iter dirty !dirtied

(* ------------------------------------------------------------------ *)
(* Star machinery.                                                    *)

(* Directed density of the star at [v] selecting underlying neighbors
   [sel]: 2-spanned uncovered targets over the number of directed star
   edges (every existing orientation of each chosen edge is taken). *)
let directed_density c v sel =
  if sel = [] then 0.0
  else begin
    let inside = Iset.of_list sel in
    let size =
      List.fold_left
        (fun acc u ->
          acc
          + (if Dgraph.mem_edge c.g u v then 1 else 0)
          + if Dgraph.mem_edge c.g v u then 1 else 0)
        0 sel
    in
    let covered =
      Dset.fold
        (fun (u, w) acc ->
          if Iset.mem u inside && Iset.mem w inside then acc + 1 else acc)
        c.hv.(v) 0
    in
    if size = 0 then 0.0 else float_of_int covered /. float_of_int size
  end

let spanned_targets c v sel =
  let inside = Iset.of_list sel in
  Dset.filter
    (fun (u, w) -> Iset.mem u inside && Iset.mem w inside)
    c.hv.(v)

(* Undirected shadow of the local star problem: eligible neighbors are
   the underlying neighbors, H_v targets collapse to undirected pairs. *)
let shadow_problem c v =
  let nodes = Dgraph.undirected_neighbors c.g v in
  let hv_edges =
    Dset.fold
      (fun (u, w) acc -> Edge.Set.add (Edge.make u w) acc)
      c.hv.(v) Edge.Set.empty
  in
  Star_pick.make ~center:v ~nodes ~hv_edges ()

(* The Section 4.1 closure, directed flavor: greedily add single
   underlying neighbors while the directed density stays above the
   threshold, then dense disjoint stars found through the shadow. *)
let extend_directed c v ~start ~allowed ~threshold =
  let prob = shadow_problem c v in
  let selection = ref start in
  let member u = List.mem u !selection in
  let progress = ref true in
  while !progress do
    progress := false;
    let best = ref None in
    List.iter
      (fun u ->
        if not (member u) then begin
          let d = directed_density c v (u :: !selection) in
          if d >= threshold then
            match !best with
            | Some (_, d') when d' >= d -> ()
            | _ -> best := Some (u, d)
        end)
      allowed;
    match !best with
    | Some (u, _) ->
        selection := u :: !selection;
        progress := true
    | None -> (
        let remaining = List.filter (fun u -> not (member u)) allowed in
        match Star_pick.densest_within prob ~allowed:remaining with
        | Some (disjoint, _) when disjoint <> [] ->
            let candidate = disjoint @ !selection in
            if directed_density c v candidate >= threshold then begin
              selection := candidate;
              progress := true
            end
        | _ -> ())
  done;
  List.sort_uniq compare !selection

(* ------------------------------------------------------------------ *)

type vstate = {
  mutable rho : float;  (* 2-approximate directed density *)
  mutable exp : int;  (* monotone rounded exponent; min_int = zero *)
  mutable dirty : bool;
  mutable star : int list;
  mutable star_exp : int;
  mutable terminated : bool;
}

let rounds_per_iteration = 8

let log2_ceil x =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  go 0 x

let run ?rng ?max_iterations g =
  let rng = match rng with Some r -> r | None -> Rng.create 0xD17EC7 in
  let n = Dgraph.n g in
  let max_iterations =
    match max_iterations with
    | Some m -> m
    | None ->
        (10
        * (log2_ceil (n + 2) + 2)
        * (log2_ceil (Dgraph.max_degree g + 2) + 2))
        + 100
  in
  let cover = cover_create g in
  let st =
    Array.init n (fun _ ->
        {
          rho = 0.0;
          exp = min_int;
          dirty = true;
          star = [];
          star_exp = min_int;
          terminated = false;
        })
  in
  let mark_dirty v = st.(v).dirty <- true in
  let refresh () =
    for v = 0 to n - 1 do
      if st.(v).dirty then begin
        st.(v).dirty <- false;
        let rho =
          if Dset.is_empty cover.hv.(v) then 0.0
          else
            match Star_pick.densest (shadow_problem cover v) with
            | None -> 0.0
            | Some (sel, _) -> directed_density cover v sel
        in
        st.(v).rho <- rho;
        let fresh_exp =
          match Star_pick.rounded_exponent rho with
          | None -> min_int
          | Some e -> e
        in
        (* Footnote 7: the approximate rounded density is kept monotone
           non-increasing across iterations. *)
        st.(v).exp <-
          (if st.(v).exp = min_int then fresh_exp
           else min st.(v).exp fresh_exp)
      end
    done
  in
  let und_neighbors v = Dgraph.undirected_neighbors g v in
  let two_hop_max value =
    let one = Array.make n neg_infinity in
    for v = 0 to n - 1 do
      one.(v) <-
        Dgraph.fold_undirected_neighbors
          (fun m u -> max m (value u))
          g v (value v)
    done;
    Array.init n (fun v ->
        Dgraph.fold_undirected_neighbors
          (fun acc u -> max acc one.(u))
          g v one.(v))
  in
  let orientations v u =
    let s = ref Dset.empty in
    if Dgraph.mem_edge g u v then s := Dset.add (u, v) !s;
    if Dgraph.mem_edge g v u then s := Dset.add (v, u) !s;
    !s
  in
  let iterations = ref 0 and stars_added = ref 0 and candidate_count = ref 0 in
  let n4 =
    let f = float_of_int (max n 2) ** 4.0 in
    if f > 1e15 then 1_000_000_000_000_000 else int_of_float f + 16
  in
  let all_terminated () = Array.for_all (fun s -> s.terminated) st in
  while not (all_terminated ()) do
    incr iterations;
    if !iterations > max_iterations then
      failwith "Directed_two_spanner.run: iteration limit exceeded";
    refresh ();
    let exp_of v =
      if st.(v).exp = min_int then neg_infinity else float_of_int st.(v).exp
    in
    let max_exp = two_hop_max exp_of in
    let candidates = ref [] in
    for v = 0 to n - 1 do
      let s = st.(v) in
      if
        (not s.terminated)
        && s.exp <> min_int
        && float_of_int s.exp >= max_exp.(v)
        && s.rho >= 1.0
      then begin
        let level = s.exp in
        let threshold = Star_pick.pow2 level /. 8.0 in
        let allowed_all = Array.to_list (und_neighbors v) in
        let fresh () =
          match Star_pick.densest (shadow_problem cover v) with
          | Some (sel, _) when sel <> [] ->
              extend_directed cover v ~start:sel ~allowed:allowed_all
                ~threshold
          | _ -> []
        in
        let selection =
          if s.star_exp = level && s.star <> [] then
            if directed_density cover v s.star >= threshold then s.star
            else
              match
                Star_pick.densest_within (shadow_problem cover v)
                  ~allowed:s.star
              with
              | Some (inner, _)
                when inner <> []
                     && directed_density cover v inner >= threshold ->
                  extend_directed cover v ~start:inner ~allowed:s.star
                    ~threshold
              | _ -> fresh ()
          else fresh ()
        in
        if selection <> [] then begin
          s.star <- selection;
          s.star_exp <- level;
          let covered = spanned_targets cover v selection in
          if not (Dset.is_empty covered) then begin
            incr candidate_count;
            let r = 1 + Rng.int rng n4 in
            candidates := (v, r, selection, covered) :: !candidates
          end
        end
      end
    done;
    (* Votes over directed targets. *)
    let ballot : (Edge.Directed.t, int * int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (v, r, _, covered) ->
        Dset.iter
          (fun e ->
            match Hashtbl.find_opt ballot e with
            | Some key when key <= (r, v) -> ()
            | _ -> Hashtbl.replace ballot e (r, v))
          covered)
      !candidates;
    let votes = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ (_, v) ->
        Hashtbl.replace votes v
          (1 + Option.value ~default:0 (Hashtbl.find_opt votes v)))
      ballot;
    let additions = ref Dset.empty in
    List.iter
      (fun (v, _, selection, covered) ->
        let received = Option.value ~default:0 (Hashtbl.find_opt votes v) in
        if 8 * received >= Dset.cardinal covered then begin
          incr stars_added;
          List.iter
            (fun u -> additions := Dset.union (orientations v u) !additions)
            selection
        end)
      !candidates;
    if not (Dset.is_empty !additions) then
      cover_add cover !additions ~dirty:mark_dirty;
    refresh ();
    let max_rho = two_hop_max (fun v -> st.(v).rho) in
    let finals = ref Dset.empty in
    for v = 0 to n - 1 do
      if (not st.(v).terminated) && max max_rho.(v) 0.0 <= 1.0 then begin
        st.(v).terminated <- true;
        finals := Dset.union cover.out_un.(v) (Dset.union cover.in_un.(v) !finals)
      end
    done;
    if not (Dset.is_empty !finals) then cover_add cover !finals ~dirty:mark_dirty
  done;
  {
    spanner = cover.spanner;
    iterations = !iterations;
    rounds = rounds_per_iteration * !iterations;
    stars_added = !stars_added;
    candidate_count = !candidate_count;
  }
