(** The Section 4 algorithm as an honest message-passing LOCAL
    protocol on {!Distsim.Engine}.

    Each iteration of the paper's algorithm is realized in 12
    communication rounds:

    + vertices exchange their uncovered incident edges, from which
      every vertex rebuilds its [H_v] and computes its rounded
      density (rounds 1-2 also spread the densities two hops);
    + candidates announce their chosen star together with their random
      draw; the smaller endpoint of each uncovered edge casts the
      edge's vote; accepted stars are announced;
    + coverage percolates: every vertex reports the [H_v]-edges newly
      2-spanned through it to their endpoints, fresh uncovered lists
      rebuild the [H_v]'s, true densities spread two hops, and
      vertices whose 2-neighborhood density has dropped to 1 finalize
      their remaining uncovered edges, whose coverage effects
      percolate in the last two rounds.

    A vertex goes quiet once everyone within distance 2 has
    terminated.

    Vote values come from {!Randomness} keyed on [(seed, vertex,
    iteration)], exactly as in {!Two_spanner_engine}: running both
    with the same seed on the same graph yields the {e identical}
    spanner — the differential tests assert this equality. Only the
    unweighted undirected variant is realized here; the variants share
    the engine. *)

open Grapho

type result = {
  spanner : Edge.Set.t;
  iterations : int;  (** completed 12-round iterations *)
  metrics : Distsim.Engine.metrics;
}

val rounds_per_iteration : int

val warmup_rounds : int
(** Three bootstrap rounds before the first iteration, covering the
    targets that the weighted variant's pre-added weight-zero edges
    already 2-span (a no-op in the unweighted case). *)

val phase_names : string array
(** The twelve phase names a traced run stamps on its rounds, in
    order: [density], [max1], [candidate], [vote], [tally], [accept],
    [fresh], [rho], [max1-rho], [terminate], [final], [restart].
    Round [r >= warmup_rounds] of iteration [i] carries
    [phase_names.((r - warmup_rounds) mod rounds_per_iteration)]. *)

val run :
  ?seed:int ->
  ?max_rounds:int ->
  ?sched:Distsim.Engine.sched ->
  ?par:int ->
  ?adversary:Distsim.Adversary.t ->
  ?profile:Distsim.Profile.t ->
  ?frugal:Distsim.Frugal.t ->
  ?retry:int ->
  ?trace:Distsim.Trace.sink ->
  ?active:int array ->
  Ugraph.t ->
  result
(** Runs under {!Distsim.Model.local} (messages are neighbor lists,
    hence unbounded, as the paper's algorithm requires). The result is
    always a valid 2-spanner. [sched] selects the engine scheduler
    (default [`Active]); the protocol is quiescent when done, so both
    schedulers produce bit-identical results — the equivalence suite
    asserts it. [par] (default 1) steps each round on that many
    domains ({!Distsim.Engine.run}); the protocol keeps all mutable
    state per-vertex and draws votes from the pure
    [(seed, vertex, iteration)]-keyed {!Randomness}, so any [par]
    yields bit-identical results too. [trace] (default
    {!Distsim.Trace.null}) receives the engine's round and send events
    plus one global ([vertex = -1]) {!phase_names} [Phase] marker per
    round (warm-up rounds are marked ["warmup"]).

    [adversary] (default none) injects faults into the run
    ({!Distsim.Engine.run}); under message loss the output may no
    longer be a valid 2-spanner — {!Resilience} measures how far off
    it lands. [retry] (default 1 = off) wraps the protocol in
    {!Distsim.Faults.with_retry}: every message is sent [retry] times
    and receivers keep the first copy per source, which costs
    bandwidth but survives a drop-[p] adversary with per-message loss
    [p^retry].

    [frugal] (default none) enables {!Distsim.Engine.run}'s
    message-frugality layer: identical consecutive re-sends are
    suppressed behind 2-bit markers and whole-neighborhood broadcasts
    route through collection trees, shrinking the {e physical} wire
    stream ([metrics.sent_physical] / [sent_bits]) while the spanner,
    round count and every logical metric stay bit-identical —
    {!Distsim.Engine.metrics_logical_eq} holds against the plain run
    under every scheduler and fault schedule.

    [active] (default: all vertices) runs the protocol on the
    induced subgraph [g[active]] via the engine's sparse activation
    ({!Distsim.Engine.run}): only the listed vertices (strictly
    ascending, in range) participate; each sees only its active
    neighbors but keeps its global identifier, so the vote randomness
    stays keyed exactly as in a full run. The result's [spanner] is a
    valid 2-spanner {e of the induced subgraph}, with edges named in
    global ids — the repair primitive {!Incremental} unions it into
    the surviving spanner. [max_rounds] defaults to
    [200 * (|active| + 20)]. Incompatible with [?frugal] and
    [?adversary] (engine restriction). *)

val run_weighted :
  ?seed:int ->
  ?max_rounds:int ->
  ?sched:Distsim.Engine.sched ->
  ?par:int ->
  ?adversary:Distsim.Adversary.t ->
  ?profile:Distsim.Profile.t ->
  ?frugal:Distsim.Frugal.t ->
  ?retry:int ->
  ?trace:Distsim.Trace.sink ->
  Ugraph.t ->
  Weights.t ->
  result
(** The weighted variant of Section 4.3.2 as a message-passing
    protocol, mirroring {!Weighted_two_spanner}'s engine configuration
    (weight-zero edges pre-added, no candidacy floor, per-vertex
    termination floors 1/wmax, terminated vertices excluded from the
    density maxima). Same seed, same spanner as the engine — the
    differential tests assert it. *)

val run_congest :
  ?seed:int ->
  ?max_rounds:int ->
  ?chunks_per_round:int ->
  ?sched:Distsim.Engine.sched ->
  ?par:int ->
  ?adversary:Distsim.Adversary.t ->
  ?profile:Distsim.Profile.t ->
  ?frugal:Distsim.Frugal.t ->
  ?retry:int ->
  ?audit:bool ->
  ?trace:Distsim.Trace.sink ->
  Ugraph.t ->
  result
(** The same protocol compiled to CONGEST with {!Distsim.Chunked}:
    messages fragment into O(log n)-bit chunks, each virtual round
    spending [chunks_per_round] (default [2Δ + 4]) real rounds — the
    O(Δ)-overhead direct implementation Section 1.3 discusses. Runs
    under an O(log n)-bit CONGEST model (c = 16, raised on tiny graphs
    so the 33-bit density halves always fit); produces the same spanner as {!run} and the
    engine for equal seeds, and its metrics expose the genuine
    compiled round count and chunk traffic.

    [adversary]/[retry]/[audit] are forwarded to
    {!Distsim.Chunked.run}: faults hit the chunk traffic (a single
    lost chunk corrupts its reassembly stream, so pair a lossy
    adversary with [retry]); [audit] raises
    {!Distsim.Chunked.Bandwidth_exceeded} on the first
    over-budget chunk instead of counting a violation. *)
