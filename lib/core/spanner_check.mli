(** Validity checkers for all spanner variants of the paper.

    Following Section 1.5: an edge [{u,v}] is covered by an edge set
    [S] if [S] contains a path of length at most [k] between [u] and
    [v]; a k-spanner of [G] covers every edge of [G]; a k-spanner of a
    subgraph [G' ⊆ G] is a subset of [G]'s edges covering every edge
    of [G']. For directed graphs the path must be directed from [u]
    to [v]. *)

open Grapho

val covers_edge : n:int -> Edge.Set.t -> k:int -> Edge.t -> bool
(** [covers_edge ~n s ~k e]: does [s] contain a path of length ≤ [k]
    between the endpoints of [e]? *)

val uncovered_edges : Ugraph.t -> Edge.Set.t -> k:int -> Edge.t list
(** Edges of the graph not covered by the candidate spanner. *)

val is_spanner : Ugraph.t -> Edge.Set.t -> k:int -> bool
(** [is_spanner g s ~k]: [s] covers every edge of [g]. [s] must be a
    subset of [g]'s edges (checked). *)

val is_spanner_of_targets :
  n:int -> targets:Edge.Set.t -> Edge.Set.t -> k:int -> bool
(** Client-server / partial form: does the edge set cover every edge
    of [targets]? *)

val spanner_csr : n:int -> Edge.Set.t -> Ugraph.t
(** The candidate set as its own CSR graph — the index
    {!covers_edge_2} probes. Build it once per candidate set, then
    each certificate check is one sorted-row merge. *)

val covers_edge_2 : spanner_csr:Ugraph.t -> int -> int -> bool
(** Stretch-2 certificate against a prebuilt {!spanner_csr}: the edge
    itself or one common neighbor inside the candidate set.
    O(deg u + deg v) in the candidate CSR, allocation-free —
    equivalent to [covers_edge ~k:2] but usable per-tick at the
    10^5/10^6 churn anchors where the BFS checker's O(n) scratch per
    edge is infeasible. *)

val is_2_spanner_fast : Ugraph.t -> Edge.Set.t -> bool
(** Equivalent to [is_spanner g s ~k:2] (including the subset check),
    via one {!spanner_csr} build plus one {!covers_edge_2} probe per
    graph edge: O(n + m_s + Σ_e merge) total instead of O(m n). The
    equivalence is pinned by the test suite; the churn bench runs
    this as its every-tick validity verdict. *)

type query
(** Reusable BFS scratch for {!query_path} — stamp/parent/queue
    arrays recycled across queries via an epoch counter, so a query
    allocates only its result list. One value per serving thread;
    grows to fit the largest graph it has seen. *)

val query_create : ?n:int -> unit -> query
(** Fresh scratch, pre-sized for graphs of [n] vertices (default 0 —
    it grows on first use). *)

val query_path : query -> Ugraph.t -> u:int -> v:int -> int list option
(** [query_path q sg ~u ~v] is a shortest [u]–[v] path in [sg]
    (typically a resident {!spanner_csr}) as its vertex sequence
    [u; ...; v], or [None] if the two are disconnected in [sg];
    [Some [u]] when [u = v]. One BFS from [u] with early exit at [v],
    deterministic (CSR neighbor order), allocation-free apart from
    the returned list. When [sg] is a valid 2-spanner of a graph with
    edge [{u,v}], the result has at most 2 hops — the daemon's QUERY
    kernel, stretch pinned by the test suite. Raises
    [Invalid_argument] if [u] or [v] is outside [sg]. *)

val directed_covers_edge :
  n:int -> Edge.Directed.Set.t -> k:int -> Edge.Directed.t -> bool

val directed_uncovered_edges :
  Dgraph.t -> Edge.Directed.Set.t -> k:int -> Edge.Directed.t list

val is_directed_spanner : Dgraph.t -> Edge.Directed.Set.t -> k:int -> bool

val stretch : Ugraph.t -> Edge.Set.t -> int
(** Maximum over edges [{u,v}] of [g] of the distance between [u] and
    [v] in the spanner ([max_int] if some edge is not spanned at all).
    A set is a k-spanner iff its stretch is at most [k]. *)

val directed_stretch : Dgraph.t -> Edge.Directed.Set.t -> int
