open Grapho

type entry = { value : float; via : int }

type vstate = {
  table : (int, entry) Hashtbl.t;  (* source -> best value, delivering nbr *)
  mutable fresh : (int * float) list;  (* entries to broadcast *)
}

type result = {
  spanner : Edge.Set.t;
  k : int;
  rounds : int;
  metrics : Distsim.Engine.metrics;
}

let run ?(seed = 0xE171) ~k g =
  if k < 1 then invalid_arg "Elkin_neiman.run: k < 1";
  let n = Ugraph.n g in
  let master = Rng.create seed in
  let beta = Float.log (float_of_int (max 2 n)) /. float_of_int k in
  (* Exp(beta) rejection-truncated below k: the event the stretch proof
     conditions on. *)
  let radius rng =
    let rec draw () =
      let u = Rng.float rng 1.0 in
      let u = if u = 0.0 then epsilon_float else u in
      let r = -.Float.log u /. beta in
      if r < float_of_int k then r else draw ()
    in
    draw ()
  in
  let radii = Array.init n (fun _ -> radius (Rng.split master)) in
  let measure (src, value) =
    ignore value;
    Distsim.Message.bits_for_id ~n:(max 2 n)
    + 64
    + Distsim.Message.bits_int (src + 1)
  in
  let spec =
    {
      Distsim.Engine.init =
        (fun ~n:_ ~vertex ~neighbors ~out ->
          let table = Hashtbl.create 8 in
          Hashtbl.replace table vertex { value = radii.(vertex); via = -1 };
          let st = { table; fresh = [] } in
          Array.iter
            (fun u ->
              Distsim.Engine.emit out ~dst:u (vertex, radii.(vertex)))
            neighbors;
          st);
      step =
        (fun ~round:_ ~vertex st inbox ~out ->
          ignore vertex;
          st.fresh <- [];
          Distsim.Engine.inbox_iter
            (fun ~src:nb (src, value) ->
              let candidate = value -. 1.0 in
              (* Entries down to -1 still matter locally (they can sit
                 within 1 of the maximum); only non-negative ones can
                 matter further away, so only those rebroadcast. *)
              if candidate >= -1.0 then begin
                let better =
                  match Hashtbl.find_opt st.table src with
                  | Some e -> candidate > e.value
                  | None -> true
                in
                if better then begin
                  Hashtbl.replace st.table src { value = candidate; via = nb };
                  if candidate >= 0.0 then
                    st.fresh <- (src, candidate) :: st.fresh
                end
              end)
            inbox;
          if st.fresh = [] then (st, `Done)
          else begin
            List.iter
              (fun (src, value) ->
                Ugraph.iter_neighbors
                  (fun u -> Distsim.Engine.emit out ~dst:u (src, value))
                  g vertex)
              st.fresh;
            (st, `Continue)
          end);
      measure;
    }
  in
  let states, metrics =
    Distsim.Engine.run ~model:Distsim.Model.local ~graph:g spec
  in
  (* Edge selection: one edge toward every source within 1 of the
     maximum. *)
  let spanner = ref Edge.Set.empty in
  Array.iteri
    (fun v st ->
      let m =
        Hashtbl.fold (fun _ e acc -> Float.max acc e.value) st.table
          neg_infinity
      in
      Hashtbl.iter
        (fun src e ->
          if src <> v && e.value >= m -. 1.0 && e.via >= 0 then
            spanner := Edge.Set.add (Edge.make v e.via) !spanner)
        st.table)
    states;
  { spanner = !spanner; k; rounds = metrics.rounds; metrics }
