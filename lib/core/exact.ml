open Grapho
module Iset = Set.Make (Int)

(* Enumerate the edge sets of the simple paths of length <= k between
   u and w inside the given adjacency. *)
let path_options ~adj ~k u w ~edge_of =
  let options = ref [] in
  let rec dfs x depth path_edges visited =
    if x = w && depth > 0 then options := path_edges :: !options
    else if depth < k then
      List.iter
        (fun y ->
          if not (Iset.mem y visited) then
            dfs y (depth + 1)
              (edge_of x y :: path_edges)
              (Iset.add y visited))
        adj.(x)
  in
  dfs u 0 [] (Iset.singleton u);
  !options

(* Branch and bound over a covering problem: every target needs one of
   its options (an option = a set of edge ids) fully bought. Coverage
   by option-inclusion is exact for spanners because the options
   enumerate every simple path of length <= k, and any covering edge
   set contains one. *)
let solve_cover ~edge_count ~edge_cost ~(options : int array array array) =
  (* options.(t) : candidate edge-id arrays for target t *)
  let t_count = Array.length options in
  let infeasible = Array.exists (fun opts -> Array.length opts = 0) options in
  if infeasible then None
  else begin
    let chosen = Array.make edge_count false in
    let option_satisfied opt = Array.for_all (fun e -> chosen.(e)) opt in
    let covered t = Array.exists option_satisfied options.(t) in
    let added_cost opt =
      Array.fold_left
        (fun acc e -> if chosen.(e) then acc else acc +. edge_cost.(e))
        0.0 opt
    in
    (* Greedy incumbent: repeatedly buy the option with the best
       newly-covered / added-cost ratio. *)
    let best = ref None and best_cost = ref infinity in
    let greedy () =
      let saved = Array.copy chosen in
      let total = ref 0.0 in
      let continue_loop = ref true in
      while !continue_loop do
        let uncovered = ref [] in
        for t = t_count - 1 downto 0 do
          if not (covered t) then uncovered := t :: !uncovered
        done;
        if !uncovered = [] then continue_loop := false
        else begin
          let best_opt = ref None and best_score = ref neg_infinity in
          List.iter
            (fun t ->
              Array.iter
                (fun opt ->
                  let cost = added_cost opt in
                  let score =
                    if cost <= 0.0 then infinity else 1.0 /. cost
                  in
                  if score > !best_score then begin
                    best_score := score;
                    best_opt := Some opt
                  end)
                options.(t))
            !uncovered;
          match !best_opt with
          | Some opt ->
              Array.iter
                (fun e ->
                  if not chosen.(e) then begin
                    chosen.(e) <- true;
                    total := !total +. edge_cost.(e)
                  end)
                opt
          | None -> continue_loop := false
        end
      done;
      let cost =
        Array.to_list (Array.mapi (fun e c -> if c then edge_cost.(e) else 0.0) chosen)
        |> List.fold_left ( +. ) 0.0
      in
      ignore !total;
      if cost < !best_cost then begin
        best_cost := cost;
        best := Some (Array.copy chosen)
      end;
      Array.blit saved 0 chosen 0 edge_count
    in
    greedy ();
    (* Depth-first branch and bound. *)
    let rec go cost =
      if cost < !best_cost then begin
        (* Find the uncovered target with the fewest options; also a
           simple bound: some uncovered target must pay its cheapest
           marginal option. *)
        let pick = ref (-1) and pick_width = ref max_int in
        let bound = ref 0.0 in
        let all_covered = ref true in
        for t = 0 to t_count - 1 do
          if not (covered t) then begin
            all_covered := false;
            let width = Array.length options.(t) in
            if width < !pick_width then begin
              pick_width := width;
              pick := t
            end;
            let cheapest =
              Array.fold_left
                (fun acc opt -> Float.min acc (added_cost opt))
                infinity options.(t)
            in
            if cheapest > !bound then bound := cheapest
          end
        done;
        if !all_covered then begin
          best_cost := cost;
          best := Some (Array.copy chosen)
        end
        else if cost +. !bound < !best_cost then begin
          let branches =
            Array.to_list options.(!pick)
            |> List.map (fun opt -> (added_cost opt, opt))
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          List.iter
            (fun (extra, opt) ->
              if cost +. extra < !best_cost then begin
                let bought =
                  Array.to_list opt
                  |> List.filter (fun e -> not chosen.(e))
                in
                List.iter (fun e -> chosen.(e) <- true) bought;
                go (cost +. extra);
                List.iter (fun e -> chosen.(e) <- false) bought
              end)
            branches
        end
      end
    in
    go 0.0;
    !best
  end

(* Shared frontend: number the edges, enumerate options, solve, map
   back. *)
let min_cover ~edge_ids ~edge_cost_of ~target_options =
  (* edge_ids : ('edge, int) Hashtbl; target_options : 'edge list list
     per target *)
  let edge_count = Hashtbl.length edge_ids in
  let edge_cost = Array.make edge_count 0.0 in
  Hashtbl.iter (fun e id -> edge_cost.(id) <- edge_cost_of e) edge_ids;
  let options =
    Array.of_list
      (List.map
         (fun opts ->
           Array.of_list
             (List.map
                (fun opt ->
                  Array.of_list
                    (List.map (fun e -> Hashtbl.find edge_ids e) opt))
                opts))
         target_options)
  in
  match solve_cover ~edge_count ~edge_cost ~options with
  | None -> None
  | Some chosen ->
      let inverse = Array.make edge_count None in
      Hashtbl.iter (fun e id -> inverse.(id) <- Some e) edge_ids;
      let selected = ref [] in
      Array.iteri
        (fun id flag ->
          if flag then
            match inverse.(id) with
            | Some e -> selected := e :: !selected
            | None -> ())
        chosen;
      Some !selected

let min_k_spanner ?weights ?targets ?usable ~n ~k () =
  let w = match weights with Some w -> w | None -> Weights.uniform 1.0 in
  let targets = match targets with Some t -> t | None -> Edge.Set.empty in
  let usable = Option.value ~default:targets usable in
  let adj = Array.make n [] in
  Edge.Set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    usable;
  let edge_ids = Hashtbl.create 64 in
  Edge.Set.iter
    (fun e -> Hashtbl.replace edge_ids e (Hashtbl.length edge_ids))
    usable;
  let target_options =
    List.map
      (fun e ->
        let u, v = Edge.endpoints e in
        path_options ~adj ~k u v ~edge_of:Edge.make)
      (Edge.Set.elements targets)
  in
  match min_cover ~edge_ids ~edge_cost_of:(Weights.get w) ~target_options with
  | None -> None
  | Some chosen ->
      Some (List.fold_left (fun s e -> Edge.Set.add e s) Edge.Set.empty chosen)

let min_2_spanner g =
  match
    min_k_spanner ~targets:(Ugraph.edge_set g) ~usable:(Ugraph.edge_set g)
      ~n:(Ugraph.n g) ~k:2 ()
  with
  | Some s -> s
  | None -> assert false (* every edge covers itself *)

let min_2_spanner_size g = Edge.Set.cardinal (min_2_spanner g)

let min_weighted_2_spanner g w =
  match
    min_k_spanner ~weights:w ~targets:(Ugraph.edge_set g)
      ~usable:(Ugraph.edge_set g) ~n:(Ugraph.n g) ~k:2 ()
  with
  | Some s -> s
  | None -> assert false

let min_directed_k_spanner ?weights g ~k =
  let cost_of =
    match weights with
    | Some w -> Weights.Directed.get w
    | None -> fun _ -> 1.0
  in
  let n = Dgraph.n g in
  let adj = Array.make n [] in
  Dgraph.iter_edges (fun (u, v) -> adj.(u) <- v :: adj.(u)) g;
  let edge_ids = Hashtbl.create 64 in
  Dgraph.iter_edges
    (fun e -> Hashtbl.replace edge_ids e (Hashtbl.length edge_ids))
    g;
  let target_options =
    List.map
      (fun (u, v) -> path_options ~adj ~k u v ~edge_of:(fun a b -> (a, b)))
      (Dgraph.edges g)
  in
  match min_cover ~edge_ids ~edge_cost_of:cost_of ~target_options with
  | None -> assert false (* each edge is a path of length 1 *)
  | Some chosen ->
      List.fold_left
        (fun s e -> Edge.Directed.Set.add e s)
        Edge.Directed.Set.empty chosen

let min_dominating_set g =
  let n = Ugraph.n g in
  let closed v =
    Iset.add v (Ugraph.fold_neighbors (fun s u -> Iset.add u s) g v Iset.empty)
  in
  let max_cover = 1 + Ugraph.max_degree g in
  let best = ref (List.init n (fun i -> i)) in
  let rec go undominated chosen count =
    if
      count + ((Iset.cardinal undominated + max_cover - 1) / max_cover)
      >= List.length !best
    then ()
    else if Iset.is_empty undominated then best := chosen
    else begin
      (* Branch on who dominates the undominated vertex with the fewest
         potential dominators. *)
      let pick =
        Iset.fold
          (fun v acc ->
            match acc with
            | None -> Some v
            | Some v' ->
                if Iset.cardinal (closed v) < Iset.cardinal (closed v') then
                  Some v
                else acc)
          undominated None
      in
      match pick with
      | None -> ()
      | Some v ->
          Iset.iter
            (fun u ->
              go (Iset.diff undominated (closed u)) (u :: chosen) (count + 1))
            (closed v)
    end
  in
  go (Iset.of_list (List.init n (fun i -> i))) [] 0;
  List.sort compare !best

let min_vertex_cover g =
  let best = ref (List.init (Ugraph.n g) (fun i -> i)) in
  let rec go edges chosen count =
    (* Lower bound via a greedy matching on the remaining edges. *)
    let rec matching acc used = function
      | [] -> acc
      | e :: rest ->
          let u, v = Edge.endpoints e in
          if Iset.mem u used || Iset.mem v used then matching acc used rest
          else matching (acc + 1) (Iset.add u (Iset.add v used)) rest
    in
    if count + matching 0 Iset.empty edges >= List.length !best then ()
    else
      match edges with
      | [] -> best := chosen
      | e :: _ ->
          let u, v = Edge.endpoints e in
          let without x =
            List.filter (fun e' -> not (Edge.mem_endpoint e' x)) edges
          in
          go (without u) (u :: chosen) (count + 1);
          go (without v) (v :: chosen) (count + 1)
  in
  go (Ugraph.edges g) [] 0;
  List.sort compare !best
