(** Survivor-quality analysis: what is the paper's output worth after
    the network misbehaved?

    Every guarantee the repository reproduces is proved on a perfectly
    reliable synchronous network. This module runs a protocol under a
    {!Distsim.Faults.schedule} and then grades what is left:

    - the {e surviving subgraph} [G'] — the input minus crash-stopped
      vertices (their incident edges die with them) and permanently
      cut links;
    - the {e surviving output} — the protocol's output restricted to
      the survivors (spanner edges with both endpoints alive and the
      link uncut; dominating-set members still standing);
    - a verdict: does the surviving output still 2-span [G']
      ({!Spanner_check.is_spanner}), resp. dominate it, and at what
      stretch?

    A lossy run may also simply fail — the engine's round limit under
    persistent loss, or a corrupted chunk-reassembly stream under
    CONGEST — so the report carries a [terminated]/[failure] pair
    instead of raising, and its round/message/drop counts are
    recovered from a {!Distsim.Trace.stats} sink, which survives
    mid-run exceptions. *)

open Grapho

type protocol =
  | Spanner_local  (** {!Two_spanner_local.run} (Thm 1.3, LOCAL) *)
  | Spanner_congest
      (** {!Two_spanner_local.run_congest} — chunked, so a single
          lost chunk can corrupt a reassembly stream; pair with
          [retry] *)
  | Mds  (** {!Mds.run} (Thm 5.1, CONGEST) *)

type report = {
  protocol : protocol;
  schedule : string;  (** canonical DSL form of the schedule run *)
  n : int;
  m : int;
  terminated : bool;  (** the protocol reached global termination *)
  failure : string option;
      (** why it did not (round limit, chunk-stream corruption, ...) *)
  rounds : int;
  messages : int;
  dropped : int;
  crashed : int list;  (** vertices crash-stopped, ascending *)
  survivors : int;  (** [n - |crashed|] *)
  surviving_m : int;  (** edges of the surviving subgraph *)
  output_size : int;
      (** spanner edges resp. dominating-set members produced *)
  surviving_output : int;  (** of those, how many survived *)
  valid : bool;
      (** the surviving spanner 2-spans the surviving subgraph, resp.
          the surviving set dominates it; [false] whenever
          [terminated] is [false] (a run that died produced no output
          worth grading) *)
  stretch : int;
      (** spanner protocols: max stretch of the surviving spanner on
          the surviving subgraph, [-1] if some surviving edge is not
          spanned at all; always [0] for {!constructor:Mds} *)
}

val surviving_subgraph :
  Ugraph.t -> crashed:int list -> schedule:Distsim.Faults.schedule -> Ugraph.t
(** The input minus the crashed vertices' incident edges and the
    schedule's {e permanent} cuts (a transient cut heals, so its edge
    survives). Vertex ids are preserved; crashed vertices remain as
    isolated vertices. *)

val surviving_edges : Edge.Set.t -> graph:Ugraph.t -> Edge.Set.t
(** Restrict an edge set to the edges present in (surviving sub)graph
    [graph]. *)

val run :
  ?seed:int ->
  ?retry:int ->
  ?sched:Distsim.Engine.sched ->
  ?par:int ->
  ?max_rounds:int ->
  protocol:protocol ->
  schedule:Distsim.Faults.schedule ->
  Ugraph.t ->
  report
(** Compile the schedule for the graph, run the protocol under it,
    and grade the survivors. [seed] is the {e protocol} seed (the
    schedule carries its own); [retry] is forwarded to the protocol's
    retransmit wrapper. Deterministic: same arguments, same report,
    any scheduler/[par]. *)

val pp_report : Format.formatter -> report -> unit
