let density_of ?weights ?bonuses ~edges subset =
  let module S = Set.Make (Int) in
  let s = S.of_list subset in
  let inside = List.filter (fun (u, v) -> S.mem u s && S.mem v s) edges in
  let weight v = match weights with None -> 1.0 | Some w -> w.(v) in
  let bonus v = match bonuses with None -> 0.0 | Some b -> b.(v) in
  let total = List.fold_left (fun acc v -> acc +. weight v) 0.0 subset in
  let gain =
    float_of_int (List.length inside)
    +. List.fold_left (fun acc v -> acc +. bonus v) 0.0 subset
  in
  if total = 0.0 then infinity else gain /. total

let validate ?weights ?bonuses ~n ~edges () =
  (match weights with
  | Some w ->
      if Array.length w <> n then invalid_arg "Densest: weights length";
      Array.iter
        (fun x -> if x <= 0.0 then invalid_arg "Densest: non-positive weight")
        w
  | None -> ());
  (match bonuses with
  | Some b ->
      if Array.length b <> n then invalid_arg "Densest: bonuses length";
      Array.iter
        (fun x -> if x < 0.0 then invalid_arg "Densest: negative bonus")
        b
  | None -> ());
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n || u = v then
        invalid_arg "Densest: bad edge")
    edges

(* Source side of the min cut of Goldberg's network at guess [g];
   returns the subset (possibly empty) and whether the cut is strictly
   below the trivial cut, i.e. whether a subset of density > g
   exists. *)
let probe ~n ~edges ~deg ~weight ~bonus ~big g =
  let s = n and t = n + 1 in
  let net = Maxflow.create (n + 2) in
  for v = 0 to n - 1 do
    Maxflow.add_edge net ~src:s ~dst:v ~cap:big;
    Maxflow.add_edge net ~src:v ~dst:t
      ~cap:(big +. (2.0 *. g *. weight v) -. deg.(v) -. (2.0 *. bonus v))
  done;
  List.iter
    (fun (u, v) ->
      Maxflow.add_edge net ~src:u ~dst:v ~cap:1.0;
      Maxflow.add_edge net ~src:v ~dst:u ~cap:1.0)
    edges;
  let flow = Maxflow.max_flow net ~s ~t in
  let trivial = big *. float_of_int n in
  let feasible = flow < trivial -. 1e-6 in
  if not feasible then ([], false)
  else begin
    let side = Maxflow.min_cut_side net ~s in
    let subset = ref [] in
    for v = n - 1 downto 0 do
      if side.(v) then subset := v :: !subset
    done;
    (!subset, true)
  end

let solver_calls = ref 0

(* ------------------------------------------------------------------ *)
(* Exhaustive bitmask search for tiny instances.

   The protocol's per-star subproblems almost always have a handful of
   paying neighbors; enumerating the 2^n subsets with subset-DP tables
   (O(2^n) word operations) beats a parametric max-flow binary search
   by a wide margin there. Duplicate edges would be conflated by the
   adjacency bitmasks, so those instances fall through to the flow
   solver. *)

let small_n_limit = 12

(* Per-12-bit-mask popcount and lowest-set-bit-index tables. Built
   eagerly at module init: the oracle runs inside vertex handlers,
   which execute on pool domains under [Engine.run ~par], and a
   module-global [lazy] forced from two domains at once raises
   [CamlinternalLazy.Undefined]. 2^12 words is cheap enough to never
   defer. *)
let small_tables =
  let size = 1 lsl small_n_limit in
  let pc = Array.make size 0 in
  let lb = Array.make size 0 in
  for i = 1 to size - 1 do
    pc.(i) <- pc.(i lsr 1) + (i land 1);
    lb.(i) <- (if i land 1 = 1 then 0 else lb.(i lsr 1) + 1)
  done;
  (pc, lb)

(* [None] when duplicate edges prevent the bitmask encoding. *)
let exhaustive_small ?weights ?bonuses ~n ~edges () =
  let adj = Array.make n 0 in
  let seen = Hashtbl.create (2 * List.length edges) in
  let dup = ref false in
  List.iter
    (fun (u, v) ->
      let key = if u < v then (u, v) else (v, u) in
      if Hashtbl.mem seen key then dup := true
      else begin
        Hashtbl.add seen key ();
        adj.(u) <- adj.(u) lor (1 lsl v);
        adj.(v) <- adj.(v) lor (1 lsl u)
      end)
    edges;
  if !dup then None
  else begin
    let weight v = match weights with None -> 1.0 | Some w -> w.(v) in
    let bonus v = match bonuses with None -> 0.0 | Some b -> b.(v) in
    let pc, lb = small_tables in
    let size = 1 lsl n in
    let inside = Array.make size 0 in
    let wsum = Array.make size 0.0 in
    let bsum = Array.make size 0.0 in
    let best = ref 0 and best_density = ref neg_infinity in
    for mask = 1 to size - 1 do
      let v = lb.(mask) in
      let rest = mask land (mask - 1) in
      inside.(mask) <- inside.(rest) + pc.(adj.(v) land rest);
      wsum.(mask) <- wsum.(rest) +. weight v;
      bsum.(mask) <- bsum.(rest) +. bonus v;
      let d = (float_of_int inside.(mask) +. bsum.(mask)) /. wsum.(mask) in
      if d > !best_density then begin
        best := mask;
        best_density := d
      end
    done;
    let subset = ref [] in
    for v = n - 1 downto 0 do
      if !best land (1 lsl v) <> 0 then subset := v :: !subset
    done;
    (* Report the density with the same summation order as
       [density_of], so callers that recompute see the identical
       float. *)
    Some (!subset, density_of ?weights ?bonuses ~edges !subset)
  end

let densest_subset ?weights ?bonuses ~n ~edges () =
  incr solver_calls;
  validate ?weights ?bonuses ~n ~edges ();
  let weight v = match weights with None -> 1.0 | Some w -> w.(v) in
  let bonus v = match bonuses with None -> 0.0 | Some b -> b.(v) in
  let total_bonus = ref 0.0 in
  for v = 0 to n - 1 do
    total_bonus := !total_bonus +. bonus v
  done;
  (* A sensible starting incumbent: the endpoints of the first edge, or
     the best single node when only bonuses contribute. *)
  let seed =
    match edges with
    | (u0, v0) :: _ -> Some (List.sort_uniq compare [ u0; v0 ])
    | [] ->
        let best = ref None in
        for v = 0 to n - 1 do
          if bonus v > 0.0 then
            match !best with
            | Some b when bonus b /. weight b >= bonus v /. weight v -> ()
            | _ -> best := Some v
        done;
        Option.map (fun v -> [ v ]) !best
  in
  let fast =
    if seed <> None && n <= small_n_limit then
      exhaustive_small ?weights ?bonuses ~n ~edges ()
    else None
  in
  match (fast, seed) with
  | Some _, _ -> fast
  | None, None -> None
  | None, Some seed ->
      let m = List.length edges in
      let deg = Array.make n 0.0 in
      List.iter
        (fun (u, v) ->
          deg.(u) <- deg.(u) +. 1.0;
          deg.(v) <- deg.(v) +. 1.0)
        edges;
      let exact subset = density_of ?weights ?bonuses ~edges subset in
      let best = ref seed in
      let best_density = ref (exact seed) in
      let min_weight =
        match weights with
        | None -> 1.0
        | Some w -> Array.fold_left min w.(0) w
      in
      let max_bonus =
        match bonuses with
        | None -> 0.0
        | Some b -> Array.fold_left max 0.0 b
      in
      let big = (2.0 *. float_of_int m) +. (2.0 *. max_bonus) +. 1.0 in
      (* The incumbent's exact density is a certified lower bound, so
         the search can start there instead of at zero. *)
      let lo = ref (Float.max 0.0 !best_density) in
      (* With unit weights a k-subset spans at most k(k-1)/2 edges and
         collects at most k*max_bonus, so the density never exceeds
         (n-1)/2 + max_bonus; otherwise fall back to the coarse
         (m + B)/min_weight bound. *)
      let hi =
        ref
          (match weights with
          | None -> ((float_of_int n -. 1.0) /. 2.0) +. max_bonus +. 1.0
          | Some _ ->
              ((float_of_int m +. !total_bonus) /. min_weight) +. 1.0)
      in
      (* With unit weights (bonuses integral in all our uses) any two
         distinct densities differ by at least 1/(n*(n-1)); with float
         weights we settle for a tight relative tolerance and trust the
         exact recomputation of candidates. *)
      let granularity =
        match weights with
        | None -> 1.0 /. ((float_of_int n *. float_of_int n) +. 1.0)
        | Some _ -> 1e-9 *. !hi
      in
      let iterations = ref 0 in
      while !hi -. !lo > granularity && !iterations < 200 do
        incr iterations;
        let g = (!lo +. !hi) /. 2.0 in
        match probe ~n ~edges ~deg ~weight ~bonus ~big g with
        | subset, true when subset <> [] ->
            let d = exact subset in
            if d > !best_density then begin
              best := subset;
              best_density := d
            end;
            (* The witness's exact density certifies everything up to
               [d] as feasible, which skips many probes when the
               witness is far denser than the guess. *)
            lo := Float.max g d
        | _ -> hi := g
      done;
      Some (!best, !best_density)

let brute_force ?weights ?bonuses ~n ~edges () =
  validate ?weights ?bonuses ~n ~edges ();
  if n > 20 then invalid_arg "Densest.brute_force: n > 20";
  let no_gain =
    edges = []
    && match bonuses with
       | None -> true
       | Some b -> Array.for_all (fun x -> x = 0.0) b
  in
  if no_gain then None
  else begin
  let best = ref [] and best_density = ref neg_infinity in
  for mask = 1 to (1 lsl n) - 1 do
    let subset = ref [] in
    for v = n - 1 downto 0 do
      if mask land (1 lsl v) <> 0 then subset := v :: !subset
    done;
    let d = density_of ?weights ?bonuses ~edges !subset in
    if d > !best_density then begin
      best := !subset;
      best_density := d
    end
  done;
  if !best = [] then None else Some (!best, !best_density)
  end
