(** Maximum-density subgraph (Goldberg 1984), via parametric max-flow.

    Given a graph on nodes [0..n-1] with edge multiset [E], positive
    node weights [w] and non-negative node bonuses [b], find a
    non-empty [S] maximizing [(|E(S)| + b(S)) / w(S)] where [E(S)] are
    the edges with both endpoints in [S]. With unit weights and zero
    bonuses this is Goldberg's classic maximum density subgraph; the
    weights are needed for the paper's weighted 2-spanner stars
    (Section 4.3.2) and the bonuses account there for target edges
    covered "for free" through weight-zero star edges.

    This is the workhorse behind densest-star computation: for a
    vertex [v] of the input graph, the densest [v]-star with respect
    to a set [H] of uncovered edges is exactly the densest subgraph of
    the graph whose nodes are [v]'s neighbors and whose edges are the
    edges of [H] joining two neighbors (each chosen neighbor
    contributes its star edge, each induced [H]-edge is 2-spanned). *)

val solver_calls : int ref
(** Cumulative count of {!densest_subset} invocations in this process.
    Cheap instrumentation for the bench harness ([bench/main.exe
    --json] reports it per workload); not meaningful across threads. *)

val densest_subset :
  ?weights:float array ->
  ?bonuses:float array ->
  n:int ->
  edges:(int * int) list ->
  unit ->
  (int list * float) option
(** [densest_subset ~n ~edges ()] returns a maximizing subset (sorted)
    and its density, or [None] when the instance has no positive-
    density subset ([edges] empty and all bonuses zero). With unit
    weights the result is exactly optimal; with arbitrary float
    weights it is optimal up to a relative parametric-search tolerance
    of 1e-9, and the returned density is recomputed exactly from the
    returned subset. Node weights must be positive, bonuses
    non-negative. *)

val density_of :
  ?weights:float array ->
  ?bonuses:float array ->
  edges:(int * int) list ->
  int list ->
  float
(** Exact density of a given subset. *)

val brute_force :
  ?weights:float array ->
  ?bonuses:float array ->
  n:int ->
  edges:(int * int) list ->
  unit ->
  (int list * float) option
(** Exponential reference implementation for tests; [n <= 20]. *)
