open Grapho

type report = {
  rounds : int;
  cut_edge_count : int;
  bits_across_cut : int;
  total_bits : int;
  bound_per_round : int;
}

let meter ?max_rounds ~model ~graph ~bob spec =
  let n = Ugraph.n graph in
  let is_bob = Array.make n false in
  List.iter (fun v -> is_bob.(v) <- true) bob;
  let cut_edge_count =
    Ugraph.fold_edges
      (fun e acc ->
        let u, v = Edge.endpoints e in
        if is_bob.(u) <> is_bob.(v) then acc + 1 else acc)
      graph 0
  in
  let bits_across_cut = ref 0 in
  let observer ~src ~dst ~bits =
    if is_bob.(src) <> is_bob.(dst) then
      bits_across_cut := !bits_across_cut + bits
  in
  let states, metrics =
    Distsim.Engine.run ?max_rounds ~observer ~model ~graph spec
  in
  let bandwidth =
    match Distsim.Model.bandwidth model with
    | Some b -> b
    | None -> metrics.max_message_bits
  in
  ( {
      rounds = metrics.rounds;
      cut_edge_count;
      bits_across_cut = !bits_across_cut;
      total_bits = metrics.total_bits;
      bound_per_round = 2 * cut_edge_count * bandwidth;
    },
    states )

(* Min-id flooding, inlined so that the meter sees its messages. *)
type flood_state = { mutable best : int }

let meter_flood ?model ~graph ~bob () =
  let n = max 2 (Ugraph.n graph) in
  let model =
    match model with Some m -> m | None -> Distsim.Model.congest ~n ()
  in
  let bits = Distsim.Message.bits_for_id ~n in
  let broadcast out neighbors payload =
    Array.iter (fun u -> Distsim.Engine.emit out ~dst:u payload) neighbors
  in
  let spec =
    {
      Distsim.Engine.init =
        (fun ~n:_ ~vertex ~neighbors ~out ->
          broadcast out neighbors vertex;
          { best = vertex });
      step =
        (fun ~round:_ ~vertex st inbox ~out ->
          let improved = ref false in
          Distsim.Engine.inbox_iter
            (fun ~src:_ v ->
              if v < st.best then begin
                st.best <- v;
                improved := true
              end)
            inbox;
          if !improved then begin
            Ugraph.iter_neighbors
              (fun u -> Distsim.Engine.emit out ~dst:u st.best)
              graph vertex;
            (st, `Continue)
          end
          else (st, `Done));
      measure = (fun _ -> bits);
    }
  in
  fst (meter ~model ~graph ~bob spec)
