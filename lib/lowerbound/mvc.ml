open Grapho

let is_vertex_cover g c =
  let inside = Array.make (Ugraph.n g) false in
  List.iter (fun v -> inside.(v) <- true) c;
  Ugraph.fold_edges
    (fun e acc ->
      let u, v = Edge.endpoints e in
      acc && (inside.(u) || inside.(v)))
    g true

let two_approx g =
  let matched = Array.make (Ugraph.n g) false in
  let cover = ref [] in
  Ugraph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      if (not matched.(u)) && not matched.(v) then begin
        matched.(u) <- true;
        matched.(v) <- true;
        cover := u :: v :: !cover
      end)
    g;
  List.sort compare !cover

let greedy g =
  let n = Ugraph.n g in
  let covered = Hashtbl.create 64 in
  let uncovered_degree v =
    Ugraph.fold_neighbors
      (fun acc u ->
        if Hashtbl.mem covered (Edge.make v u) then acc else acc + 1)
      g v 0
  in
  let remaining = ref (Ugraph.m g) in
  let cover = ref [] in
  while !remaining > 0 do
    let best = ref 0 and best_deg = ref (-1) in
    for v = 0 to n - 1 do
      let d = uncovered_degree v in
      if d > !best_deg then begin
        best := v;
        best_deg := d
      end
    done;
    let v = !best in
    cover := v :: !cover;
    Ugraph.iter_neighbors
      (fun u ->
        let e = Edge.make v u in
        if not (Hashtbl.mem covered e) then begin
          Hashtbl.replace covered e ();
          decr remaining
        end)
      g v
  done;
  List.sort compare !cover
