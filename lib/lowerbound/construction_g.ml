open Grapho
module Dset = Edge.Directed.Set

type t = {
  ell : int;
  beta : int;
  inputs : Disjointness.t;
  graph : Dgraph.t;
  d_edges : Dset.t;
  bob_vertices : int list;
}

let x1 t i = assert (i < t.ell); i
let x2 t i = assert (i < t.ell); t.ell + i
let y1 t i = assert (i < t.ell); (2 * t.ell) + i
let y2 t i = assert (i < t.ell); (3 * t.ell) + i
let y3 t i = assert (i < t.ell); (4 * t.ell) + i
let x2v t i j = assert (i < t.ell && j < t.beta); (5 * t.ell) + (i * t.beta) + j

let y2v t i j =
  assert (i < t.ell && j < t.beta);
  (5 * t.ell) + (t.ell * t.beta) + (i * t.beta) + j

let n t = (5 * t.ell) + (2 * t.ell * t.beta)

let build ~ell ~beta inputs =
  if Disjointness.length inputs <> ell * ell then
    invalid_arg "Construction_g.build: inputs must have length ell^2";
  let shell =
    { ell; beta; inputs; graph = Dgraph.empty 0; d_edges = Dset.empty;
      bob_vertices = [] }
  in
  let edges = ref [] in
  let d_edges = ref Dset.empty in
  let add e = edges := e :: !edges in
  for i = 0 to ell - 1 do
    (* the matchings X1 -> Y1 *)
    add (x1 shell i, y1 shell i);
    add (x2 shell i, y2 shell i);
    (* Y2 -> Y3 links *)
    add (y2 shell i, y3 shell i);
    for j = 0 to beta - 1 do
      add (x2v shell i j, x1 shell i);
      add (y3 shell i, y2v shell i j)
    done
  done;
  (* The dense component D: complete bipartite X2 -> Y2. *)
  for i = 0 to ell - 1 do
    for j = 0 to beta - 1 do
      for r = 0 to ell - 1 do
        for s = 0 to beta - 1 do
          let e = (x2v shell i j, y2v shell r s) in
          add e;
          d_edges := Dset.add e !d_edges
        done
      done
    done
  done;
  (* Input-controlled optional edges. *)
  for i = 0 to ell - 1 do
    for j = 0 to ell - 1 do
      if not inputs.Disjointness.a.((i * ell) + j) then
        add (x1 shell i, x2 shell j);
      if not inputs.Disjointness.b.((i * ell) + j) then
        add (y1 shell i, y2 shell j)
    done
  done;
  let graph = Dgraph.of_edges ~n:(n shell) !edges in
  (* V_B = Y1, which per Figure 1 holds both rows y1_i and y2_i. *)
  let bob_vertices =
    List.init ell (fun i -> y1 shell i)
    @ List.init ell (fun i -> y2 shell i)
  in
  { shell with graph; d_edges = !d_edges; bob_vertices }

let cut_edges t =
  let bob = Array.make (n t) false in
  List.iter (fun v -> bob.(v) <- true) t.bob_vertices;
  Dgraph.fold_edges
    (fun (u, v) acc -> if bob.(u) <> bob.(v) then (u, v) :: acc else acc)
    t.graph []

let non_d_edges t =
  Dgraph.fold_edges
    (fun e acc -> if Dset.mem e t.d_edges then acc else Dset.add e acc)
    t.graph Dset.empty

let block_open t i r =
  (* Is one of the optional edges (x1_i, x2_r), (y1_i, y2_r) present? *)
  (not t.inputs.Disjointness.a.((i * t.ell) + r))
  || not t.inputs.Disjointness.b.((i * t.ell) + r)

let forced_d_edges t =
  let forced = ref Dset.empty in
  for i = 0 to t.ell - 1 do
    for r = 0 to t.ell - 1 do
      if not (block_open t i r) then
        for j = 0 to t.beta - 1 do
          for s = 0 to t.beta - 1 do
            forced := Dset.add (x2v t i j, y2v t r s) !forced
          done
        done
    done
  done;
  !forced

let oracle_spanner t = Dset.union (non_d_edges t) (forced_d_edges t)

let check_claim_2_2 t ~i ~r =
  let nn = n t in
  let without_d = non_d_edges t in
  (* materialized once, not once per (j, s) probe *)
  let full = Dgraph.edge_set t.graph in
  let ok = ref true in
  for j = 0 to t.beta - 1 do
    for s = 0 to t.beta - 1 do
      let src = x2v t i j and dst = y2v t r s in
      if block_open t i r then begin
        let d =
          Traversal.directed_set_distance_within ~n:nn without_d src dst
            ~bound:5
        in
        if d > 5 then ok := false
      end
      else begin
        (* No path at all once the direct D-edge is removed. *)
        let all_but = Dset.remove (src, dst) full in
        let d =
          Traversal.directed_set_distance_within ~n:nn all_but src dst
            ~bound:nn
        in
        if d <> max_int then ok := false
      end
    done
  done;
  !ok

let decide_disjointness t ~spanner ~alpha =
  let d_count = Dset.cardinal (Dset.inter spanner t.d_edges) in
  let threshold = alpha *. float_of_int (7 * t.ell * t.beta) in
  float_of_int d_count <= threshold

let decide_gap_disjointness t ~spanner ~alpha =
  let d_count = Dset.cardinal (Dset.inter spanner t.d_edges) in
  let threshold = alpha *. float_of_int (7 * t.ell * t.ell) in
  float_of_int d_count <= threshold

let params_randomized ~n' ~alpha =
  let c = 7 in
  let q = int_of_float (Float.ceil (alpha *. float_of_int c)) + 1 in
  let ell =
    int_of_float (Float.sqrt (float_of_int n' /. float_of_int (c * q)))
  in
  let ell = max 1 ell in
  (ell, q * ell)

let params_deterministic ~n' ~alpha =
  let c = 7 in
  let beta =
    int_of_float (Float.ceil (Float.sqrt (12.0 *. alpha *. float_of_int c)))
    + 1
  in
  let ell = max 1 (n' / (c * beta)) in
  (ell, beta)
