(* The single wall-clock source for the repository. The engine's
   per-round [elapsed_ns], the bench harness's best-of-N wall timers
   and the profiler's span stamps all read this clock, so their
   numbers are directly comparable (same epoch, same resolution).

   [Unix.gettimeofday] is microsecond-granular; that is plenty for
   round spans (tens of microseconds and up) and matches what the
   engine and bench code measured before this module existed. *)

let now_s () = Unix.gettimeofday ()
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let ms_of_ns ns = float_of_int ns /. 1e6
let us_of_ns ns = float_of_int ns /. 1e3
