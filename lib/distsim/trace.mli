(** Structured execution traces for the round engine.

    The paper's claims are per-round claims — [O(log n log Δ)] rounds
    w.h.p. for the LOCAL 2-spanner (Thm 1.3) and the CONGEST MDS
    (Thm 5.1), and [Ω(√n/(√α log n))] bits across the Alice/Bob cut
    for the lower bounds — so the engine can narrate an execution as a
    stream of structured events instead of five scalar counters:

    - {!constructor:Round_begin} / {!constructor:Round_end} bracket
      every engine round; [Round_end] carries the per-round message
      count, bit volume, largest message, vertices stepped (the
      event-driven scheduler's work), vertices done, CONGEST
      violations and wall-clock nanoseconds;
    - {!constructor:Send} is one message on the wire (optionally
      filtered to a vertex set to bound overhead);
    - {!constructor:Phase} marks a protocol phase (e.g. [candidate],
      [vote], [commit]) at a vertex;
    - {!constructor:Counter} is a named numeric sample (e.g. the
      number of still-uncovered targets entering an iteration).

    Events flow into a {!sink}. Sinks are pay-for-what-you-use:
    {!null} is free (the engine detects it and skips all event
    construction), {!stats} accumulates an in-memory per-round
    {!series}, {!jsonl} streams JSON Lines to a channel, {!tee}
    duplicates, and {!of_observer} adapts the legacy per-message
    observer callback as a [Send]-only sink. *)

type round_stat = {
  round : int;
  messages : int;  (** messages sent during this round *)
  bits : int;  (** their total wire size *)
  max_bits : int;  (** largest single message this round (0 if none) *)
  vertices_stepped : int;
      (** vertices activated this round — [n] every round under the
          naive scheduler; only the awake set under the active one *)
  vertices_done : int;  (** vertices flagged [`Done] after the round *)
  congest_violations : int;  (** oversized messages this round *)
  dropped : int;
      (** messages the adversary destroyed this round (always 0 on a
          fault-free run). Dropped messages still count in [messages]
          and [bits]: they were sent — they just never arrived. *)
  crashed : int;
      (** vertices crash-stopped after the round, cumulatively (like
          [vertices_done]); 0 on a fault-free run *)
  elapsed_ns : int;  (** wall-clock nanoseconds spent in the round *)
  minor_words : int;
      (** minor-heap words allocated during the round on the engine's
          calling domain ([Gc.minor_words] delta — under [par > 1] the
          pool domains' own allocations are not included). Like
          [elapsed_ns] this is a measurement of the simulator, not the
          simulated protocol, so it is nondeterministic and excluded
          from the cross-scheduler equality contracts. *)
  physical : int;
      (** wire messages actually charged this round. Equal to
          [messages] on a plain run; under [Engine.run ?frugal] it
          counts the reduced physical stream (tree publishes,
          aggregated collects, data sends and 2-bit silence markers)
          while [messages]/[bits] keep describing the logical layer,
          so plain-vs-frugal round series stay comparable column by
          column. Deterministic, like [messages]. *)
}
(** One row of the per-round series. Round 0 is initialization: every
    vertex runs [init], so [vertices_stepped = n] there. Summing
    [messages] (resp. [bits]) over a run's [Round_end] events
    reconciles exactly with [Engine.metrics.messages] (resp.
    [total_bits]); summing [vertices_stepped] gives
    [Engine.metrics.steps]. *)

type drop_reason =
  | Dropped_random  (** lost to the per-message drop probability *)
  | Dropped_crashed  (** an endpoint had crash-stopped *)
  | Dropped_cut  (** the link was cut when the message crossed it *)

type fault_kind =
  | Crash of int  (** vertex crash-stops at the start of the round *)
  | Cut of int * int  (** link goes down at the start of the round *)
  | Restore of int * int  (** a transient cut comes back up *)

type event =
  | Round_begin of int
  | Round_end of round_stat
  | Send of { src : int; dst : int; bits : int; round : int }
  | Phase of { vertex : int; name : string; round : int }
      (** protocol-defined phase marker; [vertex = -1] means a global
          (whole-network) phase. For protocols compiled through
          [Chunked], [round] is the inner virtual round. *)
  | Counter of { name : string; value : float; round : int }
  | Fault_injected of { round : int; kind : fault_kind }
      (** the adversary activated a scheduled fault at the start of
          [round] (emitted on the engine's merge thread, so fault
          streams are identical across schedulers and shard counts) *)
  | Message_dropped of {
      src : int;
      dst : int;
      round : int;
      reason : drop_reason;
    }
      (** one destroyed wire message. Send-class: only emitted when the
          sink {!wants_sends}, like {!constructor:Send}; the per-round
          [dropped] counter of {!round_stat} is maintained engine-side
          and does not require these events. *)

type sink

val null : sink
(** The zero-cost sink: emitting to it is a no-op, and the engine
    skips event construction entirely when it detects it. *)

val is_null : sink -> bool

val wants_sends : sink -> bool
(** Whether the sink cares about per-message {!constructor:Send}
    events. The engine consults this once per run and skips the
    per-message event construction when [false] (the {!stats} sink,
    for instance, only needs round aggregates). *)

val emit : sink -> event -> unit

val custom : ?sends:bool -> (event -> unit) -> sink
(** An arbitrary callback sink. [sends] (default [true]) declares
    whether it wants {!constructor:Send} events. *)

val of_observer : (src:int -> dst:int -> bits:int -> unit) -> sink
(** Adapts the legacy engine observer as a [Send]-only sink — the
    two-party cut-metering hook is this, underneath. *)

val tee : sink -> sink -> sink
(** Duplicates every event into both sinks. [tee null s == s]. *)

val with_round_phases : (int -> (string * int) option) -> sink -> sink
(** [with_round_phases f sink] forwards every event to [sink] and,
    immediately after forwarding [Round_begin r], consults [f r]; when
    it answers [Some (name, round)] a global phase marker
    [Phase { vertex = -1; name; round }] is emitted ([round] lets
    chunked protocols stamp the {e virtual} round). This is how the
    protocols mark their phase schedule: the marker derives from the
    engine round on the merge thread, never from inside [spec.step],
    so phase emission is race-free under the parallel stepping path
    and identical across schedulers and shard counts.
    [with_round_phases f null == null]. *)

(** {1 In-memory per-round statistics} *)

type series = {
  rounds : round_stat array;  (** one row per round, in order, from 0 *)
  phases : (string * int) list;
      (** phase-marker name → occurrence count, sorted by name *)
  counters : (string * float) list;
      (** counter name → (sum, via {!constructor:Counter}), sorted *)
}

type stats

val stats : unit -> stats
val stats_sink : stats -> sink
(** Accumulates [Round_end], [Phase] and [Counter] events; ignores
    [Send]s (and reports [wants_sends = false]). *)

val series : stats -> series

(** {1 Streaming JSONL export} *)

val jsonl :
  ?sends:bool ->
  ?send_filter:(src:int -> dst:int -> bool) ->
  out_channel ->
  sink
(** Writes one JSON object per event, one per line, in the format of
    {!event_to_json}. [sends] (default [true]) includes per-message
    [Send] events; [send_filter] keeps only matching sends (to bound
    trace size on dense runs). The channel is not closed by the sink;
    callers flush/close it. *)

(** {1 JSON codec} *)

val event_to_json : event -> string
(** One-line JSON object, e.g.
    [{"ev":"round_end","round":3,"messages":12,"bits":480,"max_bits":40,"stepped":7,"done":2,"violations":0,"ns":8125,"minor_words":96}]. *)

val event_of_json : string -> (event, string) result
(** Parses exactly the output of {!event_to_json} (a flat JSON object
    with string and number values); [Error] describes the first
    offending token. String values may use [\uXXXX] escapes
    (including UTF-16 surrogate pairs), decoded to UTF-8 bytes. *)

(** {2 Codec building blocks}

    The flat-object codec underneath {!event_to_json} /
    {!event_of_json}, exposed for other emitters of the same dialect
    (the profiler's Chrome [trace_event] exporter, the bench
    trajectory differ's validators): flat JSON objects whose values
    are strings or numbers only. *)

type json_value = Jstr of string | Jnum of float

val parse_flat_json : string -> ((string * json_value) list, string) result
(** Parses one flat JSON object (no nesting, string/number values),
    preserving field order. *)

val escape_into : Buffer.t -> string -> unit
(** Appends [s] JSON-escaped (quotes, backslashes, control
    characters; non-ASCII bytes pass through verbatim as UTF-8). *)

val json_float : float -> string
(** Renders a float the way the codec does: integral values without
    a fractional part, everything else round-trippable [%.17g]. *)
