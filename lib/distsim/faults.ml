(* Fault-schedule DSL and the retransmit wrapper. See faults.mli. *)

module Rng = Grapho.Rng

type crash_spec = Crash_vertex of int * int | Crash_frac of float * int

type schedule = {
  seed : int;
  drop_p : float;
  dup_p : float;
  crashes : crash_spec list;
  cuts : ((int * int) * (int * int)) list;
}

let empty = { seed = 0; drop_p = 0.0; dup_p = 0.0; crashes = []; cuts = [] }

let is_empty s =
  s.drop_p = 0.0 && s.dup_p = 0.0 && s.crashes = [] && s.cuts = []

(* ------------------------------------------------------------------ *)
(* Concrete syntax. *)

let to_string s =
  let b = Buffer.create 64 in
  let sep () = if Buffer.length b > 0 then Buffer.add_char b ',' in
  if s.drop_p > 0.0 then (
    sep ();
    Buffer.add_string b (Printf.sprintf "drop=%g" s.drop_p));
  if s.dup_p > 0.0 then (
    sep ();
    Buffer.add_string b (Printf.sprintf "dup=%g" s.dup_p));
  List.iter
    (fun c ->
      sep ();
      match c with
      | Crash_vertex (v, r) ->
          Buffer.add_string b (Printf.sprintf "crash=v%d@r%d" v r)
      | Crash_frac (f, r) ->
          Buffer.add_string b (Printf.sprintf "crash=%g@r%d" f r))
    s.crashes;
  List.iter
    (fun ((u, v), (from_r, upto_r)) ->
      sep ();
      if upto_r = max_int then
        if from_r <= 1 then
          Buffer.add_string b (Printf.sprintf "cut=%d-%d" u v)
        else Buffer.add_string b (Printf.sprintf "cut=%d-%d@r%d" u v from_r)
      else
        Buffer.add_string b
          (Printf.sprintf "cut=%d-%d@r%d..%d" u v from_r upto_r))
    s.cuts;
  if s.seed <> 0 then (
    sep ();
    Buffer.add_string b (Printf.sprintf "seed=%d" s.seed));
  Buffer.contents b

let parse_error clause msg = Error (Printf.sprintf "%s (in %S)" msg clause)

let parse_prob clause what v =
  match float_of_string_opt v with
  | Some p when p >= 0.0 && p < 1.0 -> Ok p
  | Some _ -> parse_error clause (what ^ " must lie in [0, 1)")
  | None -> parse_error clause ("malformed " ^ what ^ " probability")

(* "X@rR" -> (X, R); missing "@rR" -> (X, default_round). *)
let split_at_round clause ~default v =
  match String.index_opt v '@' with
  | None -> Ok (v, default)
  | Some i ->
      let body = String.sub v 0 i in
      let tail = String.sub v (i + 1) (String.length v - i - 1) in
      if String.length tail < 2 || tail.[0] <> 'r' then
        parse_error clause "expected @r<round>"
      else begin
        match int_of_string_opt (String.sub tail 1 (String.length tail - 1)) with
        | Some r when r >= 1 -> Ok (body, r)
        | Some _ -> parse_error clause "round must be >= 1"
        | None -> parse_error clause "malformed round"
      end

let parse_crash clause v =
  match split_at_round clause ~default:1 v with
  | Error _ as e -> e
  | Ok (body, r) ->
      if String.length body > 1 && body.[0] = 'v' then begin
        match int_of_string_opt (String.sub body 1 (String.length body - 1))
        with
        | Some id when id >= 0 -> Ok (Crash_vertex (id, r))
        | _ -> parse_error clause "malformed crash vertex id"
      end
      else begin
        match float_of_string_opt body with
        | Some f when f >= 0.0 && f <= 1.0 -> Ok (Crash_frac (f, r))
        | Some _ -> parse_error clause "crash fraction must lie in [0, 1]"
        | None ->
            parse_error clause
              "expected crash=<fraction>@r<round> or crash=v<id>@r<round>"
      end

let parse_cut clause v =
  (* U-V[@rA[..B]] *)
  let edge, window =
    match String.index_opt v '@' with
    | None -> (v, None)
    | Some i ->
        ( String.sub v 0 i,
          Some (String.sub v (i + 1) (String.length v - i - 1)) )
  in
  let edge_result =
    match String.index_opt edge '-' with
    | None -> parse_error clause "expected cut=<u>-<v>"
    | Some i -> (
        let u = String.sub edge 0 i in
        let w = String.sub edge (i + 1) (String.length edge - i - 1) in
        match (int_of_string_opt u, int_of_string_opt w) with
        | Some u, Some w when u >= 0 && w >= 0 && u <> w -> Ok (u, w)
        | Some u, Some w when u = w ->
            parse_error clause "cut endpoints must differ"
        | _ -> parse_error clause "malformed cut endpoints")
  in
  match edge_result with
  | Error _ as e -> e
  | Ok (u, w) -> (
      match window with
      | None -> Ok ((u, w), (1, max_int))
      | Some tail ->
          if String.length tail < 2 || tail.[0] <> 'r' then
            parse_error clause "expected @r<round>[..<round>]"
          else
            let tail = String.sub tail 1 (String.length tail - 1) in
            let parse_r s =
              match int_of_string_opt s with
              | Some r when r >= 1 -> Ok r
              | _ -> parse_error clause "malformed cut round"
            in
            let idx =
              (* find ".." *)
              let rec go i =
                if i + 1 >= String.length tail then None
                else if tail.[i] = '.' && tail.[i + 1] = '.' then Some i
                else go (i + 1)
              in
              go 0
            in
            (match idx with
            | None -> (
                match parse_r tail with
                | Ok r -> Ok ((u, w), (r, max_int))
                | Error e -> Error e)
            | Some i -> (
                let a = String.sub tail 0 i in
                let b = String.sub tail (i + 2) (String.length tail - i - 2) in
                match (parse_r a, parse_r b) with
                | Ok a, Ok b when a <= b -> Ok ((u, w), (a, b))
                | Ok _, Ok _ ->
                    parse_error clause "cut window must be ascending"
                | (Error _ as e), _ | _, (Error _ as e) -> e)))

let parse s =
  let s = String.trim s in
  if s = "" then Ok empty
  else
    let clauses = String.split_on_char ',' s in
    (* Re-join "a..b" windows that the comma split cannot break (".."
       contains no comma) — nothing to do; just fold the clauses. *)
    let rec go acc = function
      | [] ->
          Ok
            {
              acc with
              crashes = List.rev acc.crashes;
              cuts = List.rev acc.cuts;
            }
      | clause :: rest -> (
          let clause = String.trim clause in
          if clause = "" then go acc rest
          else
            match String.index_opt clause '=' with
            | None ->
                parse_error clause "expected <key>=<value>"
            | Some i -> (
                let key = String.sub clause 0 i in
                let v = String.sub clause (i + 1) (String.length clause - i - 1) in
                match key with
                | "drop" -> (
                    match parse_prob clause "drop" v with
                    | Ok p -> go { acc with drop_p = p } rest
                    | Error e -> Error e)
                | "dup" -> (
                    match parse_prob clause "dup" v with
                    | Ok p -> go { acc with dup_p = p } rest
                    | Error e -> Error e)
                | "seed" -> (
                    match int_of_string_opt v with
                    | Some seed -> go { acc with seed } rest
                    | None -> parse_error clause "malformed seed")
                | "crash" -> (
                    match parse_crash clause v with
                    | Ok c -> go { acc with crashes = c :: acc.crashes } rest
                    | Error e -> Error e)
                | "cut" -> (
                    match parse_cut clause v with
                    | Ok c -> go { acc with cuts = c :: acc.cuts } rest
                    | Error e -> Error e)
                | _ ->
                    parse_error clause
                      "unknown key (expected drop/dup/crash/cut/seed)"))
    in
    go empty clauses

(* ------------------------------------------------------------------ *)
(* Compilation. *)

(* Fraction crashes draw their victim sets from a stream derived from
   the seed but distinct from the adversary's drop/dup coin stream
   (which [Adversary.make] seeds with [seed] directly). *)
let crashed_of ~n schedule =
  let rng = lazy (Rng.create (schedule.seed lxor 0x9E3779B9)) in
  List.concat_map
    (function
      | Crash_vertex (v, r) -> if v < n then [ (r, v) ] else []
      | Crash_frac (f, r) ->
          let k =
            min n (int_of_float (Float.round (f *. float_of_int n)))
          in
          if k <= 0 then []
          else
            let perm = Rng.permutation (Lazy.force rng) n in
            List.init k (fun i -> (r, perm.(i))))
    schedule.crashes

let compile ~n schedule =
  Adversary.make ~seed:schedule.seed ~drop_p:schedule.drop_p
    ~dup_p:schedule.dup_p
    ~crashes:(crashed_of ~n schedule)
    ~cuts:schedule.cuts ()

(* ------------------------------------------------------------------ *)
(* Retransmission. *)

let with_retry ~attempts (spec : ('s, 'm) Engine.spec) : ('s, 'm) Engine.spec =
  if attempts < 1 then
    invalid_arg "Faults.with_retry: attempts must be >= 1";
  if attempts = 1 then spec
  else
    let re_emit out before =
      let stop = Engine.outbox_length out in
      for _copy = 2 to attempts do
        for i = before to stop - 1 do
          Engine.emit out ~dst:(Engine.outbox_dst out i)
            (Engine.outbox_payload out i)
        done
      done
    in
    {
      Engine.init =
        (fun ~n ~vertex ~neighbors ~out ->
          let before = Engine.outbox_length out in
          let st = spec.init ~n ~vertex ~neighbors ~out in
          re_emit out before;
          st);
      step =
        (fun ~round ~vertex st inbox ~out ->
          Engine.inbox_keep_first_per_src inbox;
          let before = Engine.outbox_length out in
          let result = spec.step ~round ~vertex st inbox ~out in
          re_emit out before;
          result);
      measure = spec.measure;
    }
