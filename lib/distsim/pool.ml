(* A persistent domain pool: spawn once, barrier per use.

   The protocol benchmarks run hundreds of thousands of engine rounds
   per second, so the pool is built so that a parallel round costs two
   condition broadcasts, not a [Domain.spawn] (~250us each). Workers
   sleep on [start] until the generation counter moves, execute their
   shard of the published job, and decrement [remaining]; the caller
   runs shard 0 itself and then sleeps on [finished] until
   [remaining] hits zero. That mutex-protected rendezvous is also the
   memory barrier that publishes each shard's writes to the caller. *)

type job = {
  f : lo:int -> hi:int -> shard:int -> unit;
  n : int;
  shards : int;
}

type t = {
  total : int;  (* workers + the calling domain *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  start : Condition.t;  (* a new job was published (or shutdown) *)
  finished : Condition.t;  (* a worker finished its part *)
  mutable job : job option;
  mutable generation : int;  (* bumped when a job is published *)
  mutable remaining : int;  (* workers yet to finish the current job *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stopped : bool;
}

let size t = t.total

(* Contiguous slice [s] of [0, n) split into [shards] near-equal
   parts. *)
let bounds n shards s = (s * n / shards, (s + 1) * n / shards)

let exec t job shard =
  let lo, hi = bounds job.n job.shards shard in
  try job.f ~lo ~hi ~shard
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Mutex.lock t.m;
    (match t.failure with
    | None -> t.failure <- Some (e, bt)
    | Some _ -> ());
    Mutex.unlock t.m

let worker t w () =
  let gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while (not t.stopped) && t.generation = !gen do
      Condition.wait t.start t.m
    done;
    if t.stopped then begin
      Mutex.unlock t.m;
      running := false
    end
    else begin
      gen := t.generation;
      let job = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.m;
      (* Workers past the shard count still participate in the
         barrier; they just have no slice to run. *)
      if w < job.shards then exec t job w;
      Mutex.lock t.m;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.m
    end
  done

let create d =
  let total = max 1 d in
  let t =
    {
      total;
      workers = [||];
      m = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = None;
      generation = 0;
      remaining = 0;
      failure = None;
      stopped = false;
    }
  in
  t.workers <- Array.init (total - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let run t ~shards ~n f =
  let shards = max 1 (min shards (min t.total (max 1 n))) in
  if shards <= 1 || Array.length t.workers = 0 then f ~lo:0 ~hi:n ~shard:0
  else begin
    let job = { f; n; shards } in
    Mutex.lock t.m;
    t.job <- Some job;
    t.failure <- None;
    t.remaining <- Array.length t.workers;
    t.generation <- t.generation + 1;
    Condition.broadcast t.start;
    Mutex.unlock t.m;
    (* The calling domain is shard 0. *)
    exec t job 0;
    Mutex.lock t.m;
    while t.remaining > 0 do
      Condition.wait t.finished t.m
    done;
    let failure = t.failure in
    t.job <- None;
    t.failure <- None;
    Mutex.unlock t.m;
    match failure with
    | None -> ()
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  end

let shutdown t =
  Mutex.lock t.m;
  let ws = t.workers in
  t.workers <- [||];
  t.stopped <- true;
  Condition.broadcast t.start;
  Mutex.unlock t.m;
  Array.iter Domain.join ws

(* ------------------------------------------------------------------ *)
(* The process-global pool the engine reaches for. Grown (never
   shrunk) on demand; joined at exit so the runtime shuts down
   cleanly. *)

let global = ref None
let exit_hooked = ref false

let get d =
  let d = max 1 d in
  match !global with
  | Some t when t.total >= d -> t
  | prev ->
      (match prev with Some t -> shutdown t | None -> ());
      let t = create d in
      global := Some t;
      if not !exit_hooked then begin
        exit_hooked := true;
        at_exit (fun () ->
            match !global with
            | Some t ->
                global := None;
                shutdown t
            | None -> ())
      end;
      t
