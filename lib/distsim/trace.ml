type round_stat = {
  round : int;
  messages : int;
  bits : int;
  max_bits : int;
  vertices_stepped : int;
  vertices_done : int;
  congest_violations : int;
  dropped : int;
  crashed : int;
  elapsed_ns : int;
  minor_words : int;
  physical : int;
}

type drop_reason = Dropped_random | Dropped_crashed | Dropped_cut

type fault_kind = Crash of int | Cut of int * int | Restore of int * int

type event =
  | Round_begin of int
  | Round_end of round_stat
  | Send of { src : int; dst : int; bits : int; round : int }
  | Phase of { vertex : int; name : string; round : int }
  | Counter of { name : string; value : float; round : int }
  | Fault_injected of { round : int; kind : fault_kind }
  | Message_dropped of {
      src : int;
      dst : int;
      round : int;
      reason : drop_reason;
    }

type sink = Null | Sink of { emit : event -> unit; sends : bool }

let null = Null
let is_null = function Null -> true | Sink _ -> false
let wants_sends = function Null -> false | Sink { sends; _ } -> sends
let emit sink ev = match sink with Null -> () | Sink { emit; _ } -> emit ev
let custom ?(sends = true) emit = Sink { emit; sends }

let of_observer f =
  Sink
    {
      sends = true;
      emit =
        (function
        | Send { src; dst; bits; _ } -> f ~src ~dst ~bits
        | _ -> ());
    }

let tee a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Sink a, Sink b ->
      Sink
        {
          sends = a.sends || b.sends;
          emit =
            (fun ev ->
              a.emit ev;
              b.emit ev);
        }

(* Round-driven phase stamping. Protocols used to emit [Phase] markers
   from inside [spec.step], deduplicated through a shared mutable
   cell — fine sequentially, a data race once rounds step vertices on
   several domains. Deriving the marker from [Round_begin] instead
   keeps all emission on the engine's merge thread and is equivalent:
   every executed round steps at least one vertex (otherwise the
   engine would have terminated), so "first stepped vertex of round r"
   and "round r began" mark the same rounds. *)
let with_round_phases f = function
  | Null -> Null
  | Sink { emit; sends } ->
      Sink
        {
          sends;
          emit =
            (fun ev ->
              emit ev;
              match ev with
              | Round_begin r -> (
                  match f r with
                  | Some (name, round) ->
                      emit (Phase { vertex = -1; name; round })
                  | None -> ())
              | _ -> ());
        }

(* ------------------------------------------------------------------ *)
(* In-memory per-round statistics. *)

type series = {
  rounds : round_stat array;
  phases : (string * int) list;
  counters : (string * float) list;
}

type stats = {
  mutable rows : round_stat list;  (* reverse order *)
  mutable row_count : int;
  phase_tbl : (string, int ref) Hashtbl.t;
  counter_tbl : (string, float ref) Hashtbl.t;
}

let stats () =
  {
    rows = [];
    row_count = 0;
    phase_tbl = Hashtbl.create 16;
    counter_tbl = Hashtbl.create 16;
  }

let bump tbl zero add name v =
  match Hashtbl.find_opt tbl name with
  | Some r -> r := add !r v
  | None -> Hashtbl.replace tbl name (ref (add zero v))

let stats_sink st =
  Sink
    {
      sends = false;
      emit =
        (function
        | Round_end row ->
            st.rows <- row :: st.rows;
            st.row_count <- st.row_count + 1
        | Phase { name; _ } -> bump st.phase_tbl 0 ( + ) name 1
        | Counter { name; value; _ } ->
            bump st.counter_tbl 0.0 ( +. ) name value
        | Fault_injected _ -> bump st.counter_tbl 0.0 ( +. ) "faults" 1.0
        | Round_begin _ | Send _ | Message_dropped _ -> ());
    }

let sorted_bindings tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let zero_stat =
  {
    round = 0;
    messages = 0;
    bits = 0;
    max_bits = 0;
    vertices_stepped = 0;
    vertices_done = 0;
    congest_violations = 0;
    dropped = 0;
    crashed = 0;
    elapsed_ns = 0;
    minor_words = 0;
    physical = 0;
  }

let series st =
  let rounds = Array.make st.row_count zero_stat in
  (* rows are in reverse order; fill from the back. *)
  let rec fill i = function
    | [] -> ()
    | row :: rest ->
        rounds.(i) <- row;
        fill (i - 1) rest
  in
  fill (st.row_count - 1) st.rows;
  {
    rounds;
    phases = sorted_bindings st.phase_tbl;
    counters = sorted_bindings st.counter_tbl;
  }

(* ------------------------------------------------------------------ *)
(* JSON codec. Flat objects with string and number values only. *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let event_to_json ev =
  let buf = Buffer.create 96 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match ev with
  | Round_begin r -> out "{\"ev\":\"round_begin\",\"round\":%d}" r
  | Round_end s ->
      out
        "{\"ev\":\"round_end\",\"round\":%d,\"messages\":%d,\"bits\":%d,\
         \"max_bits\":%d,\"stepped\":%d,\"done\":%d,\"violations\":%d,\
         \"dropped\":%d,\"crashed\":%d,\"ns\":%d,\"minor_words\":%d,\
         \"physical\":%d}"
        s.round s.messages s.bits s.max_bits s.vertices_stepped
        s.vertices_done s.congest_violations s.dropped s.crashed s.elapsed_ns
        s.minor_words s.physical
  | Send { src; dst; bits; round } ->
      out "{\"ev\":\"send\",\"round\":%d,\"src\":%d,\"dst\":%d,\"bits\":%d}"
        round src dst bits
  | Phase { vertex; name; round } ->
      out "{\"ev\":\"phase\",\"round\":%d,\"vertex\":%d,\"name\":\"" round
        vertex;
      escape_into buf name;
      out "\"}"
  | Counter { name; value; round } ->
      out "{\"ev\":\"counter\",\"round\":%d,\"name\":\"" round;
      escape_into buf name;
      out "\",\"value\":%s}" (json_float value)
  | Fault_injected { round; kind } -> (
      match kind with
      | Crash v ->
          out "{\"ev\":\"fault\",\"round\":%d,\"kind\":\"crash\",\"v\":%d}"
            round v
      | Cut (u, w) ->
          out
            "{\"ev\":\"fault\",\"round\":%d,\"kind\":\"cut\",\"u\":%d,\
             \"w\":%d}"
            round u w
      | Restore (u, w) ->
          out
            "{\"ev\":\"fault\",\"round\":%d,\"kind\":\"restore\",\"u\":%d,\
             \"w\":%d}"
            round u w)
  | Message_dropped { src; dst; round; reason } ->
      out
        "{\"ev\":\"drop\",\"round\":%d,\"src\":%d,\"dst\":%d,\
         \"reason\":\"%s\"}"
        round src dst
        (match reason with
        | Dropped_random -> "random"
        | Dropped_crashed -> "crashed"
        | Dropped_cut -> "cut"));
  Buffer.contents buf

(* A minimal parser for the flat objects above. *)
type json_value = Jstr of string | Jnum of float

exception Parse of string

let parse_flat_object line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some x when x = c -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= n then fail "dangling escape";
            (match line.[!pos + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'u' ->
                (* Decode to UTF-8 bytes, pairing UTF-16 surrogates,
                   so the codec round-trips every string
                   [escape_into] can emit (it passes non-ASCII bytes
                   through verbatim). *)
                let read_hex at =
                  if at + 3 >= n then fail "short \\u escape";
                  match int_of_string_opt ("0x" ^ String.sub line at 4) with
                  | Some c -> c
                  | None -> fail "bad \\u escape"
                in
                let code = read_hex (!pos + 2) in
                let scalar =
                  if code >= 0xD800 && code <= 0xDBFF then
                    if
                      !pos + 7 >= n
                      || line.[!pos + 6] <> '\\'
                      || line.[!pos + 7] <> 'u'
                    then fail "unpaired high surrogate"
                    else begin
                      let lo = read_hex (!pos + 8) in
                      if lo < 0xDC00 || lo > 0xDFFF then
                        fail "unpaired high surrogate";
                      (* Consume the second escape's 6 chars here;
                         the shared [+ 2] below still covers this
                         escape's backslash. *)
                      pos := !pos + 6;
                      0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
                    end
                  else if code >= 0xDC00 && code <= 0xDFFF then
                    fail "unpaired low surrogate"
                  else code
                in
                Buffer.add_utf_8_uchar buf (Uchar.of_int scalar);
                pos := !pos + 4
            | c -> fail (Printf.sprintf "unknown escape '\\%c'" c));
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then incr pos
  else begin
    let rec members () =
      let key = (skip_ws (); parse_string ()) in
      expect ':';
      skip_ws ();
      let value =
        match peek () with
        | Some '"' -> Jstr (parse_string ())
        | _ -> Jnum (parse_number ())
      in
      fields := (key, value) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
          incr pos;
          members ()
      | Some '}' -> incr pos
      | _ -> fail "expected ',' or '}'"
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing content";
  List.rev !fields

let parse_flat_json line =
  try Ok (parse_flat_object line) with Parse msg -> Error msg

let event_of_json line =
  try
    let fields = parse_flat_object line in
    let str key =
      match List.assoc_opt key fields with
      | Some (Jstr s) -> s
      | Some (Jnum _) -> raise (Parse (key ^ ": expected a string"))
      | None -> raise (Parse ("missing field " ^ key))
    in
    let num key =
      match List.assoc_opt key fields with
      | Some (Jnum f) -> f
      | Some (Jstr _) -> raise (Parse (key ^ ": expected a number"))
      | None -> raise (Parse ("missing field " ^ key))
    in
    let int key = int_of_float (num key) in
    (* Absent-tolerant variant, for fields added after the codec
       shipped (pre-PR4 streams have no "minor_words"). *)
    let int_opt key ~default =
      match List.assoc_opt key fields with
      | Some (Jnum f) -> int_of_float f
      | Some (Jstr _) -> raise (Parse (key ^ ": expected a number"))
      | None -> default
    in
    let ev =
      match str "ev" with
      | "round_begin" -> Round_begin (int "round")
      | "round_end" ->
          Round_end
            {
              round = int "round";
              messages = int "messages";
              bits = int "bits";
              max_bits = int "max_bits";
              vertices_stepped = int "stepped";
              vertices_done = int "done";
              congest_violations = int "violations";
              (* Absent-tolerant: pre-PR5 streams have no fault
                 counters (and pre-PR4 no "minor_words"). *)
              dropped = int_opt "dropped" ~default:0;
              crashed = int_opt "crashed" ~default:0;
              elapsed_ns = int "ns";
              minor_words = int_opt "minor_words" ~default:0;
              (* Absent-tolerant: pre-PR8 streams predate the
                 physical/logical split, where the two coincide. *)
              physical = int_opt "physical" ~default:(int "messages");
            }
      | "send" ->
          Send
            {
              src = int "src";
              dst = int "dst";
              bits = int "bits";
              round = int "round";
            }
      | "phase" ->
          Phase { vertex = int "vertex"; name = str "name"; round = int "round" }
      | "counter" ->
          Counter
            { name = str "name"; value = num "value"; round = int "round" }
      | "fault" ->
          let kind =
            match str "kind" with
            | "crash" -> Crash (int "v")
            | "cut" -> Cut (int "u", int "w")
            | "restore" -> Restore (int "u", int "w")
            | other -> raise (Parse ("unknown fault kind " ^ other))
          in
          Fault_injected { round = int "round"; kind }
      | "drop" ->
          let reason =
            match str "reason" with
            | "random" -> Dropped_random
            | "crashed" -> Dropped_crashed
            | "cut" -> Dropped_cut
            | other -> raise (Parse ("unknown drop reason " ^ other))
          in
          Message_dropped
            { src = int "src"; dst = int "dst"; round = int "round"; reason }
      | other -> raise (Parse ("unknown event kind " ^ other))
    in
    Ok ev
  with Parse msg -> Error msg

let jsonl ?(sends = true) ?send_filter oc =
  let keep_send src dst =
    match send_filter with None -> true | Some f -> f ~src ~dst
  in
  Sink
    {
      sends;
      emit =
        (fun ev ->
          let write () =
            output_string oc (event_to_json ev);
            output_char oc '\n'
          in
          match ev with
          | Send { src; dst; _ } | Message_dropped { src; dst; _ } ->
              if sends && keep_send src dst then write ()
          | _ -> write ());
    }
