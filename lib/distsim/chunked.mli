(** A generic LOCAL → CONGEST compiler by message fragmentation.

    Wraps an {!Engine.spec} whose messages may be large: each virtual
    round of the inner algorithm is stretched over [chunks_per_round]
    real rounds during which every (sender, receiver) pair carries at
    most one small chunk per round; receivers reassemble and the inner
    step runs once per virtual round. If every inner message encodes
    into at most [chunks_per_round - 1] chunks (one chunk is a length
    header), the compiled protocol is semantically identical to the
    LOCAL original while every wire message fits the CONGEST budget.

    This realizes the paper's Section 1.3 remark that a direct CONGEST
    implementation of the Section 4 algorithm carries an O(Δ)
    overhead: its messages are neighbor lists of at most Δ
    identifiers, so [chunks_per_round = Θ(Δ)]. *)

val run :
  ?max_rounds:int ->
  ?strict:bool ->
  ?trace:Trace.sink ->
  ?sched:Engine.sched ->
  ?par:int ->
  model:Model.t ->
  graph:Grapho.Ugraph.t ->
  chunks_per_round:int ->
  encode:('m -> int list) ->
  decode:(int list -> 'm * int list) ->
  ('s, 'm) Engine.spec ->
  's array * Engine.metrics
(** [encode] turns a message into non-negative integer chunks (at most
    [chunks_per_round - 1]); [decode] consumes one message from the
    front of a chunk stream and returns the rest. Raises
    [Invalid_argument] if a message encodes to too many chunks. The
    returned metrics are the real (compiled) rounds and chunk
    traffic. [par] is forwarded to {!Engine.run} — the compiled outer
    spec keeps all its mutable chunk queues and reassembly buffers
    inside the per-vertex outer state, so it is parallel-safe whenever
    the inner spec is. *)
