(** A generic LOCAL → CONGEST compiler by message fragmentation.

    Wraps an {!Engine.spec} whose messages may be large: each virtual
    round of the inner algorithm is stretched over [chunks_per_round]
    real rounds during which every (sender, receiver) pair carries at
    most one small chunk per round; receivers reassemble and the inner
    step runs once per virtual round. If every inner message encodes
    into at most [chunks_per_round - 1] chunks (one chunk is a length
    header), the compiled protocol is semantically identical to the
    LOCAL original while every wire message fits the CONGEST budget.

    This realizes the paper's Section 1.3 remark that a direct CONGEST
    implementation of the Section 4 algorithm carries an O(Δ)
    overhead: its messages are neighbor lists of at most Δ
    identifiers, so [chunks_per_round = Θ(Δ)]. *)

exception
  Bandwidth_exceeded of {
    vertex : int;  (** the sender whose chunk blew the budget *)
    round : int;  (** the {e real} (compiled) round it was framed in *)
    bits : int;  (** the offending chunk's wire size *)
    budget : int;  (** the budget it was audited against *)
  }
(** Raised by the [audit] mode below. *)

val run :
  ?max_rounds:int ->
  ?strict:bool ->
  ?trace:Trace.sink ->
  ?sched:Engine.sched ->
  ?par:int ->
  ?adversary:Adversary.t ->
  ?profile:Profile.t ->
  ?frugal:Frugal.t ->
  ?retry:int ->
  ?audit:bool ->
  model:Model.t ->
  graph:Grapho.Ugraph.t ->
  chunks_per_round:int ->
  encode:('m -> int list) ->
  decode:(int list -> 'm * int list) ->
  ('s, 'm) Engine.spec ->
  's array * Engine.metrics
(** [encode] turns a message into non-negative integer chunks (at most
    [chunks_per_round - 1]); [decode] consumes one message from the
    front of a chunk stream and returns the rest. Raises
    [Invalid_argument] if a message encodes to too many chunks. The
    returned metrics are the real (compiled) rounds and chunk
    traffic. [par] is forwarded to {!Engine.run} — the compiled outer
    spec keeps all its mutable chunk queues and reassembly buffers
    inside the per-vertex outer state, so it is parallel-safe whenever
    the inner spec is.

    [adversary] is forwarded to {!Engine.run}: faults apply to the
    {e chunk} traffic (each real-round wire message is consulted
    individually). [retry] (default 1 = off) wraps the compiled
    chunk-level spec in {!Faults.with_retry}, retransmitting every
    chunk [retry] times — the natural hardening, since a single lost
    chunk corrupts its (src, dst) reassembly stream
    ([Invalid_argument] at [decode] time).

    [frugal] is forwarded to {!Engine.run}: the message-frugality
    layer then suppresses and aggregates the {e chunk} stream (the
    real wire traffic), leaving the inner algorithm and all logical
    metrics untouched.

    [audit] (default [false]) is the strict bandwidth audit: every
    chunk is checked at frame time against the model's bandwidth (or
    the customary [6 + 4 log n] bits when the model is [Local]), and
    an oversized one raises {!Bandwidth_exceeded} naming the offending
    vertex and real round — instead of the engine silently counting a
    congest violation after the oversize chunk is already on the
    wire. *)
